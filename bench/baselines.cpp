// Related-work baselines (Section 1 of the paper): rotor-router (O(mD)
// cover), Random Walk with Choice RWC(d) (Avin–Krishnamachari: improvements
// on toroidal and geometric graphs), the unvisited-vertex-preferring walk
// (companion paper [4]), and the locally fair strategies of [5]
// (Least-Used-First covers in O(mD); Oldest-First can be catastrophically
// slow).
//
// Rows: vertex cover time of each process on a torus, a random geometric
// graph, and a random 4-regular graph, normalised by n.
#include "bench/common.hpp"
#include "covertime/experiment.hpp"
#include "engine/budget.hpp"
#include "engine/driver.hpp"
#include "engine/registry.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

using namespace ewalk;

namespace {

/// One table row: a registry process name plus its parameters.
struct ProcessSpec {
  const char* label;
  const char* name;
  ParamMap params;
};

double run_process(const ProcessSpec& spec, const Graph& g,
                   const bench::BenchConfig& cfg, std::uint64_t salt,
                   CsvWriter& csv, std::uint32_t graph_id) {
  const auto stats = run_trials_summary(
      cfg.trials, cfg.threads, cfg.seed * 15485863 + salt,
      [&](Rng& rng, std::uint32_t) {
        auto walk = ProcessRegistry::instance().create(spec.name, g, spec.params, rng);
        run_until_vertex_cover(*walk, rng, kUnlimitedSteps);
        return static_cast<double>(walk->cover().vertex_cover_step());
      });
  std::printf("  %-16s %14.0f %10.3f\n", spec.label, stats.mean,
              stats.mean / g.num_vertices());
  csv.row({static_cast<double>(graph_id), static_cast<double>(salt), stats.mean,
           stats.mean / g.num_vertices()});
  return stats.mean;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = bench::parse_config(argc, argv);
  bench::print_header(
      "Baseline processes: vertex cover time across graph families",
      "rotor O(mD); RWC(d) beats SRW on torus/geometric; E-process beats all "
      "on even-degree expanders");

  const Vertex side = cfg.full ? 180 : 100;
  Rng setup(cfg.seed);
  const Graph torus = torus_2d(side, side);
  // Radius ~ sqrt(8 ln n / (pi n)) keeps the geometric graph connected whp.
  const Vertex gn = cfg.full ? 30000 : 10000;
  const double radius =
      std::sqrt(8.0 * std::log(static_cast<double>(gn)) / (3.14159 * gn));
  Graph geometric = random_geometric(gn, radius, setup);
  while (!is_connected(geometric)) geometric = random_geometric(gn, radius, setup);
  const Graph regular = random_regular_connected(cfg.full ? 100000 : 30000, 4, setup);

  auto csv = bench::open_csv("baselines",
                             {"graph_id", "process_id", "mean_cover", "normalised"});

  const std::vector<ProcessSpec> processes{
      {"srw", "srw", {}},
      {"rwc(2)", "rwc", {{"d", "2"}}},
      {"rwc(3)", "rwc", {{"d", "3"}}},
      {"vertex-walk", "vertexwalk", {}},
      {"eprocess", "eprocess", {}},
      {"rotor-router", "rotor", {}},
      {"least-used", "leastused", {}},
  };

  const std::vector<std::pair<const char*, const Graph*>> graphs{
      {"torus", &torus}, {"geometric", &geometric}, {"4-regular", &regular}};

  for (std::uint32_t gi = 0; gi < graphs.size(); ++gi) {
    const auto& [gname, g] = graphs[gi];
    std::printf("%s: n = %u, m = %u\n", gname, g->num_vertices(), g->num_edges());
    std::printf("  %-16s %14s %10s\n", "process", "C_V (mean)", "C_V/n");
    for (std::uint32_t pi = 0; pi < processes.size(); ++pi) {
      run_process(processes[pi], *g, cfg, pi, *csv, gi);
    }
    std::printf("\n");
  }
  std::printf("expect: rwc(d) < srw on torus/geometric (Avin–Krishnamachari);\n"
              "        eprocess smallest on the even-degree expander; rotor and\n"
              "        least-used deterministic and competitive.\n");
  return 0;
}
