// Coalescence & meeting times of interacting-walker processes.
//
// Rows: for each graph family (complete, cycle, hypercube, LPS expander)
// and size tier, the mean step at which k tokens coalesce to one, for
// independent-SRW tokens vs unvisited-edge-preferring (E-walk) tokens, plus
// the mean first-meeting step. Reference points from the literature:
//   * complete graph K_n — pairwise meetings are geometric(1/n), so full
//     coalescence is Θ(n) system steps (the logarithmic-time regime of
//     Loh–Lubetzky is in *parallel rounds*; one round = k single-token
//     steps here);
//   * expanders (hypercube, LPS) — meeting time O(n) whp, coalescence
//     O(n polylog n) system steps, i.e. O(polylog) normalised by n;
//   * cycle C_n — diffusive meetings: Θ(n^2) coalescence.
// A second table runs Herman's protocol (3 tokens, worst-case equal
// spacing) on cycles against the Bruna et al. 4n^2/27 expected-rounds
// bound.
#include <cmath>
#include <memory>

#include "bench/common.hpp"
#include "covertime/experiment.hpp"
#include "graph/generators.hpp"
#include "graph/lps.hpp"
#include "interact/coalescing.hpp"
#include "interact/herman.hpp"
#include "interact/token_system.hpp"
#include "walks/rules.hpp"

using namespace ewalk;

namespace {

struct FamilyRow {
  const char* family;
  GraphFactory graphs;
  std::uint32_t tokens;
  double n;  ///< vertex count of the (fixed-size) family, for normalising
};

TokenProcessFactory srw_tokens(std::uint32_t k) {
  return [k](const Graph& g, Rng&) -> std::unique_ptr<TokenProcess> {
    return std::make_unique<CoalescingRW>(
        g, spread_token_starts(g.num_vertices(), k, 0));
  };
}

TokenProcessFactory ewalk_tokens(std::uint32_t k) {
  return [k](const Graph& g, Rng&) -> std::unique_ptr<TokenProcess> {
    return std::make_unique<CoalescingEWalk>(
        g, spread_token_starts(g.num_vertices(), k, 0),
        std::make_unique<UniformRule>());
  };
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = bench::parse_config(argc, argv);
  bench::print_header(
      "Coalescence & meeting times: SRW tokens vs E-walk tokens",
      "K_n coalesces in Theta(n) steps; expanders in O(n polylog n); C_n in Theta(n^2)");

  std::vector<FamilyRow> rows;
  if (cfg.full) {
    rows.push_back({"complete", [](Rng&) { return complete_graph(8192); }, 64, 8192});
    rows.push_back({"cycle", [](Rng&) { return cycle_graph(2048); }, 16, 2048});
    rows.push_back({"hypercube", [](Rng&) { return hypercube(13); }, 64, 8192});
    // LPS X^{5,29}: PSL(2,29), n = 29 * 28 * 30 / 2.
    rows.push_back({"lps", [](Rng&) { return lps_graph({5, 29}); }, 64, 12180});
  } else {
    rows.push_back({"complete", [](Rng&) { return complete_graph(1024); }, 32, 1024});
    rows.push_back({"cycle", [](Rng&) { return cycle_graph(512); }, 8, 512});
    rows.push_back({"hypercube", [](Rng&) { return hypercube(10); }, 32, 1024});
    // LPS X^{5,13}: PGL(2,13), n = 13 * 12 * 14.
    rows.push_back({"lps", [](Rng&) { return lps_graph({5, 13}); }, 32, 2184});
  }

  auto csv = bench::open_csv(
      "coalescence", {"family", "n", "tokens", "srw_coalesce", "srw_meet",
                      "ewalk_coalesce", "ewalk_meet", "srw_over_n"});

  std::printf("%-10s %8s %7s %13s %10s %13s %10s %9s\n", "family", "n",
              "tokens", "SRW coalesce", "SRW meet", "EW coalesce", "EW meet",
              "SRW/n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    RunRequest ec;
    ec.trials = cfg.trials;
    ec.threads = cfg.threads;
    ec.seed = cfg.seed * 6151 + i;
    const auto srw = measure_coalescence(srw_tokens(row.tokens), row.graphs, ec);
    const auto ew = measure_coalescence(ewalk_tokens(row.tokens), row.graphs, ec);
    const double n = row.n;
    std::printf("%-10s %8.0f %7u %13.0f %10.0f %13.0f %10.0f %9.2f\n",
                row.family, n, row.tokens, srw.stats.mean,
                srw.meeting_stats.mean, ew.stats.mean, ew.meeting_stats.mean,
                srw.stats.mean / n);
    csv->row({static_cast<double>(i), n, static_cast<double>(row.tokens),
              srw.stats.mean, srw.meeting_stats.mean, ew.stats.mean,
              ew.meeting_stats.mean, srw.stats.mean / n});
  }

  // ---- Herman's protocol on cycles ---------------------------------------
  // The 4n^2/27 bound counts synchronous rounds in which every token is
  // scheduled once; our driver schedules one token per step and all three
  // stay alive until the single annihilation that ends the run, so the
  // step-count analogue of the bound is 3 * 4n^2/27.
  std::printf("\nHerman's protocol, 3 equally spaced tokens (worst case):\n");
  std::printf("%8s %15s %15s %9s\n", "n", "stabilise", "3*4n^2/27", "ratio");
  auto hcsv = bench::open_csv("coalescence_herman",
                              {"n", "stabilise_mean", "herman_bound_steps", "ratio"});
  const std::vector<Vertex> herman_ns =
      cfg.full ? std::vector<Vertex>{129, 257, 513, 1025}
               : std::vector<Vertex>{65, 129, 257};
  for (const Vertex n : herman_ns) {
    RunRequest ec;
    ec.trials = cfg.trials;
    ec.threads = cfg.threads;
    ec.seed = cfg.seed * 7907 + n;
    const auto res = measure_coalescence(
        [](const Graph& g, Rng&) -> std::unique_ptr<TokenProcess> {
          return std::make_unique<HermanRing>(
              g, spread_token_starts(g.num_vertices(), 3, 0));
        },
        [n](Rng&) { return cycle_graph(n); }, ec);
    const double bound = 3.0 * 4.0 * n * n / 27.0;
    std::printf("%8u %15.0f %15.0f %9.2f\n", n, res.stats.mean, bound,
                res.stats.mean / bound);
    hcsv->row({static_cast<double>(n), res.stats.mean, bound,
               res.stats.mean / bound});
  }
  std::printf(
      "expect: K_n and expanders coalesce within a few n (SRW/n small and\n"
      "        shrinking relative to cycle); cycle grows ~ n^2; Herman\n"
      "        stabilisation is of order n^2 (ratio O(1); the stabilisation\n"
      "        time is heavy-tailed, so few-trial means scatter widely).\n");
  return 0;
}
