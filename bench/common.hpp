// Shared plumbing for the bench binaries: common CLI flags, stdout table
// formatting, and CSV persistence (every printed series is also written to
// ./bench_out/<name>.csv for re-plotting).
#pragma once

#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "covertime/experiment.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace ewalk::bench {

struct BenchConfig {
  std::uint32_t trials = 5;     ///< the paper averaged 5 experiments/point
  std::uint32_t threads = 0;    ///< resolved thread count (never 0 after parse)
  std::uint64_t seed = 1;
  bool full = false;            ///< paper-scale sizes (n up to 5*10^5)
};

// Same --threads / --pin semantics as the ewalk CLI: --threads 0 means all
// hardware threads, above-hardware requests clamp with a warning, --pin is
// rejected on platforms without affinity support (best-effort failures
// only warn).
inline BenchConfig parse_config(int argc, char** argv) {
  const Cli cli(argc, argv);
  BenchConfig cfg;
  cfg.trials = static_cast<std::uint32_t>(cli.get_int("trials", cfg.trials));
  const std::int64_t threads_requested = cli.get_int("threads", 0);
  if (threads_requested < 0)
    throw std::invalid_argument(
        "--threads must be >= 0 (0 = all hardware threads)");
  bool clamped = false;
  cfg.threads = resolve_thread_count(
      static_cast<std::uint64_t>(threads_requested), &clamped);
  if (clamped)
    std::fprintf(stderr,
                 "warning: --threads %lld exceeds the %u hardware threads; "
                 "clamped to %u\n",
                 static_cast<long long>(threads_requested),
                 Executor::hardware_threads(), cfg.threads);
  if (cli.get_bool("pin", false)) {
    if (!Executor::pin_supported())
      throw std::invalid_argument(
          "--pin: thread-affinity pinning is not supported on this platform");
    if (!Executor::instance().set_pinning(true))
      std::fprintf(stderr,
                   "warning: --pin: could not apply affinity to every worker "
                   "(restricted cpuset?)\n");
  }
  cfg.seed = cli.get_u64("seed", cfg.seed);
  cfg.full = cli.get_bool("full", false);
  return cfg;
}

/// Opens bench_out/<name>.csv (creating the directory if needed).
inline std::unique_ptr<CsvWriter> open_csv(const std::string& name,
                                           std::vector<std::string> header) {
  std::filesystem::create_directories("bench_out");
  return std::make_unique<CsvWriter>("bench_out/" + name + ".csv", std::move(header));
}

/// Connected random r-regular graph factory for the sweep benches,
/// selected by name: "pairing" (pairing model + edge-swap repair — the
/// fast default) or "sw" (Steger–Wormald, the paper's reference generator).
/// "pairing-bfs" replays the pre-union-find retry loop — build the CSR,
/// BFS it, throw it away if disconnected — and exists only so the
/// `--gen-only` microbench can A/B the connectivity-aware path against the
/// legacy one inside a single binary.
inline GraphFactory regular_factory(const std::string& generator, Vertex n,
                                    std::uint32_t r) {
  if (generator == "pairing")
    return [n, r](Rng& rng) { return random_regular_pairing_connected(n, r, rng); };
  if (generator == "sw")
    return [n, r](Rng& rng) { return random_regular_connected(n, r, rng); };
  if (generator == "pairing-bfs")
    return [n, r](Rng& rng) {
      for (;;) {
        Graph g = random_regular_pairing(n, r, rng);
        if (is_connected(g)) return g;
      }
    };
  throw std::invalid_argument(
      "--generator must be pairing, sw, or pairing-bfs, got: " + generator);
}

inline void print_header(const char* title, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

}  // namespace ewalk::bench
