// Coverage curves: the step-by-step story behind Figure 1.
//
// For one 4-regular and one 3-regular graph, sample the fraction of vertices
// covered as a function of (normalised) time for the E-process and the SRW.
// The even-degree E-process covers almost linearly (slope ~1/2 per step —
// every blue step crosses a fresh edge and half the time lands on a fresh
// vertex), while the SRW and the odd-degree E-process show coupon-collector
// tails. Also prints t_50/t_90/t_99/t_100 percentile-cover times.
#include <cmath>

#include "bench/common.hpp"
#include "covertime/timeseries.hpp"
#include "graph/generators.hpp"
#include "walks/eprocess.hpp"
#include "walks/rules.hpp"
#include "walks/srw.hpp"

using namespace ewalk;

namespace {

template <typename Walk, typename Stepper>
void run_curve(const char* label, const Graph& g, Walk& walk, Stepper&& stepper,
               CsvWriter& csv, double curve_id) {
  const Vertex n = g.num_vertices();
  CoverageRecorder recorder(std::max<std::uint64_t>(1, n / 50));
  while (!walk.cover().all_vertices_covered()) {
    stepper();
    recorder.record(walk);
  }
  recorder.record(walk);
  const auto t50 = recorder.step_at_vertex_fraction(0.50, n);
  const auto t90 = recorder.step_at_vertex_fraction(0.90, n);
  const auto t99 = recorder.step_at_vertex_fraction(0.99, n);
  const auto t100 = walk.cover().vertex_cover_step();
  std::printf("%-18s %10.2f %10.2f %10.2f %10.2f %12.4f\n", label,
              static_cast<double>(t50) / n, static_cast<double>(t90) / n,
              static_cast<double>(t99) / n, static_cast<double>(t100) / n,
              recorder.uncovered_area(n));
  for (const auto& p : recorder.points())
    csv.row({curve_id, static_cast<double>(p.step) / n,
             static_cast<double>(p.vertices_covered) / n});
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = bench::parse_config(argc, argv);
  bench::print_header("Coverage curves: covered fraction vs normalised time",
                      "even-degree E-process is near-linear; SRW and odd-degree "
                      "E-process have log tails");

  const Vertex n = cfg.full ? 200000 : 50000;
  auto csv = bench::open_csv("coverage_curves", {"curve_id", "t_over_n", "covered_fraction"});

  std::printf("%-18s %10s %10s %10s %10s %12s\n", "process/graph", "t50/n",
              "t90/n", "t99/n", "t100/n", "unc.area");

  Rng grng(cfg.seed);
  const Graph g4 = random_regular_connected(n, 4, grng);
  const Graph g3 = random_regular_connected(n, 3, grng);

  {
    UniformRule rule;
    EProcess walk(g4, 0, rule);
    Rng rng(cfg.seed + 1);
    run_curve("eprocess d=4", g4, walk, [&] { walk.step(rng); }, *csv, 0);
  }
  {
    UniformRule rule;
    EProcess walk(g3, 0, rule);
    Rng rng(cfg.seed + 2);
    run_curve("eprocess d=3", g3, walk, [&] { walk.step(rng); }, *csv, 1);
  }
  {
    SimpleRandomWalk walk(g4, 0);
    Rng rng(cfg.seed + 3);
    run_curve("srw d=4", g4, walk, [&] { walk.step(rng); }, *csv, 2);
  }
  {
    SimpleRandomWalk walk(g3, 0);
    Rng rng(cfg.seed + 4);
    run_curve("srw d=3", g3, walk, [&] { walk.step(rng); }, *csv, 3);
  }

  std::printf("\nreading: eprocess d=4 hits t100/n ~ 2 with tiny tail; eprocess\n"
              "        d=3 is linear to t99 then pays a ~0.9 ln n star tail; the\n"
              "        SRW rows show classic Theta(n log n) coupon collecting.\n");
  return 0;
}
