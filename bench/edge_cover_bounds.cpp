// Equation (3) / Observation 12 / Corollary 4: edge cover time of the
// E-process.
//
//   m <= C_E(E-process) <= m + C_V(SRW)            (eq. 3, per instance)
//   t_R < t < t_R + m                              (Obs. 12)
//   C_E = O(ω n) for random r-regular, r >= 4 even (Cor. 4)
//
// Rows report C_E, its per-m normalisation, the sandwich bounds measured on
// the same graph instance, and C_E/(n ln ln n) (any ω → ∞ works; ln ln n is
// the conventional slow function).
#include <cmath>

#include "bench/common.hpp"
#include "covertime/experiment.hpp"
#include "engine/driver.hpp"
#include "graph/generators.hpp"
#include "walks/eprocess.hpp"
#include "walks/rules.hpp"
#include "walks/srw.hpp"

using namespace ewalk;

int main(int argc, char** argv) {
  const auto cfg = bench::parse_config(argc, argv);
  bench::print_header(
      "Edge cover time of the E-process on even-degree random regular graphs",
      "m <= C_E <= m + C_V(SRW) (eq. 3); C_E = O(omega n) (Cor. 4)");

  const std::vector<Vertex> ns = cfg.full
                                     ? std::vector<Vertex>{20000, 40000, 80000}
                                     : std::vector<Vertex>{5000, 10000, 20000};

  auto csv = bench::open_csv(
      "edge_cover_bounds",
      {"r", "n", "m", "edge_cover", "srw_vertex_cover", "upper_bound",
       "ce_over_m", "ce_over_n_lnln", "red_steps", "blue_steps"});

  std::printf("%3s %8s %9s %12s %12s %12s %9s %12s\n", "r", "n", "m", "C_E",
              "C_V(SRW)", "m+C_V(SRW)", "C_E/m", "C_E/(n lnln)");
  for (const std::uint32_t r : {4u, 6u}) {
    for (const Vertex n : ns) {
      // Per trial: one graph instance, measure all quantities on it so the
      // sandwich is checked instance-wise.
      double ce_sum = 0, cv_sum = 0, red_sum = 0, blue_sum = 0;
      std::uint64_t m = 0;
      bool sandwich_ok = true;
      auto streams = derive_streams(cfg.seed * 7907 + r * 17 + n, cfg.trials);
      for (std::uint32_t t = 0; t < cfg.trials; ++t) {
        Rng& rng = streams[t];
        const Graph g = random_regular_connected(n, r, rng);
        m = g.num_edges();
        UniformRule rule;
        EProcess ep(g, 0, rule);
        if (!run_until_edge_cover(ep, rng, 1ull << 40)) sandwich_ok = false;
        const double ce = static_cast<double>(ep.cover().edge_cover_step());
        SimpleRandomWalk srw(g, 0);
        run_until_vertex_cover(srw, rng, 1ull << 40);
        const double cv = static_cast<double>(srw.cover().vertex_cover_step());
        ce_sum += ce;
        cv_sum += cv;
        red_sum += static_cast<double>(ep.red_steps());
        blue_sum += static_cast<double>(ep.blue_steps());
        if (ce < static_cast<double>(m)) sandwich_ok = false;
        // Obs 12: t_R < t < t_R + m.
        if (!(ep.red_steps() < ep.steps() &&
              ep.steps() < ep.red_steps() + m + 1)) {
          sandwich_ok = false;
        }
      }
      const double ce = ce_sum / cfg.trials;
      const double cv = cv_sum / cfg.trials;
      const double lnln = std::log(std::log(static_cast<double>(n)));
      std::printf("%3u %8u %9llu %12.0f %12.0f %12.0f %9.3f %12.2f%s\n", r, n,
                  static_cast<unsigned long long>(m), ce, cv, m + cv, ce / m,
                  ce / (n * lnln), sandwich_ok ? "" : "  [SANDWICH VIOLATED]");
      csv->row({static_cast<double>(r), static_cast<double>(n),
                static_cast<double>(m), ce, cv, m + cv, ce / m, ce / (n * lnln),
                red_sum / cfg.trials, blue_sum / cfg.trials});
    }
    std::printf("\n");
  }
  std::printf("expect: C_E/m modestly above 1 and flat in n (Cor. 4); sandwich holds.\n");
  return 0;
}
