// Section 5 of the paper asks: how important is the even-degree constraint?
// Figure 1 shows 3-regular graphs suffer Θ(n log n) cover. This bench
// explores the *repair* route (not analysed in the paper): transform the
// odd-degree graph so Theorem 1's hypothesis holds, and see what the
// E-process actually buys.
//
//   * raw        — E-process on the 3-regular graph itself (Fig 1's d=3);
//   * doubled    — every edge doubled (even degrees; same adjacency, but
//                  each edge must now be crossed twice for edge cover —
//                  vertex cover is the interesting column);
//   * T-join     — duplicate shortest paths between paired odd vertices
//                  (all 3-regular vertices are odd, so this roughly pairs
//                  neighbours; even degrees, ~1.5x the edges).
//
// Columns: mean vertex cover time, its /n and /(n ln n) normalisations —
// flat /n would mean the repair restored Θ(n) cover.
//
// FINDING (and the point of this ablation): parity repair alone does NOT
// restore Θ(n). Doubling every edge makes a vertex v plus its three doubled
// pairs an even-degree subgraph on just 4 vertices, so the doubled graph is
// only ℓ-good with ℓ = 4 = O(1) — Theorem 1 then permits Θ(n log n), and
// that is what we measure (the doubled pairs play exactly the role of the
// Section 5 stars). Same story for duplicated T-join paths. The paper's
// ℓ-goodness hypothesis is essential, not a proof artefact.
#include <cmath>

#include "bench/common.hpp"
#include "engine/driver.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "util/stats.hpp"
#include "walks/eprocess.hpp"
#include "walks/rules.hpp"

using namespace ewalk;

namespace {

double mean_cover(const Graph& g, std::uint32_t trials, std::uint64_t seed) {
  double acc = 0;
  for (std::uint32_t t = 0; t < trials; ++t) {
    Rng rng(seed + t);
    UniformRule rule;
    EProcess walk(g, 0, rule);
    run_until_vertex_cover(walk, rng, 1ull << 42);
    acc += static_cast<double>(walk.cover().vertex_cover_step());
  }
  return acc / trials;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = bench::parse_config(argc, argv);
  bench::print_header(
      "Evenization of 3-regular graphs: does repairing parity restore Theta(n)?",
      "Section 5: even degree is what makes blue phases close (Obs. 10)");

  const std::vector<Vertex> ns = cfg.full
                                     ? std::vector<Vertex>{50000, 100000, 200000}
                                     : std::vector<Vertex>{20000, 40000, 80000};

  auto csv = bench::open_csv("evenization",
                             {"n", "variant", "m", "mean_cover", "per_n", "per_nlogn"});

  std::printf("%9s %-10s %9s %13s %8s %12s\n", "n", "variant", "m", "C_V",
              "C_V/n", "C_V/(n ln n)");
  for (const Vertex n : ns) {
    Rng grng(cfg.seed * 5387 + n);
    const Graph g = random_regular_connected(n, 3, grng);
    const Graph doubled = double_edges(g);
    const Graph tjoin = evenize_by_matching(g);

    const struct {
      const char* name;
      const Graph* graph;
      double id;
    } variants[] = {{"raw", &g, 0}, {"doubled", &doubled, 1}, {"t-join", &tjoin, 2}};

    for (const auto& [name, graph, id] : variants) {
      const double cover = mean_cover(*graph, cfg.trials, cfg.seed * 31 + n + static_cast<std::uint64_t>(id));
      const double per_n = cover / n;
      const double per_nlogn = cover / (n * std::log(static_cast<double>(n)));
      std::printf("%9u %-10s %9u %13.0f %8.3f %12.3f\n", n, name,
                  graph->num_edges(), cover, per_n, per_nlogn);
      csv->row({static_cast<double>(n), id, static_cast<double>(graph->num_edges()),
                cover, per_n, per_nlogn});
    }
    std::printf("\n");
  }
  std::printf(
      "reading: all three variants grow ~ n ln n. Parity repair does not\n"
      "restore Theta(n): doubled/duplicated edges form 4-vertex even\n"
      "subgraphs, so ell-goodness (the other Theorem 1 hypothesis) fails.\n"
      "The ell-good condition is essential, not just technical.\n");
  return 0;
}
