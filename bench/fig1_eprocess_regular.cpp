// Figure 1 reproduction: normalised vertex cover time C_V/n of the u.a.r.
// E-process on random d-regular graphs, d = 3..7, as a function of n.
//
// Paper's reading of the figure: even degrees (4, 6) are flat (Θ(n) cover);
// odd degrees grow like c·n·ln n with c ≈ 0.93 (d=3), 0.41 (d=5), 0.38
// (d=7). We print the same series plus a least-squares estimate of c for
// each degree (the paper picked c "by inspection").
//
// Flags: --trials N --seed S --threads T --full (n up to 5*10^5, the
// paper's range) — default sizes are laptop-CI friendly.
#include <cmath>

#include "bench/common.hpp"
#include "covertime/experiment.hpp"
#include "graph/generators.hpp"
#include "walks/rules.hpp"

using namespace ewalk;

int main(int argc, char** argv) {
  const auto cfg = bench::parse_config(argc, argv);
  bench::print_header(
      "Figure 1: normalised E-process vertex cover time on d-regular graphs",
      "even d flat; odd d ~ c n ln n, c = 0.93 / 0.41 / 0.38 for d = 3/5/7");

  const std::vector<Vertex> ns =
      cfg.full ? std::vector<Vertex>{100000, 200000, 300000, 400000, 500000}
               : std::vector<Vertex>{25000, 50000, 100000, 200000};
  const std::vector<std::uint32_t> degrees{3, 4, 5, 6, 7};

  auto csv = bench::open_csv(
      "fig1_eprocess_regular",
      {"d", "n", "mean_cover", "ci95", "normalised_cover", "trials"});

  std::printf("%3s %9s %14s %12s %14s\n", "d", "n", "C_V (mean)", "+/-95%",
              "C_V / n");
  WallTimer timer;
  for (const std::uint32_t d : degrees) {
    std::vector<double> xs, ys;
    for (const Vertex n : ns) {
      CoverExperimentConfig ec;
      ec.trials = cfg.trials;
      ec.threads = cfg.threads;
      ec.master_seed = cfg.seed * 1000003 + d * 101 + n;
      const GraphFactory graphs = [n, d](Rng& rng) {
        return random_regular_connected(n, d, rng);
      };
      const RuleFactory rules = [](const Graph&) {
        return std::make_unique<UniformRule>();
      };
      const auto res = measure_eprocess_cover(graphs, rules, ec);
      const double norm = res.stats.mean / n;
      std::printf("%3u %9u %14.0f %12.0f %14.3f\n", d, n, res.stats.mean,
                  res.stats.ci95_halfwidth(), norm);
      csv->row({static_cast<double>(d), static_cast<double>(n), res.stats.mean,
                res.stats.ci95_halfwidth(), norm, static_cast<double>(cfg.trials)});
      xs.push_back(n);
      ys.push_back(res.stats.mean);
    }
    const auto fit = fit_c_nlogn(xs, ys);
    std::printf("  -> fit C_V/n = c ln n + b: c = %.3f, b = %.2f, R^2 = %.3f%s\n\n",
                fit.slope, fit.intercept, fit.r_squared,
                (d % 2 == 0) ? "  (even d: expect c ~ 0)" : "");
  }
  std::printf("total bench time: %.1fs; CSV: bench_out/fig1_eprocess_regular.csv\n",
              timer.seconds());
  return 0;
}
