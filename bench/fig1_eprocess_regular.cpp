// Figure 1 reproduction: normalised vertex cover time C_V/n of the u.a.r.
// E-process on random d-regular graphs, d = 3..7, as a function of n.
//
// Paper's reading of the figure: even degrees (4, 6) are flat (Θ(n) cover);
// odd degrees grow like c·n·ln n with c ≈ 0.93 (d=3), 0.41 (d=5), 0.38
// (d=7). We print the same series plus a least-squares estimate of c for
// each degree (the paper picked c "by inspection").
//
// The whole degree × size grid runs as ONE sweep (src/sweep/): every
// (d, n, trial) unit is an independent pool task with graph construction
// inside the task, so parallelism spans the grid instead of one point's
// trials, and the per-trial rng streams make the samples identical for any
// --threads. Results land in bench_out/SWEEP_fig1_eprocess_regular.{json,csv}
// (schema: src/sweep/report.hpp; CI validates the JSON).
//
// Flags: --trials N --seed S --threads T --full (n up to 5*10^5, the
// paper's range) --generator pairing|sw|pairing-bfs (default pairing — the
// edge-swap generator that keeps large-n trial setup off the critical path;
// sw is the paper's Steger–Wormald reference; pairing-bfs replays the
// legacy build-then-BFS retry loop for A/B comparison) --degrees 3,4,5,6,7
// --ns n1,n2,... — default sizes are laptop-CI friendly.
//
// --max-trials M (with --ci-width W, default 0.05) switches the sweep to
// adaptive trial counts: each (d, n) series runs --trials to M trials until
// its 95% CI half-width is within W of its mean.
//
// --gen-only skips the walks entirely and microbenches graph *generation*:
// per (d, n) point it reports edges/sec over --trials builds, then a footer
// with peak RSS, the generation retry counters, and the number of
// is_connected BFS calls the builds made. With --assert-no-gen-bfs the
// binary exits non-zero when that BFS count is not 0 — the nightly
// large-n smoke uses this to pin the connectivity-aware generation
// contract (docs/ARCHITECTURE.md) at paper scale.
#include <cmath>
#include <memory>

#include "bench/common.hpp"
#include "engine/adapters.hpp"
#include "graph/algorithms.hpp"
#include "sweep/report.hpp"
#include "sweep/sweep.hpp"
#include "util/mem.hpp"
#include "walks/rules.hpp"

using namespace ewalk;

namespace {

// Generation-only microbench: serial (clean per-build timing), streams
// derived exactly like the sweep's shared-graph role so a --gen-only build
// is bit-identical to the graph the full sweep would have walked.
int run_gen_only(const bench::BenchConfig& cfg, const std::string& generator,
                 const std::vector<std::uint64_t>& degrees,
                 const std::vector<std::uint64_t>& ns, bool assert_no_bfs) {
  std::printf("generation microbench: generator=%s, %u builds/point\n",
              generator.c_str(), cfg.trials);
  std::printf("%3s %9s %12s %10s %14s\n", "d", "n", "edges", "seconds",
              "edges/sec");
  const std::uint64_t bfs_before = connectivity_bfs_calls();
  reset_generation_counters();
  std::uint64_t point_index = 0;
  for (const std::uint64_t d : degrees) {
    for (const std::uint64_t n : ns) {
      const auto factory = bench::regular_factory(
          generator, static_cast<Vertex>(n), static_cast<std::uint32_t>(d));
      double seconds = 0.0;
      std::uint64_t edges = 0;
      for (std::uint32_t t = 0; t < cfg.trials; ++t) {
        Rng rng = sweep_stream(cfg.seed, point_index, t, 0);
        WallTimer timer;
        const Graph g = factory(rng);
        seconds += timer.seconds();
        edges += g.num_edges();
      }
      std::printf("%3llu %9llu %12llu %10.3f %14.0f\n",
                  static_cast<unsigned long long>(d),
                  static_cast<unsigned long long>(n),
                  static_cast<unsigned long long>(edges), seconds,
                  seconds > 0 ? static_cast<double>(edges) / seconds : 0.0);
      ++point_index;
    }
  }
  const std::uint64_t bfs_calls = connectivity_bfs_calls() - bfs_before;
  const GenerationCounters gc = generation_counters();
  std::printf(
      "attempts: pairing %llu (%llu connectivity retries), "
      "sw %llu (%llu connectivity retries)\n",
      static_cast<unsigned long long>(gc.pairing_attempts),
      static_cast<unsigned long long>(gc.pairing_connectivity_retries),
      static_cast<unsigned long long>(gc.sw_attempts),
      static_cast<unsigned long long>(gc.sw_connectivity_retries));
  std::printf("is_connected BFS calls during generation: %llu\n",
              static_cast<unsigned long long>(bfs_calls));
  if (const std::uint64_t rss = peak_rss_bytes(); rss > 0)
    std::printf("peak RSS: %.1f MiB\n",
                static_cast<double>(rss) / (1024.0 * 1024.0));
  if (assert_no_bfs && bfs_calls != 0) {
    std::fprintf(stderr,
                 "error: --assert-no-gen-bfs: %llu is_connected BFS calls on "
                 "the generation path (want 0)\n",
                 static_cast<unsigned long long>(bfs_calls));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  const Cli cli(argc, argv);
  const auto cfg = bench::parse_config(argc, argv);
  bench::print_header(
      "Figure 1: normalised E-process vertex cover time on d-regular graphs",
      "even d flat; odd d ~ c n ln n, c = 0.93 / 0.41 / 0.38 for d = 3/5/7");

  const std::string generator = cli.get("generator", "pairing");
  std::vector<std::uint64_t> ns =
      cfg.full ? std::vector<std::uint64_t>{100000, 200000, 300000, 400000, 500000}
               : std::vector<std::uint64_t>{25000, 50000, 100000, 200000};
  std::vector<std::uint64_t> degrees{3, 4, 5, 6, 7};
  if (cli.has("ns")) ns = parse_u64_list(cli.get("ns", ""));
  if (cli.has("degrees")) degrees = parse_u64_list(cli.get("degrees", ""));

  if (cli.get_bool("gen-only", false))
    return run_gen_only(cfg, generator, degrees, ns,
                        cli.get_bool("assert-no-gen-bfs", false));

  std::vector<SweepPoint> points;
  for (const std::uint64_t d : degrees) {
    for (const std::uint64_t n : ns) {
      SweepPoint point;
      point.label = "d" + std::to_string(d) + "-n" + std::to_string(n);
      point.params = {{"d", static_cast<double>(d)},
                      {"n", static_cast<double>(n)}};
      point.graph = bench::regular_factory(generator, static_cast<Vertex>(n),
                                           static_cast<std::uint32_t>(d));
      point.series.push_back(SweepSeriesSpec{
          "eprocess",
          [](const Graph& g, Rng&) -> std::unique_ptr<WalkProcess> {
            return std::make_unique<EProcessHandle>(
                g, /*start=*/0, std::make_unique<UniformRule>());
          },
          CoverTarget::kVertices});
      points.push_back(std::move(point));
    }
  }

  SweepConfig sc;
  sc.trials = cfg.trials;
  sc.threads = cfg.threads;
  sc.master_seed = cfg.seed;
  sc.max_trials = static_cast<std::uint32_t>(cli.get_u64("max-trials", 0));
  sc.ci_rel_target = cli.get_double("ci-width", sc.ci_rel_target);
  sc.bundle_width = static_cast<std::uint32_t>(cli.get_u64("bundle", 1));
  const SweepResult result = run_sweep("fig1_eprocess_regular", points, sc);

  std::printf("generator: %s\n", generator.c_str());
  std::printf("%3s %9s %14s %12s %14s\n", "d", "n", "C_V (mean)", "+/-95%",
              "C_V / n");
  std::size_t idx = 0;
  for (const std::uint64_t d : degrees) {
    std::vector<double> xs, ys;
    for (const std::uint64_t n : ns) {
      const SweepSeriesResult& sr = result.points[idx++].series.front();
      std::printf("%3llu %9llu %14.0f %12.0f %14.3f\n",
                  static_cast<unsigned long long>(d),
                  static_cast<unsigned long long>(n), sr.stats.mean,
                  sr.stats.ci95_halfwidth(),
                  sr.stats.mean / static_cast<double>(n));
      xs.push_back(static_cast<double>(n));
      ys.push_back(sr.stats.mean);
    }
    if (xs.size() >= 2) {
      const auto fit = fit_c_nlogn(xs, ys);
      std::printf(
          "  -> fit C_V/n = c ln n + b: c = %.3f, b = %.2f, R^2 = %.3f%s\n\n",
          fit.slope, fit.intercept, fit.r_squared,
          (d % 2 == 0) ? "  (even d: expect c ~ 0)" : "");
    }
  }
  const std::string json = write_sweep_json(result);
  const std::string csv = write_sweep_csv(result);
  print_sweep_timing_split(result);
  std::printf("wrote %s and %s\n", json.c_str(), csv.c_str());
  return 0;
} catch (const std::exception& ex) {
  std::fprintf(stderr, "error: %s\n", ex.what());
  return 1;
}
