// Theorem 3: for even-degree graphs of girth g,
//   C_E(E-process) = O(m + m/(1-λmax)^2 (log n / g + log Δ)),
// so *high-girth* even-degree expanders (the paper's title) have edge cover
// time O(n + n log n / g).
//
// We compare, at matched degree 6 and matched order, the three regimes the
// theorem's two factors (1/(1-λmax)² and log n/g) distinguish:
//   * LPS Ramanujan graphs X^{5,q} — girth Θ(log n), optimal gap: both
//     factors benign, C_E ≈ m;
//   * union of 3 random Hamiltonian cycles — girth 3 whp but short cycles
//     are rare and vertex-disjoint: Corollary 4's habitat, C_E = O(ωn)
//     despite the girth term;
//   * circulant C_n(1,2,3) — girth 3 *and* vanishing eigenvalue gap
//     (ring-like): exhibits the 1/(1-λmax)² blow-up.
// Rows report girth, the gap (lazy gap for bipartite LPS), C_E, C_E/m and
// the Theorem-3 normalisation C_E / (m + m ln n / g).
#include <cmath>

#include "analysis/girth.hpp"
#include "bench/common.hpp"
#include "covertime/experiment.hpp"
#include "engine/driver.hpp"
#include "graph/generators.hpp"
#include "graph/lps.hpp"
#include "spectral/spectrum.hpp"
#include "walks/eprocess.hpp"
#include "walks/rules.hpp"

using namespace ewalk;

namespace {

void report(const char* family, const Graph& g, const bench::BenchConfig& cfg,
            CsvWriter& csv) {
  const double n = g.num_vertices();
  const double m = g.num_edges();
  const std::uint32_t gi = girth(g);
  const auto spec = estimate_spectrum(g);
  // Bipartite graphs (PGL-case LPS) have λn = -1; the paper then uses the
  // lazy walk, so report the lazy gap.
  const double gap = spec.gap() > 1e-9 ? spec.gap() : spec.lazy_gap();

  const auto ce = run_trials_summary(
      cfg.trials, cfg.threads, cfg.seed * 31337 + g.num_vertices(),
      [&g](Rng& rng, std::uint32_t) -> double {
        UniformRule rule;
        EProcess walk(g, 0, rule);
        run_until_edge_cover(walk, rng, 1ull << 42);
        return static_cast<double>(walk.cover().edge_cover_step());
      });

  const double thm3_norm = ce.mean / (m + m * std::log(n) / gi);
  std::printf("%-12s %8.0f %9.0f %6u %7.4f %13.0f %8.3f %10.3f\n", family, n, m,
              gi, gap, ce.mean, ce.mean / m, thm3_norm);
  csv.row({n, m, static_cast<double>(gi), gap, ce.mean, ce.mean / m, thm3_norm});
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = bench::parse_config(argc, argv);
  bench::print_header(
      "Theorem 3: edge cover vs girth on even-degree 6-regular graphs",
      "C_E = O(m + m/(1-lmax)^2 (log n / g + log D)); high girth => ~linear");

  auto csv = bench::open_csv("girth_edge_cover",
                             {"n", "m", "girth", "gap", "edge_cover", "ce_over_m",
                              "thm3_normalised"});

  std::printf("%-12s %8s %9s %6s %7s %13s %8s %10s\n", "family", "n", "m",
              "girth", "gap", "C_E", "C_E/m", "Thm3-norm");

  const std::vector<std::uint32_t> qs =
      cfg.full ? std::vector<std::uint32_t>{13, 17, 29, 37}
               : std::vector<std::uint32_t>{13, 17, 29};
  for (const std::uint32_t q : qs) {
    const Graph g = lps_graph({5, q});
    report("LPS X^{5,q}", g, cfg, *csv);

    // Matched-order low-girth comparators.
    const Vertex n = g.num_vertices();
    report("circulant", circulant(n, {1, 2, 3}), cfg, *csv);
    Rng rng(cfg.seed * 97 + q);
    report("ham-union", hamiltonian_cycle_union(n, 3, rng), cfg, *csv);
    std::printf("\n");
  }
  std::printf(
      "expect: C_E/m near 1 for high-girth LPS; also ~1 for ham-union (Cor. 4:\n"
      "        sparse disjoint short cycles are harmless); blow-up for the\n"
      "        circulant, whose vanishing gap triggers the 1/(1-lmax)^2 factor.\n");
  return 0;
}
