// Section 2 toolbox validation: the quantitative lemmas behind Theorem 1.
//
//   * Lemma 6:   E_π(H_v) <= 1/((1-λmax) π_v)       (exact values vs bound)
//   * Cor. 9:    E_π(H_S) <= 2m/(d(S)(1-λmax))      (via contraction Γ(S))
//   * Lemma 13:  Pr(S unvisited at t) <= exp(-t d(S)(1-λmax)/14m)
//                (empirical tail vs the paper's exponential bound)
//   * Eq. (4):   time for the SRW to visit every vertex r times is
//                O(C_V(SRW)) (blanket-time argument)
//
// Rows use random 4-regular graphs (the paper's Corollary 2 habitat).
#include <cmath>

#include "bench/common.hpp"
#include "covertime/blanket.hpp"
#include "covertime/hitting.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "spectral/spectrum.hpp"

using namespace ewalk;

int main(int argc, char** argv) {
  const auto cfg = bench::parse_config(argc, argv);
  bench::print_header(
      "Hitting-time and blanket-time bounds (Lemma 6, Cor. 9, Lemma 13, eq. 4)",
      "all measured values must sit below the paper's bounds");

  auto csv = bench::open_csv("hitting_bounds",
                             {"n", "gap", "epi_hv", "lemma6", "epi_hs", "cor9",
                              "pr_unvisited", "lemma13", "t_visit_r", "cover"});

  const std::vector<Vertex> ns{200, 400, 800};
  std::printf("%6s %7s | %9s %9s | %9s %9s | %11s %11s | %9s %9s\n", "n", "gap",
              "EpiHv", "Lem6", "EpiHS", "Cor9", "Pr[unvis]", "Lem13", "T(r)",
              "C_V");
  for (const Vertex n : ns) {
    Rng rng(cfg.seed * 6079 + n);
    const Graph g = random_regular_connected(n, 4, rng);
    const auto spec = estimate_spectrum(g);
    const double gap = spec.gap() > 1e-9 ? spec.gap() : spec.lazy_gap();
    const double m = g.num_edges();

    // Lemma 6 at a fixed vertex.
    const Vertex v = n / 2;
    const double epi_hv = exact_stationary_hitting_time(g, v);
    const double lem6 = lemma6_bound(g, v, gap);

    // Corollary 9 for a 4-vertex set, via contraction.
    const std::vector<Vertex> set{0, n / 4, n / 2, 3 * n / 4};
    const auto contracted = contract_set(g, set);
    const double epi_hs =
        exact_stationary_hitting_time(contracted.graph, contracted.contracted);
    const double cor9 = corollary9_bound(g, set, gap);

    // Lemma 13 tail at t = 10 m / (d(S) gap)  (comfortably past the
    // threshold (17)).
    double d_s = 0;
    for (const Vertex u : set) d_s += g.degree(u);
    const std::uint64_t t = static_cast<std::uint64_t>(10.0 * m / (d_s * gap));
    const double pr = estimate_unvisited_probability(g, set, t, 4000, rng);
    const double lem13 = std::exp(-static_cast<double>(t) * d_s * gap / (14.0 * m));

    // Eq. (4): T(r) vs C_V for r = 4.
    const std::uint64_t t_r = measure_visit_all_r_times(g, 0, 4, rng, 1ull << 40);
    const std::uint64_t cover = measure_visit_all_r_times(g, 0, 1, rng, 1ull << 40);

    std::printf("%6u %7.4f | %9.1f %9.1f | %9.1f %9.1f | %11.5f %11.5f | %9llu %9llu\n",
                n, gap, epi_hv, lem6, epi_hs, cor9, pr, lem13,
                static_cast<unsigned long long>(t_r),
                static_cast<unsigned long long>(cover));
    csv->row({static_cast<double>(n), gap, epi_hv, lem6, epi_hs, cor9, pr, lem13,
              static_cast<double>(t_r), static_cast<double>(cover)});
  }
  std::printf("\nexpect: every measured column <= its bound column; T(r) within a\n"
              "        small factor of C_V (blanket-time argument, eq. 4).\n");
  return 0;
}
