// Section 1 hypercube claim: the E-process edge-covers H_r in Θ(n log n),
// beating the SRW's Θ(n log² n) — the example where the paper's bound (3)
// is tight but Orenshtein–Shinkar's bound (2) is not.
//
// Rows: r, n = 2^r, m = n r / 2, E-process C_E, SRW C_E, and the
// normalisations C_E/(n log n) (should be flat for the E-process) and
// C_E/(n log² n) (should be flat for the SRW).
#include <cmath>

#include "bench/common.hpp"
#include "covertime/experiment.hpp"
#include "engine/driver.hpp"
#include "graph/generators.hpp"
#include "walks/eprocess.hpp"
#include "walks/rules.hpp"
#include "walks/srw.hpp"

using namespace ewalk;

int main(int argc, char** argv) {
  const auto cfg = bench::parse_config(argc, argv);
  bench::print_header(
      "Hypercube H_r edge cover: E-process vs SRW",
      "C_E(E-process) = Theta(n log n) vs C_E(SRW) = Theta(n log^2 n)");

  const std::vector<std::uint32_t> rs = cfg.full
                                            ? std::vector<std::uint32_t>{10, 12, 14, 16}
                                            : std::vector<std::uint32_t>{10, 11, 12, 13};

  auto csv = bench::open_csv("hypercube_edge_cover",
                             {"r", "n", "m", "eprocess_ce", "srw_ce",
                              "e_over_nlogn", "srw_over_nlog2n", "ratio"});

  std::printf("%3s %8s %9s %13s %13s %12s %14s %7s\n", "r", "n", "m",
              "C_E(E)", "C_E(SRW)", "E/(n ln n)", "SRW/(n ln^2 n)", "ratio");
  for (const std::uint32_t r : rs) {
    const Graph g = hypercube(r);
    const double n = g.num_vertices();
    const double m = g.num_edges();

    const auto ep = run_trials_summary(
        cfg.trials, cfg.threads, cfg.seed * 104729 + r,
        [&g](Rng& rng, std::uint32_t) -> double {
          UniformRule rule;
          EProcess walk(g, 0, rule);
          run_until_edge_cover(walk, rng, 1ull << 42);
          return static_cast<double>(walk.cover().edge_cover_step());
        });
    const auto srw = run_trials_summary(
        cfg.trials, cfg.threads, cfg.seed * 104729 + r + 500,
        [&g](Rng& rng, std::uint32_t) -> double {
          SimpleRandomWalk walk(g, 0);
          run_until_edge_cover(walk, rng, 1ull << 42);
          return static_cast<double>(walk.cover().edge_cover_step());
        });

    const double ln_n = std::log(n);
    const double e_norm = ep.mean / (n * ln_n);
    const double s_norm = srw.mean / (n * ln_n * ln_n);
    std::printf("%3u %8.0f %9.0f %13.0f %13.0f %12.3f %14.3f %7.2f\n", r, n, m,
                ep.mean, srw.mean, e_norm, s_norm, srw.mean / ep.mean);
    csv->row({static_cast<double>(r), n, m, ep.mean, srw.mean, e_norm, s_norm,
              srw.mean / ep.mean});
  }
  std::printf("\nexpect: E/(n ln n) flat; SRW/(n ln^2 n) flat; ratio grows ~ ln n.\n");
  return 0;
}
