// Step-throughput microbenchmarks (google-benchmark): cost per transition of
// each walk process on a random 4-regular graph. These guard the O(1)/O(Δ)
// step complexity claims in the walk implementations.
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "walks/choice.hpp"
#include "walks/eprocess.hpp"
#include "walks/locally_fair.hpp"
#include "walks/rotor.hpp"
#include "walks/rules.hpp"
#include "walks/srw.hpp"
#include "walks/vertex_process.hpp"

namespace {

using namespace ewalk;

const Graph& test_graph() {
  static const Graph g = [] {
    Rng rng(7);
    return random_regular_connected(100000, 4, rng);
  }();
  return g;
}

void BM_SrwStep(benchmark::State& state) {
  const Graph& g = test_graph();
  Rng rng(1);
  SimpleRandomWalk walk(g, 0);
  for (auto _ : state) {
    walk.step(rng);
    benchmark::DoNotOptimize(walk.current());
  }
}
BENCHMARK(BM_SrwStep);

void BM_SrwLazyStep(benchmark::State& state) {
  const Graph& g = test_graph();
  Rng rng(2);
  SimpleRandomWalk walk(g, 0, SrwOptions{.lazy = true});
  for (auto _ : state) {
    walk.step(rng);
    benchmark::DoNotOptimize(walk.current());
  }
}
BENCHMARK(BM_SrwLazyStep);

void BM_EProcessStepUniform(benchmark::State& state) {
  const Graph& g = test_graph();
  Rng rng(3);
  UniformRule rule;
  EProcess walk(g, 0, rule);
  for (auto _ : state) {
    walk.step(rng);
    benchmark::DoNotOptimize(walk.current());
  }
}
BENCHMARK(BM_EProcessStepUniform);

void BM_EProcessStepAdversary(benchmark::State& state) {
  const Graph& g = test_graph();
  Rng rng(4);
  PreferVisitedEndpointRule rule;
  EProcess walk(g, 0, rule);
  for (auto _ : state) {
    walk.step(rng);
    benchmark::DoNotOptimize(walk.current());
  }
}
BENCHMARK(BM_EProcessStepAdversary);

void BM_RotorStep(benchmark::State& state) {
  const Graph& g = test_graph();
  RotorRouter walk(g, 0);
  for (auto _ : state) {
    walk.step();
    benchmark::DoNotOptimize(walk.current());
  }
}
BENCHMARK(BM_RotorStep);

void BM_RwcStep(benchmark::State& state) {
  const Graph& g = test_graph();
  Rng rng(5);
  RandomWalkWithChoice walk(g, 0, 2);
  for (auto _ : state) {
    walk.step(rng);
    benchmark::DoNotOptimize(walk.current());
  }
}
BENCHMARK(BM_RwcStep);

void BM_VertexWalkStep(benchmark::State& state) {
  const Graph& g = test_graph();
  Rng rng(6);
  UnvisitedVertexWalk walk(g, 0);
  for (auto _ : state) {
    walk.step(rng);
    benchmark::DoNotOptimize(walk.current());
  }
}
BENCHMARK(BM_VertexWalkStep);

void BM_LeastUsedStep(benchmark::State& state) {
  const Graph& g = test_graph();
  LocallyFairWalk walk(g, 0, FairnessCriterion::kLeastUsedFirst);
  for (auto _ : state) {
    walk.step();
    benchmark::DoNotOptimize(walk.current());
  }
}
BENCHMARK(BM_LeastUsedStep);

void BM_GraphGenRandomRegular(benchmark::State& state) {
  Rng rng(8);
  const Vertex n = static_cast<Vertex>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_regular(n, 4, rng).num_edges());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_GraphGenRandomRegular)->Arg(1000)->Arg(10000)->Arg(100000)->Complexity();

}  // namespace

BENCHMARK_MAIN();
