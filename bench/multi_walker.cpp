// Multi-walker E-process scaling (extension beyond the paper): k cooperating
// walkers share the visited-edge state; one *system step* advances one
// walker. Columns report vertex cover time in system steps — perfect
// cooperation would keep the column flat in k (same total work), while the
// per-walker wall-clock time (cover/k) shows the parallel speed-up.
//
// Runs as one sweep (src/sweep/): every (k, trial) unit is a pool task with
// graph construction inside, per-trial streams a pure function of
// (--seed, point, trial). Results: bench_out/SWEEP_multi_walker.{json,csv}.
//
// Flags: --trials --seed --threads --full --generator pairing|sw
// (default pairing) --walkers k1,k2,...
#include <memory>

#include "bench/common.hpp"
#include "engine/adapters.hpp"
#include "sweep/report.hpp"
#include "sweep/sweep.hpp"
#include "walks/rules.hpp"

using namespace ewalk;

int main(int argc, char** argv) try {
  const Cli cli(argc, argv);
  const auto cfg = bench::parse_config(argc, argv);
  bench::print_header(
      "Multi-walker E-process scaling on 4-regular expanders",
      "extension: k walkers, shared blue/red state, round-robin system steps");

  const std::string generator = cli.get("generator", "pairing");
  const Vertex n = cfg.full ? 200000 : 50000;
  std::vector<std::uint64_t> ks{1, 2, 4, 8, 16};
  if (cli.has("walkers")) ks = parse_u64_list(cli.get("walkers", ""));

  std::vector<SweepPoint> points;
  for (const std::uint64_t k : ks) {
    SweepPoint point;
    point.label = "k" + std::to_string(k);
    point.params = {{"n", static_cast<double>(n)},
                    {"k", static_cast<double>(k)}};
    point.graph = bench::regular_factory(generator, n, 4);
    point.series.push_back(SweepSeriesSpec{
        "multi-eprocess",
        [k](const Graph& g, Rng&) -> std::unique_ptr<WalkProcess> {
          std::vector<Vertex> starts(k);
          for (std::uint64_t i = 0; i < k; ++i)
            starts[i] = static_cast<Vertex>((i * g.num_vertices()) / k);
          return std::make_unique<MultiEProcessHandle>(
              g, std::move(starts), std::make_unique<UniformRule>());
        },
        CoverTarget::kVertices});
    points.push_back(std::move(point));
  }

  SweepConfig sc;
  sc.trials = cfg.trials;
  sc.threads = cfg.threads;
  sc.master_seed = cfg.seed;
  const SweepResult result = run_sweep("multi_walker", points, sc);

  std::printf("n = %u (%u trials per k, generator %s)\n", n, cfg.trials,
              generator.c_str());
  std::printf("%4s %14s %14s %10s\n", "k", "system steps", "steps/walker", "/n");
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const SweepSeriesResult& sr = result.points[i].series.front();
    std::printf("%4llu %14.0f %14.0f %10.3f\n",
                static_cast<unsigned long long>(ks[i]), sr.stats.mean,
                sr.stats.mean / static_cast<double>(ks[i]), sr.stats.mean / n);
  }
  std::printf("\nreading: flat 'system steps' == no contention penalty; the\n"
              "        'steps/walker' column is the parallel wall-clock gain.\n");
  const std::string json = write_sweep_json(result);
  const std::string csv = write_sweep_csv(result);
  print_sweep_timing_split(result);
  std::printf("wrote %s and %s\n", json.c_str(), csv.c_str());
  return 0;
} catch (const std::exception& ex) {
  std::fprintf(stderr, "error: %s\n", ex.what());
  return 1;
}
