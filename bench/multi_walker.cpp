// Multi-walker E-process scaling (extension beyond the paper): k cooperating
// walkers share the visited-edge state; one *system step* advances one
// walker. Columns report vertex cover time in system steps — perfect
// cooperation would keep the column flat in k (same total work), while the
// per-walker wall-clock time (cover/k) shows the parallel speed-up.
#include "bench/common.hpp"
#include "engine/driver.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"
#include "walks/multi_eprocess.hpp"
#include "walks/rules.hpp"

using namespace ewalk;

int main(int argc, char** argv) {
  const auto cfg = bench::parse_config(argc, argv);
  bench::print_header(
      "Multi-walker E-process scaling on 4-regular expanders",
      "extension: k walkers, shared blue/red state, round-robin system steps");

  const Vertex n = cfg.full ? 200000 : 50000;
  const std::vector<std::uint32_t> ks{1, 2, 4, 8, 16};

  auto csv = bench::open_csv("multi_walker",
                             {"n", "k", "system_cover", "per_walker", "norm_per_n"});

  std::printf("n = %u (%u trials per k)\n", n, cfg.trials);
  std::printf("%4s %14s %14s %10s\n", "k", "system steps", "steps/walker", "/n");
  for (const std::uint32_t k : ks) {
    std::vector<double> samples;
    for (std::uint32_t t = 0; t < cfg.trials; ++t) {
      Rng rng(cfg.seed * 7433 + k * 101 + t);
      const Graph g = random_regular_connected(n, 4, rng);
      std::vector<Vertex> starts(k);
      for (std::uint32_t i = 0; i < k; ++i)
        starts[i] = static_cast<Vertex>((static_cast<std::uint64_t>(i) * n) / k);
      UniformRule rule;
      MultiEProcess multi(g, starts, rule);
      run_until_vertex_cover(multi, rng, 1ull << 42);
      samples.push_back(static_cast<double>(multi.cover().vertex_cover_step()));
    }
    const auto stats = summarize(samples);
    std::printf("%4u %14.0f %14.0f %10.3f\n", k, stats.mean, stats.mean / k,
                stats.mean / n);
    csv->row({static_cast<double>(n), static_cast<double>(k), stats.mean,
              stats.mean / k, stats.mean / n});
  }
  std::printf("\nreading: flat 'system steps' == no contention penalty; the\n"
              "        'steps/walker' column is the parallel wall-clock gain.\n");
  return 0;
}
