// Section 5: why odd degree is slow. On 3-regular graphs the blue walk
// leaves behind isolated blue stars; the red walk must coupon-collect them,
// giving the observed ~0.93 n ln n cover time (Figure 1's d=3 series).
//
// Rows per n: mean vertex cover normalised by n ln n (paper: 0.93), the
// fraction of vertices discovered as isolated-star centers (paper's
// idealised tree-like estimate: 1/8; measured on finite graphs: ~0.05), and
// the peak simultaneous star census.
#include <cmath>

#include "analysis/blue.hpp"
#include "bench/common.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"
#include "walks/eprocess.hpp"
#include "walks/rules.hpp"

using namespace ewalk;

namespace {

struct StarTrial {
  double cover = 0;
  double stars_discovered = 0;
  double peak_census = 0;
};

StarTrial run_trial(Vertex n, std::uint32_t d, Rng& rng) {
  const Graph g = random_regular_connected(n, d, rng);
  UniformRule rule;
  EProcess walk(g, 0, rule);
  StarTrial out;
  std::uint32_t covered = walk.cover().vertices_covered();
  std::uint64_t next_census = n / 10;
  while (!walk.cover().all_vertices_covered()) {
    const Vertex prev = walk.current();
    const StepColor color = walk.step(rng);
    if (walk.steps() >= next_census) {
      next_census += n / 10;
      const auto report = analyze_blue(g, walk.cover().edge_visited_flags(),
                                       walk.cover().vertex_visited_flags());
      out.peak_census = std::max(
          out.peak_census, static_cast<double>(report.isolated_unvisited_stars));
    }
    if (walk.cover().vertices_covered() == covered) continue;
    covered = walk.cover().vertices_covered();
    const Vertex v = walk.current();
    if (color != StepColor::kBlue || walk.blue_degree(v) != g.degree(v) - 1 ||
        walk.blue_degree(prev) != 0) {
      continue;
    }
    bool star = true;
    for (const Slot& s : g.slots(v)) {
      if (walk.cover().edge_visited(s.edge)) continue;
      if (walk.blue_degree(s.neighbor) != 1) {
        star = false;
        break;
      }
    }
    if (star) ++out.stars_discovered;
  }
  out.cover = static_cast<double>(walk.cover().vertex_cover_step());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = bench::parse_config(argc, argv);
  bench::print_header(
      "Section 5: isolated blue stars on odd-degree (3-regular) graphs",
      "|I| ~ c n stars force coupon-collector cover ~ 0.93 n ln n");

  const std::vector<Vertex> ns = cfg.full
                                     ? std::vector<Vertex>{50000, 100000, 200000}
                                     : std::vector<Vertex>{20000, 40000, 80000};

  auto csv = bench::open_csv("odd_degree_stars",
                             {"n", "cover_over_nlogn", "star_discovery_fraction",
                              "peak_census_fraction"});

  std::printf("%9s %16s %18s %16s\n", "n", "C_V/(n ln n)", "stars/n (discv.)",
              "peak census/n");
  for (const Vertex n : ns) {
    std::vector<double> covers, stars, peaks;
    auto streams = derive_streams(cfg.seed * 52361 + n, cfg.trials);
    for (std::uint32_t t = 0; t < cfg.trials; ++t) {
      const auto trial = run_trial(n, 3, streams[t]);
      covers.push_back(trial.cover);
      stars.push_back(trial.stars_discovered);
      peaks.push_back(trial.peak_census);
    }
    const double c = summarize(covers).mean / (n * std::log(static_cast<double>(n)));
    const double sf = summarize(stars).mean / n;
    const double pf = summarize(peaks).mean / n;
    std::printf("%9u %16.3f %18.4f %16.4f\n", n, c, sf, pf);
    csv->row({static_cast<double>(n), c, sf, pf});
  }
  std::printf("\nexpect: C_V/(n ln n) ~ 0.93 (paper's d=3 constant); star\n"
              "        discovery fraction Theta(1) (paper's idealisation: 1/8).\n");
  return 0;
}
