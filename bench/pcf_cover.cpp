// Walks on PCF-evolving graphs: E-process vs SRW vertex cover while the
// environment assembles around the walker.
//
// Each trial starts from an EMPTY graph on n vertices; the potential edges
// of a connected random 4-regular base open at rate 1 and components freeze
// at rate alpha (Mottram's percolation-with-constant-freezing). The walker
// advances the PCF clock by 1/n per step, so one unit of graph time is n
// walk steps. Sweeping alpha spans the regime transition: at alpha -> 0
// essentially every base edge opens and cover completes near the static
// cover time plus the edge-arrival delay; as alpha grows, components freeze
// before the open subgraph connects, some vertices are stranded forever,
// and trials censor at the step budget (counted in uncovered_trials — the
// censored mean IS the observable there, as in survival analysis).
//
// Rows: for alpha in the sweep and a range of n, the mean (censored) vertex
// cover time of pcf-srw and pcf-eprocess on the same evolving schedule
// family, plus uncovered-trial counts. Results:
// bench_out/SWEEP_pcf_cover.{json,csv}.
//
// Flags: --trials --seed --threads --full --generator pairing|sw
// --ns n1,n2,... --alphas a1,a2,...
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "engine/pcf_process.hpp"
#include "sweep/report.hpp"
#include "sweep/sweep.hpp"

using namespace ewalk;

namespace {

std::vector<double> parse_double_list(const std::string& spec) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    out.push_back(std::stod(spec.substr(pos, comma - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

// One PCF process factory: the schedule stream is split off the trial's
// walk stream, exactly as the registry entries do, so bench samples match
// `ewalk --process pcf-*` samples for the same (seed, point, trial).
template <class WalkT>
ProcessFactory pcf_factory(double alpha) {
  return [alpha](const Graph& g, Rng& rng) -> std::unique_ptr<WalkProcess> {
    Rng schedule_rng = rng.split();
    const double dt = 1.0 / static_cast<double>(g.num_vertices());
    return std::make_unique<PcfProcess<WalkT>>(g, /*start=*/0, alpha, dt,
                                               schedule_rng);
  };
}

}  // namespace

int main(int argc, char** argv) try {
  const Cli cli(argc, argv);
  const auto cfg = bench::parse_config(argc, argv);
  bench::print_header(
      "E-process vs SRW vertex cover on PCF-evolving graphs (4-regular base)",
      "edges open at rate 1, components freeze at rate alpha; dt = 1/n");

  const std::string generator = cli.get("generator", "pairing");
  std::vector<std::uint64_t> ns =
      cfg.full ? std::vector<std::uint64_t>{10000, 20000, 40000}
               : std::vector<std::uint64_t>{2000, 5000};
  if (cli.has("ns")) ns = parse_u64_list(cli.get("ns", ""));
  std::vector<double> alphas{0.0001, 0.001, 0.01};
  if (cli.has("alphas")) alphas = parse_double_list(cli.get("alphas", ""));
  constexpr std::uint32_t kDegree = 4;

  std::vector<SweepPoint> points;
  for (const double alpha : alphas) {
    for (const std::uint64_t n : ns) {
      SweepPoint point;
      point.label = "a" + std::to_string(alpha) + "-n" + std::to_string(n);
      point.params = {{"alpha", alpha},
                      {"n", static_cast<double>(n)},
                      {"r", static_cast<double>(kDegree)}};
      point.graph =
          bench::regular_factory(generator, static_cast<Vertex>(n), kDegree);
      point.series = {
          SweepSeriesSpec{"pcf-srw", pcf_factory<DynamicSrw>(alpha),
                          CoverTarget::kVertices},
          SweepSeriesSpec{"pcf-eprocess", pcf_factory<DynamicEProcess>(alpha),
                          CoverTarget::kVertices},
      };
      points.push_back(std::move(point));
    }
  }

  SweepConfig sc;
  sc.trials = cfg.trials;
  sc.threads = cfg.threads;
  sc.master_seed = cfg.seed;
  sc.reuse_graph = true;  // both walks share the per-trial base instance
  const SweepResult result = run_sweep("pcf_cover", points, sc);

  std::printf("base generator: %s (one shared base per trial)\n",
              generator.c_str());
  std::printf("%10s %8s %13s %5s %13s %5s %8s\n", "alpha", "n", "pcf-srw",
              "unc", "pcf-eproc", "unc", "ratio");
  std::size_t idx = 0;
  for (const double alpha : alphas) {
    for (const std::uint64_t n : ns) {
      const SweepPointResult& point = result.points[idx++];
      const SweepSeriesResult& srw = point.series[0];
      const SweepSeriesResult& ep = point.series[1];
      std::printf("%10.4g %8llu %13.0f %5u %13.0f %5u %8.2f\n", alpha,
                  static_cast<unsigned long long>(n), srw.stats.mean,
                  srw.uncovered_trials, ep.stats.mean, ep.uncovered_trials,
                  srw.stats.mean / ep.stats.mean);
    }
    std::printf("\n");
  }
  std::printf(
      "expect: small alpha ~ static cover + edge-arrival delay, few censored\n"
      "        trials; larger alpha strands vertices and censors at budget.\n");
  const std::string json = write_sweep_json(result);
  const std::string csv = write_sweep_csv(result);
  print_sweep_timing_split(result);
  std::printf("wrote %s and %s\n", json.c_str(), csv.c_str());
  return 0;
} catch (const std::exception& ex) {
  std::fprintf(stderr, "error: %s\n", ex.what());
  return 1;
}
