// Theorem 1's remark: the cover-time bound is independent of the rule A
// used to select unvisited edges — "even if this choice is decided on-line
// by an adversary".
//
// Rows: mean vertex cover time of the E-process on random 4- and 6-regular
// graphs for each shipped rule (uniform / first-slot / last-slot /
// round-robin / adversarial prefer-visited / greedy prefer-unvisited),
// normalised by n. All rules should be Θ(n) with comparable constants.
#include "bench/common.hpp"
#include "covertime/experiment.hpp"
#include "graph/generators.hpp"
#include "walks/rules.hpp"

using namespace ewalk;

int main(int argc, char** argv) {
  const auto cfg = bench::parse_config(argc, argv);
  bench::print_header(
      "Rule-A independence of the E-process vertex cover time",
      "Theorem 1 bound holds for any rule, even adversarial");

  const Vertex n = cfg.full ? 200000 : 50000;

  struct NamedFactory {
    const char* label;
    RuleFactory make;
  };
  const std::vector<NamedFactory> rules{
      {"uniform", [](const Graph&) { return std::make_unique<UniformRule>(); }},
      {"first-slot", [](const Graph&) { return std::make_unique<FirstSlotRule>(); }},
      {"last-slot", [](const Graph&) { return std::make_unique<LastSlotRule>(); }},
      {"round-robin",
       [](const Graph& g) { return std::make_unique<RoundRobinRule>(g.num_vertices()); }},
      {"adversary",
       [](const Graph&) { return std::make_unique<PreferVisitedEndpointRule>(); }},
      {"greedy",
       [](const Graph&) { return std::make_unique<PreferUnvisitedEndpointRule>(); }},
  };

  auto csv = bench::open_csv("rule_independence",
                             {"r", "n", "rule_index", "mean_cover", "ci95",
                              "normalised"});

  for (const std::uint32_t r : {4u, 6u}) {
    std::printf("r = %u, n = %u (%u trials)\n", r, n, cfg.trials);
    std::printf("  %-14s %14s %10s %10s\n", "rule", "C_V (mean)", "+/-95%", "C_V/n");
    const GraphFactory graphs = [n, r](Rng& rng) {
      return random_regular_connected(n, r, rng);
    };
    for (std::size_t i = 0; i < rules.size(); ++i) {
      RunRequest ec;
      ec.trials = cfg.trials;
      ec.threads = cfg.threads;
      ec.seed = cfg.seed * 1299709 + r * 7 + i;
      const auto res = measure_eprocess_cover(graphs, rules[i].make, ec);
      std::printf("  %-14s %14.0f %10.0f %10.3f\n", rules[i].label, res.stats.mean,
                  res.stats.ci95_halfwidth(), res.stats.mean / n);
      csv->row({static_cast<double>(r), static_cast<double>(n),
                static_cast<double>(i), res.stats.mean, res.stats.ci95_halfwidth(),
                res.stats.mean / n});
    }
    std::printf("\n");
  }
  std::printf("expect: all rules Theta(n) — normalised values within a small\n"
              "        constant band; adversary worst, greedy best.\n");
  return 0;
}
