// Theorem 1 / Corollary 2 / Theorem 5: on even-degree random regular graphs
// the E-process covers in Θ(n) while *every* reversible random walk needs
// Ω(n log n) — a speed-up of Ω(log n).
//
// Rows: for r in {4, 6} and a sweep of n, the mean vertex cover time of the
// SRW, a weighted random walk (random edge weights — still Ω(n log n) by
// Theorem 5), and the E-process, plus the SRW/E-process ratio and the
// Theorem-5 lower bound (n/4) log(n/2) that both reversible walks must obey.
//
// Runs as one sweep (src/sweep/) with graph reuse: each (r, n, trial) unit
// builds ONE random regular graph inside its pool task and drives all three
// processes on that same instance — a genuine head-to-head per instance,
// and a third of the generation work of the per-process harness it
// replaces. Results: bench_out/SWEEP_srw_vs_eprocess.{json,csv}.
//
// Flags: --trials --seed --threads --full --generator pairing|sw
// (default pairing) --ns n1,n2,...
#include <cmath>
#include <memory>

#include "bench/common.hpp"
#include "engine/adapters.hpp"
#include "sweep/report.hpp"
#include "sweep/sweep.hpp"
#include "walks/rules.hpp"
#include "walks/srw.hpp"
#include "walks/weighted.hpp"

using namespace ewalk;

int main(int argc, char** argv) try {
  const Cli cli(argc, argv);
  const auto cfg = bench::parse_config(argc, argv);
  bench::print_header(
      "SRW vs weighted walk vs E-process vertex cover (r-regular, r even)",
      "C_V(E) = Theta(n); C_V(any reversible walk) >= (n/4) log(n/2)");

  const std::string generator = cli.get("generator", "pairing");
  std::vector<std::uint64_t> ns =
      cfg.full ? std::vector<std::uint64_t>{20000, 40000, 80000, 160000}
               : std::vector<std::uint64_t>{5000, 10000, 20000, 40000};
  if (cli.has("ns")) ns = parse_u64_list(cli.get("ns", ""));
  const std::vector<std::uint64_t> degrees{4, 6};

  std::vector<SweepPoint> points;
  for (const std::uint64_t r : degrees) {
    for (const std::uint64_t n : ns) {
      SweepPoint point;
      point.label = "r" + std::to_string(r) + "-n" + std::to_string(n);
      point.params = {{"r", static_cast<double>(r)},
                      {"n", static_cast<double>(n)}};
      point.graph = bench::regular_factory(generator, static_cast<Vertex>(n),
                                           static_cast<std::uint32_t>(r));
      point.series = {
          SweepSeriesSpec{"srw",
                          [](const Graph& g, Rng&) -> std::unique_ptr<WalkProcess> {
                            return std::make_unique<SimpleRandomWalk>(g, 0);
                          },
                          CoverTarget::kVertices},
          // Weighted walk: uniform(0.5, 2.0) edge weights — Theorem 5 says
          // the Ω(n log n) bound is weight-independent.
          SweepSeriesSpec{"weighted",
                          [](const Graph& g, Rng& rng) -> std::unique_ptr<WalkProcess> {
                            std::vector<double> w(g.num_edges());
                            for (double& x : w) x = 0.5 + 1.5 * rng.uniform_real();
                            return std::make_unique<WeightedRandomWalk>(g, 0, w);
                          },
                          CoverTarget::kVertices},
          SweepSeriesSpec{"eprocess",
                          [](const Graph& g, Rng&) -> std::unique_ptr<WalkProcess> {
                            return std::make_unique<EProcessHandle>(
                                g, /*start=*/0, std::make_unique<UniformRule>());
                          },
                          CoverTarget::kVertices},
      };
      points.push_back(std::move(point));
    }
  }

  SweepConfig sc;
  sc.trials = cfg.trials;
  sc.threads = cfg.threads;
  sc.master_seed = cfg.seed;
  sc.reuse_graph = true;  // all three walks per trial share one instance
  const SweepResult result = run_sweep("srw_vs_eprocess", points, sc);

  std::printf("generator: %s (one shared graph per trial)\n", generator.c_str());
  std::printf("%3s %8s %13s %13s %13s %8s %13s\n", "r", "n", "SRW", "weighted",
              "E-process", "ratio", "Thm5 bound");
  std::size_t idx = 0;
  for (const std::uint64_t r : degrees) {
    for (const std::uint64_t n : ns) {
      const SweepPointResult& point = result.points[idx++];
      const double srw = point.series[0].stats.mean;
      const double weighted = point.series[1].stats.mean;
      const double ep = point.series[2].stats.mean;
      const double nd = static_cast<double>(n);
      const double bound = nd / 4.0 * std::log(nd / 2.0);
      std::printf("%3llu %8llu %13.0f %13.0f %13.0f %8.2f %13.0f\n",
                  static_cast<unsigned long long>(r),
                  static_cast<unsigned long long>(n), srw, weighted, ep,
                  srw / ep, bound);
    }
    std::printf("\n");
  }
  std::printf("expect: ratio grows ~ log n; SRW and weighted >= Thm5 bound;\n"
              "        E-process mean within a small constant of n.\n");
  const std::string json = write_sweep_json(result);
  const std::string csv = write_sweep_csv(result);
  print_sweep_timing_split(result);
  std::printf("wrote %s and %s\n", json.c_str(), csv.c_str());
  return 0;
} catch (const std::exception& ex) {
  std::fprintf(stderr, "error: %s\n", ex.what());
  return 1;
}
