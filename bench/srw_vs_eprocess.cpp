// Theorem 1 / Corollary 2 / Theorem 5: on even-degree random regular graphs
// the E-process covers in Θ(n) while *every* reversible random walk needs
// Ω(n log n) — a speed-up of Ω(log n).
//
// Rows: for r in {4, 6} and a sweep of n, the mean vertex cover time of the
// SRW, a weighted random walk (random edge weights — still Ω(n log n) by
// Theorem 5), and the E-process, plus the SRW/E-process ratio and the
// Theorem-5 lower bound (n/4) log(n/2) that both reversible walks must obey.
#include <cmath>

#include "bench/common.hpp"
#include "covertime/experiment.hpp"
#include "engine/driver.hpp"
#include "graph/generators.hpp"
#include "walks/rules.hpp"
#include "walks/weighted.hpp"

using namespace ewalk;

int main(int argc, char** argv) {
  const auto cfg = bench::parse_config(argc, argv);
  bench::print_header(
      "SRW vs weighted walk vs E-process vertex cover (r-regular, r even)",
      "C_V(E) = Theta(n); C_V(any reversible walk) >= (n/4) log(n/2)");

  const std::vector<Vertex> ns = cfg.full
                                     ? std::vector<Vertex>{20000, 40000, 80000, 160000}
                                     : std::vector<Vertex>{5000, 10000, 20000, 40000};

  auto csv = bench::open_csv("srw_vs_eprocess",
                             {"r", "n", "srw_cover", "weighted_cover", "eprocess_cover",
                              "ratio_srw_over_e", "thm5_lower_bound"});

  std::printf("%3s %8s %13s %13s %13s %8s %13s\n", "r", "n", "SRW", "weighted",
              "E-process", "ratio", "Thm5 bound");
  for (const std::uint32_t r : {4u, 6u}) {
    for (const Vertex n : ns) {
      CoverExperimentConfig ec;
      ec.trials = cfg.trials;
      ec.threads = cfg.threads;
      ec.master_seed = cfg.seed * 7919 + r * 31 + n;
      const GraphFactory graphs = [n, r](Rng& rng) {
        return random_regular_connected(n, r, rng);
      };
      const RuleFactory rules = [](const Graph&) {
        return std::make_unique<UniformRule>();
      };
      const auto ep = measure_eprocess_cover(graphs, rules, ec);
      const auto srw = measure_srw_cover(graphs, ec);

      // Weighted walk: uniform(0.5, 2.0) edge weights — Theorem 5 says the
      // Ω(n log n) bound is weight-independent.
      const auto weighted = run_trials_summary(
          cfg.trials, cfg.threads, ec.master_seed + 13,
          [n, r](Rng& rng, std::uint32_t) -> double {
            const Graph g = random_regular_connected(n, r, rng);
            std::vector<double> w(g.num_edges());
            for (double& x : w) x = 0.5 + 1.5 * rng.uniform_real();
            WeightedRandomWalk walk(g, 0, w);
            run_until_vertex_cover(walk, rng, 1ull << 40);
            return static_cast<double>(walk.cover().vertex_cover_step());
          });

      const double bound = n / 4.0 * std::log(n / 2.0);
      const double ratio = srw.stats.mean / ep.stats.mean;
      std::printf("%3u %8u %13.0f %13.0f %13.0f %8.2f %13.0f\n", r, n,
                  srw.stats.mean, weighted.mean, ep.stats.mean, ratio, bound);
      csv->row({static_cast<double>(r), static_cast<double>(n), srw.stats.mean,
                weighted.mean, ep.stats.mean, ratio, bound});
    }
    std::printf("\n");
  }
  std::printf("expect: ratio grows ~ log n; SRW and weighted >= Thm5 bound;\n"
              "        E-process mean within a small constant of n.\n");
  return 0;
}
