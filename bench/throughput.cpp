// Steps/sec throughput microbenchmark: the repo's perf trajectory.
//
// Every optimisation PR needs a number. This bench sweeps the hot processes
// (SRW, E-process under the uniform and round-robin rules, coalescing SRW
// tokens, Herman's protocol) over the standard graph families (cycle,
// random-regular, hypercube, LPS Ramanujan, complete) and reports raw
// steps/sec for each (process, family) pair, driving every process through
// the engine's chunked run_until exactly as registry/CLI runs do — so the
// measured path is the path real experiments take (virtual dispatch
// amortised per chunk, not per step).
//
// Output:
//   * stdout table
//   * bench_out/BENCH_throughput.csv   (one row per pair)
//   * bench_out/BENCH_throughput.json  (machine-readable; schema below)
//
// JSON schema (checked by CI's perf-smoke job):
//   { "bench": "throughput", "version": 2, "quick": bool, "seed": u64,
//     "chunk": u64,
//     "results": [ { "process": str, "graph": str, "n": u32, "m": u32,
//                    "bundle": u32, "steps": u64, "seconds": f64,
//                    "steps_per_sec": f64 },
//                  ... ] }
//   (version 1 lacked the per-result "bundle" width; the validator accepts
//   both, so old artifacts keep validating.)
//
// Flags: --quick (CI sizes), --steps N (override steps per pair),
//        --seed S, --chunk K (driver check stride),
//        --bundle W1,W2,... (latency-tier bundle widths, default 1,4,8,16),
//        --latency-n N / --latency-steps S (latency-tier size and per-walk
//        budget), --latency-reps R (best-of-R per row, default 3).
//
// Throughput is measured from a fresh process each time, so the E-process
// numbers include the expensive all-blue opening phase — that is deliberate:
// the blue phase is where the eviction cost lives, and a dense family
// (complete) is included precisely to expose it.
//
// The latency-bound tier (rows with graph "regular-1m") runs SRW and the
// uniform-rule E-process on an n = 1e6 sparse random-regular graph — a CSR
// far outside LLC, where every step is a dependent DRAM miss — once per
// bundle width: width W interleaves W independent walks round-robin through
// engine/bundle.hpp so the misses overlap. Every walk gets the SAME per-walk
// budget (--latency-steps) regardless of width — per-step work is then
// identical across widths and steps/sec across the width column is a direct
// read of how much latency the interleave hides (total work scales with W).
// Each row is the best of --latency-reps runs to cut through runner jitter.
// Runs in --quick too: perf PRs quote this table.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "engine/bundle.hpp"
#include "engine/driver.hpp"
#include "engine/params.hpp"
#include "engine/registry.hpp"
#include "graph/graph.hpp"
#include "util/timer.hpp"

namespace {

using namespace ewalk;

struct FamilySpec {
  std::string key;        // short label, e.g. "cycle"
  std::string generator;  // GeneratorRegistry name
  ParamMap params;
};

struct ProcessSpec {
  std::string key;      // short label, e.g. "eprocess-rr"
  std::string process;  // ProcessRegistry name
  ParamMap params;
  bool cycle_only = false;  // herman needs a ring
};

struct Result {
  std::string process;
  std::string graph;
  Vertex n;
  EdgeId m;
  std::uint32_t bundle = 1;  // interleave width (1 = plain chunked run_until)
  std::uint64_t steps;
  double seconds;
  double steps_per_sec;
};

std::vector<FamilySpec> families(bool quick) {
  if (quick) {
    return {
        {"cycle", "cycle", {{"n", "50000"}}},
        {"regular", "regular", {{"n", "10000"}, {"r", "8"}}},
        {"hypercube", "hypercube", {{"r", "12"}}},
        {"lps", "lps", {{"p", "5"}, {"q", "13"}}},
        {"complete", "complete", {{"n", "1000"}}},
    };
  }
  return {
      {"cycle", "cycle", {{"n", "200000"}}},
      {"regular", "regular", {{"n", "50000"}, {"r", "8"}}},
      {"hypercube", "hypercube", {{"r", "14"}}},
      {"lps", "lps", {{"p", "5"}, {"q", "29"}}},
      {"complete", "complete", {{"n", "2000"}}},
  };
}

std::vector<ProcessSpec> processes() {
  return {
      {"srw", "srw", {}},
      {"eprocess-uniform", "eprocess", {{"rule", "uniform"}}},
      {"eprocess-rr", "eprocess", {{"rule", "roundrobin"}}},
      {"coalescing-srw", "coalescing-srw", {{"tokens", "32"}}},
      {"herman", "herman", {{"tokens", "33"}}, /*cycle_only=*/true},
  };
}

/// Escapes nothing (keys are [a-z0-9-]); kept trivial on purpose.
void write_json(const std::string& path, bool quick, std::uint64_t seed,
                std::uint64_t chunk, const std::vector<Result>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"throughput\",\n  \"version\": 2,\n"
               "  \"quick\": %s,\n  \"seed\": %llu,\n  \"chunk\": %llu,\n"
               "  \"results\": [\n",
               quick ? "true" : "false",
               static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(chunk));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"process\": \"%s\", \"graph\": \"%s\", \"n\": %u, "
                 "\"m\": %u, \"bundle\": %u, \"steps\": %llu, "
                 "\"seconds\": %.6f, \"steps_per_sec\": %.1f}%s\n",
                 r.process.c_str(), r.graph.c_str(), r.n, r.m, r.bundle,
                 static_cast<unsigned long long>(r.steps), r.seconds,
                 r.steps_per_sec, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const std::uint64_t seed = cli.get_u64("seed", 1);
  const std::uint64_t chunk = cli.get_u64("chunk", 4096);
  const std::uint64_t steps_per_pair =
      cli.get_u64("steps", quick ? 400000 : 4000000);

  bench::print_header(
      "throughput: steps/sec per (process, family) pair",
      "engine hot path — O(1) blue eviction + chunked virtual dispatch");

  auto csv = bench::open_csv(
      "BENCH_throughput", {"process", "graph", "n", "m", "bundle", "steps",
                           "seconds", "steps_per_sec"});

  std::vector<Result> results;
  std::printf("%-18s %-12s %10s %12s %7s %10s %14s\n", "process", "graph",
              "n", "m", "bundle", "seconds", "steps/sec");

  const auto record = [&](const Result& r) {
    results.push_back(r);
    std::printf("%-18s %-12s %10u %12u %7u %10.3f %14.0f\n", r.process.c_str(),
                r.graph.c_str(), r.n, r.m, r.bundle, r.seconds,
                r.steps_per_sec);
    csv->row({r.process, r.graph, std::to_string(r.n), std::to_string(r.m),
              std::to_string(r.bundle), std::to_string(r.steps),
              std::to_string(r.seconds), std::to_string(r.steps_per_sec)});
  };

  std::uint32_t pair = 0;
  for (const FamilySpec& fam : families(quick)) {
    Rng graph_rng(seed);
    const Graph g =
        GeneratorRegistry::instance().create(fam.generator, fam.params, graph_rng);
    for (const ProcessSpec& proc : processes()) {
      if (proc.cycle_only && fam.key != "cycle") continue;
      ++pair;
      Rng rng(seed * 9176 + pair);
      auto walk =
          ProcessRegistry::instance().create(proc.process, g, proc.params, rng);
      WallTimer timer;
      run_until(
          *walk, rng, [](const CoverState&) { return false; }, steps_per_pair,
          chunk);
      const double secs = timer.seconds();
      const double rate = static_cast<double>(walk->steps()) / secs;
      record(Result{proc.key, fam.key, g.num_vertices(), g.num_edges(), 1,
                    walk->steps(), secs, rate});
    }
  }

  // ---- Latency-bound tier: bundle-width sweep on an out-of-cache CSR ----
  // n = 1e6 at r = 4 puts the CSR (~24 MB of slots + offsets) far past LLC;
  // each transition is a dependent DRAM miss, so single-walk throughput is
  // latency-bound, not bandwidth-bound. Interleaving W independent walks
  // round-robin (engine/bundle.hpp) keeps W misses in flight. Every walk
  // gets the SAME per-walk budget (latency-steps) regardless of width — NOT
  // total/W — because per-step cost is phase-dependent for the E-process
  // (the all-blue opening is the expensive part): equal per-walk budgets
  // keep the phase composition, and hence the per-step work, identical
  // across widths, so steps/sec is the directly comparable rate. Total work
  // therefore scales with W; `steps` in the output is the true total.
  {
    const Vertex lat_n =
        static_cast<Vertex>(cli.get_u64("latency-n", 1000000));
    const std::uint32_t lat_r = 4;
    const std::uint64_t lat_steps =
        cli.get_u64("latency-steps", quick ? 1000000 : 4000000);
    const std::uint64_t lat_reps = std::max<std::uint64_t>(
        1, cli.get_u64("latency-reps", 3));
    std::vector<std::uint64_t> widths = {1, 4, 8, 16};
    if (cli.has("bundle")) widths = parse_u64_list(cli.get("bundle", "1"));

    std::printf("-- latency-bound tier: random-regular n=%u r=%u, "
                "%llu steps per interleaved walk, best of %llu --\n",
                lat_n, lat_r, static_cast<unsigned long long>(lat_steps),
                static_cast<unsigned long long>(lat_reps));
    Rng lat_graph_rng(seed);
    const Graph g = random_regular_pairing_connected(lat_n, lat_r, lat_graph_rng);
    const std::vector<ProcessSpec> lat_procs = {
        {"srw", "srw", {}},
        {"eprocess-uniform", "eprocess", {{"rule", "uniform"}}},
    };
    for (const ProcessSpec& proc : lat_procs) {
      for (const std::uint64_t width : widths) {
        if (width == 0) throw std::invalid_argument("--bundle widths must be >= 1");
        ++pair;
        // Shared runners are noisy; each row is the best of `lat_reps`
        // identical runs (fresh processes, same streams), the standard way
        // to read a throughput ceiling through scheduling jitter.
        Result best{};
        for (std::uint64_t rep = 0; rep < lat_reps; ++rep) {
          // Per-trial private streams, derived exactly like measure_cover's:
          // one stream per interleaved walk, consumed only by that walk.
          std::vector<Rng> streams = derive_streams(
              seed * 9176 + pair, static_cast<std::uint32_t>(width));
          std::vector<std::unique_ptr<WalkProcess>> walks;
          walks.reserve(width);
          std::vector<BundleTrial> bundle(width);
          for (std::uint64_t i = 0; i < width; ++i) {
            walks.push_back(ProcessRegistry::instance().create(
                proc.process, g, proc.params, streams[i]));
            bundle[i] = BundleTrial{walks.back().get(), &streams[i], lat_steps,
                                    chunk};
          }
          WallTimer timer;
          run_trial_bundle(std::span<const BundleTrial>(bundle),
                           [](const WalkProcess&) { return false; });
          const double secs = timer.seconds();
          std::uint64_t total_steps = 0;
          for (const auto& w : walks) total_steps += w->steps();
          const double rate = static_cast<double>(total_steps) / secs;
          if (rep == 0 || rate > best.steps_per_sec)
            best = Result{proc.key, "regular-1m", g.num_vertices(),
                          g.num_edges(), static_cast<std::uint32_t>(width),
                          total_steps, secs, rate};
        }
        record(best);
      }
    }
  }

  // bench_out/ already exists: open_csv created it.
  write_json("bench_out/BENCH_throughput.json", quick, seed, chunk, results);
  return 0;
}
