// Steps/sec throughput microbenchmark: the repo's perf trajectory.
//
// Every optimisation PR needs a number. This bench sweeps the hot processes
// (SRW, E-process under the uniform and round-robin rules, coalescing SRW
// tokens, Herman's protocol) over the standard graph families (cycle,
// random-regular, hypercube, LPS Ramanujan, complete) and reports raw
// steps/sec for each (process, family) pair, driving every process through
// the engine's chunked run_until exactly as registry/CLI runs do — so the
// measured path is the path real experiments take (virtual dispatch
// amortised per chunk, not per step).
//
// Output:
//   * stdout table
//   * bench_out/BENCH_throughput.csv   (one row per pair)
//   * bench_out/BENCH_throughput.json  (machine-readable; schema below)
//
// JSON schema (checked by CI's perf-smoke job):
//   { "bench": "throughput", "version": 1, "quick": bool, "seed": u64,
//     "chunk": u64,
//     "results": [ { "process": str, "graph": str, "n": u32, "m": u32,
//                    "steps": u64, "seconds": f64, "steps_per_sec": f64 },
//                  ... ] }
//
// Flags: --quick (CI sizes), --steps N (override steps per pair),
//        --seed S, --chunk K (driver check stride).
//
// Throughput is measured from a fresh process each time, so the E-process
// numbers include the expensive all-blue opening phase — that is deliberate:
// the blue phase is where the eviction cost lives, and a dense family
// (complete) is included precisely to expose it.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "engine/driver.hpp"
#include "engine/params.hpp"
#include "engine/registry.hpp"
#include "graph/graph.hpp"
#include "util/timer.hpp"

namespace {

using namespace ewalk;

struct FamilySpec {
  std::string key;        // short label, e.g. "cycle"
  std::string generator;  // GeneratorRegistry name
  ParamMap params;
};

struct ProcessSpec {
  std::string key;      // short label, e.g. "eprocess-rr"
  std::string process;  // ProcessRegistry name
  ParamMap params;
  bool cycle_only = false;  // herman needs a ring
};

struct Result {
  std::string process;
  std::string graph;
  Vertex n;
  EdgeId m;
  std::uint64_t steps;
  double seconds;
  double steps_per_sec;
};

std::vector<FamilySpec> families(bool quick) {
  if (quick) {
    return {
        {"cycle", "cycle", {{"n", "50000"}}},
        {"regular", "regular", {{"n", "10000"}, {"r", "8"}}},
        {"hypercube", "hypercube", {{"r", "12"}}},
        {"lps", "lps", {{"p", "5"}, {"q", "13"}}},
        {"complete", "complete", {{"n", "1000"}}},
    };
  }
  return {
      {"cycle", "cycle", {{"n", "200000"}}},
      {"regular", "regular", {{"n", "50000"}, {"r", "8"}}},
      {"hypercube", "hypercube", {{"r", "14"}}},
      {"lps", "lps", {{"p", "5"}, {"q", "29"}}},
      {"complete", "complete", {{"n", "2000"}}},
  };
}

std::vector<ProcessSpec> processes() {
  return {
      {"srw", "srw", {}},
      {"eprocess-uniform", "eprocess", {{"rule", "uniform"}}},
      {"eprocess-rr", "eprocess", {{"rule", "roundrobin"}}},
      {"coalescing-srw", "coalescing-srw", {{"tokens", "32"}}},
      {"herman", "herman", {{"tokens", "33"}}, /*cycle_only=*/true},
  };
}

/// Escapes nothing (keys are [a-z0-9-]); kept trivial on purpose.
void write_json(const std::string& path, bool quick, std::uint64_t seed,
                std::uint64_t chunk, const std::vector<Result>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"throughput\",\n  \"version\": 1,\n"
               "  \"quick\": %s,\n  \"seed\": %llu,\n  \"chunk\": %llu,\n"
               "  \"results\": [\n",
               quick ? "true" : "false",
               static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(chunk));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"process\": \"%s\", \"graph\": \"%s\", \"n\": %u, "
                 "\"m\": %u, \"steps\": %llu, \"seconds\": %.6f, "
                 "\"steps_per_sec\": %.1f}%s\n",
                 r.process.c_str(), r.graph.c_str(), r.n, r.m,
                 static_cast<unsigned long long>(r.steps), r.seconds,
                 r.steps_per_sec, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const std::uint64_t seed = cli.get_u64("seed", 1);
  const std::uint64_t chunk = cli.get_u64("chunk", 4096);
  const std::uint64_t steps_per_pair =
      cli.get_u64("steps", quick ? 400000 : 4000000);

  bench::print_header(
      "throughput: steps/sec per (process, family) pair",
      "engine hot path — O(1) blue eviction + chunked virtual dispatch");

  auto csv = bench::open_csv(
      "BENCH_throughput",
      {"process", "graph", "n", "m", "steps", "seconds", "steps_per_sec"});

  std::vector<Result> results;
  std::printf("%-18s %-10s %10s %12s %10s %14s\n", "process", "graph", "n",
              "m", "seconds", "steps/sec");

  std::uint32_t pair = 0;
  for (const FamilySpec& fam : families(quick)) {
    Rng graph_rng(seed);
    const Graph g =
        GeneratorRegistry::instance().create(fam.generator, fam.params, graph_rng);
    for (const ProcessSpec& proc : processes()) {
      if (proc.cycle_only && fam.key != "cycle") continue;
      ++pair;
      Rng rng(seed * 9176 + pair);
      auto walk =
          ProcessRegistry::instance().create(proc.process, g, proc.params, rng);
      WallTimer timer;
      run_until(
          *walk, rng, [](const CoverState&) { return false; }, steps_per_pair,
          chunk);
      const double secs = timer.seconds();
      const double rate = static_cast<double>(walk->steps()) / secs;
      results.push_back(Result{proc.key, fam.key, g.num_vertices(),
                               g.num_edges(), walk->steps(), secs, rate});
      std::printf("%-18s %-10s %10u %12u %10.3f %14.0f\n", proc.key.c_str(),
                  fam.key.c_str(), g.num_vertices(), g.num_edges(), secs, rate);
      csv->row({proc.key, fam.key, std::to_string(g.num_vertices()),
                std::to_string(g.num_edges()), std::to_string(walk->steps()),
                std::to_string(secs), std::to_string(rate)});
    }
  }

  // bench_out/ already exists: open_csv created it.
  write_json("bench_out/BENCH_throughput.json", quick, seed, chunk, results);
  return 0;
}
