// Expander census: the structural side of the paper on real graphs.
//
// For a menu of graphs this example reports everything Theorem 1 and
// Theorem 3 care about: eigenvalue gap 1-λmax (lazy gap for bipartite),
// girth, certified ℓ-goodness lower bound, conductance bounds, mixing time
// estimate — then the predicted vs measured E-process cover time.
//
//   $ ./expander_census [--seed 3] [--trials 3]
#include <cmath>
#include <cstdio>

#include "analysis/ell_good.hpp"
#include "analysis/girth.hpp"
#include "engine/driver.hpp"
#include "graph/generators.hpp"
#include "graph/lps.hpp"
#include "spectral/conductance.hpp"
#include "spectral/spectrum.hpp"
#include "util/cli.hpp"
#include "walks/eprocess.hpp"
#include "walks/rules.hpp"

namespace {

using namespace ewalk;

void census(const char* name, const Graph& g, std::uint32_t trials,
            std::uint64_t seed) {
  const auto spec = estimate_spectrum(g);
  const double gap = spec.gap() > 1e-9 ? spec.gap() : spec.lazy_gap();
  const std::uint32_t gi = girth(g);
  // Certified ℓ bound: density certificate at size 6 (cheap) + girth bound.
  const std::uint32_t ell = certified_ell_good(g, 6);
  const auto phi = conductance_bounds_from_lambda2(spec.lambda2);
  const double n = g.num_vertices();
  const double tmix = mixing_time_estimate(gap, g.num_vertices());

  double cover = 0;
  for (std::uint32_t t = 0; t < trials; ++t) {
    Rng rng(seed + t);
    UniformRule rule;
    EProcess walk(g, 0, rule);
    run_until_vertex_cover(walk, rng, 1ull << 42);
    cover += static_cast<double>(walk.cover().vertex_cover_step());
  }
  cover /= trials;

  // Theorem 1 shape: n + n log n / (ell * gap).
  const double predicted = n + n * std::log(n) / (ell * gap);
  std::printf("%-18s %7.0f %7u %5u %7.4f %6.2f..%-5.2f %9.0f %11.0f %11.0f\n",
              name, n, gi == kInfiniteGirth ? 0 : gi, ell, gap, phi.lower,
              phi.upper, tmix, predicted, cover);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ewalk;
  const Cli cli(argc, argv);
  const std::uint64_t seed = cli.get_u64("seed", 3);
  const std::uint32_t trials = static_cast<std::uint32_t>(cli.get_int("trials", 3));
  Rng rng(seed);

  std::printf("%-18s %7s %7s %5s %7s %12s %9s %11s %11s\n", "graph", "n",
              "girth", "ell", "gap", "phi in", "T_mix", "Thm1 shape",
              "measured");

  census("4-regular", random_regular_connected(10000, 4, rng), trials, seed);
  census("6-regular", random_regular_connected(10000, 6, rng), trials, seed);
  census("ham-union k=2", hamiltonian_cycle_union(10000, 2, rng), trials, seed);
  census("LPS X^{5,13}", lps_graph({5, 13}), trials, seed);
  census("LPS X^{5,29}", lps_graph({5, 29}), trials, seed);
  census("torus 100x100", torus_2d(100, 100), trials, seed);
  census("hypercube r=12", hypercube(12), trials, seed);

  std::printf(
      "\nreading: expanders (top rows) have constant gap and ell >= girth-ish,\n"
      "so the Theorem-1 shape is Theta(n) and the measured cover matches; the\n"
      "torus has vanishing gap — Theorem 1's hypothesis fails and cover grows.\n");
  return 0;
}
