// Adversarial graph exploration demo.
//
// Theorem 1 guarantees the E-process covers an even-degree ℓ-good expander
// in O(n + n log n / ℓ) steps *regardless* of how the unvisited-edge choices
// are made — "decided on-line by an adversary". This example lets you watch
// that play out: it runs the E-process under every shipped rule (including a
// custom inline adversary defined right here against the public rule API)
// and reports cover times and phase structure.
//
//   $ ./graph_exploration [--n 20000] [--r 6] [--seed 7]
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/blue.hpp"
#include "engine/driver.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "walks/eprocess.hpp"
#include "walks/rules.hpp"

namespace {

using namespace ewalk;

/// A custom adversary written against the public API: always walk the blue
/// edge whose far endpoint has the *smallest* blue degree — steering the
/// walk toward nearly-exhausted territory so fresh vertices stay hidden.
/// (Rules can read anything through the view; they cannot mutate. Candidates
/// are read lazily via view.blue_slot(at, i) — no span is copied.)
class StarveFreshVerticesRule final : public UnvisitedEdgeRule {
 public:
  explicit StarveFreshVerticesRule(const Graph&) {}
  std::uint32_t choose_index(const EProcessView& view, Vertex at,
                             std::uint32_t blue_count, Rng&) override {
    std::uint32_t best = 0;
    std::uint32_t best_score = score(view, view.blue_slot(at, 0));
    for (std::uint32_t i = 1; i < blue_count; ++i) {
      const std::uint32_t s = score(view, view.blue_slot(at, i));
      if (s < best_score) {
        best = i;
        best_score = s;
      }
    }
    return best;
  }
  const char* name() const override { return "starve-fresh"; }

 private:
  static std::uint32_t score(const EProcessView& view, const Slot& s) {
    // Visited endpoints score low (prefer them); fresh endpoints score high.
    return view.cover().vertex_visited(s.neighbor) ? 0 : 1;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ewalk;
  const Cli cli(argc, argv);
  const Vertex n = static_cast<Vertex>(cli.get_int("n", 20000));
  const std::uint32_t r = static_cast<std::uint32_t>(cli.get_int("r", 6));
  const std::uint64_t seed = cli.get_u64("seed", 7);

  Rng graph_rng(seed);
  const Graph g = random_regular_connected(n, r, graph_rng);
  std::printf("exploring a %u-regular graph, n = %u, m = %u\n\n", r, n, g.num_edges());
  std::printf("%-22s %12s %10s %10s %10s %8s\n", "rule", "cover time", "C_V/n",
              "blue", "red", "phases");

  struct Entry {
    const char* label;
    std::unique_ptr<UnvisitedEdgeRule> rule;
  };
  std::vector<Entry> entries;
  entries.push_back({"uniform (paper GRW)", std::make_unique<UniformRule>()});
  entries.push_back({"first-slot", std::make_unique<FirstSlotRule>()});
  entries.push_back({"round-robin", std::make_unique<RoundRobinRule>(g.num_vertices())});
  entries.push_back({"prefer-visited (adv)", std::make_unique<PreferVisitedEndpointRule>()});
  entries.push_back({"starve-fresh (adv)", std::make_unique<StarveFreshVerticesRule>(g)});
  entries.push_back({"greedy-unvisited", std::make_unique<PreferUnvisitedEndpointRule>()});

  for (auto& [label, rule] : entries) {
    Rng rng(seed + 1);
    EProcess walk(g, 0, *rule, EProcessOptions{.record_phases = true});
    run_until_vertex_cover(walk, rng, 1ull << 42);
    std::printf("%-22s %12llu %10.3f %10llu %10llu %8zu\n", label,
                static_cast<unsigned long long>(walk.cover().vertex_cover_step()),
                static_cast<double>(walk.cover().vertex_cover_step()) / n,
                static_cast<unsigned long long>(walk.blue_steps()),
                static_cast<unsigned long long>(walk.red_steps()),
                walk.phases().size());
  }

  std::printf(
      "\nreading: every rule — including the two adversaries — lands within a\n"
      "constant factor of n, as Theorem 1 promises for even-degree expanders.\n");
  return 0;
}
