// Network patrol scenario.
//
// Motivation from the paper's related work ([16] Yanovski–Wagner–Bruckstein:
// "a distributed ant algorithm for efficiently patrolling a network"): a
// patrol agent must repeatedly visit every link of a data-centre-style
// network, detecting failures quickly. The relevant metrics are the time to
// first full sweep (edge cover) and the *revisit gap* — how stale any edge
// gets in the steady state.
//
// We compare four agents on an even-degree expander topology (union of
// Hamiltonian rings — a plausible structured overlay):
//   * random patrol (SRW),
//   * E-process patrol (prefers never-traversed links; random otherwise),
//   * rotor-router patrol (deterministic, settles into an Eulerian tour),
//   * Least-Used-First patrol (locally fair).
//
//   $ ./network_patrol [--n 5000] [--rings 2] [--sweeps 4] [--seed 1]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "engine/driver.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "walks/eprocess.hpp"
#include "walks/locally_fair.hpp"
#include "walks/rotor.hpp"
#include "walks/rules.hpp"
#include "walks/srw.hpp"

namespace {

using namespace ewalk;

/// Steady-state staleness probe: run `horizon` further steps, recording for
/// each edge the largest gap between consecutive traversals (stale links are
/// patrol failures). The stepper abstracts over the walk types.
template <typename StepFn>
std::uint64_t max_revisit_gap(const Graph& g, StepFn&& stepper, std::uint64_t horizon) {
  std::vector<std::uint64_t> last(g.num_edges(), 0);
  std::uint64_t worst = 0;
  for (std::uint64_t t = 1; t <= horizon; ++t) {
    const EdgeId e = stepper();
    worst = std::max(worst, t - last[e]);
    last[e] = t;
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    worst = std::max(worst, horizon - last[e] + 1);
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ewalk;
  const Cli cli(argc, argv);
  const Vertex n = static_cast<Vertex>(cli.get_int("n", 5000));
  const std::uint32_t rings = static_cast<std::uint32_t>(cli.get_int("rings", 2));
  Rng rng(cli.get_u64("seed", 1));

  const Graph g = hamiltonian_cycle_union(n, rings, rng);
  const std::uint64_t horizon = 20ull * g.num_edges();
  std::printf("overlay network: %u nodes, %u links (%u-regular)\n\n",
              g.num_vertices(), g.num_edges(), 2 * rings);
  std::printf("%-16s %16s %18s\n", "agent", "first full sweep", "max revisit gap");

  {
    SimpleRandomWalk walk(g, 0);
    run_until_edge_cover(walk, rng, 1ull << 42);
    const auto sweep = walk.cover().edge_cover_step();
    Rng probe_rng = rng.split();
    const auto gap = max_revisit_gap(
        g,
        [&]() {
          const Vertex at = walk.current();
          walk.step(probe_rng);
          // Recover traversed edge: find slot leading to new position. For
          // reporting only; ties among parallel edges are irrelevant here.
          for (const Slot& s : g.slots(at))
            if (s.neighbor == walk.current()) return s.edge;
          return EdgeId{0};
        },
        horizon);
    std::printf("%-16s %16llu %18llu\n", "random (SRW)",
                static_cast<unsigned long long>(sweep),
                static_cast<unsigned long long>(gap));
  }

  {
    UniformRule rule;
    EProcess walk(g, 0, rule);
    Rng walk_rng = rng.split();
    run_until_edge_cover(walk, walk_rng, 1ull << 42);
    const auto sweep = walk.cover().edge_cover_step();
    std::printf("%-16s %16llu %18s\n", "E-process",
                static_cast<unsigned long long>(sweep),
                "(falls back to SRW)");
  }

  {
    RotorRouter walk(g, 0);
    run_until_edge_cover(walk, 1ull << 42);
    const auto sweep = walk.cover().edge_cover_step();
    // After stabilisation the rotor tour is Eulerian: every edge exactly
    // twice (once per direction) per 2m steps => revisit gap <= 2m.
    std::vector<std::uint64_t> last(g.num_edges(), 0);
    std::uint64_t worst = 0;
    for (std::uint64_t t = 1; t <= horizon; ++t) {
      const Vertex at = walk.current();
      walk.step();
      for (const Slot& s : g.slots(at))
        if (s.neighbor == walk.current()) {
          worst = std::max(worst, t - last[s.edge]);
          last[s.edge] = t;
          break;
        }
    }
    std::printf("%-16s %16llu %18llu\n", "rotor-router",
                static_cast<unsigned long long>(sweep),
                static_cast<unsigned long long>(worst));
  }

  {
    LocallyFairWalk walk(g, 0, FairnessCriterion::kLeastUsedFirst);
    run_until_edge_cover(walk, 1ull << 42);
    const auto sweep = walk.cover().edge_cover_step();
    std::vector<std::uint64_t> last(g.num_edges(), 0);
    std::uint64_t worst = 0;
    for (std::uint64_t t = 1; t <= horizon; ++t) {
      const Vertex at = walk.current();
      walk.step();
      for (const Slot& s : g.slots(at))
        if (s.neighbor == walk.current()) {
          worst = std::max(worst, t - last[s.edge]);
          last[s.edge] = t;
          break;
        }
    }
    std::printf("%-16s %16llu %18llu\n", "least-used-first",
                static_cast<unsigned long long>(sweep),
                static_cast<unsigned long long>(worst));
  }

  std::printf(
      "\nreading: the E-process wins the first sweep (every step before\n"
      "exhaustion discovers a new link — sweep ~= m + epsilon); deterministic\n"
      "agents bound the steady-state revisit gap, the SRW does not.\n");
  return 0;
}
