// Quickstart: build an even-degree expander, run the E-process, and compare
// its cover time with a simple random walk.
//
//   $ ./quickstart [--n 20000] [--r 4] [--seed 1]
//
// This is the 60-second tour of the library's public API:
//   1. generate a graph           (ewalk::random_regular_connected)
//   2. pick a rule A              (ewalk::UniformRule — the paper's u.a.r.)
//   3. run the walk               (ewalk::EProcess)
//   4. read off the cover time    (walk.cover().vertex_cover_step())
#include <cmath>
#include <cstdio>

#include "engine/driver.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "walks/eprocess.hpp"
#include "walks/rules.hpp"
#include "walks/srw.hpp"

int main(int argc, char** argv) {
  using namespace ewalk;
  const Cli cli(argc, argv);
  const Vertex n = static_cast<Vertex>(cli.get_int("n", 20000));
  const std::uint32_t r = static_cast<std::uint32_t>(cli.get_int("r", 4));
  Rng rng(cli.get_u64("seed", 1));

  std::printf("generating a random %u-regular graph on %u vertices...\n", r, n);
  const Graph g = random_regular_connected(n, r, rng);
  std::printf("  n = %u, m = %u, even degrees: %s\n", g.num_vertices(),
              g.num_edges(), g.all_degrees_even() ? "yes" : "no");

  // The E-process: prefer unvisited edges (rule A = uniform at random),
  // walk randomly when none remain at the current vertex.
  UniformRule rule;
  EProcess eprocess(g, /*start=*/0, rule);
  run_until_vertex_cover(eprocess, rng, /*max_steps=*/1ull << 40);
  std::printf("\nE-process vertex cover time:  %12llu  (%.2f per vertex)\n",
              static_cast<unsigned long long>(eprocess.cover().vertex_cover_step()),
              static_cast<double>(eprocess.cover().vertex_cover_step()) / n);
  std::printf("  of which blue (unvisited-edge) steps: %llu, red (random) steps: %llu\n",
              static_cast<unsigned long long>(eprocess.blue_steps()),
              static_cast<unsigned long long>(eprocess.red_steps()));

  // Baseline: the simple random walk needs Ω(n log n).
  SimpleRandomWalk srw(g, 0);
  run_until_vertex_cover(srw, rng, 1ull << 40);
  const double cv_srw = static_cast<double>(srw.cover().vertex_cover_step());
  std::printf("SRW vertex cover time:        %12.0f  (%.2f per vertex, %.2f n ln n)\n",
              cv_srw, cv_srw / n, cv_srw / (n * std::log(static_cast<double>(n))));

  std::printf("\nspeed-up: %.1fx", cv_srw / eprocess.cover().vertex_cover_step());
  if (r % 2 == 0) {
    std::printf("  (Theorem 1: even-degree expanders are covered in Theta(n))\n");
  } else {
    std::printf("  (odd degree: expect ~c n ln n, see Figure 1 of the paper)\n");
  }
  return 0;
}
