#include "analysis/blue.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace ewalk {

BlueReport analyze_blue(const Graph& g, std::span<const std::uint8_t> edge_visited,
                        std::span<const std::uint8_t> vertex_visited) {
  if (edge_visited.size() != g.num_edges() || vertex_visited.size() != g.num_vertices())
    throw std::invalid_argument("analyze_blue: flag array size mismatch");

  BlueReport report;
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    if (!vertex_visited[v]) ++report.unvisited_vertices_total;

  std::vector<std::uint32_t> blue_degree(g.num_vertices(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (edge_visited[e]) continue;
    ++report.blue_edges_total;
    const auto [u, v] = g.endpoints(e);
    blue_degree[u] += (u == v) ? 2 : 1;
    if (u != v) blue_degree[v] += 1;
  }

  std::vector<bool> claimed(g.num_vertices(), false);
  std::vector<Vertex> members;
  std::queue<Vertex> q;
  for (Vertex start = 0; start < g.num_vertices(); ++start) {
    if (claimed[start] || blue_degree[start] == 0) continue;
    members.clear();
    claimed[start] = true;
    q.push(start);
    std::uint64_t degree_sum = 0;
    while (!q.empty()) {
      const Vertex u = q.front();
      q.pop();
      members.push_back(u);
      degree_sum += blue_degree[u];
      for (const Slot& s : g.slots(u)) {
        if (edge_visited[s.edge]) continue;
        if (!claimed[s.neighbor]) {
          claimed[s.neighbor] = true;
          q.push(s.neighbor);
        }
      }
    }

    BlueComponent c;
    c.num_vertices = static_cast<std::uint32_t>(members.size());
    c.num_edges = static_cast<std::uint32_t>(degree_sum / 2);
    c.representative = *std::min_element(members.begin(), members.end());
    c.all_degrees_even = true;
    std::uint32_t max_degree_vertex = members.front();
    std::uint32_t leaves = 0;
    for (const Vertex u : members) {
      if (blue_degree[u] % 2 != 0) c.all_degrees_even = false;
      if (!vertex_visited[u]) c.contains_unvisited_vertex = true;
      if (blue_degree[u] == 1) ++leaves;
      if (blue_degree[u] > blue_degree[max_degree_vertex]) max_degree_vertex = u;
    }
    // Star: center of degree k == num_edges, k >= 2, all others leaves.
    if (c.num_vertices >= 3 && blue_degree[max_degree_vertex] == c.num_edges &&
        leaves == c.num_vertices - 1) {
      c.is_star = true;
      c.star_center = max_degree_vertex;
      if (!vertex_visited[max_degree_vertex]) ++report.isolated_unvisited_stars;
    }
    report.components.push_back(c);
  }
  return report;
}

}  // namespace ewalk
