// Blue-subgraph analysis (Observations 10/11 and Section 5 of the paper).
//
// During an E-process, unvisited edges are "blue". On even-degree graphs,
// whenever the process is in a red phase the blue edges form edge-induced
// components in which every vertex has even blue degree (Observation 11).
// On odd-degree graphs this fails, and for 3-regular graphs the blue walk
// leaves behind isolated blue *stars* (Section 5) whose census drives the
// Ω(n log n) coupon-collector intuition. This module extracts and
// classifies blue components from walk state.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace ewalk {

struct BlueComponent {
  std::uint32_t num_vertices = 0;
  std::uint32_t num_edges = 0;
  bool all_degrees_even = false;   ///< every member's *blue* degree is even
  bool contains_unvisited_vertex = false;
  bool is_star = false;            ///< one center, rest degree-1 leaves
  Vertex star_center = 0;          ///< valid when is_star
  Vertex representative = 0;       ///< smallest member vertex
};

struct BlueReport {
  std::vector<BlueComponent> components;
  std::uint64_t blue_edges_total = 0;
  std::uint64_t unvisited_vertices_total = 0;
  /// Components that are stars whose center is an unvisited vertex — the
  /// objects counted in the paper's Section 5 argument (|I| ~ n/8 for r=3).
  std::uint64_t isolated_unvisited_stars = 0;
};

/// Extracts the blue (unvisited-edge) components. `edge_visited` has one
/// flag per edge id; `vertex_visited` one per vertex.
BlueReport analyze_blue(const Graph& g, std::span<const std::uint8_t> edge_visited,
                        std::span<const std::uint8_t> vertex_visited);

}  // namespace ewalk
