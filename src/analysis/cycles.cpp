#include "analysis/cycles.hpp"

#include <algorithm>
#include <stdexcept>

namespace ewalk {

namespace {

/// DFS enumeration of simple cycles with canonical root: every cycle is
/// generated exactly once as a path root -> ... -> x -> root where root is
/// the cycle's minimum vertex and the second vertex on the path is smaller
/// than the last (fixes orientation).
struct CycleDfs {
  const Graph& g;
  std::uint32_t max_len;
  std::vector<bool> on_path;
  std::vector<Vertex> path;
  std::vector<std::vector<Vertex>>* sink = nullptr;  // nullptr => count only
  std::vector<std::uint64_t> counts;

  CycleDfs(const Graph& graph, std::uint32_t ml)
      : g(graph), max_len(ml), on_path(graph.num_vertices(), false),
        counts(ml + 1, 0) {}

  void run() {
    for (Vertex root = 0; root < g.num_vertices(); ++root) {
      path.assign(1, root);
      on_path[root] = true;
      extend(root, root);
      on_path[root] = false;
    }
  }

  void extend(Vertex root, Vertex u) {
    for (const Slot& s : g.slots(u)) {
      const Vertex w = s.neighbor;
      if (w == root && path.size() >= 3) {
        // Orientation canonicalisation: second vertex < last vertex.
        if (path[1] < path.back()) {
          ++counts[path.size()];
          if (sink) sink->push_back(path);
        }
        continue;
      }
      if (w <= root || on_path[w] || path.size() >= max_len) continue;
      path.push_back(w);
      on_path[w] = true;
      extend(root, w);
      on_path[w] = false;
      path.pop_back();
    }
  }
};

}  // namespace

std::vector<std::uint64_t> count_cycles_up_to(const Graph& g, std::uint32_t max_len) {
  if (!g.is_simple())
    throw std::invalid_argument("count_cycles_up_to: requires a simple graph");
  if (max_len < 3) return std::vector<std::uint64_t>(max_len + 1, 0);
  CycleDfs dfs(g, max_len);
  dfs.run();
  return dfs.counts;
}

std::vector<std::vector<Vertex>> enumerate_short_cycles(const Graph& g,
                                                        std::uint32_t max_len) {
  if (!g.is_simple())
    throw std::invalid_argument("enumerate_short_cycles: requires a simple graph");
  std::vector<std::vector<Vertex>> cycles;
  if (max_len < 3) return cycles;
  CycleDfs dfs(g, max_len);
  dfs.sink = &cycles;
  dfs.run();
  return cycles;
}

bool short_cycles_vertex_disjoint(const Graph& g, std::uint32_t max_len) {
  const auto cycles = enumerate_short_cycles(g, max_len);
  std::vector<bool> used(g.num_vertices(), false);
  for (const auto& cycle : cycles) {
    for (const Vertex v : cycle) {
      if (used[v]) return false;
      used[v] = true;
    }
  }
  return true;
}

}  // namespace ewalk
