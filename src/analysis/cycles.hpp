// Cycle census. Corollary 4 of the paper bounds the edge cover time of
// random regular graphs by controlling N_k, the number of cycles of length
// k, for small k (E N_k = θ_k r^k / k). This module counts short cycles
// exactly and checks whether short cycles are pairwise vertex-disjoint (the
// property used in Section 4.2).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ewalk {

/// Exact count of simple cycles of each length 3..max_len (index k holds
/// N_k; indices 0..2 unused and zero). Requires a simple graph. DFS path
/// enumeration with canonical roots: O(n · Δ^max_len) — intended for
/// max_len <= ~10 on sparse graphs.
std::vector<std::uint64_t> count_cycles_up_to(const Graph& g, std::uint32_t max_len);

/// Lists the vertex sets of all simple cycles of length <= max_len.
std::vector<std::vector<Vertex>> enumerate_short_cycles(const Graph& g,
                                                        std::uint32_t max_len);

/// True iff all simple cycles of length <= max_len are pairwise
/// vertex-disjoint (property used for Corollary 4's small-cycle argument).
bool short_cycles_vertex_disjoint(const Graph& g, std::uint32_t max_len);

}  // namespace ewalk
