#include "analysis/ell_good.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "analysis/girth.hpp"

namespace ewalk {

std::optional<std::uint32_t> min_even_subgraph_order(const Graph& g, Vertex v) {
  // Candidate subgraphs = star(v) plus any subset of the non-incident edges,
  // filtered to even degrees everywhere. Exhaustive over that subset space.
  std::vector<EdgeId> star, rest;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [a, b] = g.endpoints(e);
    if (a == v || b == v) {
      star.push_back(e);
    } else {
      rest.push_back(e);
    }
  }
  if (rest.size() > 30)
    throw std::invalid_argument("min_even_subgraph_order: too many edges for exhaustive search");

  std::vector<std::uint32_t> deg(g.num_vertices());
  std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
  const std::uint64_t limit = std::uint64_t{1} << rest.size();
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    std::fill(deg.begin(), deg.end(), 0);
    const auto add_edge = [&](EdgeId e) {
      const auto [a, b] = g.endpoints(e);
      deg[a] += (a == b) ? 2 : 1;
      if (a != b) deg[b] += 1;
    };
    for (const EdgeId e : star) add_edge(e);
    for (std::size_t i = 0; i < rest.size(); ++i)
      if ((mask >> i) & 1) add_edge(rest[i]);

    bool all_even = true;
    std::uint32_t order = 0;
    for (Vertex u = 0; u < g.num_vertices(); ++u) {
      if (deg[u] == 0) continue;
      ++order;
      if (deg[u] % 2 != 0) {
        all_even = false;
        break;
      }
    }
    if (all_even) best = std::min(best, order);
  }
  if (best == std::numeric_limits<std::uint32_t>::max()) return std::nullopt;
  return best;
}

std::uint32_t ell_lower_bound_girth(const Graph& g, Vertex v) {
  return shortest_cycle_through_vertex(g, v);
}

namespace {

/// Wernicke-style ESU enumeration of connected induced subgraphs rooted at
/// `root`, restricted to vertices > root; aborts as soon as a subgraph with
/// more induced edges than vertices is seen.
class DenseSubgraphSearch {
 public:
  DenseSubgraphSearch(const Graph& g, std::uint32_t max_size)
      : g_(g), max_size_(max_size), in_set_(g.num_vertices(), false),
        adjacent_(g.num_vertices(), false) {}

  bool search() {
    for (Vertex root = 0; root < g_.num_vertices(); ++root) {
      root_ = root;
      set_.assign(1, root);
      in_set_[root] = true;
      std::vector<Vertex> ext;
      for (const Slot& s : g_.slots(root)) {
        if (s.neighbor > root && !adjacent_[s.neighbor]) {
          adjacent_[s.neighbor] = true;
          ext.push_back(s.neighbor);
        }
      }
      const bool found = extend(ext, /*edges=*/0);
      for (const Vertex u : ext) adjacent_[u] = false;
      in_set_[root] = false;
      if (found) return true;
    }
    return false;
  }

 private:
  bool extend(std::vector<Vertex> ext, std::uint64_t edges) {
    if (edges > set_.size()) return true;  // dense subgraph found
    if (set_.size() == max_size_) return false;
    while (!ext.empty()) {
      const Vertex w = ext.back();
      ext.pop_back();
      // Count induced edges gained by adding w (multi-edges count).
      std::uint64_t gained = 0;
      for (const Slot& s : g_.slots(w))
        if (in_set_[s.neighbor]) ++gained;

      set_.push_back(w);
      in_set_[w] = true;
      std::vector<Vertex> next_ext = ext;
      std::vector<Vertex> newly_adjacent;
      for (const Slot& s : g_.slots(w)) {
        const Vertex u = s.neighbor;
        if (u > root_ && !in_set_[u] && !adjacent_[u]) {
          adjacent_[u] = true;
          newly_adjacent.push_back(u);
          next_ext.push_back(u);
        }
      }
      const bool found = extend(std::move(next_ext), edges + gained);
      for (const Vertex u : newly_adjacent) adjacent_[u] = false;
      in_set_[w] = false;
      set_.pop_back();
      if (found) return true;
    }
    return false;
  }

  const Graph& g_;
  std::uint32_t max_size_;
  Vertex root_ = 0;
  std::vector<Vertex> set_;
  std::vector<bool> in_set_;
  std::vector<bool> adjacent_;  // ext-membership guard (per root)
};

}  // namespace

bool has_dense_subgraph(const Graph& g, std::uint32_t max_size) {
  if (max_size < 1) return false;
  DenseSubgraphSearch search(g, max_size);
  return search.search();
}

std::int64_t sample_max_edge_excess(const Graph& g, std::uint32_t max_size,
                                    std::uint32_t samples, Rng& rng) {
  std::int64_t worst = std::numeric_limits<std::int64_t>::min();
  std::vector<bool> in_set(g.num_vertices(), false);
  std::vector<Vertex> set;
  std::vector<Vertex> frontier;
  for (std::uint32_t trial = 0; trial < samples; ++trial) {
    set.clear();
    frontier.clear();
    const Vertex root = static_cast<Vertex>(rng.uniform(g.num_vertices()));
    set.push_back(root);
    in_set[root] = true;
    for (const Slot& s : g.slots(root))
      if (!in_set[s.neighbor]) frontier.push_back(s.neighbor);

    std::int64_t edges = 0;
    while (set.size() < max_size && !frontier.empty()) {
      const std::size_t pick = static_cast<std::size_t>(rng.uniform(frontier.size()));
      const Vertex w = frontier[pick];
      frontier[pick] = frontier.back();
      frontier.pop_back();
      if (in_set[w]) continue;
      for (const Slot& s : g.slots(w))
        if (in_set[s.neighbor]) ++edges;
      set.push_back(w);
      in_set[w] = true;
      for (const Slot& s : g.slots(w))
        if (!in_set[s.neighbor]) frontier.push_back(s.neighbor);
    }
    worst = std::max(worst, edges - static_cast<std::int64_t>(set.size()));
    for (const Vertex u : set) in_set[u] = false;
  }
  return worst;
}

std::uint32_t certified_ell_good(const Graph& g, std::uint32_t density_size) {
  // Per-vertex lower bounds:
  //   * odd degree  — vacuous (no even subgraph contains all edges at v);
  //   * degree 2    — the bound is exactly the shortest cycle through v;
  //   * degree >= 4 — shortest-cycle bound, upgraded to density_size + 1
  //     when the density certificate holds (Section 4.1's argument: the
  //     qualifying subgraph has >= |U| + 1 edges).
  // min over degree >= 4 vertices of max(scv(v), D+1) >= max(girth, D+1),
  // so only degree-2 vertices need individual cycle searches.
  const std::uint32_t graph_girth = girth(g);
  if (graph_girth == kInfiniteGirth) return kInfiniteGirth;  // acyclic: vacuous

  std::uint32_t ell = std::numeric_limits<std::uint32_t>::max();
  bool any_high_even_degree = false;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::uint32_t d = g.degree(v);
    if (d % 2 != 0 || d == 0) continue;
    if (d == 2) {
      const std::uint32_t scv = ell_lower_bound_girth(g, v);
      if (scv != kInfiniteGirth) ell = std::min(ell, scv);
    } else {
      any_high_even_degree = true;
    }
  }
  if (any_high_even_degree) {
    std::uint32_t bound = graph_girth;
    if (!has_dense_subgraph(g, density_size))
      bound = std::max(bound, density_size + 1);
    ell = std::min(ell, bound);
  }
  return ell;
}

}  // namespace ewalk
