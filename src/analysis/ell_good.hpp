// ℓ-goodness (Section 1 / 4.1 of the paper).
//
// A vertex v is ℓ-good if every even-degree edge-induced subgraph that
// contains all edges incident with v has at least ℓ vertices; G is ℓ-good
// if every vertex is. ℓ-goodness drives Theorem 1's cover-time bound.
//
// Exact computation is a minimisation over the cycle space, so we provide:
//   * min_even_subgraph_order — exact, exponential in m - d(v); for tiny
//     graphs (tests pin known values);
//   * girth-based lower bound — any qualifying subgraph contains a cycle
//     through v, so ℓ(v) >= shortest cycle through v (cheap, any size);
//   * density-based bound following the paper's own Section 4.1 argument:
//     if no connected subgraph on s < L vertices induces more than s edges
//     (property (P2) with a = 0) then every vertex of degree >= 4 is L-good.
//     We provide an exact bounded-size checker (rooted enumeration à la
//     Lemma 14) and a randomised sampler for large graphs.
#pragma once

#include <cstdint>
#include <optional>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ewalk {

/// Exact: minimum vertex count over even-degree edge-induced subgraphs
/// containing all edges at v; nullopt if none exists (e.g. bridge at v).
/// Exponential search over non-incident edge subsets — requires
/// m - degree(v) <= 30.
std::optional<std::uint32_t> min_even_subgraph_order(const Graph& g, Vertex v);

/// Cheap certified lower bound on ℓ(v): the shortest cycle through v
/// (kInfiniteGirth when v lies on no cycle, meaning no qualifying subgraph
/// exists at all and v is vacuously ℓ-good for every ℓ).
std::uint32_t ell_lower_bound_girth(const Graph& g, Vertex v);

/// Exact check of the density property: does some connected subgraph with
/// s <= max_size vertices induce more than s edges? Rooted subgraph
/// enumeration; exponential in max_size, intended for max_size <= ~8 on
/// bounded-degree graphs.
bool has_dense_subgraph(const Graph& g, std::uint32_t max_size);

/// Randomised sampler for large graphs: grows `samples` random connected
/// vertex sets of size <= max_size and reports the worst edge-excess
/// e(U) - |U| observed (>= 1 disproves L-goodness via the density route;
/// never proves it, only fails to falsify).
std::int64_t sample_max_edge_excess(const Graph& g, std::uint32_t max_size,
                                    std::uint32_t samples, Rng& rng);

/// Combined certified lower bound on the graph's ℓ: min over vertices of
/// ell_lower_bound_girth, with degree >= 4 vertices upgraded to
/// `density_size + 1` when has_dense_subgraph(g, density_size) is false.
/// (Degree-2 vertices lie on a single cycle, for which the girth bound is
/// already exact.)
std::uint32_t certified_ell_good(const Graph& g, std::uint32_t density_size);

}  // namespace ewalk
