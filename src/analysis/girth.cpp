#include "analysis/girth.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "graph/algorithms.hpp"

namespace ewalk {

namespace {

/// BFS from source that ignores one edge id; returns distance to target or
/// kUnreachable. Early exit once target is popped.
std::uint32_t bfs_skip_edge(const Graph& g, Vertex source, Vertex target, EdgeId skip) {
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  std::queue<Vertex> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const Vertex u = q.front();
    q.pop();
    if (u == target) return dist[u];
    for (const Slot& s : g.slots(u)) {
      if (s.edge == skip) continue;
      if (dist[s.neighbor] == kUnreachable) {
        dist[s.neighbor] = dist[u] + 1;
        q.push(s.neighbor);
      }
    }
  }
  return kUnreachable;
}

/// Shortest cycle found by a BFS rooted at `root`, with an optional cap used
/// for early termination. This is the classic exact-girth sweep primitive:
/// the minimum over all roots of this value equals the girth.
std::uint32_t bfs_cycle_bound(const Graph& g, Vertex root, std::uint32_t cap,
                              std::vector<std::uint32_t>& dist,
                              std::vector<EdgeId>& via_edge) {
  constexpr EdgeId kNoEdge = std::numeric_limits<EdgeId>::max();
  std::fill(dist.begin(), dist.end(), kUnreachable);
  std::fill(via_edge.begin(), via_edge.end(), kNoEdge);
  std::queue<Vertex> q;
  dist[root] = 0;
  q.push(root);
  std::uint32_t best = cap;
  while (!q.empty()) {
    const Vertex u = q.front();
    q.pop();
    if (2 * dist[u] >= best) break;  // no shorter closure can be found deeper
    for (const Slot& s : g.slots(u)) {
      if (s.edge == via_edge[u]) continue;  // don't reuse the tree edge
      const Vertex w = s.neighbor;
      if (w == u) {
        best = std::min(best, 1u);  // self-loop
        continue;
      }
      if (dist[w] == kUnreachable) {
        dist[w] = dist[u] + 1;
        via_edge[w] = s.edge;
        q.push(w);
      } else if (s.edge != via_edge[w]) {
        // Closure edge (not the tree edge that discovered w): cycle of
        // length dist[u] + dist[w] + 1 (may be a non-simple closure; still
        // an upper bound, exact at the cycle's own minimal root).
        best = std::min(best, dist[u] + dist[w] + 1);
      }
    }
  }
  return best;
}

}  // namespace

std::uint32_t girth(const Graph& g) {
  std::uint32_t best = kInfiniteGirth;
  std::vector<std::uint32_t> dist(g.num_vertices());
  std::vector<EdgeId> via_edge(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    best = bfs_cycle_bound(g, v, best, dist, via_edge);
    if (best <= 1) return best;
  }
  return best;
}

std::uint32_t shortest_cycle_through_edge(const Graph& g, EdgeId e) {
  const auto [u, v] = g.endpoints(e);
  if (u == v) return 1;
  const std::uint32_t d = bfs_skip_edge(g, u, v, e);
  return d == kUnreachable ? kInfiniteGirth : d + 1;
}

std::uint32_t shortest_cycle_through_vertex(const Graph& g, Vertex v) {
  std::uint32_t best = kInfiniteGirth;
  for (const Slot& s : g.slots(v)) {
    best = std::min(best, shortest_cycle_through_edge(g, s.edge));
    if (best <= 1) break;
  }
  return best;
}

}  // namespace ewalk
