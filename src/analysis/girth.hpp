// Girth and shortest-cycle queries (Theorem 3 of the paper bounds edge cover
// time in terms of girth g; Lemma 16/17 examine paths in the depth-⌊g/2⌋
// BFS tree).
#pragma once

#include <cstdint>
#include <limits>

#include "graph/graph.hpp"

namespace ewalk {

/// Returned when the graph is acyclic (infinite girth).
inline constexpr std::uint32_t kInfiniteGirth = std::numeric_limits<std::uint32_t>::max();

/// Exact girth. Self-loops give girth 1, parallel edges girth 2.
/// O(n·(n+m)) BFS sweep with early cutoff.
std::uint32_t girth(const Graph& g);

/// Length of the shortest cycle using edge e: 1 + dist_{G-e}(u, v).
/// Returns kInfiniteGirth when e is a bridge. Self-loop: 1.
std::uint32_t shortest_cycle_through_edge(const Graph& g, EdgeId e);

/// Length of the shortest cycle passing through v (min over incident edges);
/// kInfiniteGirth if no cycle passes through v.
std::uint32_t shortest_cycle_through_vertex(const Graph& g, Vertex v);

}  // namespace ewalk
