#include "analysis/profile.hpp"

#include <cmath>
#include <sstream>

#include "analysis/ell_good.hpp"
#include "analysis/girth.hpp"
#include "graph/algorithms.hpp"
#include "spectral/conductance.hpp"
#include "spectral/spectrum.hpp"

namespace ewalk {

GraphProfile profile_graph(const Graph& g, const ProfileOptions& options) {
  GraphProfile p;
  p.n = g.num_vertices();
  p.m = g.num_edges();
  p.min_degree = g.min_degree();
  p.max_degree = g.max_degree();
  p.all_degrees_even = g.all_degrees_even();
  p.simple = g.is_simple();
  p.connected = is_connected(g);

  p.girth = girth(g);
  if (options.compute_ell) p.certified_ell = certified_ell_good(g, options.density_size);

  const auto spec = estimate_spectrum(g);
  p.lambda2 = spec.lambda2;
  p.lambda_n = spec.lambda_n;
  p.gap = spec.gap();
  p.lazy_gap = spec.lazy_gap();
  const auto phi = conductance_bounds_from_lambda2(spec.lambda2);
  p.conductance_lower = phi.lower;
  p.conductance_upper = phi.upper;

  const double usable_gap = p.gap > 1e-9 ? p.gap : p.lazy_gap;
  if (usable_gap > 1e-12) {
    p.mixing_time = mixing_time_estimate(usable_gap, p.n);
    const double n = p.n;
    const double m = p.m;
    if (options.compute_ell && p.certified_ell > 0 &&
        p.certified_ell != kInfiniteGirth) {
      p.theorem1_shape = n + n * std::log(n) / (p.certified_ell * usable_gap);
    }
    if (p.girth != kInfiniteGirth) {
      p.theorem3_shape = m + m / (usable_gap * usable_gap) *
                                 (std::log(n) / p.girth + std::log(p.max_degree));
    }
  }
  return p;
}

std::string format_profile(const GraphProfile& p) {
  std::ostringstream out;
  out << "vertices              " << p.n << "\n"
      << "edges                 " << p.m << "\n"
      << "degrees               [" << p.min_degree << ", " << p.max_degree << "]"
      << (p.all_degrees_even ? " (all even)" : " (odd present)") << "\n"
      << "simple / connected    " << (p.simple ? "yes" : "no") << " / "
      << (p.connected ? "yes" : "no") << "\n"
      << "girth                 ";
  if (p.girth == kInfiniteGirth) {
    out << "infinite (acyclic)\n";
  } else {
    out << p.girth << "\n";
  }
  out << "certified ell-good    ";
  if (p.certified_ell == kInfiniteGirth) {
    out << "vacuous (acyclic)\n";
  } else if (p.certified_ell == 0) {
    out << "(skipped)\n";
  } else {
    out << ">= " << p.certified_ell << "\n";
  }
  out << "lambda2 / lambda_n    " << p.lambda2 << " / " << p.lambda_n << "\n"
      << "gap (lazy gap)        " << p.gap << " (" << p.lazy_gap << ")\n"
      << "conductance in        [" << p.conductance_lower << ", "
      << p.conductance_upper << "]\n"
      << "mixing time (Lem 7)   " << p.mixing_time << "\n";
  if (p.theorem1_shape > 0)
    out << "Thm 1 cover shape     " << p.theorem1_shape << "\n";
  if (p.theorem3_shape > 0)
    out << "Thm 3 edge shape      " << p.theorem3_shape << "\n";
  return out.str();
}

}  // namespace ewalk
