// One-call graph profile: every structural quantity the paper's theorems
// consume, gathered into a single report. Used by the expander_census
// example and the `ewalk --profile` CLI.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace ewalk {

struct GraphProfile {
  Vertex n = 0;
  EdgeId m = 0;
  std::uint32_t min_degree = 0;
  std::uint32_t max_degree = 0;
  bool all_degrees_even = false;
  bool simple = false;
  bool connected = false;

  std::uint32_t girth = 0;            ///< kInfiniteGirth when acyclic
  std::uint32_t certified_ell = 0;    ///< certified ℓ-goodness lower bound

  double lambda2 = 0.0;
  double lambda_n = 0.0;
  double gap = 0.0;                   ///< 1 - λmax (0 when bipartite)
  double lazy_gap = 0.0;              ///< (1 - λ2)/2
  double conductance_lower = 0.0;     ///< Cheeger from λ2 (eq. 19)
  double conductance_upper = 0.0;
  double mixing_time = 0.0;           ///< Lemma 7 with the usable gap

  /// Theorem 1 cover-time shape n + n log n / (ℓ * gap), using the lazy gap
  /// when the plain gap vanishes; 0 when no usable gap exists.
  double theorem1_shape = 0.0;
  /// Theorem 3 edge-cover shape m + m/(gap²) (log n / g + log Δ).
  double theorem3_shape = 0.0;
};

struct ProfileOptions {
  /// Size bound for the ℓ-goodness density certificate (has_dense_subgraph);
  /// cost grows exponentially with it.
  std::uint32_t density_size = 6;
  /// Skip the ℓ-goodness computation entirely (it is the expensive part on
  /// graphs with many degree-2 vertices).
  bool compute_ell = true;
};

/// Computes the full profile. Requires a connected graph with edges.
GraphProfile profile_graph(const Graph& g, const ProfileOptions& options = {});

/// Multi-line human-readable rendering.
std::string format_profile(const GraphProfile& p);

}  // namespace ewalk
