#include "covertime/blanket.hpp"

#include <stdexcept>

#include "engine/driver.hpp"
#include "walks/srw.hpp"

namespace ewalk {

BlanketResult measure_blanket_time(const Graph& g, Vertex start, double delta,
                                   Rng& rng, std::uint64_t max_steps,
                                   std::uint64_t check_every) {
  if (delta <= 0.0 || delta >= 1.0)
    throw std::invalid_argument("measure_blanket_time: delta must be in (0,1)");
  if (check_every == 0) check_every = g.num_vertices();

  SimpleRandomWalk walk(g, start);
  BlanketResult out;
  while (walk.steps() < max_steps) {
    for (std::uint64_t i = 0; i < check_every && walk.steps() < max_steps; ++i)
      walk.step(rng);
    const double t = static_cast<double>(walk.steps());
    bool blanketed = true;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (walk.cover().visit_count(v) < delta * g.stationary_probability(v) * t) {
        blanketed = false;
        break;
      }
    }
    if (blanketed) {
      out.blanket_step = walk.steps();
      out.reached = true;
      return out;
    }
  }
  out.blanket_step = max_steps;
  return out;
}

std::uint64_t measure_visit_all_r_times(const Graph& g, Vertex start,
                                        std::uint32_t count, Rng& rng,
                                        std::uint64_t max_steps) {
  SimpleRandomWalk walk(g, start);
  if (run_until_visit_count(walk, rng, count, max_steps)) return walk.steps();
  return max_steps;
}

}  // namespace ewalk
