// Blanket time (Ding–Lee–Peres, used in the paper's eq. (4) argument).
//
// τ_bl(δ) is the first step t at which every vertex v has been visited at
// least δ π_v t times. Theorem 1.1 of [7] gives E τ_bl(δ) = O(C_V(SRW));
// the paper uses it to bound the E-process edge cover time: once every
// vertex has been visited d(v) times by the embedded red walk, all edges
// are explored, so C_E = O(m + C_V(SRW)) (eq. 4).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ewalk {

struct BlanketResult {
  std::uint64_t blanket_step = 0;  ///< τ_bl(δ) (== max_steps on timeout)
  bool reached = false;
};

/// Measures τ_bl(δ) of a SRW from `start`. The blanket condition is checked
/// every `check_every` steps (0 = every n steps). δ in (0,1).
BlanketResult measure_blanket_time(const Graph& g, Vertex start, double delta,
                                   Rng& rng, std::uint64_t max_steps,
                                   std::uint64_t check_every = 0);

/// Time for a SRW to visit every vertex at least `count` times (the T(r) of
/// the paper's eq. (4) argument). Returns max_steps when not reached.
std::uint64_t measure_visit_all_r_times(const Graph& g, Vertex start,
                                        std::uint32_t count, Rng& rng,
                                        std::uint64_t max_steps);

}  // namespace ewalk
