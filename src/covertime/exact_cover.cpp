#include "covertime/exact_cover.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "graph/algorithms.hpp"

namespace ewalk {

namespace {

/// Solves the dense system a·x = b in place (partial pivoting); k unknowns.
void solve_dense(std::vector<double>& a, std::vector<double>& b, std::size_t k) {
  const auto at = [&](std::size_t r, std::size_t c) -> double& { return a[r * k + c]; };
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < k; ++r)
      if (std::abs(at(r, col)) > std::abs(at(pivot, col))) pivot = r;
    if (std::abs(at(pivot, col)) < 1e-13)
      throw std::logic_error("exact_cover: singular layer system");
    if (pivot != col) {
      for (std::size_t c = col; c < k; ++c) std::swap(at(pivot, c), at(col, c));
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / at(col, col);
    for (std::size_t r = col + 1; r < k; ++r) {
      const double f = at(r, col) * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < k; ++c) at(r, c) -= f * at(col, c);
      b[r] -= f * b[col];
    }
  }
  for (std::size_t r = k; r-- > 0;) {
    double acc = b[r];
    for (std::size_t c = r + 1; c < k; ++c) acc -= at(r, c) * b[c];
    b[r] = acc / at(r, r);
  }
}

/// Subsets of {0..bits-1} ordered by descending popcount.
std::vector<std::uint32_t> subsets_by_popcount_desc(std::uint32_t bits) {
  std::vector<std::uint32_t> subsets(std::size_t{1} << bits);
  for (std::uint32_t s = 0; s < subsets.size(); ++s) subsets[s] = s;
  std::sort(subsets.begin(), subsets.end(), [](std::uint32_t a, std::uint32_t b) {
    const int pa = __builtin_popcount(a), pb = __builtin_popcount(b);
    return pa != pb ? pa > pb : a < b;
  });
  return subsets;
}

}  // namespace

double exact_srw_vertex_cover_time(const Graph& g, Vertex start) {
  const std::uint32_t n = g.num_vertices();
  if (n > 16) throw std::invalid_argument("exact_srw_vertex_cover_time: n > 16");
  if (!is_connected(g))
    throw std::invalid_argument("exact_srw_vertex_cover_time: graph must be connected");
  if (start >= n) throw std::invalid_argument("exact_srw_vertex_cover_time: bad start");
  const std::uint32_t full = (n == 32 ? ~0u : (1u << n) - 1);

  // memo[T * n + v] = E[steps to cover | visited set T, at v]; valid for v∈T.
  std::vector<double> memo((std::size_t{1} << n) * n, 0.0);
  std::vector<std::size_t> index(n);
  std::vector<double> a, b;

  for (const std::uint32_t t : subsets_by_popcount_desc(n)) {
    if (!(t & (1u << start)) && t != full) continue;  // unreachable from start
    if (t == full) continue;                          // absorbed: 0
    // Unknowns: h(t, v) for v ∈ t.
    std::size_t k = 0;
    for (Vertex v = 0; v < n; ++v)
      if (t & (1u << v)) index[v] = k++;
    a.assign(k * k, 0.0);
    b.assign(k, 0.0);
    for (Vertex v = 0; v < n; ++v) {
      if (!(t & (1u << v))) continue;
      const std::size_t r = index[v];
      a[r * k + r] += 1.0;
      const double p = 1.0 / g.degree(v);
      double rhs = 1.0;
      for (const Slot& s : g.slots(v)) {
        const Vertex w = s.neighbor;
        if (t & (1u << w)) {
          a[r * k + index[w]] -= p;
        } else {
          rhs += p * memo[(std::size_t{t} | (1u << w)) * n + w];
        }
      }
      b[r] = rhs;
    }
    solve_dense(a, b, k);
    for (Vertex v = 0; v < n; ++v)
      if (t & (1u << v)) memo[std::size_t{t} * n + v] = b[index[v]];
  }
  return memo[(std::size_t{1} << start) * n + start];
}

namespace {

/// Shared engine for the uniform-rule E-process oracle. `edge_target` picks
/// edge cover (S == full) vs vertex cover (endpoints(S) ∪ {start} == V).
double exact_eprocess_cover(const Graph& g, Vertex start, bool edge_target) {
  const std::uint32_t n = g.num_vertices();
  const std::uint32_t m = g.num_edges();
  if (m > 18) throw std::invalid_argument("exact_eprocess_cover: m > 18");
  if (!is_connected(g))
    throw std::invalid_argument("exact_eprocess_cover: graph must be connected");
  if (start >= n) throw std::invalid_argument("exact_eprocess_cover: bad start");
  const std::uint32_t full = (m == 32 ? ~0u : (1u << m) - 1);
  const std::uint32_t all_vertices = (n == 32 ? ~0u : (1u << n) - 1);

  // Visited-vertex mask per edge set (endpoints of visited edges + start).
  const auto covered_vertices = [&](std::uint32_t s) {
    std::uint32_t mask = 1u << start;
    for (EdgeId e = 0; e < m; ++e) {
      if (s & (1u << e)) {
        const auto [u, v] = g.endpoints(e);
        mask |= (1u << u) | (1u << v);
      }
    }
    return mask;
  };

  std::vector<double> memo((std::size_t{1} << m) * n, 0.0);
  std::vector<std::size_t> index(n);
  std::vector<double> a, b, blue_value(n);

  for (const std::uint32_t s : subsets_by_popcount_desc(m)) {
    const bool done = edge_target ? (s == full)
                                  : ((covered_vertices(s) & all_vertices) == all_vertices);
    if (done) continue;  // absorbed: 0

    // First pass: states (s, v) where v has blue incident edges leave the
    // layer immediately — their value is a constant over next-layer memos.
    std::size_t k = 0;
    for (Vertex v = 0; v < n; ++v) {
      std::uint32_t blue = 0;
      for (const Slot& sl : g.slots(v))
        if (!(s & (1u << sl.edge))) ++blue;
      if (blue > 0) {
        double acc = 1.0;
        for (const Slot& sl : g.slots(v)) {
          if (s & (1u << sl.edge)) continue;
          acc += memo[(std::size_t{s} | (1u << sl.edge)) * n + sl.neighbor] / blue;
        }
        blue_value[v] = acc;
        index[v] = static_cast<std::size_t>(-1);
      } else {
        index[v] = k++;
      }
    }

    // Second pass: all-red vertices form the same-layer linear system.
    if (k > 0) {
      a.assign(k * k, 0.0);
      b.assign(k, 0.0);
      for (Vertex v = 0; v < n; ++v) {
        if (index[v] == static_cast<std::size_t>(-1)) continue;
        const std::size_t r = index[v];
        a[r * k + r] += 1.0;
        const double p = 1.0 / g.degree(v);
        double rhs = 1.0;
        for (const Slot& sl : g.slots(v)) {
          const Vertex w = sl.neighbor;
          if (index[w] == static_cast<std::size_t>(-1)) {
            rhs += p * blue_value[w];
          } else {
            a[r * k + index[w]] -= p;
          }
        }
        b[r] = rhs;
      }
      solve_dense(a, b, k);
    }
    for (Vertex v = 0; v < n; ++v) {
      memo[std::size_t{s} * n + v] =
          index[v] == static_cast<std::size_t>(-1) ? blue_value[v] : b[index[v]];
    }
  }
  return memo[0 * n + start];
}

}  // namespace

double exact_eprocess_vertex_cover_time(const Graph& g, Vertex start) {
  return exact_eprocess_cover(g, start, /*edge_target=*/false);
}

double exact_eprocess_edge_cover_time(const Graph& g, Vertex start) {
  return exact_eprocess_cover(g, start, /*edge_target=*/true);
}

}  // namespace ewalk
