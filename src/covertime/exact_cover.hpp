// Exact expected vertex cover times on tiny graphs — an oracle for the
// simulator.
//
// Both walks are Markov chains on an augmented state space:
//   * SRW:       (visited vertex set T, current vertex v ∈ T);
//   * E-process: (visited edge set S, current vertex v) — the visited
//     vertex set is derivable as endpoints(S) ∪ {start}, and the uniform
//     rule makes the process Markov on (S, v).
// Transitions only grow the set, so expected cover times solve by backward
// induction over set layers; within one layer the walk can move among
// same-layer states (red moves / moves to already-visited vertices), giving
// one small linear system per layer (Gaussian elimination, states ordered
// by popcount descending).
//
// Complexity: O(2^n · n³) for the SRW (n <= 16) and O(2^m · n³) for the
// E-process (m <= 18). Use for tests and tiny-graph studies only.
#pragma once

#include "graph/graph.hpp"

namespace ewalk {

/// Exact E[vertex cover time] of the simple random walk from `start`.
/// Requires a connected graph with n <= 16.
double exact_srw_vertex_cover_time(const Graph& g, Vertex start);

/// Exact E[vertex cover time] of the E-process with the *uniform* rule A
/// from `start`. Requires a connected graph with m <= 18.
double exact_eprocess_vertex_cover_time(const Graph& g, Vertex start);

/// Exact E[edge cover time] of the uniform-rule E-process from `start`.
/// Requires a connected graph with m <= 18.
double exact_eprocess_edge_cover_time(const Graph& g, Vertex start);

}  // namespace ewalk
