#include "covertime/experiment.hpp"

#include <atomic>
#include <thread>

#include "walks/srw.hpp"

namespace ewalk {

std::vector<double> run_trials(std::uint32_t count, std::uint32_t threads,
                               std::uint64_t master_seed,
                               const std::function<double(Rng&, std::uint32_t)>& fn) {
  std::vector<Rng> streams = derive_streams(master_seed, count);
  std::vector<double> results(count, 0.0);

  std::uint32_t workers = threads == 0 ? std::thread::hardware_concurrency() : threads;
  if (workers == 0) workers = 1;
  workers = std::min(workers, count == 0 ? 1u : count);

  if (workers <= 1) {
    for (std::uint32_t i = 0; i < count; ++i) results[i] = fn(streams[i], i);
    return results;
  }

  std::atomic<std::uint32_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::uint32_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        results[i] = fn(streams[i], i);
      }
    });
  }
  for (auto& t : pool) t.join();
  return results;
}

SummaryStats run_trials_summary(std::uint32_t count, std::uint32_t threads,
                                std::uint64_t master_seed,
                                const std::function<double(Rng&, std::uint32_t)>& fn) {
  const auto samples = run_trials(count, threads, master_seed, fn);
  return summarize(samples);
}

namespace {

std::uint64_t default_max_steps(const Graph& g) {
  // Generous ceiling: well above C_V for everything we simulate (the SRW on
  // an n-vertex expander needs ~n ln n; lollipops are excluded from the
  // default path by their own benches passing explicit budgets).
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  return 200 * (n + m) * (64 - std::min<std::uint64_t>(63, __builtin_clzll(n | 1))) + 1000000;
}

}  // namespace

CoverExperimentResult measure_eprocess_cover(const GraphFactory& graphs,
                                             const RuleFactory& rules,
                                             const CoverExperimentConfig& config) {
  std::atomic<std::uint32_t> uncovered{0};
  auto samples = run_trials(
      config.trials, config.threads, config.master_seed,
      [&](Rng& rng, std::uint32_t) -> double {
        const Graph g = graphs(rng);
        auto rule = rules(g);
        EProcess walk(g, /*start=*/0, *rule);
        const std::uint64_t budget =
            config.max_steps != 0 ? config.max_steps : default_max_steps(g);
        bool done;
        std::uint64_t result;
        if (config.target == CoverTarget::kVertices) {
          done = walk.run_until_vertex_cover(rng, budget);
          result = walk.cover().vertex_cover_step();
        } else {
          done = walk.run_until_edge_cover(rng, budget);
          result = walk.cover().edge_cover_step();
        }
        if (!done) {
          uncovered.fetch_add(1, std::memory_order_relaxed);
          return static_cast<double>(budget);
        }
        return static_cast<double>(result);
      });

  CoverExperimentResult out;
  out.samples = std::move(samples);
  out.stats = summarize(out.samples);
  out.uncovered_trials = uncovered.load();
  return out;
}

CoverExperimentResult measure_srw_cover(const GraphFactory& graphs,
                                        const CoverExperimentConfig& config) {
  std::atomic<std::uint32_t> uncovered{0};
  auto samples = run_trials(
      config.trials, config.threads, config.master_seed,
      [&](Rng& rng, std::uint32_t) -> double {
        const Graph g = graphs(rng);
        SimpleRandomWalk walk(g, /*start=*/0);
        const std::uint64_t budget =
            config.max_steps != 0 ? config.max_steps : default_max_steps(g);
        bool done;
        std::uint64_t result;
        if (config.target == CoverTarget::kVertices) {
          done = walk.run_until_vertex_cover(rng, budget);
          result = walk.cover().vertex_cover_step();
        } else {
          done = walk.run_until_edge_cover(rng, budget);
          result = walk.cover().edge_cover_step();
        }
        if (!done) {
          uncovered.fetch_add(1, std::memory_order_relaxed);
          return static_cast<double>(budget);
        }
        return static_cast<double>(result);
      });

  CoverExperimentResult out;
  out.samples = std::move(samples);
  out.stats = summarize(out.samples);
  out.uncovered_trials = uncovered.load();
  return out;
}

}  // namespace ewalk
