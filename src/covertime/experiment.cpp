#include "covertime/experiment.hpp"

#include <algorithm>
#include <atomic>

#include "engine/adapters.hpp"
#include "engine/budget.hpp"
#include "engine/driver.hpp"
#include "util/thread_pool.hpp"
#include "walks/srw.hpp"

namespace ewalk {

std::vector<double> run_trials(std::uint32_t count, std::uint32_t threads,
                               std::uint64_t master_seed,
                               const std::function<double(Rng&, std::uint32_t)>& fn) {
  std::vector<Rng> streams = derive_streams(master_seed, count);
  std::vector<double> results(count, 0.0);

  std::uint32_t workers = threads == 0 ? Executor::hardware_threads() : threads;
  workers = std::min(workers, count == 0 ? 1u : count);

  if (workers <= 1) {
    for (std::uint32_t i = 0; i < count; ++i) results[i] = fn(streams[i], i);
    return results;
  }

  // One trial per scheduler task. Trial i's stream is a pure function of
  // (master_seed, i), so which thread steals it cannot affect the result;
  // the scope cap keeps at most `workers` threads on this call.
  TaskScope scope(workers);
  for (std::uint32_t i = 0; i < count; ++i)
    scope.spawn([&results, &streams, &fn, i] { results[i] = fn(streams[i], i); });
  scope.wait();
  return results;
}

SummaryStats run_trials_summary(std::uint32_t count, std::uint32_t threads,
                                std::uint64_t master_seed,
                                const std::function<double(Rng&, std::uint32_t)>& fn) {
  const auto samples = run_trials(count, threads, master_seed, fn);
  return summarize(samples);
}

CoverExperimentResult measure_cover(const ProcessFactory& processes,
                                    const GraphFactory& graphs,
                                    const CoverExperimentConfig& config) {
  std::atomic<std::uint32_t> uncovered{0};
  auto samples = run_trials(
      config.trials, config.threads, config.master_seed,
      [&](Rng& rng, std::uint32_t) -> double {
        const Graph g = graphs(rng);
        auto walk = processes(g, rng);
        const std::uint64_t budget =
            config.max_steps != 0 ? config.max_steps : default_step_budget(g);
        bool done;
        std::uint64_t result;
        if (config.target == CoverTarget::kVertices) {
          done = run_until(*walk, rng, VertexCovered{}, budget);
          result = walk->cover().vertex_cover_step();
        } else {
          done = run_until(*walk, rng, EdgesCovered{}, budget);
          result = walk->cover().edge_cover_step();
        }
        if (!done) {
          uncovered.fetch_add(1, std::memory_order_relaxed);
          return static_cast<double>(budget);
        }
        return static_cast<double>(result);
      });

  CoverExperimentResult out;
  out.samples = std::move(samples);
  out.stats = summarize(out.samples);
  out.uncovered_trials = uncovered.load();
  return out;
}

CoalescenceExperimentResult measure_coalescence(
    const TokenProcessFactory& processes, const GraphFactory& graphs,
    const CoalescenceExperimentConfig& config) {
  std::atomic<std::uint32_t> unfinished{0};
  std::vector<double> meetings(config.trials, 0.0);
  auto samples = run_trials(
      config.trials, config.threads, config.master_seed,
      [&](Rng& rng, std::uint32_t trial) -> double {
        const Graph g = graphs(rng);
        auto process = processes(g, rng);
        const std::uint64_t budget =
            config.max_steps != 0 ? config.max_steps : default_step_budget(g);
        const bool done = run_until_process(
            *process, rng, TokensAtMost{config.target_tokens}, budget);
        const std::uint64_t met = process->first_meeting_step();
        meetings[trial] =
            static_cast<double>(met != kNotCovered ? met : budget);
        if (!done) {
          unfinished.fetch_add(1, std::memory_order_relaxed);
          return static_cast<double>(budget);
        }
        // With stride 1 the driver stops on the first step the population
        // hits the target; for target 1 the recorded coalescence step is
        // that same step.
        return static_cast<double>(config.target_tokens <= 1
                                       ? process->coalescence_step()
                                       : process->steps());
      });

  CoalescenceExperimentResult out;
  out.samples = std::move(samples);
  out.stats = summarize(out.samples);
  out.meeting_samples = std::move(meetings);
  out.meeting_stats = summarize(out.meeting_samples);
  out.unfinished_trials = unfinished.load();
  return out;
}

CoverExperimentResult measure_eprocess_cover(const GraphFactory& graphs,
                                             const RuleFactory& rules,
                                             const CoverExperimentConfig& config) {
  return measure_cover(
      [&rules](const Graph& g, Rng&) -> std::unique_ptr<WalkProcess> {
        return std::make_unique<EProcessHandle>(g, /*start=*/0, rules(g));
      },
      graphs, config);
}

CoverExperimentResult measure_srw_cover(const GraphFactory& graphs,
                                        const CoverExperimentConfig& config) {
  return measure_cover(
      [](const Graph& g, Rng&) -> std::unique_ptr<WalkProcess> {
        return std::make_unique<SimpleRandomWalk>(g, /*start=*/0);
      },
      graphs, config);
}

}  // namespace ewalk
