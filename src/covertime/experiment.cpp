#include "covertime/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <span>
#include <stdexcept>

#include "engine/adapters.hpp"
#include "engine/budget.hpp"
#include "engine/bundle.hpp"
#include "engine/driver.hpp"
#include "util/thread_pool.hpp"
#include "walks/srw.hpp"

namespace ewalk {

namespace {

// The cover target of a RunRequest, for this harness: kAuto means vertex
// cover; coalescence runs belong to measure_coalescence.
CoverTarget cover_target_of(const RunRequest& req) {
  switch (req.target) {
    case RunTarget::kEdges:
      return CoverTarget::kEdges;
    case RunTarget::kCoalescence:
      throw std::invalid_argument(
          "measure_cover: target coalescence needs measure_coalescence");
    case RunTarget::kAuto:
    case RunTarget::kVertices:
      break;
  }
  return CoverTarget::kVertices;
}

// One bundle of `width` consecutive trials, run as a single scheduler task:
// per trial (ascending order) the graph and process are built from the
// trial's own stream — the same single-stream graph->process->walk order
// the sequential path uses — then all trials advance round-robin through
// run_trial_bundle with the sequential stride-1 check schedule. Samples are
// therefore bit-identical to the width-1 path for every bundle width.
void run_cover_bundle(const ProcessFactory& processes,
                      const GraphFactory& graphs, CoverTarget target,
                      std::uint64_t max_steps, std::span<Rng> streams,
                      std::uint32_t lo, std::uint32_t hi,
                      std::vector<double>& samples,
                      std::atomic<std::uint32_t>& uncovered) {
  const std::uint32_t width = hi - lo;
  std::vector<Graph> bundle_graphs;
  bundle_graphs.reserve(width);  // walks hold Graph*: no reallocation allowed
  std::vector<std::unique_ptr<WalkProcess>> walks;
  walks.reserve(width);
  std::vector<std::uint64_t> budgets(width, 0);
  std::vector<BundleTrial> bundle(width);
  for (std::uint32_t i = 0; i < width; ++i) {
    Rng& rng = streams[lo + i];
    bundle_graphs.push_back(graphs(rng));
    const Graph& g = bundle_graphs.back();
    walks.push_back(processes(g, rng));
    budgets[i] = max_steps != 0 ? max_steps : default_step_budget(g);
    bundle[i] = BundleTrial{walks.back().get(), &rng, budgets[i], 1};
  }
  std::vector<std::uint8_t> finished;
  if (target == CoverTarget::kVertices) {
    finished = run_trial_bundle(
        std::span<const BundleTrial>(bundle), [](const WalkProcess& p) {
          return p.cover().all_vertices_covered();
        });
  } else {
    finished = run_trial_bundle(
        std::span<const BundleTrial>(bundle), [](const WalkProcess& p) {
          return p.cover().all_edges_covered();
        });
  }
  for (std::uint32_t i = 0; i < width; ++i) {
    if (finished[i]) {
      samples[lo + i] = static_cast<double>(
          target == CoverTarget::kVertices
              ? walks[i]->cover().vertex_cover_step()
              : walks[i]->cover().edge_cover_step());
    } else {
      uncovered.fetch_add(1, std::memory_order_relaxed);
      samples[lo + i] = static_cast<double>(budgets[i]);
    }
  }
}

}  // namespace

std::vector<double> run_trials(std::uint32_t count, std::uint32_t threads,
                               std::uint64_t master_seed,
                               const std::function<double(Rng&, std::uint32_t)>& fn) {
  std::vector<Rng> streams = derive_streams(master_seed, count);
  std::vector<double> results(count, 0.0);

  std::uint32_t workers = threads == 0 ? Executor::hardware_threads() : threads;
  workers = std::min(workers, count == 0 ? 1u : count);

  if (workers <= 1) {
    for (std::uint32_t i = 0; i < count; ++i) results[i] = fn(streams[i], i);
    return results;
  }

  // One trial per scheduler task. Trial i's stream is a pure function of
  // (master_seed, i), so which thread steals it cannot affect the result;
  // the scope cap keeps at most `workers` threads on this call.
  TaskScope scope(workers);
  for (std::uint32_t i = 0; i < count; ++i)
    scope.spawn([&results, &streams, &fn, i] { results[i] = fn(streams[i], i); });
  scope.wait();
  return results;
}

SummaryStats run_trials_summary(std::uint32_t count, std::uint32_t threads,
                                std::uint64_t master_seed,
                                const std::function<double(Rng&, std::uint32_t)>& fn) {
  const auto samples = run_trials(count, threads, master_seed, fn);
  return summarize(samples);
}

CoverExperimentResult measure_cover(const ProcessFactory& processes,
                                    const GraphFactory& graphs,
                                    const RunRequest& req) {
  const CoverTarget target = cover_target_of(req);
  if (req.bundle_width > 1 && req.trials > 1) {
    // Bundled path: one scheduler task per bundle of `bundle_width`
    // consecutive trials, each advanced round-robin in one interleaved
    // loop (engine/bundle.hpp). Trial streams, construction order, and the
    // per-trial check schedule are identical to the width-1 path, so the
    // samples are too.
    std::atomic<std::uint32_t> uncovered{0};
    std::vector<Rng> streams = derive_streams(req.seed, req.trials);
    std::vector<double> samples(req.trials, 0.0);
    const std::uint32_t width = std::min(req.bundle_width, req.trials);
    const std::uint32_t bundles = (req.trials + width - 1) / width;
    std::uint32_t workers =
        req.threads == 0 ? Executor::hardware_threads() : req.threads;
    workers = std::min(workers, bundles);
    const auto run_one = [&](std::uint32_t b) {
      const std::uint32_t lo = b * width;
      const std::uint32_t hi = std::min(lo + width, req.trials);
      run_cover_bundle(processes, graphs, target, req.max_steps, streams, lo,
                       hi, samples, uncovered);
    };
    if (workers <= 1) {
      for (std::uint32_t b = 0; b < bundles; ++b) run_one(b);
    } else {
      TaskScope scope(workers);
      for (std::uint32_t b = 0; b < bundles; ++b)
        scope.spawn([&run_one, b] { run_one(b); });
      scope.wait();
    }
    CoverExperimentResult out;
    out.samples = std::move(samples);
    out.stats = summarize(out.samples);
    out.uncovered_trials = uncovered.load();
    return out;
  }

  std::atomic<std::uint32_t> uncovered{0};
  auto samples = run_trials(
      req.trials, req.threads, req.seed,
      [&](Rng& rng, std::uint32_t) -> double {
        const Graph g = graphs(rng);
        auto walk = processes(g, rng);
        const std::uint64_t budget =
            req.max_steps != 0 ? req.max_steps : default_step_budget(g);
        bool done;
        std::uint64_t result;
        if (target == CoverTarget::kVertices) {
          done = run_until(*walk, rng, VertexCovered{}, budget);
          result = walk->cover().vertex_cover_step();
        } else {
          done = run_until(*walk, rng, EdgesCovered{}, budget);
          result = walk->cover().edge_cover_step();
        }
        if (!done) {
          uncovered.fetch_add(1, std::memory_order_relaxed);
          return static_cast<double>(budget);
        }
        return static_cast<double>(result);
      });

  CoverExperimentResult out;
  out.samples = std::move(samples);
  out.stats = summarize(out.samples);
  out.uncovered_trials = uncovered.load();
  return out;
}

CoalescenceExperimentResult measure_coalescence(
    const TokenProcessFactory& processes, const GraphFactory& graphs,
    const RunRequest& req) {
  std::atomic<std::uint32_t> unfinished{0};
  std::vector<double> meetings(req.trials, 0.0);
  auto samples = run_trials(
      req.trials, req.threads, req.seed,
      [&](Rng& rng, std::uint32_t trial) -> double {
        const Graph g = graphs(rng);
        auto process = processes(g, rng);
        const std::uint64_t budget =
            req.max_steps != 0 ? req.max_steps : default_step_budget(g);
        const bool done = run_until_process(
            *process, rng, TokensAtMost{req.target_tokens}, budget);
        const std::uint64_t met = process->first_meeting_step();
        meetings[trial] =
            static_cast<double>(met != kNotCovered ? met : budget);
        if (!done) {
          unfinished.fetch_add(1, std::memory_order_relaxed);
          return static_cast<double>(budget);
        }
        // With stride 1 the driver stops on the first step the population
        // hits the target; for target 1 the recorded coalescence step is
        // that same step.
        return static_cast<double>(req.target_tokens <= 1
                                       ? process->coalescence_step()
                                       : process->steps());
      });

  CoalescenceExperimentResult out;
  out.samples = std::move(samples);
  out.stats = summarize(out.samples);
  out.meeting_samples = std::move(meetings);
  out.meeting_stats = summarize(out.meeting_samples);
  out.unfinished_trials = unfinished.load();
  return out;
}

CoverExperimentResult measure_eprocess_cover(const GraphFactory& graphs,
                                             const RuleFactory& rules,
                                             const RunRequest& req) {
  return measure_cover(
      [&rules](const Graph& g, Rng&) -> std::unique_ptr<WalkProcess> {
        return std::make_unique<EProcessHandle>(g, /*start=*/0, rules(g));
      },
      graphs, req);
}

CoverExperimentResult measure_srw_cover(const GraphFactory& graphs,
                                        const RunRequest& req) {
  return measure_cover(
      [](const Graph& g, Rng&) -> std::unique_ptr<WalkProcess> {
        return std::make_unique<SimpleRandomWalk>(g, /*start=*/0);
      },
      graphs, req);
}

// ---- Deprecated config-struct forwarders (one release) ---------------------

namespace {

RunRequest to_request(const CoverExperimentConfig& config) {
  RunRequest req;
  req.trials = config.trials;
  req.threads = config.threads;
  req.seed = config.master_seed;
  req.max_steps = config.max_steps;
  req.target = config.target == CoverTarget::kEdges ? RunTarget::kEdges
                                                    : RunTarget::kVertices;
  req.bundle_width = config.bundle_width;
  return req;
}

RunRequest to_request(const CoalescenceExperimentConfig& config) {
  RunRequest req;
  req.trials = config.trials;
  req.threads = config.threads;
  req.seed = config.master_seed;
  req.max_steps = config.max_steps;
  req.target = RunTarget::kCoalescence;
  req.target_tokens = config.target_tokens;
  return req;
}

}  // namespace

CoverExperimentResult measure_cover(const ProcessFactory& processes,
                                    const GraphFactory& graphs,
                                    const CoverExperimentConfig& config) {
  return measure_cover(processes, graphs, to_request(config));
}

CoverExperimentResult measure_eprocess_cover(const GraphFactory& graphs,
                                             const RuleFactory& rules,
                                             const CoverExperimentConfig& config) {
  return measure_eprocess_cover(graphs, rules, to_request(config));
}

CoverExperimentResult measure_srw_cover(const GraphFactory& graphs,
                                        const CoverExperimentConfig& config) {
  return measure_srw_cover(graphs, to_request(config));
}

CoalescenceExperimentResult measure_coalescence(
    const TokenProcessFactory& processes, const GraphFactory& graphs,
    const CoalescenceExperimentConfig& config) {
  return measure_coalescence(processes, graphs, to_request(config));
}

}  // namespace ewalk
