// Multi-trial experiment runner.
//
// The paper's Figure 1 plots the trial-mean normalised cover time (5 trials
// per point, new random graph per trial). This module provides:
//   * run_trials — generic parallel trial executor with per-trial
//     deterministic RNG streams (bit-reproducible regardless of thread
//     scheduling);
//   * measure_cover — the one cover-time experiment: any WalkProcess
//     factory, any graph factory, vertex or edge target;
//   * measure_eprocess_cover / measure_srw_cover — thin wrappers over
//     measure_cover for the two walks the paper benchmarks head-to-head;
//   * measure_coalescence — the interacting-walker mirror of measure_cover:
//     any TokenProcess factory, driven to a token-population target,
//     reporting coalescence and first-meeting times.
//
// Configuration: both experiments are configured by the canonical
// RunRequest (serve/request.hpp) — the same struct the CLI and the ewalkd
// server construct, so every surface agrees on field names and defaults.
// The legacy CoverExperimentConfig / CoalescenceExperimentConfig overloads
// survive one release as thin forwarders; migrate by renaming
// `master_seed` -> `seed` and (for coalescence) keeping `target_tokens`.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/process.hpp"
#include "engine/token_process.hpp"
#include "graph/graph.hpp"
#include "serve/request.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "walks/eprocess.hpp"

namespace ewalk {

/// Runs `count` trials of `fn`, each with an independent stream derived from
/// `master_seed`, with up to `threads`-way parallelism (0 => hardware
/// default) as a TaskScope on the work-stealing Executor
/// (util/thread_pool.hpp) — no thread spawn/teardown per call, and callers
/// already inside a scope nest cleanly. Trial i's stream depends only on
/// (master_seed, i), so results are bit-identical across thread counts and
/// are returned in trial order. `fn` must be safe to call concurrently from
/// several threads (it receives a private Rng).
std::vector<double> run_trials(std::uint32_t count, std::uint32_t threads,
                               std::uint64_t master_seed,
                               const std::function<double(Rng&, std::uint32_t)>& fn);

/// run_trials + summarize.
SummaryStats run_trials_summary(std::uint32_t count, std::uint32_t threads,
                                std::uint64_t master_seed,
                                const std::function<double(Rng&, std::uint32_t)>& fn);

/// What a cover-time trial should measure.
enum class CoverTarget : std::uint8_t { kVertices, kEdges };

/// Factory producing a fresh graph for each trial (Figure 1 draws a new
/// random regular graph per experiment).
using GraphFactory = std::function<Graph(Rng&)>;

/// Factory producing a fresh rule per trial (rules can be stateful).
using RuleFactory = std::function<std::unique_ptr<UnvisitedEdgeRule>(const Graph&)>;

/// Factory producing a fresh walk process per trial. The rng is the trial's
/// private stream — construction-time draws (e.g. a priority rule's
/// permutation) come out of the same stream the walk is then driven with,
/// exactly as the legacy typed wrappers did.
using ProcessFactory =
    std::function<std::unique_ptr<WalkProcess>(const Graph&, Rng&)>;

/// \deprecated Legacy cover-experiment configuration; superseded by the
/// canonical RunRequest (serve/request.hpp), which every surface now
/// constructs. Kept one release as a forwarding shim — migrate by renaming
/// `master_seed` to `seed` (the other fields map one-to-one).
struct CoverExperimentConfig {
  std::uint32_t trials = 5;      ///< the paper used 5 per data point
  std::uint32_t threads = 0;     ///< 0 = hardware concurrency
  std::uint64_t master_seed = 1; ///< root of every per-trial stream
  std::uint64_t max_steps = 0;   ///< 0 = default_step_budget(g) (engine/budget.hpp)
  CoverTarget target = CoverTarget::kVertices;  ///< what each trial measures
  /// Trials interleaved per scheduler task (engine/bundle.hpp): <= 1 runs
  /// each trial as its own task (the historical path); W > 1 packs W
  /// consecutive trials into one round-robin bundle that hides DRAM latency
  /// on large graphs. Samples are bit-identical for every width — each
  /// trial keeps its own (master_seed, trial) stream and its sequential
  /// check schedule.
  std::uint32_t bundle_width = 1;
};

/// Cover-time samples over `trials` fresh (graph, process) pairs. Trials
/// that fail to cover within max_steps contribute max_steps (and are
/// counted in `uncovered_trials`).
struct CoverExperimentResult {
  SummaryStats stats;               ///< cover-time samples
  std::vector<double> samples;      ///< one per trial, trial order
  std::uint32_t uncovered_trials = 0;
};

/// The one generic cover experiment: a fresh graph and process per trial,
/// driven by the engine's run_until to the request's target. Consumes the
/// run-scheduling fields of `req` (trials, threads, seed, max_steps,
/// target, bundle_width); registry/protocol fields (graph, process, params,
/// id) are ignored here — factories already bound them. RunTarget::kAuto
/// resolves to vertex cover; kCoalescence is rejected (use
/// measure_coalescence).
CoverExperimentResult measure_cover(const ProcessFactory& processes,
                                    const GraphFactory& graphs,
                                    const RunRequest& req);

/// E-process convenience wrapper: walk started at vertex 0 with a fresh
/// rule per trial.
CoverExperimentResult measure_eprocess_cover(const GraphFactory& graphs,
                                             const RuleFactory& rules,
                                             const RunRequest& req);

/// Same, for the simple random walk.
CoverExperimentResult measure_srw_cover(const GraphFactory& graphs,
                                        const RunRequest& req);

/// \deprecated Forwards to the RunRequest overload; removed next release.
CoverExperimentResult measure_cover(const ProcessFactory& processes,
                                    const GraphFactory& graphs,
                                    const CoverExperimentConfig& config);

/// \deprecated Forwards to the RunRequest overload; removed next release.
CoverExperimentResult measure_eprocess_cover(const GraphFactory& graphs,
                                             const RuleFactory& rules,
                                             const CoverExperimentConfig& config);

/// \deprecated Forwards to the RunRequest overload; removed next release.
CoverExperimentResult measure_srw_cover(const GraphFactory& graphs,
                                        const CoverExperimentConfig& config);

// ---- Coalescence experiments (interacting walkers) ------------------------

/// Factory producing a fresh interacting-token process per trial; the rng is
/// the trial's private stream, exactly as for ProcessFactory.
using TokenProcessFactory =
    std::function<std::unique_ptr<TokenProcess>(const Graph&, Rng&)>;

/// \deprecated Legacy coalescence configuration; superseded by the
/// canonical RunRequest (serve/request.hpp). Kept one release as a
/// forwarding shim — migrate by renaming `master_seed` to `seed`
/// (`target_tokens` keeps its name).
struct CoalescenceExperimentConfig {
  std::uint32_t trials = 5;         ///< samples to draw
  std::uint32_t threads = 0;        ///< 0 = hardware concurrency
  std::uint64_t master_seed = 1;    ///< root of every per-trial stream
  std::uint64_t max_steps = 0;      ///< 0 = default_step_budget(g)
  std::uint32_t target_tokens = 1;  ///< stop once population <= this
};

/// Coalescence-time samples over `trials` fresh (graph, process) pairs.
/// Trials whose population fails to reach the target within max_steps
/// contribute max_steps (and are counted in `unfinished_trials`); trials
/// where no pair of tokens ever met contribute max_steps to the meeting
/// samples likewise.
struct CoalescenceExperimentResult {
  SummaryStats stats;                    ///< step population reached target
  std::vector<double> samples;           ///< one per trial, trial order
  SummaryStats meeting_stats;            ///< first-meeting step
  std::vector<double> meeting_samples;   ///< one per trial, trial order
  std::uint32_t unfinished_trials = 0;
};

/// The interacting-walker mirror of measure_cover: a fresh graph and token
/// process per trial, driven by the engine's run_until_process to the
/// population target. Consumes trials, threads, seed, max_steps, and
/// target_tokens of `req`; the target enum is ignored (this experiment is
/// always a coalescence run).
CoalescenceExperimentResult measure_coalescence(
    const TokenProcessFactory& processes, const GraphFactory& graphs,
    const RunRequest& req);

/// \deprecated Forwards to the RunRequest overload; removed next release.
CoalescenceExperimentResult measure_coalescence(
    const TokenProcessFactory& processes, const GraphFactory& graphs,
    const CoalescenceExperimentConfig& config);

}  // namespace ewalk
