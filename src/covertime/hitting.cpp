#include "covertime/hitting.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "walks/srw.hpp"

namespace ewalk {

namespace {

/// One exact SRW distribution step: out = ρ P.
void distribution_step(const Graph& g, const std::vector<double>& rho,
                       std::vector<double>& out) {
  std::fill(out.begin(), out.end(), 0.0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (rho[v] == 0.0) continue;
    const double share = rho[v] / g.degree(v);
    for (const Slot& s : g.slots(v)) out[s.neighbor] += share;
  }
}

}  // namespace

std::vector<double> exact_hitting_times(const Graph& g, Vertex target) {
  const std::size_t n = g.num_vertices();
  if (target >= n) throw std::invalid_argument("exact_hitting_times: target out of range");
  if (n > 4096) throw std::invalid_argument("exact_hitting_times: graph too large");
  if (!is_connected(g)) throw std::invalid_argument("exact_hitting_times: graph must be connected");
  if (n == 1) return {0.0};

  // Unknowns: h(u) for u != target. Row for u: h(u) - Σ_{w != target}
  // P(u,w) h(w) = 1. Dense Gaussian elimination with partial pivoting.
  const std::size_t k = n - 1;
  const auto idx = [target](Vertex u) -> std::size_t {
    return u < target ? u : u - 1;
  };
  std::vector<double> a(k * (k + 1), 0.0);  // augmented matrix
  const auto at = [&](std::size_t r, std::size_t c) -> double& {
    return a[r * (k + 1) + c];
  };
  for (Vertex u = 0; u < n; ++u) {
    if (u == target) continue;
    const std::size_t r = idx(u);
    at(r, r) += 1.0;
    const double p = 1.0 / g.degree(u);
    for (const Slot& s : g.slots(u)) {
      if (s.neighbor == target) continue;
      at(r, idx(s.neighbor)) -= p;
    }
    at(r, k) = 1.0;
  }

  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < k; ++r)
      if (std::abs(at(r, col)) > std::abs(at(pivot, col))) pivot = r;
    if (std::abs(at(pivot, col)) < 1e-14)
      throw std::logic_error("exact_hitting_times: singular system");
    if (pivot != col)
      for (std::size_t c = col; c <= k; ++c) std::swap(at(pivot, c), at(col, c));
    const double inv = 1.0 / at(col, col);
    for (std::size_t r = col + 1; r < k; ++r) {
      const double f = at(r, col) * inv;
      if (f == 0.0) continue;
      for (std::size_t c = col; c <= k; ++c) at(r, c) -= f * at(col, c);
    }
  }
  std::vector<double> x(k, 0.0);
  for (std::size_t r = k; r-- > 0;) {
    double acc = at(r, k);
    for (std::size_t c = r + 1; c < k; ++c) acc -= at(r, c) * x[c];
    x[r] = acc / at(r, r);
  }

  std::vector<double> h(n, 0.0);
  for (Vertex u = 0; u < n; ++u)
    if (u != target) h[u] = x[idx(u)];
  return h;
}

double exact_stationary_hitting_time(const Graph& g, Vertex v) {
  const auto h = exact_hitting_times(g, v);
  double acc = 0.0;
  for (Vertex u = 0; u < g.num_vertices(); ++u)
    acc += g.stationary_probability(u) * h[u];
  return acc;
}

double exact_commute_time(const Graph& g, Vertex u, Vertex v) {
  const auto hu = exact_hitting_times(g, v);
  const auto hv = exact_hitting_times(g, u);
  return hu[u] + hv[v];
}

double expected_return_time(const Graph& g, Vertex v) {
  return 1.0 / g.stationary_probability(v);
}

double zvv(const Graph& g, Vertex v, bool lazy, double tol, std::uint32_t max_terms) {
  if (v >= g.num_vertices()) throw std::invalid_argument("zvv: vertex out of range");
  const double pi_v = g.stationary_probability(v);
  std::vector<double> rho(g.num_vertices(), 0.0), next(g.num_vertices(), 0.0);
  rho[v] = 1.0;
  double acc = 0.0;
  for (std::uint32_t t = 0; t < max_terms; ++t) {
    const double term = rho[v] - pi_v;
    acc += term;
    if (t > 0 && std::abs(term) < tol) break;
    distribution_step(g, rho, next);
    if (lazy) {
      for (Vertex u = 0; u < g.num_vertices(); ++u)
        next[u] = 0.5 * rho[u] + 0.5 * next[u];
    }
    rho.swap(next);
  }
  return acc;
}

double estimate_unvisited_probability(const Graph& g, std::span<const Vertex> set,
                                      std::uint64_t t, std::uint32_t trials, Rng& rng) {
  std::vector<bool> in_set(g.num_vertices(), false);
  for (const Vertex v : set) in_set[v] = true;

  // Stationary start: pick the start vertex with probability d(v)/2m by
  // drawing a uniform slot and taking its owner — equivalent and O(1).
  std::vector<Vertex> slot_owner;
  slot_owner.reserve(2 * g.num_edges());
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    for (std::uint32_t i = 0; i < g.degree(v); ++i) slot_owner.push_back(v);

  std::uint32_t unvisited = 0;
  for (std::uint32_t trial = 0; trial < trials; ++trial) {
    Vertex at = slot_owner[rng.uniform(slot_owner.size())];
    bool hit = in_set[at];
    for (std::uint64_t step = 0; step < t && !hit; ++step) {
      const Slot s = g.slot(at, static_cast<std::uint32_t>(rng.uniform(g.degree(at))));
      at = s.neighbor;
      hit = in_set[at];
    }
    if (!hit) ++unvisited;
  }
  return static_cast<double>(unvisited) / trials;
}

double lemma6_bound(const Graph& g, Vertex v, double gap) {
  if (gap <= 0.0) throw std::invalid_argument("lemma6_bound: gap must be positive");
  return 1.0 / (gap * g.stationary_probability(v));
}

double corollary9_bound(const Graph& g, std::span<const Vertex> set, double gap) {
  if (gap <= 0.0) throw std::invalid_argument("corollary9_bound: gap must be positive");
  double d_s = 0.0;
  for (const Vertex v : set) d_s += g.degree(v);
  return 2.0 * g.num_edges() / (d_s * gap);
}

}  // namespace ewalk
