// Hitting, return, and commute times (Section 2.2 of the paper).
//
// Exact quantities come from dense linear solves on the SRW transition
// matrix (suitable for n up to a couple thousand — tests and bench-scale
// validation); the same quantities can be estimated empirically at any
// scale. Together these validate, with exact numbers:
//   * E_u T_u^+ = 1/π_u                        (first return time)
//   * E_π(H_v) = Z_vv / π_v                    (eqs. 6–7)
//   * Lemma 6:  E_π(H_v) <= 1/((1-λmax) π_v)
//   * Cor.  9:  E_π(H_S) <= 2m/(d(S)(1-λmax)), via contraction Γ(S)
//   * Lemma 8/13 exponential tails for Pr(S unvisited at t)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ewalk {

/// Exact expected hitting times E_u(H_target) for all u, via the linear
/// system h(target) = 0, h(u) = 1 + Σ_w P(u,w) h(w). Dense Gaussian
/// elimination, O(n³); requires a connected graph and n <= 4096.
std::vector<double> exact_hitting_times(const Graph& g, Vertex target);

/// Exact E_π(H_v): Σ_u π_u E_u(H_v).
double exact_stationary_hitting_time(const Graph& g, Vertex v);

/// Exact commute time K(u,v) = E_u(H_v) + E_v(H_u).
double exact_commute_time(const Graph& g, Vertex u, Vertex v);

/// Closed-form expected first return time 1/π_v.
double expected_return_time(const Graph& g, Vertex v);

/// Z_vv = Σ_t (P^t_v(v) - π_v) (eq. 7), evaluated by iterating the exact
/// distribution until the term falls below `tol` or `max_terms` is reached.
/// The walk must be aperiodic (use `lazy` for bipartite graphs; the lazy
/// value relates to the lazy chain's hitting times).
double zvv(const Graph& g, Vertex v, bool lazy = false, double tol = 1e-12,
           std::uint32_t max_terms = 1000000);

/// Empirical Pr(set S unvisited by a stationary-start SRW at time t),
/// estimated over `trials` independent walks (Lemma 13's event A_t(S)).
double estimate_unvisited_probability(const Graph& g, std::span<const Vertex> set,
                                      std::uint64_t t, std::uint32_t trials, Rng& rng);

/// Lemma 6 right-hand side: 1/((1-λmax) π_v). Pass the gap you trust
/// (lazy gap for bipartite graphs).
double lemma6_bound(const Graph& g, Vertex v, double gap);

/// Corollary 9 right-hand side: 2m/(d(S)(1-λmax(G))).
double corollary9_bound(const Graph& g, std::span<const Vertex> set, double gap);

}  // namespace ewalk
