#include "covertime/timeseries.hpp"

namespace ewalk {

std::uint64_t CoverageRecorder::step_at_vertex_fraction(double q, std::uint32_t n) const {
  const double target = q * n;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].vertices_covered >= target) {
      if (i == 0) return points_[0].step;
      // Linear interpolation between the bracketing samples.
      const auto& a = points_[i - 1];
      const auto& b = points_[i];
      const double span = static_cast<double>(b.vertices_covered - a.vertices_covered);
      if (span <= 0) return b.step;
      const double frac = (target - a.vertices_covered) / span;
      return a.step + static_cast<std::uint64_t>(frac * (b.step - a.step));
    }
  }
  return points_.empty() ? 0 : points_.back().step;
}

double CoverageRecorder::uncovered_area(std::uint32_t n) const {
  if (points_.empty() || n == 0) return 0.0;
  double acc = 0.0;
  for (const auto& p : points_)
    acc += 1.0 - static_cast<double>(p.vertices_covered) / n;
  return acc / static_cast<double>(points_.size());
}

}  // namespace ewalk
