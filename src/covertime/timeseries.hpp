// Coverage time-series instrumentation.
//
// Cover *time* is one number; the cover *curve* (fraction of vertices/edges
// covered as a function of step) explains it. For the E-process on
// even-degree expanders the curve is near-linear until ~n, then a short
// tail; for the SRW it has the classic coupon-collector log tail; for the
// E-process on 3-regular graphs the tail is the star mop-up of Section 5.
// This module samples such curves at a fixed step stride for any process
// exposing steps()/cover().
#pragma once

#include <cstdint>
#include <vector>

#include "walks/cover_state.hpp"

namespace ewalk {

struct CoveragePoint {
  std::uint64_t step;
  std::uint32_t vertices_covered;
  std::uint32_t edges_covered;
};

/// Samples a walk's coverage curve. Drive via `record(walk)` after each
/// burst of steps (the class decides whether the stride boundary passed).
class CoverageRecorder {
 public:
  explicit CoverageRecorder(std::uint64_t stride) : stride_(stride) {
    if (stride == 0) stride_ = 1;
  }

  /// Call after stepping the walk; appends a sample when the stride
  /// boundary was crossed since the last sample.
  template <typename Walk>
  void record(const Walk& walk) {
    if (walk.steps() < next_sample_) return;
    points_.push_back(CoveragePoint{walk.steps(), walk.cover().vertices_covered(),
                                    walk.cover().edges_covered()});
    next_sample_ = walk.steps() + stride_;
  }

  const std::vector<CoveragePoint>& points() const { return points_; }

  /// Step at which the fraction `q` of all n vertices was first covered
  /// (linear interpolation between samples); returns the last sample's step
  /// if never reached.
  std::uint64_t step_at_vertex_fraction(double q, std::uint32_t n) const;

  /// Area above the coverage curve, normalised: mean over sampled steps of
  /// the uncovered vertex fraction. Small == fast early coverage.
  double uncovered_area(std::uint32_t n) const;

 private:
  std::uint64_t stride_;
  std::uint64_t next_sample_ = 0;
  std::vector<CoveragePoint> points_;
};

}  // namespace ewalk
