// Thin WalkProcess adapters for the edge-process family.
//
// EProcess and MultiEProcess report the colour of each transition from
// step(), so they cannot override WalkProcess::step(Rng&) directly (C++
// forbids overloading on return type). These handles forward the interface
// and additionally *own* the choice rule, which the underlying walks only
// borrow — exactly what registry- and experiment-constructed processes
// need: one value that keeps rule and walk alive together.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "engine/process.hpp"
#include "walks/eprocess.hpp"
#include "walks/multi_eprocess.hpp"

namespace ewalk {

/// Owns a rule + EProcess pair and exposes them as a WalkProcess.
class EProcessHandle final : public WalkProcess {
 public:
  /// Takes ownership of `rule` and starts an EProcess at `start` with it.
  EProcessHandle(const Graph& g, Vertex start,
                 std::unique_ptr<UnvisitedEdgeRule> rule,
                 EProcessOptions options = {})
      : rule_(std::move(rule)), walk_(g, start, *rule_, options) {}

  void step(Rng& rng) override { walk_.step(rng); }
  void step_many(Rng& rng, std::uint64_t k) override { walk_.step_many(rng, k); }
  Vertex current() const override { return walk_.current(); }
  std::uint64_t steps() const override { return walk_.steps(); }
  const CoverState& cover() const override { return walk_.cover(); }
  const Graph& graph() const override { return walk_.graph(); }
  std::string_view name() const override { return "eprocess"; }

  /// The underlying walk, for colour/phase-aware callers.
  EProcess& walk() { return walk_; }
  /// Read-only view of the underlying walk.
  const EProcess& walk() const { return walk_; }
  /// The owned choice rule.
  const UnvisitedEdgeRule& rule() const { return *rule_; }

 private:
  std::unique_ptr<UnvisitedEdgeRule> rule_;  // must outlive walk_
  EProcess walk_;
};

/// Owns a rule + MultiEProcess pair and exposes them as a WalkProcess.
class MultiEProcessHandle final : public WalkProcess {
 public:
  /// Takes ownership of `rule` and starts one walker per entry of `starts`.
  MultiEProcessHandle(const Graph& g, std::vector<Vertex> starts,
                      std::unique_ptr<UnvisitedEdgeRule> rule)
      : rule_(std::move(rule)), walk_(g, std::move(starts), *rule_) {}

  void step(Rng& rng) override { walk_.step(rng); }
  void step_many(Rng& rng, std::uint64_t k) override { walk_.step_many(rng, k); }
  Vertex current() const override { return walk_.current(); }
  std::uint64_t steps() const override { return walk_.steps(); }
  const CoverState& cover() const override { return walk_.cover(); }
  const Graph& graph() const override { return walk_.graph(); }
  std::string_view name() const override { return "multi-eprocess"; }

  /// The underlying multi-walker process.
  MultiEProcess& walk() { return walk_; }
  /// Read-only view of the underlying multi-walker process.
  const MultiEProcess& walk() const { return walk_; }

 private:
  std::unique_ptr<UnvisitedEdgeRule> rule_;  // must outlive walk_
  MultiEProcess walk_;
};

}  // namespace ewalk
