#include "engine/budget.hpp"

#include <algorithm>

namespace ewalk {

std::uint64_t default_step_budget(const Graph& g) {
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  // floor(log2 n) + 1 via count-leading-zeros; n|1 avoids clz(0).
  const std::uint64_t log2n =
      64 - std::min<std::uint64_t>(63, __builtin_clzll(n | 1));
  return 200 * (n + m) * log2n + 1000000;
}

}  // namespace ewalk
