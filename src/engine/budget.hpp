// The one default-step-budget heuristic, shared by the CLI, the experiment
// harness, and the benches (previously each computed its own).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace ewalk {

/// Effectively-unlimited step budget for callers that want "run to cover".
inline constexpr std::uint64_t kUnlimitedSteps = 1ull << 62;

/// Default step budget for cover experiments on `g`:
///
///     200 * (n + m) * (floor(log2 n) + 1)  +  10^6
///
/// A generous ceiling, well above the cover time of everything we simulate
/// by default — the SRW on an n-vertex expander needs ~n ln n steps, the
/// E-process Θ(m) — while still terminating promptly when a process fails
/// to cover (disconnected graphs, adversarial rules on bad families).
/// Pathological SRW families (lollipops: Θ(n³) hitting time) should pass an
/// explicit budget, as their benches do.
std::uint64_t default_step_budget(const Graph& g);

}  // namespace ewalk
