// Interleaved trial bundles: latency hiding for the walk hot path.
//
// A single walk trial is a serial pointer chase over the CSR: every step
// loads the adjacency row of a (pseudo)random vertex, and once the graph
// stops fitting in LLC (n ~ 1e6) each of those loads is a dependent DRAM
// miss — the core sits idle for the full memory latency because step t+1
// cannot start before step t's row arrives. Interleaving B *independent*
// trials round-robin on one core breaks the dependence chain: while trial
// i's row is in flight, the B-1 other trials issue their own loads, so the
// memory system serves several misses concurrently (MLP) instead of one at
// a time. A software prefetch for each trial's NEXT position, issued right
// after its step commits, has a full round (B-1 other steps) to complete
// before the trial needs the data.
//
// Determinism contract: each BundleTrial carries its own private Rng — the
// exact per-trial stream the sequential drivers derive (derive_streams,
// sweep_stream) — and the bundle draws nothing of its own. A trial's
// trajectory is therefore a pure function of its stream, and
// run_trial_bundle reproduces run_until_process's check schedule per trial
// exactly (predicate checked before the budget, every `check_stride`
// transitions and at the budget), so every trial's stopping step, cover
// step, and final rng state are bit-identical to running the trials one
// after another. Bundling changes wall-clock only — pinned by
// tests/bundle_test.cpp and the sweep/covertime width-invariance tests.
//
// Devirtualisation: bundles whose processes are all SimpleRandomWalk, all
// EProcessHandle, or all MultiEProcessHandle (the hot cases — that is what
// the covertime and sweep drivers build) run a typed loop whose step,
// current and prefetch calls resolve statically (the classes are final);
// mixed bundles fall back to one virtual dispatch per step, still gaining
// the miss overlap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "engine/adapters.hpp"
#include "engine/process.hpp"
#include "util/rng.hpp"
#include "walks/srw.hpp"

namespace ewalk {

/// One trial of an interleaved bundle: a borrowed process, its private rng
/// stream, and the stopping parameters run_until_process would have used.
/// The caller owns process and rng; both must outlive run_trial_bundle.
struct BundleTrial {
  WalkProcess* process = nullptr;  ///< the walk to advance (borrowed)
  Rng* rng = nullptr;              ///< the trial's private stream (borrowed)
  std::uint64_t max_steps = 0;     ///< lifetime step budget (as run_until_process)
  std::uint64_t check_stride = 1;  ///< predicate check period (0 treated as 1)
};

/// Internal bookkeeping of run_trial_bundle. Exposed in the header only
/// because the driver is a template; not part of the engine API.
namespace bundle_detail {

/// Per-trial loop state of a live (not yet retired) bundled trial.
struct LiveTrial {
  WalkProcess* process;      ///< the walk being advanced
  Rng* rng;                  ///< its private stream
  std::uint64_t steps;       ///< transitions made so far (mirror of process->steps())
  std::uint64_t max_steps;   ///< lifetime budget
  std::uint64_t stride;      ///< predicate check period (>= 1)
  std::uint64_t next_check;  ///< step count at which the predicate is next evaluated
  std::size_t index;         ///< position in the caller's trials span
};

/// The software-pipelined round-robin loop: one step of every live trial
/// per round (stepping + prefetch via `step_one`, which is where the typed
/// fast paths plug in), with retired trials compacted out in place — the
/// relative order of survivors is preserved, so the interleave pattern is
/// deterministic. Predicate checks replay run_until_process's schedule per
/// trial: at every `stride` transitions and at the budget, predicate before
/// budget.
template <typename Predicate, typename StepFn>
void drive_bundle(std::vector<LiveTrial>& live,
                  std::vector<std::uint8_t>& finished,
                  const Predicate& predicate, const StepFn& step_one) {
  while (!live.empty()) {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < live.size(); ++i) {
      LiveTrial t = live[i];
      step_one(t);
      ++t.steps;
      bool retired = false;
      if (t.steps >= t.next_check) {
        if (predicate(*t.process)) {
          finished[t.index] = 1;
          retired = true;
        } else if (t.steps >= t.max_steps) {
          retired = true;
        } else {
          t.next_check = t.steps + std::min(t.stride, t.max_steps - t.steps);
        }
      }
      if (!retired) live[keep++] = t;
    }
    live.resize(keep);
  }
}

}  // namespace bundle_detail

/// Advances every trial round-robin in one interleaved loop until each
/// trial's `predicate(process)` holds or its `max_steps` budget is spent,
/// issuing the next-position prefetch for each trial while the others step.
/// Per trial this is exactly run_until_process: the predicate (a callable
/// over `const WalkProcess&`) is evaluated before the budget, every
/// `check_stride` transitions and at the budget, and each transition draws
/// only from the trial's own rng — so stopping steps, trajectories, and rng
/// states are bit-identical to sequential execution in any order. Returns
/// one flag per trial (trial order): 1 iff the predicate held on exit.
/// Homogeneous SRW / EProcessHandle / MultiEProcessHandle bundles take a
/// devirtualised fast path; mixed bundles run the generic virtual loop.
template <typename Predicate>
std::vector<std::uint8_t> run_trial_bundle(std::span<const BundleTrial> trials,
                                           const Predicate& predicate) {
  using bundle_detail::LiveTrial;
  std::vector<std::uint8_t> finished(trials.size(), 0);
  std::vector<LiveTrial> live;
  live.reserve(trials.size());

  bool all_srw = !trials.empty();
  bool all_eprocess = !trials.empty();
  bool all_multi = !trials.empty();
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const BundleTrial& trial = trials[i];
    // Entry check: run_until_process tests the predicate (then the budget)
    // before the first transition, so an already-satisfied or zero-budget
    // trial never steps.
    if (predicate(*trial.process)) {
      finished[i] = 1;
      continue;
    }
    const std::uint64_t steps = trial.process->steps();
    if (steps >= trial.max_steps) continue;
    const std::uint64_t stride = std::max<std::uint64_t>(1, trial.check_stride);
    live.push_back(LiveTrial{
        trial.process, trial.rng, steps, trial.max_steps, stride,
        steps + std::min(stride, trial.max_steps - steps), i});
    all_srw = all_srw && dynamic_cast<SimpleRandomWalk*>(trial.process) != nullptr;
    all_eprocess =
        all_eprocess && dynamic_cast<EProcessHandle*>(trial.process) != nullptr;
    all_multi =
        all_multi && dynamic_cast<MultiEProcessHandle*>(trial.process) != nullptr;
  }

  if (live.empty()) return finished;

  if (all_srw) {
    bundle_detail::drive_bundle(live, finished, predicate, [](LiveTrial& t) {
      auto* walk = static_cast<SimpleRandomWalk*>(t.process);
      walk->step(*t.rng);  // final class: resolves statically
      walk->graph().prefetch_hint(walk->current());
    });
  } else if (all_eprocess) {
    bundle_detail::drive_bundle(live, finished, predicate, [](LiveTrial& t) {
      EProcess& walk = static_cast<EProcessHandle*>(t.process)->walk();
      walk.step(*t.rng);  // concrete EProcess::step, non-virtual
      walk.prefetch_hint(walk.current());
    });
  } else if (all_multi) {
    bundle_detail::drive_bundle(live, finished, predicate, [](LiveTrial& t) {
      MultiEProcess& walk = static_cast<MultiEProcessHandle*>(t.process)->walk();
      walk.step(*t.rng);
      walk.prefetch_hint(walk.current());
    });
  } else {
    bundle_detail::drive_bundle(live, finished, predicate, [](LiveTrial& t) {
      t.process->step(*t.rng);
      t.process->graph().prefetch_hint(t.process->current());
    });
  }
  return finished;
}

}  // namespace ewalk
