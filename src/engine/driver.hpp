// The generic cover driver: one run_until() loop for every walk process.
//
// Replaces the per-class run_until_vertex_cover / run_until_edge_cover /
// run_until_visit_count member loops that each walk used to duplicate.
// The driver is a template over the process type, so it drives both
//   * concrete walk classes (EProcess, SimpleRandomWalk, ...) with static
//     dispatch — the hot loop compiles to exactly the old member loop — and
//   * WalkProcess& (registry-constructed processes) with virtual dispatch.
//
// Termination predicates are small callables over the CoverState and
// compose with all_of / any_of; the step budget is the driver's own
// termination condition (run_until returns false when it is exhausted
// before the predicate holds). Expensive predicates (min-visit-count is
// O(n)) declare a check stride so the driver only evaluates them every
// `stride` transitions — the same burst pattern the legacy
// SimpleRandomWalk::run_until_visit_count used, reproducing its step counts
// exactly.
//
// RNG discipline: the driver makes precisely one step() call per
// transition and draws nothing from the rng itself, so a process driven by
// run_until consumes the identical random stream as the deleted member
// loops — per-trial reproducibility is preserved bit-for-bit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <tuple>

#include "engine/process.hpp"
#include "util/rng.hpp"
#include "walks/cover_state.hpp"

namespace ewalk {

// ---- Termination predicates ---------------------------------------------

/// All n vertices visited.
struct VertexCovered {
  /// True once every vertex has been visited.
  bool operator()(const CoverState& c) const noexcept {
    return c.all_vertices_covered();
  }
};

/// All m edges traversed.
struct EdgesCovered {
  /// True once every edge has been traversed.
  bool operator()(const CoverState& c) const noexcept {
    return c.all_edges_covered();
  }
};

/// Every vertex visited at least `count` times (blanket-style target; the
/// check is O(n), so pair it with a stride — see visit_count_stride below).
struct MinVisitCountAtLeast {
  std::uint32_t count;  ///< required minimum visits per vertex
  /// True once min_visit_count() reaches the target.
  bool operator()(const CoverState& c) const noexcept {
    return c.min_visit_count() >= count;
  }
};

/// Conjunction of predicates: stop when every sub-predicate holds.
template <typename... Preds>
struct AllOf {
  std::tuple<Preds...> preds;  ///< the composed sub-predicates
  /// True iff every sub-predicate holds on c.
  bool operator()(const CoverState& c) const {
    return std::apply([&](const auto&... p) { return (p(c) && ...); }, preds);
  }
};

/// Disjunction of predicates: stop as soon as any sub-predicate holds.
template <typename... Preds>
struct AnyOf {
  std::tuple<Preds...> preds;  ///< the composed sub-predicates
  /// True iff some sub-predicate holds on c.
  bool operator()(const CoverState& c) const {
    return std::apply([&](const auto&... p) { return (p(c) || ...); }, preds);
  }
};

/// Composes predicates conjunctively: all_of(VertexCovered{}, EdgesCovered{}).
template <typename... Preds>
AllOf<Preds...> all_of(Preds... preds) {
  return AllOf<Preds...>{std::tuple<Preds...>(preds...)};
}

/// Composes predicates disjunctively: any_of(VertexCovered{}, EdgesCovered{}).
template <typename... Preds>
AnyOf<Preds...> any_of(Preds... preds) {
  return AnyOf<Preds...>{std::tuple<Preds...>(preds...)};
}

/// Stride at which an O(n) predicate is worth re-checking.
inline std::uint64_t visit_count_stride(const Graph& g) {
  return std::max<std::uint64_t>(1, g.num_vertices());
}

// ---- The generic driver ---------------------------------------------------

/// The fundamental driver: runs `process` until `predicate(process)` holds
/// or `max_steps` total transitions have been made (the step budget counts
/// *all* steps of the process's lifetime, matching the legacy member
/// loops). The predicate is evaluated every `check_stride` transitions
/// (1 = every step); it sees the whole process, which is what the
/// token-population predicates (CoalescedToOne, TokensAtMost, TokensHaveMet
/// — engine/token_process.hpp) need. Each burst between predicate checks is
/// driven as ONE step_many() call, so registry-constructed processes pay
/// ~1 virtual dispatch per chunk instead of one per transition — with
/// step counts and RNG streams identical to per-step driving, which
/// step_many's contract guarantees. RNG discipline: exactly one transition
/// per step of the budget, nothing drawn by the driver itself. Returns true
/// iff the predicate holds on exit.
template <typename Process, typename Predicate>
bool run_until_process(Process& process, Rng& rng, Predicate predicate,
                       std::uint64_t max_steps, std::uint64_t check_stride = 1) {
  for (;;) {
    if (predicate(process)) return true;
    if (process.steps() >= max_steps) return false;
    const std::uint64_t remaining = max_steps - process.steps();
    const std::uint64_t burst = std::min(check_stride, remaining);
    process.step_many(rng, burst);
  }
}

/// Runs `process` until `predicate(process.cover())` holds — the cover-state
/// view of run_until_process, which the cover predicates above compose over.
template <typename Process, typename Predicate>
bool run_until(Process& process, Rng& rng, Predicate predicate,
               std::uint64_t max_steps, std::uint64_t check_stride = 1) {
  return run_until_process(
      process, rng,
      [&predicate](const Process& p) { return predicate(p.cover()); },
      max_steps, check_stride);
}

/// True for processes that advance without randomness (they expose a no-arg
/// step() alongside the interface's step(Rng&)): rotor-router, locally-fair.
template <typename Process>
concept DeterministicProcess = requires(Process& p) { p.step(); };

/// Deterministic-process convenience: drives processes whose step() ignores
/// the rng without the caller owning one. Constrained so a stochastic walk
/// cannot silently run on a hidden fixed stream — pass a real Rng there.
template <DeterministicProcess Process, typename Predicate>
bool run_until(Process& process, Predicate predicate, std::uint64_t max_steps,
               std::uint64_t check_stride = 1) {
  Rng unused(0);
  return run_until(process, unused, predicate, max_steps, check_stride);
}

// ---- Convenience wrappers (the legacy member-loop surface) ---------------

/// Runs until every vertex is visited (or the budget runs out).
template <typename Process>
bool run_until_vertex_cover(Process& process, Rng& rng, std::uint64_t max_steps) {
  return run_until(process, rng, VertexCovered{}, max_steps);
}

/// Runs until every edge is traversed (or the budget runs out).
template <typename Process>
bool run_until_edge_cover(Process& process, Rng& rng, std::uint64_t max_steps) {
  return run_until(process, rng, EdgesCovered{}, max_steps);
}

/// Runs until every vertex has been visited at least `count` times (blanket
/// bounds: d(v) visits force all incident edges red in the E-process
/// edge-cover argument, eq. (4)). Checked every n steps, as the legacy
/// SimpleRandomWalk burst loop did.
template <typename Process>
bool run_until_visit_count(Process& process, Rng& rng, std::uint32_t count,
                           std::uint64_t max_steps) {
  return run_until(process, rng, MinVisitCountAtLeast{count}, max_steps,
                   visit_count_stride(process.graph()));
}

// Rng-less overloads, restricted to deterministic processes (as the deleted
// per-class API was: only RotorRouter and LocallyFairWalk had rng-less loops).

/// Rng-less vertex-cover driver for deterministic processes.
template <DeterministicProcess Process>
bool run_until_vertex_cover(Process& process, std::uint64_t max_steps) {
  Rng unused(0);
  return run_until(process, unused, VertexCovered{}, max_steps);
}

/// Rng-less edge-cover driver for deterministic processes.
template <DeterministicProcess Process>
bool run_until_edge_cover(Process& process, std::uint64_t max_steps) {
  Rng unused(0);
  return run_until(process, unused, EdgesCovered{}, max_steps);
}

}  // namespace ewalk
