#include "engine/params.hpp"

#include <stdexcept>

namespace ewalk {

std::string ParamMap::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t ParamMap::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoll(it->second);
}

std::uint64_t ParamMap::get_u64(const std::string& key, std::uint64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoull(it->second);
}

double ParamMap::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stod(it->second);
}

bool ParamMap::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace ewalk
