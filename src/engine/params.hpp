// String key-value options for registry-driven construction.
//
// Both registries (processes and graph generators) are configured through a
// ParamMap so the same factory serves the CLI (flags), the experiment
// harness (programmatic maps), and future config-file frontends. Typed
// getters mirror util/cli.hpp; a Cli's flag map converts directly via
// ParamMap(cli.values()).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <utility>

namespace ewalk {

/// String key-value parameter bag for registry factories. Typed getters
/// mirror util/cli.hpp; malformed values throw std::invalid_argument.
class ParamMap {
 public:
  /// Empty map: every getter returns its fallback.
  ParamMap() = default;
  /// Adopts an existing key-value map (e.g. Cli::values()).
  explicit ParamMap(std::map<std::string, std::string> values)
      : values_(std::move(values)) {}
  /// Literal construction: ParamMap{{"rule", "uniform"}, {"start", "0"}}.
  ParamMap(std::initializer_list<std::pair<const std::string, std::string>> kv)
      : values_(kv) {}

  /// True iff `key` is present.
  bool has(const std::string& key) const { return values_.count(key) > 0; }
  /// Sets (or overwrites) `key` to `value`.
  void set(const std::string& key, std::string value) {
    values_[key] = std::move(value);
  }
  /// Removes `key` if present (alias folding rewrites keys in place).
  void erase(const std::string& key) { values_.erase(key); }

  /// The raw string at `key`, or `fallback` when absent.
  std::string get(const std::string& key, const std::string& fallback) const;
  /// `key` parsed as a signed integer, or `fallback` when absent.
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  /// `key` parsed as an unsigned integer, or `fallback` when absent.
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
  /// `key` parsed as a double, or `fallback` when absent.
  double get_double(const std::string& key, double fallback) const;
  /// `key` parsed as a bool ("true"/"1"/"yes"), or `fallback` when absent.
  bool get_bool(const std::string& key, bool fallback) const;

  /// The underlying key-value map (for iteration / conversion).
  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace ewalk
