// String key-value options for registry-driven construction.
//
// Both registries (processes and graph generators) are configured through a
// ParamMap so the same factory serves the CLI (flags), the experiment
// harness (programmatic maps), and future config-file frontends. Typed
// getters mirror util/cli.hpp; a Cli's flag map converts directly via
// ParamMap(cli.values()).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <utility>

namespace ewalk {

class ParamMap {
 public:
  ParamMap() = default;
  explicit ParamMap(std::map<std::string, std::string> values)
      : values_(std::move(values)) {}
  ParamMap(std::initializer_list<std::pair<const std::string, std::string>> kv)
      : values_(kv) {}

  bool has(const std::string& key) const { return values_.count(key) > 0; }
  void set(const std::string& key, std::string value) {
    values_[key] = std::move(value);
  }

  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::map<std::string, std::string>& values() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace ewalk
