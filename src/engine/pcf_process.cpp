#include "engine/pcf_process.hpp"

namespace ewalk {

PcfCoalescingSrw::PcfCoalescingSrw(const Graph& base,
                                   std::vector<Vertex> starts, double alpha,
                                   double time_per_step, Rng& schedule_rng)
    : base_(&base), dyn_(base.num_vertices()),
      schedule_(base, alpha, schedule_rng), view_(dyn_),
      tokens_(base.num_vertices(), starts),
      cover_(base.num_vertices(), /*m=*/1), time_per_step_(time_per_step) {
  if (!(time_per_step > 0.0))
    throw std::invalid_argument("PcfCoalescingSrw: time_per_step must be > 0");
  for (const Vertex v : starts) cover_.visit_vertex(v, 0);
}

void PcfCoalescingSrw::step(Rng& rng) {
  time_ += time_per_step_;
  schedule_.advance_to(time_, dyn_);
  const TokenSystem::TokenId t = next_token_;
  ++steps_;
  const Vertex v = tokens_.position(t);
  Slot slot;
  if (srw_transition(view_, v, rng, &slot) == TransitionKind::kIsolated) {
    // Stranded until an edge arrives: a counted hold, no rng consumed.
    ++holds_;
    cover_.visit_vertex(v, steps_);
    next_token_ = tokens_.next_alive_after(t);
    return;
  }
  const TokenSystem::TokenId other = tokens_.move(t, slot.neighbor, steps_);
  cover_.visit_vertex(slot.neighbor, steps_);
  if (other != TokenSystem::kNoToken) tokens_.kill(t, steps_);  // merge
  next_token_ = tokens_.next_alive_after(t);
}

}  // namespace ewalk
