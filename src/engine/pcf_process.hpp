// Engine-level processes on PCF-evolving graphs.
//
// These wrap a DynamicGraph + PcfSchedule + dynamic walk into the standard
// WalkProcess / TokenProcess interfaces, so the whole existing harness —
// registry construction, run_until drivers, measure_cover /
// measure_coalescence, run_sweep, the ewalk CLI — drives walks on evolving
// graphs with zero special cases. The "graph" the process reports through
// graph() is the BASE graph (the potential-edge set whose edges open); the
// walker itself steps on the owned DynamicGraph, which starts empty and
// grows as the schedule plays.
//
// Time coupling: each walk step advances process time by `time_per_step`,
// then applies every PCF event up to the new time, then steps the walker.
// With time_per_step = 1/n (the registry default), one unit of PCF time
// corresponds to n walk steps — the standard walk-clock/graph-clock
// coupling for dynamic-graph cover results. The schedule is drawn from a
// child stream split off the process's construction rng, so the trajectory
// stays a pure function of (master seed, point, trial) — never of thread
// count — exactly like every static process.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "engine/process.hpp"
#include "engine/token_process.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/pcf.hpp"
#include "interact/token_system.hpp"
#include "util/rng.hpp"
#include "walks/dynamic_walks.hpp"
#include "walks/step_core.hpp"

namespace ewalk {

/// Single-walker process on a PCF-evolving graph, templated on the dynamic
/// walk (DynamicSrw or DynamicEProcess — anything constructible from
/// (DynamicGraphView, Vertex) with the step/current/steps/cover surface).
/// Non-copyable and non-movable: the walk's view points into the owned
/// DynamicGraph member.
template <class WalkT>
class PcfProcess final : public WalkProcess {
 public:
  /// Builds the evolving environment and the walker. `base` is the
  /// potential-edge graph (borrowed; must outlive the process); the full
  /// PCF schedule is drawn from `schedule_rng` at construction, so two
  /// processes built from equal rng states replay identical evolutions.
  /// `time_per_step` (> 0) is the PCF time advanced per walk step.
  PcfProcess(const Graph& base, Vertex start, double alpha,
             double time_per_step, Rng& schedule_rng)
      : base_(&base), dyn_(base.num_vertices()),
        schedule_(base, alpha, schedule_rng),
        walk_(DynamicGraphView(dyn_), start), time_per_step_(time_per_step) {
    if (!(time_per_step > 0.0))
      throw std::invalid_argument("PcfProcess: time_per_step must be > 0");
  }

  PcfProcess(const PcfProcess&) = delete;
  PcfProcess& operator=(const PcfProcess&) = delete;

  /// Advances PCF time, applies due edge-open events, then steps the walk.
  void step(Rng& rng) override {
    time_ += time_per_step_;
    schedule_.advance_to(time_, dyn_);
    walk_.step(rng);
  }

  /// `k` transitions, bit-identical to k step() calls (final class: the
  /// inner calls devirtualise).
  void step_many(Rng& rng, std::uint64_t k) override {
    for (std::uint64_t i = 0; i < k; ++i) step(rng);
  }

  /// Vertex the walker currently occupies.
  Vertex current() const override { return walk_.current(); }
  /// Walk transitions made so far.
  std::uint64_t steps() const override { return walk_.steps(); }
  /// Vertex-cover bookkeeping of the dynamic walk.
  const CoverState& cover() const override { return walk_.cover(); }
  /// The BASE graph (potential-edge set), not the evolving one.
  const Graph& graph() const override { return *base_; }
  /// "pcf-srw" or "pcf-eprocess", matching the registry names.
  std::string_view name() const override;

  /// The walker (for blue/red/hold statistics).
  const WalkT& walk() const { return walk_; }
  /// The evolving open subgraph the walker steps on.
  const DynamicGraph& dynamic_graph() const { return dyn_; }
  /// The PCF event schedule (opened/blocked counters, alpha).
  const PcfSchedule& schedule() const { return schedule_; }
  /// Current PCF time (steps() * time_per_step).
  double time() const { return time_; }

 private:
  const Graph* base_;
  DynamicGraph dyn_;
  PcfSchedule schedule_;
  WalkT walk_;
  double time_per_step_;
  double time_ = 0.0;
};

/// \cond INTERNAL (explicit specialisations of PcfProcess::name)
template <>
inline std::string_view PcfProcess<DynamicSrw>::name() const {
  return "pcf-srw";
}
template <>
inline std::string_view PcfProcess<DynamicEProcess>::name() const {
  return "pcf-eprocess";
}
/// \endcond

/// K coalescing SRW tokens on a PCF-evolving graph: the dynamic analogue of
/// CoalescingRW. One step() advances PCF time, then moves one token
/// (round-robin over the alive population); a token at an isolated vertex
/// holds for its turn. Tokens merge on vertex collision (mover dies).
class PcfCoalescingSrw final : public TokenProcess {
 public:
  /// `base` is the potential-edge graph (borrowed); start vertices must be
  /// distinct. The schedule is drawn from `schedule_rng` at construction;
  /// `time_per_step` (> 0) is the PCF time advanced per token move.
  PcfCoalescingSrw(const Graph& base, std::vector<Vertex> starts, double alpha,
                   double time_per_step, Rng& schedule_rng);

  PcfCoalescingSrw(const PcfCoalescingSrw&) = delete;
  PcfCoalescingSrw& operator=(const PcfCoalescingSrw&) = delete;

  /// Advances PCF time, then moves (or holds) the next alive token.
  void step(Rng& rng) override;

  /// `k` transitions, bit-identical to k step() calls.
  void step_many(Rng& rng, std::uint64_t k) override {
    for (std::uint64_t i = 0; i < k; ++i) step(rng);
  }

  /// Position of the token about to move.
  Vertex current() const override { return tokens_.position(next_token_); }
  /// Token moves (including holds) made so far.
  std::uint64_t steps() const override { return steps_; }
  /// Vertex-cover bookkeeping (edge side is the 1-edge sentinel).
  const CoverState& cover() const override { return cover_; }
  /// The BASE graph (potential-edge set), not the evolving one.
  const Graph& graph() const override { return *base_; }
  /// Registry name "pcf-coalescing-srw".
  std::string_view name() const override { return "pcf-coalescing-srw"; }

  /// Tokens still alive.
  std::uint32_t tokens_remaining() const override {
    return tokens_.tokens_alive();
  }
  /// Tokens the process started with.
  std::uint32_t initial_tokens() const override {
    return tokens_.initial_tokens();
  }
  /// Step of the first token-token collision; kNotCovered until then.
  std::uint64_t first_meeting_step() const override {
    return tokens_.first_meeting_step();
  }
  /// Step at which the population reached 1; kNotCovered until then.
  std::uint64_t coalescence_step() const override {
    return tokens_.coalescence_step();
  }

  /// The shared token-population state.
  const TokenSystem& tokens() const { return tokens_; }
  /// The evolving open subgraph the tokens step on.
  const DynamicGraph& dynamic_graph() const { return dyn_; }
  /// The PCF event schedule (opened/blocked counters, alpha).
  const PcfSchedule& schedule() const { return schedule_; }
  /// Steps spent holding at isolated vertices (across all tokens).
  std::uint64_t holds() const { return holds_; }

 private:
  const Graph* base_;
  DynamicGraph dyn_;
  PcfSchedule schedule_;
  DynamicGraphView view_;
  TokenSystem tokens_;
  TokenSystem::TokenId next_token_ = 0;  // about to move; always alive
  std::uint64_t steps_ = 0;
  std::uint64_t holds_ = 0;
  CoverState cover_;
  double time_per_step_;
  double time_ = 0.0;
};

}  // namespace ewalk
