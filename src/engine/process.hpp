// The unified walk-engine process interface.
//
// Every walk process in src/walks/ is drivable through this interface: one
// transition per step(), with the shared CoverState exposing cover progress.
// Theorem 1's rule-independence makes head-to-head comparison across
// processes the repo's core workload, so the engine treats "a walk process"
// as a first-class polymorphic value: the generic driver (engine/driver.hpp)
// runs any process to any termination predicate, and the registry
// (engine/registry.hpp) constructs any process by name.
//
// Walk classes whose step signature already matches implement WalkProcess by
// direct inheritance (SRW, rotor-router, V-process, RWC, locally-fair,
// weighted); EProcess and MultiEProcess, whose step() returns the transition
// colour, are wrapped by the thin adapters in engine/registry.hpp.
//
// Deterministic processes (rotor-router, locally-fair) accept the Rng& and
// ignore it, so one signature drives everything.
#pragma once

#include <cstdint>
#include <string_view>

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "walks/cover_state.hpp"

/// \namespace ewalk
/// E-process cover-time lab: graphs, walk processes, the engine layer, and
/// the experiment harness (conf_podc_BerenbrinkCF12 reproduction).
namespace ewalk {

/// The unified walk-process interface: one transition per step(), shared
/// CoverState for progress, drivable by the generic driver and
/// constructible by name through the registry.
class WalkProcess {
 public:
  /// Virtual base: processes are owned and destroyed polymorphically.
  virtual ~WalkProcess() = default;

  /// Performs one transition. Deterministic processes ignore `rng`.
  virtual void step(Rng& rng) = 0;

  /// Performs `k` transitions as one call — required to be bit-identical to
  /// k successive step() calls (same RNG draws, same trajectory). The
  /// default loop still dispatches virtually per step; hot processes
  /// override it with a tight loop in the final class, so chunked drivers
  /// (engine/driver.hpp) pay ~1 virtual dispatch per chunk instead of one
  /// per transition.
  virtual void step_many(Rng& rng, std::uint64_t k) {
    for (std::uint64_t i = 0; i < k; ++i) step(rng);
  }

  /// Vertex the process occupies (for multi-walker processes: the walker
  /// about to move).
  virtual Vertex current() const = 0;

  /// Number of transitions made so far.
  virtual std::uint64_t steps() const = 0;

  /// Shared cover-progress bookkeeping (vertex/edge cover, visit counts).
  virtual const CoverState& cover() const = 0;

  /// The graph the process runs on.
  virtual const Graph& graph() const = 0;

  /// Registry-style process name (e.g. "eprocess", "srw").
  virtual std::string_view name() const = 0;
};

}  // namespace ewalk
