#include "engine/registry.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "engine/adapters.hpp"
#include "engine/pcf_process.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/lps.hpp"
#include "graph/pcf.hpp"
#include "interact/coalescing.hpp"
#include "interact/herman.hpp"
#include "interact/token_system.hpp"
#include "walks/choice.hpp"
#include "walks/locally_fair.hpp"
#include "walks/rotor.hpp"
#include "walks/rules.hpp"
#include "walks/srw.hpp"
#include "walks/vertex_process.hpp"
#include "walks/weighted.hpp"

namespace ewalk {

namespace {

Vertex start_vertex(const Graph& g, const ParamMap& params) {
  const Vertex start = static_cast<Vertex>(params.get_u64("start", 0));
  if (start >= g.num_vertices())
    throw std::invalid_argument("--start out of range for this graph");
  return start;
}

// PCF time advanced per walk step: --dt, defaulting to 1/n so one unit of
// graph time corresponds to n walk steps.
double pcf_time_per_step(const Graph& g, const ParamMap& p) {
  const double dflt =
      g.num_vertices() > 0 ? 1.0 / static_cast<double>(g.num_vertices()) : 1.0;
  const double dt = p.get_double("dt", dflt);
  if (!(dt > 0.0)) throw std::invalid_argument("--dt must be > 0");
  return dt;
}

double pcf_alpha(const ParamMap& p) {
  const double alpha = p.get_double("alpha", 1.0);
  if (!(alpha > 0.0)) throw std::invalid_argument("--alpha must be > 0");
  return alpha;
}

std::vector<std::uint32_t> parse_offsets(const std::string& spec) {
  std::vector<std::uint32_t> offsets;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    offsets.push_back(
        static_cast<std::uint32_t>(std::stoul(spec.substr(pos, comma - pos))));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return offsets;
}

void register_builtin_processes(ProcessRegistry& r) {
  r.add("eprocess", "[--rule uniform|first|last|roundrobin|adversary|greedy|priority] [--start V]",
        "unvisited-edge process (the paper's E-process)",
        [](const Graph& g, const ParamMap& p, Rng& rng) -> std::unique_ptr<WalkProcess> {
          return std::make_unique<EProcessHandle>(
              g, start_vertex(g, p), make_rule(p.get("rule", "uniform"), g, rng));
        });
  r.add("multi-eprocess", "[--walkers K] [--rule R] [--start V]",
        "K cooperating E-process walkers sharing one visited-edge state",
        [](const Graph& g, const ParamMap& p, Rng& rng) -> std::unique_ptr<WalkProcess> {
          const std::uint32_t k =
              static_cast<std::uint32_t>(p.get_u64("walkers", 2));
          if (k == 0) throw std::invalid_argument("--walkers must be >= 1");
          // Walkers don't interact, so duplicate starts (k > n) are fine.
          return std::make_unique<MultiEProcessHandle>(
              g,
              spread_token_starts(g.num_vertices(), k, start_vertex(g, p),
                                  /*distinct=*/false),
              make_rule(p.get("rule", "uniform"), g, rng));
        });
  r.add("srw", "[--lazy] [--start V]", "simple random walk (baseline)",
        [](const Graph& g, const ParamMap& p, Rng&) -> std::unique_ptr<WalkProcess> {
          return std::make_unique<SimpleRandomWalk>(
              g, start_vertex(g, p), SrwOptions{.lazy = p.get_bool("lazy", false)});
        });
  r.add("lazy-srw", "[--start V]", "lazy simple random walk (hold w.p. 1/2)",
        [](const Graph& g, const ParamMap& p, Rng&) -> std::unique_ptr<WalkProcess> {
          return std::make_unique<SimpleRandomWalk>(g, start_vertex(g, p),
                                                    SrwOptions{.lazy = true});
        });
  r.add("rotor", "[--start V]", "rotor-router (Propp machine), deterministic",
        [](const Graph& g, const ParamMap& p, Rng&) -> std::unique_ptr<WalkProcess> {
          return std::make_unique<RotorRouter>(g, start_vertex(g, p));
        });
  r.add("vertexwalk", "[--start V]",
        "unvisited-vertex-preferring walk (the V-process)",
        [](const Graph& g, const ParamMap& p, Rng&) -> std::unique_ptr<WalkProcess> {
          return std::make_unique<UnvisitedVertexWalk>(g, start_vertex(g, p));
        });
  r.add("rwc", "[--d N] [--start V]",
        "random walk with choice, RWC(d): best of d sampled neighbours",
        [](const Graph& g, const ParamMap& p, Rng&) -> std::unique_ptr<WalkProcess> {
          return std::make_unique<RandomWalkWithChoice>(
              g, start_vertex(g, p), static_cast<std::uint32_t>(p.get_u64("d", 2)));
        });
  r.add("leastused", "[--start V]",
        "locally fair: exit along the least-traversed incident edge",
        [](const Graph& g, const ParamMap& p, Rng&) -> std::unique_ptr<WalkProcess> {
          return std::make_unique<LocallyFairWalk>(
              g, start_vertex(g, p), FairnessCriterion::kLeastUsedFirst);
        });
  r.add("oldest", "[--start V]",
        "locally fair: exit along the longest-waiting incident edge",
        [](const Graph& g, const ParamMap& p, Rng&) -> std::unique_ptr<WalkProcess> {
          return std::make_unique<LocallyFairWalk>(g, start_vertex(g, p),
                                                   FairnessCriterion::kOldestFirst);
        });
  r.add("weighted", "[--start V]",
        "reversible weighted random walk (unit weights)",
        [](const Graph& g, const ParamMap& p, Rng&) -> std::unique_ptr<WalkProcess> {
          return std::make_unique<WeightedRandomWalk>(
              g, start_vertex(g, p), std::vector<double>(g.num_edges(), 1.0));
        });
  r.add("coalescing-srw", "[--tokens K] [--start V]",
        "K independent SRW tokens merging on vertex collision",
        [](const Graph& g, const ParamMap& p, Rng&) -> std::unique_ptr<WalkProcess> {
          const std::uint32_t k =
              static_cast<std::uint32_t>(p.get_u64("tokens", 2));
          return std::make_unique<CoalescingRW>(
              g, spread_token_starts(g.num_vertices(), k, start_vertex(g, p)));
        });
  r.add("coalescing-ewalk", "[--tokens K] [--rule R] [--start V]",
        "K unvisited-edge-preferring tokens merging on collision",
        [](const Graph& g, const ParamMap& p, Rng& rng) -> std::unique_ptr<WalkProcess> {
          const std::uint32_t k =
              static_cast<std::uint32_t>(p.get_u64("tokens", 2));
          return std::make_unique<CoalescingEWalk>(
              g, spread_token_starts(g.num_vertices(), k, start_vertex(g, p)),
              make_rule(p.get("rule", "uniform"), g, rng));
        });
  // PCF-evolving processes: the incoming graph is the POTENTIAL-edge base;
  // the walker steps on an owned DynamicGraph that starts empty and grows
  // as the PCF schedule (drawn from a child split of the walk stream, so
  // trajectories stay thread-count independent) opens edges around it.
  r.add("pcf-srw", "[--alpha A] [--dt T] [--start V]",
        "SRW on a PCF-evolving graph (edges open at rate 1, components freeze at rate alpha)",
        [](const Graph& g, const ParamMap& p, Rng& rng) -> std::unique_ptr<WalkProcess> {
          Rng schedule_rng = rng.split();
          return std::make_unique<PcfProcess<DynamicSrw>>(
              g, start_vertex(g, p), pcf_alpha(p), pcf_time_per_step(g, p),
              schedule_rng);
        });
  r.add("pcf-eprocess", "[--alpha A] [--dt T] [--start V]",
        "unvisited-edge process on a PCF-evolving graph (uniform blue choice)",
        [](const Graph& g, const ParamMap& p, Rng& rng) -> std::unique_ptr<WalkProcess> {
          Rng schedule_rng = rng.split();
          return std::make_unique<PcfProcess<DynamicEProcess>>(
              g, start_vertex(g, p), pcf_alpha(p), pcf_time_per_step(g, p),
              schedule_rng);
        });
  r.add("pcf-coalescing-srw", "[--tokens K] [--alpha A] [--dt T] [--start V]",
        "K coalescing SRW tokens on a PCF-evolving graph",
        [](const Graph& g, const ParamMap& p, Rng& rng) -> std::unique_ptr<WalkProcess> {
          const std::uint32_t k =
              static_cast<std::uint32_t>(p.get_u64("tokens", 2));
          Rng schedule_rng = rng.split();
          return std::make_unique<PcfCoalescingSrw>(
              g, spread_token_starts(g.num_vertices(), k, start_vertex(g, p)),
              pcf_alpha(p), pcf_time_per_step(g, p), schedule_rng);
        });
  r.add("herman", "[--tokens K odd] [--start V]",
        "Herman's protocol: odd tokens on a cycle, pairwise annihilation",
        [](const Graph& g, const ParamMap& p, Rng&) -> std::unique_ptr<WalkProcess> {
          const std::uint32_t k =
              static_cast<std::uint32_t>(p.get_u64("tokens", 3));
          return std::make_unique<HermanRing>(
              g, spread_token_starts(g.num_vertices(), k, start_vertex(g, p)));
        });
}

void register_builtin_generators(GeneratorRegistry& r) {
  r.add("regular", "--n --r", "random r-regular (Steger-Wormald), connected",
        [](const ParamMap& p, Rng& rng) {
          return random_regular_connected(
              static_cast<Vertex>(p.get_u64("n", 10000)),
              static_cast<std::uint32_t>(p.get_u64("r", 4)), rng);
        });
  r.add("regular-pairing", "--n --r",
        "random r-regular (pairing model + edge-swap repair), connected",
        [](const ParamMap& p, Rng& rng) {
          return random_regular_pairing_connected(
              static_cast<Vertex>(p.get_u64("n", 10000)),
              static_cast<std::uint32_t>(p.get_u64("r", 4)), rng);
        });
  r.add("hamunion", "--n --k", "union of k random Hamiltonian cycles",
        [](const ParamMap& p, Rng& rng) {
          return hamiltonian_cycle_union(
              static_cast<Vertex>(p.get_u64("n", 10000)),
              static_cast<std::uint32_t>(p.get_u64("k", 2)), rng);
        });
  r.add("cycle", "--n", "cycle C_n",
        [](const ParamMap& p, Rng&) {
          return cycle_graph(static_cast<Vertex>(p.get_u64("n", 10000)));
        });
  r.add("complete", "--n", "complete graph K_n",
        [](const ParamMap& p, Rng&) {
          return complete_graph(static_cast<Vertex>(p.get_u64("n", 10000)));
        });
  r.add("hypercube", "--r", "hypercube H_r on 2^r vertices",
        [](const ParamMap& p, Rng&) {
          return hypercube(static_cast<std::uint32_t>(p.get_u64("r", 10)));
        });
  r.add("torus", "--w --h", "2-D torus (cyclic grid)",
        [](const ParamMap& p, Rng&) {
          return torus_2d(static_cast<Vertex>(p.get_u64("w", 100)),
                          static_cast<Vertex>(p.get_u64("h", 100)));
        });
  r.add("grid", "--w --h", "2-D open grid",
        [](const ParamMap& p, Rng&) {
          return grid_2d(static_cast<Vertex>(p.get_u64("w", 100)),
                         static_cast<Vertex>(p.get_u64("h", 100)));
        });
  r.add("geometric", "--n --radius", "random geometric graph in the unit square",
        [](const ParamMap& p, Rng& rng) {
          return random_geometric(static_cast<Vertex>(p.get_u64("n", 10000)),
                                  p.get_double("radius", 0.03), rng);
        });
  r.add("erdosrenyi", "--n --p", "Erdos-Renyi G(n, p)",
        [](const ParamMap& p, Rng& rng) {
          return erdos_renyi(static_cast<Vertex>(p.get_u64("n", 10000)),
                             p.get_double("p", 0.001), rng);
        });
  r.add("lps", "--p --q", "Lubotzky-Phillips-Sarnak Ramanujan graph X^{p,q}",
        [](const ParamMap& p, Rng&) {
          return lps_graph({static_cast<std::uint32_t>(p.get_u64("p", 5)),
                            static_cast<std::uint32_t>(p.get_u64("q", 13))});
        });
  r.add("margulis", "--k", "Margulis-type 8-regular expander on k x k",
        [](const ParamMap& p, Rng&) {
          return margulis_expander(static_cast<Vertex>(p.get_u64("k", 100)));
        });
  r.add("circulant", "--n --offsets a,b,c", "circulant graph C_n(offsets)",
        [](const ParamMap& p, Rng&) {
          return circulant(static_cast<Vertex>(p.get_u64("n", 10000)),
                           parse_offsets(p.get("offsets", "1,2")));
        });
  r.add("lollipop", "--clique --tail", "K_k clique with a path tail",
        [](const ParamMap& p, Rng&) {
          return lollipop(static_cast<Vertex>(p.get_u64("clique", 50)),
                          static_cast<Vertex>(p.get_u64("tail", 50)));
        });
  r.add("pcf", "--base FAMILY --alpha A --n N (+ base family params)",
        "terminal PCF cluster graph: play edge-opening with freezing on a base family to exhaustion, freeze the open subgraph",
        [](const ParamMap& p, Rng& rng) {
          const std::string base_name = p.get("base", "regular");
          if (base_name == "pcf")
            throw std::invalid_argument("--base pcf would recurse");
          const Graph base =
              GeneratorRegistry::instance().create(base_name, p, rng);
          PcfSchedule schedule(base, pcf_alpha(p), rng);
          DynamicGraph dyn(base.num_vertices());
          schedule.run_to_completion(dyn);
          return dyn.freeze();
        });
  r.add("petersen", "", "the Petersen graph",
        [](const ParamMap&, Rng&) { return petersen_graph(); });
  r.add("file", "--path", "edge list written by write_edge_list",
        [](const ParamMap& p, Rng&) {
          return read_edge_list_file(p.get("path", "graph.txt"));
        });
}

}  // namespace

std::size_t edit_distance(const std::string& a, const std::string& b) {
  // Single-row dynamic program; the strings here are short option names.
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
    }
  }
  return row[b.size()];
}

std::vector<std::string> nearest_names(const std::string& name,
                                       const std::vector<std::string>& candidates,
                                       std::size_t max_results) {
  // A suggestion further than ~a third of the query (min 2 edits) is noise:
  // "eproces" should suggest eprocess, "zzzzz" should suggest nothing.
  const std::size_t budget = std::max<std::size_t>(2, name.size() / 3);
  std::vector<std::pair<std::size_t, std::string>> scored;
  for (const std::string& c : candidates) {
    const std::size_t d = edit_distance(name, c);
    if (d <= budget) scored.emplace_back(d, c);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& x, const auto& y) { return x.first < y.first; });
  if (scored.size() > max_results) scored.resize(max_results);
  std::vector<std::string> out;
  out.reserve(scored.size());
  for (auto& [d, c] : scored) out.push_back(std::move(c));
  return out;
}

std::unique_ptr<UnvisitedEdgeRule> make_rule(const std::string& name,
                                             const Graph& g, Rng& rng) {
  if (name == "uniform") return std::make_unique<UniformRule>();
  if (name == "first") return std::make_unique<FirstSlotRule>();
  if (name == "last") return std::make_unique<LastSlotRule>();
  if (name == "roundrobin") return std::make_unique<RoundRobinRule>(g.num_vertices());
  if (name == "adversary") return std::make_unique<PreferVisitedEndpointRule>();
  if (name == "greedy") return std::make_unique<PreferUnvisitedEndpointRule>();
  if (name == "priority") return std::make_unique<FixedPriorityRule>(g.num_edges(), rng);
  std::ostringstream msg;
  msg << "unknown --rule: " << name;
  const std::vector<std::string> near = nearest_names(name, rule_names());
  if (!near.empty()) {
    msg << " (did you mean:";
    for (const std::string& n : near) msg << ' ' << n;
    msg << '?' << ')';
  }
  msg << " (known:";
  for (const auto& k : rule_names()) msg << ' ' << k;
  msg << ')';
  throw std::invalid_argument(msg.str());
}

const std::vector<std::string>& rule_names() {
  static const std::vector<std::string> names = {
      "uniform", "first", "last", "roundrobin", "adversary", "greedy", "priority"};
  return names;
}

ProcessRegistry& ProcessRegistry::instance() {
  static ProcessRegistry registry = [] {
    ProcessRegistry r;
    register_builtin_processes(r);
    return r;
  }();
  return registry;
}

GeneratorRegistry& GeneratorRegistry::instance() {
  static GeneratorRegistry registry = [] {
    GeneratorRegistry r;
    register_builtin_generators(r);
    return r;
  }();
  return registry;
}

}  // namespace ewalk
