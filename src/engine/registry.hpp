// String-keyed registries: construct walk processes and graph families by
// name from parsed options.
//
// The CLI, the experiment harness, and future sweep drivers all dispatch
// through these instead of hand-written if-chains; --help output is
// generated from the registered entries, so adding a process or generator
// in one place makes it available (and documented) everywhere.
//
// Built-in entries are registered on first access; extensions can add their
// own via add(). Lookup throws std::invalid_argument with the list of known
// names, so a CLI typo produces a useful message.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/params.hpp"
#include "engine/process.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "walks/eprocess.hpp"

namespace ewalk {

/// Builds a choice rule by name: uniform | first | last | roundrobin |
/// adversary | greedy | priority. Throws std::invalid_argument on unknown
/// names. (The priority rule draws its permutation from `rng`.)
std::unique_ptr<UnvisitedEdgeRule> make_rule(const std::string& name,
                                             const Graph& g, Rng& rng);

/// Names accepted by make_rule, for help output.
const std::vector<std::string>& rule_names();

/// Levenshtein edit distance between `a` and `b` — the metric behind the
/// "did you mean" suggestions in registry lookup errors.
std::size_t edit_distance(const std::string& a, const std::string& b);

/// The candidates closest to `name` by edit distance, nearest first, capped
/// at `max_results` and at a distance budget scaled to the query length (so
/// a wild typo suggests nothing rather than everything). Used by the
/// registries and make_rule to make typo'd CLI flags and server requests
/// self-diagnosing.
std::vector<std::string> nearest_names(const std::string& name,
                                       const std::vector<std::string>& candidates,
                                       std::size_t max_results = 3);

namespace detail {

/// Shared registry machinery: named entries with help strings, lookup that
/// throws listing the known names (plus nearest-match suggestions),
/// registration-order enumeration. The two concrete registries differ only
/// in factory signature and error label.
template <typename FactoryT>
class NamedRegistry {
 public:
  struct Entry {
    std::string name;
    std::string params_help;  ///< e.g. "--rule R --start V"
    std::string summary;      ///< one-line description
    FactoryT factory;
  };

  void add(std::string name, std::string params_help, std::string summary,
           FactoryT factory) {
    for (const Entry& e : entries_)
      if (e.name == name)
        throw std::invalid_argument(std::string(kind_) +
                                    " already registered: " + name);
    entries_.push_back(Entry{std::move(name), std::move(params_help),
                             std::move(summary), std::move(factory)});
  }

  bool contains(const std::string& name) const {
    for (const Entry& e : entries_)
      if (e.name == name) return true;
    return false;
  }

  /// The entry registered under `name`; throws std::invalid_argument with
  /// nearest-match suggestions when absent. Lets callers validate a name
  /// (and get the self-diagnosing error) without constructing anything.
  const Entry& at(const std::string& name) const { return find(name); }

  /// Registered names in registration order.
  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.name);
    return out;
  }

  const std::vector<Entry>& entries() const { return entries_; }

 protected:
  explicit NamedRegistry(const char* kind) : kind_(kind) {}

  const Entry& find(const std::string& name) const {
    for (const Entry& e : entries_)
      if (e.name == name) return e;
    std::ostringstream msg;
    msg << "unknown " << kind_ << ": " << name;
    const std::vector<std::string> near = nearest_names(name, names());
    if (!near.empty()) {
      msg << " (did you mean:";
      for (const std::string& n : near) msg << ' ' << n;
      msg << '?' << ')';
    }
    msg << " (known:";
    for (const Entry& e : entries_) msg << ' ' << e.name;
    msg << ')';
    throw std::invalid_argument(msg.str());
  }

 private:
  const char* kind_;
  std::vector<Entry> entries_;
};

}  // namespace detail

/// Constructs a process on `g`. `params` carries process-specific options
/// (start, rule, d, walkers, ...); `rng` is available for construction-time
/// randomness (e.g. the priority rule's permutation) and is the same stream
/// the walk will subsequently be driven with. (Distinct from the experiment
/// harness's ProcessFactory, which has already bound its parameters.)
using RegistryProcessFactory = std::function<std::unique_ptr<WalkProcess>(
    const Graph& g, const ParamMap& params, Rng& rng)>;

/// Walk processes by name ("eprocess", "srw", ...): the CLI's --process /
/// --walk dispatch and the construction path every bench and experiment
/// uses.
class ProcessRegistry : public detail::NamedRegistry<RegistryProcessFactory> {
 public:
  /// Factory signature stored per entry.
  using Factory = RegistryProcessFactory;

  /// The global registry, populated with the built-in processes.
  static ProcessRegistry& instance();

  /// Constructs process `name` on `g` with `params`; throws
  /// std::invalid_argument (listing known names) for unknown `name`.
  std::unique_ptr<WalkProcess> create(const std::string& name, const Graph& g,
                                      const ParamMap& params, Rng& rng) const {
    return find(name).factory(g, params, rng);
  }

 private:
  ProcessRegistry() : NamedRegistry("--process") {}
};

/// Builds a graph family from parsed options; `rng` drives randomised
/// constructions (random regular, G(n,p), geometric, ...).
using GraphGeneratorFactory =
    std::function<Graph(const ParamMap& params, Rng& rng)>;

/// Graph families by name ("regular", "cycle", "lps", ...): the CLI's
/// --graph dispatch.
class GeneratorRegistry : public detail::NamedRegistry<GraphGeneratorFactory> {
 public:
  /// Factory signature stored per entry.
  using Factory = GraphGeneratorFactory;

  /// The global registry, populated with the built-in graph families.
  static GeneratorRegistry& instance();

  /// Constructs graph family `name` with `params`; throws
  /// std::invalid_argument (listing known names) for unknown `name`.
  Graph create(const std::string& name, const ParamMap& params, Rng& rng) const {
    return find(name).factory(params, rng);
  }

 private:
  GeneratorRegistry() : NamedRegistry("--graph") {}
};

}  // namespace ewalk
