// Interacting-walker extension of the WalkProcess interface.
//
// The interacting processes in src/interact/ (coalescing random walks,
// coalescing E-walks, Herman's protocol) carry several tokens whose count
// *shrinks* over time: tokens that collide merge (coalescence) or annihilate
// in pairs (Herman). The quantity of interest is no longer a cover time but
// the coalescence time — the step at which one token remains — and the
// first-meeting time.
//
// TokenProcess adds those observables on top of WalkProcess, so interacting
// processes remain drivable by everything that takes a WalkProcess (cover
// predicates still work: tokens keep visiting vertices) while the
// token-aware predicates below terminate on population events. The driver
// overload run_until_process() evaluates predicates over the *process*
// rather than its CoverState, which is what population predicates need.
#pragma once

#include <cstdint>

#include "engine/process.hpp"

namespace ewalk {

/// WalkProcess extension for interacting-token processes (coalescing walks,
/// Herman's protocol): adds the shrinking-population observables the
/// token predicates below terminate on.
class TokenProcess : public WalkProcess {
 public:
  /// Tokens still alive (monotonically non-increasing; >= 1 forever after
  /// the population first reaches 1).
  virtual std::uint32_t tokens_remaining() const = 0;

  /// Tokens the process started with.
  virtual std::uint32_t initial_tokens() const = 0;

  /// Step of the first collision between two tokens; kNotCovered until one
  /// happens.
  virtual std::uint64_t first_meeting_step() const = 0;

  /// Step at which the population reached 1; kNotCovered until then.
  virtual std::uint64_t coalescence_step() const = 0;
};

// ---- Token-population termination predicates ------------------------------
//
// These are evaluated over the process (not the CoverState), so drive them
// with run_until_process (engine/driver.hpp). They are templates over the
// process reference the same way the cover predicates are callables over
// CoverState: static dispatch for concrete classes, virtual through
// TokenProcess&.

/// One token left: the coalescence (or Herman stabilisation) event.
struct CoalescedToOne {
  /// True once p.tokens_remaining() <= 1.
  template <typename Process>
  bool operator()(const Process& p) const {
    return p.tokens_remaining() <= 1;
  }
};

/// Population has shrunk to at most k tokens.
struct TokensAtMost {
  std::uint32_t k;  ///< population threshold (inclusive)
  /// True once p.tokens_remaining() <= k.
  template <typename Process>
  bool operator()(const Process& p) const {
    return p.tokens_remaining() <= k;
  }
};

/// Some pair of tokens has met at least once (first-meeting time).
struct TokensHaveMet {
  /// True once the process records a first meeting.
  template <typename Process>
  bool operator()(const Process& p) const {
    return p.first_meeting_step() != kNotCovered;
  }
};

}  // namespace ewalk
