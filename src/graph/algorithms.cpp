#include "graph/algorithms.hpp"

#include <algorithm>
#include <atomic>

#include "graph/union_find.hpp"

namespace ewalk {

namespace {

std::atomic<std::uint64_t> g_connectivity_bfs_calls{0};

}  // namespace

std::uint64_t connectivity_bfs_calls() noexcept {
  return g_connectivity_bfs_calls.load(std::memory_order_relaxed);
}

std::uint32_t bfs_distances_into(const Graph& g, Vertex source,
                                 std::vector<std::uint32_t>& dist,
                                 std::vector<Vertex>& frontier) {
  dist.assign(g.num_vertices(), kUnreachable);
  frontier.clear();
  dist[source] = 0;
  frontier.push_back(source);
  // The frontier vector doubles as the queue: head chases the tail, visited
  // vertices stay in place, so no deque node churn and the storage persists
  // across calls.
  std::size_t head = 0;
  while (head < frontier.size()) {
    const Vertex u = frontier[head++];
    for (const Slot& s : g.slots(u)) {
      if (dist[s.neighbor] == kUnreachable) {
        dist[s.neighbor] = dist[u] + 1;
        frontier.push_back(s.neighbor);
      }
    }
  }
  return static_cast<std::uint32_t>(frontier.size());
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source) {
  std::vector<std::uint32_t> dist;
  std::vector<Vertex> frontier;
  bfs_distances_into(g, source, dist, frontier);
  return dist;
}

bool is_connected(const Graph& g) {
  g_connectivity_bfs_calls.fetch_add(1, std::memory_order_relaxed);
  if (g.num_vertices() == 0) return true;
  std::vector<std::uint32_t> dist;
  std::vector<Vertex> frontier;
  return bfs_distances_into(g, 0, dist, frontier) == g.num_vertices();
}

bool edge_list_connected(Vertex n, std::span<const Endpoints> edges) {
  if (n <= 1) return true;
  UnionFind uf(n);
  for (const auto& [u, v] : edges) {
    uf.unite(u, v);
    if (uf.components() == 1) return true;  // nothing left to merge
  }
  return uf.components() == 1;
}

Components connected_components(const Graph& g) {
  Components c;
  c.id.assign(g.num_vertices(), kUnreachable);
  std::vector<Vertex> frontier;
  for (Vertex start = 0; start < g.num_vertices(); ++start) {
    if (c.id[start] != kUnreachable) continue;
    c.id[start] = c.count;
    frontier.clear();
    frontier.push_back(start);
    std::size_t head = 0;
    while (head < frontier.size()) {
      const Vertex u = frontier[head++];
      for (const Slot& s : g.slots(u)) {
        if (c.id[s.neighbor] == kUnreachable) {
          c.id[s.neighbor] = c.count;
          frontier.push_back(s.neighbor);
        }
      }
    }
    ++c.count;
  }
  return c;
}

std::uint32_t eccentricity(const Graph& g, Vertex source) {
  const auto dist = bfs_distances(g, source);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    if (d == kUnreachable) return kUnreachable;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter(const Graph& g) {
  std::uint32_t diam = 0;
  std::vector<std::uint32_t> dist;
  std::vector<Vertex> frontier;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    // Shared scratch across the n sources: one allocation for the whole
    // all-pairs sweep instead of one per BFS.
    if (bfs_distances_into(g, v, dist, frontier) != g.num_vertices())
      return kUnreachable;
    for (const Vertex u : frontier) diam = std::max(diam, dist[u]);
  }
  return diam;
}

std::vector<std::uint32_t> degree_sequence(const Graph& g) {
  std::vector<std::uint32_t> seq(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) seq[v] = g.degree(v);
  std::sort(seq.begin(), seq.end(), std::greater<>());
  return seq;
}

}  // namespace ewalk
