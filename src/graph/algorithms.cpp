#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

namespace ewalk {

std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source) {
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  std::queue<Vertex> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const Vertex u = q.front();
    q.pop();
    for (const Slot& s : g.slots(u)) {
      if (dist[s.neighbor] == kUnreachable) {
        dist[s.neighbor] = dist[u] + 1;
        q.push(s.neighbor);
      }
    }
  }
  return dist;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

Components connected_components(const Graph& g) {
  Components c;
  c.id.assign(g.num_vertices(), kUnreachable);
  std::queue<Vertex> q;
  for (Vertex start = 0; start < g.num_vertices(); ++start) {
    if (c.id[start] != kUnreachable) continue;
    c.id[start] = c.count;
    q.push(start);
    while (!q.empty()) {
      const Vertex u = q.front();
      q.pop();
      for (const Slot& s : g.slots(u)) {
        if (c.id[s.neighbor] == kUnreachable) {
          c.id[s.neighbor] = c.count;
          q.push(s.neighbor);
        }
      }
    }
    ++c.count;
  }
  return c;
}

std::uint32_t eccentricity(const Graph& g, Vertex source) {
  const auto dist = bfs_distances(g, source);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    if (d == kUnreachable) return kUnreachable;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter(const Graph& g) {
  std::uint32_t diam = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::uint32_t ecc = eccentricity(g, v);
    if (ecc == kUnreachable) return kUnreachable;
    diam = std::max(diam, ecc);
  }
  return diam;
}

std::vector<std::uint32_t> degree_sequence(const Graph& g) {
  std::vector<std::uint32_t> seq(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) seq[v] = g.degree(v);
  std::sort(seq.begin(), seq.end(), std::greater<>());
  return seq;
}

}  // namespace ewalk
