// Basic graph algorithms shared by generators, analysis, and tests:
// BFS distances, connectivity, components, diameter / eccentricity.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace ewalk {

/// Sentinel distance for unreachable vertices.
inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

/// Single-source BFS; result[v] == kUnreachable when v is not reachable.
std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source);

bool is_connected(const Graph& g);

/// Component id per vertex (0-based, by discovery order) and component count.
struct Components {
  std::vector<std::uint32_t> id;  ///< per-vertex component index
  std::uint32_t count = 0;
};
Components connected_components(const Graph& g);

/// Eccentricity of `source` (max BFS distance); kUnreachable if disconnected.
std::uint32_t eccentricity(const Graph& g, Vertex source);

/// Exact diameter via all-sources BFS — O(n·m); intended for test-scale
/// graphs. Returns kUnreachable if disconnected.
std::uint32_t diameter(const Graph& g);

/// Degree sequence sorted descending.
std::vector<std::uint32_t> degree_sequence(const Graph& g);

}  // namespace ewalk
