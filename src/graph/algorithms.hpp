// Basic graph algorithms shared by generators, analysis, and tests:
// BFS distances, connectivity, components, diameter / eccentricity.
//
// Connectivity instrumentation: is_connected() bumps a process-wide counter
// (connectivity_bfs_calls) that tests and the generation microbench use to
// pin the generation path BFS-free — the union-find retry decision in
// src/graph/generators.cpp must keep full-BFS checks off the hot path.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace ewalk {

/// Sentinel distance for unreachable vertices.
inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

/// Single-source BFS; result[v] == kUnreachable when v is not reachable.
std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source);

/// BFS into caller-owned scratch: `dist` is resized/reset and filled exactly
/// as bfs_distances would, `frontier` is the BFS queue storage. Returns the
/// number of reached vertices (including source). Callers that BFS in a loop
/// (diameter, profile sweeps) reuse both buffers and skip n-sized
/// allocations per source.
std::uint32_t bfs_distances_into(const Graph& g, Vertex source,
                                 std::vector<std::uint32_t>& dist,
                                 std::vector<Vertex>& frontier);

/// True iff every vertex is reachable from vertex 0. Counts reached vertices
/// during the BFS instead of scanning the distance vector afterwards, and
/// increments connectivity_bfs_calls() (generation-path regression counter).
bool is_connected(const Graph& g);

/// Total is_connected() calls made by this process (monotone, thread-safe).
/// The generation counter-test and `--gen-only --assert-no-gen-bfs` bench
/// mode snapshot it around generator calls to prove the union-find path
/// never fell back to BFS.
std::uint64_t connectivity_bfs_calls() noexcept;

/// Component id per vertex (0-based, by discovery order) and component count.
struct Components {
  std::vector<std::uint32_t> id;  ///< per-vertex component index
  std::uint32_t count = 0;
};
Components connected_components(const Graph& g);

/// Eccentricity of `source` (max BFS distance); kUnreachable if disconnected.
std::uint32_t eccentricity(const Graph& g, Vertex source);

/// Exact diameter via all-sources BFS — O(n·m); intended for test-scale
/// graphs. Returns kUnreachable if disconnected.
std::uint32_t diameter(const Graph& g);

/// Degree sequence sorted descending.
std::vector<std::uint32_t> degree_sequence(const Graph& g);

}  // namespace ewalk
