#include "graph/dynamic_graph.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

namespace ewalk {

DynamicGraph::DynamicGraph(Vertex n) : n_(n), adjacency_(n) {}

DynamicGraph DynamicGraph::from_graph(const Graph& g) {
  DynamicGraph dyn(g.num_vertices());
  dyn.adjacency_.assign(g.num_vertices(), {});
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Endpoints ep = g.endpoints(e);
    const EdgeId id = dyn.insert_edge(ep.u, ep.v);
    (void)id;  // ids come out 0..m-1 because insertion is in edge-id order
  }
  // The seeded edges are the epoch-0 baseline, not mutations: readers
  // initialise from the adjacency, then sync from an empty journal.
  dyn.journal_.clear();
  return dyn;
}

EdgeId DynamicGraph::insert_edge(Vertex u, Vertex v) {
  if (u >= n_ || v >= n_)
    throw std::invalid_argument("DynamicGraph::insert_edge: endpoint out of range");
  if (edges_.size() >= std::numeric_limits<EdgeId>::max())
    throw std::invalid_argument("DynamicGraph::insert_edge: edge id space exhausted");
  const EdgeId e = static_cast<EdgeId>(edges_.size());
  EdgeRecord rec;
  rec.endpoints = Endpoints{u, v};
  rec.pos_u = static_cast<std::uint32_t>(adjacency_[u].size());
  adjacency_[u].push_back(Slot{v, e});
  // A self-loop occupies two adjacent slots of its vertex, matching the
  // CSR's convention so degree() agrees between backends.
  rec.pos_v = static_cast<std::uint32_t>(adjacency_[v].size());
  adjacency_[v].push_back(Slot{u, e});
  rec.alive = true;
  edges_.push_back(rec);
  ++alive_edges_;
  journal_.push_back(GraphMutation{MutationKind::kInsert, e, rec.endpoints});
  return e;
}

void DynamicGraph::remove_slot(Vertex v, std::uint32_t pos) {
  auto& list = adjacency_[v];
  const std::uint32_t last = static_cast<std::uint32_t>(list.size() - 1);
  if (pos != last) {
    const Slot moved = list[last];
    list[pos] = moved;
    EdgeRecord& mrec = edges_[moved.edge];
    // A moved self-loop slot could match either position; patch the one
    // that pointed at `last`. Checking pos_u first keeps the pair
    // (pos_u, pos_v) consistent when both slots of a self-loop move.
    if (mrec.endpoints.u == v && mrec.pos_u == last) {
      mrec.pos_u = pos;
    } else {
      mrec.pos_v = pos;
    }
  }
  list.pop_back();
}

void DynamicGraph::erase_edge(EdgeId e) {
  if (e >= edges_.size() || !edges_[e].alive)
    throw std::invalid_argument("DynamicGraph::erase_edge: edge not alive");
  EdgeRecord& rec = edges_[e];
  const Endpoints ep = rec.endpoints;
  if (ep.u == ep.v) {
    // Self-loop: both slots live in the same list. Remove the larger
    // position first so the smaller one is still valid afterwards.
    const std::uint32_t hi = rec.pos_u > rec.pos_v ? rec.pos_u : rec.pos_v;
    const std::uint32_t lo = rec.pos_u > rec.pos_v ? rec.pos_v : rec.pos_u;
    remove_slot(ep.u, hi);
    remove_slot(ep.u, lo);
  } else {
    remove_slot(ep.u, rec.pos_u);
    remove_slot(ep.v, rec.pos_v);
  }
  rec.alive = false;
  --alive_edges_;
  journal_.push_back(GraphMutation{MutationKind::kErase, e, ep});
}

std::vector<Endpoints> DynamicGraph::surviving_edges() const {
  std::vector<Endpoints> out;
  out.reserve(alive_edges_);
  for (EdgeId e = 0; e < edges_.size(); ++e)
    if (edges_[e].alive) out.push_back(edges_[e].endpoints);
  return out;
}

Graph DynamicGraph::freeze() const {
  return Graph::from_edges(n_, surviving_edges());
}

}  // namespace ewalk
