// Dynamic adjacency: walks on edge sets that change mid-run.
//
// Every process in the engine assumes a frozen CSR (`Graph`), but production
// graphs — social overlays, p2p meshes — mutate under the walker. This layer
// provides the engine-level substrate for that workload class:
//
//   * DynamicGraph      — per-vertex edge-list adjacency with O(1) amortised
//                         insert and O(1) delete (swap-with-last, position
//                         side table), stable monotone edge ids (never
//                         reused), a monotone epoch counter that advances by
//                         exactly one per mutation, and a mutation journal
//                         walks consume incrementally to keep their own
//                         per-edge state in sync without O(n + m) rescans.
//   * DynamicGraphView  — the read surface the walk layer steps through. It
//                         has the same degree/slot shape as `Graph`, so the
//                         templated step cores (walks/step_core.hpp) drive
//                         either backend from one loop instead of a fork.
//   * freeze()          — snapshots the surviving edge list into the
//                         existing immutable CSR `Graph`, so everything
//                         built for the static path (spectral analysis,
//                         exact cover, golden-hash tests) applies to any
//                         instant of an evolving run. The static path is
//                         untouched: a frozen snapshot IS a `Graph`.
//
// Epoch contract: epoch() == number of mutations ever applied == length of
// the journal. A reader that remembers the epoch it last synced at can
// catch up by consuming exactly journal()[last..epoch()); epoch() never
// decreases and freeze() does not advance it.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ewalk {

/// Kind of one recorded mutation of a DynamicGraph.
enum class MutationKind : std::uint8_t {
  kInsert,  ///< edge was inserted (its id is freshly allocated)
  kErase    ///< edge was erased (its id is retired, never reused)
};

/// One journal entry: what happened, to which edge id, between which
/// endpoints. The journal is the incremental-sync surface walks use to keep
/// per-edge state current in O(#mutations) instead of O(n + m) rescans.
struct GraphMutation {
  MutationKind kind;   ///< insert or erase
  EdgeId edge;         ///< the edge id the mutation applies to
  Endpoints endpoints; ///< the edge's endpoints (u == v for a self-loop)
};

/// Mutable multigraph with per-vertex edge lists: O(1) amortised insert,
/// O(1) erase, monotone epoch counter, and an O(n + m) freeze() snapshot to
/// the immutable CSR `Graph`. Multigraph semantics match `Graph`: parallel
/// edges are distinct ids, a self-loop occupies two adjacency slots of its
/// vertex and contributes 2 to the degree. Edge ids are allocated
/// monotonically and never reused, so per-edge side arrays indexed by id
/// stay valid across arbitrary churn (grow them to edge_capacity()).
class DynamicGraph {
 public:
  /// An empty dynamic graph on n vertices (the vertex set is fixed).
  explicit DynamicGraph(Vertex n);

  /// Seeds a dynamic graph with every edge of `g`, inserted in edge-id
  /// order, as the epoch-0 baseline: the journal starts empty and epoch()
  /// starts at 0, so readers initialise from the adjacency directly.
  static DynamicGraph from_graph(const Graph& g);

  /// Number of vertices (fixed at construction).
  Vertex num_vertices() const noexcept { return n_; }
  /// Number of currently alive edges.
  EdgeId num_edges() const noexcept { return alive_edges_; }
  /// One past the largest edge id ever allocated. Size per-edge side arrays
  /// to this; ids of erased edges are retired, never reused.
  EdgeId edge_capacity() const noexcept {
    return static_cast<EdgeId>(edges_.size());
  }

  /// Monotone mutation counter: advances by exactly one per insert/erase
  /// (== journal().size()); freeze() and reads never advance it.
  std::uint64_t epoch() const noexcept { return journal_.size(); }

  /// Every mutation since construction, in application order; entry i was
  /// applied when epoch() went from i to i + 1. Readers sync incrementally
  /// by consuming the suffix past their last-seen epoch.
  const std::vector<GraphMutation>& journal() const noexcept { return journal_; }

  /// Inserts undirected edge {u, v} (u == v allowed) and returns its fresh
  /// id. O(1) amortised; advances the epoch by one.
  EdgeId insert_edge(Vertex u, Vertex v);

  /// Erases alive edge e from both endpoints' lists with swap-with-last
  /// (O(1); slot order of the affected vertices is perturbed, which the
  /// view's degree/slot contract permits). Advances the epoch by one.
  void erase_edge(EdgeId e);

  /// True while e has been inserted and not yet erased.
  bool edge_alive(EdgeId e) const noexcept { return edges_[e].alive; }

  /// Endpoints of e (valid for retired ids too — the journal refers back).
  Endpoints endpoints(EdgeId e) const noexcept { return edges_[e].endpoints; }

  /// Degree of v right now; self-loops count twice.
  std::uint32_t degree(Vertex v) const noexcept {
    return static_cast<std::uint32_t>(adjacency_[v].size());
  }

  /// The k-th incident slot of v, 0 <= k < degree(v). Slot order is
  /// unspecified and perturbed by erasures — readers must not assume the
  /// CSR's construction order.
  const Slot& slot(Vertex v, std::uint32_t k) const noexcept {
    return adjacency_[v][k];
  }

  /// The surviving edges in ascending id order — exactly the edge list
  /// freeze() snapshots.
  std::vector<Endpoints> surviving_edges() const;

  /// Snapshots the surviving edge list into an immutable CSR `Graph`
  /// (ids compacted to 0..num_edges()-1 in ascending surviving-id order —
  /// the same Graph that Graph::from_edges(n, surviving_edges()) builds).
  /// O(n + m); does not mutate and does not advance the epoch.
  Graph freeze() const;

 private:
  // Where edge e currently sits in its endpoints' adjacency lists, so
  // erase_edge can swap it out in O(1). For a self-loop both positions
  // index adjacency_[u]: pos_u is the slot pushed first.
  struct EdgeRecord {
    Endpoints endpoints;
    std::uint32_t pos_u = 0;
    std::uint32_t pos_v = 0;
    bool alive = false;
  };

  // Removes adjacency_[v][pos] by swapping the last slot in, patching the
  // moved edge's position record.
  void remove_slot(Vertex v, std::uint32_t pos);

  Vertex n_ = 0;
  std::vector<std::vector<Slot>> adjacency_;  // size n_
  std::vector<EdgeRecord> edges_;             // size edge_capacity()
  std::vector<GraphMutation> journal_;
  EdgeId alive_edges_ = 0;
};

/// The read surface the walk layer steps through: a non-owning view of a
/// DynamicGraph with the same degree/slot shape as `Graph`, plus the epoch
/// and journal accessors incremental readers sync from. Copyable and cheap;
/// the viewed graph must outlive every view.
class DynamicGraphView {
 public:
  /// Views `g`; no ownership is taken.
  explicit DynamicGraphView(const DynamicGraph& g) noexcept : g_(&g) {}

  /// Number of vertices of the viewed graph.
  Vertex num_vertices() const noexcept { return g_->num_vertices(); }
  /// Number of currently alive edges.
  EdgeId num_edges() const noexcept { return g_->num_edges(); }
  /// One past the largest edge id ever allocated (see DynamicGraph).
  EdgeId edge_capacity() const noexcept { return g_->edge_capacity(); }
  /// Degree of v right now; self-loops count twice.
  std::uint32_t degree(Vertex v) const noexcept { return g_->degree(v); }
  /// The k-th incident slot of v, 0 <= k < degree(v).
  const Slot& slot(Vertex v, std::uint32_t k) const noexcept {
    return g_->slot(v, k);
  }
  /// Endpoints of edge e (valid for retired ids too).
  Endpoints endpoints(EdgeId e) const noexcept { return g_->endpoints(e); }
  /// The viewed graph's monotone mutation counter.
  std::uint64_t epoch() const noexcept { return g_->epoch(); }
  /// The viewed graph's mutation journal (see DynamicGraph::journal).
  const std::vector<GraphMutation>& journal() const noexcept {
    return g_->journal();
  }
  /// The viewed graph itself, for freeze()-style snapshot callers.
  const DynamicGraph& graph() const noexcept { return *g_; }

 private:
  const DynamicGraph* g_;
};

}  // namespace ewalk
