#include "graph/generators.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "graph/algorithms.hpp"
#include "graph/union_find.hpp"

namespace ewalk {

namespace {

std::uint64_t edge_key(Vertex u, Vertex v) noexcept {
  const std::uint64_t a = std::min(u, v);
  const std::uint64_t b = std::max(u, v);
  return (a << 32) | b;
}

// Generation-path counters (relaxed atomics: sweeps generate from pool
// threads concurrently; exact interleaving is irrelevant, totals are not).
std::atomic<std::uint64_t> g_pairing_attempts{0};
std::atomic<std::uint64_t> g_pairing_connectivity_retries{0};
std::atomic<std::uint64_t> g_sw_attempts{0};
std::atomic<std::uint64_t> g_sw_connectivity_retries{0};

}  // namespace

GenerationCounters generation_counters() noexcept {
  GenerationCounters c;
  c.pairing_attempts = g_pairing_attempts.load(std::memory_order_relaxed);
  c.pairing_connectivity_retries =
      g_pairing_connectivity_retries.load(std::memory_order_relaxed);
  c.sw_attempts = g_sw_attempts.load(std::memory_order_relaxed);
  c.sw_connectivity_retries =
      g_sw_connectivity_retries.load(std::memory_order_relaxed);
  return c;
}

void reset_generation_counters() noexcept {
  g_pairing_attempts.store(0, std::memory_order_relaxed);
  g_pairing_connectivity_retries.store(0, std::memory_order_relaxed);
  g_sw_attempts.store(0, std::memory_order_relaxed);
  g_sw_connectivity_retries.store(0, std::memory_order_relaxed);
}

Graph cycle_graph(Vertex n) {
  if (n < 3) throw std::invalid_argument("cycle_graph: n must be >= 3");
  GraphBuilder b(n);
  for (Vertex i = 0; i < n; ++i) b.add_edge(i, (i + 1) % n);
  return std::move(b).build();
}

Graph path_graph(Vertex n) {
  if (n == 0) throw std::invalid_argument("path_graph: n must be >= 1");
  GraphBuilder b(n);
  for (Vertex i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return std::move(b).build();
}

Graph complete_graph(Vertex n) {
  GraphBuilder b(n);
  for (Vertex i = 0; i < n; ++i)
    for (Vertex j = i + 1; j < n; ++j) b.add_edge(i, j);
  return std::move(b).build();
}

Graph complete_bipartite(Vertex a, Vertex b_count) {
  GraphBuilder b(a + b_count);
  for (Vertex i = 0; i < a; ++i)
    for (Vertex j = 0; j < b_count; ++j) b.add_edge(i, a + j);
  return std::move(b).build();
}

Graph petersen_graph() {
  GraphBuilder b(10);
  // Outer 5-cycle, inner 5-cycle with step 2, and spokes.
  for (Vertex i = 0; i < 5; ++i) {
    b.add_edge(i, (i + 1) % 5);
    b.add_edge(5 + i, 5 + (i + 2) % 5);
    b.add_edge(i, 5 + i);
  }
  return std::move(b).build();
}

Graph hypercube(std::uint32_t r) {
  if (r >= 31) throw std::invalid_argument("hypercube: r too large");
  const Vertex n = Vertex{1} << r;
  GraphBuilder b(n);
  for (Vertex v = 0; v < n; ++v)
    for (std::uint32_t bit = 0; bit < r; ++bit) {
      const Vertex w = v ^ (Vertex{1} << bit);
      if (v < w) b.add_edge(v, w);
    }
  return std::move(b).build();
}

Graph torus_2d(Vertex w, Vertex h) {
  if (w < 3 || h < 3) throw std::invalid_argument("torus_2d: dimensions must be >= 3");
  GraphBuilder b(w * h);
  const auto id = [w](Vertex x, Vertex y) { return y * w + x; };
  for (Vertex y = 0; y < h; ++y)
    for (Vertex x = 0; x < w; ++x) {
      b.add_edge(id(x, y), id((x + 1) % w, y));
      b.add_edge(id(x, y), id(x, (y + 1) % h));
    }
  return std::move(b).build();
}

Graph grid_2d(Vertex w, Vertex h) {
  if (w == 0 || h == 0) throw std::invalid_argument("grid_2d: dimensions must be >= 1");
  GraphBuilder b(w * h);
  const auto id = [w](Vertex x, Vertex y) { return y * w + x; };
  for (Vertex y = 0; y < h; ++y)
    for (Vertex x = 0; x < w; ++x) {
      if (x + 1 < w) b.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < h) b.add_edge(id(x, y), id(x, y + 1));
    }
  return std::move(b).build();
}

Graph star_graph(Vertex n) {
  if (n < 2) throw std::invalid_argument("star_graph: n must be >= 2");
  GraphBuilder b(n);
  for (Vertex i = 1; i < n; ++i) b.add_edge(0, i);
  return std::move(b).build();
}

Graph lollipop(Vertex clique_size, Vertex path_len) {
  if (clique_size < 2) throw std::invalid_argument("lollipop: clique_size must be >= 2");
  GraphBuilder b(clique_size + path_len);
  for (Vertex i = 0; i < clique_size; ++i)
    for (Vertex j = i + 1; j < clique_size; ++j) b.add_edge(i, j);
  Vertex prev = clique_size - 1;
  for (Vertex k = 0; k < path_len; ++k) {
    b.add_edge(prev, clique_size + k);
    prev = clique_size + k;
  }
  return std::move(b).build();
}

Graph barbell(Vertex clique_size, Vertex path_len) {
  if (clique_size < 2) throw std::invalid_argument("barbell: clique_size must be >= 2");
  const Vertex n = 2 * clique_size + path_len;
  GraphBuilder b(n);
  for (Vertex i = 0; i < clique_size; ++i)
    for (Vertex j = i + 1; j < clique_size; ++j) {
      b.add_edge(i, j);
      b.add_edge(clique_size + path_len + i, clique_size + path_len + j);
    }
  Vertex prev = clique_size - 1;
  for (Vertex k = 0; k < path_len; ++k) {
    b.add_edge(prev, clique_size + k);
    prev = clique_size + k;
  }
  b.add_edge(prev, clique_size + path_len);  // attach to second clique's vertex 0
  return std::move(b).build();
}

Graph circulant(Vertex n, const std::vector<std::uint32_t>& offsets) {
  GraphBuilder b(n);
  for (const std::uint32_t o : offsets) {
    if (o == 0 || o >= n) throw std::invalid_argument("circulant: offset out of range");
    if (2 * o == n) throw std::invalid_argument("circulant: offset n/2 gives odd degree");
    for (Vertex i = 0; i < n; ++i) b.add_edge(i, (i + o) % n);
  }
  return std::move(b).build();
}

Graph binary_tree(std::uint32_t levels) {
  if (levels == 0 || levels >= 31) throw std::invalid_argument("binary_tree: bad levels");
  const Vertex n = (Vertex{1} << levels) - 1;
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) b.add_edge(v, (v - 1) / 2);
  return std::move(b).build();
}

Graph margulis_expander(Vertex k) {
  if (k < 2) throw std::invalid_argument("margulis_expander: k must be >= 2");
  const Vertex n = k * k;
  GraphBuilder b(n);
  const auto id = [k](Vertex x, Vertex y) { return y * k + x; };
  for (Vertex y = 0; y < k; ++y) {
    for (Vertex x = 0; x < k; ++x) {
      const Vertex v = id(x, y);
      // The four forward maps; their inverses supply the other four slots.
      b.add_edge(v, id((x + y) % k, y));            // S1
      b.add_edge(v, id(x, (y + x) % k));            // S3
      b.add_edge(v, id((x + y + 1) % k, y));        // S5
      b.add_edge(v, id(x, (y + x + 1) % k));        // S7
    }
  }
  return std::move(b).build();
}

// ---- Steger–Wormald random regular graphs --------------------------------

namespace {

// One attempt of the Steger–Wormald stub-matching pass (the NetworkX
// `_try_creation` logic). Returns edges on success, nullopt when the attempt
// wedged (some stubs can no longer be placed) and must be restarted.
//
// When `uf` is non-null it is reset to n singletons and every accepted edge
// is unioned as it lands. Edges are only ever added within an attempt, so
// on success uf->components() == 1 is *exactly* the connectivity of the
// finished graph — the connected variant reads the retry decision off the
// union-find the moment the last edge lands, no BFS, no CSR build.
std::optional<std::vector<Endpoints>> steger_wormald_attempt(Vertex n, std::uint32_t r,
                                                             Rng& rng,
                                                             UnionFind* uf = nullptr) {
  g_sw_attempts.fetch_add(1, std::memory_order_relaxed);
  if (uf != nullptr) uf->reset(n);
  std::vector<Endpoints> edges;
  edges.reserve(static_cast<std::size_t>(n) * r / 2);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(edges.capacity() * 2);

  std::vector<Vertex> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * r);
  for (Vertex v = 0; v < n; ++v)
    for (std::uint32_t i = 0; i < r; ++i) stubs.push_back(v);

  std::vector<std::uint32_t> remaining(n, 0);
  while (!stubs.empty()) {
    rng.shuffle(std::span<Vertex>(stubs));
    std::fill(remaining.begin(), remaining.end(), 0);
    bool any_leftover = false;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      Vertex s1 = stubs[i], s2 = stubs[i + 1];
      if (s1 == s2 || seen.count(edge_key(s1, s2))) {
        ++remaining[s1];
        ++remaining[s2];
        any_leftover = true;
      } else {
        seen.insert(edge_key(s1, s2));
        edges.push_back(Endpoints{s1, s2});
        if (uf != nullptr) uf->unite(s1, s2);
      }
    }
    if (!any_leftover) break;

    // Suitability check: can any two leftover stubs still be joined?
    std::vector<Vertex> leftover_nodes;
    for (Vertex v = 0; v < n; ++v)
      if (remaining[v] > 0) leftover_nodes.push_back(v);
    bool suitable = false;
    for (std::size_t a = 0; a < leftover_nodes.size() && !suitable; ++a)
      for (std::size_t b = a + 1; b < leftover_nodes.size() && !suitable; ++b)
        if (!seen.count(edge_key(leftover_nodes[a], leftover_nodes[b]))) suitable = true;
    if (!suitable) return std::nullopt;

    stubs.clear();
    for (Vertex v = 0; v < n; ++v)
      for (std::uint32_t i = 0; i < remaining[v]; ++i) stubs.push_back(v);
  }
  return edges;
}

}  // namespace

Graph random_regular(Vertex n, std::uint32_t r, Rng& rng) {
  if (r >= n) throw std::invalid_argument("random_regular: need r < n");
  if ((static_cast<std::uint64_t>(n) * r) % 2 != 0)
    throw std::invalid_argument("random_regular: n*r must be even");
  if (r == 0) return Graph::from_edges(n, std::vector<Endpoints>{});
  for (;;) {
    auto edges = steger_wormald_attempt(n, r, rng);
    if (edges) return Graph::from_edges(n, std::move(*edges));
  }
}

Graph random_regular_connected(Vertex n, std::uint32_t r, Rng& rng) {
  if (r >= n) throw std::invalid_argument("random_regular_connected: need r < n");
  if ((static_cast<std::uint64_t>(n) * r) % 2 != 0)
    throw std::invalid_argument("random_regular_connected: n*r must be even");
  if (r == 0) {
    if (n > 1)
      throw std::invalid_argument("random_regular_connected: r = 0, n > 1 cannot be connected");
    return Graph::from_edges(n, std::vector<Endpoints>{});
  }
  UnionFind uf(n);
  for (;;) {
    auto edges = steger_wormald_attempt(n, r, rng, &uf);
    if (!edges) continue;
    if (uf.components() != 1) {
      g_sw_connectivity_retries.fetch_add(1, std::memory_order_relaxed);
      continue;  // rejected before any CSR build
    }
    return Graph::from_edges(n, std::move(*edges));
  }
}

// ---- Pairing model with edge-swap repair ---------------------------------

namespace {

// Flat open-addressed multiplicity table over edge keys: the pairing
// generator's hot structure. A node-based unordered_map makes generation
// hash-allocation-bound (measured ~2x slower end to end); linear probing
// over two preallocated arrays at load factor <= 2/3 keeps the whole first
// pass cache-friendly. Slots are never reclaimed — a decremented-to-zero
// key stays as a placeholder so probe chains remain valid — which is fine
// here: the repair inserts only O(defects) keys beyond the initial m.
// At most one instance may be live per thread (the backing storage is
// thread_local); pairing_repair_attempt's single function-local table
// satisfies this by construction. Capacity and probe order only affect
// speed, never the multiplicities the table reports, so resizing policy is
// free to change without perturbing generated graphs.
class EdgeCountTable {
 public:
  /// Table sized for `expected` distinct keys (capacity >= 1.5x, power of
  /// two). Construction reuses the calling thread's storage from previous
  /// tables (a sweep builds hundreds of same-sized graphs per thread;
  /// re-faulting tens of MB of freshly mmapped pages per trial dominated
  /// construction), so only the sentinel refill is paid, not the page
  /// faults.
  explicit EdgeCountTable(std::size_t expected)
      : keys_(thread_keys()), counts_(thread_counts()) {
    std::size_t cap = 16;
    while (2 * cap < 3 * expected + 2) cap <<= 1;
    mask_ = cap - 1;
    keys_.assign(cap, kEmpty);
    counts_.assign(cap, 0);
  }

  /// Paper-scale tables (beyond ~4M slots, i.e. n in the millions) would pin
  /// hundreds of MB of thread_local storage across the CSR build that
  /// follows — the dominant term of the generation peak-RSS envelope — so
  /// they release the backing storage instead of retaining it; sweep-typical
  /// sizes keep the reuse optimisation.
  ~EdgeCountTable() {
    constexpr std::size_t kRetainCap = std::size_t{1} << 22;
    if (mask_ + 1 > kRetainCap) {
      std::vector<std::uint64_t>().swap(keys_);
      std::vector<std::uint32_t>().swap(counts_);
    }
  }

  /// Current multiplicity of `key` (0 when absent).
  std::uint32_t count(std::uint64_t key) const { return counts_[slot(key)]; }

  /// Adds one occurrence of `key`.
  void increment(std::uint64_t key) {
    const std::size_t i = slot(key);
    keys_[i] = key;
    ++counts_[i];
  }

  /// Removes one occurrence of `key`. Precondition: count(key) > 0.
  void decrement(std::uint64_t key) { --counts_[slot(key)]; }

 private:
  // kEmpty is unreachable as an edge key: both endpoints would have to be
  // 0xFFFFFFFF, i.e. vertex ids of an n = 2^32 graph, beyond Vertex range.
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  std::size_t slot(std::uint64_t key) const {
    // SplitMix64 finalizer as the hash: edge keys are highly structured
    // (high word = min endpoint), so identity hashing would cluster.
    std::uint64_t z = key + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    std::size_t i = static_cast<std::size_t>(z) & mask_;
    while (keys_[i] != kEmpty && keys_[i] != key) i = (i + 1) & mask_;
    return i;
  }

  static std::vector<std::uint64_t>& thread_keys() {
    static thread_local std::vector<std::uint64_t> keys;
    return keys;
  }
  static std::vector<std::uint32_t>& thread_counts() {
    static thread_local std::vector<std::uint32_t> counts;
    return counts;
  }

  std::size_t mask_ = 0;
  std::vector<std::uint64_t>& keys_;
  std::vector<std::uint32_t>& counts_;
};

// One pairing pass followed by in-place 2-swap repair of the defective
// (loop/duplicate) edges. Returns nullopt when the repair stalls — a
// proposal budget guards against dense corner cases (r close to n) where no
// valid replacement edge may exist — in which case the caller re-pairs.
std::optional<std::vector<Endpoints>> pairing_repair_attempt(Vertex n,
                                                             std::uint32_t r,
                                                             Rng& rng) {
  g_pairing_attempts.fetch_add(1, std::memory_order_relaxed);
  const std::size_t m = static_cast<std::size_t>(n) * r / 2;
  std::vector<Endpoints> edges(m);
  {
    // Stub phase in its own scope: the 2m-stub array is dead weight once
    // the edge list exists, and freeing it before the count table is built
    // keeps the two biggest generation-scratch blocks from coexisting
    // (peak-RSS envelope, see docs/REPRODUCING.md).
    std::vector<Vertex> stubs;
    stubs.reserve(2 * m);
    for (Vertex v = 0; v < n; ++v)
      for (std::uint32_t i = 0; i < r; ++i) stubs.push_back(v);
    rng.shuffle(std::span<Vertex>(stubs));
    for (std::size_t i = 0; i < m; ++i)
      edges[i] = Endpoints{stubs[2 * i], stubs[2 * i + 1]};
  }
  EdgeCountTable count(m);
  for (std::size_t i = 0; i < m; ++i)
    count.increment(edge_key(edges[i].u, edges[i].v));

  const auto defective = [&](const Endpoints& e) {
    return e.u == e.v || count.count(edge_key(e.u, e.v)) > 1;
  };
  std::vector<std::size_t> defects;
  for (std::size_t i = 0; i < m; ++i)
    if (defective(edges[i])) defects.push_back(i);

  // The expected defect count after one pairing pass is Θ(r²) (independent
  // of n) and each repair accepts with Ω(1) probability on sparse graphs,
  // so the budget is generous; it only ever trips when the instance is so
  // dense that valid swaps are scarce.
  std::uint64_t budget = 200 * (defects.size() + 16);
  while (!defects.empty()) {
    const std::size_t i = defects.back();
    if (!defective(edges[i])) {  // healed when its duplicate twin was swapped
      defects.pop_back();
      continue;
    }
    if (budget-- == 0) return std::nullopt;
    const std::size_t j = static_cast<std::size_t>(rng.uniform(m));
    if (j == i) continue;
    const Endpoints d = edges[i];
    const Endpoints s = edges[j];
    if (defective(s)) continue;  // swap partners must be sound
    // Random orientation of the 2-swap: {u,v},{x,y} -> {u,x},{v,y} or
    // {u,y},{v,x}; both replacement edges must be new non-loops.
    const bool flip = rng.uniform(2) == 1;
    const Endpoints e1{d.u, flip ? s.v : s.u};
    const Endpoints e2{d.v, flip ? s.u : s.v};
    if (e1.u == e1.v || e2.u == e2.v) continue;
    const std::uint64_t k1 = edge_key(e1.u, e1.v);
    const std::uint64_t k2 = edge_key(e2.u, e2.v);
    if (k1 == k2) continue;  // the two replacements would duplicate each other
    if (count.count(k1) > 0 || count.count(k2) > 0) continue;
    count.decrement(edge_key(d.u, d.v));
    count.decrement(edge_key(s.u, s.v));
    count.increment(k1);
    count.increment(k2);
    edges[i] = e1;
    edges[j] = e2;
    defects.pop_back();  // e1 is sound by construction; e2 likewise
  }
  return edges;
}

}  // namespace

Graph random_regular_pairing(Vertex n, std::uint32_t r, Rng& rng) {
  if (r >= n) throw std::invalid_argument("random_regular_pairing: need r < n");
  if ((static_cast<std::uint64_t>(n) * r) % 2 != 0)
    throw std::invalid_argument("random_regular_pairing: n*r must be even");
  if (r == 0) return Graph::from_edges(n, std::vector<Endpoints>{});
  for (;;) {
    auto edges = pairing_repair_attempt(n, r, rng);
    if (edges) return Graph::from_edges(n, std::move(*edges));
  }
}

Graph random_regular_pairing_connected(Vertex n, std::uint32_t r, Rng& rng) {
  if (r >= n) throw std::invalid_argument("random_regular_pairing_connected: need r < n");
  if ((static_cast<std::uint64_t>(n) * r) % 2 != 0)
    throw std::invalid_argument("random_regular_pairing_connected: n*r must be even");
  if (r == 0) {
    if (n > 1)
      throw std::invalid_argument(
          "random_regular_pairing_connected: r = 0, n > 1 cannot be connected");
    return Graph::from_edges(n, std::vector<Endpoints>{});
  }
  for (;;) {
    auto edges = pairing_repair_attempt(n, r, rng);
    if (!edges) continue;
    // The swap repair removes edges, so an incrementally-maintained
    // union-find could over-report connectivity; one exact union-find pass
    // over the final edge list decides the retry the moment repair
    // finishes — still no BFS and no CSR build on the reject path.
    if (!edge_list_connected(n, *edges)) {
      g_pairing_connectivity_retries.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    return Graph::from_edges(n, std::move(*edges));
  }
}

Graph configuration_model(const std::vector<std::uint32_t>& degrees, Rng& rng,
                          bool simple) {
  std::uint64_t total = 0;
  for (auto d : degrees) total += d;
  if (total % 2 != 0)
    throw std::invalid_argument("configuration_model: degree sum must be even");

  const Vertex n = static_cast<Vertex>(degrees.size());
  std::vector<Vertex> stubs;
  stubs.reserve(total);

  for (;;) {
    stubs.clear();
    for (Vertex v = 0; v < n; ++v)
      for (std::uint32_t i = 0; i < degrees[v]; ++i) stubs.push_back(v);
    rng.shuffle(std::span<Vertex>(stubs));

    std::vector<Endpoints> edges;
    edges.reserve(total / 2);
    bool ok = true;
    std::unordered_set<std::uint64_t> seen;
    if (simple) seen.reserve(total);
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const Vertex u = stubs[i], v = stubs[i + 1];
      if (simple) {
        if (u == v || seen.count(edge_key(u, v))) {
          ok = false;
          break;
        }
        seen.insert(edge_key(u, v));
      }
      edges.push_back(Endpoints{u, v});
    }
    if (ok) return Graph::from_edges(n, std::move(edges));
  }
}

Graph hamiltonian_cycle_union(Vertex n, std::uint32_t k, Rng& rng, bool simple) {
  if (n < 3) throw std::invalid_argument("hamiltonian_cycle_union: n must be >= 3");
  if (k == 0) throw std::invalid_argument("hamiltonian_cycle_union: k must be >= 1");
  std::vector<Vertex> perm(n);
  for (;;) {
    std::vector<Endpoints> edges;
    edges.reserve(static_cast<std::size_t>(n) * k);
    std::unordered_set<std::uint64_t> seen;
    if (simple) seen.reserve(edges.capacity() * 2);
    bool ok = true;
    for (std::uint32_t c = 0; c < k && ok; ++c) {
      for (Vertex i = 0; i < n; ++i) perm[i] = i;
      rng.shuffle(std::span<Vertex>(perm));
      for (Vertex i = 0; i < n; ++i) {
        const Vertex u = perm[i], v = perm[(i + 1) % n];
        if (simple) {
          if (seen.count(edge_key(u, v))) {
            ok = false;
            break;
          }
          seen.insert(edge_key(u, v));
        }
        edges.push_back(Endpoints{u, v});
      }
    }
    if (ok) return Graph::from_edges(n, std::move(edges));
  }
}

Graph erdos_renyi(Vertex n, double p, Rng& rng) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("erdos_renyi: p out of range");
  GraphBuilder b(n);
  if (p <= 0.0) return b.build();
  if (p >= 1.0) return complete_graph(n);
  // Geometric skipping over the (n choose 2) pair sequence: O(n + m).
  const double log1mp = std::log1p(-p);
  std::uint64_t total_pairs = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  std::uint64_t idx = 0;
  const auto pair_of = [n](std::uint64_t t) {
    // Invert t = u*n - u*(u+1)/2 + (v-u-1) lexicographic pair index.
    Vertex u = 0;
    std::uint64_t row = n - 1;
    while (t >= row) {
      t -= row;
      --row;
      ++u;
    }
    const Vertex v = static_cast<Vertex>(u + 1 + t);
    return Endpoints{u, v};
  };
  for (;;) {
    const double gap = std::floor(std::log1p(-rng.uniform_real()) / log1mp);
    idx += static_cast<std::uint64_t>(gap);
    if (idx >= total_pairs) break;
    const auto [u, v] = pair_of(idx);
    b.add_edge(u, v);
    ++idx;
  }
  return std::move(b).build();
}

Graph random_geometric(Vertex n, double radius, Rng& rng) {
  if (radius <= 0.0) throw std::invalid_argument("random_geometric: radius must be > 0");
  struct Point {
    double x, y;
  };
  std::vector<Point> pts(n);
  for (auto& p : pts) {
    p.x = rng.uniform_real();
    p.y = rng.uniform_real();
  }
  // Bucket grid of cell size radius: only neighbouring cells need checking.
  const std::uint32_t cells = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::floor(1.0 / radius)));
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Vertex>> grid;
  const auto cell_of = [&](const Point& p) {
    const auto cx = std::min<std::uint32_t>(cells - 1, static_cast<std::uint32_t>(p.x * cells));
    const auto cy = std::min<std::uint32_t>(cells - 1, static_cast<std::uint32_t>(p.y * cells));
    return std::make_pair(cx, cy);
  };
  for (Vertex v = 0; v < n; ++v) grid[cell_of(pts[v])].push_back(v);

  GraphBuilder b(n);
  const double r2 = radius * radius;
  for (Vertex v = 0; v < n; ++v) {
    const auto [cx, cy] = cell_of(pts[v]);
    for (int dx = -1; dx <= 1; ++dx)
      for (int dy = -1; dy <= 1; ++dy) {
        const std::int64_t nx = static_cast<std::int64_t>(cx) + dx;
        const std::int64_t ny = static_cast<std::int64_t>(cy) + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
        const auto it = grid.find({static_cast<std::uint32_t>(nx), static_cast<std::uint32_t>(ny)});
        if (it == grid.end()) continue;
        for (const Vertex w : it->second) {
          if (w <= v) continue;
          const double ddx = pts[v].x - pts[w].x;
          const double ddy = pts[v].y - pts[w].y;
          if (ddx * ddx + ddy * ddy <= r2) b.add_edge(v, w);
        }
      }
  }
  return std::move(b).build();
}

}  // namespace ewalk
