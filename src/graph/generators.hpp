// Graph generators.
//
// The paper's experiments (Section 5, Figure 1) use random r-regular graphs
// produced by the Steger–Wormald algorithm (via NetworkX); we implement that
// algorithm directly, plus the pairing/configuration model, a guaranteed
// even-degree generator (union of random Hamiltonian cycles), and the
// deterministic families used throughout the paper and its related work:
// hypercube (edge-cover discussion, Section 1), toroidal grid and random
// geometric graphs (Avin–Krishnamachari RWC baseline), lollipop/barbell
// (classic SRW worst cases, used in tests), and assorted small graphs.
//
// Every random generator takes an explicit Rng for reproducibility.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ewalk {

// ---- Generation-path instrumentation ------------------------------------

/// Process-wide counters for the random-regular generation hot path. The
/// connected variants decide retries with a union-find over the edge list
/// (see docs/ARCHITECTURE.md, "generation ↔ connectivity contract"), so a
/// correct build shows zero full-BFS connectivity checks attributable to
/// generation — tests/generators_test.cpp and the fig1 `--gen-only` bench
/// mode pin that by snapshotting these together with
/// connectivity_bfs_calls() (graph/algorithms.hpp).
struct GenerationCounters {
  std::uint64_t pairing_attempts = 0;      ///< pairing+repair passes started
  std::uint64_t pairing_connectivity_retries = 0;  ///< attempts rejected as disconnected
  std::uint64_t sw_attempts = 0;           ///< Steger–Wormald passes started
  std::uint64_t sw_connectivity_retries = 0;  ///< SW graphs rejected as disconnected
};

/// Snapshot of the generation counters (thread-safe, monotone since the
/// last reset_generation_counters()).
GenerationCounters generation_counters() noexcept;

/// Zeroes the generation counters (tests bracket generator calls with this).
void reset_generation_counters() noexcept;

// ---- Deterministic families -------------------------------------------

/// Cycle C_n (n >= 3): connected, 2-regular, girth n.
Graph cycle_graph(Vertex n);

/// Path P_n on n vertices (n-1 edges).
Graph path_graph(Vertex n);

/// Complete graph K_n.
Graph complete_graph(Vertex n);

/// Complete bipartite K_{a,b}.
Graph complete_bipartite(Vertex a, Vertex b);

/// The Petersen graph: 3-regular, girth 5, n=10.
Graph petersen_graph();

/// Hypercube H_r on n = 2^r vertices; r-regular, bipartite.
Graph hypercube(std::uint32_t r);

/// 2-D torus (cyclic grid) of width w, height h; 4-regular for w,h >= 3.
Graph torus_2d(Vertex w, Vertex h);

/// 2-D open grid (no wraparound).
Graph grid_2d(Vertex w, Vertex h);

/// Star K_{1,n-1}.
Graph star_graph(Vertex n);

/// Lollipop: K_k clique attached to a path of `path_len` extra vertices.
/// The classic Θ(n³) hitting-time example for the SRW.
Graph lollipop(Vertex clique_size, Vertex path_len);

/// Barbell: two K_k cliques joined by a path of `path_len` extra vertices.
Graph barbell(Vertex clique_size, Vertex path_len);

/// Circulant graph C_n(offsets): vertex i adjacent to i±o for each offset o.
/// With distinct offsets 0 < o < n/2 the graph is 2|offsets|-regular (even
/// degree) — a convenient low-girth even-degree expander-ish family.
Graph circulant(Vertex n, const std::vector<std::uint32_t>& offsets);

/// Complete binary tree with `levels` levels (n = 2^levels - 1).
Graph binary_tree(std::uint32_t levels);

/// Margulis-type expander on Z_k x Z_k (n = k^2): a *deterministic*
/// 8-regular (even degree!) expander built from the four affine maps
/// (x+y, y), (x, y+x), (x+y+1, y), (x, y+x+1) and their inverses. The
/// transition-matrix lambda2 of this map set measures ~0.9 uniformly in k
/// (the exact Gabber-Galil constant 5*sqrt(2)/8 applies to their specific
/// map set). Returned as a multigraph (loops/multi-edges occur along the
/// axes), preserving 8-regularity with loops counted twice.
Graph margulis_expander(Vertex k);

// ---- Random families ----------------------------------------------------

/// Random r-regular simple graph via the Steger–Wormald algorithm — the
/// generator the paper used (through NetworkX). Requires n*r even, r < n.
/// Restarts internally until a simple r-regular graph is produced.
Graph random_regular(Vertex n, std::uint32_t r, Rng& rng);

/// Like random_regular but additionally retries until connected (for r >= 3
/// the graph is connected whp, so this rarely loops). Connectivity is
/// maintained incrementally by a union-find *during* stub matching — the
/// keep/retry decision is known the moment the last edge lands, with no BFS
/// and no CSR build for rejected attempts.
Graph random_regular_connected(Vertex n, std::uint32_t r, Rng& rng);

/// Random r-regular simple graph via one pairing-model pass with edge-swap
/// repair of collisions: stubs are matched in one shuffled pass, then each
/// defective edge (self-loop or duplicate) is repaired by a random 2-swap
/// with a sound edge, accepted only when both replacement edges are new
/// non-loops. Expected O(n*r) end to end — the expected defect count after
/// the pairing pass is Θ(r²), independent of n — where the restart-based
/// Steger–Wormald generator above resamples whole attempts and becomes the
/// dominant cost of large-n sweeps. Trade-off: the swap repair leaves the
/// distribution asymptotically uniform but not exactly the restart
/// distribution at finite n; random_regular stays the reference generator
/// and tests/generators_test.cpp cross-validates degree invariants and
/// cover-time samples between the two. Requires n*r even, r < n.
Graph random_regular_pairing(Vertex n, std::uint32_t r, Rng& rng);

/// Like random_regular_pairing but additionally retries until connected
/// (r >= 3: connected whp, so this rarely loops). The decision comes from a
/// single union-find pass over the repaired edge list (edge_list_connected)
/// the moment repair finishes — the swap repair can remove edges, so the
/// incremental-union shortcut of the Steger–Wormald path would over-report
/// connectivity here; the edge-list pass is exact, still O(m α(n)), and
/// still runs before any CSR is built, so rejected attempts never pay a
/// Graph construction or a BFS.
Graph random_regular_pairing_connected(Vertex n, std::uint32_t r, Rng& rng);

/// Configuration (pairing) model over a fixed degree sequence. When `simple`
/// is true, resamples until there are no loops/multi-edges (suitable for
/// small maximum degree only — retry probability decays with Σd²);
/// otherwise returns the multigraph from a single pairing.
Graph configuration_model(const std::vector<std::uint32_t>& degrees, Rng& rng,
                          bool simple);

/// Union of k independently-drawn random Hamiltonian cycles on n vertices:
/// a 2k-regular even-degree multigraph, connected by construction. When
/// `simple` is true, cycles are resampled until the union is simple
/// (practical for k small relative to n). These are expanders whp for k>=2.
Graph hamiltonian_cycle_union(Vertex n, std::uint32_t k, Rng& rng, bool simple = true);

/// Erdős–Rényi G(n, p).
Graph erdos_renyi(Vertex n, double p, Rng& rng);

/// Random geometric graph: n points uniform in the unit square, edges
/// between pairs at Euclidean distance <= radius.
Graph random_geometric(Vertex n, double radius, Rng& rng);

/// Random fixed-degree-sequence graph where every degree is the same even
/// value r — convenience wrapper: Steger–Wormald for simple graphs.
inline Graph random_even_regular(Vertex n, std::uint32_t r, Rng& rng) {
  return random_regular_connected(n, r, rng);
}

}  // namespace ewalk
