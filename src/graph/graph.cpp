#include "graph/graph.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

namespace ewalk {

Graph Graph::from_edges(Vertex n, std::span<const Endpoints> edges) {
  return from_edges(n, std::vector<Endpoints>(edges.begin(), edges.end()));
}

Graph Graph::from_edges(Vertex n, std::vector<Endpoints>&& edges) {
  // Slot indices (offsets_, slot_index) are 32-bit: 2m must fit. Edge ids are
  // 32-bit too, which the same bound covers with room to spare.
  if (edges.size() > std::numeric_limits<std::uint32_t>::max() / 2)
    throw std::invalid_argument(
        "Graph::from_edges: edge count overflows 32-bit slot indices (n=" +
        std::to_string(n) + ", m=" + std::to_string(edges.size()) +
        "; 2m must fit in uint32)");

  Graph g;
  g.n_ = n;
  g.edges_ = std::move(edges);
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);

  // Pass 1: validate endpoints, count degrees into offsets_[v + 1], and
  // count self-loops — all in the one sweep over the adopted edge list.
  for (const auto& [u, v] : g.edges_) {
    if (u >= n || v >= n) throw std::invalid_argument("Graph::from_edges: endpoint out of range");
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
    if (u == v) ++g.self_loops_;
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) g.offsets_[i] += g.offsets_[i - 1];

  // Pass 2: bucket fill using offsets_ itself as the cursor array (after the
  // fill, offsets_[v] holds the END of v's bucket, i.e. the start of v+1's,
  // so one backward shift restores the CSR offsets — no cursor vector).
  // A self-loop writes its two slots back-to-back; the census below and
  // other_endpoint rely on that adjacency.
  g.slots_.resize(2 * g.edges_.size());
  for (EdgeId e = 0; e < g.edges_.size(); ++e) {
    const auto [u, v] = g.edges_[e];
    g.slots_[g.offsets_[u]++] = Slot{v, e};
    g.slots_[g.offsets_[v]++] = Slot{u, e};
  }
  for (Vertex v = n; v > 0; --v) g.offsets_[v] = g.offsets_[v - 1];
  g.offsets_[0] = 0;

  if (n > 0) {
    g.min_degree_ = g.degree(0);
    g.max_degree_ = g.degree(0);
    for (Vertex v = 0; v < n; ++v) {
      const std::uint32_t d = g.degree(v);
      g.min_degree_ = std::min(g.min_degree_, d);
      g.max_degree_ = std::max(g.max_degree_, d);
      if (d % 2 != 0) g.all_even_ = false;
    }
  }

  // Parallel-edge census directly on the adjacency: for each vertex u, scan
  // its slots and count repeated neighbours v >= u with a stamp array (value
  // u+1 marks "v already seen in u's bucket"), so k parallel copies of an
  // edge contribute k-1 — the same count the old sorted-key census produced.
  // Each undirected edge is counted from its min endpoint only; a self-loop's
  // twin slot (adjacent by construction) is skipped so k self-loops at u
  // likewise contribute k-1. Scratch is 4 bytes per VERTEX (transient)
  // instead of 8 bytes per EDGE plus an O(m log m) sort.
  if (!g.edges_.empty()) {
    std::vector<Vertex> stamp(n, 0);
    for (Vertex u = 0; u < n; ++u) {
      for (std::uint32_t i = g.offsets_[u]; i < g.offsets_[u + 1]; ++i) {
        const Vertex v = g.slots_[i].neighbor;
        if (v < u) continue;
        if (v == u) ++i;  // skip the self-loop's twin slot
        if (stamp[v] == u + 1)
          ++g.parallel_edges_;
        else
          stamp[v] = u + 1;
      }
    }
  }
  return g;
}

EdgeId GraphBuilder::add_edge(Vertex u, Vertex v) {
  if (u >= n_ || v >= n_) throw std::invalid_argument("GraphBuilder::add_edge: endpoint out of range");
  edges_.push_back(Endpoints{u, v});
  return static_cast<EdgeId>(edges_.size() - 1);
}

}  // namespace ewalk
