#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace ewalk {

Graph Graph::from_edges(Vertex n, std::span<const Endpoints> edges) {
  Graph g;
  g.n_ = n;
  g.edges_.assign(edges.begin(), edges.end());
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);

  for (const auto& [u, v] : g.edges_) {
    if (u >= n || v >= n) throw std::invalid_argument("Graph::from_edges: endpoint out of range");
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
    if (u == v) ++g.self_loops_;
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) g.offsets_[i] += g.offsets_[i - 1];

  g.slots_.resize(2 * g.edges_.size());
  std::vector<std::uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId e = 0; e < g.edges_.size(); ++e) {
    const auto [u, v] = g.edges_[e];
    g.slots_[cursor[u]++] = Slot{v, e};
    g.slots_[cursor[v]++] = Slot{u, e};
  }

  if (n > 0) {
    g.min_degree_ = g.degree(0);
    g.max_degree_ = g.degree(0);
    for (Vertex v = 0; v < n; ++v) {
      const std::uint32_t d = g.degree(v);
      g.min_degree_ = std::min(g.min_degree_, d);
      g.max_degree_ = std::max(g.max_degree_, d);
      if (d % 2 != 0) g.all_even_ = false;
    }
  }

  // Parallel-edge census: count duplicate (min,max) endpoint pairs.
  {
    std::vector<std::uint64_t> keys;
    keys.reserve(g.edges_.size());
    for (const auto& [u, v] : g.edges_) {
      const std::uint64_t a = std::min(u, v);
      const std::uint64_t b = std::max(u, v);
      keys.push_back((a << 32) | b);
    }
    std::sort(keys.begin(), keys.end());
    for (std::size_t i = 1; i < keys.size(); ++i) {
      if (keys[i] == keys[i - 1]) ++g.parallel_edges_;
    }
  }
  return g;
}

EdgeId GraphBuilder::add_edge(Vertex u, Vertex v) {
  if (u >= n_ || v >= n_) throw std::invalid_argument("GraphBuilder::add_edge: endpoint out of range");
  edges_.push_back(Endpoints{u, v});
  return static_cast<EdgeId>(edges_.size() - 1);
}

}  // namespace ewalk
