// Undirected multigraph with stable edge identifiers.
//
// This is the substrate every walk process runs on. Design goals, in order:
//   1. O(1) access to the incident (neighbour, edge_id) slots of a vertex —
//      the E-process marks *edges* visited, so adjacency must carry edge ids.
//   2. Immutability after construction: walks never mutate the graph, only
//      their own per-edge/per-vertex state arrays.
//   3. Multigraph semantics matching the paper: parallel edges are distinct
//      edges; a self-loop contributes 2 to the degree and occupies two
//      adjacency slots sharing one edge id (Section 2.2 contracts vertex sets
//      "retaining multiple edges and loops").
//
// Build via GraphBuilder (incremental) or Graph::from_edges (one shot).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace ewalk {

using Vertex = std::uint32_t;
using EdgeId = std::uint32_t;

/// One adjacency entry: the neighbour reached and the undirected edge used.
struct Slot {
  Vertex neighbor;
  EdgeId edge;
};

/// An undirected edge's two endpoints (u == v for a self-loop).
struct Endpoints {
  Vertex u;
  Vertex v;
};

class Graph {
 public:
  Graph() = default;

  /// Builds a graph on n vertices from an undirected edge list. Endpoints
  /// must be < n. Parallel edges and self-loops are kept. Copies the edge
  /// list; prefer the rvalue overload when the caller's list is disposable.
  static Graph from_edges(Vertex n, std::span<const Endpoints> edges);

  /// Memory-lean build path: adopts `edges` as the graph's edge array (no
  /// copy, so peak memory during construction is ~1x the edge list instead
  /// of ~2x), counts degrees in a single pass, fills adjacency slots with an
  /// in-place bucket cursor (no per-vertex cursor vector), and folds the
  /// parallel-edge census into a per-vertex stamp scan (no 8-byte-per-edge
  /// key vector, no O(m log m) sort). Throws std::invalid_argument on an
  /// out-of-range endpoint or when 2*edges.size() overflows the 32-bit slot
  /// index space (the CSR stays valid up to ~4e9 slot endpoints).
  static Graph from_edges(Vertex n, std::vector<Endpoints>&& edges);

  Vertex num_vertices() const noexcept { return n_; }
  EdgeId num_edges() const noexcept { return static_cast<EdgeId>(edges_.size()); }

  /// Degree of v; self-loops count twice.
  std::uint32_t degree(Vertex v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Incident slots of v (size == degree(v)).
  std::span<const Slot> slots(Vertex v) const noexcept {
    return {slots_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// The k-th incident slot of v, 0 <= k < degree(v).
  const Slot& slot(Vertex v, std::uint32_t k) const noexcept {
    return slots_[offsets_[v] + k];
  }

  /// Global index of v's k-th slot within the flat slot array; the E-process
  /// uses this to maintain per-slot bookkeeping without a hash map.
  std::uint32_t slot_index(Vertex v, std::uint32_t k) const noexcept {
    return offsets_[v] + k;
  }
  std::uint32_t slot_offset(Vertex v) const noexcept { return offsets_[v]; }

  Endpoints endpoints(EdgeId e) const noexcept { return edges_[e]; }

  /// The endpoint of e that is not `from` (== from for a self-loop).
  Vertex other_endpoint(EdgeId e, Vertex from) const noexcept {
    const auto [u, v] = edges_[e];
    return u == from ? v : u;
  }

  std::uint32_t min_degree() const noexcept { return min_degree_; }
  std::uint32_t max_degree() const noexcept { return max_degree_; }

  /// True iff every vertex has even degree — the standing assumption of the
  /// paper's vertex cover time analysis (Observation 10 depends on it).
  bool all_degrees_even() const noexcept { return all_even_; }

  /// True iff every vertex has degree r.
  bool is_regular(std::uint32_t r) const noexcept {
    return n_ > 0 && min_degree_ == r && max_degree_ == r;
  }

  bool has_self_loops() const noexcept { return self_loops_ > 0; }
  bool has_parallel_edges() const noexcept { return parallel_edges_ > 0; }
  /// Simple == no loops and no parallel edges.
  bool is_simple() const noexcept { return self_loops_ == 0 && parallel_edges_ == 0; }

  /// Stationary probability of v under the SRW: d(v)/2m.
  double stationary_probability(Vertex v) const noexcept {
    return static_cast<double>(degree(v)) / (2.0 * static_cast<double>(num_edges()));
  }

  /// Hints the hardware to pull v's adjacency into cache: the offsets_ entry
  /// and the head of the slot row. The slot-row address depends on the
  /// offsets_ load, so that prefetch issues once the (usually cheap) offset
  /// read resolves — out-of-order cores overlap both with unrelated work.
  /// This is what makes interleaved trial bundles (engine/bundle.hpp) hide
  /// DRAM latency on graphs that no longer fit in LLC: the bundle prefetches
  /// the NEXT position of each walk while stepping the others. No-op effect
  /// on correctness; never faults (prefetch of any address is safe).
  void prefetch_hint(Vertex v) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(offsets_.data() + v);
    __builtin_prefetch(slots_.data() + offsets_[v]);
#else
    (void)v;
#endif
  }

 private:
  Vertex n_ = 0;
  std::vector<std::uint32_t> offsets_;  // size n_+1
  std::vector<Slot> slots_;             // size 2m
  std::vector<Endpoints> edges_;        // size m
  std::uint32_t min_degree_ = 0;
  std::uint32_t max_degree_ = 0;
  std::uint64_t self_loops_ = 0;
  std::uint64_t parallel_edges_ = 0;
  bool all_even_ = true;
};

/// Incremental edge-list assembler.
class GraphBuilder {
 public:
  explicit GraphBuilder(Vertex n) : n_(n) {}

  /// Adds undirected edge {u, v} (u == v allowed) and returns its id.
  EdgeId add_edge(Vertex u, Vertex v);

  Vertex num_vertices() const noexcept { return n_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Builds from a copy of the accumulated edge list; the builder stays
  /// usable (tests build the same edge set twice).
  Graph build() const& { return Graph::from_edges(n_, edges_); }

  /// Builds by moving the accumulated edge list into the graph — the
  /// single-copy path every generator uses via `std::move(b).build()`.
  Graph build() && { return Graph::from_edges(n_, std::move(edges_)); }

 private:
  Vertex n_;
  std::vector<Endpoints> edges_;
};

}  // namespace ewalk
