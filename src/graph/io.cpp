#include "graph/io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ewalk {

void write_edge_list(const Graph& g, std::ostream& out) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    out << u << ' ' << v << '\n';
  }
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_edge_list_file: cannot open " + path);
  write_edge_list(g, out);
}

Graph read_edge_list(std::istream& in) {
  Vertex n = 0;
  EdgeId m = 0;
  if (!(in >> n >> m)) throw std::runtime_error("read_edge_list: bad header");
  std::vector<Endpoints> edges;
  edges.reserve(m);
  for (EdgeId e = 0; e < m; ++e) {
    Vertex u = 0, v = 0;
    if (!(in >> u >> v)) throw std::runtime_error("read_edge_list: truncated edge list");
    edges.push_back(Endpoints{u, v});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_edge_list_file: cannot open " + path);
  return read_edge_list(in);
}

void write_dot(const Graph& g, std::ostream& out, const std::string& name) {
  out << "graph " << name << " {\n";
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    out << "  " << u << " -- " << v << ";\n";
  }
  out << "}\n";
}

}  // namespace ewalk
