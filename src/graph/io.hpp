// Graph serialisation: whitespace edge lists (one "u v" pair per line) and
// Graphviz DOT output for small-graph debugging.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace ewalk {

/// Writes "n m" header then one "u v" line per edge.
void write_edge_list(const Graph& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);

/// Parses the format produced by write_edge_list.
Graph read_edge_list(std::istream& in);
Graph read_edge_list_file(const std::string& path);

/// Graphviz (undirected) output.
void write_dot(const Graph& g, std::ostream& out, const std::string& name = "G");

}  // namespace ewalk
