#include "graph/lps.hpp"

#include <array>
#include <cmath>
#include <cstdlib>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ewalk {

bool is_prime_u32(std::uint32_t n) {
  if (n < 2) return false;
  if (n % 2 == 0) return n == 2;
  for (std::uint64_t d = 3; d * d <= n; d += 2)
    if (n % d == 0) return false;
  return true;
}

std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp, std::uint64_t modulus) {
  std::uint64_t result = 1 % modulus;
  base %= modulus;
  while (exp > 0) {
    if (exp & 1) result = result * base % modulus;
    base = base * base % modulus;
    exp >>= 1;
  }
  return result;
}

int legendre_symbol(std::uint64_t a, std::uint64_t p) {
  a %= p;
  if (a == 0) return 0;
  const std::uint64_t e = pow_mod(a, (p - 1) / 2, p);
  return e == 1 ? 1 : -1;
}

std::uint64_t sqrt_mod_prime(std::uint64_t a, std::uint64_t p) {
  a %= p;
  if (a == 0) return 0;
  if (legendre_symbol(a, p) != 1)
    throw std::invalid_argument("sqrt_mod_prime: a is not a quadratic residue");
  if (p % 4 == 3) return pow_mod(a, (p + 1) / 4, p);

  // Tonelli–Shanks. Write p-1 = Q * 2^S with Q odd.
  std::uint64_t q_odd = p - 1;
  std::uint32_t s = 0;
  while (q_odd % 2 == 0) {
    q_odd /= 2;
    ++s;
  }
  // A quadratic non-residue z.
  std::uint64_t z = 2;
  while (legendre_symbol(z, p) != -1) ++z;

  std::uint64_t m = s;
  std::uint64_t c = pow_mod(z, q_odd, p);
  std::uint64_t t = pow_mod(a, q_odd, p);
  std::uint64_t r = pow_mod(a, (q_odd + 1) / 2, p);
  while (t != 1) {
    std::uint64_t i = 0;
    std::uint64_t t2 = t;
    while (t2 != 1) {
      t2 = t2 * t2 % p;
      ++i;
      if (i == m) throw std::logic_error("sqrt_mod_prime: no square root found");
    }
    std::uint64_t b = c;
    for (std::uint64_t j = 0; j + i + 1 < m; ++j) b = b * b % p;
    m = i;
    c = b * b % p;
    t = t * c % p;
    r = r * b % p;
  }
  return r;
}

namespace {

/// 2x2 matrix over Z_q, canonicalised to a unique projective representative
/// (first nonzero entry scaled to 1). Packed into a uint64 for hashing.
struct Mat {
  std::array<std::uint64_t, 4> a;  // row major: a[0]=m00 a[1]=m01 a[2]=m10 a[3]=m11
};

Mat mat_mul(const Mat& x, const Mat& y, std::uint64_t q) {
  Mat r;
  r.a[0] = (x.a[0] * y.a[0] + x.a[1] * y.a[2]) % q;
  r.a[1] = (x.a[0] * y.a[1] + x.a[1] * y.a[3]) % q;
  r.a[2] = (x.a[2] * y.a[0] + x.a[3] * y.a[2]) % q;
  r.a[3] = (x.a[2] * y.a[1] + x.a[3] * y.a[3]) % q;
  return r;
}

std::uint64_t inverse_mod(std::uint64_t a, std::uint64_t q) {
  return pow_mod(a, q - 2, q);  // q prime
}

/// Scales so the first nonzero entry is 1 — canonical under PGL scaling.
Mat canonicalize(Mat m, std::uint64_t q) {
  for (const std::uint64_t entry : m.a) {
    if (entry != 0) {
      const std::uint64_t inv = inverse_mod(entry, q);
      for (auto& x : m.a) x = x * inv % q;
      return m;
    }
  }
  throw std::logic_error("canonicalize: zero matrix");
}

std::uint64_t pack(const Mat& m) {
  // q < 2^16 for all supported parameters, so 4 entries fit in 64 bits.
  return (m.a[0] << 48) | (m.a[1] << 32) | (m.a[2] << 16) | m.a[3];
}

}  // namespace

std::uint64_t lps_expected_order(const LpsParams& params) {
  const std::uint64_t q = params.q;
  const std::uint64_t pgl_order = q * (q * q - 1);
  return lps_is_psl_case(params) ? pgl_order / 2 : pgl_order;
}

bool lps_is_psl_case(const LpsParams& params) {
  return legendre_symbol(params.p, params.q) == 1;
}

Graph lps_graph(const LpsParams& params) {
  const std::uint32_t p = params.p;
  const std::uint64_t q = params.q;
  if (!is_prime_u32(p) || p % 4 != 1)
    throw std::invalid_argument("lps_graph: p must be a prime == 1 (mod 4)");
  if (!is_prime_u32(params.q) || q % 4 != 1)
    throw std::invalid_argument("lps_graph: q must be a prime == 1 (mod 4)");
  if (p == q) throw std::invalid_argument("lps_graph: p and q must be distinct");
  if (q >= (1u << 16)) throw std::invalid_argument("lps_graph: q too large (>= 2^16)");
  if (static_cast<double>(q) <= 2.0 * std::sqrt(static_cast<double>(p)))
    throw std::invalid_argument("lps_graph: need q > 2*sqrt(p)");

  // Enumerate the p+1 quaternions a0^2+a1^2+a2^2+a3^2 = p, a0 > 0 odd,
  // a1, a2, a3 even (sign-free count is exactly p+1 by Jacobi's theorem).
  struct Quat {
    std::int64_t a0, a1, a2, a3;
  };
  std::vector<Quat> gens_q;
  const std::int64_t bound = static_cast<std::int64_t>(std::sqrt(static_cast<double>(p))) + 1;
  const std::int64_t even_bound = bound - (bound & 1);  // largest even <= bound
  for (std::int64_t a0 = 1; a0 <= bound; a0 += 2)
    for (std::int64_t a1 = -even_bound; a1 <= even_bound; a1 += 2)
      for (std::int64_t a2 = -even_bound; a2 <= even_bound; a2 += 2)
        for (std::int64_t a3 = -even_bound; a3 <= even_bound; a3 += 2)
          if (a0 * a0 + a1 * a1 + a2 * a2 + a3 * a3 == static_cast<std::int64_t>(p))
            gens_q.push_back(Quat{a0, a1, a2, a3});
  if (gens_q.size() != p + 1)
    throw std::logic_error("lps_graph: quaternion enumeration did not yield p+1 generators");

  const std::uint64_t i_mod = sqrt_mod_prime(q - 1, q);  // i^2 == -1 (mod q)
  const auto to_mod = [&](std::int64_t x) {
    std::int64_t r = x % static_cast<std::int64_t>(q);
    if (r < 0) r += static_cast<std::int64_t>(q);
    return static_cast<std::uint64_t>(r);
  };

  std::vector<Mat> generators;
  generators.reserve(gens_q.size());
  for (const auto& [a0, a1, a2, a3] : gens_q) {
    Mat m;
    m.a[0] = (to_mod(a0) + i_mod * to_mod(a1)) % q;
    m.a[1] = (to_mod(a2) + i_mod * to_mod(a3)) % q;
    m.a[2] = (to_mod(-a2) + i_mod * to_mod(a3)) % q;
    m.a[3] = (to_mod(a0) + (q - i_mod % q) * to_mod(a1) % q) % q;
    generators.push_back(canonicalize(m, q));
  }

  // BFS over the Cayley graph from the identity.
  const Mat identity = canonicalize(Mat{{1, 0, 0, 1}}, q);
  std::unordered_map<std::uint64_t, Vertex> index;
  std::vector<Mat> elems;
  index.reserve(lps_expected_order(params) * 2);
  elems.reserve(lps_expected_order(params));

  index.emplace(pack(identity), 0);
  elems.push_back(identity);
  std::vector<Endpoints> edges;
  edges.reserve(lps_expected_order(params) * (p + 1) / 2);

  std::queue<Vertex> frontier;
  frontier.push(0);
  while (!frontier.empty()) {
    const Vertex u = frontier.front();
    frontier.pop();
    const Mat mu = elems[u];
    for (const Mat& s : generators) {
      const Mat mw = canonicalize(mat_mul(s, mu, q), q);
      const std::uint64_t key = pack(mw);
      auto it = index.find(key);
      Vertex w;
      if (it == index.end()) {
        w = static_cast<Vertex>(elems.size());
        index.emplace(key, w);
        elems.push_back(mw);
        frontier.push(w);
      } else {
        w = it->second;
      }
      // The generator set is symmetric, so each undirected edge {u,w} is
      // produced once from u and once from w; keep the u < w copy. For the
      // supported parameters the girth exceeds 2, so u != w always.
      if (u < w) edges.push_back(Endpoints{u, static_cast<Vertex>(w)});
    }
  }

  return Graph::from_edges(static_cast<Vertex>(elems.size()), std::move(edges));
}

}  // namespace ewalk
