// Lubotzky–Phillips–Sarnak Ramanujan graphs X^{p,q} (reference [11] of the
// paper). These are the canonical *high girth even degree expanders* of the
// paper's title when p + 1 is even (p odd prime): (p+1)-regular Cayley
// graphs of PSL(2, Z_q) or PGL(2, Z_q) with second adjacency eigenvalue
// <= 2*sqrt(p) and girth Omega(log_p n).
//
// Construction: for primes p, q == 1 (mod 4), p != q, take the p+1 integer
// quaternion solutions of a0^2 + a1^2 + a2^2 + a3^2 = p with a0 > 0 odd and
// a1, a2, a3 even. With i = sqrt(-1) mod q each solution yields the matrix
//   [ a0 + i*a1   a2 + i*a3 ]
//   [-a2 + i*a3   a0 - i*a1 ]   (mod q)
// over PGL(2, q). The generator set is symmetric, so the Cayley graph is an
// undirected (p+1)-regular graph. If p is a quadratic residue mod q the
// graph is the Cayley graph of PSL(2,q) with n = q(q^2-1)/2 (non-bipartite);
// otherwise PGL(2,q) with n = q(q^2-1) (bipartite). We realise the correct
// component by BFS from the identity over canonicalised projective matrices.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace ewalk {

struct LpsParams {
  std::uint32_t p;  ///< odd prime == 1 (mod 4); graph degree is p+1 (even)
  std::uint32_t q;  ///< odd prime == 1 (mod 4), q != p, q > 2*sqrt(p)
};

/// Number of vertices lps_graph(params) will produce.
std::uint64_t lps_expected_order(const LpsParams& params);

/// True iff p is a quadratic residue mod q (=> PSL case, non-bipartite).
bool lps_is_psl_case(const LpsParams& params);

/// Builds X^{p,q}. Throws std::invalid_argument on invalid parameters.
Graph lps_graph(const LpsParams& params);

// ---- Number theory helpers (exposed for tests) ---------------------------

/// True iff n is prime (deterministic trial division; n fits the use case).
bool is_prime_u32(std::uint32_t n);

/// (a|p) Legendre symbol via Euler's criterion; p an odd prime, a % p != 0.
int legendre_symbol(std::uint64_t a, std::uint64_t p);

/// Tonelli–Shanks: an x with x^2 == a (mod p), for odd prime p and (a|p)=1.
std::uint64_t sqrt_mod_prime(std::uint64_t a, std::uint64_t p);

/// Modular exponentiation base^exp mod modulus (modulus < 2^32).
std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp, std::uint64_t modulus);

}  // namespace ewalk
