#include "graph/pcf.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ewalk {
namespace {

// Exp(rate) draw via inversion; log1p keeps precision when uniform_real()
// lands near 0. Consumes exactly one u64 of the stream.
double exp_draw(Rng& rng, double rate) {
  return -std::log1p(-rng.uniform_real()) / rate;
}

}  // namespace

PcfSchedule::PcfSchedule(const Graph& base, double alpha, Rng& rng)
    : base_(&base), alpha_(alpha), components_(base.num_vertices()) {
  if (!(alpha > 0.0))
    throw std::invalid_argument("PcfSchedule: alpha must be > 0");

  // Fixed draw order — edges first, then vertices, then the child split —
  // so the schedule is a pure function of the incoming stream position.
  events_.resize(base.num_edges());
  for (EdgeId e = 0; e < base.num_edges(); ++e)
    events_[e] = Event{exp_draw(rng, 1.0), e};
  freeze_time_.resize(base.num_vertices());
  for (Vertex v = 0; v < base.num_vertices(); ++v)
    freeze_time_[v] = exp_draw(rng, alpha_);
  merge_rng_ = rng.split();

  // Ties (astronomically unlikely with 53-bit times, but possible) break by
  // base edge id so the processing order is total and reproducible.
  std::sort(events_.begin(), events_.end(), [](const Event& a, const Event& b) {
    return a.time != b.time ? a.time < b.time : a.base_edge < b.base_edge;
  });
}

void PcfSchedule::advance_to(double t, DynamicGraph& dyn) {
  while (cursor_ < events_.size() && events_[cursor_].time <= t) {
    const Event& ev = events_[cursor_++];
    const Endpoints ep = base_->endpoints(ev.base_edge);
    const Vertex ru = components_.find(ep.u);
    const Vertex rv = components_.find(ep.v);
    // A component is frozen at ev.time iff its clock rang first. Frozen
    // components never gain edges, so the open event is blocked forever.
    if (freeze_time_[ru] <= ev.time || freeze_time_[rv] <= ev.time) {
      ++blocked_;
      continue;
    }
    dyn.insert_edge(ep.u, ep.v);
    ++opened_;
    if (ru != rv) {
      components_.unite(ru, rv);
      // Redraw the merged component's freeze clock from the event time;
      // Exp is memoryless, so the fresh draw is distributionally exact.
      // Drawn from the private stream in event-processing order, which is
      // the same regardless of how advance_to calls partition [0, t].
      freeze_time_[components_.find(ru)] = ev.time + exp_draw(merge_rng_, alpha_);
    }
    // An intra-component edge (ru == rv) closes a cycle inside an unfrozen
    // component: inserted, no merge, no redraw.
  }
}

void PcfSchedule::run_to_completion(DynamicGraph& dyn) {
  advance_to(std::numeric_limits<double>::infinity(), dyn);
}

double PcfSchedule::next_event_time() const noexcept {
  return exhausted() ? std::numeric_limits<double>::infinity()
                     : events_[cursor_].time;
}

}  // namespace ewalk
