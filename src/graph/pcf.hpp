// Percolation with constant freezing (PCF) on a base multigraph.
//
// Mottram's PCF process (arXiv:1309.1752): every potential edge of a base
// graph opens independently at rate 1 (an Exp(1) arrival clock), and every
// connected component of the open subgraph freezes at rate alpha — once a
// component's freeze clock rings it is frozen forever, and no further edge
// incident with it ever opens. As alpha -> 0 the process approaches plain
// percolation; large alpha shatters the graph into many small frozen
// clusters. This is the engine's principled generator of evolving
// environments for walks-on-dynamic-graphs experiments: the walker steps
// while edges keep arriving around it.
//
// Determinism contract: the entire event schedule is a pure function of the
// constructor rng — all edge-open times are drawn up front in base-edge-id
// order, initial per-vertex freeze clocks next, and the merge-time redraws
// come from a private child stream in event-processing order. Processing is
// strictly ordered by (open time, base edge id), so advance_to(t1) then
// advance_to(t2) applies exactly the mutations advance_to(t2) alone would —
// schedule playout is independent of advance granularity, thread count, and
// work-stealing order (pinned by tests/dynamic_graph_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dynamic_graph.hpp"
#include "graph/graph.hpp"
#include "graph/union_find.hpp"
#include "util/rng.hpp"

namespace ewalk {

/// Event schedule of one PCF run over the potential edges of a base graph.
/// Construct, then play into a DynamicGraph with advance_to(); the schedule
/// owns the percolation state (component structure, freeze clocks), the
/// DynamicGraph owns the open subgraph the walker sees.
class PcfSchedule {
 public:
  /// Draws the full schedule from `rng`: one Exp(1) open time per base edge
  /// (in base-edge-id order), one initial Exp(alpha) freeze clock per vertex
  /// (in vertex order), and a private child stream (rng.split()) for the
  /// freeze-clock redraws on component merges. `alpha` must be > 0; the base
  /// graph is borrowed and must outlive the schedule.
  PcfSchedule(const Graph& base, double alpha, Rng& rng);

  /// Applies every not-yet-processed edge-open event with time <= t to
  /// `dyn`, in (time, base edge id) order. An event whose endpoints lie in
  /// an unfrozen component (or two unfrozen components) inserts the edge and
  /// merges; merging two distinct components redraws the merged component's
  /// freeze clock as event_time + Exp(alpha) (memorylessness makes the
  /// fresh draw distributionally exact). An event incident with a frozen
  /// component is blocked forever. `dyn` must be the same graph across
  /// calls, on >= base.num_vertices() vertices.
  void advance_to(double t, DynamicGraph& dyn);

  /// Plays the schedule to exhaustion (every base edge opened or blocked).
  void run_to_completion(DynamicGraph& dyn);

  /// Open time of the next unprocessed event; +infinity once exhausted.
  double next_event_time() const noexcept;

  /// True once every base edge's open event has been processed.
  bool exhausted() const noexcept { return cursor_ == events_.size(); }

  /// Edges opened (inserted into the dynamic graph) so far.
  std::uint64_t opened() const noexcept { return opened_; }

  /// Edge-open events blocked by a frozen endpoint component so far.
  std::uint64_t blocked() const noexcept { return blocked_; }

  /// The freezing rate alpha the schedule was drawn with.
  double alpha() const noexcept { return alpha_; }

  /// The base graph whose potential edges the schedule opens.
  const Graph& base() const noexcept { return *base_; }

 private:
  struct Event {
    double time;
    EdgeId base_edge;
  };

  const Graph* base_;
  double alpha_;
  std::vector<Event> events_;        // sorted by (time, base_edge)
  std::size_t cursor_ = 0;
  UnionFind components_;
  std::vector<double> freeze_time_;  // indexed by component root
  Rng merge_rng_;                    // private stream for merge redraws
  std::uint64_t opened_ = 0;
  std::uint64_t blocked_ = 0;
};

}  // namespace ewalk
