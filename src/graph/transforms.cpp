#include "graph/transforms.hpp"

#include <queue>
#include <utility>
#include <stdexcept>
#include <unordered_set>

namespace ewalk {

ContractionResult contract_set(const Graph& g, std::span<const Vertex> set) {
  if (set.empty()) throw std::invalid_argument("contract_set: empty set");
  std::vector<bool> in_set(g.num_vertices(), false);
  for (const Vertex v : set) {
    if (v >= g.num_vertices()) throw std::invalid_argument("contract_set: vertex out of range");
    if (in_set[v]) throw std::invalid_argument("contract_set: duplicate vertex in set");
    in_set[v] = true;
  }

  ContractionResult out;
  out.vertex_map.assign(g.num_vertices(), 0);
  // γ takes index 0; remaining vertices keep their relative order after it.
  out.contracted = 0;
  Vertex next = 1;
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    out.vertex_map[v] = in_set[v] ? 0 : next++;

  std::vector<Endpoints> edges;
  edges.reserve(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    edges.push_back(Endpoints{out.vertex_map[u], out.vertex_map[v]});
  }
  out.graph = Graph::from_edges(next, std::move(edges));
  return out;
}

SubdivisionResult subdivide_edges(const Graph& g, std::span<const EdgeId> chosen) {
  std::unordered_set<EdgeId> chosen_set;
  for (const EdgeId e : chosen) {
    if (e >= g.num_edges()) throw std::invalid_argument("subdivide_edges: edge out of range");
    if (!chosen_set.insert(e).second)
      throw std::invalid_argument("subdivide_edges: duplicate edge id");
  }

  SubdivisionResult out;
  std::vector<Endpoints> edges;
  edges.reserve(g.num_edges() + chosen.size());
  Vertex next = g.num_vertices();
  // Untouched edges first (preserving relative order), then the two halves
  // of each subdivided edge, in the order the edges were given.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!chosen_set.count(e)) edges.push_back(g.endpoints(e));
  }
  out.mid_vertices.reserve(chosen.size());
  for (const EdgeId e : chosen) {
    const auto [u, v] = g.endpoints(e);
    const Vertex mid = next++;
    out.mid_vertices.push_back(mid);
    edges.push_back(Endpoints{u, mid});
    edges.push_back(Endpoints{mid, v});
  }
  out.graph = Graph::from_edges(next, std::move(edges));
  return out;
}

Graph add_laziness_loops(const Graph& g) {
  std::vector<Endpoints> edges;
  edges.reserve(g.num_edges() * 2);
  for (EdgeId e = 0; e < g.num_edges(); ++e) edges.push_back(g.endpoints(e));
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::uint32_t d = g.degree(v);
    if (d == 0 || d % 2 != 0)
      throw std::invalid_argument("add_laziness_loops: all degrees must be even and positive");
    for (std::uint32_t i = 0; i < d / 2; ++i) edges.push_back(Endpoints{v, v});
  }
  return Graph::from_edges(g.num_vertices(), std::move(edges));
}

Graph double_edges(const Graph& g) {
  std::vector<Endpoints> edges;
  edges.reserve(2 * g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    edges.push_back(g.endpoints(e));
    edges.push_back(g.endpoints(e));
  }
  return Graph::from_edges(g.num_vertices(), std::move(edges));
}

Graph evenize_by_matching(const Graph& g) {
  std::vector<Endpoints> edges;
  edges.reserve(g.num_edges() + g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e) edges.push_back(g.endpoints(e));

  std::vector<bool> odd(g.num_vertices(), false);
  std::vector<Vertex> odd_list;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) % 2 != 0) {
      odd[v] = true;
      odd_list.push_back(v);
    }
  }

  // Greedy nearest-neighbour pairing: repeatedly BFS from an unpaired odd
  // vertex to its closest unpaired odd partner and duplicate the path.
  std::vector<Vertex> parent(g.num_vertices());
  std::vector<std::uint8_t> seen(g.num_vertices());
  for (const Vertex source : odd_list) {
    if (!odd[source]) continue;  // already paired
    odd[source] = false;
    std::fill(seen.begin(), seen.end(), 0);
    std::queue<Vertex> q;
    seen[source] = 1;
    q.push(source);
    Vertex match = source;
    while (!q.empty()) {
      const Vertex u = q.front();
      q.pop();
      if (u != source && odd[u]) {
        match = u;
        break;
      }
      for (const Slot& s : g.slots(u)) {
        if (!seen[s.neighbor]) {
          seen[s.neighbor] = 1;
          parent[s.neighbor] = u;
          q.push(s.neighbor);
        }
      }
    }
    if (match == source)
      throw std::invalid_argument("evenize_by_matching: odd vertex with no reachable partner");
    odd[match] = false;
    for (Vertex u = match; u != source; u = parent[u])
      edges.push_back(Endpoints{parent[u], u});
  }
  return Graph::from_edges(g.num_vertices(), std::move(edges));
}

}  // namespace ewalk
