// Graph transforms used by the paper's proofs (Section 2.2 and Lemma 16):
//
//   * contract_set — contract a vertex set S to a single vertex γ,
//     *retaining* loops and parallel edges, so that d(γ) = d(S) and
//     |E(Γ)| = |E(G)|. The paper uses this to reduce "visits to a vertex
//     set" to "visits to a single vertex" (eq. 15) and relies on the facts
//     that contraction does not decrease the eigenvalue gap (eq. 16) or the
//     conductance.
//   * subdivide_path_edges — insert a degree-2 vertex into each given edge
//     (Lemma 16 subdivides the 2ℓ edges of a leaf-to-leaf path xPy).
//   * add_laziness_loops — the loop-based realisation of the lazy walk:
//     adding d(v)/2 self-loops at every vertex v (even degrees required)
//     gives a graph whose SRW is exactly the lazy walk of G, with transition
//     eigenvalues (1 + λ_i)/2.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace ewalk {

struct ContractionResult {
  Graph graph;           ///< Γ = Γ(S)
  Vertex contracted;     ///< index of γ in Γ
  /// Mapping old vertex -> new vertex (members of S all map to `contracted`).
  std::vector<Vertex> vertex_map;
};

/// Contracts `set` (non-empty, no duplicates) to one vertex. Edges inside
/// the set become loops at γ; multi-edges are kept. Edge ids are preserved
/// in order (edge e of Γ corresponds to edge e of G).
ContractionResult contract_set(const Graph& g, std::span<const Vertex> set);

struct SubdivisionResult {
  Graph graph;
  /// For each input edge (in order), the new mid-vertex inserted into it.
  std::vector<Vertex> mid_vertices;
};

/// Subdivides each listed edge once (duplicate edge ids rejected). Other
/// edges are untouched. New vertices are appended after the original ids.
SubdivisionResult subdivide_edges(const Graph& g, std::span<const EdgeId> edges);

/// Adds d(v)/2 self-loops at every vertex (throws unless all degrees are
/// even and positive). The SRW on the result is the lazy walk of `g`.
Graph add_laziness_loops(const Graph& g);

// ---- Evenization (Section 5: "Removing the even degree constraint?") ----
//
// The paper's vertex-cover analysis needs even degrees (Observation 10).
// For odd-degree inputs, two natural repairs restore the hypothesis:

/// Doubles every edge (each edge id e of G becomes ids 2e, 2e+1 in the
/// result). All degrees double, hence become even; the E-process parity
/// argument applies to the resulting multigraph.
Graph double_edges(const Graph& g);

/// Pairs up the odd-degree vertices (their count is always even) and
/// duplicates the edges of a short path between the members of each pair —
/// a greedy T-join. Degrees along each duplicated path gain 2 at interior
/// vertices (parity preserved) and 1 at the two odd endpoints (making them
/// even). The result is an even-degree multigraph with m + O(Σ path length)
/// edges. Greedy nearest-neighbour pairing by BFS.
Graph evenize_by_matching(const Graph& g);

}  // namespace ewalk
