// Disjoint-set union (union by size, path halving) over vertex ids.
//
// This is the generation-path connectivity primitive: the random-regular
// generators maintain (or replay) a UnionFind over their edge lists so the
// keep/retry decision is known the moment the last edge lands — no Graph is
// built and no BFS runs for rejected attempts (see generators.cpp and the
// generation↔connectivity contract in docs/ARCHITECTURE.md).
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "graph/graph.hpp"

namespace ewalk {

/// Disjoint-set forest over {0, ..., n-1} with union by size and path
/// halving: near-O(1) amortised unite/find, 8 bytes per vertex.
class UnionFind {
 public:
  /// All n vertices start as singleton components.
  explicit UnionFind(Vertex n) { reset(n); }

  /// Reinitialises to n singleton components, reusing the backing storage.
  void reset(Vertex n) {
    parent_.resize(n);
    std::iota(parent_.begin(), parent_.end(), Vertex{0});
    size_.assign(n, 1);
    components_ = n;
  }

  /// Root of v's component (path halving keeps trees shallow).
  Vertex find(Vertex v) noexcept {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  /// Merges the components of a and b; returns true when they were distinct
  /// (i.e. the component count dropped by one).
  bool unite(Vertex a, Vertex b) noexcept {
    Vertex ra = find(a), rb = find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) {
      const Vertex t = ra;
      ra = rb;
      rb = t;
    }
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    --components_;
    return true;
  }

  /// True when a and b are currently in the same component.
  bool connected(Vertex a, Vertex b) noexcept { return find(a) == find(b); }

  /// Number of components remaining (n minus successful unite calls).
  Vertex components() const noexcept { return components_; }

 private:
  std::vector<Vertex> parent_;
  std::vector<Vertex> size_;
  Vertex components_ = 0;
};

/// True iff the multigraph (n vertices, `edges`) is connected — a single
/// union-find pass over the edge list with an early exit once one component
/// remains. Equivalent to is_connected(Graph::from_edges(n, edges)) but
/// needs no CSR build and no BFS; the generators use it to decide retries
/// before any Graph exists. n == 0 and n == 1 are connected; isolated
/// vertices (degree 0 with n > 1) make the graph disconnected, exactly as
/// the BFS check reports.
bool edge_list_connected(Vertex n, std::span<const Endpoints> edges);

}  // namespace ewalk
