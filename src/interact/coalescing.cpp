#include "interact/coalescing.hpp"

#include <stdexcept>

#include "walks/blue_choice.hpp"

namespace ewalk {

// ---- CoalescingRW ----------------------------------------------------------

CoalescingRW::CoalescingRW(const Graph& g, std::vector<Vertex> starts)
    : g_(&g), tokens_(g, starts), cover_(g.num_vertices(), g.num_edges()) {
  for (const Vertex v : starts) cover_.visit_vertex(v, 0);
}

void CoalescingRW::step(Rng& rng) {
  const TokenSystem::TokenId t = next_token_;
  ++steps_;
  const Vertex v = tokens_.position(t);
  const std::uint32_t d = g_->degree(v);
  if (d == 0) throw std::logic_error("CoalescingRW: stuck at isolated vertex");
  const Slot slot = g_->slot(v, static_cast<std::uint32_t>(rng.uniform(d)));
  cover_.visit_edge(slot.edge, steps_);
  const TokenSystem::TokenId other = tokens_.move(t, slot.neighbor, steps_);
  cover_.visit_vertex(slot.neighbor, steps_);
  if (other != TokenSystem::kNoToken) tokens_.kill(t, steps_);  // merge: mover dies
  next_token_ = tokens_.next_alive_after(t);
}

// ---- CoalescingEWalk -------------------------------------------------------

CoalescingEWalk::CoalescingEWalk(const Graph& g, std::vector<Vertex> starts,
                                 std::unique_ptr<UnvisitedEdgeRule> rule)
    : g_(&g), rule_(std::move(rule)),
      uniform_rule_(rule_ != nullptr && rule_->uniform_over_candidates()),
      tokens_(g, starts), cover_(g.num_vertices(), g.num_edges()), blue_(g) {
  if (!rule_) throw std::invalid_argument("CoalescingEWalk: rule is required");
  for (const Vertex v : starts) cover_.visit_vertex(v, 0);
}

void CoalescingEWalk::step(Rng& rng) {
  const TokenSystem::TokenId t = next_token_;
  ++steps_;
  const Vertex v = tokens_.position(t);
  Vertex to;
  if (blue_.blue_count(v) > 0) {
    const Slot chosen = choose_blue_slot(blue_, *g_, v, *rule_, uniform_rule_,
                                         cover_, steps_, rng);
    blue_.mark_edge_visited(*g_, chosen.edge);
    cover_.visit_edge(chosen.edge, steps_);
    to = chosen.neighbor;
    ++blue_steps_;
  } else {
    const std::uint32_t d = g_->degree(v);
    if (d == 0)
      throw std::logic_error("CoalescingEWalk: stuck at isolated vertex");
    // All incident edges are red here, so no visit_edge bookkeeping needed.
    const Slot slot = g_->slot(v, static_cast<std::uint32_t>(rng.uniform(d)));
    to = slot.neighbor;
    ++red_steps_;
  }
  const TokenSystem::TokenId other = tokens_.move(t, to, steps_);
  cover_.visit_vertex(to, steps_);
  if (other != TokenSystem::kNoToken) tokens_.kill(t, steps_);  // merge: mover dies
  next_token_ = tokens_.next_alive_after(t);
}

}  // namespace ewalk
