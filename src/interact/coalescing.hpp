// Coalescing-walk processes: tokens that merge on vertex collision.
//
// The classic coalescing random walk starts k tokens; when two occupy the
// same vertex they merge into one, and the coalescence time (population
// reaches 1) governs distributed protocols from leader election to the
// Malkhi coalescence protocol analysed by Loh–Lubetzky ("Stochastic
// coalescence in logarithmic time"). On the complete graph K_n the
// coalescence time is Θ(n) system steps (birthday-style pairwise meetings);
// on good expanders it is O(n polylog n) system steps — O(polylog n)
// parallel rounds.
//
// Two variants share the TokenSystem state:
//   * CoalescingRW    — each token is an independent SRW; the baseline the
//                       meeting-time literature speaks about.
//   * CoalescingEWalk — tokens step by the paper's unvisited-edge-preference
//                       rule (any UnvisitedEdgeRule from walks/rules.hpp)
//                       over ONE shared blue/red edge colouring, falling
//                       back to an SRW step when no incident blue edge
//                       remains — the E-process analogue of coalescence,
//                       asking whether edge-preferring exploration speeds up
//                       or delays meetings.
//
// Stepping model: one step() advances one token, round-robin over the
// *alive* population (system steps, matching MultiEProcess's convention).
// A token moving onto an occupied vertex merges into the occupant: the
// mover dies, the occupant keeps its id. The surviving population keeps
// walking after coalescence — the process degenerates to a single SRW /
// E-walk, so cover predicates still terminate if that is what the caller
// drives to.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/token_process.hpp"
#include "graph/graph.hpp"
#include "interact/token_system.hpp"
#include "util/rng.hpp"
#include "walks/blue_partition.hpp"
#include "walks/cover_state.hpp"
#include "walks/eprocess.hpp"

namespace ewalk {

/// k independent simple-random-walk tokens, merging on collision.
class CoalescingRW final : public TokenProcess {
 public:
  /// Start vertices must be distinct; k = starts.size() >= 1.
  CoalescingRW(const Graph& g, std::vector<Vertex> starts);

  void step(Rng& rng) override;
  /// Batched stepping (final class: the per-step calls devirtualise).
  void step_many(Rng& rng, std::uint64_t k) override {
    for (std::uint64_t i = 0; i < k; ++i) step(rng);
  }

  Vertex current() const override { return tokens_.position(next_token_); }
  std::uint64_t steps() const override { return steps_; }
  const CoverState& cover() const override { return cover_; }
  const Graph& graph() const override { return *g_; }
  std::string_view name() const override { return "coalescing-srw"; }

  std::uint32_t tokens_remaining() const override { return tokens_.tokens_alive(); }
  std::uint32_t initial_tokens() const override { return tokens_.initial_tokens(); }
  std::uint64_t first_meeting_step() const override {
    return tokens_.first_meeting_step();
  }
  std::uint64_t coalescence_step() const override {
    return tokens_.coalescence_step();
  }

  const TokenSystem& tokens() const { return tokens_; }

 private:
  const Graph* g_;
  TokenSystem tokens_;
  TokenSystem::TokenId next_token_ = 0;  // about to move; always alive
  std::uint64_t steps_ = 0;
  CoverState cover_;
};

/// k unvisited-edge-preferring tokens over one shared edge colouring,
/// merging on collision. The rule is owned (registry/experiment callers
/// hand over a fresh rule per process).
class CoalescingEWalk final : public TokenProcess {
 public:
  CoalescingEWalk(const Graph& g, std::vector<Vertex> starts,
                  std::unique_ptr<UnvisitedEdgeRule> rule);

  void step(Rng& rng) override;
  /// Batched stepping (final class: the per-step calls devirtualise).
  void step_many(Rng& rng, std::uint64_t k) override {
    for (std::uint64_t i = 0; i < k; ++i) step(rng);
  }

  Vertex current() const override { return tokens_.position(next_token_); }
  std::uint64_t steps() const override { return steps_; }
  const CoverState& cover() const override { return cover_; }
  const Graph& graph() const override { return *g_; }
  std::string_view name() const override { return "coalescing-ewalk"; }

  std::uint32_t tokens_remaining() const override { return tokens_.tokens_alive(); }
  std::uint32_t initial_tokens() const override { return tokens_.initial_tokens(); }
  std::uint64_t first_meeting_step() const override {
    return tokens_.first_meeting_step();
  }
  std::uint64_t coalescence_step() const override {
    return tokens_.coalescence_step();
  }

  const TokenSystem& tokens() const { return tokens_; }
  const UnvisitedEdgeRule& rule() const { return *rule_; }
  std::uint64_t blue_steps() const { return blue_steps_; }
  std::uint64_t red_steps() const { return red_steps_; }
  std::uint32_t blue_degree(Vertex v) const { return blue_.blue_count(v); }

 private:
  const Graph* g_;
  std::unique_ptr<UnvisitedEdgeRule> rule_;
  bool uniform_rule_;  // rule_->uniform_over_candidates(), hoisted once
  TokenSystem tokens_;
  TokenSystem::TokenId next_token_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t blue_steps_ = 0;
  std::uint64_t red_steps_ = 0;
  CoverState cover_;
  BluePartition blue_;  // shared colouring, as EProcess/MultiEProcess keep it
};

}  // namespace ewalk
