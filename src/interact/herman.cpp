#include "interact/herman.hpp"

#include <stdexcept>

namespace ewalk {

namespace {

// Derives the clockwise orientation of a cycle by walking it once from
// vertex 0, leaving each vertex via the edge it did not arrive on (edge ids
// disambiguate parallel edges). Throws unless g is a single cycle on all n
// vertices.
struct RingOrientation {
  std::vector<Vertex> successor;
  std::vector<EdgeId> successor_edge;
};

RingOrientation derive_ring(const Graph& g) {
  const Vertex n = g.num_vertices();
  if (n < 3) throw std::invalid_argument("HermanRing: need a cycle with n >= 3");
  for (Vertex v = 0; v < n; ++v)
    if (g.degree(v) != 2)
      throw std::invalid_argument("HermanRing: graph is not 2-regular");

  RingOrientation ring;
  ring.successor.assign(n, 0);
  ring.successor_edge.assign(n, 0);
  Vertex cur = 0;
  Slot out = g.slot(0, 0);
  Vertex count = 0;
  for (;;) {
    ring.successor[cur] = out.neighbor;
    ring.successor_edge[cur] = out.edge;
    ++count;
    const Vertex nxt = out.neighbor;
    if (nxt == 0) break;
    if (count > n)
      throw std::invalid_argument("HermanRing: graph is not a single cycle");
    const Slot a = g.slot(nxt, 0);
    const Slot b = g.slot(nxt, 1);
    if (a.edge == b.edge)  // self-loop occupies both slots: not a cycle
      throw std::invalid_argument("HermanRing: graph is not a single cycle");
    out = (a.edge == out.edge) ? b : a;
    cur = nxt;
  }
  if (count != n)
    throw std::invalid_argument("HermanRing: graph is not a single cycle");
  return ring;
}

}  // namespace

HermanRing::HermanRing(const Graph& g, std::vector<Vertex> starts)
    : g_(&g), tokens_(g, starts), cover_(g.num_vertices(), g.num_edges()) {
  if (starts.size() % 2 == 0)
    throw std::invalid_argument(
        "HermanRing: token count must be odd (parity invariant)");
  RingOrientation ring = derive_ring(g);
  successor_ = std::move(ring.successor);
  successor_edge_ = std::move(ring.successor_edge);
  for (const Vertex v : starts) cover_.visit_vertex(v, 0);
}

void HermanRing::step(Rng& rng) {
  const TokenSystem::TokenId t = next_token_;
  ++steps_;
  const Vertex v = tokens_.position(t);
  if (rng.bernoulli(0.5)) {
    // Token keeps its place this turn.
    cover_.visit_vertex(v, steps_);
  } else {
    const Vertex to = successor_[v];
    cover_.visit_edge(successor_edge_[v], steps_);
    const TokenSystem::TokenId other = tokens_.move(t, to, steps_);
    cover_.visit_vertex(to, steps_);
    if (other != TokenSystem::kNoToken) {
      // Pairwise annihilation: mover first, then the occupant.
      tokens_.kill(t, steps_);
      tokens_.kill(other, steps_);
      ++annihilations_;
    }
  }
  next_token_ = tokens_.next_alive_after(t);
}

}  // namespace ewalk
