// Herman's self-stabilising token protocol on a ring.
//
// Herman (1990): an odd number of tokens live on a cycle; each token, when
// scheduled, keeps its place with probability 1/2 and otherwise passes one
// position clockwise. Two tokens landing on the same vertex annihilate in
// pairs, so the population parity is invariant — starting odd, the system
// stabilises to exactly one token. The expected stabilisation time is
// O(n^2), with the worst case (the Herman-protocol conjecture, proved by
// Bruna et al.) being three equally spaced tokens at 4n^2/27.
//
// This implementation schedules one token per step() — round-robin over the
// alive population, the same asynchronous-stepping convention as the
// coalescing processes — and works on any 2-regular connected graph: the
// clockwise orientation is derived by walking the cycle once at
// construction, so relabelled cycles behave identically to cycle_graph(n).
#pragma once

#include <cstdint>
#include <vector>

#include "engine/token_process.hpp"
#include "graph/graph.hpp"
#include "interact/token_system.hpp"
#include "util/rng.hpp"
#include "walks/cover_state.hpp"

namespace ewalk {

class HermanRing final : public TokenProcess {
 public:
  /// `g` must be a cycle (2-regular, connected, n >= 3); `starts` must hold
  /// an odd number of distinct vertices — the parity invariant is what
  /// guarantees stabilisation to a single token.
  HermanRing(const Graph& g, std::vector<Vertex> starts);

  void step(Rng& rng) override;
  /// Batched stepping (final class: the per-step calls devirtualise).
  void step_many(Rng& rng, std::uint64_t k) override {
    for (std::uint64_t i = 0; i < k; ++i) step(rng);
  }

  Vertex current() const override { return tokens_.position(next_token_); }
  std::uint64_t steps() const override { return steps_; }
  const CoverState& cover() const override { return cover_; }
  const Graph& graph() const override { return *g_; }
  std::string_view name() const override { return "herman"; }

  std::uint32_t tokens_remaining() const override { return tokens_.tokens_alive(); }
  std::uint32_t initial_tokens() const override { return tokens_.initial_tokens(); }
  std::uint64_t first_meeting_step() const override {
    return tokens_.first_meeting_step();
  }
  std::uint64_t coalescence_step() const override {
    return tokens_.coalescence_step();
  }

  const TokenSystem& tokens() const { return tokens_; }
  /// Clockwise successor of v in the derived ring orientation.
  Vertex successor(Vertex v) const { return successor_[v]; }
  /// Annihilation events so far (each removes two tokens).
  std::uint64_t annihilations() const { return annihilations_; }

 private:
  const Graph* g_;
  std::vector<Vertex> successor_;
  std::vector<EdgeId> successor_edge_;
  TokenSystem tokens_;
  TokenSystem::TokenId next_token_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t annihilations_ = 0;
  CoverState cover_;
};

}  // namespace ewalk
