#include "interact/token_system.hpp"

#include <stdexcept>

namespace ewalk {

TokenSystem::TokenSystem(const Graph& g, const std::vector<Vertex>& starts)
    : TokenSystem(g.num_vertices(), starts) {}

TokenSystem::TokenSystem(Vertex n, const std::vector<Vertex>& starts)
    : positions_(starts),
      alive_(starts.size(), 1),
      occupant_(n, kNoToken),
      next_alive_(starts.size()),
      prev_alive_(starts.size()),
      initial_tokens_(static_cast<std::uint32_t>(starts.size())),
      alive_count_(static_cast<std::uint32_t>(starts.size())) {
  if (starts.empty())
    throw std::invalid_argument("TokenSystem: need at least one token");
  for (TokenId t = 0; t < initial_tokens_; ++t) {
    next_alive_[t] = (t + 1) % initial_tokens_;
    prev_alive_[t] = (t + initial_tokens_ - 1) % initial_tokens_;
  }
  for (TokenId t = 0; t < initial_tokens_; ++t) {
    const Vertex v = starts[t];
    if (v >= n)
      throw std::invalid_argument("TokenSystem: start vertex out of range");
    if (occupant_[v] != kNoToken)
      throw std::invalid_argument("TokenSystem: duplicate start vertex");
    occupant_[v] = t;
  }
  if (alive_count_ == 1) coalescence_step_ = 0;
}

TokenSystem::TokenId TokenSystem::move(TokenId t, Vertex to, std::uint64_t step) {
  const Vertex from = positions_[t];
  occupant_[from] = kNoToken;
  positions_[t] = to;
  const TokenId other = occupant_[to];
  if (other == kNoToken) {
    occupant_[to] = t;
    return kNoToken;
  }
  // Collision: the occupancy index keeps `other`; the caller resolves by
  // killing one (merge) or both (annihilation) before the next move.
  if (first_meeting_step_ == kNotCovered) first_meeting_step_ = step;
  ++collisions_;
  return other;
}

void TokenSystem::kill(TokenId t, std::uint64_t step) {
  alive_[t] = 0;
  --alive_count_;
  // Unlink from the alive ring; t's own pointers stay frozen so a cursor
  // standing on the just-killed token can still walk forward.
  next_alive_[prev_alive_[t]] = next_alive_[t];
  prev_alive_[next_alive_[t]] = prev_alive_[t];
  if (occupant_[positions_[t]] == t) occupant_[positions_[t]] = kNoToken;
  if (alive_count_ <= 1 && coalescence_step_ == kNotCovered)
    coalescence_step_ = step;
}

TokenSystem::TokenId TokenSystem::next_alive_after(TokenId after) const {
  if (alive_count_ == 0) throw std::logic_error("TokenSystem: no alive token");
  TokenId t = next_alive_[after];
  // Frozen pointers of dead tokens lead to strictly later-dying tokens, so
  // this terminates at an alive one (O(1) when `after` itself is alive).
  while (!alive_[t]) t = next_alive_[t];
  return t;
}

std::vector<Vertex> spread_token_starts(Vertex n, std::uint32_t k, Vertex base,
                                        bool distinct) {
  if (k == 0) throw std::invalid_argument("token count must be >= 1");
  if (distinct && k > n)
    throw std::invalid_argument("more tokens than vertices (starts must be distinct)");
  std::vector<Vertex> starts(k);
  for (std::uint32_t i = 0; i < k; ++i)
    starts[i] = static_cast<Vertex>(
        (base + static_cast<std::uint64_t>(i) * n / k) % n);
  return starts;
}

}  // namespace ewalk
