// Shared token-population state for interacting-walker processes.
//
// A TokenSystem tracks k tokens moving on a graph's vertices: token →
// position, a per-vertex occupancy index (which alive token sits there, if
// any) for O(1) collision detection, and the merge bookkeeping the
// coalescence observables are built from (alive count, first-meeting step,
// coalescence step, merge event count).
//
// The system is policy-free: move() reports the collision and the process
// decides what a collision means — CoalescingRW/CoalescingEWalk merge the
// mover into the occupant (one token dies), HermanRing annihilates both.
// Either way the population only shrinks, which is what the token-population
// predicates (engine/token_process.hpp) terminate on.
//
// Invariant maintained throughout: at most one alive token occupies any
// vertex. Processes that resolve every collision as soon as move() reports
// it (all three in src/interact/) keep this automatically.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "walks/cover_state.hpp"

namespace ewalk {

class TokenSystem {
 public:
  using TokenId = std::uint32_t;
  static constexpr TokenId kNoToken = static_cast<TokenId>(-1);

  /// Places tokens 0..starts.size()-1 on their start vertices. Start
  /// vertices must be distinct (one token per vertex is the invariant) and
  /// in range. At least one token is required.
  TokenSystem(const Graph& g, const std::vector<Vertex>& starts);

  /// Same, on a bare vertex set {0, ..., n-1}: the token state only needs
  /// the vertex count, so dynamic-graph processes (whose edge set evolves)
  /// construct it without a CSR.
  TokenSystem(Vertex n, const std::vector<Vertex>& starts);

  std::uint32_t initial_tokens() const { return initial_tokens_; }
  std::uint32_t tokens_alive() const { return alive_count_; }
  bool alive(TokenId t) const { return alive_[t] != 0; }
  Vertex position(TokenId t) const { return positions_[t]; }

  /// Alive token occupying v, or kNoToken.
  TokenId occupant(Vertex v) const { return occupant_[v]; }

  /// Moves alive token t to vertex `to`. If another alive token occupies
  /// `to`, the move is recorded as a *collision*: t is left co-located with
  /// the occupant (occupancy index keeps the occupant) and the occupant's id
  /// is returned; the caller must resolve the collision before any further
  /// move by killing the mover (merge) or the mover and then the occupant
  /// (annihilation) — killing only the occupant would leave the vertex's
  /// occupancy entry stale. Returns kNoToken when `to` was free. Records
  /// the first-meeting step on the first collision.
  TokenId move(TokenId t, Vertex to, std::uint64_t step);

  /// Removes token t from the population (merge loser or annihilation
  /// victim). Records the coalescence step when the population reaches 1 —
  /// and, for annihilating processes that can reach 0, when it reaches 0
  /// (the population never "passes through" 1 silently).
  void kill(TokenId t, std::uint64_t step);

  /// Step of the first token-token collision; kNotCovered until one happens.
  std::uint64_t first_meeting_step() const { return first_meeting_step_; }

  /// Step at which the population first reached <= 1; kNotCovered until then.
  std::uint64_t coalescence_step() const { return coalescence_step_; }

  /// Collisions resolved so far (merges + annihilations).
  std::uint64_t collisions() const { return collisions_; }

  /// Round-robin cursor over alive tokens: the alive token with the
  /// smallest id > `after` in circular id order. O(1) from an alive token
  /// (the alive population is kept on a doubly-linked ring); from a dead
  /// token it follows forward pointers frozen at death time — each hop
  /// reaches a strictly later-dying token, so the walk terminates at an
  /// alive one. Precondition: tokens_alive() >= 1.
  TokenId next_alive_after(TokenId after) const;

 private:
  std::vector<Vertex> positions_;
  std::vector<std::uint8_t> alive_;
  std::vector<TokenId> occupant_;  // per vertex
  // Circular doubly-linked list over alive tokens in id order; kill()
  // unlinks but leaves the dead token's own pointers as of death time.
  std::vector<TokenId> next_alive_;
  std::vector<TokenId> prev_alive_;
  std::uint32_t initial_tokens_;
  std::uint32_t alive_count_;
  std::uint64_t first_meeting_step_ = kNotCovered;
  std::uint64_t coalescence_step_ = kNotCovered;
  std::uint64_t collisions_ = 0;
};

/// Canonical start layout for k walkers on an n-vertex graph: evenly spread
/// from `base`. Throws if k == 0, and — when `distinct` (the TokenSystem
/// requirement; non-interacting processes like multi-eprocess pass false) —
/// if k > n, where distinct starts are impossible.
std::vector<Vertex> spread_token_starts(Vertex n, std::uint32_t k, Vertex base,
                                        bool distinct = true);

}  // namespace ewalk
