#include "serve/graph_store.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "analysis/girth.hpp"
#include "engine/registry.hpp"
#include "graph/algorithms.hpp"
#include "spectral/conductance.hpp"
#include "spectral/spectrum.hpp"
#include "util/rng.hpp"

namespace ewalk {

namespace {

// Run-level keys that can never be graph parameters: protocol fields, trial
// scheduling, process dispatch, and daemon flags. Used for open-ended
// families whose params_help does not enumerate a closed key set.
bool is_run_level_key(const std::string& key) {
  static const char* const kRunKeys[] = {
      "id",       "op",       "graph",     "generator", "process",
      "walk",     "trials",   "threads",   "seed",      "max-steps",
      "target",   "target-tokens",         "analysis",  "csv",
      "profile",  "sweep",    "max-trials", "ci-width", "bundle",
      "pin",      "help",     "port",      "stdin",     "cache-bytes",
      "inflight"};
  for (const char* k : kRunKeys)
    if (key == k) return true;
  return false;
}

// Extracts the "--key" tokens of a registry params_help string, e.g.
// "[--rule uniform|first] [--start V]" -> {"rule", "start"}.
std::vector<std::string> declared_keys(const std::string& params_help) {
  std::vector<std::string> keys;
  std::size_t pos = 0;
  while ((pos = params_help.find("--", pos)) != std::string::npos) {
    pos += 2;
    std::size_t end = pos;
    while (end < params_help.size() &&
           (std::isalnum(static_cast<unsigned char>(params_help[end])) ||
            params_help[end] == '-'))
      ++end;
    if (end > pos) keys.push_back(params_help.substr(pos, end - pos));
    pos = end;
  }
  return keys;
}

}  // namespace

std::uint64_t CachedGraph::bytes() const noexcept {
  const std::uint64_t n = graph_.num_vertices();
  const std::uint64_t m = graph_.num_edges();
  // offsets: (n+1) u32; slots: 2m Slot (8 bytes); edges: m Endpoints (8).
  return (n + 1) * 4 + 2 * m * 8 + m * 8 + sizeof(CachedGraph);
}

const GraphAnalysis& CachedGraph::analysis(bool* hit) const {
  std::lock_guard<std::mutex> lock(analysis_mutex_);
  if (analysis_) {
    if (hit) *hit = true;
    return *analysis_;
  }
  if (hit) *hit = false;
  GraphAnalysis a;
  const WalkSpectrum spectrum = estimate_spectrum(graph_);
  a.lambda2 = spectrum.lambda2;
  a.lambda_n = spectrum.lambda_n;
  a.gap = spectrum.gap();
  const ConductanceBounds phi = conductance_bounds_from_lambda2(spectrum.lambda2);
  a.conductance_lower = phi.lower;
  a.conductance_upper = phi.upper;
  a.girth = girth(graph_);
  analysis_ = a;
  return *analysis_;
}

ParamMap GraphStore::canonical_graph_params(const std::string& generator,
                                            const ParamMap& params) {
  std::string help;
  bool known = false;
  for (const auto& e : GeneratorRegistry::instance().entries())
    if (e.name == generator) {
      known = true;
      help = e.params_help;
      break;
    }
  ParamMap canonical;
  if (known && help.find('+') == std::string::npos) {
    for (const std::string& key : declared_keys(help))
      if (params.has(key)) canonical.set(key, params.get(key, ""));
  } else {
    // Open-ended family (pcf forwards to its base) or unknown generator:
    // keep everything that cannot be a run-level option.
    for (const auto& [key, value] : params.values())
      if (!is_run_level_key(key)) canonical.set(key, value);
  }
  return canonical;
}

std::string GraphStore::cache_key(const std::string& generator,
                                  const ParamMap& params, std::uint64_t seed) {
  std::ostringstream key;
  key << generator << "|seed=" << seed;
  // ParamMap iterates its std::map in key order — already canonical.
  const ParamMap canonical = canonical_graph_params(generator, params);
  for (const auto& [k, v] : canonical.values()) key << '|' << k << '=' << v;
  return key.str();
}

void GraphStore::touch(Entry& entry, const std::string& key) {
  lru_.erase(entry.lru_pos);
  lru_.push_front(key);
  entry.lru_pos = lru_.begin();
}

void GraphStore::evict_to_budget(const std::string& keep_key) {
  if (max_bytes_ == 0) return;
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    const std::string& victim = lru_.back();
    if (victim == keep_key) break;  // never evict the entry just inserted
    auto it = entries_.find(victim);
    bytes_ -= it->second.graph->bytes();
    entries_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::shared_ptr<const CachedGraph> GraphStore::acquire(
    const std::string& generator, const ParamMap& params, std::uint64_t seed,
    bool* hit) {
  const std::string key = cache_key(generator, params, seed);
  if (hit) *hit = true;  // every return path below except the build is a hit

  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (auto it = entries_.find(key); it != entries_.end()) {
      ++stats_.hits;
      touch(it->second, key);
      return it->second.graph;
    }
    auto build_it = building_.find(key);
    if (build_it == building_.end()) break;
    // Another request is constructing this key right now: wait for it and
    // count as a hit — this request triggers zero additional construction.
    std::shared_ptr<Build> build = build_it->second;
    ++stats_.coalesced;
    build_cv_.wait(lock, [&build] { return build->done; });
    if (build->failed) throw std::runtime_error(build->error);
    // The entry is now resident (or was already evicted under an extreme
    // budget — loop and re-check; worst case this thread rebuilds it).
  }

  auto build = std::make_shared<Build>();
  building_.emplace(key, build);
  ++stats_.misses;
  if (hit) *hit = false;
  lock.unlock();

  std::shared_ptr<const CachedGraph> cached;
  try {
    // The construction the CLI performs, bit for bit: a fresh Rng seeded
    // with the request seed, handed to the registry factory.
    Rng graph_rng(seed);
    Graph g = GeneratorRegistry::instance().create(generator, params, graph_rng);
    const bool connected = is_connected(g);
    cached = std::make_shared<CachedGraph>(std::move(g), connected);
  } catch (const std::exception& ex) {
    lock.lock();
    build->failed = true;
    build->error = ex.what();
    build->done = true;
    building_.erase(key);
    build_cv_.notify_all();
    throw;
  }

  lock.lock();
  lru_.push_front(key);
  entries_.emplace(key, Entry{cached, lru_.begin()});
  bytes_ += cached->bytes();
  evict_to_budget(key);
  build->done = true;
  building_.erase(key);
  build_cv_.notify_all();
  return cached;
}

void GraphStore::note_analysis(bool hit) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (hit)
    ++stats_.analysis_hits;
  else
    ++stats_.analysis_misses;
}

GraphStoreStats GraphStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  GraphStoreStats out = stats_;
  out.entries = entries_.size();
  out.bytes = bytes_;
  return out;
}

}  // namespace ewalk
