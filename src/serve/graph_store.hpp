// GraphStore — the serving layer's cache of constructed graphs and their
// expensive analysis results.
//
// A long-lived daemon amortises the two costs a one-shot CLI run pays every
// time: graph construction (dominant at paper-range n) and spectral/girth
// analysis (superlinear). The store caches both, keyed by
// (generator, canonical params, seed) — exactly the inputs that determine
// the constructed graph bit-for-bit, because every generator draws only
// from Rng(seed) and reads only its declared parameters.
//
// Canonical params: the request's parameter bag is filtered down to the
// keys the generator's registry entry declares in its params_help (--n,
// --r, ...), so two requests differing only in walk-level parameters
// (--rule, --tokens) hit the same cached instance. Open-ended families
// whose help ends in "+ base family params" (pcf) fall back to the full
// bag minus run-level keys — over-inclusive keys can only lower the hit
// rate, never alias two different graphs.
//
// Lifetime: acquire() hands out shared_ptr<const CachedGraph>; eviction
// drops the store's reference only, so in-flight requests keep their
// instance alive until they finish. Eviction is LRU under a byte budget
// (--cache-bytes): each insert evicts least-recently-used entries until
// the estimated resident bytes fit (the newest entry is never evicted —
// a single over-budget graph is served and retained rather than thrashed).
//
// Concurrency: one mutex guards the map; construction happens OUTSIDE the
// lock with single-flight coalescing — concurrent requests for one
// uncached key build it once, the rest wait on a condition variable and
// count as hits (served with zero additional construction). Lazy analysis
// is per-entry, protected by the entry's own mutex.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "engine/params.hpp"
#include "graph/graph.hpp"

namespace ewalk {

/// Cached expensive analysis of a graph: the spectral quantities and girth
/// the paper's bounds consume, computed lazily once per cached instance.
struct GraphAnalysis {
  double lambda2 = 0.0;            ///< second-largest eigenvalue of P
  double lambda_n = 0.0;           ///< smallest eigenvalue of P
  double gap = 0.0;                ///< 1 - max(lambda2, |lambda_n|)
  double conductance_lower = 0.0;  ///< Cheeger lower bound from lambda2
  double conductance_upper = 0.0;  ///< Cheeger upper bound from lambda2
  std::uint32_t girth = 0;         ///< kInfiniteGirth when acyclic
};

/// One cached graph instance: the immutable Graph, its construction key,
/// connectivity (computed once at build), and the lazily computed analysis.
class CachedGraph {
 public:
  /// Wraps a constructed graph. `connected` is computed by the store at
  /// build time so per-request connectivity checks cost nothing.
  CachedGraph(Graph graph, bool connected)
      : graph_(std::move(graph)), connected_(connected) {}

  /// The immutable graph every request with this key runs on.
  const Graph& graph() const noexcept { return graph_; }
  /// Whether the graph is connected (decided once, at construction).
  bool connected() const noexcept { return connected_; }

  /// Estimated resident bytes of the CSR (offsets + slots + edge list);
  /// what the store's byte budget meters.
  std::uint64_t bytes() const noexcept;

  /// The analysis block, computed on first call (spectral power iteration,
  /// Cheeger bounds, exact girth — the girth sweep is O(n(n+m)), so ask
  /// only when the response needs it) and cached for every later call.
  /// `hit` (optional) reports whether this call was served from cache.
  const GraphAnalysis& analysis(bool* hit = nullptr) const;

 private:
  Graph graph_;
  bool connected_ = false;
  mutable std::mutex analysis_mutex_;
  mutable std::optional<GraphAnalysis> analysis_;
};

/// Monotone counters describing a GraphStore's behaviour; snapshot via
/// GraphStore::stats(). Single-flight waiters count as hits (they were
/// served without construction), so hit/miss totals are deterministic for
/// a fixed request multiset regardless of arrival interleaving.
struct GraphStoreStats {
  std::uint64_t hits = 0;            ///< served from cache (incl. coalesced waits)
  std::uint64_t misses = 0;          ///< required a construction
  std::uint64_t evictions = 0;       ///< entries dropped by the byte budget
  std::uint64_t coalesced = 0;       ///< hits that waited on an in-flight build
  std::uint64_t analysis_hits = 0;   ///< analysis served from cache
  std::uint64_t analysis_misses = 0; ///< analysis computed
  std::uint64_t entries = 0;         ///< resident graphs right now
  std::uint64_t bytes = 0;           ///< estimated resident bytes right now
};

/// The serving layer's graph cache (see file comment for the contract).
class GraphStore {
 public:
  /// A store keeping at most ~`max_bytes` of graph data resident
  /// (0 = unlimited, nothing is ever evicted).
  explicit GraphStore(std::uint64_t max_bytes = 0) : max_bytes_(max_bytes) {}

  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  /// Returns the cached instance for (generator, canonical subset of
  /// `params`, seed), constructing it with Rng(seed) — bit-identical to the
  /// `ewalk` CLI's construction — on a miss. Concurrent callers with one
  /// uncached key construct once (single-flight); construction failures
  /// propagate to every coalesced waiter. `hit` (optional) reports whether
  /// THIS call was served without performing a construction (coalesced
  /// waits count as hits). Throws what the generator throws (unknown
  /// family, bad params).
  std::shared_ptr<const CachedGraph> acquire(const std::string& generator,
                                             const ParamMap& params,
                                             std::uint64_t seed,
                                             bool* hit = nullptr);

  /// Counter snapshot (consistent under the store mutex).
  GraphStoreStats stats() const;

  /// Folds one analysis lookup into the counters: execute_run reports
  /// whether the entry's lazy analysis block was already computed.
  void note_analysis(bool hit);

  /// The configured byte budget (0 = unlimited).
  std::uint64_t max_bytes() const noexcept { return max_bytes_; }

  /// The canonical cache key for (generator, params, seed) — the generator
  /// name, the canonicalised parameter subset, and the seed, joined into
  /// one printable string. Exposed for tests and log lines.
  static std::string cache_key(const std::string& generator,
                               const ParamMap& params, std::uint64_t seed);

  /// The canonical parameter subset of `params` for `generator`: the keys
  /// its registry entry declares (parsed from params_help), or the full
  /// bag minus run-level keys for open-ended families. Unknown generators
  /// canonicalise to the full non-run bag (the lookup error surfaces at
  /// construction, where it can name suggestions).
  static ParamMap canonical_graph_params(const std::string& generator,
                                         const ParamMap& params);

 private:
  struct Entry {
    std::shared_ptr<const CachedGraph> graph;
    std::list<std::string>::iterator lru_pos;  // position in lru_
  };
  struct Build {  // single-flight state for one in-progress construction
    bool done = false;
    bool failed = false;
    std::string error;
  };

  void touch(Entry& entry, const std::string& key);
  void evict_to_budget(const std::string& keep_key);

  const std::uint64_t max_bytes_;
  mutable std::mutex mutex_;
  std::condition_variable build_cv_;
  std::unordered_map<std::string, Entry> entries_;
  std::unordered_map<std::string, std::shared_ptr<Build>> building_;
  std::list<std::string> lru_;  // front = most recently used
  std::uint64_t bytes_ = 0;
  GraphStoreStats stats_;
};

}  // namespace ewalk
