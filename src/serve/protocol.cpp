#include "serve/protocol.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "engine/registry.hpp"
#include "util/cli.hpp"

namespace ewalk {

namespace {

// ---- JSON parsing ----------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("bad JSON at byte " + std::to_string(pos_) +
                                ": " + message);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t len = 0;
    while (literal[len] != '\0') ++len;
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      value <<= 4;
      if (c >= '0' && c <= '9')
        value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        fail("bad \\u escape");
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need the pair
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const std::uint32_t lo = parse_hex4();
              if (lo < 0xDC00 || lo > 0xDFFF) fail("bad surrogate pair");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              fail("unpaired surrogate");
            }
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      fail("bad number");
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("bad number fraction");
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("bad number exponent");
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.raw = text_.substr(start, pos_ - start);
    return value;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    JsonValue value;
    switch (c) {
      case '{': {
        value.type = JsonValue::Type::kObject;
        ++pos_;
        skip_ws();
        if (peek() == '}') { ++pos_; return value; }
        for (;;) {
          skip_ws();
          std::string key = parse_string();
          skip_ws();
          expect(':');
          value.object.emplace_back(std::move(key), parse_value());
          skip_ws();
          if (peek() == ',') { ++pos_; continue; }
          expect('}');
          return value;
        }
      }
      case '[': {
        value.type = JsonValue::Type::kArray;
        ++pos_;
        skip_ws();
        if (peek() == ']') { ++pos_; return value; }
        for (;;) {
          value.array.push_back(parse_value());
          skip_ws();
          if (peek() == ',') { ++pos_; continue; }
          expect(']');
          return value;
        }
      }
      case '"':
        value.type = JsonValue::Type::kString;
        value.string = parse_string();
        return value;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        value.type = JsonValue::Type::kBool;
        value.boolean = true;
        return value;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        value.type = JsonValue::Type::kBool;
        value.boolean = false;
        return value;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        value.type = JsonValue::Type::kNull;
        return value;
      default:
        return parse_number();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---- Request field dispatch ------------------------------------------------

// Every top-level field a request may carry: the protocol controls (op, id,
// params) plus the scalar run fields, which mirror the CLI flags
// one-for-one including the alias spellings util/cli canonicalises.
const std::vector<std::string>& known_request_fields() {
  static const std::vector<std::string> kFields = {
      "op",     "id",      "params",  "graph",   "generator",
      "process", "walk",   "trials",  "threads", "seed",
      "max-steps", "target", "target-tokens", "bundle", "analysis"};
  return kFields;
}

const std::vector<std::string>& known_ops() {
  static const std::vector<std::string> kOps = {"run", "ping", "stats",
                                                "drain", "shutdown"};
  return kOps;
}

[[noreturn]] void fail_unknown(const std::string& kind, const std::string& name,
                               const std::vector<std::string>& known) {
  std::ostringstream message;
  message << "unknown " << kind << ": " << name;
  const auto near = nearest_names(name, known);
  if (!near.empty()) {
    message << " (did you mean:";
    for (const auto& n : near) message << ' ' << n;
    message << "?)";
  }
  throw std::invalid_argument(message.str());
}

// ---- Serialization helpers -------------------------------------------------

void append_samples(std::ostringstream& out, const char* key,
                    const std::vector<double>& samples) {
  out << ",\"" << key << "\":[";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i != 0) out << ',';
    out << format_json_double(samples[i]);
  }
  out << ']';
}

void append_stats(std::ostringstream& out, const char* key,
                  const SummaryStats& stats) {
  out << ",\"" << key << "\":{\"mean\":" << format_json_double(stats.mean)
      << ",\"stddev\":" << format_json_double(stats.stddev)
      << ",\"std_error\":" << format_json_double(stats.std_error)
      << ",\"min\":" << format_json_double(stats.min)
      << ",\"max\":" << format_json_double(stats.max)
      << ",\"median\":" << format_json_double(stats.median) << '}';
}

}  // namespace

std::string JsonValue::as_param_string() const {
  switch (type) {
    case Type::kString: return string;
    case Type::kNumber: return raw;
    case Type::kBool: return boolean ? "true" : "false";
    case Type::kNull:
    case Type::kObject:
    case Type::kArray:
      break;
  }
  throw std::invalid_argument("field value must be a string, number, or bool");
}

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

ServerRequest parse_request(const std::string& line) {
  const JsonValue root = parse_json(line);
  if (root.type != JsonValue::Type::kObject)
    throw std::invalid_argument("request must be a JSON object");

  ServerRequest request;
  ParamMap fields;
  for (const auto& [key, value] : root.object) {
    if (key == "op") {
      request.op = value.as_param_string();
      continue;
    }
    if (key == "params") {
      if (value.type != JsonValue::Type::kObject)
        throw std::invalid_argument("\"params\" must be a JSON object");
      for (const auto& [pkey, pvalue] : value.object)
        fields.set(pkey, pvalue.as_param_string());
      continue;
    }
    bool known = false;
    for (const auto& name : known_request_fields())
      if (name == key) { known = true; break; }
    if (!known) fail_unknown("request field", key, known_request_fields());
    fields.set(key, value.as_param_string());
  }

  bool op_known = false;
  for (const auto& op : known_ops())
    if (op == request.op) { op_known = true; break; }
  if (!op_known) fail_unknown("op", request.op, known_ops());

  request.id = fields.get("id", "");
  if (request.op == "run") {
    canonicalize_run_params(fields);
    request.run = run_request_from_params(fields);
  }
  return request;
}

std::string serialize_request(const ServerRequest& request) {
  std::ostringstream out;
  out << "{\"op\":" << json_quote(request.op);
  if (!request.id.empty()) out << ",\"id\":" << json_quote(request.id);
  if (request.op != "run") {
    out << '}';
    return out.str();
  }
  const RunRequest& run = request.run;
  out << ",\"graph\":" << json_quote(run.graph)
      << ",\"process\":" << json_quote(run.process)
      << ",\"trials\":" << run.trials << ",\"threads\":" << run.threads
      << ",\"seed\":" << run.seed << ",\"max-steps\":" << run.max_steps
      << ",\"target\":" << json_quote(run_target_name(run.target))
      << ",\"target-tokens\":" << run.target_tokens
      << ",\"bundle\":" << run.bundle_width
      << ",\"analysis\":" << (run.analysis ? "true" : "false");
  // Everything else in the bag is a generator/process parameter; the scalar
  // fields above were folded into the map by parse_request, so skip them.
  std::ostringstream params;
  bool first = true;
  for (const auto& [key, value] : run.params.values()) {
    bool scalar = key == "id";
    for (const auto& name : known_request_fields())
      if (name == key) { scalar = true; break; }
    if (scalar) continue;
    params << (first ? "" : ",") << json_quote(key) << ':' << json_quote(value);
    first = false;
  }
  if (!first) out << ",\"params\":{" << params.str() << '}';
  out << '}';
  return out.str();
}

std::string format_json_double(double d) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", d);
  return buffer;
}

std::string json_quote(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string serialize_queued(const std::string& id, std::uint64_t ticket) {
  std::ostringstream out;
  out << "{\"id\":" << json_quote(id) << ",\"status\":\"queued\",\"ticket\":"
      << ticket << '}';
  return out.str();
}

std::string serialize_run_result(const RunResult& result) {
  if (!result.ok) return serialize_error(result.id, result.error);
  std::ostringstream out;
  out << "{\"id\":" << json_quote(result.id) << ",\"status\":\"ok\""
      << ",\"target\":" << json_quote(run_target_name(result.target));
  if (result.graph) {
    out << ",\"graph\":{\"vertices\":" << result.graph->graph().num_vertices()
        << ",\"edges\":" << result.graph->graph().num_edges()
        << ",\"connected\":" << (result.graph->connected() ? "true" : "false")
        << ",\"cache_hit\":" << (result.graph_cache_hit ? "true" : "false")
        << '}';
  }
  out << ",\"trials\":" << result.samples.size()
      << ",\"budget\":" << result.budget
      << ",\"unfinished\":" << result.unfinished
      << ",\"total_steps\":" << format_json_double(result.total_steps);
  append_samples(out, "samples", result.samples);
  append_stats(out, "stats", result.stats);
  if (result.target == RunTarget::kCoalescence) {
    append_samples(out, "meeting_samples", result.meeting_samples);
    append_stats(out, "meeting_stats", result.meeting_stats);
  }
  if (result.analysis) {
    const GraphAnalysis& a = *result.analysis;
    out << ",\"analysis\":{\"lambda2\":" << format_json_double(a.lambda2)
        << ",\"lambda_n\":" << format_json_double(a.lambda_n)
        << ",\"gap\":" << format_json_double(a.gap)
        << ",\"conductance_lower\":" << format_json_double(a.conductance_lower)
        << ",\"conductance_upper\":" << format_json_double(a.conductance_upper)
        << ",\"girth\":" << a.girth
        << ",\"cache_hit\":" << (result.analysis_cache_hit ? "true" : "false")
        << '}';
  }
  out << ",\"wall_seconds\":" << format_json_double(result.wall_seconds) << '}';
  return out.str();
}

std::string serialize_error(const std::string& id, const std::string& message) {
  std::ostringstream out;
  out << "{\"id\":" << json_quote(id) << ",\"status\":\"error\",\"error\":"
      << json_quote(message) << '}';
  return out.str();
}

std::string serialize_stats(const std::string& id, const GraphStoreStats& stats,
                            std::uint64_t inflight, std::uint64_t completed) {
  std::ostringstream out;
  out << "{\"id\":" << json_quote(id) << ",\"status\":\"stats\""
      << ",\"cache\":{\"hits\":" << stats.hits << ",\"misses\":" << stats.misses
      << ",\"evictions\":" << stats.evictions
      << ",\"coalesced\":" << stats.coalesced
      << ",\"analysis_hits\":" << stats.analysis_hits
      << ",\"analysis_misses\":" << stats.analysis_misses
      << ",\"entries\":" << stats.entries << ",\"bytes\":" << stats.bytes
      << '}' << ",\"inflight\":" << inflight << ",\"completed\":" << completed
      << '}';
  return out.str();
}

std::string serialize_status(const std::string& id, const std::string& status) {
  std::ostringstream out;
  out << "{\"id\":" << json_quote(id) << ",\"status\":" << json_quote(status)
      << '}';
  return out.str();
}

}  // namespace ewalk
