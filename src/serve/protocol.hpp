// The ewalkd wire protocol: line-delimited JSON requests and responses.
//
// One request per line, one JSON object per request; responses are likewise
// single-line JSON objects tagged with the request's `id`. The codec is
// hand-rolled (the toolchain ships no JSON library and the repo takes no
// dependencies): a small recursive-descent parser for the request side and
// deterministic serializers for the response side.
//
// Request shape (all fields optional except a run's registry names resolve):
//
//   {"op":"run","id":"r1","graph":"regular","process":"eprocess",
//    "trials":5,"seed":42,"params":{"n":"256","r":"3"}}
//
// `op` defaults to "run". Scalar run fields mirror the `ewalk` CLI flags
// one-for-one (including the --walk/--generator aliases, folded by the same
// canonical table in util/cli); extra generator/process parameters ride in
// the nested "params" object. Unknown top-level fields are rejected with
// nearest-match suggestions — a typo'd "trails" must not silently run 5
// trials. Numbers keep their literal spelling end-to-end (a 64-bit seed
// never transits a double).
//
// Determinism: serializers emit fields in a fixed order and format doubles
// with %.17g (shortest round-trip not needed; 17 significant digits is
// bit-faithful), so byte-identical results serialize to byte-identical
// lines — golden-file diffs in CI depend on this.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/graph_store.hpp"
#include "serve/request.hpp"

namespace ewalk {

/// A parsed JSON value. Numbers keep their source spelling (`raw`) so
/// integer fidelity survives (seeds are 64-bit; a double round-trip would
/// corrupt them); object member order is preserved for faithful round-trips.
struct JsonValue {
  /// The JSON value kinds.
  enum class Type : std::uint8_t {
    kNull,    ///< the literal null
    kBool,    ///< true / false
    kNumber,  ///< any number; the literal text is kept in `raw`
    kString,  ///< a decoded string
    kObject,  ///< member list in source order
    kArray    ///< element list
  };
  Type type = Type::kNull;           ///< which kind this value is
  bool boolean = false;                  ///< valid for kBool
  std::string raw;                       ///< literal token for kNumber
  std::string string;                    ///< decoded text for kString
  std::vector<std::pair<std::string, JsonValue>> object;  ///< kObject members
  std::vector<JsonValue> array;          ///< kArray elements

  /// The value as the string a ParamMap would hold: the decoded string, the
  /// number literal, or "true"/"false". Throws for null/object/array.
  std::string as_param_string() const;
};

/// Parses one complete JSON value from `text` (trailing whitespace allowed,
/// trailing garbage rejected). Throws std::invalid_argument with a byte
/// offset on malformed input.
JsonValue parse_json(const std::string& text);

/// One decoded protocol request.
struct ServerRequest {
  /// "run" (default), "ping", "stats", "drain", or "shutdown".
  std::string op = "run";
  /// Echo tag for matching responses to requests ("" if absent).
  std::string id;
  /// The run configuration; meaningful only when op == "run".
  RunRequest run;
};

/// Parses one request line: JSON object -> ServerRequest. Scalar run fields
/// and the nested "params" object are folded into one ParamMap (aliases
/// canonicalised via util/cli's shared table), then validated by
/// run_request_from_params. Unknown ops and unknown top-level fields throw
/// std::invalid_argument with nearest-match suggestions.
ServerRequest parse_request(const std::string& line);

/// Serializes a request back to a canonical protocol line (fields in fixed
/// order, params sorted). parse_request(serialize_request(r)) reproduces
/// `r` — the round-trip property the protocol tests pin.
std::string serialize_request(const ServerRequest& request);

/// `d` formatted with %.17g — enough digits that parsing the text recovers
/// the exact bits, so serialized samples are a faithful determinism witness.
std::string format_json_double(double d);

/// `text` as a quoted JSON string (control characters escaped).
std::string json_quote(const std::string& text);

/// The immediate acknowledgement for an accepted run:
/// {"id":..,"status":"queued","ticket":N}.
std::string serialize_queued(const std::string& id, std::uint64_t ticket);

/// A completed run as one response line: status "ok" with the samples,
/// summary stats, graph block (size, connectivity, cache hit), and the
/// optional coalescence/analysis blocks — or status "error" with the
/// message when the run failed.
std::string serialize_run_result(const RunResult& result);

/// A request-level failure (parse error, admission rejection):
/// {"id":..,"status":"error","error":msg}.
std::string serialize_error(const std::string& id, const std::string& message);

/// A stats snapshot: cache counters plus the server's queue gauges.
std::string serialize_stats(const std::string& id, const GraphStoreStats& stats,
                            std::uint64_t inflight, std::uint64_t completed);

/// A bare {"id":..,"status":status} line (pong, drained, bye).
std::string serialize_status(const std::string& id, const std::string& status);

}  // namespace ewalk
