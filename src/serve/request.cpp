#include "serve/request.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "covertime/experiment.hpp"
#include "engine/budget.hpp"
#include "engine/driver.hpp"
#include "engine/registry.hpp"
#include "engine/token_process.hpp"
#include "graph/algorithms.hpp"
#include "util/timer.hpp"

namespace ewalk {

RunTarget parse_run_target(const std::string& name) {
  if (name.empty() || name == "auto") return RunTarget::kAuto;
  if (name == "vertices") return RunTarget::kVertices;
  if (name == "edges") return RunTarget::kEdges;
  if (name == "coalescence") return RunTarget::kCoalescence;
  throw std::invalid_argument("bad --target: '" + name +
                              "' (want vertices, edges, or coalescence)");
}

std::string run_target_name(RunTarget target) {
  switch (target) {
    case RunTarget::kVertices: return "vertices";
    case RunTarget::kEdges: return "edges";
    case RunTarget::kCoalescence: return "coalescence";
    case RunTarget::kAuto: break;
  }
  return "auto";
}

RunRequest run_request_from_params(const ParamMap& params) {
  RunRequest req;
  req.id = params.get("id", "");
  req.graph = params.get("graph", "regular");
  req.process = params.get("process", "eprocess");
  req.params = params;
  const std::int64_t trials = params.get_int("trials", 5);
  if (trials <= 0) throw std::invalid_argument("--trials must be >= 1");
  req.trials = static_cast<std::uint32_t>(trials);
  const std::int64_t threads = params.get_int("threads", 1);
  if (threads < 0)
    throw std::invalid_argument(
        "--threads must be >= 0 (0 = all hardware threads)");
  req.threads = static_cast<std::uint32_t>(threads);
  req.seed = params.get_u64("seed", 1);
  req.max_steps = params.get_u64("max-steps", 0);
  req.target = parse_run_target(params.get("target", ""));
  req.target_tokens =
      static_cast<std::uint32_t>(params.get_u64("target-tokens", 1));
  req.bundle_width = static_cast<std::uint32_t>(params.get_u64("bundle", 1));
  req.analysis = params.get_bool("analysis", false);
  return req;
}

namespace {

// The trial phase shared by every target: one registry-constructed process
// per trial on the shared graph, driven to the resolved target — the exact
// loop tools/ewalk_cli.cpp ran before this module existed, so CLI and
// server samples are bit-identical by construction.
void run_request_trials(const RunRequest& req, const Graph& g,
                        RunResult& out) {
  const bool coalescence = out.target == RunTarget::kCoalescence;
  const bool edges = out.target == RunTarget::kEdges;
  const std::uint64_t budget =
      req.max_steps != 0 ? req.max_steps : default_step_budget(g);
  out.budget = budget;
  std::vector<double> steps(req.trials, 0.0);
  std::vector<double> meetings(req.trials, 0.0);
  std::atomic<std::uint32_t> unfinished{0};
  WallTimer timer;
  out.samples = run_trials(
      req.trials, req.threads, req.seed,
      [&](Rng& rng, std::uint32_t t) -> double {
        auto walk =
            ProcessRegistry::instance().create(req.process, g, req.params, rng);
        bool done;
        std::uint64_t result_step;
        if (coalescence) {
          auto& tokens = dynamic_cast<TokenProcess&>(*walk);
          done = run_until_process(tokens, rng,
                                   TokensAtMost{req.target_tokens}, budget);
          result_step = req.target_tokens <= 1 ? tokens.coalescence_step()
                                               : tokens.steps();
          const std::uint64_t met = tokens.first_meeting_step();
          meetings[t] = static_cast<double>(met != kNotCovered ? met : budget);
        } else if (edges) {
          done = run_until(*walk, rng, EdgesCovered{}, budget);
          result_step = walk->cover().edge_cover_step();
        } else {
          done = run_until(*walk, rng, VertexCovered{}, budget);
          result_step = walk->cover().vertex_cover_step();
        }
        if (!done) unfinished.fetch_add(1, std::memory_order_relaxed);
        steps[t] = static_cast<double>(walk->steps());
        // Unfinished trials contribute the budget, as measure_cover does.
        return static_cast<double>(done ? result_step : budget);
      });
  out.wall_seconds = timer.seconds();
  out.stats = summarize(out.samples);
  out.unfinished = unfinished.load();
  out.step_samples = std::move(steps);
  out.total_steps = std::accumulate(out.step_samples.begin(),
                                    out.step_samples.end(), 0.0);
  if (coalescence) {
    out.meeting_samples = std::move(meetings);
    out.meeting_stats = summarize(out.meeting_samples);
  }
}

}  // namespace

RunResult execute_run(const RunRequest& req, GraphStore* store) {
  RunResult out;
  out.id = req.id;
  try {
    if (req.trials == 0) throw std::invalid_argument("--trials must be >= 1");
    // Validate both registry names before touching the graph cache, so a
    // typo'd request fails fast with nearest-match suggestions and costs no
    // construction (store counters stay meaningful).
    ProcessRegistry::instance().at(req.process);
    GeneratorRegistry::instance().at(req.graph);

    std::shared_ptr<const CachedGraph> cached;
    if (store != nullptr) {
      cached = store->acquire(req.graph, req.params, req.seed,
                              &out.graph_cache_hit);
    } else {
      Rng graph_rng(req.seed);
      Graph g =
          GeneratorRegistry::instance().create(req.graph, req.params, graph_rng);
      const bool connected = is_connected(g);
      cached = std::make_shared<CachedGraph>(std::move(g), connected);
    }
    out.graph = cached;
    const Graph& g = cached->graph();

    // Resolve the target from a probe construction, exactly as the CLI did:
    // token processes default to coalescence, and a coalescence target on a
    // non-token process is rejected on this thread, not inside a worker.
    RunTarget target = req.target;
    {
      Rng probe_rng(req.seed);
      auto probe =
          ProcessRegistry::instance().create(req.process, g, req.params, probe_rng);
      const bool is_token = dynamic_cast<TokenProcess*>(probe.get()) != nullptr;
      if (target == RunTarget::kAuto)
        target = is_token ? RunTarget::kCoalescence : RunTarget::kVertices;
      if (target == RunTarget::kCoalescence && !is_token)
        throw std::invalid_argument(
            "--target coalescence needs an interacting-token process");
    }
    out.target = target;

    run_request_trials(req, g, out);

    if (req.analysis) {
      bool hit = false;
      out.analysis = cached->analysis(&hit);
      out.analysis_cache_hit = hit;
      if (store != nullptr) store->note_analysis(hit);
    }
    out.ok = true;
  } catch (const std::exception& ex) {
    out.ok = false;
    out.error = ex.what();
  }
  return out;
}

}  // namespace ewalk
