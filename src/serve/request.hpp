// RunRequest / RunResult — the one typed entry point for running a walk
// experiment, shared by the `ewalk` CLI, the `ewalkd` server, and the
// programmatic harnesses.
//
// Before this module the three surfaces drifted: the CLI plumbed an ad-hoc
// flag map, measure_cover took CoverExperimentConfig, measure_coalescence
// took CoalescenceExperimentConfig, and a server would have needed a fourth
// shape. RunRequest is now the single config struct all of them construct;
// the experiment harness accepts it directly (covertime/experiment.hpp) and
// the old config structs survive one release as deprecated forwarders.
//
// Determinism contract: execute_run(req) returns samples that are
// bit-identical to the equivalent `ewalk` CLI invocation for any cache
// state, thread count, and request arrival order. The graph is built with
// Rng(req.seed) (or fetched from a GraphStore, whose entries were built the
// same way), and trial t's stream is a pure function of (req.seed, t) via
// run_trials — nothing depends on scheduling.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/params.hpp"
#include "serve/graph_store.hpp"
#include "util/stats.hpp"

namespace ewalk {

/// What a run should drive each trial to. kAuto resolves like the CLI: a
/// token process (coalescing-*, herman) targets coalescence, everything
/// else vertex cover.
enum class RunTarget : std::uint8_t {
  kAuto,         ///< resolve from the process kind (the CLI default)
  kVertices,     ///< run each trial to vertex cover
  kEdges,        ///< run each trial to edge cover
  kCoalescence   ///< run each trial until <= target_tokens tokens remain
};

/// Parses "vertices" | "edges" | "coalescence" | "" (auto); anything else
/// throws std::invalid_argument listing the accepted spellings.
RunTarget parse_run_target(const std::string& name);

/// Canonical spelling of a resolved target ("vertices", "edges",
/// "coalescence"; kAuto renders as "auto").
std::string run_target_name(RunTarget target);

/// The canonical run configuration (see file comment). Field names mirror
/// the CLI flags one-for-one; protocol requests carry the same names, so
/// the two surfaces cannot diverge.
struct RunRequest {
  std::string id;        ///< request tag echoed in responses ("" for CLI runs)
  std::string graph;     ///< generator name (--graph; alias --generator)
  std::string process;   ///< process name (--process; alias --walk)
  ParamMap params;       ///< generator + process parameters (--n, --rule, ...)
  std::uint32_t trials = 5;       ///< samples to draw (--trials)
  std::uint32_t threads = 1;      ///< parallelism for this run; 0 = hardware
  std::uint64_t seed = 1;         ///< master seed (--seed)
  std::uint64_t max_steps = 0;    ///< per-trial budget; 0 = default_step_budget
  RunTarget target = RunTarget::kAuto;  ///< what each trial measures
  std::uint32_t target_tokens = 1;      ///< coalescence: stop at <= this many
  std::uint32_t bundle_width = 1; ///< trials interleaved per task (measure_cover)
  bool analysis = false;          ///< include the cached GraphAnalysis block
};

/// Everything a completed run reports. `ok == false` means the run failed
/// before producing samples and `error` carries the (self-diagnosing)
/// message; all other fields are valid only when `ok`.
struct RunResult {
  std::string id;              ///< echoed request id
  bool ok = false;             ///< whether the run produced samples
  std::string error;           ///< failure message when !ok
  RunTarget target = RunTarget::kAuto;   ///< the resolved target
  std::shared_ptr<const CachedGraph> graph;  ///< the instance trials ran on
  bool graph_cache_hit = false;  ///< graph served from a GraphStore
  std::uint64_t budget = 0;      ///< per-trial step budget actually used
  std::vector<double> samples;   ///< one sample per trial, trial order
  SummaryStats stats;            ///< over `samples`
  std::vector<double> meeting_samples;  ///< coalescence only: first meeting
  SummaryStats meeting_stats;           ///< over `meeting_samples`
  std::uint32_t unfinished = 0;  ///< trials clamped to the budget
  std::vector<double> step_samples;  ///< transitions per trial, trial order
  double total_steps = 0.0;      ///< transitions summed over trials
  double wall_seconds = 0.0;     ///< wall time of the trial phase
  std::optional<GraphAnalysis> analysis;  ///< present when requested
  bool analysis_cache_hit = false;        ///< analysis served from cache
};

/// Builds a RunRequest from a canonicalised flag/field map (util/cli has
/// already folded --walk/--generator aliases). The full map is retained as
/// req.params, exactly as the CLI forwards its flag bag to the registries.
/// Throws std::invalid_argument on malformed values (bad --target, ...).
RunRequest run_request_from_params(const ParamMap& params);

/// Executes a run: graph from `store` (or a private construction when
/// `store` is null), target resolved via a probe process, then
/// `req.trials` trials through run_trials with per-trial streams derived
/// from req.seed. Never throws — failures come back as ok == false with
/// the exception message in `error`, so one bad request cannot kill a
/// serving daemon.
RunResult execute_run(const RunRequest& req, GraphStore* store = nullptr);

}  // namespace ewalk
