#include "serve/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"

namespace ewalk {

namespace {

// Best-effort id recovery from a line that failed request parsing, so the
// error response still routes back to the right client-side future. Any
// failure here (the line may not even be JSON) degrades to an empty id.
std::string extract_id_lenient(const std::string& line) {
  try {
    const JsonValue root = parse_json(line);
    if (root.type != JsonValue::Type::kObject) return "";
    for (const auto& [key, value] : root.object)
      if (key == "id") return value.as_param_string();
  } catch (...) {
  }
  return "";
}

bool is_blank(const std::string& line) {
  for (const char c : line)
    if (c != ' ' && c != '\t' && c != '\r') return false;
  return true;
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(config),
      store_(config.cache_bytes),
      scope_(config.threads) {}

Server::~Server() {
  drain();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::drain() { scope_.wait(); }

void Server::handle_run(const RunRequest& run, const Sink& sink) {
  // Admission: reserve a slot atomically, reject when the daemon already
  // holds max_inflight accepted runs — bounded queueing is the contract.
  std::uint32_t inflight = inflight_.load(std::memory_order_relaxed);
  for (;;) {
    if (inflight >= config_.max_inflight) {
      sink(serialize_error(
          run.id, "server busy: " + std::to_string(inflight) +
                      " requests in flight (limit " +
                      std::to_string(config_.max_inflight) + "); retry later"));
      return;
    }
    if (inflight_.compare_exchange_weak(inflight, inflight + 1,
                                        std::memory_order_acq_rel))
      break;
  }
  const std::uint64_t ticket =
      tickets_.fetch_add(1, std::memory_order_relaxed) + 1;
  sink(serialize_queued(run.id, ticket));
  scope_.spawn([this, run, sink] {
    // execute_run never throws (failures come back as ok == false), so a
    // bad run produces an error line instead of poisoning the scope.
    const RunResult result = execute_run(run, &store_);
    sink(serialize_run_result(result));
    completed_.fetch_add(1, std::memory_order_relaxed);
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  });
}

void Server::handle_line(const std::string& line, const Sink& sink) {
  if (is_blank(line)) return;
  ServerRequest request;
  try {
    request = parse_request(line);
  } catch (const std::exception& ex) {
    sink(serialize_error(extract_id_lenient(line), ex.what()));
    return;
  }
  if (request.op == "ping") {
    sink(serialize_status(request.id, "pong"));
  } else if (request.op == "stats") {
    sink(serialize_stats(request.id, store_.stats(),
                         inflight_.load(std::memory_order_acquire),
                         completed_.load(std::memory_order_acquire)));
  } else if (request.op == "drain") {
    drain();
    sink(serialize_status(request.id, "drained"));
  } else if (request.op == "shutdown") {
    drain();
    sink(serialize_status(request.id, "bye"));
    shutdown_.store(true, std::memory_order_release);
  } else {  // parse_request validated the op: only "run" remains
    handle_run(request.run, sink);
  }
}

void Server::serve_stream(std::istream& in, std::ostream& out) {
  std::mutex out_mutex;
  const Sink sink = [&out, &out_mutex](const std::string& response) {
    std::lock_guard<std::mutex> lock(out_mutex);
    out << response << '\n';
    out.flush();
  };
  std::string line;
  while (!shutdown_requested() && std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    handle_line(line, sink);
  }
  drain();  // EOF without a shutdown op still exits gracefully
}

std::uint16_t Server::listen_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot bind 127.0.0.1:" + std::to_string(port));
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  listen_fd_ = fd;
  return ntohs(addr.sin_port);
}

void Server::serve_connection(int fd) {
  // A receive timeout keeps this reader checking the shutdown flag even
  // when the peer goes quiet, so serve_tcp() can always join it.
  timeval tv{};
  tv.tv_usec = 200 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

  auto write_mutex = std::make_shared<std::mutex>();
  const Sink sink = [fd, write_mutex](const std::string& response) {
    const std::string line = response + "\n";
    std::lock_guard<std::mutex> lock(*write_mutex);
    std::size_t sent = 0;
    while (sent < line.size()) {
      const ssize_t n =
          ::send(fd, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return;  // peer gone; the run still completes server-side
      sent += static_cast<std::size_t>(n);
    }
  };

  std::string buffer;
  char chunk[4096];
  while (!shutdown_requested()) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      handle_line(line, sink);
      if (shutdown_requested()) break;
    }
  }
  ::close(fd);
}

void Server::serve_tcp() {
  if (listen_fd_ < 0)
    throw std::logic_error("serve_tcp() requires listen_tcp() first");
  std::vector<std::thread> connections;
  while (!shutdown_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections.emplace_back([this, fd] { serve_connection(fd); });
  }
  for (std::thread& t : connections) t.join();
  drain();
}

}  // namespace ewalk
