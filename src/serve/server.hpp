// ewalkd — the long-lived serving daemon over a cached graph store.
//
// A Server owns one GraphStore and one fork-join TaskScope on the
// process-wide work-stealing Executor. Requests arrive as protocol lines
// (serve/protocol.hpp); `run` requests are acknowledged immediately with a
// ticket and dispatched onto the scope, and their results stream back as
// tagged response lines whenever they complete — clients match responses to
// requests by `id`, never by arrival order. Everything else (`ping`,
// `stats`, `drain`, `shutdown`) is answered synchronously on the reader
// thread.
//
// Admission control: at most `max_inflight` run requests may be queued or
// executing at once; requests beyond that are rejected with an error line
// (no silent queueing without bound — a misbehaving client cannot OOM the
// daemon with pending work). `drain` blocks until every in-flight run has
// completed and is the protocol's determinism barrier: a `stats` issued
// after a `drain` sees counters that depend only on the request multiset,
// not on scheduling.
//
// Transports: serve_stream() pumps line-delimited requests from any
// istream to any ostream (the `--stdin` pipe mode CI and tests use);
// listen_tcp()/serve_tcp() accept TCP connections on a (possibly
// ephemeral) port with one reader thread per connection, all sharing the
// store and the scope.
//
// Determinism contract: a run's samples depend only on the RunRequest
// (execute_run), so responses are bit-identical across cache states,
// connection interleavings, and thread counts; only response *order* is
// scheduling-dependent, and the client's --sort restores a canonical order
// for golden-file diffs.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "serve/graph_store.hpp"
#include "serve/request.hpp"
#include "util/thread_pool.hpp"

namespace ewalk {

/// Daemon configuration, mirrored by the ewalkd CLI flags.
struct ServerConfig {
  std::uint64_t cache_bytes = 0;   ///< GraphStore budget (--cache-bytes, 0 = unlimited)
  std::uint32_t max_inflight = 64; ///< admission cap on queued+running runs (--inflight)
  std::uint32_t threads = 0;       ///< scope parallelism (--threads, 0 = hardware)
};

/// The serving core (see file comment). One instance per daemon; all
/// transports and tests drive it through handle_line().
class Server {
 public:
  /// Receives one complete response line (no trailing newline). Must be
  /// callable from worker threads; the Server serialises calls per sink
  /// only when it created the sink itself (serve_stream/serve_tcp), so
  /// custom sinks must be thread-safe.
  using Sink = std::function<void(const std::string&)>;

  explicit Server(ServerConfig config);

  /// Drains in-flight runs before destruction (graceful even when the
  /// transport dropped mid-request).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handles one request line: parses, answers control ops synchronously,
  /// enqueues runs (ack via `sink` immediately, result via `sink` on
  /// completion). Never throws — malformed requests produce an error line
  /// and leave the daemon serving. Blank lines are ignored.
  void handle_line(const std::string& line, const Sink& sink);

  /// Blocks until every accepted run has completed (the `drain` op).
  void drain();

  /// The shared graph cache (exposed for tests and the stats op).
  GraphStore& store() noexcept { return store_; }

  /// Set once a `shutdown` request has been fully answered; transports
  /// stop accepting input when they observe it.
  bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Number of runs accepted but not yet completed (admission gauge).
  std::uint32_t inflight() const noexcept {
    return inflight_.load(std::memory_order_acquire);
  }

  /// Pumps line-delimited requests from `in` to `out` until EOF or
  /// shutdown, then drains. The pipe transport (`ewalkd --stdin`).
  void serve_stream(std::istream& in, std::ostream& out);

  /// Binds a listening IPv4 socket on 127.0.0.1:`port` (0 = ephemeral) and
  /// returns the bound port. Throws std::runtime_error when the bind
  /// fails. Call serve_tcp() afterwards to accept connections.
  std::uint16_t listen_tcp(std::uint16_t port);

  /// Accepts connections on the socket bound by listen_tcp(), one reader
  /// thread per connection, until shutdown_requested(); then joins the
  /// connection threads and drains. The TCP transport (`ewalkd --port`).
  void serve_tcp();

 private:
  void handle_run(const RunRequest& run, const Sink& sink);
  void serve_connection(int fd);

  const ServerConfig config_;
  GraphStore store_;
  TaskScope scope_;
  std::atomic<std::uint32_t> inflight_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> tickets_{0};
  std::atomic<bool> shutdown_{false};
  int listen_fd_ = -1;
};

}  // namespace ewalk
