#include "spectral/conductance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace ewalk {

double cut_conductance(const Graph& g, const std::vector<bool>& in_x) {
  if (in_x.size() != g.num_vertices())
    throw std::invalid_argument("cut_conductance: flag vector size mismatch");
  std::uint64_t d_x = 0, d_all = 0, crossing = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    d_all += g.degree(v);
    if (in_x[v]) d_x += g.degree(v);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (in_x[u] != in_x[v]) ++crossing;
  }
  const std::uint64_t d_small = std::min(d_x, d_all - d_x);
  if (d_small == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(crossing) / static_cast<double>(d_small);
}

double exact_conductance(const Graph& g) {
  const Vertex n = g.num_vertices();
  if (n > 24) throw std::invalid_argument("exact_conductance: n too large (max 24)");
  if (n < 2) throw std::invalid_argument("exact_conductance: need at least 2 vertices");

  double best = std::numeric_limits<double>::infinity();
  std::vector<bool> in_x(n, false);
  // Fix vertex 0 out of X to halve the enumeration (Φ is complement-symmetric).
  for (std::uint64_t mask = 1; mask < (std::uint64_t{1} << (n - 1)); ++mask) {
    for (Vertex v = 1; v < n; ++v) in_x[v] = (mask >> (v - 1)) & 1;
    best = std::min(best, cut_conductance(g, in_x));
  }
  return best;
}

ConductanceBounds conductance_bounds_from_lambda2(double lambda2) {
  return ConductanceBounds{(1.0 - lambda2) / 2.0, std::sqrt(std::max(0.0, 2.0 * (1.0 - lambda2)))};
}

}  // namespace ewalk
