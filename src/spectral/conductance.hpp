// Conductance Φ(G) (Section 3.3, eq. 19 of the paper):
//   Φ(G) = min over X with d(X) <= m of  e(X : X̄) / d(X),
// and the Cheeger-type relation  1 - 2Φ <= λ2 <= 1 - Φ²/2.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace ewalk {

/// Exact conductance by subset enumeration — O(2^n · m); only for n <= 24.
double exact_conductance(const Graph& g);

/// Bounds on Φ implied by λ2 via eq. (19): Φ >= (1 - λ2)/2 and
/// Φ <= sqrt(2 (1 - λ2)).
struct ConductanceBounds {
  double lower;
  double upper;
};
ConductanceBounds conductance_bounds_from_lambda2(double lambda2);

/// Conductance of one cut X (vertices flagged true). d(X) need not be <= m;
/// the complement is used when it is larger.
double cut_conductance(const Graph& g, const std::vector<bool>& in_x);

}  // namespace ewalk
