#include "spectral/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace ewalk {

namespace {

/// y = S x where S = D^{-1/2} A D^{-1/2}, via the slot arrays.
void symmetric_matvec(const Graph& g, const std::vector<double>& inv_sqrt_deg,
                      const std::vector<double>& x, std::vector<double>& y) {
  const Vertex n = g.num_vertices();
  for (Vertex v = 0; v < n; ++v) {
    double acc = 0.0;
    for (const Slot& s : g.slots(v)) acc += x[s.neighbor] * inv_sqrt_deg[s.neighbor];
    y[v] = acc * inv_sqrt_deg[v];
  }
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void normalize(std::vector<double>& x) {
  const double norm = std::sqrt(dot(x, x));
  if (norm > 0.0)
    for (double& v : x) v /= norm;
}

/// Power iteration for the top eigenvalue of the operator
/// x -> shift*x + sign*S*x, restricted to the complement of span(v1) when
/// deflate is true. Returns the Rayleigh quotient of S itself.
double power_iterate(const Graph& g, const std::vector<double>& inv_sqrt_deg,
                     const std::vector<double>& v1, bool deflate, double shift,
                     double sign, const SpectrumOptions& options,
                     std::uint32_t& iterations_used) {
  const Vertex n = g.num_vertices();
  Rng rng(0x5EC7Au);
  std::vector<double> x(n), sx(n);
  for (double& v : x) v = rng.uniform_real() - 0.5;
  if (deflate) {
    const double proj = dot(x, v1);
    for (Vertex v = 0; v < n; ++v) x[v] -= proj * v1[v];
  }
  normalize(x);

  double prev_rq = 2.0;
  for (std::uint32_t it = 0; it < options.max_iterations; ++it) {
    symmetric_matvec(g, inv_sqrt_deg, x, sx);
    const double rq = dot(x, sx);  // Rayleigh quotient of S at x
    // Apply the shifted operator.
    for (Vertex v = 0; v < n; ++v) sx[v] = shift * x[v] + sign * sx[v];
    if (deflate) {
      const double proj = dot(sx, v1);
      for (Vertex v = 0; v < n; ++v) sx[v] -= proj * v1[v];
    }
    normalize(sx);
    x.swap(sx);
    if (std::abs(rq - prev_rq) < options.tolerance) {
      iterations_used = it + 1;
      return rq;
    }
    prev_rq = rq;
  }
  iterations_used = options.max_iterations;
  return prev_rq;
}

}  // namespace

WalkSpectrum estimate_spectrum(const Graph& g, const SpectrumOptions& options) {
  const Vertex n = g.num_vertices();
  if (n == 0 || g.num_edges() == 0)
    throw std::invalid_argument("estimate_spectrum: graph must have edges");

  std::vector<double> inv_sqrt_deg(n, 0.0);
  std::vector<double> v1(n, 0.0);
  double norm = 0.0;
  for (Vertex v = 0; v < n; ++v) {
    const double d = g.degree(v);
    if (d > 0) {
      inv_sqrt_deg[v] = 1.0 / std::sqrt(d);
      v1[v] = std::sqrt(d);
      norm += d;
    }
  }
  norm = std::sqrt(norm);
  for (double& x : v1) x /= norm;

  WalkSpectrum spec;
  std::uint32_t it2 = 0, itn = 0;
  // λ2: top eigenvalue of (S + I)/2 on the deflated space is (λ2+1)/2 >= 0,
  // so the iteration cannot be hijacked by a large |λn|.
  const double rq2 =
      power_iterate(g, inv_sqrt_deg, v1, /*deflate=*/true, 0.5, 0.5, options, it2);
  spec.lambda2 = rq2;
  // λn: top eigenvalue of (I - S)/2 is (1-λn)/2; deflation unnecessary since
  // the λ1 component has eigenvalue 0 under this operator.
  const double rqn =
      power_iterate(g, inv_sqrt_deg, v1, /*deflate=*/false, 0.5, -0.5, options, itn);
  spec.lambda_n = rqn;
  spec.lambda_max = std::max(spec.lambda2, std::abs(spec.lambda_n));
  spec.iterations = std::max(it2, itn);
  return spec;
}

std::vector<double> dense_spectrum(const Graph& g) {
  const std::size_t n = g.num_vertices();
  if (n == 0) return {};
  if (n > 4096) throw std::invalid_argument("dense_spectrum: graph too large for dense solve");

  std::vector<double> inv_sqrt_deg(n, 0.0);
  for (Vertex v = 0; v < n; ++v)
    if (g.degree(v) > 0) inv_sqrt_deg[v] = 1.0 / std::sqrt(static_cast<double>(g.degree(v)));

  std::vector<double> s(n * n, 0.0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.endpoints(e);
    if (u == v) {
      s[u * n + u] += 2.0 * inv_sqrt_deg[u] * inv_sqrt_deg[u];
    } else {
      const double w = inv_sqrt_deg[u] * inv_sqrt_deg[v];
      s[u * n + v] += w;
      s[v * n + u] += w;
    }
  }
  return jacobi_eigenvalues(std::move(s), n);
}

double mixing_time_estimate(double gap, std::uint64_t n, double K) {
  if (gap <= 0.0) throw std::invalid_argument("mixing_time_estimate: gap must be positive");
  return K * std::log(static_cast<double>(n)) / gap;
}

std::vector<double> jacobi_eigenvalues(std::vector<double> a, std::size_t n) {
  if (a.size() != n * n) throw std::invalid_argument("jacobi_eigenvalues: bad dimensions");
  const auto at = [&](std::size_t i, std::size_t j) -> double& { return a[i * n + j]; };

  for (std::uint32_t sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += at(i, j) * at(i, j);
    if (off < 1e-20) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = at(p, q);
        if (std::abs(apq) < 1e-15) continue;
        const double theta = (at(q, q) - at(p, p)) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = at(k, p), akq = at(k, q);
          at(k, p) = c * akp - s * akq;
          at(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = at(p, k), aqk = at(q, k);
          at(p, k) = c * apk - s * aqk;
          at(q, k) = s * apk + c * aqk;
        }
      }
    }
  }
  std::vector<double> eig(n);
  for (std::size_t i = 0; i < n; ++i) eig[i] = at(i, i);
  std::sort(eig.begin(), eig.end(), std::greater<>());
  return eig;
}

}  // namespace ewalk
