// Spectral analysis of the simple-random-walk transition matrix P = D^{-1}A.
//
// The paper's bounds are stated in terms of the eigenvalue gap 1 - λmax,
// λmax = max(λ2, |λn|) (Section 2.1). P is similar to the symmetric
// S = D^{-1/2} A D^{-1/2}, whose top eigenvector is known exactly
// (v1 ∝ sqrt(d)); we therefore compute λ2 by deflated power iteration on a
// shifted S, and λn by power iteration on I - S. A dense Jacobi eigensolver
// is provided for exact small-graph spectra in tests.
//
// Multigraph conventions match the paper: a parallel edge contributes its
// multiplicity to A, and a self-loop at v contributes 2 to A_vv (it occupies
// two adjacency slots), i.e. P(v,v) = 2/d(v) per loop.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ewalk {

/// Spectrum summary of the SRW transition matrix.
struct WalkSpectrum {
  double lambda2 = 0.0;      ///< second-largest eigenvalue of P
  double lambda_n = 0.0;     ///< smallest eigenvalue of P
  double lambda_max = 0.0;   ///< max(lambda2, |lambda_n|)
  std::uint32_t iterations = 0;  ///< power iterations actually used

  /// Eigenvalue gap 1 - λmax used throughout the paper's bounds.
  double gap() const noexcept { return 1.0 - lambda_max; }
  /// Gap of the lazy walk P' = (I+P)/2, whose λ'max = (1+λ2)/2.
  double lazy_gap() const noexcept { return (1.0 - lambda2) / 2.0; }
};

struct SpectrumOptions {
  std::uint32_t max_iterations = 20000;
  double tolerance = 1e-10;  ///< stop when Rayleigh quotient stabilises
};

/// Iterative spectrum estimate; works at any n the walk benches use.
/// Precondition: g is connected with at least one edge.
WalkSpectrum estimate_spectrum(const Graph& g, const SpectrumOptions& options = {});

/// All eigenvalues of P, descending, via dense Jacobi on S — exact up to
/// numerical 1e-9, intended for n <= ~2048 (tests and tiny benches).
std::vector<double> dense_spectrum(const Graph& g);

/// Mixing time from Lemma 7 of the paper: T = K log n / (1 - λmax), K >= 6.
double mixing_time_estimate(double gap, std::uint64_t n, double K = 6.0);

/// Cyclic Jacobi eigensolver for a dense symmetric matrix (row-major n x n).
/// Returns eigenvalues in descending order.
std::vector<double> jacobi_eigenvalues(std::vector<double> matrix, std::size_t n);

}  // namespace ewalk
