#include "sweep/report.hpp"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "util/csv.hpp"

namespace ewalk {

namespace {

// Bench-controlled names are [a-z0-9-=.]; escape the JSON specials anyway so
// a future caller with an exotic label cannot emit malformed JSON.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out.push_back(c);
  }
  return out;
}

// %.17g round-trips doubles exactly; integral values print without noise.
void print_double(std::FILE* f, double v) { std::fprintf(f, "%.17g", v); }

}  // namespace

std::string write_sweep_json(const SweepResult& result,
                             const std::string& directory) {
  std::filesystem::create_directories(directory);
  const std::string path = directory + "/SWEEP_" + result.name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    throw std::runtime_error("write_sweep_json: cannot open " + path);

  std::fprintf(f,
               "{\n  \"sweep\": \"%s\",\n  \"version\": 3,\n"
               "  \"seed\": %llu,\n  \"trials\": %u,\n  \"max_trials\": %u,\n"
               "  \"ci_rel_target\": ",
               json_escape(result.name).c_str(),
               static_cast<unsigned long long>(result.master_seed),
               result.trials, result.max_trials);
  print_double(f, result.ci_rel_target);
  std::fprintf(f, ",\n  \"threads\": %u,\n  \"reuse_graph\": %s,\n",
               result.threads, result.reuse_graph ? "true" : "false");
  std::fprintf(f, "  \"pin\": %s,\n", result.pinned ? "true" : "false");
  std::fprintf(f, "  \"gen_seconds\": ");
  print_double(f, result.gen_seconds);
  std::fprintf(f, ",\n  \"walk_seconds\": ");
  print_double(f, result.walk_seconds);
  std::fprintf(f, ",\n  \"wall_seconds\": ");
  print_double(f, result.wall_seconds);
  std::fprintf(f, ",\n  \"unit_count\": %u,\n  \"unit_seconds_min\": ",
               result.unit_count);
  print_double(f, result.unit_seconds_min);
  std::fprintf(f, ",\n  \"unit_seconds_max\": ");
  print_double(f, result.unit_seconds_max);
  std::fprintf(f, ",\n  \"timeline_bucket_seconds\": ");
  print_double(f, result.timeline_bucket_seconds);
  std::fprintf(f, ",\n  \"thread_timeline\": [");
  for (std::size_t i = 0; i < result.thread_timeline.size(); ++i) {
    const SweepThreadTimeline& timeline = result.thread_timeline[i];
    std::fprintf(f, "%s\n    {\"thread\": %u, \"busy_seconds\": [",
                 i > 0 ? "," : "", timeline.thread);
    for (std::size_t b = 0; b < timeline.busy_seconds.size(); ++b) {
      if (b > 0) std::fprintf(f, ", ");
      print_double(f, timeline.busy_seconds[b]);
    }
    std::fprintf(f, "],\n     \"units\": [");
    for (std::size_t b = 0; b < timeline.units.size(); ++b)
      std::fprintf(f, "%s%llu", b > 0 ? ", " : "",
                   static_cast<unsigned long long>(timeline.units[b]));
    std::fprintf(f, "]}");
  }
  std::fprintf(f, "%s],\n  \"points\": [\n",
               result.thread_timeline.empty() ? "" : "\n  ");

  for (std::size_t p = 0; p < result.points.size(); ++p) {
    const SweepPointResult& point = result.points[p];
    std::fprintf(f, "    {\"label\": \"%s\", \"params\": {",
                 json_escape(point.label).c_str());
    for (std::size_t i = 0; i < point.params.size(); ++i) {
      std::fprintf(f, "%s\"%s\": ", i > 0 ? ", " : "",
                   json_escape(point.params[i].name).c_str());
      print_double(f, point.params[i].value);
    }
    std::fprintf(f, "}, \"gen_seconds\": ");
    print_double(f, point.gen_seconds);
    std::fprintf(f, ",\n     \"series\": [\n");
    for (std::size_t s = 0; s < point.series.size(); ++s) {
      const SweepSeriesResult& sr = point.series[s];
      std::fprintf(f, "       {\"name\": \"%s\", \"mean\": ",
                   json_escape(sr.name).c_str());
      print_double(f, sr.stats.mean);
      std::fprintf(f, ", \"ci95\": ");
      print_double(f, sr.stats.ci95_halfwidth());
      std::fprintf(f, ", \"median\": ");
      print_double(f, sr.stats.median);
      std::fprintf(f, ", \"min\": ");
      print_double(f, sr.stats.min);
      std::fprintf(f, ", \"max\": ");
      print_double(f, sr.stats.max);
      std::fprintf(f,
                   ",\n        \"uncovered_trials\": %u, \"trials_used\": %u,"
                   " \"ci_rel_width\": ",
                   sr.uncovered_trials, sr.trials_used);
      print_double(f, sr.ci_rel_width);
      std::fprintf(f, ", \"walk_seconds\": ");
      print_double(f, sr.walk_seconds);
      std::fprintf(f, ", \"samples\": [");
      for (std::size_t t = 0; t < sr.samples.size(); ++t) {
        if (t > 0) std::fprintf(f, ", ");
        print_double(f, sr.samples[t]);
      }
      std::fprintf(f, "]}%s\n", s + 1 < point.series.size() ? "," : "");
    }
    std::fprintf(f, "     ]}%s\n", p + 1 < result.points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return path;
}

std::string write_sweep_csv(const SweepResult& result,
                            const std::string& directory) {
  std::filesystem::create_directories(directory);
  const std::string path = directory + "/SWEEP_" + result.name + ".csv";
  std::vector<std::string> header{"label"};
  if (!result.points.empty())
    for (const SweepParam& param : result.points.front().params)
      header.push_back(param.name);
  for (const char* col :
       {"series", "mean", "ci95", "median", "min", "max", "uncovered_trials",
        "trials_used", "ci_rel_width", "walk_seconds", "gen_seconds"})
    header.push_back(col);

  CsvWriter csv(path, std::move(header));
  for (const SweepPointResult& point : result.points) {
    for (const SweepSeriesResult& sr : point.series) {
      std::vector<std::string> row{point.label};
      for (const SweepParam& param : point.params)
        row.push_back(std::to_string(param.value));
      row.push_back(sr.name);
      for (const double v : {sr.stats.mean, sr.stats.ci95_halfwidth(),
                             sr.stats.median, sr.stats.min, sr.stats.max,
                             static_cast<double>(sr.uncovered_trials),
                             static_cast<double>(sr.trials_used),
                             sr.ci_rel_width, sr.walk_seconds,
                             point.gen_seconds})
        row.push_back(std::to_string(v));
      csv.row(row);
    }
  }
  return path;
}

void print_sweep_timing_split(const SweepResult& result) {
  const double accounted = result.gen_seconds + result.walk_seconds;
  std::printf(
      "timing split: generation %.2fs (%.0f%%) vs walking %.2fs (%.0f%%) "
      "task-seconds; %.2fs wall\n",
      result.gen_seconds,
      accounted > 0 ? 100.0 * result.gen_seconds / accounted : 0.0,
      result.walk_seconds,
      accounted > 0 ? 100.0 * result.walk_seconds / accounted : 0.0,
      result.wall_seconds);
  // Straggler diagnostic: a slowest unit well below the wall clock means
  // trial-level parallelism kept the sweep from being bounded by its
  // biggest (point, trial) unit.
  std::printf(
      "unit spread: %u units, fastest %.3fs, slowest %.3fs (%.0f%% of wall)"
      "; %zu thread%s active%s\n",
      result.unit_count, result.unit_seconds_min, result.unit_seconds_max,
      result.wall_seconds > 0
          ? 100.0 * result.unit_seconds_max / result.wall_seconds
          : 0.0,
      result.thread_timeline.size(),
      result.thread_timeline.size() == 1 ? "" : "s",
      result.pinned ? " (pinned)" : "");
}

void print_sweep_table(const SweepResult& result) {
  std::printf("%-18s %-16s %14s %12s %12s %6s %6s\n", "point", "series",
              "mean", "+/-95%", "mean/n", "trials", "unfin");
  for (const SweepPointResult& point : result.points) {
    double n = 0.0;
    for (const SweepParam& param : point.params)
      if (param.name == "n") n = param.value;
    for (const SweepSeriesResult& sr : point.series) {
      if (n > 0)
        std::printf("%-18s %-16s %14.0f %12.0f %12.3f %6u %6u\n",
                    point.label.c_str(), sr.name.c_str(), sr.stats.mean,
                    sr.stats.ci95_halfwidth(), sr.stats.mean / n,
                    sr.trials_used, sr.uncovered_trials);
      else
        std::printf("%-18s %-16s %14.0f %12.0f %12s %6u %6u\n",
                    point.label.c_str(), sr.name.c_str(), sr.stats.mean,
                    sr.stats.ci95_halfwidth(), "-", sr.trials_used,
                    sr.uncovered_trials);
    }
  }
  print_sweep_timing_split(result);
}

}  // namespace ewalk
