// Sweep result persistence and reporting.
//
// Every sweep emits one machine-readable JSON file,
// bench_out/SWEEP_<name>.json, that CI schema-validates
// (tools/validate_bench_json.py) and uploads as a per-commit artifact, plus
// an optional flat CSV for quick re-plotting. The JSON carries everything a
// re-plot needs — per-point coordinates, per-series summary statistics AND
// the raw trial samples — so a figure can be rebuilt (or two commits
// diffed sample-for-sample) without re-running the sweep.
//
// SWEEP_*.json schema, version 3 (v2 + scheduler observability: the pin
// flag, the per-unit wall-clock spread, and the per-thread
// throughput-over-time timeline; validated by tools/validate_bench_json.py,
// which still accepts v1/v2 files from older artifacts):
//   { "sweep": str, "version": 3, "seed": u64, "trials": u32,
//     "max_trials": u32, "ci_rel_target": f64,
//     "threads": u32, "reuse_graph": bool, "pin": bool,
//     "gen_seconds": f64, "walk_seconds": f64, "wall_seconds": f64,
//     "unit_count": u32, "unit_seconds_min": f64, "unit_seconds_max": f64,
//     "timeline_bucket_seconds": f64,
//     "thread_timeline": [
//       { "thread": u32, "busy_seconds": [f64, ...],
//         "units": [u64, ...] }, ... ],
//     "points": [
//       { "label": str, "params": { <name>: f64, ... }, "gen_seconds": f64,
//         "series": [
//           { "name": str, "mean": f64, "ci95": f64, "median": f64,
//             "min": f64, "max": f64, "uncovered_trials": u32,
//             "trials_used": u32, "ci_rel_width": f64,
//             "walk_seconds": f64, "samples": [f64, ...] }, ... ] }, ... ] }
// `trials` is the floor; "max_trials" is 0 for fixed-trials sweeps, in which
// case every "trials_used" equals "trials". "samples" always has exactly
// "trials_used" entries. "thread_timeline" has one entry per scheduler
// thread that did sweep work, in timing-slot order; "busy_seconds" and
// "units" are parallel arrays over the same fixed-width buckets
// ("timeline_bucket_seconds" wide, spanning "wall_seconds").
#pragma once

#include <string>

#include "sweep/sweep.hpp"

namespace ewalk {

/// Writes <directory>/SWEEP_<result.name>.json (creating the directory if
/// needed) in the schema documented above; returns the path written.
/// Throws std::runtime_error when the file cannot be opened.
std::string write_sweep_json(const SweepResult& result,
                             const std::string& directory = "bench_out");

/// Writes <directory>/SWEEP_<result.name>.csv: one row per (point, series)
/// with the point coordinates as leading columns (every point of a sweep
/// must use the same coordinate names, which run_sweep callers guarantee by
/// construction). Returns the path written.
std::string write_sweep_csv(const SweepResult& result,
                            const std::string& directory = "bench_out");

/// Prints a generic per-point table of `result` to stdout: label, series,
/// mean ±95% CI, normalised-by-n column when the point has an "n"
/// coordinate, and the generation-vs-walk wall-clock split footer. Benches
/// with figure-specific tables print their own and call this only for the
/// footer via print_sweep_timing_split().
void print_sweep_table(const SweepResult& result);

/// Prints the generation-vs-walk wall-clock split — the line that says
/// whether graph construction dominates the sweep — followed by the
/// per-unit spread line (slowest vs fastest unit against the wall clock,
/// the straggler diagnostic) and the thread-utilisation summary from the
/// v3 timeline.
void print_sweep_timing_split(const SweepResult& result);

}  // namespace ewalk
