#include "sweep/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <span>

#include "engine/budget.hpp"
#include "engine/bundle.hpp"
#include "engine/driver.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace ewalk {

namespace {

// What one unit task (one point, one trial) records for one series. Spans
// are seconds relative to the sweep's start timer; `thread` is the
// Executor::timing_slot of the thread that ran the series — bookkeeping
// for the v3 timeline only, never an input to the measurement.
struct SeriesCell {
  double value = 0.0;
  bool covered = false;
  bool ran = false;  // false when the series was already closed at this trial
  double walk_seconds = 0.0;
  double gen_seconds = 0.0;  // private-graph build time (reuse off)
  std::uint32_t thread = 0;
  double t_start = 0.0;
  double t_end = 0.0;
};

// What one unit task records in total. Units write disjoint slots of a
// structure only resized between rounds, so tasks need no locking around
// results; series subtasks of one unit write disjoint cells.
struct UnitRecord {
  double gen_seconds = 0.0;   // shared-graph build time (reuse on)
  std::uint32_t gen_thread = 0;
  double gen_t_start = 0.0;
  double gen_t_end = 0.0;
  double t_start = 0.0;  // whole-unit span, for the straggler report
  double t_end = 0.0;
  // True on the record that carries a scheduler unit's wall-clock span.
  // Width-1 units are their own lead; in a bundled unit only the first
  // trial's record is (the bundle is ONE unit), so the straggler report
  // counts bundles, not trials.
  bool unit_lead = true;
  std::vector<SeriesCell> cells;
};

// Relative CI width used by both the adaptive stopping rule and the reports:
// 95% half-width over |mean|, defined as 0 when the mean is 0 (degenerate —
// every sample 0 — where the CI is exactly tight anyway).
double rel_ci_width(const SummaryStats& stats) {
  return stats.mean != 0.0 ? stats.ci95_halfwidth() / std::abs(stats.mean)
                           : 0.0;
}

// Largest-expected-cost-first submission order, so the straggler point
// starts first instead of last. The heuristic is n · r · series_count from
// the point's declared params (n and r/d coordinates; absent ones count as
// 1) — crude, but walk cost is superlinear in n, so any n-major order beats
// the declaration order for heterogeneous grids. Stable, so equal-cost
// points keep declaration order and the schedule stays reproducible.
std::vector<std::size_t> submission_order(
    const std::vector<SweepPoint>& points) {
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> cost(points.size(), 1.0);
  for (std::size_t p = 0; p < points.size(); ++p) {
    double n = 1.0, r = 1.0;
    for (const SweepParam& param : points[p].params) {
      if (param.name == "n") n = std::max(param.value, 1.0);
      if (param.name == "r" || param.name == "d")
        r = std::max(param.value, 1.0);
    }
    cost[p] = n * r *
              static_cast<double>(std::max<std::size_t>(
                  1, points[p].series.size()));
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return cost[a] > cost[b];
                   });
  return order;
}

constexpr std::size_t kTimelineBuckets = 32;

}  // namespace

Rng sweep_stream(std::uint64_t master_seed, std::uint64_t point,
                 std::uint64_t trial, std::uint64_t role) {
  // Fold each index into the state with one SplitMix64 step; the +1 keeps
  // index 0 from degenerating into a plain re-hash of the previous state.
  std::uint64_t h = master_seed;
  for (const std::uint64_t v : {point, trial, role}) {
    std::uint64_t s = h + 0x9E3779B97F4A7C15ULL * (v + 1);
    h = splitmix64(s);
  }
  return Rng(h);
}

SweepResult run_sweep(const std::string& name,
                      const std::vector<SweepPoint>& points,
                      const SweepConfig& config) {
  const std::uint32_t floor_trials = std::max(1u, config.trials);
  const bool adaptive = config.max_trials > 0;
  const std::uint32_t cap =
      adaptive ? std::max(config.max_trials, floor_trials) : floor_trials;

  std::uint32_t workers =
      config.threads == 0 ? Executor::hardware_threads() : config.threads;
  if (workers == 0) workers = 1;
  const bool parallel = workers > 1 && !points.empty();

  // records[p][t] is trial t of point p; done[p] counts its finished trials.
  // Each point task owns its own slice; the caller reads everything back
  // only after the root scope wait.
  std::vector<std::vector<UnitRecord>> records(points.size());
  std::vector<std::uint32_t> done(points.size(), 0);

  WallTimer sweep_timer;  // the epoch every recorded span is relative to

  const auto run_series = [&](std::size_t p, std::uint32_t t, std::size_t s,
                              const Graph* shared_graph) {
    const SweepPoint& point = points[p];
    const SweepSeriesSpec& spec = point.series[s];
    SeriesCell& cell = records[p][t].cells[s];
    cell.thread = Executor::timing_slot();
    cell.t_start = sweep_timer.seconds();
    Graph local;
    const Graph* g;
    if (shared_graph != nullptr) {
      g = shared_graph;
    } else {
      Rng graph_rng = sweep_stream(config.master_seed, p, t, 2 * s + 2);
      WallTimer gen_timer;
      local = point.graph(graph_rng);
      cell.gen_seconds = gen_timer.seconds();
      g = &local;
    }
    Rng walk_rng = sweep_stream(config.master_seed, p, t, 2 * s + 1);
    auto walk = spec.process(*g, walk_rng);
    const std::uint64_t budget =
        point.max_steps != 0 ? point.max_steps : default_step_budget(*g);
    WallTimer walk_timer;
    bool done_walk;
    std::uint64_t result_step;
    if (spec.target == CoverTarget::kVertices) {
      done_walk = run_until(*walk, walk_rng, VertexCovered{}, budget);
      result_step = walk->cover().vertex_cover_step();
    } else {
      done_walk = run_until(*walk, walk_rng, EdgesCovered{}, budget);
      result_step = walk->cover().edge_cover_step();
    }
    cell.walk_seconds = walk_timer.seconds();
    cell.covered = done_walk;
    cell.ran = true;
    cell.value = static_cast<double>(done_walk ? result_step : budget);
    cell.t_end = sweep_timer.seconds();
  };

  const auto run_unit = [&](std::size_t p, std::uint32_t t,
                            const std::vector<std::uint8_t>& mask) {
    const SweepPoint& point = points[p];
    UnitRecord& rec = records[p][t];
    rec.cells.resize(point.series.size());
    rec.t_start = sweep_timer.seconds();

    std::optional<Graph> shared;
    if (config.reuse_graph) {
      Rng graph_rng = sweep_stream(config.master_seed, p, t, 0);
      rec.gen_thread = Executor::timing_slot();
      rec.gen_t_start = sweep_timer.seconds();
      WallTimer gen_timer;
      shared.emplace(point.graph(graph_rng));
      rec.gen_seconds = gen_timer.seconds();
      rec.gen_t_end = sweep_timer.seconds();
    }
    const Graph* shared_graph = shared ? &*shared : nullptr;

    std::uint32_t to_run = 0;
    for (std::size_t s = 0; s < point.series.size(); ++s)
      if (mask[s]) ++to_run;
    if (parallel && to_run > 1) {
      // Nested fan-out: the shared graph lives in this frame until the
      // scope wait returns, so series subtasks may reference it freely.
      TaskScope series_scope;
      for (std::size_t s = 0; s < point.series.size(); ++s)
        if (mask[s])
          series_scope.spawn(
              [&run_series, p, t, s, shared_graph] {
                run_series(p, t, s, shared_graph);
              });
      series_scope.wait();
    } else {
      for (std::size_t s = 0; s < point.series.size(); ++s)
        if (mask[s]) run_series(p, t, s, shared_graph);
    }
    rec.t_end = sweep_timer.seconds();
  };

  // One bundle of consecutive trials of one point, run as ONE scheduler
  // unit: per trial (ascending order) the shared graph is built from its
  // role-0 stream exactly as run_unit does, then each open series builds
  // every bundled trial's process from its own role streams and advances
  // all of them round-robin through run_trial_bundle (engine/bundle.hpp).
  // Streams and the per-trial stride-1 check schedule are identical to the
  // width-1 path, so samples are bit-identical for every bundle width; only
  // the wall-clock bookkeeping differs (the bundle is one unit — its first
  // trial's record carries the unit span and the series busy span, so the
  // straggler report counts bundles and the timeline never multi-counts the
  // interleaved run).
  const auto run_bundle_unit = [&](std::size_t p, std::uint32_t lo,
                                   std::uint32_t hi,
                                   const std::vector<std::uint8_t>& mask) {
    const SweepPoint& point = points[p];
    const std::uint32_t width = hi - lo;
    const double bundle_start = sweep_timer.seconds();
    std::vector<Graph> shared;
    if (config.reuse_graph) shared.reserve(width);
    for (std::uint32_t t = lo; t < hi; ++t) {
      UnitRecord& rec = records[p][t];
      rec.cells.resize(point.series.size());
      rec.t_start = bundle_start;
      rec.unit_lead = t == lo;
      if (config.reuse_graph) {
        Rng graph_rng = sweep_stream(config.master_seed, p, t, 0);
        rec.gen_thread = Executor::timing_slot();
        rec.gen_t_start = sweep_timer.seconds();
        WallTimer gen_timer;
        shared.push_back(point.graph(graph_rng));
        rec.gen_seconds = gen_timer.seconds();
        rec.gen_t_end = sweep_timer.seconds();
      }
    }
    for (std::size_t s = 0; s < point.series.size(); ++s) {
      if (!mask[s]) continue;
      const SweepSeriesSpec& spec = point.series[s];
      const double series_start = sweep_timer.seconds();
      // Processes hold Graph* and BundleTrial holds Rng*: reserve so the
      // backing storage never reallocates under them.
      std::vector<Graph> privates;
      std::vector<Rng> walk_rngs;
      std::vector<std::unique_ptr<WalkProcess>> walks;
      if (!config.reuse_graph) privates.reserve(width);
      walk_rngs.reserve(width);
      walks.reserve(width);
      std::vector<std::uint64_t> budgets(width, 0);
      std::vector<BundleTrial> bundle(width);
      for (std::uint32_t i = 0; i < width; ++i) {
        const std::uint32_t t = lo + i;
        SeriesCell& cell = records[p][t].cells[s];
        cell.thread = Executor::timing_slot();
        const Graph* g;
        if (config.reuse_graph) {
          g = &shared[i];
        } else {
          Rng graph_rng = sweep_stream(config.master_seed, p, t, 2 * s + 2);
          WallTimer gen_timer;
          privates.push_back(point.graph(graph_rng));
          cell.gen_seconds = gen_timer.seconds();
          g = &privates.back();
        }
        walk_rngs.push_back(sweep_stream(config.master_seed, p, t, 2 * s + 1));
        walks.push_back(spec.process(*g, walk_rngs.back()));
        budgets[i] =
            point.max_steps != 0 ? point.max_steps : default_step_budget(*g);
        bundle[i] =
            BundleTrial{walks.back().get(), &walk_rngs.back(), budgets[i], 1};
      }
      WallTimer walk_timer;
      std::vector<std::uint8_t> finished;
      if (spec.target == CoverTarget::kVertices) {
        finished = run_trial_bundle(
            std::span<const BundleTrial>(bundle), [](const WalkProcess& w) {
              return w.cover().all_vertices_covered();
            });
      } else {
        finished = run_trial_bundle(
            std::span<const BundleTrial>(bundle), [](const WalkProcess& w) {
              return w.cover().all_edges_covered();
            });
      }
      const double walk_secs = walk_timer.seconds();
      const double series_end = sweep_timer.seconds();
      for (std::uint32_t i = 0; i < width; ++i) {
        SeriesCell& cell = records[p][lo + i].cells[s];
        cell.ran = true;
        cell.covered = finished[i] != 0;
        const std::uint64_t result_step =
            spec.target == CoverTarget::kVertices
                ? walks[i]->cover().vertex_cover_step()
                : walks[i]->cover().edge_cover_step();
        cell.value = static_cast<double>(cell.covered ? result_step : budgets[i]);
        // One interleaved run = one busy span: the lead cell carries it;
        // non-lead cells are zero-span points at the bundle's end, so each
        // still counts one series completion in the timeline.
        cell.walk_seconds = i == 0 ? walk_secs : 0.0;
        cell.t_start = i == 0 ? series_start : series_end;
        cell.t_end = series_end;
      }
    }
    const double bundle_end = sweep_timer.seconds();
    for (std::uint32_t t = lo; t < hi; ++t) records[p][t].t_end = bundle_end;
  };

  // One task per point: the point runs its own adaptive round loop, with
  // the old global round barrier replaced by a nested scope wait. A
  // point's batch sizes and open-series masks were always pure functions
  // of its *own* completed samples, so per-point barriers replay exactly
  // the trial schedule the global barrier produced — bit-identical
  // samples — while freeing other points to keep running.
  const auto run_point = [&](std::size_t p) {
    const SweepPoint& point = points[p];
    std::vector<std::uint8_t> open(point.series.size(), 1);
    std::uint32_t done_p = 0;
    for (;;) {
      const bool point_open =
          point.series.empty()
              ? done_p == 0
              : std::any_of(open.begin(), open.end(),
                            [](std::uint8_t o) { return o != 0; });
      if (!point_open || done_p >= cap) break;
      // First round runs the floor; later rounds grow geometrically (half
      // of what is already done, at least 1) so a slow-converging series
      // needs only O(log(cap/floor)) barriers to reach the cap.
      const std::uint32_t batch = std::min(
          done_p == 0 ? floor_trials : std::max(1u, done_p / 2),
          cap - done_p);
      records[p].resize(done_p + batch);
      const std::uint32_t width = std::max(1u, config.bundle_width);
      if (width <= 1) {
        if (parallel) {
          TaskScope round_scope;
          for (std::uint32_t t = done_p; t < done_p + batch; ++t)
            round_scope.spawn([&run_unit, p, t, mask = open] {
              run_unit(p, t, mask);
            });
          round_scope.wait();
        } else {
          for (std::uint32_t t = done_p; t < done_p + batch; ++t)
            run_unit(p, t, open);
        }
      } else {
        // Bundled rounds: the round's trials are packed into bundles of
        // `width` consecutive trials (ascending; the last may be short).
        // Each bundle is one scheduler unit. Round barriers are unchanged,
        // so the adaptive schedule stays a pure function of the samples.
        if (parallel) {
          TaskScope round_scope;
          for (std::uint32_t lo = done_p; lo < done_p + batch; lo += width) {
            const std::uint32_t hi = std::min(lo + width, done_p + batch);
            round_scope.spawn([&run_bundle_unit, p, lo, hi, mask = open] {
              run_bundle_unit(p, lo, hi, mask);
            });
          }
          round_scope.wait();
        } else {
          for (std::uint32_t lo = done_p; lo < done_p + batch; lo += width)
            run_bundle_unit(p, lo, std::min(lo + width, done_p + batch), open);
        }
      }
      done_p += batch;

      // Closure pass at the round barrier: a pure function of this
      // point's completed samples, which are bit-identical across thread
      // counts, so the adaptive schedule is too.
      for (std::size_t s = 0; s < point.series.size(); ++s) {
        if (!open[s]) continue;
        if (done_p >= cap) {
          open[s] = 0;
          continue;
        }
        if (!adaptive) continue;  // fixed mode closes via the cap above
        std::vector<double> samples;
        samples.reserve(done_p);
        for (std::uint32_t t = 0; t < done_p; ++t)
          if (records[p][t].cells[s].ran)
            samples.push_back(records[p][t].cells[s].value);
        if (samples.size() >= floor_trials &&
            rel_ci_width(summarize(samples)) <= config.ci_rel_target)
          open[s] = 0;
      }
    }
    done[p] = done_p;
  };

  const std::vector<std::size_t> order = submission_order(points);
  if (parallel) {
    TaskScope sweep_scope(workers);
    for (const std::size_t p : order)
      sweep_scope.spawn([&run_point, p] { run_point(p); });
    sweep_scope.wait();
  } else {
    for (const std::size_t p : order) run_point(p);
  }

  SweepResult out;
  out.name = name;
  out.master_seed = config.master_seed;
  out.trials = config.trials;
  out.max_trials = config.max_trials;
  out.ci_rel_target = adaptive ? config.ci_rel_target : 0.0;
  out.threads = config.threads;
  out.reuse_graph = config.reuse_graph;
  out.pinned = Executor::pinning_enabled();
  out.wall_seconds = sweep_timer.seconds();
  out.points.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    const SweepPoint& point = points[p];
    SweepPointResult pr;
    pr.label = point.label;
    pr.params = point.params;
    pr.series.resize(point.series.size());
    for (const UnitRecord& rec : records[p]) {
      pr.gen_seconds += rec.gen_seconds;
      for (std::size_t s = 0; s < point.series.size(); ++s) {
        const SeriesCell& cell = rec.cells[s];
        if (!cell.ran) continue;
        pr.gen_seconds += cell.gen_seconds;
        SweepSeriesResult& sr = pr.series[s];
        sr.samples.push_back(cell.value);
        sr.walk_seconds += cell.walk_seconds;
        if (!cell.covered) ++sr.uncovered_trials;
      }
    }
    for (std::size_t s = 0; s < point.series.size(); ++s) {
      SweepSeriesResult& sr = pr.series[s];
      sr.name = point.series[s].name;
      sr.stats = summarize(sr.samples);
      sr.trials_used = static_cast<std::uint32_t>(sr.samples.size());
      sr.ci_rel_width = rel_ci_width(sr.stats);
      out.walk_seconds += sr.walk_seconds;
    }
    out.gen_seconds += pr.gen_seconds;
    out.points.push_back(std::move(pr));
  }

  // Unit spread: the straggler report. A slowest unit far below the wall
  // clock means trial-level parallelism kept the sweep from being bounded
  // by its biggest unit. Only lead records carry a unit span: width-1 units
  // are their own lead, a bundle's lead is its first trial — so bundled
  // sweeps count bundles here, matching what the scheduler actually ran.
  double unit_min = 0.0, unit_max = 0.0;
  std::uint32_t unit_count = 0;
  for (const auto& point_records : records) {
    for (const UnitRecord& rec : point_records) {
      if (!rec.unit_lead) continue;
      const double span = rec.t_end - rec.t_start;
      if (unit_count == 0 || span < unit_min) unit_min = span;
      if (span > unit_max) unit_max = span;
      ++unit_count;
    }
  }
  out.unit_count = unit_count;
  out.unit_seconds_min = unit_min;
  out.unit_seconds_max = unit_max;

  // Per-thread throughput-over-time: fold every recorded busy span
  // (generation + each series run) into fixed-width buckets over the
  // sweep's wall clock, keyed by the thread's timing slot. `units` counts
  // series completions in the bucket where each series ended.
  const double bucket_seconds =
      std::max(out.wall_seconds, 1e-9) / static_cast<double>(kTimelineBuckets);
  out.timeline_bucket_seconds = bucket_seconds;
  std::map<std::uint32_t, std::size_t> slot_index;
  const auto slot_of = [&](std::uint32_t thread) -> SweepThreadTimeline& {
    const auto [it, inserted] =
        slot_index.try_emplace(thread, out.thread_timeline.size());
    if (inserted) {
      SweepThreadTimeline timeline;
      timeline.thread = thread;
      timeline.busy_seconds.assign(kTimelineBuckets, 0.0);
      timeline.units.assign(kTimelineBuckets, 0);
      out.thread_timeline.push_back(std::move(timeline));
    }
    return out.thread_timeline[it->second];
  };
  const auto bucket_of = [&](double at) {
    const double b = std::floor(at / bucket_seconds);
    return static_cast<std::size_t>(std::clamp(
        b, 0.0, static_cast<double>(kTimelineBuckets - 1)));
  };
  const auto add_busy = [&](std::uint32_t thread, double t0, double t1) {
    if (t1 <= t0) return;
    SweepThreadTimeline& timeline = slot_of(thread);
    for (std::size_t b = bucket_of(t0); b <= bucket_of(t1); ++b) {
      const double lo = static_cast<double>(b) * bucket_seconds;
      const double overlap =
          std::min(t1, lo + bucket_seconds) - std::max(t0, lo);
      if (overlap > 0.0) timeline.busy_seconds[b] += overlap;
    }
  };
  for (const auto& point_records : records) {
    for (const UnitRecord& rec : point_records) {
      if (rec.gen_t_end > rec.gen_t_start)
        add_busy(rec.gen_thread, rec.gen_t_start, rec.gen_t_end);
      for (const SeriesCell& cell : rec.cells) {
        if (!cell.ran) continue;
        add_busy(cell.thread, cell.t_start, cell.t_end);
        slot_of(cell.thread).units[bucket_of(cell.t_end)] += 1;
      }
    }
  }
  std::stable_sort(out.thread_timeline.begin(), out.thread_timeline.end(),
                   [](const SweepThreadTimeline& a,
                      const SweepThreadTimeline& b) {
                     return a.thread < b.thread;
                   });
  return out;
}

}  // namespace ewalk
