#include "sweep/sweep.hpp"

#include <optional>
#include <thread>

#include "engine/budget.hpp"
#include "engine/driver.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace ewalk {

namespace {

// What one unit task (one point, one trial) records for one series.
struct SeriesCell {
  double value = 0.0;
  bool covered = false;
  double walk_seconds = 0.0;
};

// What one unit task records in total. Units write disjoint slots of a
// preallocated vector, so the pool needs no locking around results.
struct UnitRecord {
  double gen_seconds = 0.0;
  std::vector<SeriesCell> cells;
};

}  // namespace

Rng sweep_stream(std::uint64_t master_seed, std::uint64_t point,
                 std::uint64_t trial, std::uint64_t role) {
  // Fold each index into the state with one SplitMix64 step; the +1 keeps
  // index 0 from degenerating into a plain re-hash of the previous state.
  std::uint64_t h = master_seed;
  for (const std::uint64_t v : {point, trial, role}) {
    std::uint64_t s = h + 0x9E3779B97F4A7C15ULL * (v + 1);
    h = splitmix64(s);
  }
  return Rng(h);
}

SweepResult run_sweep(const std::string& name,
                      const std::vector<SweepPoint>& points,
                      const SweepConfig& config) {
  const std::uint32_t trials = config.trials;
  const std::size_t total =
      points.size() * static_cast<std::size_t>(trials);
  std::vector<UnitRecord> records(total);

  const auto unit = [&](std::uint32_t u) {
    const std::size_t p = u / trials;
    const std::uint32_t t = u % trials;
    const SweepPoint& point = points[p];
    UnitRecord& rec = records[u];
    rec.cells.resize(point.series.size());

    std::optional<Graph> shared;
    if (config.reuse_graph) {
      Rng graph_rng = sweep_stream(config.master_seed, p, t, 0);
      WallTimer gen_timer;
      shared.emplace(point.graph(graph_rng));
      rec.gen_seconds = gen_timer.seconds();
    }
    for (std::size_t s = 0; s < point.series.size(); ++s) {
      const SweepSeriesSpec& spec = point.series[s];
      Graph local;
      const Graph* g;
      if (config.reuse_graph) {
        g = &*shared;
      } else {
        Rng graph_rng = sweep_stream(config.master_seed, p, t, 2 * s + 2);
        WallTimer gen_timer;
        local = point.graph(graph_rng);
        rec.gen_seconds += gen_timer.seconds();
        g = &local;
      }
      Rng walk_rng = sweep_stream(config.master_seed, p, t, 2 * s + 1);
      auto walk = spec.process(*g, walk_rng);
      const std::uint64_t budget =
          point.max_steps != 0 ? point.max_steps : default_step_budget(*g);
      SeriesCell& cell = rec.cells[s];
      WallTimer walk_timer;
      bool done;
      std::uint64_t result_step;
      if (spec.target == CoverTarget::kVertices) {
        done = run_until(*walk, walk_rng, VertexCovered{}, budget);
        result_step = walk->cover().vertex_cover_step();
      } else {
        done = run_until(*walk, walk_rng, EdgesCovered{}, budget);
        result_step = walk->cover().edge_cover_step();
      }
      cell.walk_seconds = walk_timer.seconds();
      cell.covered = done;
      cell.value = static_cast<double>(done ? result_step : budget);
    }
  };

  std::uint32_t workers =
      config.threads == 0 ? std::thread::hardware_concurrency() : config.threads;
  if (workers == 0) workers = 1;

  WallTimer sweep_timer;
  if (total > 0) {
    if (workers <= 1) {
      for (std::size_t u = 0; u < total; ++u)
        unit(static_cast<std::uint32_t>(u));
    } else {
      ThreadPool::instance().parallel_for(static_cast<std::uint32_t>(total),
                                          workers, unit);
    }
  }

  SweepResult out;
  out.name = name;
  out.master_seed = config.master_seed;
  out.trials = trials;
  out.threads = config.threads;
  out.reuse_graph = config.reuse_graph;
  out.wall_seconds = sweep_timer.seconds();
  out.points.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    const SweepPoint& point = points[p];
    SweepPointResult pr;
    pr.label = point.label;
    pr.params = point.params;
    pr.series.resize(point.series.size());
    for (std::uint32_t t = 0; t < trials; ++t) {
      const UnitRecord& rec = records[p * trials + t];
      pr.gen_seconds += rec.gen_seconds;
      for (std::size_t s = 0; s < point.series.size(); ++s) {
        const SeriesCell& cell = rec.cells[s];
        SweepSeriesResult& sr = pr.series[s];
        sr.samples.push_back(cell.value);
        sr.walk_seconds += cell.walk_seconds;
        if (!cell.covered) ++sr.uncovered_trials;
      }
    }
    for (std::size_t s = 0; s < point.series.size(); ++s) {
      SweepSeriesResult& sr = pr.series[s];
      sr.name = point.series[s].name;
      sr.stats = summarize(sr.samples);
      out.walk_seconds += sr.walk_seconds;
    }
    out.gen_seconds += pr.gen_seconds;
    out.points.push_back(std::move(pr));
  }
  return out;
}

}  // namespace ewalk
