#include "sweep/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <thread>

#include "engine/budget.hpp"
#include "engine/driver.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace ewalk {

namespace {

// What one unit task (one point, one trial) records for one series.
struct SeriesCell {
  double value = 0.0;
  bool covered = false;
  bool ran = false;  // false when the series was already closed at this trial
  double walk_seconds = 0.0;
};

// What one unit task records in total. Units write disjoint slots of a
// preallocated structure, so the pool needs no locking around results.
struct UnitRecord {
  double gen_seconds = 0.0;
  std::vector<SeriesCell> cells;
};

// One (point, trial) unit scheduled in the current round, with the subset of
// series still open at schedule time. The mask is fixed at the round barrier,
// so which series run trial t is a pure function of completed samples.
struct UnitTask {
  std::size_t point = 0;
  std::uint32_t trial = 0;
  std::vector<std::uint8_t> run;  // per-series: measure this trial?
};

// Relative CI width used by both the adaptive stopping rule and the reports:
// 95% half-width over |mean|, defined as 0 when the mean is 0 (degenerate —
// every sample 0 — where the CI is exactly tight anyway).
double rel_ci_width(const SummaryStats& stats) {
  return stats.mean != 0.0 ? stats.ci95_halfwidth() / std::abs(stats.mean)
                           : 0.0;
}

}  // namespace

Rng sweep_stream(std::uint64_t master_seed, std::uint64_t point,
                 std::uint64_t trial, std::uint64_t role) {
  // Fold each index into the state with one SplitMix64 step; the +1 keeps
  // index 0 from degenerating into a plain re-hash of the previous state.
  std::uint64_t h = master_seed;
  for (const std::uint64_t v : {point, trial, role}) {
    std::uint64_t s = h + 0x9E3779B97F4A7C15ULL * (v + 1);
    h = splitmix64(s);
  }
  return Rng(h);
}

SweepResult run_sweep(const std::string& name,
                      const std::vector<SweepPoint>& points,
                      const SweepConfig& config) {
  const std::uint32_t floor_trials = std::max(1u, config.trials);
  const bool adaptive = config.max_trials > 0;
  const std::uint32_t cap =
      adaptive ? std::max(config.max_trials, floor_trials) : floor_trials;

  std::uint32_t workers =
      config.threads == 0 ? std::thread::hardware_concurrency() : config.threads;
  if (workers == 0) workers = 1;

  // Per-point progress. records[p][t] is trial t of point p; open[p][s] says
  // whether series s still accrues trials; done[p] counts scheduled trials.
  std::vector<std::vector<UnitRecord>> records(points.size());
  std::vector<std::vector<std::uint8_t>> open(points.size());
  std::vector<std::uint32_t> done(points.size(), 0);
  for (std::size_t p = 0; p < points.size(); ++p)
    open[p].assign(points[p].series.size(), 1);

  const auto run_unit = [&](const UnitTask& task) {
    const SweepPoint& point = points[task.point];
    UnitRecord& rec = records[task.point][task.trial];
    rec.cells.resize(point.series.size());

    std::optional<Graph> shared;
    if (config.reuse_graph) {
      Rng graph_rng = sweep_stream(config.master_seed, task.point, task.trial, 0);
      WallTimer gen_timer;
      shared.emplace(point.graph(graph_rng));
      rec.gen_seconds = gen_timer.seconds();
    }
    for (std::size_t s = 0; s < point.series.size(); ++s) {
      if (!task.run[s]) continue;
      const SweepSeriesSpec& spec = point.series[s];
      Graph local;
      const Graph* g;
      if (config.reuse_graph) {
        g = &*shared;
      } else {
        Rng graph_rng =
            sweep_stream(config.master_seed, task.point, task.trial, 2 * s + 2);
        WallTimer gen_timer;
        local = point.graph(graph_rng);
        rec.gen_seconds += gen_timer.seconds();
        g = &local;
      }
      Rng walk_rng =
          sweep_stream(config.master_seed, task.point, task.trial, 2 * s + 1);
      auto walk = spec.process(*g, walk_rng);
      const std::uint64_t budget =
          point.max_steps != 0 ? point.max_steps : default_step_budget(*g);
      SeriesCell& cell = rec.cells[s];
      WallTimer walk_timer;
      bool done_walk;
      std::uint64_t result_step;
      if (spec.target == CoverTarget::kVertices) {
        done_walk = run_until(*walk, walk_rng, VertexCovered{}, budget);
        result_step = walk->cover().vertex_cover_step();
      } else {
        done_walk = run_until(*walk, walk_rng, EdgesCovered{}, budget);
        result_step = walk->cover().edge_cover_step();
      }
      cell.walk_seconds = walk_timer.seconds();
      cell.covered = done_walk;
      cell.ran = true;
      cell.value = static_cast<double>(done_walk ? result_step : budget);
    }
  };

  WallTimer sweep_timer;
  while (true) {
    // Schedule the next round at a barrier: every open point contributes a
    // deterministic batch of fresh trial indices with its current open-series
    // mask. Points with no series run the floor once (graph-generation-only
    // sweeps) and then stop.
    std::vector<UnitTask> round;
    for (std::size_t p = 0; p < points.size(); ++p) {
      const bool point_open =
          points[p].series.empty()
              ? done[p] == 0
              : std::any_of(open[p].begin(), open[p].end(),
                            [](std::uint8_t o) { return o != 0; });
      if (!point_open || done[p] >= cap) continue;
      // First round runs the floor; later rounds grow geometrically (half of
      // what is already done, at least 1) so a slow-converging series needs
      // only O(log(cap/floor)) barriers to reach the cap.
      const std::uint32_t batch = std::min(
          done[p] == 0 ? floor_trials : std::max(1u, done[p] / 2),
          cap - done[p]);
      records[p].resize(done[p] + batch);
      for (std::uint32_t t = done[p]; t < done[p] + batch; ++t)
        round.push_back(UnitTask{p, t, open[p]});
      done[p] += batch;
    }
    if (round.empty()) break;

    if (workers <= 1 || round.size() == 1) {
      for (const UnitTask& task : round) run_unit(task);
    } else {
      ThreadPool::instance().parallel_for(
          static_cast<std::uint32_t>(round.size()), workers,
          [&](std::uint32_t u) { run_unit(round[u]); });
    }

    // Closure pass (single-threaded, at the barrier): the stopping decision
    // is a pure function of the completed samples, which are bit-identical
    // across thread counts, so the adaptive schedule is too.
    for (std::size_t p = 0; p < points.size(); ++p) {
      for (std::size_t s = 0; s < points[p].series.size(); ++s) {
        if (!open[p][s]) continue;
        if (done[p] >= cap) {
          open[p][s] = 0;
          continue;
        }
        if (!adaptive) continue;  // fixed mode closes via the cap above
        std::vector<double> samples;
        samples.reserve(done[p]);
        for (std::uint32_t t = 0; t < done[p]; ++t)
          if (records[p][t].cells[s].ran)
            samples.push_back(records[p][t].cells[s].value);
        if (samples.size() >= floor_trials &&
            rel_ci_width(summarize(samples)) <= config.ci_rel_target)
          open[p][s] = 0;
      }
    }
  }

  SweepResult out;
  out.name = name;
  out.master_seed = config.master_seed;
  out.trials = config.trials;
  out.max_trials = config.max_trials;
  out.ci_rel_target = adaptive ? config.ci_rel_target : 0.0;
  out.threads = config.threads;
  out.reuse_graph = config.reuse_graph;
  out.wall_seconds = sweep_timer.seconds();
  out.points.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    const SweepPoint& point = points[p];
    SweepPointResult pr;
    pr.label = point.label;
    pr.params = point.params;
    pr.series.resize(point.series.size());
    for (const UnitRecord& rec : records[p]) {
      pr.gen_seconds += rec.gen_seconds;
      for (std::size_t s = 0; s < point.series.size(); ++s) {
        const SeriesCell& cell = rec.cells[s];
        if (!cell.ran) continue;
        SweepSeriesResult& sr = pr.series[s];
        sr.samples.push_back(cell.value);
        sr.walk_seconds += cell.walk_seconds;
        if (!cell.covered) ++sr.uncovered_trials;
      }
    }
    for (std::size_t s = 0; s < point.series.size(); ++s) {
      SweepSeriesResult& sr = pr.series[s];
      sr.name = point.series[s].name;
      sr.stats = summarize(sr.samples);
      sr.trials_used = static_cast<std::uint32_t>(sr.samples.size());
      sr.ci_rel_width = rel_ci_width(sr.stats);
      out.walk_seconds += sr.walk_seconds;
    }
    out.gen_seconds += pr.gen_seconds;
    out.points.push_back(std::move(pr));
  }
  return out;
}

}  // namespace ewalk
