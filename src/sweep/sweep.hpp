// Parameter-sweep driver: the one scheduler every figure-scale experiment
// runs through.
//
// A sweep is a grid of SweepPoints (e.g. Figure 1's degree × size grid);
// each point names a graph factory and one or more measured series (process
// + cover target). run_sweep submits one task per point to the work-stealing
// Executor — largest expected cost first, so the big-n point starts first
// instead of last — and each point task fans its (point, trial) units out as
// nested TaskScope subtasks (and a multi-series unit fans its series out one
// level deeper). Parallelism therefore spans the whole grid AND the trials
// inside one point: the straggler point no longer bounds sweep wall-clock
// 1:1. Each unit records which scheduler thread ran it and when, and
// run_sweep aggregates those spans into a per-thread throughput-over-time
// timeline (SWEEP schema v3), following pop_setbench's measurement
// discipline.
//
// Trial counts are either fixed (SweepConfig::max_trials == 0: every series
// runs exactly `trials` trials, the historical behaviour) or adaptive
// (max_trials > 0: every series runs at least `trials` trials — the floor —
// and keeps accruing trials in barrier-synchronised rounds until its 95% CI
// half-width falls to ci_rel_target of its mean or the max_trials cap is
// hit). Adaptive stopping decisions are made only at per-point round
// barriers (a nested scope wait), from completed samples only, so they are
// a pure function of the sample values — and since each point's round
// sequence never depended on other points, the per-point barriers produce
// exactly the trial schedule the old global barrier did.
//
// Determinism: every rng used by a unit is derived by sweep_stream() as a
// pure function of (master_seed, point index, trial index, role), never of
// thread identity, scheduling order, or the adaptive state. Sweep samples
// are therefore bit-identical across --threads 1 / 4 / hardware, and any
// common trial prefix is bit-identical between fixed and adaptive runs
// (pinned by tests/sweep_test.cpp); only the wall-clock fields vary.
//
// Graph reuse: with SweepConfig::reuse_graph (the default) the unit builds
// one graph per (point, trial) and runs every series of the point on it —
// for a 3-series point that is 3× less generation work, and the head-to-head
// comparison (SRW vs E-process on the *same* instance) is what Figure-1
// style plots want. With reuse off each series draws an independent graph
// from its own stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "covertime/experiment.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ewalk {

/// One measured series at a sweep point: a named process driven to a cover
/// target on the point's graph.
struct SweepSeriesSpec {
  std::string name;                              ///< series key, e.g. "eprocess"
  ProcessFactory process;                        ///< fresh process per trial
  CoverTarget target = CoverTarget::kVertices;   ///< what the trial measures
};

/// One machine-readable coordinate of a sweep point, e.g. {"n", 100000}.
struct SweepParam {
  std::string name;   ///< coordinate name (column key in SWEEP_*.json)
  double value;       ///< coordinate value
};

/// One point of the parameter grid: a graph family instantiation plus the
/// series measured on it.
struct SweepPoint {
  std::string label;                    ///< human-readable point id, e.g. "d3-n100000"
  std::vector<SweepParam> params;       ///< machine-readable coordinates
  GraphFactory graph;                   ///< fresh graph per trial (see reuse_graph)
  std::vector<SweepSeriesSpec> series;  ///< processes measured on this point
  std::uint64_t max_steps = 0;          ///< 0 = default_step_budget(g)
};

/// Sweep-wide execution configuration.
struct SweepConfig {
  std::uint32_t trials = 5;       ///< trials per point — the floor in adaptive mode (the paper used 5)
  std::uint32_t threads = 0;      ///< parallelism cap; 0 = hardware concurrency
  std::uint64_t master_seed = 1;  ///< root of every derived stream
  bool reuse_graph = true;        ///< one graph per (point, trial) shared by all series
  /// Adaptive-trials cap: 0 keeps the fixed `trials`-per-series behaviour;
  /// > 0 lets each (point, series) accrue trials past the `trials` floor —
  /// in deterministic barrier rounds — until its CI is narrow enough (see
  /// ci_rel_target) or this cap is reached. Clamped up to `trials`.
  std::uint32_t max_trials = 0;
  /// Adaptive stopping target: a series closes once its 95% CI half-width
  /// is <= this fraction of |mean| (and the floor is met). Only consulted
  /// when max_trials > 0.
  double ci_rel_target = 0.05;
  /// Trials interleaved per scheduler unit (engine/bundle.hpp): <= 1 keeps
  /// the historical one-(point, trial)-unit schedule; W > 1 packs each
  /// adaptive round's trials into bundles of W consecutive trials advanced
  /// round-robin in one loop, hiding DRAM latency on paper-range graphs.
  /// The internal trial order is fixed (ascending) and every trial keeps
  /// its own sweep_stream rngs and its sequential check schedule, so all
  /// samples are bit-identical across bundle widths AND thread counts;
  /// only wall-clock bookkeeping (unit spread, timeline) reflects the
  /// bundling.
  std::uint32_t bundle_width = 1;
};

/// Aggregate of one series at one point.
struct SweepSeriesResult {
  std::string name;                      ///< series key
  SummaryStats stats;                    ///< over the per-trial samples
  std::vector<double> samples;           ///< one per trial run, trial order
  std::uint32_t uncovered_trials = 0;    ///< trials clamped to the budget
  std::uint32_t trials_used = 0;         ///< trials actually run (== samples.size())
  double ci_rel_width = 0.0;             ///< final 95% CI half-width / |mean| (0 when mean is 0)
  double walk_seconds = 0.0;             ///< walking wall time, summed over trials
};

/// All series results at one point.
struct SweepPointResult {
  std::string label;                     ///< the point's label
  std::vector<SweepParam> params;        ///< the point's coordinates
  std::vector<SweepSeriesResult> series; ///< one entry per SweepSeriesSpec
  double gen_seconds = 0.0;              ///< graph construction wall time, summed over trials
};

/// Activity of one scheduler thread over the sweep's wall clock, bucketed
/// into fixed-width intervals: how long the thread spent doing sweep work
/// (generation + walking) in each bucket, and how many series measurements
/// it completed there. Threads that never touched the sweep are omitted.
struct SweepThreadTimeline {
  std::uint32_t thread = 0;          ///< Executor::timing_slot of the thread
  std::vector<double> busy_seconds;  ///< busy time per bucket
  std::vector<std::uint64_t> units;  ///< series completions per bucket
};

/// The complete sweep, including the generation-vs-walk wall-clock split
/// (the number that tells whether graph construction dominates a sweep)
/// and the per-thread timeline the v3 report serialises.
struct SweepResult {
  std::string name;                    ///< sweep name (file stem of SWEEP_<name>.json)
  std::uint64_t master_seed = 0;       ///< seed the streams were derived from
  std::uint32_t trials = 0;            ///< trials floor per point
  std::uint32_t max_trials = 0;        ///< adaptive cap as configured (0 = fixed trials)
  double ci_rel_target = 0.0;          ///< adaptive CI target (0 when fixed)
  std::uint32_t threads = 0;           ///< configured parallelism (0 = hardware)
  bool reuse_graph = true;             ///< whether series shared per-trial graphs
  double gen_seconds = 0.0;            ///< total graph-generation wall time (CPU-side, summed over tasks)
  double walk_seconds = 0.0;           ///< total walking wall time (summed over tasks)
  double wall_seconds = 0.0;           ///< elapsed wall time of the whole sweep
  bool pinned = false;                 ///< worker affinity pinning was active
  std::uint32_t unit_count = 0;        ///< (point, trial) units executed
  double unit_seconds_min = 0.0;       ///< fastest unit's wall-clock span
  double unit_seconds_max = 0.0;       ///< slowest unit's wall-clock span
  double timeline_bucket_seconds = 0.0;///< width of one timeline bucket
  std::vector<SweepThreadTimeline> thread_timeline; ///< per-thread activity, thread order
  std::vector<SweepPointResult> points;///< one entry per SweepPoint, point order
};

/// Derives the rng stream for (point, trial, role) from the master seed —
/// a pure function of its arguments, so neither the pool thread a unit runs
/// on nor the adaptive trial count can ever change a sample. Roles: 0 = the
/// shared per-(point, trial) graph stream; 2s+1 = the walk stream of series
/// s; 2s+2 = the private graph stream of series s when reuse is off.
Rng sweep_stream(std::uint64_t master_seed, std::uint64_t point,
                 std::uint64_t trial, std::uint64_t role);

/// Runs the sweep on the work-stealing Executor: one task per point,
/// submitted largest-expected-cost-first, each fanning its trials (and a
/// multi-series unit its series) out as nested subtasks; the calling
/// thread participates, and threads <= 1 runs everything inline. Trials
/// that fail to reach their target within the step budget contribute the
/// budget as their sample and are counted in uncovered_trials. With
/// SweepConfig::max_trials > 0 trials are scheduled in adaptive per-point
/// rounds — closed series stop consuming trials while the rest of their
/// point keeps going — otherwise every series runs exactly
/// SweepConfig::trials trials.
SweepResult run_sweep(const std::string& name,
                      const std::vector<SweepPoint>& points,
                      const SweepConfig& config);

}  // namespace ewalk
