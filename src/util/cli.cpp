#include "util/cli.hpp"

namespace ewalk {

const std::vector<OptionAlias>& run_option_aliases() {
  static const std::vector<OptionAlias> aliases = {
      {"walk", "process"},
      {"generator", "graph"},
  };
  return aliases;
}

void canonicalize_run_params(ParamMap& params) {
  for (const OptionAlias& a : run_option_aliases()) {
    if (!params.has(a.alias)) continue;
    const std::string value = params.get(a.alias, "");
    if (params.has(a.canonical) && params.get(a.canonical, "") != value)
      throw std::invalid_argument(
          "--" + a.alias + " is a synonym of --" + a.canonical +
          ", but both were given with different values ('" + value + "' vs '" +
          params.get(a.canonical, "") + "')");
    params.set(a.canonical, value);
    params.erase(a.alias);
  }
}

Cli::Cli(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      params_.set(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      params_.set(arg, argv[++i]);
    } else {
      params_.set(arg, "true");
    }
  }
  canonicalize_run_params(params_);
}

}  // namespace ewalk
