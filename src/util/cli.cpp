#include "util/cli.hpp"

namespace ewalk {

Cli::Cli(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      params_.set(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      params_.set(arg, argv[++i]);
    } else {
      params_.set(arg, "true");
    }
  }
}

}  // namespace ewalk
