#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace ewalk {

Cli::Cli(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoll(it->second);
}

std::uint64_t Cli::get_u64(const std::string& key, std::uint64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stoull(it->second);
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::stod(it->second);
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace ewalk
