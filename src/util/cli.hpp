// Tiny CLI flag parser for bench/example binaries.
//
// Accepted forms: --key=value, --key value, and bare --flag (boolean true).
// Unknown positional arguments are collected in positionals(). Parsed flags
// are held in an engine ParamMap, which also supplies the typed getters —
// one parser implementation serves both surfaces, so `--lazy yes` on the
// command line and ParamMap{{"lazy", "yes"}} in code cannot disagree.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/params.hpp"

namespace ewalk {

/// Parses a comma-separated list of unsigned integers ("3,4,8" -> {3, 4, 8}).
/// Every token must be wholly numeric: a typo'd "1e5" or "10k" is an
/// std::invalid_argument, never a silently truncated leading value.
inline std::vector<std::uint64_t> parse_u64_list(const std::string& spec) {
  std::vector<std::uint64_t> values;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    if (token.empty() ||
        token.find_first_not_of("0123456789") != std::string::npos)
      throw std::invalid_argument("bad unsigned value in list: '" + token +
                                  "' (want e.g. 3,4,8)");
    try {
      values.push_back(std::stoull(token));
    } catch (const std::out_of_range&) {
      throw std::invalid_argument("value out of range in list: '" + token + "'");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return values;
}

/// One row of the canonical run-option table: a historical alias spelling
/// and the canonical key it folds into.
struct OptionAlias {
  std::string alias;      ///< accepted synonym, e.g. "walk"
  std::string canonical;  ///< canonical key, e.g. "process"
};

/// The canonical run-option table shared by `ewalk`, `ewalkd`, and the
/// benches: every accepted synonym of a run-level option, mapped to its one
/// canonical spelling. CLI flag parsing (Cli) and the server's JSON request
/// fields (src/serve/protocol.cpp) both fold aliases through this table, so
/// a flag and its request-field twin cannot diverge.
const std::vector<OptionAlias>& run_option_aliases();

/// Rewrites every aliased key in `params` to its canonical spelling
/// (run_option_aliases), in place. A request naming an alias and its
/// canonical key with *different* values is ambiguous and throws
/// std::invalid_argument; naming both with equal values is folded silently.
void canonicalize_run_params(ParamMap& params);

class Cli {
 public:
  /// Parses argv. Aliased flags (--walk, --generator) are canonicalized at
  /// parse time via canonicalize_run_params, so downstream code only ever
  /// sees the canonical keys (--process, --graph).
  Cli(int argc, char** argv);

  bool has(const std::string& key) const { return params_.has(key); }

  std::string get(const std::string& key, const std::string& fallback) const {
    return params_.get(key, fallback);
  }
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    return params_.get_int(key, fallback);
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    return params_.get_u64(key, fallback);
  }
  double get_double(const std::string& key, double fallback) const {
    return params_.get_double(key, fallback);
  }
  bool get_bool(const std::string& key, bool fallback) const {
    return params_.get_bool(key, fallback);
  }

  const std::vector<std::string>& positionals() const { return positionals_; }
  const std::string& program() const { return program_; }

  /// All parsed --key values, for forwarding into engine registries.
  const ParamMap& params() const { return params_; }
  const std::map<std::string, std::string>& values() const {
    return params_.values();
  }

 private:
  std::string program_;
  ParamMap params_;
  std::vector<std::string> positionals_;
};

}  // namespace ewalk
