// Tiny CLI flag parser for bench/example binaries.
//
// Accepted forms: --key=value, --key value, and bare --flag (boolean true).
// Unknown positional arguments are collected in positionals(). Parsed flags
// are held in an engine ParamMap, which also supplies the typed getters —
// one parser implementation serves both surfaces, so `--lazy yes` on the
// command line and ParamMap{{"lazy", "yes"}} in code cannot disagree.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/params.hpp"

namespace ewalk {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& key) const { return params_.has(key); }

  std::string get(const std::string& key, const std::string& fallback) const {
    return params_.get(key, fallback);
  }
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    return params_.get_int(key, fallback);
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    return params_.get_u64(key, fallback);
  }
  double get_double(const std::string& key, double fallback) const {
    return params_.get_double(key, fallback);
  }
  bool get_bool(const std::string& key, bool fallback) const {
    return params_.get_bool(key, fallback);
  }

  const std::vector<std::string>& positionals() const { return positionals_; }
  const std::string& program() const { return program_; }

  /// All parsed --key values, for forwarding into engine registries.
  const ParamMap& params() const { return params_; }
  const std::map<std::string, std::string>& values() const {
    return params_.values();
  }

 private:
  std::string program_;
  ParamMap params_;
  std::vector<std::string> positionals_;
};

}  // namespace ewalk
