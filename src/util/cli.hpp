// Tiny CLI flag parser for bench/example binaries.
//
// Accepted forms: --key=value, --key value, and bare --flag (boolean true).
// Unknown positional arguments are collected in positionals().
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ewalk {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positionals() const { return positionals_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace ewalk
