#include "util/csv.hpp"

#include <iomanip>
#include <limits>
#include <stdexcept>

namespace ewalk {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), width_(header.size()), out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << header[i];
  }
  out_ << '\n';
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::row(std::initializer_list<double> values) {
  if (values.size() != width_) throw std::runtime_error("CsvWriter: row width mismatch");
  bool first = true;
  out_ << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (double v : values) {
    if (!first) out_ << ',';
    first = false;
    out_ << v;
  }
  out_ << '\n';
  out_.flush();
}

void CsvWriter::row(const std::vector<std::string>& values) {
  if (values.size() != width_) throw std::runtime_error("CsvWriter: row width mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
  out_.flush();
}

}  // namespace ewalk
