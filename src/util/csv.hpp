// Minimal CSV emitter used by the bench harness to persist every series it
// prints, so figures can be re-plotted without re-running experiments.
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace ewalk {

/// Writes rows to a CSV file. Values are formatted with max_digits10 so
/// round-trips are lossless. Throws std::runtime_error if the file cannot be
/// opened.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Appends one row; size must match the header width.
  void row(std::initializer_list<double> values);
  void row(const std::vector<std::string>& values);

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::size_t width_;
  std::ofstream out_;
};

}  // namespace ewalk
