// Process peak-RSS probe for the memory-envelope numbers the generation
// microbench and REPRODUCING.md report (e.g. "n=1e7 r=4 stays within ~1.5x
// of the final CSR"). getrusage-based: zero overhead until queried, no
// /proc parsing, works in CI sandboxes.
#pragma once

#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace ewalk {

/// Peak resident set size of this process, in bytes, since process start
/// (ru_maxrss: KiB on Linux, bytes on macOS). Returns 0 on platforms
/// without getrusage — callers treat 0 as "unavailable" and skip the
/// memory line rather than printing nonsense.
inline std::uint64_t peak_rss_bytes() noexcept {
#if defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss);
#elif defined(__unix__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u;
#else
  return 0;
#endif
}

}  // namespace ewalk
