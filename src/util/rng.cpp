#include "util/rng.hpp"

namespace ewalk {

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t MersenneRng::uniform(std::uint64_t bound) {
  std::uniform_int_distribution<std::uint64_t> dist(0, bound - 1);
  return dist(engine_);
}

std::vector<Rng> derive_streams(std::uint64_t master_seed, std::size_t count) {
  std::vector<Rng> streams;
  streams.reserve(count);
  std::uint64_t sm = master_seed;
  for (std::size_t i = 0; i < count; ++i) {
    streams.emplace_back(splitmix64(sm));
  }
  return streams;
}

}  // namespace ewalk
