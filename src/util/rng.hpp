// Random number generation for ewalk.
//
// Two engines are provided behind an identical method surface:
//   * Rng         — xoshiro256** (Blackman/Vigna), the default engine. Fast,
//                   64-bit state-splittable; used by all walk processes.
//   * MersenneRng — std::mt19937_64 wrapper. The paper's experiments used the
//                   (Python) Mersenne Twister; this adapter lets tests and
//                   benches reproduce with the same generator family.
//
// Both are deterministic given a seed. Rng::split() derives an independent
// child stream (SplitMix64 over a stream counter), which the experiment
// harness uses to give each parallel trial its own reproducible stream.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <random>
#include <span>
#include <vector>

namespace ewalk {

/// SplitMix64 step: the canonical 64-bit mixer used for seeding and stream
/// derivation. Advances `state` and returns the next output.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Default engine: xoshiro256**. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from SplitMix64(seed).
  explicit Rng(std::uint64_t seed = 0xE5A1CEDULL) noexcept { reseed(seed); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased uniform draw from {0, 1, ..., bound-1}. Precondition: bound > 0.
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform real in [0, 1) with 53 bits of precision.
  double uniform_real() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p) draw.
  bool bernoulli(double p) noexcept { return uniform_real() < p; }

  /// Derives an independent child stream; deterministic in (this state, n-th call).
  Rng split() noexcept {
    std::uint64_t s = next_u64();
    return Rng(splitmix64(s));
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// std::mt19937_64 behind the same method surface as Rng.
class MersenneRng {
 public:
  using result_type = std::uint64_t;

  explicit MersenneRng(std::uint64_t seed = 0x6D743139ULL) : engine_(seed) {}

  static constexpr result_type min() noexcept { return std::mt19937_64::min(); }
  static constexpr result_type max() noexcept { return std::mt19937_64::max(); }

  result_type operator()() { return engine_(); }
  std::uint64_t next_u64() { return engine_(); }

  std::uint64_t uniform(std::uint64_t bound);
  double uniform_real() {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }
  bool bernoulli(double p) { return uniform_real() < p; }

 private:
  std::mt19937_64 engine_;
};

/// Derives `count` independent Rng streams from a master seed. Stream i is a
/// pure function of (master_seed, i) — parallel trials stay reproducible
/// regardless of thread scheduling.
std::vector<Rng> derive_streams(std::uint64_t master_seed, std::size_t count);

}  // namespace ewalk
