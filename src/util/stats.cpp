#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ewalk {

SummaryStats summarize(std::span<const double> samples) {
  SummaryStats s;
  s.count = samples.size();
  if (s.count == 0) return s;

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  const std::size_t mid = s.count / 2;
  s.median = (s.count % 2 == 1) ? sorted[mid] : 0.5 * (sorted[mid - 1] + sorted[mid]);

  double sum = 0.0;
  for (double x : sorted) sum += x;
  s.mean = sum / static_cast<double>(s.count);

  if (s.count >= 2) {
    double ss = 0.0;
    for (double x : sorted) {
      const double d = x - s.mean;
      ss += d * d;
    }
    s.variance = ss / static_cast<double>(s.count - 1);
    s.stddev = std::sqrt(s.variance);
    s.std_error = s.stddev / std::sqrt(static_cast<double>(s.count));
  }
  return s;
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  assert(xs.size() >= 2);
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    fit.intercept = sy / n;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double r = ys[i] - (fit.slope * xs[i] + fit.intercept);
      ss_res += r * r;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

LinearFit fit_c_nlogn(std::span<const double> ns, std::span<const double> cover_times) {
  assert(ns.size() == cover_times.size());
  std::vector<double> xs(ns.size());
  std::vector<double> ys(ns.size());
  for (std::size_t i = 0; i < ns.size(); ++i) {
    xs[i] = std::log(ns[i]);
    ys[i] = cover_times[i] / ns[i];
  }
  return linear_fit(xs, ys);
}

}  // namespace ewalk
