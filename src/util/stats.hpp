// Summary statistics and curve fitting for cover-time experiments.
//
// The paper's Figure 1 plots *normalised* cover time C_V/n against n and
// overlays c·ln n reference curves (c chosen by inspection). `fit_c_nlogn`
// recovers that constant by least squares instead of inspection.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ewalk {

/// Aggregate statistics of a sample. Built once from the full sample so that
/// exact medians/quantiles are available (samples here are small: trials).
struct SummaryStats {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased (n-1) sample variance; 0 when count < 2
  double stddev = 0.0;
  double std_error = 0.0;  ///< stddev / sqrt(count)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;

  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95_halfwidth() const noexcept { return 1.96 * std_error; }
};

/// Computes SummaryStats of `samples`. Empty input yields a zeroed struct.
SummaryStats summarize(std::span<const double> samples);

/// Ordinary least squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Fits `ys ~ slope*xs + intercept`. Requires xs.size() == ys.size() >= 2.
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Given points (n_i, cover_time_i), fits cover/n = c*ln(n) + b and returns
/// the fit (slope = c). This is the constant the paper reports as e.g.
/// "[0.93 n ln(n)]" for 3-regular graphs.
LinearFit fit_c_nlogn(std::span<const double> ns, std::span<const double> cover_times);

/// Streaming mean/variance accumulator (Welford) for large step-level series.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1 || x < min_) min_ = x;
    if (count_ == 1 || x > max_) max_ = x;
  }
  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ewalk
