#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace ewalk {

namespace {

// Worker index of the current thread (-1 on non-worker threads) and the
// stack of scopes whose tasks this thread is currently executing. The
// stack is what makes the admission cap deadlock-free: a thread already
// inside root scope R runs further R tasks without acquiring a token, so
// a nested wait() can always make progress on its own subtree.
thread_local std::int32_t tl_worker_index = -1;
thread_local std::vector<TaskScope*> tl_scope_stack;

std::atomic<bool> g_pinning_enabled{false};

}  // namespace

struct Executor::WorkerQueue {
  std::mutex mutex;
  std::deque<Task> tasks;
};

Executor& Executor::instance() {
  static Executor executor;
  return executor;
}

std::uint32_t Executor::hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : static_cast<std::uint32_t>(hw);
}

Executor::Executor() {
  // The caller participates in every wait(), so hw-1 helpers saturate the
  // machine; keep at least one so stealing exists even on one core.
  // EWALK_WORKERS overrides — stress tests use it to exercise real
  // stealing on single-core CI runners.
  std::uint32_t helpers = std::max(1u, hardware_threads() - 1);
  if (const char* env = std::getenv("EWALK_WORKERS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024)
      helpers = static_cast<std::uint32_t>(v);
  }
  injection_ = std::make_unique<WorkerQueue>();
  queues_.reserve(helpers);
  for (std::uint32_t w = 0; w < helpers; ++w)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(helpers);
  for (std::uint32_t w = 0; w < helpers; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stopping_ = true;
    ++epoch_;
  }
  sleep_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

bool Executor::pin_supported() noexcept {
#ifdef __linux__
  return true;
#else
  return false;
#endif
}

bool Executor::set_pinning(bool enabled) {
#ifndef __linux__
  (void)enabled;
  return false;
#else
  const std::uint32_t hw = hardware_threads();
  bool all_applied = true;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    cpu_set_t cpus;
    CPU_ZERO(&cpus);
    if (enabled) {
      CPU_SET((w + 1) % hw, &cpus);
    } else {
      for (std::uint32_t c = 0; c < hw && c < CPU_SETSIZE; ++c)
        CPU_SET(c, &cpus);
    }
    if (pthread_setaffinity_np(workers_[w].native_handle(), sizeof(cpus),
                               &cpus) != 0)
      all_applied = false;
  }
  g_pinning_enabled.store(enabled && all_applied, std::memory_order_relaxed);
  return all_applied;
#endif
}

bool Executor::pinning_enabled() noexcept {
  return g_pinning_enabled.load(std::memory_order_relaxed);
}

std::uint32_t Executor::timing_slot() noexcept {
  return tl_worker_index >= 0 ? static_cast<std::uint32_t>(tl_worker_index)
                              : instance().worker_count();
}

void Executor::bump_epoch() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    ++epoch_;
  }
  sleep_cv_.notify_all();
}

std::uint64_t Executor::epoch_now() {
  std::lock_guard<std::mutex> lock(sleep_mutex_);
  return epoch_;
}

bool Executor::scope_descends_from(const TaskScope* scope,
                                   const TaskScope* ancestor) noexcept {
  for (const TaskScope* s = scope; s != nullptr; s = s->parent_)
    if (s == ancestor) return true;
  return false;
}

bool Executor::this_thread_in_root(const TaskScope* root) noexcept {
  for (const TaskScope* s : tl_scope_stack)
    if (s->root_ == root) return true;
  return false;
}

void Executor::submit(Task task) {
  const std::int32_t self = tl_worker_index;
  WorkerQueue& queue =
      self >= 0 ? *queues_[static_cast<std::size_t>(self)] : *injection_;
  {
    std::lock_guard<std::mutex> lock(queue.mutex);
    queue.tasks.push_back(std::move(task));
  }
  bump_epoch();
}

std::optional<Executor::Taken> Executor::take_from(WorkerQueue& queue,
                                                   bool newest_first,
                                                   const TaskScope* within) {
  std::lock_guard<std::mutex> lock(queue.mutex);
  // Scan the whole queue, not just one end: a waiter's subtree task can
  // sit behind an ineligible task at the front, and an admission-blocked
  // task must never block an eligible one behind it.
  const std::size_t size = queue.tasks.size();
  for (std::size_t k = 0; k < size; ++k) {
    const std::size_t i = newest_first ? size - 1 - k : k;
    Task& candidate = queue.tasks[i];
    if (within != nullptr && !scope_descends_from(candidate.scope, within))
      continue;
    TaskScope* root = candidate.scope->root_;
    bool entered = false;
    if (!this_thread_in_root(root)) {
      if (!root->try_enter()) continue;
      entered = true;
    }
    Taken taken{std::move(candidate), entered};
    queue.tasks.erase(queue.tasks.begin() + static_cast<std::ptrdiff_t>(i));
    return taken;
  }
  return std::nullopt;
}

std::optional<Executor::Taken> Executor::find_task(const TaskScope* within) {
  const std::int32_t self = tl_worker_index;
  // Own deque newest-first (cache-warm LIFO), then the injection queue,
  // then steal oldest-first from the other workers.
  if (self >= 0)
    if (auto taken =
            take_from(*queues_[static_cast<std::size_t>(self)], true, within))
      return taken;
  if (auto taken = take_from(*injection_, false, within)) return taken;
  const std::uint32_t count = static_cast<std::uint32_t>(queues_.size());
  for (std::uint32_t k = 0; k < count; ++k) {
    const std::uint32_t victim =
        self >= 0 ? (static_cast<std::uint32_t>(self) + 1 + k) % count : k;
    if (static_cast<std::int32_t>(victim) == self) continue;
    if (auto taken = take_from(*queues_[victim], false, within)) return taken;
  }
  return std::nullopt;
}

void Executor::run_taken(Taken taken) {
  TaskScope* scope = taken.task.scope;
  TaskScope* root = scope->root_;
  tl_scope_stack.push_back(scope);
  if (!scope->failed_.load(std::memory_order_acquire)) {
    try {
      taken.task.fn();
    } catch (...) {
      scope->record_error(std::current_exception());
    }
  }
  tl_scope_stack.pop_back();
  taken.task.fn = nullptr;  // release captures before signalling completion
  if (taken.entered_root) root->exit_token();
  // The completion signal must be the very last touch of the scope: once
  // pending_ hits 0 the waiter may return and destroy it.
  if (scope->pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
    bump_epoch();
}

void Executor::worker_loop(std::uint32_t index) {
  tl_worker_index = static_cast<std::int32_t>(index);
  for (;;) {
    const std::uint64_t seen = epoch_now();
    if (auto taken = find_task(nullptr)) {
      run_taken(std::move(*taken));
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (stopping_) return;
    if (epoch_ != seen) continue;  // work appeared between scan and lock
    sleep_cv_.wait(lock, [&] { return stopping_ || epoch_ != seen; });
    if (stopping_) return;
  }
}

void Executor::drain_scope(TaskScope& scope) {
  for (;;) {
    if (scope.pending_.load(std::memory_order_acquire) == 0) return;
    const std::uint64_t seen = epoch_now();
    if (scope.pending_.load(std::memory_order_acquire) == 0) return;
    if (auto taken = find_task(&scope)) {
      run_taken(std::move(*taken));
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    if (epoch_ != seen) continue;
    sleep_cv_.wait(lock, [&] { return epoch_ != seen; });
  }
}

TaskScope::TaskScope(std::uint32_t max_parallelism, Executor& executor)
    : executor_(executor),
      parent_(tl_scope_stack.empty() ? nullptr : tl_scope_stack.back()),
      root_(parent_ != nullptr ? parent_->root_ : this),
      cap_(parent_ != nullptr
               ? 0
               : std::max(1u, max_parallelism == 0 ? executor.concurrency()
                                                   : max_parallelism)) {}

TaskScope::~TaskScope() { executor_.drain_scope(*this); }

void TaskScope::spawn(std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  executor_.submit(Executor::Task{std::move(fn), this});
}

void TaskScope::wait() {
  executor_.drain_scope(*this);
  if (failed_.load(std::memory_order_acquire)) {
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lock(error_mutex_);
      error = error_;
      error_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
  }
}

void TaskScope::record_error(std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!error_) error_ = error;
  }
  failed_.store(true, std::memory_order_release);
}

bool TaskScope::try_enter() noexcept {
  std::uint32_t active = active_.load(std::memory_order_relaxed);
  while (active < cap_)
    if (active_.compare_exchange_weak(active, active + 1,
                                      std::memory_order_acq_rel))
      return true;
  return false;
}

void TaskScope::exit_token() {
  active_.fetch_sub(1, std::memory_order_acq_rel);
  executor_.bump_epoch();  // an admission slot opened: wake sleepers
}

std::uint32_t resolve_thread_count(std::uint64_t requested, bool* clamped) {
  if (clamped != nullptr) *clamped = false;
  const std::uint32_t hw = Executor::hardware_threads();
  if (requested == 0) return hw;
  if (requested > hw) {
    if (clamped != nullptr) *clamped = true;
    return hw;
  }
  return static_cast<std::uint32_t>(requested);
}

}  // namespace ewalk
