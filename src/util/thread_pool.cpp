#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

namespace ewalk {

namespace {

/// One parallel_for invocation: helpers and the caller drain the index
/// counter; the caller blocks until every claimed index has *finished* (not
/// merely been claimed), so no helper can touch the task — or anything its
/// closure references in the caller's frame — after parallel_for returns,
/// even when a task throws. Held by shared_ptr so helpers that wake after
/// the caller returned find valid (already-exhausted) state.
struct ParallelForJob {
  ParallelForJob(const std::function<void(std::uint32_t)>& t, std::uint32_t c)
      : task(t), count(c) {}

  const std::function<void(std::uint32_t)>& task;  // outlives the job: caller blocks
  const std::uint32_t count;
  std::atomic<std::uint32_t> next{0};
  std::atomic<std::uint32_t> completed{0};
  std::atomic<bool> failed{false};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;  // first failure; guarded by done_mutex

  void drain() {
    for (;;) {
      const std::uint32_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      // After a failure the remaining indices are still claimed (so
      // `completed` reaches `count` and the caller's wait terminates) but
      // their tasks are skipped; the first exception is rethrown on the
      // calling thread once every in-flight task has finished.
      if (!failed.load(std::memory_order_acquire)) {
        try {
          task(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(done_mutex);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_release);
        }
      }
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() {
  const unsigned hw = std::thread::hardware_concurrency();
  // The caller participates in every parallel_for, so hw-1 helpers saturate
  // the machine; keep at least one so parallelism exists even when hw is
  // unknown (0) or 1.
  const std::uint32_t helpers = std::max(1u, hw == 0 ? 1u : hw - 1);
  workers_.reserve(helpers);
  for (std::uint32_t w = 0; w < helpers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> work;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_, nothing left to run
      work = std::move(queue_.front());
      queue_.pop_front();
    }
    work();
  }
}

void ThreadPool::parallel_for(std::uint32_t count, std::uint32_t parallelism,
                              const std::function<void(std::uint32_t)>& task) {
  if (count == 0) return;
  if (parallelism <= 1 || count == 1 || workers_.empty()) {
    for (std::uint32_t i = 0; i < count; ++i) task(i);
    return;
  }

  auto job = std::make_shared<ParallelForJob>(task, count);
  const std::uint32_t helpers =
      std::min({parallelism - 1, count - 1, worker_count()});
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::uint32_t h = 0; h < helpers; ++h)
      queue_.emplace_back([job] { job->drain(); });
  }
  if (helpers == 1) {
    work_cv_.notify_one();
  } else {
    work_cv_.notify_all();
  }

  job->drain();  // the caller is one of the workers
  std::unique_lock<std::mutex> lock(job->done_mutex);
  job->done_cv.wait(lock,
                    [&] { return job->completed.load() == job->count; });
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace ewalk
