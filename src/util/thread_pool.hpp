// Lazily-initialised persistent worker pool.
//
// The multi-trial experiment harness (covertime/experiment.hpp) used to
// spawn and join a fresh set of std::threads on *every* run_trials call —
// cheap for one five-trial experiment, real overhead for the bench sweeps
// that call it hundreds of times. This pool is created on first use, keeps
// its workers parked on a condition variable between calls, and serves every
// measure_cover / measure_coalescence sweep in the process.
//
// parallel_for is the only scheduling primitive: run task(0..count-1) with
// bounded parallelism. The calling thread participates in the drain, so the
// pool adds hardware_concurrency-1 helpers and a `parallelism` cap never
// deadlocks even if it exceeds the worker count. Work is handed out through
// a shared atomic counter — which task runs on which thread is unspecified,
// so parallel_for callers must derive any per-task randomness from the task
// index, never from thread identity (run_trials' per-trial streams already
// work this way, which is what keeps trial results bit-reproducible
// regardless of scheduling).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ewalk {

class ThreadPool {
 public:
  /// The process-wide pool, created (with its workers) on first call.
  static ThreadPool& instance();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Helper threads the pool owns (callers add themselves on top).
  std::uint32_t worker_count() const {
    return static_cast<std::uint32_t>(workers_.size());
  }

  /// Runs task(0) ... task(count-1) with at most `parallelism` invocations
  /// in flight, returning once all have finished. The calling thread
  /// participates; parallelism <= 1 runs everything inline. Tasks must be
  /// independent of each other and of the thread they land on. If a task
  /// throws, unstarted tasks are skipped and the first exception is
  /// rethrown on the calling thread after every in-flight task finishes —
  /// helpers never outlive the call, whatever the tasks do.
  void parallel_for(std::uint32_t count, std::uint32_t parallelism,
                    const std::function<void(std::uint32_t)>& task);

 private:
  ThreadPool();
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace ewalk
