// Work-stealing task scheduler with nested fork-join parallelism.
//
// The original pool exposed one primitive — parallel_for over a shared
// atomic counter — which could drain a flat index range but could not
// express nested parallelism: a sweep unit had no way to fan its own
// trials out, so one straggler unit (the biggest-n point of a Figure-1
// grid) serialised the tail of every sweep. The pool is now a real
// scheduler:
//
//   * per-worker deques with work stealing: the owning thread pushes and
//     pops newest-first (LIFO, cache-warm), thieves steal oldest-first
//     (FIFO, grabbing the oldest — and typically largest — pending work);
//   * TaskScope, a fork-join scope: any running task may spawn()
//     subtasks and wait() for them, and the waiting thread joins the
//     steal loop instead of blocking — restricted to tasks of the
//     awaited subtree, so helping recursion is bounded by the depth of
//     the scope tree, not the number of pending tasks;
//   * a per-root-scope admission cap, so `--threads T` still limits how
//     many threads work on one sweep even when the executor owns more
//     workers (threads already inside the scope tree are exempt, which
//     makes the cap deadlock-free under nesting);
//   * optional thread-affinity pinning (set_pinning, the CLI's --pin)
//     and a per-thread timing slot (timing_slot) that the sweep layer
//     records its throughput-over-time series against (SWEEP schema v3).
//
// Determinism contract: the scheduler never hands a task any randomness
// and never exposes which thread runs what; callers derive per-task rng
// streams purely from task indices (sweep_stream, derive_streams), so
// stealing can move wall-clock around but never moves a sample.
//
// The worker count defaults to hardware_concurrency - 1 (the caller
// participates via wait()); the EWALK_WORKERS environment variable
// overrides it, which is how the stress tests exercise real stealing on
// single-core CI runners.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace ewalk {

class TaskScope;

/// Process-wide work-stealing task scheduler. Tasks are submitted through
/// a TaskScope (spawn/wait); the Executor itself only owns the worker
/// threads, their deques, and the steal loop. Workers are started lazily
/// on first use and live for the rest of the process.
class Executor {
 public:
  /// The process-wide scheduler instance (workers start on first call).
  static Executor& instance();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Number of helper worker threads (excludes calling threads, which
  /// participate while inside TaskScope::wait). At least 1.
  std::uint32_t worker_count() const noexcept {
    return static_cast<std::uint32_t>(workers_.size());
  }

  /// Maximum useful parallelism: helper workers plus the calling thread.
  std::uint32_t concurrency() const noexcept { return worker_count() + 1; }

  /// Hardware thread count as reported by the OS, never 0 (falls back to
  /// 1 when std::thread::hardware_concurrency cannot tell).
  static std::uint32_t hardware_threads() noexcept;

  /// Whether this platform supports thread-affinity pinning (Linux only).
  static bool pin_supported() noexcept;

  /// Pin each worker thread to a fixed CPU (worker w to CPU (w+1) mod
  /// hardware_threads, leaving CPU 0 to the caller), or restore the full
  /// affinity mask when `enabled` is false. Best-effort: returns true
  /// only if the mask was applied to every worker; on platforms without
  /// affinity support it is a no-op returning false.
  bool set_pinning(bool enabled);

  /// Whether worker pinning is currently in effect (last successful
  /// set_pinning(true) not yet undone). Reported in SWEEP output.
  static bool pinning_enabled() noexcept;

  /// Stable per-thread slot for timing aggregation: worker threads get
  /// their worker index (0..worker_count-1), every other thread maps to
  /// slot worker_count(). Pure bookkeeping — never use it to derive
  /// randomness (see the determinism contract above).
  static std::uint32_t timing_slot() noexcept;

  /// Stops and joins the workers; runs at process exit (static instance).
  ~Executor();

 private:
  friend class TaskScope;

  struct Task {
    std::function<void()> fn;
    TaskScope* scope;
  };
  struct WorkerQueue;
  struct Taken {
    Task task;
    bool entered_root;
  };

  Executor();
  void worker_loop(std::uint32_t index);
  void submit(Task task);
  std::optional<Taken> take_from(WorkerQueue& queue, bool newest_first,
                                 const TaskScope* within);
  std::optional<Taken> find_task(const TaskScope* within);
  void run_taken(Taken taken);
  void drain_scope(TaskScope& scope);
  void bump_epoch();
  std::uint64_t epoch_now();
  static bool scope_descends_from(const TaskScope* scope,
                                  const TaskScope* ancestor) noexcept;
  static bool this_thread_in_root(const TaskScope* root) noexcept;

  std::vector<std::unique_ptr<WorkerQueue>> queues_;  // one per worker
  std::unique_ptr<WorkerQueue> injection_;  // spawns from non-worker threads
  std::vector<std::thread> workers_;
  std::mutex sleep_mutex_;                  // guards epoch_ and stopping_
  std::condition_variable sleep_cv_;
  std::uint64_t epoch_ = 0;  // bumped whenever work or completions appear
  bool stopping_ = false;
};

/// Fork-join scope: spawn() submits subtasks, wait() blocks until all of
/// them (including transitively spawned ones via nested scopes) finished,
/// with the waiting thread executing tasks of the awaited subtree instead
/// of idling. Scopes nest: a task may construct its own TaskScope, whose
/// tasks count against the *root* scope's admission cap (`--threads`),
/// never against a separate budget — `max_parallelism` is ignored on
/// nested scopes. If a task throws, the first exception is rethrown from
/// wait() and unstarted tasks of the scope are skipped (they still count
/// as completed). The destructor drains remaining tasks without
/// rethrowing. Not copyable; a scope must outlive its spawned tasks
/// (guaranteed by calling wait() or letting the destructor run).
class TaskScope {
 public:
  /// Open a scope on `executor`. `max_parallelism` caps how many threads
  /// may run this scope tree at once (0 = executor concurrency); it only
  /// takes effect on root scopes (see class comment).
  explicit TaskScope(std::uint32_t max_parallelism = 0,
                     Executor& executor = Executor::instance());
  /// Drains remaining tasks (exceptions already reported via wait() are
  /// dropped; pending ones are swallowed).
  ~TaskScope();

  TaskScope(const TaskScope&) = delete;
  TaskScope& operator=(const TaskScope&) = delete;

  /// Submit one task. May be called from any thread, including from
  /// tasks of this or other scopes. Thread-safe.
  void spawn(std::function<void()> fn);

  /// Block until every spawned task completed, helping to run tasks of
  /// this scope's subtree meanwhile. Rethrows the first task exception.
  /// The scope is reusable after a wait() that returns normally.
  void wait();

 private:
  friend class Executor;

  void record_error(std::exception_ptr error);
  bool try_enter() noexcept;  // root-only admission token
  void exit_token();

  Executor& executor_;
  TaskScope* const parent_;  // enclosing scope of the constructing task
  TaskScope* const root_;    // top of the scope tree (this, if parent_ null)
  const std::uint32_t cap_;  // admission cap; meaningful on roots only
  std::atomic<std::uint32_t> active_{0};  // root-only: threads holding tokens
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<bool> failed_{false};
  std::mutex error_mutex_;
  std::exception_ptr error_;
};

/// Map a user-facing `--threads` request onto this machine: 0 means all
/// hardware threads; values above hardware_threads() clamp down (set
/// *clamped so callers can warn — oversubscription only adds scheduling
/// noise); anything else passes through.
std::uint32_t resolve_thread_count(std::uint64_t requested,
                                   bool* clamped = nullptr);

}  // namespace ewalk
