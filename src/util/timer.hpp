// Wall-clock timer for bench reporting.
#pragma once

#include <chrono>

namespace ewalk {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ewalk
