// Rule dispatch over a BluePartition: the one blue-step chooser shared by
// EProcess, MultiEProcess, and CoalescingEWalk.
//
// Rules that declare themselves uniform take the O(1) fast path — sampling
// a position directly through the partition with the identical rng draw
// (uniform(blue_count)) the span path's UniformRule would make, so both
// paths produce the same walk bit-for-bit. Everything else gets the blue
// candidate span materialised into the caller's scratch vector plus a
// read-only view of the walk state.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "walks/blue_partition.hpp"
#include "walks/cover_state.hpp"
#include "walks/eprocess.hpp"

namespace ewalk {

/// Chooses among the blue slots of v (blue_count(v) >= 1 required).
inline Slot choose_blue_slot(const BluePartition& blue, const Graph& g,
                             Vertex v, UnvisitedEdgeRule& rule,
                             const CoverState& cover, std::uint64_t steps,
                             std::vector<Slot>& scratch, Rng& rng) {
  const std::uint32_t b = blue.blue_count(v);
  if (rule.uniform_over_candidates()) {
    const std::uint32_t p = static_cast<std::uint32_t>(rng.uniform(b));
    return blue.blue_slot(g, v, p);
  }
  blue.fill_candidates(g, v, scratch);
  const EProcessView view(g, cover, steps);
  const std::uint32_t idx = rule.choose(view, v, scratch, rng);
  if (idx >= b)
    throw std::logic_error("UnvisitedEdgeRule returned out-of-range index");
  return scratch[idx];
}

}  // namespace ewalk
