// Rule dispatch over a BluePartition: the one blue-step chooser shared by
// EProcess, MultiEProcess, and CoalescingEWalk.
//
// The dispatch is index-based and lazy: the rule's choose_index() returns a
// position into the blue prefix and reads any candidate it cares about in
// O(1) through the EProcessView — no candidate span is ever materialised
// (legacy span-only rules are adapted by UnvisitedEdgeRule's default
// choose_index(), which rebuilds the span at the old cost). Rules that
// declare themselves uniform skip even the virtual dispatch: the chooser
// samples a position directly with the identical rng draw
// (uniform(blue_count)) a uniform choose_index() would make, so both paths
// produce the same walk bit-for-bit.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "walks/blue_partition.hpp"
#include "walks/cover_state.hpp"
#include "walks/eprocess.hpp"

namespace ewalk {

/// Chooses among the blue slots of v (blue_count(v) >= 1 required).
/// `uniform_rule` is rule.uniform_over_candidates(), hoisted by the caller
/// at construction so the hot path pays no per-step virtual query.
inline Slot choose_blue_slot(const BluePartition& blue, const Graph& g,
                             Vertex v, UnvisitedEdgeRule& rule,
                             bool uniform_rule, const CoverState& cover,
                             std::uint64_t steps, Rng& rng) {
  const std::uint32_t b = blue.blue_count(v);
  if (uniform_rule) {
    const std::uint32_t p = static_cast<std::uint32_t>(rng.uniform(b));
    return blue.blue_slot(g, v, p);
  }
  const EProcessView view(g, cover, blue, steps);
  const std::uint32_t idx = rule.choose_index(view, v, b, rng);
  if (idx >= b)
    throw std::logic_error("UnvisitedEdgeRule returned out-of-range index");
  return blue.blue_slot(g, v, idx);
}

}  // namespace ewalk
