// The blue-prefix partition: O(1) access to the unvisited ("blue") incident
// edges of every vertex, with O(1) eviction.
//
// order_[slot_offset(v) + p] is the local slot index (0..deg-1) occupying
// position p of v's region; positions < blue_count(v) are blue. Two static
// and dynamic side tables make eviction a true O(1) swap:
//   * edge_slot_[2e], edge_slot_[2e+1] — the local slot index edge e occupies
//     at each endpoint (both at the same vertex for a self-loop), fixed at
//     construction;
//   * pos_of_slot_[slot_offset(v) + k] — the position local slot k currently
//     holds in v's region, maintained through every swap (the inverse
//     permutation of order_ per vertex).
// Marking an edge visited looks up its slot at each endpoint, finds the
// slot's position through pos_of_slot_, and swaps it out of the blue prefix
// — no scan over the prefix, so a blue step costs O(1) regardless of degree
// (the previous implementation scanned O(blue_count) per endpoint, which
// dominated dense graphs). The swap is move-for-move identical to the scan
// it replaced, so walk trajectories are unchanged bit-for-bit; for a
// self-loop the slot nearer the front is evicted first, the order the scan
// found them in.
//
// This is the state every unvisited-edge-preferring process shares —
// EProcess, MultiEProcess, CoalescingEWalk — extracted here so the eviction
// subtleties live in one place. The companion choose_blue_slot helper
// (blue_choice.hpp) implements the index-based rule dispatch with the
// uniform-rule O(1) fast path on top of it; blue_slot(g, v, p) is the O(1)
// accessor index-based rules read candidates through.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace ewalk {

class BluePartition {
 public:
  /// All edges start blue.
  explicit BluePartition(const Graph& g)
      : order_(2 * static_cast<std::size_t>(g.num_edges())),
        pos_of_slot_(2 * static_cast<std::size_t>(g.num_edges())),
        edge_slot_(2 * static_cast<std::size_t>(g.num_edges()), kUnset),
        blue_count_(g.num_vertices()) {
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const std::uint32_t off = g.slot_offset(v);
      const std::uint32_t d = g.degree(v);
      blue_count_[v] = d;
      for (std::uint32_t k = 0; k < d; ++k) {
        order_[off + k] = k;
        pos_of_slot_[off + k] = k;
        const EdgeId e = g.slot(v, k).edge;
        // Entry 2e belongs to endpoint u, 2e+1 to endpoint v; a self-loop
        // (u == v) fills them with its two slots in slot order.
        if (v == g.endpoints(e).u && edge_slot_[2 * e] == kUnset) {
          edge_slot_[2 * e] = k;
        } else {
          edge_slot_[2 * e + 1] = k;
        }
      }
    }
  }

  /// Number of blue edges incident with v right now.
  std::uint32_t blue_count(Vertex v) const { return blue_count_[v]; }

  /// The blue slot at position p of v's prefix, 0 <= p < blue_count(v).
  Slot blue_slot(const Graph& g, Vertex v, std::uint32_t p) const {
    return g.slot(v, order_[g.slot_offset(v) + p]);
  }

  /// Hints the hardware to pull v's partition state into cache: the blue
  /// count and the head of v's order_ region — the two lines a blue step at
  /// v touches first. Companion to Graph::prefetch_hint for interleaved
  /// trial bundles (engine/bundle.hpp); safe for any vertex, no side effects.
  void prefetch_hint(const Graph& g, Vertex v) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(blue_count_.data() + v);
    __builtin_prefetch(order_.data() + g.slot_offset(v));
#else
    (void)g;
    (void)v;
#endif
  }

  /// Evicts e from the blue prefix of each endpoint with an O(1) swap. The
  /// edge occurs exactly once in each endpoint's slots — twice at the same
  /// vertex for a self-loop, which occupies two slots. Precondition: e is
  /// blue.
  void mark_edge_visited(const Graph& g, EdgeId e) {
    const auto [u, v] = g.endpoints(e);
    std::uint32_t ku = edge_slot_[2 * e];
    std::uint32_t kv = edge_slot_[2 * e + 1];
    if (u == v) {
      // Self-loop: evict the slot currently nearer the front first — the
      // order a front-to-back prefix scan finds them — so the resulting
      // permutation is identical to the scan-based implementation.
      const std::uint32_t off = g.slot_offset(u);
      if (pos_of_slot_[off + kv] < pos_of_slot_[off + ku]) std::swap(ku, kv);
    }
    evict_slot(g, u, ku);
    evict_slot(g, v, kv);
  }

 private:
  static constexpr std::uint32_t kUnset = 0xFFFFFFFFu;

  /// Swaps local slot k out of owner's blue prefix. Precondition: blue.
  void evict_slot(const Graph& g, Vertex owner, std::uint32_t k) {
    const std::uint32_t off = g.slot_offset(owner);
    const std::uint32_t p = pos_of_slot_[off + k];
    assert(blue_count_[owner] > 0 && p < blue_count_[owner]);
    const std::uint32_t last = blue_count_[owner] - 1;
    const std::uint32_t moved = order_[off + last];
    order_[off + p] = moved;
    order_[off + last] = k;
    pos_of_slot_[off + moved] = p;
    pos_of_slot_[off + k] = last;
    blue_count_[owner] = last;
  }

  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> pos_of_slot_;
  std::vector<std::uint32_t> edge_slot_;
  std::vector<std::uint32_t> blue_count_;
};

}  // namespace ewalk
