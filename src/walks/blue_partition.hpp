// The blue-prefix partition: O(1) access to the unvisited ("blue") incident
// edges of every vertex.
//
// order_[slot_offset(v) + p] is the local slot index (0..deg-1) occupying
// position p of v's region; positions < blue_count(v) are blue. Marking an
// edge visited swaps its slot out of the prefix at both endpoints (twice at
// the same vertex for a self-loop, which occupies two slots).
//
// This is the state every unvisited-edge-preferring process shares —
// EProcess, MultiEProcess, CoalescingEWalk — extracted here so the eviction
// subtleties live in one place. The companion choose_blue_slot helper
// (blue_choice.hpp) implements the rule dispatch with the uniform-rule
// O(1) fast path on top of it.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ewalk {

class BluePartition {
 public:
  /// All edges start blue.
  explicit BluePartition(const Graph& g)
      : order_(2 * static_cast<std::size_t>(g.num_edges())),
        blue_count_(g.num_vertices()) {
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const std::uint32_t off = g.slot_offset(v);
      const std::uint32_t d = g.degree(v);
      blue_count_[v] = d;
      for (std::uint32_t k = 0; k < d; ++k) order_[off + k] = k;
    }
  }

  /// Number of blue edges incident with v right now.
  std::uint32_t blue_count(Vertex v) const { return blue_count_[v]; }

  /// The blue slot at position p of v's prefix, 0 <= p < blue_count(v).
  Slot blue_slot(const Graph& g, Vertex v, std::uint32_t p) const {
    return g.slot(v, order_[g.slot_offset(v) + p]);
  }

  /// Copies v's blue slots into `out` (cleared first) — the candidate span
  /// handed to non-uniform rules.
  void fill_candidates(const Graph& g, Vertex v, std::vector<Slot>& out) const {
    out.clear();
    const std::uint32_t b = blue_count_[v];
    for (std::uint32_t p = 0; p < b; ++p) out.push_back(blue_slot(g, v, p));
  }

  /// Evicts e from the blue prefix of each endpoint with an O(1) swap. The
  /// edge occurs exactly once in each endpoint's slots — twice at the same
  /// vertex for a self-loop. Precondition: e is blue.
  void mark_edge_visited(const Graph& g, EdgeId e) {
    const auto [u, v] = g.endpoints(e);
    const bool at_u = evict(g, u, e);
    assert(at_u);
    (void)at_u;
    const bool other = evict(g, u == v ? u : v, e);
    assert(other);
    (void)other;
  }

 private:
  bool evict(const Graph& g, Vertex owner, EdgeId edge) {
    const std::uint32_t off = g.slot_offset(owner);
    const std::uint32_t b = blue_count_[owner];
    for (std::uint32_t p = 0; p < b; ++p) {
      const std::uint32_t k = order_[off + p];
      if (g.slot(owner, k).edge == edge) {
        const std::uint32_t last = b - 1;
        order_[off + p] = order_[off + last];
        order_[off + last] = k;
        blue_count_[owner] = last;
        return true;
      }
    }
    return false;
  }

  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> blue_count_;
};

}  // namespace ewalk
