#include "walks/choice.hpp"

#include <stdexcept>

namespace ewalk {

RandomWalkWithChoice::RandomWalkWithChoice(const Graph& g, Vertex start, std::uint32_t d)
    : g_(&g), d_(d), current_(start), cover_(g.num_vertices(), g.num_edges()) {
  if (start >= g.num_vertices())
    throw std::invalid_argument("RandomWalkWithChoice: start vertex out of range");
  if (d == 0) throw std::invalid_argument("RandomWalkWithChoice: d must be >= 1");
  cover_.visit_vertex(start, 0);
}

void RandomWalkWithChoice::step(Rng& rng) {
  ++steps_;
  const std::uint32_t deg = g_->degree(current_);
  if (deg == 0) throw std::logic_error("RandomWalkWithChoice: stuck at isolated vertex");

  // Sample d slots with replacement; keep the least-visited neighbour,
  // breaking ties uniformly via reservoir counting.
  Slot best = g_->slot(current_, static_cast<std::uint32_t>(rng.uniform(deg)));
  std::uint32_t best_visits = cover_.visit_count(best.neighbor);
  std::uint32_t ties = 1;
  for (std::uint32_t i = 1; i < d_; ++i) {
    const Slot s = g_->slot(current_, static_cast<std::uint32_t>(rng.uniform(deg)));
    const std::uint32_t c = cover_.visit_count(s.neighbor);
    if (c < best_visits) {
      best = s;
      best_visits = c;
      ties = 1;
    } else if (c == best_visits) {
      ++ties;
      if (rng.uniform(ties) == 0) best = s;
    }
  }
  cover_.visit_edge(best.edge, steps_);
  current_ = best.neighbor;
  cover_.visit_vertex(current_, steps_);
}

}  // namespace ewalk
