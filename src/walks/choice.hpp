// Random Walk with Choice, RWC(d) — Avin & Krishnamachari's process
// (cited in Section 1): at each step sample d incident slots uniformly at
// random and move to the sampled neighbour with the fewest visits so far
// (ties broken uniformly among the tied samples).
#pragma once

#include <cstdint>

#include "engine/process.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "walks/cover_state.hpp"

namespace ewalk {

class RandomWalkWithChoice final : public WalkProcess {
 public:
  /// `d` >= 1 samples per step; d == 1 degenerates to the SRW.
  RandomWalkWithChoice(const Graph& g, Vertex start, std::uint32_t d);

  void step(Rng& rng) override;

  Vertex current() const override { return current_; }
  std::uint64_t steps() const override { return steps_; }
  const Graph& graph() const override { return *g_; }
  const CoverState& cover() const override { return cover_; }
  std::string_view name() const override { return "rwc"; }

 private:
  const Graph* g_;
  std::uint32_t d_;
  Vertex current_;
  std::uint64_t steps_ = 0;
  CoverState cover_;
};

}  // namespace ewalk
