// Random Walk with Choice, RWC(d) — Avin & Krishnamachari's process
// (cited in Section 1): at each step sample d incident slots uniformly at
// random and move to the sampled neighbour with the fewest visits so far
// (ties broken uniformly among the tied samples).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "walks/cover_state.hpp"

namespace ewalk {

class RandomWalkWithChoice {
 public:
  /// `d` >= 1 samples per step; d == 1 degenerates to the SRW.
  RandomWalkWithChoice(const Graph& g, Vertex start, std::uint32_t d);

  void step(Rng& rng);
  bool run_until_vertex_cover(Rng& rng, std::uint64_t max_steps);

  Vertex current() const { return current_; }
  std::uint64_t steps() const { return steps_; }
  const CoverState& cover() const { return cover_; }

 private:
  const Graph* g_;
  std::uint32_t d_;
  Vertex current_;
  std::uint64_t steps_ = 0;
  CoverState cover_;
};

}  // namespace ewalk
