#include "walks/cover_state.hpp"

#include <algorithm>

namespace ewalk {

CoverState::CoverState(Vertex n, EdgeId m)
    : n_(n), m_(m), vertex_visited_(n, 0), edge_visited_(m, 0),
      visit_count_(n, 0), first_vertex_visit_(n, kNotCovered) {}

std::uint32_t CoverState::min_visit_count() const {
  if (visit_count_.empty()) return 0;
  return *std::min_element(visit_count_.begin(), visit_count_.end());
}

}  // namespace ewalk
