// Shared cover-progress bookkeeping for all walk processes.
//
// Tracks which vertices/edges have been visited, how many times each vertex
// has been visited (needed by RWC(d), blanket-time measurements, and
// adversarial E-process rules), and the step at which vertex/edge cover
// completed.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace ewalk {

inline constexpr std::uint64_t kNotCovered = std::numeric_limits<std::uint64_t>::max();

class CoverState {
 public:
  CoverState(Vertex n, EdgeId m);

  /// Records a visit to v at time `step`. Idempotent w.r.t. coverage.
  void visit_vertex(Vertex v, std::uint64_t step) {
    ++visit_count_[v];
    if (!vertex_visited_[v]) {
      vertex_visited_[v] = 1;
      ++vertices_covered_;
      first_vertex_visit_[v] = step;
      if (vertices_covered_ == n_) vertex_cover_step_ = step;
    }
  }

  /// Records a traversal of edge e at time `step`.
  void visit_edge(EdgeId e, std::uint64_t step) {
    if (!edge_visited_[e]) {
      edge_visited_[e] = 1;
      ++edges_covered_;
      if (edges_covered_ == m_) edge_cover_step_ = step;
    }
  }

  bool vertex_visited(Vertex v) const { return vertex_visited_[v] != 0; }
  bool edge_visited(EdgeId e) const { return edge_visited_[e] != 0; }
  std::uint32_t visit_count(Vertex v) const { return visit_count_[v]; }
  std::uint64_t first_visit_step(Vertex v) const { return first_vertex_visit_[v]; }

  Vertex vertices_covered() const { return vertices_covered_; }
  EdgeId edges_covered() const { return edges_covered_; }
  bool all_vertices_covered() const { return vertices_covered_ == n_; }
  bool all_edges_covered() const { return edges_covered_ == m_; }

  /// Step at which the last vertex (edge) was first visited; kNotCovered
  /// until cover completes.
  std::uint64_t vertex_cover_step() const { return vertex_cover_step_; }
  std::uint64_t edge_cover_step() const { return edge_cover_step_; }

  /// Minimum visit count over all vertices (blanket-style statistic).
  std::uint32_t min_visit_count() const;

  std::span<const std::uint8_t> vertex_visited_flags() const { return vertex_visited_; }
  std::span<const std::uint8_t> edge_visited_flags() const { return edge_visited_; }

 private:
  Vertex n_;
  EdgeId m_;
  std::vector<std::uint8_t> vertex_visited_;
  std::vector<std::uint8_t> edge_visited_;
  std::vector<std::uint32_t> visit_count_;
  std::vector<std::uint64_t> first_vertex_visit_;
  Vertex vertices_covered_ = 0;
  EdgeId edges_covered_ = 0;
  std::uint64_t vertex_cover_step_ = kNotCovered;
  std::uint64_t edge_cover_step_ = kNotCovered;
};

}  // namespace ewalk
