#include "walks/dynamic_walks.hpp"

#include <stdexcept>

#include "walks/step_core.hpp"

namespace ewalk {

// ---- DynamicSrw ------------------------------------------------------------

DynamicSrw::DynamicSrw(DynamicGraphView view, Vertex start, SrwOptions options)
    : view_(view), options_(options), current_(start),
      cover_(view.num_vertices(), /*m=*/1) {
  if (start >= view.num_vertices())
    throw std::invalid_argument("DynamicSrw: start vertex out of range");
  cover_.visit_vertex(start, 0);
}

void DynamicSrw::step(Rng& rng) {
  ++steps_;
  if (options_.lazy && rng.bernoulli(0.5)) {
    cover_.visit_vertex(current_, steps_);
    return;
  }
  Slot slot;
  if (srw_transition(view_, current_, rng, &slot) == TransitionKind::kIsolated) {
    ++holds_;
    cover_.visit_vertex(current_, steps_);
    return;
  }
  current_ = slot.neighbor;
  cover_.visit_vertex(current_, steps_);
}

// ---- DynamicEProcess -------------------------------------------------------

// Adapts the journal-synced visited bitmap + blue counts to the BlueIndexT
// seam of eprocess_transition: uniform choice over the blue slots of the
// vertex (one rng draw, then an O(degree) scan to the chosen slot).
struct DynamicBlueIndex {
  DynamicEProcess& walk;

  std::uint32_t blue_count(Vertex v) const { return walk.blue_count_[v]; }

  Slot take_blue(Vertex v, Rng& rng) {
    const std::uint32_t target =
        static_cast<std::uint32_t>(rng.uniform(walk.blue_count_[v]));
    const std::uint32_t d = walk.view_.degree(v);
    std::uint32_t seen = 0;
    for (std::uint32_t k = 0; k < d; ++k) {
      const Slot& s = walk.view_.slot(v, k);
      if (walk.edge_visited_[s.edge]) continue;
      if (seen++ == target) {
        walk.edge_visited_[s.edge] = 1;
        const Endpoints ep = walk.view_.endpoints(s.edge);
        --walk.blue_count_[ep.u];
        --walk.blue_count_[ep.v];  // self-loop: u == v, total -2 (two slots)
        return s;
      }
    }
    // blue_count_ says a blue slot exists; the scan must find it.
    throw std::logic_error("DynamicEProcess: blue count out of sync");
  }
};

DynamicEProcess::DynamicEProcess(DynamicGraphView view, Vertex start)
    : view_(view), current_(start), cover_(view.num_vertices(), /*m=*/1),
      blue_count_(view.num_vertices(), 0) {
  if (start >= view.num_vertices())
    throw std::invalid_argument("DynamicEProcess: start vertex out of range");
  // Epoch-0 baseline: everything alive now is unvisited, hence blue. The
  // journal cursor starts at the current epoch — earlier mutations are
  // already reflected in this scan.
  edge_visited_.assign(view.edge_capacity(), 0);
  for (Vertex v = 0; v < view.num_vertices(); ++v)
    blue_count_[v] = view.degree(v);
  synced_epoch_ = view.epoch();
  cover_.visit_vertex(start, 0);
}

void DynamicEProcess::sync() {
  const auto& journal = view_.journal();
  for (; synced_epoch_ < journal.size(); ++synced_epoch_) {
    const GraphMutation& mu = journal[synced_epoch_];
    if (mu.kind == MutationKind::kInsert) {
      if (edge_visited_.size() <= mu.edge) edge_visited_.resize(mu.edge + 1, 0);
      // A fresh edge is unvisited: one blue slot per endpoint (two for a
      // self-loop, since u == v bumps the same vertex twice).
      ++blue_count_[mu.endpoints.u];
      ++blue_count_[mu.endpoints.v];
    } else if (!edge_visited_[mu.edge]) {
      // An erased blue edge leaves the counts; an erased visited edge was
      // already excluded from them.
      --blue_count_[mu.endpoints.u];
      --blue_count_[mu.endpoints.v];
    }
  }
}

void DynamicEProcess::step(Rng& rng) {
  sync();
  const Vertex v = current_;
  ++steps_;
  DynamicBlueIndex index{*this};
  Slot slot;
  const TransitionKind kind = eprocess_transition(view_, index, v, rng, &slot);
  if (kind == TransitionKind::kIsolated) {
    ++holds_;
    cover_.visit_vertex(v, steps_);
    return;
  }
  if (kind == TransitionKind::kBlue)
    ++blue_steps_;
  else
    ++red_steps_;
  current_ = slot.neighbor;
  cover_.visit_vertex(current_, steps_);
}

}  // namespace ewalk
