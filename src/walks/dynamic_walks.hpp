// Walk processes on evolving graphs.
//
// These are the dynamic-backend instantiations of the transition cores in
// walks/step_core.hpp: the same SRW / E-process step logic the static walks
// run, reading adjacency through a DynamicGraphView instead of the CSR.
// Differences forced by an evolving edge set, and nothing else:
//
//   * Isolated vertices hold instead of throwing. A static walk at an
//     isolated vertex is a caller bug; a dynamic walker is legitimately
//     stranded between edge arrivals (PCF starts with every vertex
//     isolated). A hold is a counted step that consumes no rng draw.
//   * Cover bookkeeping is vertex-only. Edge-cover targets are meaningless
//     against an edge set that grows and shrinks, so the CoverState is
//     constructed with a 1-edge sentinel (never visited): vertex-cover
//     predicates work unchanged, all_edges_covered() stays false forever.
//   * The E-process keeps its own per-edge visited bitmap and per-vertex
//     blue (unvisited incident slot) counts, synced incrementally from the
//     DynamicGraph mutation journal — O(#mutations) amortised, never an
//     O(n + m) rescan. A freshly inserted edge is blue; erasing a blue edge
//     removes it from both endpoints' counts; erasing a visited edge is a
//     no-op for blue state. Blue choice is uniform over blue slots (a
//     self-loop has two slots, hence twice the weight — the same weighting
//     the static uniform rule applies).
//
// Determinism: a dynamic walk trajectory is a pure function of (initial
// graph + mutation sequence, start vertex, rng stream) — no dependence on
// thread identity or scheduling, pinned by tests/dynamic_graph_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dynamic_graph.hpp"
#include "util/rng.hpp"
#include "walks/cover_state.hpp"
#include "walks/srw.hpp"

namespace ewalk {

/// Simple random walk on an evolving graph: the srw_transition core over a
/// DynamicGraphView, holding (a counted step, no rng consumed) whenever the
/// current vertex is isolated. Supports the lazy variant like the static
/// SRW.
class DynamicSrw {
 public:
  /// Starts at `start` on the viewed graph; the viewed DynamicGraph must
  /// outlive the walk. `options.lazy` holds w.p. 1/2 exactly as the static
  /// SRW does.
  DynamicSrw(DynamicGraphView view, Vertex start, SrwOptions options = {});

  /// One transition (lazy holds and isolated-vertex holds both count).
  void step(Rng& rng);

  /// `k` transitions, bit-identical to k step() calls.
  void step_many(Rng& rng, std::uint64_t k) {
    for (std::uint64_t i = 0; i < k; ++i) step(rng);
  }

  /// Vertex the walk currently occupies.
  Vertex current() const { return current_; }
  /// Transitions made so far (moves + holds).
  std::uint64_t steps() const { return steps_; }
  /// Steps spent holding at an isolated vertex.
  std::uint64_t holds() const { return holds_; }
  /// Vertex-cover bookkeeping (edge side is the 1-edge sentinel).
  const CoverState& cover() const { return cover_; }
  /// The view this walk reads adjacency through.
  DynamicGraphView view() const { return view_; }

 private:
  DynamicGraphView view_;
  SrwOptions options_;
  Vertex current_;
  std::uint64_t steps_ = 0;
  std::uint64_t holds_ = 0;
  CoverState cover_;
};

/// The E-process on an evolving graph: prefer an unvisited ("blue")
/// incident edge, chosen uniformly over blue slots; otherwise take a
/// uniform SRW step; hold if isolated. Blue state is journal-synced (see
/// file comment) so arriving edges become blue and departing blue edges
/// vanish from the counts, in O(1) amortised per mutation.
class DynamicEProcess {
 public:
  /// Starts at `start`; the viewed DynamicGraph must outlive the walk.
  DynamicEProcess(DynamicGraphView view, Vertex start);

  /// One transition: sync with the journal, then blue / red / hold.
  void step(Rng& rng);

  /// `k` transitions, bit-identical to k step() calls.
  void step_many(Rng& rng, std::uint64_t k) {
    for (std::uint64_t i = 0; i < k; ++i) step(rng);
  }

  /// Vertex the walk currently occupies.
  Vertex current() const { return current_; }
  /// Transitions made so far (blue + red + holds).
  std::uint64_t steps() const { return steps_; }
  /// Blue (unvisited-edge) transitions made so far.
  std::uint64_t blue_steps() const { return blue_steps_; }
  /// Red (SRW-fallback) transitions made so far.
  std::uint64_t red_steps() const { return red_steps_; }
  /// Steps spent holding at an isolated vertex.
  std::uint64_t holds() const { return holds_; }
  /// Vertex-cover bookkeeping (edge side is the 1-edge sentinel).
  const CoverState& cover() const { return cover_; }
  /// The view this walk reads adjacency through.
  DynamicGraphView view() const { return view_; }

  /// True while edge e (any id ever allocated) has been crossed as a blue
  /// step. Ids never recycle, so the flag survives the edge's erasure.
  bool edge_visited(EdgeId e) const {
    return e < edge_visited_.size() && edge_visited_[e] != 0;
  }

  /// Number of blue (unvisited, alive) incident slots of v after syncing
  /// with the journal.
  std::uint32_t blue_degree(Vertex v) {
    sync();
    return blue_count_[v];
  }

 private:
  friend struct DynamicBlueIndex;

  // Consumes journal entries past synced_epoch_, updating the visited
  // bitmap and blue counts.
  void sync();

  DynamicGraphView view_;
  Vertex current_;
  std::uint64_t steps_ = 0;
  std::uint64_t blue_steps_ = 0;
  std::uint64_t red_steps_ = 0;
  std::uint64_t holds_ = 0;
  CoverState cover_;
  std::vector<std::uint8_t> edge_visited_;  // indexed by edge id
  std::vector<std::uint32_t> blue_count_;   // per vertex, counts slots
  std::uint64_t synced_epoch_ = 0;
};

}  // namespace ewalk
