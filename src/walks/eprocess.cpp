#include "walks/eprocess.hpp"

#include <stdexcept>

#include "walks/blue_choice.hpp"

namespace ewalk {

EProcess::EProcess(const Graph& g, Vertex start, UnvisitedEdgeRule& rule,
                   EProcessOptions options)
    : g_(&g), rule_(&rule), uniform_rule_(rule.uniform_over_candidates()),
      options_(options), start_(start), current_(start),
      cover_(g.num_vertices(), g.num_edges()), blue_(g) {
  if (start >= g.num_vertices())
    throw std::invalid_argument("EProcess: start vertex out of range");
  cover_.visit_vertex(start, 0);
}

void EProcess::note_transition(StepColor color, Vertex from, Vertex to) {
  if (!options_.record_phases) return;
  if (phases_.empty() || phases_.back().color != color) {
    phases_.push_back(Phase{color, steps_, steps_, from, to});
  } else {
    phases_.back().last_step = steps_;
    phases_.back().end_vertex = to;
  }
}

StepColor EProcess::step(Rng& rng) {
  const Vertex v = current_;
  ++steps_;
  StepColor color;
  Vertex to;
  if (blue_.blue_count(v) > 0) {
    const Slot chosen = choose_blue_slot(blue_, *g_, v, *rule_, uniform_rule_,
                                         cover_, steps_, rng);
    blue_.mark_edge_visited(*g_, chosen.edge);
    cover_.visit_edge(chosen.edge, steps_);
    to = chosen.neighbor;
    color = StepColor::kBlue;
    ++blue_steps_;
  } else {
    const std::uint32_t d = g_->degree(v);
    if (d == 0) throw std::logic_error("EProcess: stuck at isolated vertex");
    const Slot slot = g_->slot(v, static_cast<std::uint32_t>(rng.uniform(d)));
    to = slot.neighbor;
    color = StepColor::kRed;
    ++red_steps_;
  }
  note_transition(color, v, to);
  current_ = to;
  cover_.visit_vertex(to, steps_);
  return color;
}

}  // namespace ewalk
