#include "walks/eprocess.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace ewalk {

EProcess::EProcess(const Graph& g, Vertex start, UnvisitedEdgeRule& rule,
                   EProcessOptions options)
    : g_(&g), rule_(&rule), options_(options), start_(start), current_(start),
      cover_(g.num_vertices(), g.num_edges()) {
  if (start >= g.num_vertices())
    throw std::invalid_argument("EProcess: start vertex out of range");

  const std::size_t total_slots = 2 * static_cast<std::size_t>(g.num_edges());
  order_.resize(total_slots);
  blue_count_.resize(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::uint32_t off = g.slot_offset(v);
    const std::uint32_t d = g.degree(v);
    blue_count_[v] = d;
    for (std::uint32_t k = 0; k < d; ++k) order_[off + k] = k;
  }
  scratch_candidates_.reserve(g.max_degree());
  cover_.visit_vertex(start, 0);
}

void EProcess::mark_edge_visited(EdgeId e) {
  const auto [u, v] = g_->endpoints(e);
  // Locate and evict e's slot from each endpoint's blue prefix. The edge
  // occurs exactly once in each endpoint's slots (twice at u for a loop).
  const auto evict = [this](Vertex owner, EdgeId edge) {
    const std::uint32_t off = g_->slot_offset(owner);
    const std::uint32_t b = blue_count_[owner];
    // Find edge within the blue prefix (it must be blue when this is called).
    for (std::uint32_t p = 0; p < b; ++p) {
      const std::uint32_t k = order_[off + p];
      if (g_->slot(owner, k).edge == edge) {
        const std::uint32_t last = b - 1;
        order_[off + p] = order_[off + last];
        order_[off + last] = k;
        blue_count_[owner] = last;
        return true;
      }
    }
    return false;
  };
  const bool at_u = evict(u, e);
  assert(at_u);
  (void)at_u;
  if (u == v) {
    // Self-loop: second occurrence at the same vertex.
    const bool again = evict(u, e);
    assert(again);
    (void)again;
  } else {
    const bool at_v = evict(v, e);
    assert(at_v);
    (void)at_v;
  }
}

void EProcess::note_transition(StepColor color, Vertex from, Vertex to) {
  if (!options_.record_phases) return;
  if (phases_.empty() || phases_.back().color != color) {
    phases_.push_back(Phase{color, steps_, steps_, from, to});
  } else {
    phases_.back().last_step = steps_;
    phases_.back().end_vertex = to;
  }
}

StepColor EProcess::step(Rng& rng) {
  const Vertex v = current_;
  ++steps_;
  StepColor color;
  Vertex to;
  if (blue_count_[v] > 0) {
    const std::uint32_t off = g_->slot_offset(v);
    const std::uint32_t b = blue_count_[v];
    Slot chosen;
    if (rule_->uniform_over_candidates()) {
      // Fast path: the rule is a single uniform draw over the candidates, so
      // sample the position directly through the blue-prefix partition —
      // same rng draw (uniform(b)), same chosen slot, no O(Δ) materialise.
      const std::uint32_t p = static_cast<std::uint32_t>(rng.uniform(b));
      chosen = g_->slot(v, order_[off + p]);
    } else {
      scratch_candidates_.clear();
      for (std::uint32_t p = 0; p < b; ++p)
        scratch_candidates_.push_back(g_->slot(v, order_[off + p]));

      const EProcessView view(*g_, cover_, steps_);
      std::uint32_t idx = rule_->choose(view, v, scratch_candidates_, rng);
      if (idx >= b) throw std::logic_error("UnvisitedEdgeRule returned out-of-range index");
      chosen = scratch_candidates_[idx];
    }
    mark_edge_visited(chosen.edge);
    cover_.visit_edge(chosen.edge, steps_);
    to = chosen.neighbor;
    color = StepColor::kBlue;
    ++blue_steps_;
  } else {
    const std::uint32_t d = g_->degree(v);
    if (d == 0) throw std::logic_error("EProcess: stuck at isolated vertex");
    const Slot slot = g_->slot(v, static_cast<std::uint32_t>(rng.uniform(d)));
    to = slot.neighbor;
    color = StepColor::kRed;
    ++red_steps_;
  }
  note_transition(color, v, to);
  current_ = to;
  cover_.visit_vertex(to, steps_);
  return color;
}

}  // namespace ewalk
