#include "walks/eprocess.hpp"

#include <stdexcept>

#include "walks/blue_choice.hpp"
#include "walks/step_core.hpp"

namespace ewalk {
namespace {

// Adapts the static-path machinery (BluePartition + UnvisitedEdgeRule +
// CoverState) to the BlueIndexT seam of eprocess_transition. take_blue
// performs choose -> mark -> visit_edge in the exact historical order, so
// the instantiation is operation-for-operation identical to the pre-seam
// step body (pinned by the golden hashes in perf_regression_test).
struct StaticBlueIndex {
  BluePartition& blue;
  const Graph& g;
  UnvisitedEdgeRule& rule;
  bool uniform_rule;
  CoverState& cover;
  std::uint64_t steps;

  std::uint32_t blue_count(Vertex v) const { return blue.blue_count(v); }

  Slot take_blue(Vertex v, Rng& rng) {
    const Slot chosen =
        choose_blue_slot(blue, g, v, rule, uniform_rule, cover, steps, rng);
    blue.mark_edge_visited(g, chosen.edge);
    cover.visit_edge(chosen.edge, steps);
    return chosen;
  }
};

}  // namespace

EProcess::EProcess(const Graph& g, Vertex start, UnvisitedEdgeRule& rule,
                   EProcessOptions options)
    : g_(&g), rule_(&rule), uniform_rule_(rule.uniform_over_candidates()),
      options_(options), start_(start), current_(start),
      cover_(g.num_vertices(), g.num_edges()), blue_(g) {
  if (start >= g.num_vertices())
    throw std::invalid_argument("EProcess: start vertex out of range");
  cover_.visit_vertex(start, 0);
}

void EProcess::note_transition(StepColor color, Vertex from, Vertex to) {
  if (!options_.record_phases) return;
  if (phases_.empty() || phases_.back().color != color) {
    phases_.push_back(Phase{color, steps_, steps_, from, to});
  } else {
    phases_.back().last_step = steps_;
    phases_.back().end_vertex = to;
  }
}

StepColor EProcess::step(Rng& rng) {
  const Vertex v = current_;
  ++steps_;
  StaticBlueIndex index{blue_, *g_, *rule_, uniform_rule_, cover_, steps_};
  Slot slot;
  const TransitionKind kind = eprocess_transition(*g_, index, v, rng, &slot);
  if (kind == TransitionKind::kIsolated)
    throw std::logic_error("EProcess: stuck at isolated vertex");
  const Vertex to = slot.neighbor;
  StepColor color;
  if (kind == TransitionKind::kBlue) {
    color = StepColor::kBlue;
    ++blue_steps_;
  } else {
    color = StepColor::kRed;
    ++red_steps_;
  }
  note_transition(color, v, to);
  current_ = to;
  cover_.visit_vertex(to, steps_);
  return color;
}

}  // namespace ewalk
