// The E-process (edge-process): the paper's primary contribution.
//
// At each step, if the current vertex has unvisited ("blue") incident edges,
// the walk crosses one of them — chosen by an arbitrary rule A — and marks
// it visited ("red"); otherwise it takes a simple-random-walk step along a
// uniformly random incident edge. The choice rule A may be randomised,
// deterministic, or adversarial (it sees the full walk state); Theorem 1's
// cover-time bound is independent of A.
//
// Implementation notes:
//  * Per-vertex incident slots are kept partitioned blue-prefix/red-suffix
//    (walks/blue_partition.hpp) with an O(1) swap on every edge visit, so a
//    red step is O(1). A blue step is O(Δ) only for rules that inspect the
//    candidate span; rules that declare themselves uniform (UniformRule)
//    take an O(1) fast path that samples an index directly through the
//    partition — with the identical rng draw, so both paths produce the
//    same walk (walks/blue_choice.hpp).
//  * The walk distinguishes blue and red transitions, exposing t_R and t_B
//    (Observation 12: t = t_R + t_B with t_B <= m), and can record maximal
//    blue/red phases for invariant checking (Observation 10: on even-degree
//    graphs a blue phase ends at the vertex where it started).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "walks/blue_partition.hpp"
#include "walks/cover_state.hpp"

namespace ewalk {

/// Read-only view of walk state offered to choice rules (adversaries may
/// inspect anything; they cannot mutate). Constructed by the walk each blue
/// step; also usable by other unvisited-edge processes (MultiEProcess).
class EProcessView {
 public:
  EProcessView(const Graph& graph, const CoverState& cover, std::uint64_t steps)
      : graph_(&graph), cover_(&cover), steps_(steps) {}
  const Graph& graph() const { return *graph_; }
  const CoverState& cover() const { return *cover_; }
  std::uint64_t steps() const { return steps_; }

 private:
  const Graph* graph_;
  const CoverState* cover_;
  std::uint64_t steps_;
};

/// Rule A: chooses among the blue (unvisited) edges at the current vertex.
/// `candidates` are the blue slots of `at` (size >= 1); return an index into
/// it. Rules may use the rng (uniform rule), internal state (round-robin),
/// or the full walk state (adversary).
class UnvisitedEdgeRule {
 public:
  virtual ~UnvisitedEdgeRule() = default;
  virtual std::uint32_t choose(const EProcessView& view, Vertex at,
                               std::span<const Slot> candidates, Rng& rng) = 0;
  /// Human-readable rule name for bench output.
  virtual const char* name() const = 0;
  /// True iff choose() is exactly one uniform draw over the candidates
  /// (rng.uniform(candidates.size())) with no other state. Walks use this
  /// to skip materialising the candidate span: they sample the index
  /// directly, preserving the rng stream bit-for-bit.
  virtual bool uniform_over_candidates() const { return false; }
};

/// Transition colour of a step.
enum class StepColor : std::uint8_t { kBlue, kRed };

/// One maximal single-colour phase (for invariant checks / instrumentation).
struct Phase {
  StepColor color;
  std::uint64_t first_step;   ///< step index of the phase's first transition
  std::uint64_t last_step;    ///< step index of the phase's last transition
  Vertex start_vertex;        ///< vertex occupied before the first transition
  Vertex end_vertex;          ///< vertex occupied after the last transition
};

struct EProcessOptions {
  bool record_phases = false;  ///< keep the full Phase log (O(#phases) memory)
};

class EProcess {
 public:
  /// The rule is borrowed and must outlive the process.
  EProcess(const Graph& g, Vertex start, UnvisitedEdgeRule& rule,
           EProcessOptions options = {});

  /// Performs one transition. Returns its colour. Drive to a termination
  /// condition with the generic engine driver (engine/driver.hpp), e.g.
  /// run_until_vertex_cover(walk, rng, budget).
  StepColor step(Rng& rng);

  /// Performs `k` transitions as one call; bit-identical to k step() calls.
  /// The batched entry point chunked drivers and EProcessHandle use.
  void step_many(Rng& rng, std::uint64_t k) {
    for (std::uint64_t i = 0; i < k; ++i) step(rng);
  }

  Vertex current() const { return current_; }
  Vertex start_vertex() const { return start_; }
  std::uint64_t steps() const { return steps_; }
  std::uint64_t red_steps() const { return red_steps_; }
  std::uint64_t blue_steps() const { return blue_steps_; }

  const Graph& graph() const { return *g_; }
  const CoverState& cover() const { return cover_; }

  /// Number of blue (unvisited) edges incident with v right now.
  std::uint32_t blue_degree(Vertex v) const { return blue_.blue_count(v); }

  /// Phase log (empty unless options.record_phases). The currently open
  /// phase is included with its running end.
  const std::vector<Phase>& phases() const { return phases_; }

 private:
  void note_transition(StepColor color, Vertex from, Vertex to);

  const Graph* g_;
  UnvisitedEdgeRule* rule_;
  EProcessOptions options_;
  Vertex start_;
  Vertex current_;
  std::uint64_t steps_ = 0;
  std::uint64_t red_steps_ = 0;
  std::uint64_t blue_steps_ = 0;
  CoverState cover_;
  BluePartition blue_;
  std::vector<Slot> scratch_candidates_;  // blue slots handed to the rule
  std::vector<Phase> phases_;
};

}  // namespace ewalk
