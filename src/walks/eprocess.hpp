// The E-process (edge-process): the paper's primary contribution.
//
// At each step, if the current vertex has unvisited ("blue") incident edges,
// the walk crosses one of them — chosen by an arbitrary rule A — and marks
// it visited ("red"); otherwise it takes a simple-random-walk step along a
// uniformly random incident edge. The choice rule A may be randomised,
// deterministic, or adversarial (it sees the full walk state); Theorem 1's
// cover-time bound is independent of A.
//
// Implementation notes:
//  * Per-vertex incident slots are kept partitioned blue-prefix/red-suffix
//    (walks/blue_partition.hpp) with an O(1) swap on every edge visit, so a
//    red step is O(1). Blue steps are index-based and lazy: the rule returns
//    an index into the blue prefix via choose_index(), reading any candidate
//    it cares about in O(1) through the view (EProcessView::blue_slot) — no
//    rule ever copies the candidate span, so a blue step costs O(1) plus
//    whatever the rule itself inspects (O(1) for uniform / first / last /
//    round-robin; O(blue_count) for rules that scan every candidate).
//    Rules that declare themselves uniform (UniformRule) additionally skip
//    the virtual dispatch: the walk samples the position directly with the
//    identical rng draw, so both paths produce the same walk
//    (walks/blue_choice.hpp).
//  * The walk distinguishes blue and red transitions, exposing t_R and t_B
//    (Observation 12: t = t_R + t_B with t_B <= m), and can record maximal
//    blue/red phases for invariant checking (Observation 10: on even-degree
//    graphs a blue phase ends at the vertex where it started).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "walks/blue_partition.hpp"
#include "walks/cover_state.hpp"

namespace ewalk {

/// Read-only view of walk state offered to choice rules (adversaries may
/// inspect anything; they cannot mutate). Constructed by the walk each blue
/// step; also usable by other unvisited-edge processes (MultiEProcess,
/// CoalescingEWalk). The view carries the walk's BluePartition, so rules can
/// read any blue candidate lazily in O(1) via blue_slot() instead of
/// receiving a materialised span.
class EProcessView {
 public:
  /// Full view: walk state plus the blue partition; blue_slot()/blue_count()
  /// are always valid. This is what every blue step constructs.
  EProcessView(const Graph& graph, const CoverState& cover,
               const BluePartition& blue, std::uint64_t steps)
      : graph_(&graph), cover_(&cover), blue_(&blue), steps_(steps) {}

  /// The graph the walk runs on.
  const Graph& graph() const { return *graph_; }
  /// Cover-progress bookkeeping (visited flags, visit counts, cover steps).
  const CoverState& cover() const { return *cover_; }
  /// Transitions made so far, counting the in-flight one.
  std::uint64_t steps() const { return steps_; }

  /// Number of blue (unvisited) edges incident with v right now. O(1).
  std::uint32_t blue_count(Vertex v) const { return blue_->blue_count(v); }

  /// The i-th blue slot of v, 0 <= i < blue_count(v). O(1); the enumeration
  /// order (partition order) is part of the rule-API contract — it is the
  /// order the historical span path presented candidates in, so index-based
  /// rules are choice-for-choice identical to their span ancestors.
  Slot blue_slot(Vertex v, std::uint32_t i) const {
    return blue_->blue_slot(*graph_, v, i);
  }

 private:
  const Graph* graph_;
  const CoverState* cover_;
  const BluePartition* blue_;
  std::uint64_t steps_;
};

/// Rule A: chooses among the blue (unvisited) edges at the current vertex.
///
/// The API is index-based and lazy: choose_index() receives the number of
/// blue candidates at `at` (>= 1) and returns an index into the blue
/// prefix, reading any candidate it needs in O(1) through
/// view.blue_slot(at, i). No span is materialised, so a blue step costs
/// O(1) plus only what the rule actually inspects. Rules may use the rng
/// (uniform rule), internal state (round-robin), or the full walk state
/// (adversary) — Theorem 1's cover bound is independent of the rule.
///
/// (The span-consuming choose() predecessor and its adapter were removed
/// after their one-release deprecation window; the candidate enumeration
/// order it defined is preserved verbatim by blue_slot(), pinned by
/// tests/rule_stream_identity_test.cpp against span-era twins.)
class UnvisitedEdgeRule {
 public:
  virtual ~UnvisitedEdgeRule() = default;

  /// Chooses among the `blue_count` blue slots of `at` (blue_count >= 1);
  /// returns an index in [0, blue_count). Candidate i is view.blue_slot(at,
  /// i), available in O(1) — read only what the rule needs. Implementations
  /// must draw from `rng` deterministically as a function of (visible walk
  /// state, rule state), so walks stay reproducible per seed.
  virtual std::uint32_t choose_index(const EProcessView& view, Vertex at,
                                     std::uint32_t blue_count, Rng& rng) = 0;

  /// Human-readable rule name for bench output.
  virtual const char* name() const = 0;

  /// True iff choose_index() is exactly one uniform draw over the candidates
  /// (rng.uniform(blue_count)) with no other state. Walks use this to skip
  /// the virtual dispatch entirely: they sample the position directly,
  /// preserving the rng stream bit-for-bit.
  virtual bool uniform_over_candidates() const { return false; }
};

/// Transition colour of a step.
enum class StepColor : std::uint8_t {
  kBlue,  ///< crossed a previously unvisited edge (and marked it visited)
  kRed    ///< simple-random-walk step (no blue edge was available)
};

/// One maximal single-colour phase (for invariant checks / instrumentation).
struct Phase {
  StepColor color;            ///< colour of every transition in the phase
  std::uint64_t first_step;   ///< step index of the phase's first transition
  std::uint64_t last_step;    ///< step index of the phase's last transition
  Vertex start_vertex;        ///< vertex occupied before the first transition
  Vertex end_vertex;          ///< vertex occupied after the last transition
};

/// Construction-time options for EProcess.
struct EProcessOptions {
  bool record_phases = false;  ///< keep the full Phase log (O(#phases) memory)
};

/// The paper's E-process: one walker preferring unvisited ("blue") incident
/// edges — chosen by an UnvisitedEdgeRule — with SRW fallback when none
/// remain. Vertex cover is O(n) whp on even-degree connected graphs
/// (Theorem 1), for every rule.
class EProcess {
 public:
  /// The rule is borrowed and must outlive the process.
  EProcess(const Graph& g, Vertex start, UnvisitedEdgeRule& rule,
           EProcessOptions options = {});

  /// Performs one transition. Returns its colour. Drive to a termination
  /// condition with the generic engine driver (engine/driver.hpp), e.g.
  /// run_until_vertex_cover(walk, rng, budget).
  StepColor step(Rng& rng);

  /// Performs `k` transitions as one call; bit-identical to k step() calls.
  /// The batched entry point chunked drivers and EProcessHandle use.
  void step_many(Rng& rng, std::uint64_t k) {
    for (std::uint64_t i = 0; i < k; ++i) step(rng);
  }

  /// Vertex the walk currently occupies.
  Vertex current() const { return current_; }
  /// Vertex the walk started at.
  Vertex start_vertex() const { return start_; }
  /// Transitions made so far.
  std::uint64_t steps() const { return steps_; }
  /// Red (SRW-fallback) transitions made so far.
  std::uint64_t red_steps() const { return red_steps_; }
  /// Blue (unvisited-edge) transitions made so far; t_B <= m (Obs. 12).
  std::uint64_t blue_steps() const { return blue_steps_; }

  /// The graph the walk runs on.
  const Graph& graph() const { return *g_; }
  /// Cover-progress bookkeeping.
  const CoverState& cover() const { return cover_; }

  /// Number of blue (unvisited) edges incident with v right now.
  std::uint32_t blue_degree(Vertex v) const { return blue_.blue_count(v); }

  /// Hints the hardware to pull everything a step at v will touch into
  /// cache: the CSR adjacency row (Graph::prefetch_hint) and the blue
  /// partition state (BluePartition::prefetch_hint). Issued by interleaved
  /// trial bundles (engine/bundle.hpp) for the walk's next position while
  /// other bundled trials step, hiding the dependent-load DRAM latency that
  /// dominates n >= 1e6 graphs. Pure hint: no state changes, never faults.
  void prefetch_hint(Vertex v) const noexcept {
    g_->prefetch_hint(v);
    blue_.prefetch_hint(*g_, v);
  }

  /// Phase log (empty unless options.record_phases). The currently open
  /// phase is included with its running end.
  const std::vector<Phase>& phases() const { return phases_; }

 private:
  void note_transition(StepColor color, Vertex from, Vertex to);

  const Graph* g_;
  UnvisitedEdgeRule* rule_;
  bool uniform_rule_;  // rule_->uniform_over_candidates(), hoisted once
  EProcessOptions options_;
  Vertex start_;
  Vertex current_;
  std::uint64_t steps_ = 0;
  std::uint64_t red_steps_ = 0;
  std::uint64_t blue_steps_ = 0;
  CoverState cover_;
  BluePartition blue_;
  std::vector<Phase> phases_;
};

}  // namespace ewalk
