#include "walks/locally_fair.hpp"

#include <stdexcept>

namespace ewalk {

LocallyFairWalk::LocallyFairWalk(const Graph& g, Vertex start, FairnessCriterion criterion)
    : g_(&g), criterion_(criterion), current_(start),
      cover_(g.num_vertices(), g.num_edges()),
      traversals_(g.num_edges(), 0), last_used_(g.num_edges(), 0) {
  if (start >= g.num_vertices())
    throw std::invalid_argument("LocallyFairWalk: start vertex out of range");
  cover_.visit_vertex(start, 0);
}

void LocallyFairWalk::step() {
  ++steps_;
  const auto slots = g_->slots(current_);
  if (slots.empty()) throw std::logic_error("LocallyFairWalk: stuck at isolated vertex");

  std::size_t best = 0;
  for (std::size_t i = 1; i < slots.size(); ++i) {
    if (criterion_ == FairnessCriterion::kLeastUsedFirst) {
      if (traversals_[slots[i].edge] < traversals_[slots[best].edge]) best = i;
    } else {
      if (last_used_[slots[i].edge] < last_used_[slots[best].edge]) best = i;
    }
  }
  const Slot chosen = slots[best];
  ++traversals_[chosen.edge];
  last_used_[chosen.edge] = steps_;
  cover_.visit_edge(chosen.edge, steps_);
  current_ = chosen.neighbor;
  cover_.visit_vertex(current_, steps_);
}

}  // namespace ewalk
