// Locally fair exploration strategies (Cooper, Ilcinkas, Klasing, Kosowski,
// Distributed Computing 2011 — reference [5] of the paper):
//   * Least-Used-First: leave the current vertex along the incident edge
//     traversed the fewest times so far (covers all edges in O(mD); fair
//     long-run edge frequencies).
//   * Oldest-First: leave along the incident edge that has waited the
//     longest since its last traversal (can be exponentially slow on some
//     graphs — the baselines bench exhibits the contrast).
// Both are deterministic; ties break by slot order.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/process.hpp"
#include "graph/graph.hpp"
#include "walks/cover_state.hpp"

namespace ewalk {

enum class FairnessCriterion : std::uint8_t { kLeastUsedFirst, kOldestFirst };

class LocallyFairWalk final : public WalkProcess {
 public:
  LocallyFairWalk(const Graph& g, Vertex start, FairnessCriterion criterion);

  void step();
  /// Engine-driver entry point; the rng is ignored (deterministic process).
  void step(Rng&) override { step(); }

  Vertex current() const override { return current_; }
  std::uint64_t steps() const override { return steps_; }
  const Graph& graph() const override { return *g_; }
  const CoverState& cover() const override { return cover_; }
  std::string_view name() const override {
    return criterion_ == FairnessCriterion::kLeastUsedFirst ? "leastused" : "oldest";
  }

  /// Traversal count per edge (for long-run fairness checks).
  const std::vector<std::uint64_t>& edge_traversals() const { return traversals_; }

 private:
  const Graph* g_;
  FairnessCriterion criterion_;
  Vertex current_;
  std::uint64_t steps_ = 0;
  CoverState cover_;
  std::vector<std::uint64_t> traversals_;  // per edge
  std::vector<std::uint64_t> last_used_;   // per edge; 0 == never
};

}  // namespace ewalk
