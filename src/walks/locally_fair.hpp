// Locally fair exploration strategies (Cooper, Ilcinkas, Klasing, Kosowski,
// Distributed Computing 2011 — reference [5] of the paper):
//   * Least-Used-First: leave the current vertex along the incident edge
//     traversed the fewest times so far (covers all edges in O(mD); fair
//     long-run edge frequencies).
//   * Oldest-First: leave along the incident edge that has waited the
//     longest since its last traversal (can be exponentially slow on some
//     graphs — the baselines bench exhibits the contrast).
// Both are deterministic; ties break by slot order.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "walks/cover_state.hpp"

namespace ewalk {

enum class FairnessCriterion : std::uint8_t { kLeastUsedFirst, kOldestFirst };

class LocallyFairWalk {
 public:
  LocallyFairWalk(const Graph& g, Vertex start, FairnessCriterion criterion);

  void step();
  bool run_until_vertex_cover(std::uint64_t max_steps);
  bool run_until_edge_cover(std::uint64_t max_steps);

  Vertex current() const { return current_; }
  std::uint64_t steps() const { return steps_; }
  const CoverState& cover() const { return cover_; }

  /// Traversal count per edge (for long-run fairness checks).
  const std::vector<std::uint64_t>& edge_traversals() const { return traversals_; }

 private:
  const Graph* g_;
  FairnessCriterion criterion_;
  Vertex current_;
  std::uint64_t steps_ = 0;
  CoverState cover_;
  std::vector<std::uint64_t> traversals_;  // per edge
  std::vector<std::uint64_t> last_used_;   // per edge; 0 == never
};

}  // namespace ewalk
