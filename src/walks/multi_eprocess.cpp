#include "walks/multi_eprocess.hpp"

#include <stdexcept>

#include "walks/blue_choice.hpp"

namespace ewalk {

MultiEProcess::MultiEProcess(const Graph& g, std::vector<Vertex> starts,
                             UnvisitedEdgeRule& rule)
    : g_(&g), rule_(&rule), uniform_rule_(rule.uniform_over_candidates()),
      positions_(std::move(starts)),
      cover_(g.num_vertices(), g.num_edges()), blue_(g) {
  if (positions_.empty())
    throw std::invalid_argument("MultiEProcess: need at least one walker");
  for (const Vertex v : positions_) {
    if (v >= g.num_vertices())
      throw std::invalid_argument("MultiEProcess: start vertex out of range");
  }
  for (const Vertex v : positions_) cover_.visit_vertex(v, 0);
}

StepColor MultiEProcess::step(Rng& rng) {
  const std::uint32_t w = next_walker_;
  next_walker_ = (next_walker_ + 1) % num_walkers();
  const Vertex v = positions_[w];
  ++steps_;
  StepColor color;
  Vertex to;
  if (blue_.blue_count(v) > 0) {
    const Slot chosen = choose_blue_slot(blue_, *g_, v, *rule_, uniform_rule_,
                                         cover_, steps_, rng);
    blue_.mark_edge_visited(*g_, chosen.edge);
    cover_.visit_edge(chosen.edge, steps_);
    to = chosen.neighbor;
    color = StepColor::kBlue;
    ++blue_steps_;
  } else {
    const std::uint32_t d = g_->degree(v);
    if (d == 0) throw std::logic_error("MultiEProcess: stuck at isolated vertex");
    const Slot slot = g_->slot(v, static_cast<std::uint32_t>(rng.uniform(d)));
    to = slot.neighbor;
    color = StepColor::kRed;
    ++red_steps_;
  }
  positions_[w] = to;
  cover_.visit_vertex(to, steps_);
  return color;
}

}  // namespace ewalk
