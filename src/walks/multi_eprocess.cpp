#include "walks/multi_eprocess.hpp"

#include <cassert>
#include <stdexcept>

namespace ewalk {

MultiEProcess::MultiEProcess(const Graph& g, std::vector<Vertex> starts,
                             UnvisitedEdgeRule& rule)
    : g_(&g), rule_(&rule), positions_(std::move(starts)),
      cover_(g.num_vertices(), g.num_edges()) {
  if (positions_.empty())
    throw std::invalid_argument("MultiEProcess: need at least one walker");
  for (const Vertex v : positions_) {
    if (v >= g.num_vertices())
      throw std::invalid_argument("MultiEProcess: start vertex out of range");
  }
  const std::size_t total_slots = 2 * static_cast<std::size_t>(g.num_edges());
  order_.resize(total_slots);
  blue_count_.resize(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::uint32_t off = g.slot_offset(v);
    const std::uint32_t d = g.degree(v);
    blue_count_[v] = d;
    for (std::uint32_t k = 0; k < d; ++k) order_[off + k] = k;
  }
  scratch_candidates_.reserve(g.max_degree());
  for (const Vertex v : positions_) cover_.visit_vertex(v, 0);
}

void MultiEProcess::mark_edge_visited(EdgeId e) {
  const auto [u, v] = g_->endpoints(e);
  const auto evict = [this](Vertex owner, EdgeId edge) {
    const std::uint32_t off = g_->slot_offset(owner);
    const std::uint32_t b = blue_count_[owner];
    for (std::uint32_t p = 0; p < b; ++p) {
      const std::uint32_t k = order_[off + p];
      if (g_->slot(owner, k).edge == edge) {
        const std::uint32_t last = b - 1;
        order_[off + p] = order_[off + last];
        order_[off + last] = k;
        blue_count_[owner] = last;
        return true;
      }
    }
    return false;
  };
  const bool at_u = evict(u, e);
  assert(at_u);
  (void)at_u;
  const bool other = evict(u == v ? u : v, e);
  assert(other);
  (void)other;
}

StepColor MultiEProcess::step(Rng& rng) {
  const std::uint32_t w = next_walker_;
  next_walker_ = (next_walker_ + 1) % num_walkers();
  const Vertex v = positions_[w];
  ++steps_;
  StepColor color;
  Vertex to;
  if (blue_count_[v] > 0) {
    const std::uint32_t off = g_->slot_offset(v);
    const std::uint32_t b = blue_count_[v];
    Slot chosen;
    if (rule_->uniform_over_candidates()) {
      // Same O(1) fast path as EProcess::step: identical rng draw, no span.
      const std::uint32_t p = static_cast<std::uint32_t>(rng.uniform(b));
      chosen = g_->slot(v, order_[off + p]);
    } else {
      scratch_candidates_.clear();
      for (std::uint32_t p = 0; p < b; ++p)
        scratch_candidates_.push_back(g_->slot(v, order_[off + p]));
      const EProcessView view(*g_, cover_, steps_);
      const std::uint32_t idx = rule_->choose(view, v, scratch_candidates_, rng);
      if (idx >= b) throw std::logic_error("MultiEProcess: rule returned bad index");
      chosen = scratch_candidates_[idx];
    }
    mark_edge_visited(chosen.edge);
    cover_.visit_edge(chosen.edge, steps_);
    to = chosen.neighbor;
    color = StepColor::kBlue;
    ++blue_steps_;
  } else {
    const std::uint32_t d = g_->degree(v);
    if (d == 0) throw std::logic_error("MultiEProcess: stuck at isolated vertex");
    const Slot slot = g_->slot(v, static_cast<std::uint32_t>(rng.uniform(d)));
    to = slot.neighbor;
    color = StepColor::kRed;
    ++red_steps_;
  }
  positions_[w] = to;
  cover_.visit_vertex(to, steps_);
  return color;
}

}  // namespace ewalk
