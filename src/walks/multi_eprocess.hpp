// Multi-walker E-process: k cooperating walkers sharing one visited-edge
// state.
//
// A natural extension the paper's framework invites (the E-process is a
// single token; distributed exploration wants several): all walkers consult
// the same blue/red edge colouring, and each step of the *system* advances
// one walker round-robin. Cover times are reported in system steps, so a
// perfect parallelisation would show cover_time(k) ≈ cover_time(1): the
// interesting question is how close cooperation gets (contention: walkers
// steal each other's blue edges; the blue-phase parity argument holds per
// walker only until another walker breaks the local parity, so this is a
// genuinely different process — measured, not analysed, here).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "walks/blue_partition.hpp"
#include "walks/cover_state.hpp"
#include "walks/eprocess.hpp"

namespace ewalk {

class MultiEProcess {
 public:
  /// `starts` gives one start vertex per walker (k = starts.size() >= 1).
  /// The rule is shared across walkers and must outlive the process.
  MultiEProcess(const Graph& g, std::vector<Vertex> starts, UnvisitedEdgeRule& rule);

  /// Advances the next walker (round-robin). Returns its transition colour.
  /// Drive to a termination condition with the engine driver
  /// (engine/driver.hpp).
  StepColor step(Rng& rng);

  /// Performs `k` transitions as one call; bit-identical to k step() calls.
  void step_many(Rng& rng, std::uint64_t k) {
    for (std::uint64_t i = 0; i < k; ++i) step(rng);
  }

  std::uint32_t num_walkers() const { return static_cast<std::uint32_t>(positions_.size()); }
  Vertex position(std::uint32_t walker) const { return positions_[walker]; }
  /// Position of the walker about to move (the engine's notion of "current").
  Vertex current() const { return positions_[next_walker_]; }
  const Graph& graph() const { return *g_; }
  std::uint64_t steps() const { return steps_; }
  std::uint64_t blue_steps() const { return blue_steps_; }
  std::uint64_t red_steps() const { return red_steps_; }
  const CoverState& cover() const { return cover_; }
  std::uint32_t blue_degree(Vertex v) const { return blue_.blue_count(v); }

  /// Hints the hardware to pull everything the next system step will touch
  /// into cache: the CSR row and blue-partition state of `v` (normally
  /// current(), the walker about to move). See EProcess::prefetch_hint.
  void prefetch_hint(Vertex v) const noexcept {
    g_->prefetch_hint(v);
    blue_.prefetch_hint(*g_, v);
  }

 private:
  const Graph* g_;
  UnvisitedEdgeRule* rule_;
  bool uniform_rule_;  // rule_->uniform_over_candidates(), hoisted once
  std::vector<Vertex> positions_;
  std::uint32_t next_walker_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t blue_steps_ = 0;
  std::uint64_t red_steps_ = 0;
  CoverState cover_;
  BluePartition blue_;
};

}  // namespace ewalk
