#include "walks/rotor.hpp"

#include <stdexcept>

namespace ewalk {

RotorRouter::RotorRouter(const Graph& g, Vertex start)
    : g_(&g), current_(start), cover_(g.num_vertices(), g.num_edges()),
      rotor_(g.num_vertices(), 0) {
  if (start >= g.num_vertices())
    throw std::invalid_argument("RotorRouter: start vertex out of range");
  cover_.visit_vertex(start, 0);
}

void RotorRouter::step() {
  ++steps_;
  const std::uint32_t d = g_->degree(current_);
  if (d == 0) throw std::logic_error("RotorRouter: stuck at isolated vertex");
  const std::uint32_t k = rotor_[current_];
  rotor_[current_] = (k + 1) % d;
  const Slot slot = g_->slot(current_, k);
  cover_.visit_edge(slot.edge, steps_);
  current_ = slot.neighbor;
  cover_.visit_vertex(current_, steps_);
}

}  // namespace ewalk
