// Rotor-router (Propp machine) walk — deterministic baseline (Section 1).
//
// Each vertex keeps a rotor over its incident slots; the walk exits along
// the rotor's slot and advances the rotor. Cover time is O(mD) (Yanovski,
// Wagner, Bruckstein), which the baselines bench contrasts with the
// E-process. The E-process itself is described by the paper as "a hybrid
// between a rotor-router and a random walk".
#pragma once

#include <cstdint>
#include <vector>

#include "engine/process.hpp"
#include "graph/graph.hpp"
#include "walks/cover_state.hpp"

namespace ewalk {

class RotorRouter final : public WalkProcess {
 public:
  RotorRouter(const Graph& g, Vertex start);

  /// One deterministic transition.
  void step();
  /// Engine-driver entry point; the rng is ignored (deterministic process).
  void step(Rng&) override { step(); }

  Vertex current() const override { return current_; }
  std::uint64_t steps() const override { return steps_; }
  const Graph& graph() const override { return *g_; }
  const CoverState& cover() const override { return cover_; }
  std::string_view name() const override { return "rotor"; }

 private:
  const Graph* g_;
  Vertex current_;
  std::uint64_t steps_ = 0;
  CoverState cover_;
  std::vector<std::uint32_t> rotor_;  // next slot index per vertex
};

}  // namespace ewalk
