// Rotor-router (Propp machine) walk — deterministic baseline (Section 1).
//
// Each vertex keeps a rotor over its incident slots; the walk exits along
// the rotor's slot and advances the rotor. Cover time is O(mD) (Yanovski,
// Wagner, Bruckstein), which the baselines bench contrasts with the
// E-process. The E-process itself is described by the paper as "a hybrid
// between a rotor-router and a random walk".
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "walks/cover_state.hpp"

namespace ewalk {

class RotorRouter {
 public:
  RotorRouter(const Graph& g, Vertex start);

  /// One deterministic transition.
  void step();

  bool run_until_vertex_cover(std::uint64_t max_steps);
  bool run_until_edge_cover(std::uint64_t max_steps);

  Vertex current() const { return current_; }
  std::uint64_t steps() const { return steps_; }
  const CoverState& cover() const { return cover_; }

 private:
  const Graph* g_;
  Vertex current_;
  std::uint64_t steps_ = 0;
  CoverState cover_;
  std::vector<std::uint32_t> rotor_;  // next slot index per vertex
};

}  // namespace ewalk
