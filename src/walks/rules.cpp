// Rules are header-only; this translation unit anchors the vtables.
#include "walks/rules.hpp"

namespace ewalk {
// Intentionally empty: UnvisitedEdgeRule implementations are inline.
}  // namespace ewalk
