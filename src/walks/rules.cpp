// Concrete rules are header-only; this translation unit anchors the vtables
// and hosts the deprecated span adapter on the rule base class.
#include "walks/rules.hpp"

#include <stdexcept>

namespace ewalk {

// Deprecated span adapter: a rule that only overrides the legacy choose()
// still works for one release — the candidates are materialised into the
// rule's scratch vector (the old span path's copy, at the old O(blue_count)
// cost) and handed over. Draw-for-draw identical to the removed span
// dispatch, since the enumeration order of view.blue_slot() is the order
// fill_candidates() produced.
std::uint32_t UnvisitedEdgeRule::choose_index(const EProcessView& view,
                                              Vertex at,
                                              std::uint32_t blue_count,
                                              Rng& rng) {
  span_scratch_.resize(blue_count);
  for (std::uint32_t i = 0; i < blue_count; ++i)
    span_scratch_[i] = view.blue_slot(at, i);
  return choose(view, at, span_scratch_, rng);
}

std::uint32_t UnvisitedEdgeRule::choose(const EProcessView&, Vertex,
                                        std::span<const Slot>, Rng&) {
  throw std::logic_error(
      "UnvisitedEdgeRule: override choose_index() (or the deprecated span "
      "choose())");
}

}  // namespace ewalk
