// Concrete choice rules A for the E-process.
//
// Theorem 1 holds for *any* rule, "even if this choice is decided on-line by
// an adversary"; the rule-independence bench exercises each of these:
//   * UniformRule       — u.a.r. among blue edges; this instance of the
//                         E-process is the Greedy Random Walk of
//                         Orenshtein–Shinkar.
//   * FirstSlotRule     — deterministic: lowest incident slot first.
//   * LastSlotRule      — deterministic: highest incident slot first.
//   * RoundRobinRule    — rotor-like pointer per vertex over blue slots.
//   * PreferVisitedEndpointRule   — adversary: steers the blue walk toward
//                         already well-visited territory, away from new
//                         vertices (most visit-count endpoint first).
//   * PreferUnvisitedEndpointRule — greedy helper: moves toward unvisited
//                         endpoints when possible (lower bound foil).
#pragma once

#include <vector>

#include "walks/eprocess.hpp"

namespace ewalk {

class UniformRule final : public UnvisitedEdgeRule {
 public:
  std::uint32_t choose(const EProcessView&, Vertex, std::span<const Slot> candidates,
                       Rng& rng) override {
    return static_cast<std::uint32_t>(rng.uniform(candidates.size()));
  }
  const char* name() const override { return "uniform"; }
  bool uniform_over_candidates() const override { return true; }
};

class FirstSlotRule final : public UnvisitedEdgeRule {
 public:
  std::uint32_t choose(const EProcessView&, Vertex, std::span<const Slot>,
                       Rng&) override {
    return 0;
  }
  const char* name() const override { return "first-slot"; }
};

class LastSlotRule final : public UnvisitedEdgeRule {
 public:
  std::uint32_t choose(const EProcessView&, Vertex, std::span<const Slot> candidates,
                       Rng&) override {
    return static_cast<std::uint32_t>(candidates.size() - 1);
  }
  const char* name() const override { return "last-slot"; }
};

/// Deterministic per-vertex rotating pointer over whatever blue candidates
/// remain — an on-line deterministic rule in the spirit of rotor-routers.
class RoundRobinRule final : public UnvisitedEdgeRule {
 public:
  explicit RoundRobinRule(Vertex n) : next_(n, 0) {}
  std::uint32_t choose(const EProcessView&, Vertex at, std::span<const Slot> candidates,
                       Rng&) override {
    const std::uint32_t idx = next_[at] % static_cast<std::uint32_t>(candidates.size());
    next_[at] = idx + 1;
    return idx;
  }
  const char* name() const override { return "round-robin"; }

 private:
  std::vector<std::uint32_t> next_;
};

/// Adversarial rule: among blue edges, pick the endpoint the walk has
/// visited most often (delaying discovery of new vertices). Ties break to
/// the lowest slot, so the rule is deterministic given the walk history.
class PreferVisitedEndpointRule final : public UnvisitedEdgeRule {
 public:
  std::uint32_t choose(const EProcessView& view, Vertex, std::span<const Slot> candidates,
                       Rng&) override {
    std::uint32_t best = 0;
    std::uint32_t best_count = view.cover().visit_count(candidates[0].neighbor);
    for (std::uint32_t i = 1; i < candidates.size(); ++i) {
      const std::uint32_t c = view.cover().visit_count(candidates[i].neighbor);
      if (c > best_count) {
        best = i;
        best_count = c;
      }
    }
    return best;
  }
  const char* name() const override { return "adversary-prefer-visited"; }
};

/// Offline adversary: a fixed priority permutation over *edge ids*, drawn
/// once at construction (or supplied). At each blue step the candidate with
/// the highest priority wins. Models the paper's "the rule could ... vary
/// from vertex to vertex" / offline-adversary allowance: the entire schedule
/// is fixed before the walk starts.
class FixedPriorityRule final : public UnvisitedEdgeRule {
 public:
  FixedPriorityRule(EdgeId num_edges, Rng& rng) : priority_(num_edges) {
    for (EdgeId e = 0; e < num_edges; ++e) priority_[e] = e;
    rng.shuffle(std::span<EdgeId>(priority_));
  }
  explicit FixedPriorityRule(std::vector<EdgeId> priority)
      : priority_(std::move(priority)) {}

  std::uint32_t choose(const EProcessView&, Vertex, std::span<const Slot> candidates,
                       Rng&) override {
    std::uint32_t best = 0;
    for (std::uint32_t i = 1; i < candidates.size(); ++i)
      if (priority_[candidates[i].edge] < priority_[candidates[best].edge]) best = i;
    return best;
  }
  const char* name() const override { return "fixed-priority"; }

 private:
  std::vector<EdgeId> priority_;
};

/// Greedy rule: prefer blue edges leading to unvisited endpoints.
class PreferUnvisitedEndpointRule final : public UnvisitedEdgeRule {
 public:
  std::uint32_t choose(const EProcessView& view, Vertex, std::span<const Slot> candidates,
                       Rng& rng) override {
    std::uint32_t unvisited_seen = 0;
    std::uint32_t pick = 0;
    for (std::uint32_t i = 0; i < candidates.size(); ++i) {
      if (!view.cover().vertex_visited(candidates[i].neighbor)) {
        ++unvisited_seen;
        // Reservoir sample uniformly among unvisited endpoints.
        if (rng.uniform(unvisited_seen) == 0) pick = i;
      }
    }
    if (unvisited_seen > 0) return pick;
    return static_cast<std::uint32_t>(rng.uniform(candidates.size()));
  }
  const char* name() const override { return "greedy-prefer-unvisited"; }
};

}  // namespace ewalk
