// Concrete choice rules A for the E-process.
//
// Theorem 1 holds for *any* rule, "even if this choice is decided on-line by
// an adversary"; the rule-independence bench exercises each of these:
//   * UniformRule       — u.a.r. among blue edges; this instance of the
//                         E-process is the Greedy Random Walk of
//                         Orenshtein–Shinkar.
//   * FirstSlotRule     — deterministic: lowest incident slot first.
//   * LastSlotRule      — deterministic: highest incident slot first.
//   * RoundRobinRule    — rotor-like pointer per vertex over blue slots.
//   * PreferVisitedEndpointRule   — adversary: steers the blue walk toward
//                         already well-visited territory, away from new
//                         vertices (most visit-count endpoint first).
//   * PreferUnvisitedEndpointRule — greedy helper: moves toward unvisited
//                         endpoints when possible (lower bound foil).
//
// All rules implement the index-based choose_index() API: they return a
// position into the blue prefix and read only the candidates they need in
// O(1) through the view, so no rule copies the candidate span. Uniform,
// first-slot, last-slot, and round-robin are O(1) per blue step; the
// endpoint- and priority-inspecting rules are O(blue_count) by nature (they
// scan every candidate) but pay no copy.
#pragma once

#include <vector>

#include "walks/eprocess.hpp"

namespace ewalk {

/// Uniform over blue candidates: one rng.uniform(blue_count) draw. The walk
/// detects uniform_over_candidates() and samples the position itself without
/// the virtual call — with the identical draw, so both paths coincide.
class UniformRule final : public UnvisitedEdgeRule {
 public:
  std::uint32_t choose_index(const EProcessView&, Vertex,
                             std::uint32_t blue_count, Rng& rng) override {
    return static_cast<std::uint32_t>(rng.uniform(blue_count));
  }
  const char* name() const override { return "uniform"; }
  bool uniform_over_candidates() const override { return true; }
};

/// Deterministic: always the blue slot at position 0. O(1).
class FirstSlotRule final : public UnvisitedEdgeRule {
 public:
  std::uint32_t choose_index(const EProcessView&, Vertex, std::uint32_t,
                             Rng&) override {
    return 0;
  }
  const char* name() const override { return "first-slot"; }
};

/// Deterministic: always the blue slot at the last position. O(1).
class LastSlotRule final : public UnvisitedEdgeRule {
 public:
  std::uint32_t choose_index(const EProcessView&, Vertex,
                             std::uint32_t blue_count, Rng&) override {
    return blue_count - 1;
  }
  const char* name() const override { return "last-slot"; }
};

/// Deterministic per-vertex rotating pointer over whatever blue candidates
/// remain — an on-line deterministic rule in the spirit of rotor-routers.
/// O(1) per blue step: the pointer is reduced mod blue_count without ever
/// looking at a candidate.
class RoundRobinRule final : public UnvisitedEdgeRule {
 public:
  explicit RoundRobinRule(Vertex n) : next_(n, 0) {}
  std::uint32_t choose_index(const EProcessView&, Vertex at,
                             std::uint32_t blue_count, Rng&) override {
    const std::uint32_t idx = next_[at] % blue_count;
    next_[at] = idx + 1;
    return idx;
  }
  const char* name() const override { return "round-robin"; }

 private:
  std::vector<std::uint32_t> next_;
};

/// Adversarial rule: among blue edges, pick the endpoint the walk has
/// visited most often (delaying discovery of new vertices). Ties break to
/// the lowest slot, so the rule is deterministic given the walk history.
/// O(blue_count): inspects every candidate lazily through the view.
class PreferVisitedEndpointRule final : public UnvisitedEdgeRule {
 public:
  std::uint32_t choose_index(const EProcessView& view, Vertex at,
                             std::uint32_t blue_count, Rng&) override {
    std::uint32_t best = 0;
    std::uint32_t best_count =
        view.cover().visit_count(view.blue_slot(at, 0).neighbor);
    for (std::uint32_t i = 1; i < blue_count; ++i) {
      const std::uint32_t c =
          view.cover().visit_count(view.blue_slot(at, i).neighbor);
      if (c > best_count) {
        best = i;
        best_count = c;
      }
    }
    return best;
  }
  const char* name() const override { return "adversary-prefer-visited"; }
};

/// Offline adversary: a fixed priority permutation over *edge ids*, drawn
/// once at construction (or supplied). At each blue step the candidate with
/// the highest priority wins. Models the paper's "the rule could ... vary
/// from vertex to vertex" / offline-adversary allowance: the entire schedule
/// is fixed before the walk starts. O(blue_count) per blue step.
class FixedPriorityRule final : public UnvisitedEdgeRule {
 public:
  /// Draws a uniform priority permutation over the edge ids from `rng`.
  FixedPriorityRule(EdgeId num_edges, Rng& rng) : priority_(num_edges) {
    for (EdgeId e = 0; e < num_edges; ++e) priority_[e] = e;
    rng.shuffle(std::span<EdgeId>(priority_));
  }
  /// Uses a caller-supplied priority table (lower value = higher priority).
  explicit FixedPriorityRule(std::vector<EdgeId> priority)
      : priority_(std::move(priority)) {}

  std::uint32_t choose_index(const EProcessView& view, Vertex at,
                             std::uint32_t blue_count, Rng&) override {
    std::uint32_t best = 0;
    EdgeId best_priority = priority_[view.blue_slot(at, 0).edge];
    for (std::uint32_t i = 1; i < blue_count; ++i) {
      const EdgeId p = priority_[view.blue_slot(at, i).edge];
      if (p < best_priority) {
        best = i;
        best_priority = p;
      }
    }
    return best;
  }
  const char* name() const override { return "fixed-priority"; }

 private:
  std::vector<EdgeId> priority_;
};

/// Greedy rule: prefer blue edges leading to unvisited endpoints, uniformly
/// among them (reservoir sample); uniform among all candidates when every
/// blue endpoint is already visited. O(blue_count) per blue step.
class PreferUnvisitedEndpointRule final : public UnvisitedEdgeRule {
 public:
  std::uint32_t choose_index(const EProcessView& view, Vertex at,
                             std::uint32_t blue_count, Rng& rng) override {
    std::uint32_t unvisited_seen = 0;
    std::uint32_t pick = 0;
    for (std::uint32_t i = 0; i < blue_count; ++i) {
      if (!view.cover().vertex_visited(view.blue_slot(at, i).neighbor)) {
        ++unvisited_seen;
        // Reservoir sample uniformly among unvisited endpoints.
        if (rng.uniform(unvisited_seen) == 0) pick = i;
      }
    }
    if (unvisited_seen > 0) return pick;
    return static_cast<std::uint32_t>(rng.uniform(blue_count));
  }
  const char* name() const override { return "greedy-prefer-unvisited"; }
};

}  // namespace ewalk
