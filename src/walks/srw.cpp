#include "walks/srw.hpp"

#include <stdexcept>

#include "walks/step_core.hpp"

namespace ewalk {

SimpleRandomWalk::SimpleRandomWalk(const Graph& g, Vertex start, SrwOptions options)
    : g_(&g), options_(options), current_(start),
      cover_(g.num_vertices(), g.num_edges()) {
  if (start >= g.num_vertices())
    throw std::invalid_argument("SimpleRandomWalk: start vertex out of range");
  cover_.visit_vertex(start, 0);
}

void SimpleRandomWalk::step(Rng& rng) {
  ++steps_;
  if (options_.lazy && rng.bernoulli(0.5)) {
    cover_.visit_vertex(current_, steps_);
    return;
  }
  Slot slot;
  if (srw_transition(*g_, current_, rng, &slot) == TransitionKind::kIsolated)
    throw std::logic_error("SimpleRandomWalk: stuck at isolated vertex");
  cover_.visit_edge(slot.edge, steps_);
  current_ = slot.neighbor;
  cover_.visit_vertex(current_, steps_);
}

}  // namespace ewalk
