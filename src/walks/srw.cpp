#include "walks/srw.hpp"

#include <stdexcept>

namespace ewalk {

SimpleRandomWalk::SimpleRandomWalk(const Graph& g, Vertex start, SrwOptions options)
    : g_(&g), options_(options), current_(start),
      cover_(g.num_vertices(), g.num_edges()) {
  if (start >= g.num_vertices())
    throw std::invalid_argument("SimpleRandomWalk: start vertex out of range");
  cover_.visit_vertex(start, 0);
}

void SimpleRandomWalk::step(Rng& rng) {
  ++steps_;
  if (options_.lazy && rng.bernoulli(0.5)) {
    cover_.visit_vertex(current_, steps_);
    return;
  }
  const std::uint32_t d = g_->degree(current_);
  if (d == 0) throw std::logic_error("SimpleRandomWalk: stuck at isolated vertex");
  const Slot slot = g_->slot(current_, static_cast<std::uint32_t>(rng.uniform(d)));
  cover_.visit_edge(slot.edge, steps_);
  current_ = slot.neighbor;
  cover_.visit_vertex(current_, steps_);
}

bool SimpleRandomWalk::run_until_vertex_cover(Rng& rng, std::uint64_t max_steps) {
  while (!cover_.all_vertices_covered() && steps_ < max_steps) step(rng);
  return cover_.all_vertices_covered();
}

bool SimpleRandomWalk::run_until_edge_cover(Rng& rng, std::uint64_t max_steps) {
  while (!cover_.all_edges_covered() && steps_ < max_steps) step(rng);
  return cover_.all_edges_covered();
}

bool SimpleRandomWalk::run_until_visit_count(Rng& rng, std::uint32_t count,
                                             std::uint64_t max_steps) {
  while (cover_.min_visit_count() < count && steps_ < max_steps) {
    // min_visit_count is O(n); check it only every n steps.
    const std::uint64_t burst = g_->num_vertices();
    for (std::uint64_t i = 0; i < burst && steps_ < max_steps; ++i) step(rng);
  }
  return cover_.min_visit_count() >= count;
}

}  // namespace ewalk
