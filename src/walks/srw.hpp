// Simple random walk (SRW) and its lazy variant.
//
// The SRW is both the baseline the paper's lower bounds speak about
// (C_V >= (1-o(1)) n log n, Feige) and the embedded "red walk" of the
// E-process. Laziness (stay put with probability 1/2) is the paper's
// standard fix for bipartite graphs, where λ_n = -1 breaks mixing.
#pragma once

#include <cstdint>

#include "engine/process.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "walks/cover_state.hpp"

namespace ewalk {

struct SrwOptions {
  bool lazy = false;  ///< stay put with probability 1/2 before each move
};

class SimpleRandomWalk final : public WalkProcess {
 public:
  SimpleRandomWalk(const Graph& g, Vertex start, SrwOptions options = {});

  /// One transition (a lazy hold still counts as a step). Drive to a
  /// termination condition with the engine driver (engine/driver.hpp).
  void step(Rng& rng) override;

  /// Tight batched loop: the class is final, so the per-step calls
  /// devirtualise and chunked drivers pay one virtual dispatch per chunk.
  void step_many(Rng& rng, std::uint64_t k) override {
    for (std::uint64_t i = 0; i < k; ++i) step(rng);
  }

  Vertex current() const override { return current_; }
  std::uint64_t steps() const override { return steps_; }
  const Graph& graph() const override { return *g_; }
  const CoverState& cover() const override { return cover_; }
  std::string_view name() const override { return options_.lazy ? "lazy-srw" : "srw"; }

 private:
  const Graph* g_;
  SrwOptions options_;
  Vertex current_;
  std::uint64_t steps_ = 0;
  CoverState cover_;
};

}  // namespace ewalk
