// Simple random walk (SRW) and its lazy variant.
//
// The SRW is both the baseline the paper's lower bounds speak about
// (C_V >= (1-o(1)) n log n, Feige) and the embedded "red walk" of the
// E-process. Laziness (stay put with probability 1/2) is the paper's
// standard fix for bipartite graphs, where λ_n = -1 breaks mixing.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "walks/cover_state.hpp"

namespace ewalk {

struct SrwOptions {
  bool lazy = false;  ///< stay put with probability 1/2 before each move
};

class SimpleRandomWalk {
 public:
  SimpleRandomWalk(const Graph& g, Vertex start, SrwOptions options = {});

  /// One transition (a lazy hold still counts as a step).
  void step(Rng& rng);

  bool run_until_vertex_cover(Rng& rng, std::uint64_t max_steps);
  bool run_until_edge_cover(Rng& rng, std::uint64_t max_steps);

  /// Runs until every vertex has been visited at least `count` times (used
  /// for blanket-style bounds: d(v) visits force all incident edges red in
  /// the E-process edge-cover argument, eq. (4)). Returns true on success.
  bool run_until_visit_count(Rng& rng, std::uint32_t count, std::uint64_t max_steps);

  Vertex current() const { return current_; }
  std::uint64_t steps() const { return steps_; }
  const Graph& graph() const { return *g_; }
  const CoverState& cover() const { return cover_; }

 private:
  const Graph* g_;
  SrwOptions options_;
  Vertex current_;
  std::uint64_t steps_ = 0;
  CoverState cover_;
};

}  // namespace ewalk
