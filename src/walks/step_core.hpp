// Backend-generic transition cores shared by the static and dynamic walks.
//
// `Graph` (immutable CSR) and `DynamicGraphView` (evolving adjacency) expose
// the same degree/slot shape, so the SRW and E-process transition logic is
// written once here as templates over the backend instead of forking the
// step loops. The static walks instantiate these with `Graph` and keep their
// exact historical rng-draw order (pinned by the golden trajectory hashes in
// perf_regression_test); the dynamic walks instantiate them with
// `DynamicGraphView` and translate the "isolated vertex" outcome into a
// counted hold instead of an exception, since an evolving graph legitimately
// strands a walker between edge arrivals.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ewalk {

/// Outcome of one backend-generic transition attempt.
enum class TransitionKind : std::uint8_t {
  kBlue,      ///< crossed an unvisited edge (E-process only)
  kRed,       ///< uniform SRW move along an incident slot
  kIsolated   ///< the vertex has no incident edges; no rng was consumed
};

/// One SRW transition on any backend with the Graph degree/slot shape:
/// exactly one uniform draw over the `degree(at)` incident slots, written to
/// `*out`. Returns kIsolated (consuming no rng) when `at` has no incident
/// edges — the static walk turns that into the historical logic_error, the
/// dynamic walk into a counted hold.
template <class GraphT>
inline TransitionKind srw_transition(const GraphT& g, Vertex at, Rng& rng,
                                     Slot* out) {
  const std::uint32_t d = g.degree(at);
  if (d == 0) return TransitionKind::kIsolated;
  *out = g.slot(at, static_cast<std::uint32_t>(rng.uniform(d)));
  return TransitionKind::kRed;
}

/// One E-process transition on any backend: if the blue index reports
/// unvisited incident edges at `at`, delegate the choice (and all visit
/// bookkeeping) to `blue.take_blue`; otherwise fall back to the uniform SRW
/// draw. BlueIndexT is the seam between backends — the static walk adapts
/// BluePartition + UnvisitedEdgeRule behind it (preserving the historical
/// choose -> mark -> visit_edge order bit-for-bit), the dynamic walk a
/// journal-synced visited bitmap.
///
/// BlueIndexT requirements:
///   std::uint32_t blue_count(Vertex v) const;  // unvisited incident slots
///   Slot take_blue(Vertex v, Rng& rng);        // choose + mark + record
template <class GraphT, class BlueIndexT>
inline TransitionKind eprocess_transition(const GraphT& g, BlueIndexT& blue,
                                          Vertex at, Rng& rng, Slot* out) {
  if (blue.blue_count(at) > 0) {
    *out = blue.take_blue(at, rng);
    return TransitionKind::kBlue;
  }
  return srw_transition(g, at, rng, out);
}

}  // namespace ewalk
