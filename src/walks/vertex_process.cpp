#include "walks/vertex_process.hpp"

#include <stdexcept>

namespace ewalk {

UnvisitedVertexWalk::UnvisitedVertexWalk(const Graph& g, Vertex start)
    : g_(&g), current_(start), cover_(g.num_vertices(), g.num_edges()) {
  if (start >= g.num_vertices())
    throw std::invalid_argument("UnvisitedVertexWalk: start vertex out of range");
  scratch_.reserve(g.max_degree());
  cover_.visit_vertex(start, 0);
}

void UnvisitedVertexWalk::step(Rng& rng) {
  ++steps_;
  const std::uint32_t deg = g_->degree(current_);
  if (deg == 0) throw std::logic_error("UnvisitedVertexWalk: stuck at isolated vertex");

  scratch_.clear();
  for (const Slot& s : g_->slots(current_))
    if (!cover_.vertex_visited(s.neighbor)) scratch_.push_back(s);

  Slot chosen{};
  if (!scratch_.empty()) {
    chosen = scratch_[static_cast<std::size_t>(rng.uniform(scratch_.size()))];
  } else {
    chosen = g_->slot(current_, static_cast<std::uint32_t>(rng.uniform(deg)));
  }
  cover_.visit_edge(chosen.edge, steps_);
  current_ = chosen.neighbor;
  cover_.visit_vertex(current_, steps_);
}

}  // namespace ewalk
