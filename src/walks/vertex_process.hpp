// Unvisited-*vertex*-preferring walk (the V-process of the authors'
// companion paper, arXiv 2012, reference [4]): if the current vertex has
// unvisited neighbours, move to one chosen u.a.r.; otherwise take a simple
// random walk step. Contrast with the E-process which prefers unvisited
// *edges* — Figure-1-style benches compare the two.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "walks/cover_state.hpp"

namespace ewalk {

class UnvisitedVertexWalk {
 public:
  UnvisitedVertexWalk(const Graph& g, Vertex start);

  void step(Rng& rng);
  bool run_until_vertex_cover(Rng& rng, std::uint64_t max_steps);

  Vertex current() const { return current_; }
  std::uint64_t steps() const { return steps_; }
  const CoverState& cover() const { return cover_; }

 private:
  const Graph* g_;
  Vertex current_;
  std::uint64_t steps_ = 0;
  CoverState cover_;
  std::vector<Slot> scratch_;
};

}  // namespace ewalk
