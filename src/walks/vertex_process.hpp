// Unvisited-*vertex*-preferring walk (the V-process of the authors'
// companion paper, arXiv 2012, reference [4]): if the current vertex has
// unvisited neighbours, move to one chosen u.a.r.; otherwise take a simple
// random walk step. Contrast with the E-process which prefers unvisited
// *edges* — Figure-1-style benches compare the two.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/process.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "walks/cover_state.hpp"

namespace ewalk {

class UnvisitedVertexWalk final : public WalkProcess {
 public:
  UnvisitedVertexWalk(const Graph& g, Vertex start);

  void step(Rng& rng) override;

  Vertex current() const override { return current_; }
  std::uint64_t steps() const override { return steps_; }
  const Graph& graph() const override { return *g_; }
  const CoverState& cover() const override { return cover_; }
  std::string_view name() const override { return "vertexwalk"; }

 private:
  const Graph* g_;
  Vertex current_;
  std::uint64_t steps_ = 0;
  CoverState cover_;
  std::vector<Slot> scratch_;
};

}  // namespace ewalk
