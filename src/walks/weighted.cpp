#include "walks/weighted.hpp"

#include <stdexcept>

namespace ewalk {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasTable: empty weights");
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasTable: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("AliasTable: zero total weight");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<std::uint32_t> small, large;
  for (std::size_t i = 0; i < n; ++i)
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (const std::uint32_t i : large) prob_[i] = 1.0;
  for (const std::uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::uint32_t AliasTable::sample(Rng& rng) const {
  const std::uint32_t i = static_cast<std::uint32_t>(rng.uniform(prob_.size()));
  return rng.uniform_real() < prob_[i] ? i : alias_[i];
}

WeightedRandomWalk::WeightedRandomWalk(const Graph& g, Vertex start,
                                       const std::vector<double>& edge_weights)
    : g_(&g), current_(start), cover_(g.num_vertices(), g.num_edges()),
      vertex_weight_(g.num_vertices(), 0.0) {
  if (start >= g.num_vertices())
    throw std::invalid_argument("WeightedRandomWalk: start vertex out of range");
  if (edge_weights.size() != g.num_edges())
    throw std::invalid_argument("WeightedRandomWalk: one weight per edge required");
  for (const double w : edge_weights)
    if (w <= 0.0) throw std::invalid_argument("WeightedRandomWalk: weights must be positive");

  tables_.reserve(g.num_vertices());
  std::vector<double> local;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    local.clear();
    for (const Slot& s : g.slots(v)) {
      local.push_back(edge_weights[s.edge]);
      vertex_weight_[v] += edge_weights[s.edge];
    }
    total_weight_ += vertex_weight_[v];
    tables_.emplace_back(local.empty() ? std::vector<double>{1.0} : local);
  }
  cover_.visit_vertex(start, 0);
}

void WeightedRandomWalk::step(Rng& rng) {
  ++steps_;
  const std::uint32_t k = tables_[current_].sample(rng);
  const Slot slot = g_->slot(current_, k);
  cover_.visit_edge(slot.edge, steps_);
  current_ = slot.neighbor;
  cover_.visit_vertex(current_, steps_);
}

}  // namespace ewalk
