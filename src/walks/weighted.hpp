// Reversible weighted random walk (Section 2.2 of the paper).
//
// Transition probability p(x,y) = w(x,y) / Σ_z w(x,z). Theorem 5 proves the
// Ω(n log n) cover-time lower bound for *every* such walk; the bench uses
// this class to show that no edge re-weighting escapes the lower bound the
// E-process beats. Per-vertex alias tables give O(1) transitions.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/process.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "walks/cover_state.hpp"

namespace ewalk {

/// Walker's alias method over a fixed discrete distribution.
class AliasTable {
 public:
  AliasTable() = default;
  /// Builds from non-negative weights with a positive sum.
  explicit AliasTable(const std::vector<double>& weights);

  /// Samples an index with probability proportional to its weight.
  std::uint32_t sample(Rng& rng) const;

  std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

class WeightedRandomWalk final : public WalkProcess {
 public:
  /// `edge_weights` has one positive weight per edge id.
  WeightedRandomWalk(const Graph& g, Vertex start,
                     const std::vector<double>& edge_weights);

  void step(Rng& rng) override;

  Vertex current() const override { return current_; }
  std::uint64_t steps() const override { return steps_; }
  const Graph& graph() const override { return *g_; }
  const CoverState& cover() const override { return cover_; }
  std::string_view name() const override { return "weighted"; }

  /// Stationary probability of v: w(v) / Σ_u w(u), w(v) = Σ incident weights.
  double stationary_probability(Vertex v) const {
    return vertex_weight_[v] / total_weight_;
  }

 private:
  const Graph* g_;
  Vertex current_;
  std::uint64_t steps_ = 0;
  CoverState cover_;
  std::vector<AliasTable> tables_;       // one per vertex, over its slots
  std::vector<double> vertex_weight_;
  double total_weight_ = 0.0;
};

}  // namespace ewalk
