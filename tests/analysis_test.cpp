// Tests for structural analysis: girth, cycle census, ℓ-goodness, and blue
// component extraction.
#include <gtest/gtest.h>

#include "analysis/blue.hpp"
#include "analysis/cycles.hpp"
#include "analysis/ell_good.hpp"
#include "analysis/girth.hpp"
#include "graph/generators.hpp"

namespace ewalk {
namespace {

TEST(Girth, KnownValues) {
  EXPECT_EQ(girth(cycle_graph(9)), 9u);
  EXPECT_EQ(girth(complete_graph(5)), 3u);
  EXPECT_EQ(girth(petersen_graph()), 5u);
  EXPECT_EQ(girth(hypercube(4)), 4u);
  EXPECT_EQ(girth(complete_bipartite(3, 3)), 4u);
  EXPECT_EQ(girth(torus_2d(5, 5)), 4u);
}

TEST(Girth, AcyclicIsInfinite) {
  EXPECT_EQ(girth(path_graph(6)), kInfiniteGirth);
  EXPECT_EQ(girth(binary_tree(4)), kInfiniteGirth);
  EXPECT_EQ(girth(star_graph(5)), kInfiniteGirth);
}

TEST(Girth, MultigraphAndLoops) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(0, 1);  // parallel pair => girth 2
  b.add_edge(1, 2);
  EXPECT_EQ(girth(b.build()), 2u);

  GraphBuilder c(2);
  c.add_edge(0, 0);  // loop => girth 1
  c.add_edge(0, 1);
  EXPECT_EQ(girth(c.build()), 1u);
}

TEST(Girth, ThroughEdge) {
  const Graph g = petersen_graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    EXPECT_EQ(shortest_cycle_through_edge(g, e), 5u);  // edge-transitive, girth 5
}

TEST(Girth, ThroughEdgeBridge) {
  const Graph g = lollipop(4, 3);
  // Path edges are bridges: no cycle through them.
  const EdgeId last = g.num_edges() - 1;
  EXPECT_EQ(shortest_cycle_through_edge(g, last), kInfiniteGirth);
}

TEST(Girth, ThroughVertex) {
  // Two triangles sharing vertex 0, plus a pendant at 5.
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(0, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 0);
  b.add_edge(4, 5);
  const Graph g = b.build();
  EXPECT_EQ(shortest_cycle_through_vertex(g, 0), 3u);
  EXPECT_EQ(shortest_cycle_through_vertex(g, 1), 3u);
  EXPECT_EQ(shortest_cycle_through_vertex(g, 5), kInfiniteGirth);
}

TEST(Cycles, CompleteGraphCounts) {
  // K_4: C(4,3) = 4 triangles; 3 four-cycles.
  const auto counts = count_cycles_up_to(complete_graph(4), 4);
  EXPECT_EQ(counts[3], 4u);
  EXPECT_EQ(counts[4], 3u);
}

TEST(Cycles, K5Counts) {
  // K_5: 10 triangles, 15 4-cycles, 12 5-cycles.
  const auto counts = count_cycles_up_to(complete_graph(5), 5);
  EXPECT_EQ(counts[3], 10u);
  EXPECT_EQ(counts[4], 15u);
  EXPECT_EQ(counts[5], 12u);
}

TEST(Cycles, PetersenCounts) {
  // Petersen graph: no 3- or 4-cycles, exactly 12 5-cycles, 10 6-cycles.
  const auto counts = count_cycles_up_to(petersen_graph(), 6);
  EXPECT_EQ(counts[3], 0u);
  EXPECT_EQ(counts[4], 0u);
  EXPECT_EQ(counts[5], 12u);
  EXPECT_EQ(counts[6], 10u);
}

TEST(Cycles, CycleGraphSingleCycle) {
  const auto counts = count_cycles_up_to(cycle_graph(7), 8);
  for (std::uint32_t k = 3; k <= 6; ++k) EXPECT_EQ(counts[k], 0u);
  EXPECT_EQ(counts[7], 1u);
}

TEST(Cycles, DisjointnessCheck) {
  // Two vertex-disjoint triangles joined by a long path.
  GraphBuilder b(9);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(6, 7);
  b.add_edge(7, 8);
  b.add_edge(8, 6);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 6);
  EXPECT_TRUE(short_cycles_vertex_disjoint(b.build(), 3));
  // Two triangles sharing a vertex are not disjoint.
  GraphBuilder c(5);
  c.add_edge(0, 1);
  c.add_edge(1, 2);
  c.add_edge(2, 0);
  c.add_edge(0, 3);
  c.add_edge(3, 4);
  c.add_edge(4, 0);
  EXPECT_FALSE(short_cycles_vertex_disjoint(c.build(), 3));
}

TEST(Cycles, RequiresSimpleGraph) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  EXPECT_THROW(count_cycles_up_to(b.build(), 4), std::invalid_argument);
}

// ---- ℓ-goodness -----------------------------------------------------------

TEST(EllGood, CycleIsExactlyN) {
  // On C_n every vertex's only even subgraph containing its edges is the
  // whole cycle.
  const Graph g = cycle_graph(6);
  for (Vertex v = 0; v < 6; ++v) {
    const auto ell = min_even_subgraph_order(g, v);
    ASSERT_TRUE(ell.has_value());
    EXPECT_EQ(*ell, 6u);
  }
}

TEST(EllGood, FigureEightSharedVertex) {
  // Two triangles sharing vertex 0: at vertex 0 (degree 4) the minimal even
  // subgraph containing all four edges is both triangles => 5 vertices.
  // At a degree-2 vertex it is its own triangle => 3.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(0, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 0);
  const Graph g = b.build();
  EXPECT_EQ(min_even_subgraph_order(g, 0).value(), 5u);
  EXPECT_EQ(min_even_subgraph_order(g, 1).value(), 3u);
}

TEST(EllGood, OddDegreeVertexHasNoEvenSubgraph) {
  // K_4 has degree 3: no even-degree subgraph can contain all 3 edges at v.
  const Graph g = complete_graph(4);
  EXPECT_FALSE(min_even_subgraph_order(g, 0).has_value());
}

TEST(EllGood, TreeVertexHasNoEvenSubgraph) {
  const Graph g = path_graph(4);
  EXPECT_FALSE(min_even_subgraph_order(g, 1).has_value());
}

TEST(EllGood, GirthLowerBoundIsValid) {
  // For K_5 (even degree 4): minimal even subgraph at v is two triangles
  // sharing v (5 vertices) or a 4-cycle+... — compare exact with bound.
  const Graph g = complete_graph(5);
  for (Vertex v = 0; v < 5; ++v) {
    const auto exact = min_even_subgraph_order(g, v);
    ASSERT_TRUE(exact.has_value());
    EXPECT_GE(*exact, ell_lower_bound_girth(g, v));
  }
}

TEST(EllGood, K5ExactIsFive) {
  // K_5 (degree 4, even): the minimal even subgraph containing all 4 edges
  // at v is two triangles sharing v - 5 vertices.
  const Graph g = complete_graph(5);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(min_even_subgraph_order(g, v).value(), 5u);
}

TEST(EllGood, DenseSubgraphDetection) {
  // A triangle is 3 vertices / 3 edges: not dense (e <= s). K_4 minus
  // nothing: 4 vertices 6 edges: dense.
  EXPECT_FALSE(has_dense_subgraph(cycle_graph(8), 8));
  EXPECT_FALSE(has_dense_subgraph(binary_tree(4), 10));
  EXPECT_TRUE(has_dense_subgraph(complete_graph(4), 4));
  // Theta graph (two vertices joined by 3 paths of length 2): 5 vertices,
  // 6 edges -> dense at size 5.
  GraphBuilder b(5);
  b.add_edge(0, 2);
  b.add_edge(2, 1);
  b.add_edge(0, 3);
  b.add_edge(3, 1);
  b.add_edge(0, 4);
  b.add_edge(4, 1);
  EXPECT_TRUE(has_dense_subgraph(b.build(), 5));
  EXPECT_FALSE(has_dense_subgraph(b.build(), 4));
}

TEST(EllGood, SampleExcessNeverExceedsExhaustive) {
  Rng rng(3);
  const Graph g = random_regular_connected(100, 4, rng);
  const bool dense6 = has_dense_subgraph(g, 6);
  const std::int64_t sampled = sample_max_edge_excess(g, 6, 2000, rng);
  if (!dense6) {
    EXPECT_LE(sampled, 0);
  }
}

TEST(EllGood, CertifiedEllOnCycle) {
  // C_n: certified ℓ should equal n (girth bound is exact for degree 2).
  EXPECT_EQ(certified_ell_good(cycle_graph(9), 4), 9u);
}

TEST(EllGood, CertifiedEllOnTorusFallsBackToGirth) {
  // Torus: two unit squares sharing an edge form 6 vertices with 7 induced
  // edges, so the density certificate at size 6 fails and the certified
  // bound falls back to the girth bound of 4.
  const Graph g = torus_2d(6, 6);
  EXPECT_TRUE(has_dense_subgraph(g, 6));
  EXPECT_EQ(certified_ell_good(g, 6), 4u);
}

TEST(EllGood, CertifiedEllOnHypercube) {
  // Q_4: girth 4, degree 4, and no connected set of <= 5 vertices induces
  // more than |set| edges (two 4-cycles share an edge only via 6 vertices),
  // so the density certificate upgrades every vertex to 5 + 1 = 6.
  const Graph g = hypercube(4);
  EXPECT_FALSE(has_dense_subgraph(g, 5));
  EXPECT_EQ(certified_ell_good(g, 5), 6u);
}

// ---- Blue components --------------------------------------------------------

TEST(Blue, FullBlueGraphIsOneComponent) {
  const Graph g = cycle_graph(5);
  std::vector<std::uint8_t> edge_visited(g.num_edges(), 0);
  std::vector<std::uint8_t> vertex_visited(g.num_vertices(), 0);
  const auto report = analyze_blue(g, edge_visited, vertex_visited);
  ASSERT_EQ(report.components.size(), 1u);
  EXPECT_EQ(report.components[0].num_vertices, 5u);
  EXPECT_EQ(report.components[0].num_edges, 5u);
  EXPECT_TRUE(report.components[0].all_degrees_even);
  EXPECT_EQ(report.unvisited_vertices_total, 5u);
}

TEST(Blue, AllVisitedIsEmpty) {
  const Graph g = cycle_graph(5);
  std::vector<std::uint8_t> edge_visited(g.num_edges(), 1);
  std::vector<std::uint8_t> vertex_visited(g.num_vertices(), 1);
  const auto report = analyze_blue(g, edge_visited, vertex_visited);
  EXPECT_TRUE(report.components.empty());
  EXPECT_EQ(report.blue_edges_total, 0u);
}

TEST(Blue, StarDetection) {
  // Star with unvisited center, visited leaves => isolated unvisited star.
  const Graph g = star_graph(4);  // center 0, leaves 1..3
  std::vector<std::uint8_t> edge_visited(g.num_edges(), 0);
  std::vector<std::uint8_t> vertex_visited(g.num_vertices(), 1);
  vertex_visited[0] = 0;
  const auto report = analyze_blue(g, edge_visited, vertex_visited);
  ASSERT_EQ(report.components.size(), 1u);
  EXPECT_TRUE(report.components[0].is_star);
  EXPECT_EQ(report.components[0].star_center, 0u);
  EXPECT_EQ(report.isolated_unvisited_stars, 1u);
  EXPECT_FALSE(report.components[0].all_degrees_even);
}

TEST(Blue, TwoComponents) {
  // C_6 with edges {2,3} and {5,0} visited leaves two blue paths.
  const Graph g = cycle_graph(6);
  std::vector<std::uint8_t> edge_visited(g.num_edges(), 0);
  std::vector<std::uint8_t> vertex_visited(g.num_vertices(), 1);
  // cycle_graph adds edges (i, i+1 mod n) in order, so edge i = {i, i+1}.
  edge_visited[2] = 1;
  edge_visited[5] = 1;
  const auto report = analyze_blue(g, edge_visited, vertex_visited);
  EXPECT_EQ(report.components.size(), 2u);
  EXPECT_EQ(report.blue_edges_total, 4u);
  for (const auto& c : report.components) EXPECT_FALSE(c.all_degrees_even);
}

TEST(Blue, SizeMismatchThrows) {
  const Graph g = cycle_graph(4);
  std::vector<std::uint8_t> bad_edges(2, 0), verts(4, 0);
  EXPECT_THROW(analyze_blue(g, bad_edges, verts), std::invalid_argument);
}

}  // namespace
}  // namespace ewalk
