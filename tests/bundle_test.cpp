// Tests for the interleaved trial bundles (engine/bundle.hpp): bundled
// execution must be bit-identical to sequential run_until_process per
// trial — same stopping steps, same trajectories, same rng states — for
// every fast path (SRW, E-process, multi E-process), for mixed/generic
// bundles, and through the covertime driver across bundle widths and
// thread counts. Also pins the retirement semantics run_until_process
// defines: predicate before budget, entry checks before the first step.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "engine/adapters.hpp"
#include "engine/bundle.hpp"
#include "engine/driver.hpp"
#include "covertime/experiment.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "walks/rules.hpp"
#include "walks/srw.hpp"

namespace ewalk {
namespace {

constexpr std::uint64_t kBudget = 2000000;

bool vertices_covered(const WalkProcess& p) {
  return p.cover().all_vertices_covered();
}

// Snapshot of everything a trial's execution determines: if all of these
// match between sequential and bundled runs, the trajectories were
// identical (same steps from the same private stream) and the streams are
// left in the same state for any later consumer.
struct TrialOutcome {
  bool finished;
  std::uint64_t steps;
  Vertex current;
  std::uint64_t vertex_cover_step;
  std::uint64_t next_draw;  // first post-run output of the trial's stream
};

bool operator==(const TrialOutcome& a, const TrialOutcome& b) {
  return a.finished == b.finished && a.steps == b.steps &&
         a.current == b.current &&
         a.vertex_cover_step == b.vertex_cover_step &&
         a.next_draw == b.next_draw;
}

// Runs `factories[i](g, rng_i)` trials sequentially (reference) and bundled,
// from identical per-trial streams, and expects identical outcomes.
using Factory =
    std::function<std::unique_ptr<WalkProcess>(const Graph&, Rng&)>;

std::vector<TrialOutcome> run_sequential(const Graph& g,
                                         const std::vector<Factory>& factories,
                                         std::uint64_t seed,
                                         std::uint64_t stride) {
  std::vector<Rng> streams = derive_streams(seed, factories.size());
  std::vector<TrialOutcome> outcomes;
  for (std::size_t i = 0; i < factories.size(); ++i) {
    auto walk = factories[i](g, streams[i]);
    const bool finished =
        run_until_process(*walk, streams[i], vertices_covered, kBudget, stride);
    outcomes.push_back(TrialOutcome{finished, walk->steps(), walk->current(),
                                    walk->cover().vertex_cover_step(),
                                    streams[i].next_u64()});
  }
  return outcomes;
}

std::vector<TrialOutcome> run_bundled(const Graph& g,
                                      const std::vector<Factory>& factories,
                                      std::uint64_t seed, std::uint64_t stride) {
  std::vector<Rng> streams = derive_streams(seed, factories.size());
  std::vector<std::unique_ptr<WalkProcess>> walks;
  walks.reserve(factories.size());
  std::vector<BundleTrial> trials(factories.size());
  for (std::size_t i = 0; i < factories.size(); ++i) {
    walks.push_back(factories[i](g, streams[i]));
    trials[i] = BundleTrial{walks[i].get(), &streams[i], kBudget, stride};
  }
  const std::vector<std::uint8_t> finished =
      run_trial_bundle(std::span<const BundleTrial>(trials), vertices_covered);
  std::vector<TrialOutcome> outcomes;
  for (std::size_t i = 0; i < factories.size(); ++i)
    outcomes.push_back(TrialOutcome{finished[i] != 0, walks[i]->steps(),
                                    walks[i]->current(),
                                    walks[i]->cover().vertex_cover_step(),
                                    streams[i].next_u64()});
  return outcomes;
}

void expect_bundle_matches_sequential(const std::vector<Factory>& factories,
                                      std::uint64_t seed,
                                      std::uint64_t stride = 1) {
  Rng graph_rng(7);
  const Graph g = random_regular_connected(200, 4, graph_rng);
  const auto sequential = run_sequential(g, factories, seed, stride);
  const auto bundled = run_bundled(g, factories, seed, stride);
  ASSERT_EQ(sequential.size(), bundled.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_TRUE(sequential[i] == bundled[i]) << "trial " << i << " diverged";
    EXPECT_TRUE(sequential[i].finished) << "trial " << i
                                        << " should cover within budget";
  }
}

Factory srw_factory() {
  return [](const Graph& g, Rng&) {
    return std::make_unique<SimpleRandomWalk>(g, /*start=*/0);
  };
}

Factory eprocess_factory() {
  return [](const Graph& g, Rng&) {
    return std::make_unique<EProcessHandle>(g, /*start=*/0,
                                            std::make_unique<UniformRule>());
  };
}

Factory multi_factory() {
  return [](const Graph& g, Rng&) {
    return std::make_unique<MultiEProcessHandle>(
        g, std::vector<Vertex>{0, 1, 2}, std::make_unique<UniformRule>());
  };
}

TEST(TrialBundle, SrwBundleIsBitIdenticalToSequential) {
  expect_bundle_matches_sequential(std::vector<Factory>(4, srw_factory()), 11);
}

TEST(TrialBundle, EProcessBundleIsBitIdenticalToSequential) {
  expect_bundle_matches_sequential(std::vector<Factory>(4, eprocess_factory()),
                                   12);
}

TEST(TrialBundle, MultiEProcessBundleIsBitIdenticalToSequential) {
  expect_bundle_matches_sequential(std::vector<Factory>(3, multi_factory()),
                                   13);
}

TEST(TrialBundle, MixedBundleTakesGenericPathAndStaysIdentical) {
  // SRW + E-process in one bundle: no homogeneous fast path applies, so
  // this exercises the virtual-dispatch loop.
  expect_bundle_matches_sequential(
      {srw_factory(), eprocess_factory(), srw_factory(), eprocess_factory()},
      14);
}

TEST(TrialBundle, WideCheckStrideMatchesSequentialOvershoot) {
  // stride > 1 makes run_until_process overshoot the exact cover step by up
  // to stride - 1 transitions; the bundle must overshoot identically.
  expect_bundle_matches_sequential(std::vector<Factory>(4, srw_factory()), 15,
                                   /*stride=*/97);
  expect_bundle_matches_sequential(
      std::vector<Factory>(4, eprocess_factory()), 16, /*stride=*/4096);
}

TEST(TrialBundle, SingleTrialBundleMatchesSequential) {
  expect_bundle_matches_sequential(std::vector<Factory>(1, srw_factory()), 17);
}

TEST(TrialBundle, PredicateTrueAtEntryRetiresWithoutStepping) {
  Rng graph_rng(7);
  const Graph g = random_regular_connected(60, 4, graph_rng);
  Rng stream(21);
  SimpleRandomWalk walk(g, 0);
  BundleTrial trial{&walk, &stream, kBudget, 1};
  const Rng stream_before = stream;
  const auto finished = run_trial_bundle(
      std::span<const BundleTrial>(&trial, 1),
      [](const WalkProcess&) { return true; });
  EXPECT_EQ(finished[0], 1);
  EXPECT_EQ(walk.steps(), 0u);  // never stepped
  Rng untouched = stream_before;
  EXPECT_EQ(stream.next_u64(), untouched.next_u64());  // stream not consumed
}

TEST(TrialBundle, ExhaustedBudgetAtEntryRetiresUnfinished) {
  Rng graph_rng(7);
  const Graph g = random_regular_connected(60, 4, graph_rng);
  Rng stream(22);
  SimpleRandomWalk walk(g, 0);
  BundleTrial trial{&walk, &stream, /*max_steps=*/0, 1};
  const auto finished =
      run_trial_bundle(std::span<const BundleTrial>(&trial, 1),
                       [](const WalkProcess&) { return false; });
  EXPECT_EQ(finished[0], 0);
  EXPECT_EQ(walk.steps(), 0u);
}

TEST(TrialBundle, BudgetBoundsEveryTrialExactly) {
  Rng graph_rng(7);
  const Graph g = random_regular_connected(60, 4, graph_rng);
  std::vector<Rng> streams = derive_streams(23, 4);
  std::vector<SimpleRandomWalk> walks;
  walks.reserve(4);
  std::vector<BundleTrial> trials(4);
  for (std::size_t i = 0; i < 4; ++i) {
    walks.emplace_back(g, 0);
    trials[i] = BundleTrial{&walks[i], &streams[i], /*max_steps=*/100 + i, 7};
  }
  const auto finished =
      run_trial_bundle(std::span<const BundleTrial>(trials),
                       [](const WalkProcess&) { return false; });
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(finished[i], 0);
    EXPECT_EQ(walks[i].steps(), 100 + i);  // stops exactly at its own budget
  }
}

TEST(TrialBundle, MeasureCoverSamplesInvariantAcrossWidthsAndThreads) {
  // The driver-level contract the sweep and covertime layers rely on:
  // bundling is a scheduling detail, never a statistics change.
  const GraphFactory graphs = [](Rng& rng) {
    return random_regular_connected(100, 4, rng);
  };
  const ProcessFactory processes = [](const Graph& g, Rng&) {
    return std::make_unique<EProcessHandle>(g, 0,
                                            std::make_unique<UniformRule>());
  };
  RunRequest req;
  req.trials = 8;
  req.seed = 2024;
  req.threads = 1;
  req.bundle_width = 1;
  const std::vector<double> reference =
      measure_cover(processes, graphs, req).samples;
  ASSERT_EQ(reference.size(), 8u);
  for (const std::uint32_t width : {2u, 4u, 8u, 16u}) {
    for (const std::uint32_t threads : {1u, 4u}) {
      req.bundle_width = width;
      req.threads = threads;
      const auto result = measure_cover(processes, graphs, req);
      EXPECT_EQ(result.samples, reference)
          << "width " << width << ", threads " << threads;
    }
  }
}

}  // namespace
}  // namespace ewalk
