// Tests for the experiment harness: parallel determinism, trial accounting,
// and the convenience cover measurements.
#include <gtest/gtest.h>

#include "covertime/experiment.hpp"
#include "graph/generators.hpp"
#include "walks/rules.hpp"

namespace ewalk {
namespace {

TEST(RunTrials, DeterministicAcrossThreadCounts) {
  const auto fn = [](Rng& rng, std::uint32_t) -> double {
    double acc = 0;
    for (int i = 0; i < 1000; ++i) acc += rng.uniform_real();
    return acc;
  };
  const auto serial = run_trials(16, 1, 99, fn);
  const auto par2 = run_trials(16, 2, 99, fn);
  const auto par8 = run_trials(16, 8, 99, fn);
  EXPECT_EQ(serial, par2);
  EXPECT_EQ(serial, par8);
}

TEST(RunTrials, ThreadCountInvarianceWithRealWalks) {
  // The determinism contract the harness documents: trial i's stream is a
  // pure function of (master_seed, i), so threads=1 and threads=8 must
  // return bit-identical vectors — including when trials build graphs and
  // drive real walks, not just draw from the rng.
  RunRequest req;
  req.trials = 8;
  req.seed = 4242;
  const GraphFactory graphs = [](Rng& rng) {
    return random_regular_connected(80, 4, rng);
  };
  const RuleFactory rules = [](const Graph&) {
    return std::make_unique<UniformRule>();
  };
  req.threads = 1;
  const auto serial = measure_eprocess_cover(graphs, rules, req);
  req.threads = 8;
  const auto parallel = measure_eprocess_cover(graphs, rules, req);
  EXPECT_EQ(serial.samples, parallel.samples);

  req.threads = 1;
  const auto srw_serial = measure_srw_cover(graphs, req);
  req.threads = 8;
  const auto srw_parallel = measure_srw_cover(graphs, req);
  EXPECT_EQ(srw_serial.samples, srw_parallel.samples);
}

TEST(RunTrials, TrialIndexPassed) {
  const auto fn = [](Rng&, std::uint32_t idx) -> double { return idx; };
  const auto out = run_trials(5, 3, 1, fn);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(out[i], i);
}

TEST(RunTrials, ZeroTrials) {
  const auto out = run_trials(0, 4, 1, [](Rng&, std::uint32_t) { return 1.0; });
  EXPECT_TRUE(out.empty());
}

TEST(RunTrials, SummaryMatchesSamples) {
  const auto fn = [](Rng& rng, std::uint32_t) -> double {
    return static_cast<double>(rng.uniform(100));
  };
  const auto samples = run_trials(20, 4, 7, fn);
  const auto summary = run_trials_summary(20, 4, 7, fn);
  EXPECT_EQ(summary.count, 20u);
  EXPECT_DOUBLE_EQ(summary.mean, summarize(samples).mean);
}

TEST(MeasureCover, EProcessOnCycleIsExact) {
  // On C_n the E-process covers vertices in exactly n-1 steps and edges in
  // exactly n steps regardless of trials/seeds.
  RunRequest req;
  req.trials = 4;
  req.seed = 5;
  const GraphFactory graphs = [](Rng&) { return cycle_graph(50); };
  const RuleFactory rules = [](const Graph&) {
    return std::make_unique<UniformRule>();
  };
  auto res = measure_eprocess_cover(graphs, rules, req);
  EXPECT_EQ(res.uncovered_trials, 0u);
  EXPECT_DOUBLE_EQ(res.stats.mean, 49.0);

  req.target = RunTarget::kEdges;
  res = measure_eprocess_cover(graphs, rules, req);
  EXPECT_DOUBLE_EQ(res.stats.mean, 50.0);
}

TEST(MeasureCover, FreshGraphPerTrial) {
  // The factory must be invoked once per trial: count invocations.
  std::atomic<int> calls{0};
  RunRequest req;
  req.trials = 6;
  req.threads = 2;
  const GraphFactory graphs = [&calls](Rng& rng) {
    calls.fetch_add(1);
    return random_regular_connected(40, 4, rng);
  };
  const RuleFactory rules = [](const Graph&) {
    return std::make_unique<UniformRule>();
  };
  const auto res = measure_eprocess_cover(graphs, rules, req);
  EXPECT_EQ(calls.load(), 6);
  EXPECT_EQ(res.samples.size(), 6u);
  EXPECT_EQ(res.uncovered_trials, 0u);
}

TEST(MeasureCover, SrwCoversAndIsSlowerThanEProcess) {
  RunRequest req;
  req.trials = 5;
  req.seed = 11;
  const GraphFactory graphs = [](Rng& rng) {
    return random_regular_connected(200, 4, rng);
  };
  const RuleFactory rules = [](const Graph&) {
    return std::make_unique<UniformRule>();
  };
  const auto ep = measure_eprocess_cover(graphs, rules, req);
  const auto srw = measure_srw_cover(graphs, req);
  EXPECT_EQ(ep.uncovered_trials, 0u);
  EXPECT_EQ(srw.uncovered_trials, 0u);
  EXPECT_LT(ep.stats.mean, srw.stats.mean);
}

TEST(MeasureCover, BudgetExhaustionCounted) {
  RunRequest req;
  req.trials = 3;
  req.max_steps = 5;  // absurdly small: cover impossible
  const GraphFactory graphs = [](Rng&) { return cycle_graph(100); };
  const auto res = measure_srw_cover(graphs, req);
  EXPECT_EQ(res.uncovered_trials, 3u);
  EXPECT_DOUBLE_EQ(res.stats.mean, 5.0);
}

TEST(MeasureCover, ReproducibleForSameSeed) {
  RunRequest req;
  req.trials = 4;
  req.seed = 21;
  const GraphFactory graphs = [](Rng& rng) {
    return random_regular_connected(60, 4, rng);
  };
  const RuleFactory rules = [](const Graph&) {
    return std::make_unique<UniformRule>();
  };
  const auto a = measure_eprocess_cover(graphs, rules, req);
  const auto b = measure_eprocess_cover(graphs, rules, req);
  EXPECT_EQ(a.samples, b.samples);
}

TEST(MeasureCover, DeprecatedConfigForwardsToRunRequest) {
  // The one-release compatibility contract: the legacy config overload must
  // produce bit-identical samples to the RunRequest overload it forwards to
  // (master_seed maps to seed, the other fields one-to-one).
  const GraphFactory graphs = [](Rng& rng) {
    return random_regular_connected(60, 4, rng);
  };
  const RuleFactory rules = [](const Graph&) {
    return std::make_unique<UniformRule>();
  };
  CoverExperimentConfig legacy;
  legacy.trials = 4;
  legacy.master_seed = 33;
  legacy.target = CoverTarget::kEdges;
  RunRequest req;
  req.trials = 4;
  req.seed = 33;
  req.target = RunTarget::kEdges;
  const auto old_api = measure_eprocess_cover(graphs, rules, legacy);
  const auto new_api = measure_eprocess_cover(graphs, rules, req);
  EXPECT_EQ(old_api.samples, new_api.samples);
  EXPECT_EQ(old_api.uncovered_trials, new_api.uncovered_trials);
}

}  // namespace
}  // namespace ewalk
