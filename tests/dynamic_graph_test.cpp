// Tests for the dynamic adjacency layer (src/graph/dynamic_graph.*,
// src/graph/pcf.*, src/walks/dynamic_walks.*, src/engine/pcf_process.*):
// insert/erase/freeze semantics, the epoch/journal contract, the
// static/dynamic equivalence after freeze(), PCF event-schedule
// bit-identity and advance-granularity invariance, and thread-count /
// work-stealing invariance of walks on evolving graphs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "engine/pcf_process.hpp"
#include "graph/dynamic_graph.hpp"
#include "graph/generators.hpp"
#include "graph/pcf.hpp"
#include "sweep/sweep.hpp"
#include "walks/dynamic_walks.hpp"
#include "walks/srw.hpp"

namespace ewalk {
namespace {

// Give the Executor four workers even on single-core CI runners, so the
// thread-invariance tests below exercise real stealing and nested waits.
// Runs before main(), i.e. before the first Executor::instance() call in
// this binary; an explicit EWALK_WORKERS in the environment wins.
const bool kWorkersEnvSet = [] {
  setenv("EWALK_WORKERS", "4", /*overwrite=*/0);
  return true;
}();

// Sorted multiset of v's current neighbours (self-loops appear twice), the
// representation-independent adjacency fingerprint shared by both backends.
template <class GraphT>
std::vector<Vertex> neighbor_multiset(const GraphT& g, Vertex v) {
  std::vector<Vertex> out;
  for (std::uint32_t k = 0; k < g.degree(v); ++k)
    out.push_back(g.slot(v, k).neighbor);
  std::sort(out.begin(), out.end());
  return out;
}

// Structural equality of a dynamic graph and a CSR built from the same
// surviving edge list: degrees and per-vertex neighbour multisets. Slot
// order is NOT compared — the dynamic side perturbs it by design.
void expect_same_adjacency(const DynamicGraph& dyn, const Graph& g) {
  ASSERT_EQ(dyn.num_vertices(), g.num_vertices());
  ASSERT_EQ(dyn.num_edges(), g.num_edges());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(dyn.degree(v), g.degree(v)) << "vertex " << v;
    EXPECT_EQ(neighbor_multiset(dyn, v), neighbor_multiset(g, v))
        << "vertex " << v;
  }
}

// ---- DynamicGraph semantics ------------------------------------------------

TEST(DynamicGraph, InsertEraseSemantics) {
  DynamicGraph g(4);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(0), 0u);

  const EdgeId e01 = g.insert_edge(0, 1);
  const EdgeId e12 = g.insert_edge(1, 2);
  const EdgeId e12b = g.insert_edge(1, 2);  // parallel edge: distinct id
  const EdgeId loop = g.insert_edge(3, 3);  // self-loop: degree +2
  EXPECT_EQ(e01, 0u);
  EXPECT_EQ(e12, 1u);
  EXPECT_EQ(e12b, 2u);
  EXPECT_EQ(loop, 3u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.edge_capacity(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.degree(3), 2u);
  EXPECT_EQ(g.slot(3, 0).neighbor, 3u);
  EXPECT_EQ(g.slot(3, 0).edge, loop);
  EXPECT_EQ(g.slot(3, 1).edge, loop);
  EXPECT_TRUE(g.edge_alive(e12));
  EXPECT_EQ(g.endpoints(e12b).u, 1u);
  EXPECT_EQ(g.endpoints(e12b).v, 2u);

  // Erase the FIRST of the two parallel edges: swap-with-last must keep the
  // survivor reachable from both endpoints.
  g.erase_edge(e12);
  EXPECT_FALSE(g.edge_alive(e12));
  EXPECT_TRUE(g.edge_alive(e12b));
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.slot(2, 0).edge, e12b);
  // Endpoints of a retired id remain queryable (the journal refers back).
  EXPECT_EQ(g.endpoints(e12).u, 1u);
  EXPECT_EQ(g.endpoints(e12).v, 2u);

  // Erase the self-loop: both slots of vertex 3 go away.
  g.erase_edge(loop);
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_EQ(g.num_edges(), 2u);

  // Ids are never reused: the next insert gets a fresh id.
  const EdgeId next = g.insert_edge(0, 2);
  EXPECT_EQ(next, 4u);
  EXPECT_EQ(g.edge_capacity(), 5u);
}

TEST(DynamicGraph, EpochAdvancesByOnePerMutationAndJournalMatches) {
  DynamicGraph g(3);
  EXPECT_EQ(g.epoch(), 0u);
  EXPECT_TRUE(g.journal().empty());

  const EdgeId a = g.insert_edge(0, 1);
  EXPECT_EQ(g.epoch(), 1u);
  const EdgeId b = g.insert_edge(1, 2);
  EXPECT_EQ(g.epoch(), 2u);
  g.erase_edge(a);
  EXPECT_EQ(g.epoch(), 3u);

  const auto& j = g.journal();
  ASSERT_EQ(j.size(), 3u);
  EXPECT_EQ(j[0].kind, MutationKind::kInsert);
  EXPECT_EQ(j[0].edge, a);
  EXPECT_EQ(j[0].endpoints.u, 0u);
  EXPECT_EQ(j[0].endpoints.v, 1u);
  EXPECT_EQ(j[1].kind, MutationKind::kInsert);
  EXPECT_EQ(j[1].edge, b);
  EXPECT_EQ(j[2].kind, MutationKind::kErase);
  EXPECT_EQ(j[2].edge, a);

  // freeze() and reads never advance the epoch.
  const Graph snap = g.freeze();
  (void)g.surviving_edges();
  (void)g.degree(1);
  EXPECT_EQ(g.epoch(), 3u);
  EXPECT_EQ(snap.num_edges(), 1u);
}

TEST(DynamicGraph, FromGraphSeedsEpochZeroBaseline) {
  Rng rng(7);
  const Graph base = random_regular_pairing_connected(40, 4, rng);
  const DynamicGraph dyn = DynamicGraph::from_graph(base);
  // Seed edges are the epoch-0 baseline: journal empty, epoch 0, readers
  // initialise from the adjacency directly.
  EXPECT_EQ(dyn.epoch(), 0u);
  EXPECT_TRUE(dyn.journal().empty());
  expect_same_adjacency(dyn, base);
  // Round trip: ids were seeded in edge-id order with no erasures, so
  // freeze() compaction is the identity on ids.
  const Graph back = dyn.freeze();
  ASSERT_EQ(back.num_edges(), base.num_edges());
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    EXPECT_EQ(back.endpoints(e).u, base.endpoints(e).u);
    EXPECT_EQ(back.endpoints(e).v, base.endpoints(e).v);
  }
}

TEST(DynamicGraphView, SharesShapeAndSyncSurfaceWithBackingGraph) {
  DynamicGraph g(5);
  g.insert_edge(0, 1);
  g.insert_edge(1, 2);
  DynamicGraphView view(g);
  EXPECT_EQ(view.num_vertices(), 5u);
  EXPECT_EQ(view.num_edges(), 2u);
  EXPECT_EQ(view.degree(1), 2u);
  EXPECT_EQ(view.slot(1, 0).neighbor, 0u);
  EXPECT_EQ(view.epoch(), 2u);
  EXPECT_EQ(view.journal().size(), 2u);
  // The view tracks mutations made after it was constructed.
  g.insert_edge(2, 3);
  EXPECT_EQ(view.num_edges(), 3u);
  EXPECT_EQ(view.epoch(), 3u);
  EXPECT_EQ(view.endpoints(2).v, 3u);
}

// ---- Property pass: randomized mutate-then-freeze --------------------------

TEST(DynamicGraphProperty, RandomChurnThenFreezeMatchesFromEdgesOfSurvivors) {
  // Shadow model: the surviving edge list as a map id -> endpoints. After an
  // arbitrary mutate sequence, freeze() must equal Graph::from_edges of the
  // shadow survivors — degrees, census flags, neighbour multisets — and a
  // fixed-seed walk must produce the identical trajectory on both CSRs.
  Rng rng(20260807);
  for (int round = 0; round < 8; ++round) {
    const Vertex n = 8 + static_cast<Vertex>(rng.uniform(40));
    DynamicGraph dyn(n);
    std::vector<std::optional<Endpoints>> shadow;  // indexed by edge id
    std::vector<EdgeId> alive;

    const int mutations = 200 + static_cast<int>(rng.uniform(200));
    for (int i = 0; i < mutations; ++i) {
      const bool erase = !alive.empty() && rng.uniform(3) == 0;
      if (erase) {
        const std::size_t pick = rng.uniform(alive.size());
        const EdgeId e = alive[pick];
        alive[pick] = alive.back();
        alive.pop_back();
        dyn.erase_edge(e);
        shadow[e].reset();
      } else {
        const Vertex u = static_cast<Vertex>(rng.uniform(n));
        // Bias towards occasional self-loops and parallel edges.
        const Vertex v = rng.uniform(10) == 0
                             ? u
                             : static_cast<Vertex>(rng.uniform(n));
        const EdgeId e = dyn.insert_edge(u, v);
        ASSERT_EQ(e, shadow.size());
        shadow.push_back(Endpoints{u, v});
        alive.push_back(e);
      }
    }

    std::vector<Endpoints> survivors;
    for (const auto& ep : shadow)
      if (ep) survivors.push_back(*ep);
    ASSERT_EQ(dyn.surviving_edges().size(), survivors.size());
    ASSERT_EQ(dyn.num_edges(), survivors.size());

    const Graph frozen = dyn.freeze();
    const Graph rebuilt = Graph::from_edges(n, survivors);
    expect_same_adjacency(dyn, rebuilt);
    ASSERT_EQ(frozen.num_edges(), rebuilt.num_edges());
    EXPECT_EQ(frozen.min_degree(), rebuilt.min_degree());
    EXPECT_EQ(frozen.max_degree(), rebuilt.max_degree());
    EXPECT_EQ(frozen.has_self_loops(), rebuilt.has_self_loops());
    EXPECT_EQ(frozen.has_parallel_edges(), rebuilt.has_parallel_edges());
    EXPECT_EQ(frozen.all_degrees_even(), rebuilt.all_degrees_even());
    for (EdgeId e = 0; e < frozen.num_edges(); ++e) {
      EXPECT_EQ(frozen.endpoints(e).u, rebuilt.endpoints(e).u);
      EXPECT_EQ(frozen.endpoints(e).v, rebuilt.endpoints(e).v);
    }
    for (Vertex v = 0; v < n; ++v)
      ASSERT_EQ(neighbor_multiset(frozen, v), neighbor_multiset(rebuilt, v))
          << "vertex " << v;

    // Golden-hash-style trajectory equality: identical CSRs drive identical
    // walks draw for draw.
    if (frozen.num_edges() == 0) continue;
    Vertex start = 0;
    while (frozen.degree(start) == 0) ++start;
    SimpleRandomWalk on_frozen(frozen, start);
    SimpleRandomWalk on_rebuilt(rebuilt, start);
    Rng ra(round + 1), rb(round + 1);
    for (int s = 0; s < 500; ++s) {
      on_frozen.step(ra);
      on_rebuilt.step(rb);
      ASSERT_EQ(on_frozen.current(), on_rebuilt.current()) << "step " << s;
    }
  }
}

// ---- Dynamic walks ---------------------------------------------------------

TEST(DynamicWalks, SrwHoldsAtIsolatedVertexWithoutConsumingRng) {
  DynamicGraph g(3);
  DynamicGraphView view(g);
  DynamicSrw walk(view, 0);
  Rng rng(5);
  const Rng untouched = rng;  // holds must not consume draws
  walk.step_many(rng, 10);
  EXPECT_EQ(walk.current(), 0u);
  EXPECT_EQ(walk.steps(), 10u);
  EXPECT_EQ(walk.holds(), 10u);
  EXPECT_EQ(rng(), Rng(untouched)());

  // An arriving edge un-strands the walker: on a single edge the next step
  // must cross it.
  g.insert_edge(0, 1);
  walk.step(rng);
  EXPECT_EQ(walk.current(), 1u);
  EXPECT_EQ(walk.holds(), 10u);
  EXPECT_EQ(walk.cover().vertices_covered(), 2u);
}

TEST(DynamicWalks, EProcessPrefersBlueAndSyncsArrivingEdges) {
  // Path 0-1-2 grown edge by edge: the E-process must take each freshly
  // arrived (blue) edge, never falling back to red while blue edges remain.
  DynamicGraph g(4);
  DynamicGraphView view(g);
  DynamicEProcess walk(view, 0);
  Rng rng(11);
  EXPECT_EQ(walk.blue_degree(0), 0u);

  const EdgeId e01 = g.insert_edge(0, 1);
  EXPECT_EQ(walk.blue_degree(0), 1u);
  walk.step(rng);
  EXPECT_EQ(walk.current(), 1u);
  EXPECT_EQ(walk.blue_steps(), 1u);
  EXPECT_TRUE(walk.edge_visited(e01));
  EXPECT_EQ(walk.blue_degree(0), 0u);
  EXPECT_EQ(walk.blue_degree(1), 0u);

  const EdgeId e12 = g.insert_edge(1, 2);
  EXPECT_EQ(walk.blue_degree(1), 1u);
  walk.step(rng);
  EXPECT_EQ(walk.current(), 2u);
  EXPECT_EQ(walk.blue_steps(), 2u);
  EXPECT_TRUE(walk.edge_visited(e12));

  // All incident edges visited: the next step is a red (SRW) fallback.
  walk.step(rng);
  EXPECT_EQ(walk.red_steps(), 1u);
  EXPECT_EQ(walk.current(), 1u);
}

TEST(DynamicWalks, EProcessErasedBlueEdgeLeavesCounts) {
  DynamicGraph g(3);
  DynamicGraphView view(g);
  DynamicEProcess walk(view, 0);
  const EdgeId e01 = g.insert_edge(0, 1);
  const EdgeId e02 = g.insert_edge(0, 2);
  EXPECT_EQ(walk.blue_degree(0), 2u);
  g.erase_edge(e01);  // blue edge vanishes before being crossed
  EXPECT_EQ(walk.blue_degree(0), 1u);
  EXPECT_EQ(walk.blue_degree(1), 0u);
  Rng rng(3);
  walk.step(rng);  // the only blue slot left is e02
  EXPECT_EQ(walk.current(), 2u);
  EXPECT_TRUE(walk.edge_visited(e02));
  EXPECT_FALSE(walk.edge_visited(e01));
  // Erasing an already-visited edge must not underflow blue counts.
  g.erase_edge(e02);
  EXPECT_EQ(walk.blue_degree(0), 0u);
  EXPECT_EQ(walk.blue_degree(2), 0u);
}

TEST(DynamicWalks, TrajectoryIsPureFunctionOfSeedAndMutationSequence) {
  // Two interleaved runs with the identical mutation schedule and seed must
  // agree step for step — the determinism contract the sweep layer builds on.
  const auto run = [](std::uint64_t seed) {
    Rng gen(99);
    const Graph base = random_regular_pairing_connected(60, 4, gen);
    DynamicGraph dyn(60);
    PcfSchedule schedule(base, /*alpha=*/0.01, gen);
    DynamicGraphView view(dyn);
    DynamicEProcess walk(view, 0);
    Rng rng(seed);
    std::vector<Vertex> trajectory;
    double t = 0.0;
    for (int s = 0; s < 2000; ++s) {
      t += 1.0 / 60.0;
      schedule.advance_to(t, dyn);
      walk.step(rng);
      trajectory.push_back(walk.current());
    }
    return trajectory;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

// ---- PCF schedule ----------------------------------------------------------

TEST(PcfSchedule, PlayoutIsBitIdenticalForEqualSeeds) {
  Rng gen(4);
  const Graph base = random_regular_pairing_connected(100, 4, gen);

  const auto play = [&base] {
    Rng rng(77);
    DynamicGraph dyn(base.num_vertices());
    PcfSchedule schedule(base, /*alpha=*/0.05, rng);
    schedule.run_to_completion(dyn);
    return std::make_tuple(schedule.opened(), schedule.blocked(),
                           dyn.journal().size());
  };
  const auto first = play();
  const auto second = play();
  EXPECT_EQ(first, second);
  // Every base edge is either opened or blocked by the end.
  EXPECT_EQ(std::get<0>(first) + std::get<1>(first), base.num_edges());
}

TEST(PcfSchedule, AdvanceGranularityDoesNotChangeThePlayout) {
  // advance_to(t1); advance_to(t2) must apply exactly the mutations
  // advance_to(t2) alone would — the property that makes the walker's
  // dt choice and the thread schedule irrelevant to the environment.
  Rng gen(4);
  const Graph base = random_regular_pairing_connected(80, 4, gen);

  DynamicGraph fine_dyn(80), coarse_dyn(80);
  Rng r1(123), r2(123);
  PcfSchedule fine(base, /*alpha=*/0.02, r1);
  PcfSchedule coarse(base, /*alpha=*/0.02, r2);

  for (double t = 0.0; t < 50.0; t += 0.01) fine.advance_to(t, fine_dyn);
  fine.run_to_completion(fine_dyn);
  coarse.run_to_completion(coarse_dyn);

  EXPECT_EQ(fine.opened(), coarse.opened());
  EXPECT_EQ(fine.blocked(), coarse.blocked());
  ASSERT_EQ(fine_dyn.journal().size(), coarse_dyn.journal().size());
  for (std::size_t i = 0; i < fine_dyn.journal().size(); ++i) {
    EXPECT_EQ(fine_dyn.journal()[i].edge, coarse_dyn.journal()[i].edge) << i;
    EXPECT_EQ(fine_dyn.journal()[i].endpoints.u,
              coarse_dyn.journal()[i].endpoints.u)
        << i;
  }
  expect_same_adjacency(fine_dyn, coarse_dyn.freeze());
}

TEST(PcfSchedule, EventTimesAreProcessedInOrderAndExhaust) {
  Rng gen(9);
  const Graph base = random_regular_pairing_connected(50, 4, gen);
  Rng rng(5);
  DynamicGraph dyn(50);
  PcfSchedule schedule(base, /*alpha=*/0.1, rng);
  double last = 0.0;
  while (!schedule.exhausted()) {
    const double next = schedule.next_event_time();
    EXPECT_GE(next, last);
    last = next;
    schedule.advance_to(next, dyn);
  }
  EXPECT_EQ(schedule.next_event_time(),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(schedule.opened() + schedule.blocked(), base.num_edges());
  EXPECT_EQ(dyn.num_edges(), schedule.opened());
}

TEST(PcfSchedule, AlphaZeroLimitOpensEverythingAndLargeAlphaBlocks) {
  Rng gen(14);
  const Graph base = random_regular_pairing_connected(60, 4, gen);
  // Tiny alpha: freeze clocks ring long after every edge opens.
  Rng r1(1);
  DynamicGraph open_dyn(60);
  PcfSchedule open_all(base, /*alpha=*/1e-12, r1);
  open_all.run_to_completion(open_dyn);
  EXPECT_EQ(open_all.opened(), base.num_edges());
  EXPECT_EQ(open_all.blocked(), 0u);
  expect_same_adjacency(open_dyn, base);
  // Huge alpha: everything freezes essentially immediately.
  Rng r2(1);
  DynamicGraph frozen_dyn(60);
  PcfSchedule freeze_all(base, /*alpha=*/1e12, r2);
  freeze_all.run_to_completion(frozen_dyn);
  EXPECT_EQ(freeze_all.opened(), 0u);
  EXPECT_EQ(freeze_all.blocked(), base.num_edges());
}

// ---- Thread / stealing invariance of the dynamic path ----------------------

// One PCF process factory per walk type, splitting the schedule stream off
// the trial's walk stream exactly as the registry entries and the bench do.
template <class WalkT>
ProcessFactory pcf_factory(double alpha) {
  return [alpha](const Graph& g, Rng& rng) -> std::unique_ptr<WalkProcess> {
    Rng schedule_rng = rng.split();
    const double dt = 1.0 / static_cast<double>(g.num_vertices());
    return std::make_unique<PcfProcess<WalkT>>(g, /*start=*/0, alpha, dt,
                                               schedule_rng);
  };
}

std::vector<SweepPoint> pcf_points() {
  std::vector<SweepPoint> points;
  for (const Vertex n : {60, 120}) {
    SweepPoint point;
    point.label = "n" + std::to_string(n);
    point.params = {{"n", static_cast<double>(n)}, {"alpha", 0.001}};
    point.graph = [n](Rng& rng) {
      return random_regular_pairing_connected(n, 4, rng);
    };
    point.series = {
        SweepSeriesSpec{"pcf-srw", pcf_factory<DynamicSrw>(0.001),
                        CoverTarget::kVertices},
        SweepSeriesSpec{"pcf-eprocess", pcf_factory<DynamicEProcess>(0.001),
                        CoverTarget::kVertices}};
    point.max_steps = 200000;  // censor stranded trials, keep the test fast
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<std::vector<double>> all_samples(const SweepResult& r) {
  std::vector<std::vector<double>> out;
  for (const auto& point : r.points)
    for (const auto& series : point.series) out.push_back(series.samples);
  return out;
}

TEST(DynamicSweep, SamplesInvariantAcrossThreadCountsAndStealingRuns) {
  // The dynamic backend inherits the sweep determinism contract: samples are
  // a pure function of (master_seed, point, trial) — identical across
  // --threads 1 / 4 / hardware and across repeated 4-thread runs on the
  // forced 4-worker executor, where work stealing reorders execution.
  SweepConfig config;
  config.trials = 3;
  config.master_seed = 2026;

  config.threads = 1;
  const auto serial = all_samples(run_sweep("t", pcf_points(), config));
  config.threads = 4;
  const auto four = all_samples(run_sweep("t", pcf_points(), config));
  const auto again = all_samples(run_sweep("t", pcf_points(), config));
  config.threads = 0;  // hardware concurrency
  const auto hardware = all_samples(run_sweep("t", pcf_points(), config));

  EXPECT_EQ(serial, four);
  EXPECT_EQ(four, again);
  EXPECT_EQ(serial, hardware);
  ASSERT_EQ(serial.size(), 4u);  // 2 points x 2 series
  for (const auto& samples : serial) {
    ASSERT_EQ(samples.size(), 3u);
    for (const double v : samples) EXPECT_GT(v, 0.0);
  }
}

TEST(DynamicSweep, CoalescingTokensMergeOnTheEvolvingGraph) {
  Rng gen(31);
  const Graph base = random_regular_pairing_connected(50, 4, gen);
  Rng schedule_rng(8);
  PcfCoalescingSrw proc(base, /*starts=*/{0, 10, 20, 30}, /*alpha=*/1e-6,
                        /*time_per_step=*/0.02, schedule_rng);
  Rng rng(17);
  // At alpha ~ 0 every edge eventually opens, the graph connects, and all
  // tokens must coalesce into one.
  std::uint64_t guard = 0;
  while (proc.tokens_remaining() > 1 && guard < 2000000) {
    proc.step(rng);
    ++guard;
  }
  EXPECT_EQ(proc.tokens_remaining(), 1u);
}

}  // namespace
}  // namespace ewalk
