// Tests for the unified walk-engine layer: the WalkProcess interface, the
// generic run_until driver (seed-for-seed equivalent to the deleted
// per-class member loops), the process/generator registries, and the
// uniform-rule fast path.
#include <gtest/gtest.h>

#include <stdexcept>

#include "engine/adapters.hpp"
#include "engine/budget.hpp"
#include "engine/driver.hpp"
#include "engine/params.hpp"
#include "engine/registry.hpp"
#include "graph/generators.hpp"
#include "walks/eprocess.hpp"
#include "walks/rules.hpp"
#include "walks/srw.hpp"

namespace ewalk {
namespace {

// ---- Generic driver: seed-for-seed equivalence with the legacy loops ------

// Replica of the member loop every walk class used to carry:
//   while (!covered && steps < max) step(rng);
template <typename Walk>
bool legacy_vertex_cover_loop(Walk& walk, Rng& rng, std::uint64_t max_steps) {
  while (!walk.cover().all_vertices_covered() && walk.steps() < max_steps)
    walk.step(rng);
  return walk.cover().all_vertices_covered();
}

TEST(EngineDriver, ReproducesLegacyEProcessLoopSeedForSeed) {
  Rng grng(7);
  const Graph g = random_regular_connected(200, 4, grng);
  for (const std::uint64_t seed : {1u, 42u, 977u}) {
    UniformRule rule_a;
    EProcess a(g, 0, rule_a);
    Rng ra(seed);
    const bool done_a = legacy_vertex_cover_loop(a, ra, 1u << 22);

    UniformRule rule_b;
    EProcess b(g, 0, rule_b);
    Rng rb(seed);
    const bool done_b = run_until_vertex_cover(b, rb, 1u << 22);

    ASSERT_TRUE(done_a);
    ASSERT_TRUE(done_b);
    EXPECT_EQ(a.steps(), b.steps());
    EXPECT_EQ(a.current(), b.current());
    EXPECT_EQ(a.cover().vertex_cover_step(), b.cover().vertex_cover_step());
    EXPECT_EQ(a.blue_steps(), b.blue_steps());
  }
}

TEST(EngineDriver, ReproducesLegacySrwLoopSeedForSeed) {
  Rng grng(8);
  const Graph g = random_regular_connected(200, 4, grng);
  for (const std::uint64_t seed : {3u, 55u, 1234u}) {
    SimpleRandomWalk a(g, 0);
    Rng ra(seed);
    const bool done_a = legacy_vertex_cover_loop(a, ra, 1u << 22);

    SimpleRandomWalk b(g, 0);
    Rng rb(seed);
    const bool done_b = run_until_vertex_cover(b, rb, 1u << 22);

    ASSERT_TRUE(done_a);
    ASSERT_TRUE(done_b);
    EXPECT_EQ(a.steps(), b.steps());
    EXPECT_EQ(a.current(), b.current());
    EXPECT_EQ(a.cover().vertex_cover_step(), b.cover().vertex_cover_step());
  }
}

TEST(EngineDriver, VisitCountStrideMatchesLegacyBurstLoop) {
  // Legacy SimpleRandomWalk::run_until_visit_count stepped in bursts of n
  // between O(n) min-visit-count checks; the generic driver's stride must
  // reproduce its step counts exactly.
  const Graph g = cycle_graph(40);
  SimpleRandomWalk a(g, 0);
  Rng ra(11);
  while (a.cover().min_visit_count() < 3 && a.steps() < (1u << 22)) {
    const std::uint64_t burst = g.num_vertices();
    for (std::uint64_t i = 0; i < burst && a.steps() < (1u << 22); ++i) a.step(ra);
  }
  ASSERT_GE(a.cover().min_visit_count(), 3u);

  SimpleRandomWalk b(g, 0);
  Rng rb(11);
  ASSERT_TRUE(run_until_visit_count(b, rb, 3, 1u << 22));
  EXPECT_EQ(a.steps(), b.steps());
  EXPECT_EQ(a.current(), b.current());
}

TEST(EngineDriver, BudgetExhaustionReturnsFalseWithoutOverrun) {
  const Graph g = cycle_graph(64);
  SimpleRandomWalk w(g, 0);
  Rng rng(5);
  EXPECT_FALSE(run_until_vertex_cover(w, rng, 10));
  EXPECT_EQ(w.steps(), 10u);
}

TEST(EngineDriver, PredicatesCompose) {
  const Graph g = cycle_graph(32);
  // all_of(vertex, edge) on a cycle == edge cover (edges finish last or
  // together); any_of(vertex, edge) == vertex cover first.
  SimpleRandomWalk a(g, 0);
  Rng ra(9);
  ASSERT_TRUE(run_until(a, ra, all_of(VertexCovered{}, EdgesCovered{}), 1u << 22));
  EXPECT_TRUE(a.cover().all_vertices_covered());
  EXPECT_TRUE(a.cover().all_edges_covered());

  SimpleRandomWalk b(g, 0);
  Rng rb(9);
  ASSERT_TRUE(run_until(b, rb, any_of(VertexCovered{}, EdgesCovered{}), 1u << 22));
  EXPECT_TRUE(b.cover().all_vertices_covered() || b.cover().all_edges_covered());
  EXPECT_LE(b.steps(), a.steps());
}

// ---- Uniform-rule fast path -----------------------------------------------

// A rule with the same draw as UniformRule but *without* the fast-path
// declaration, forcing the generic virtual choose_index dispatch.
class SlowUniformRule final : public UnvisitedEdgeRule {
 public:
  std::uint32_t choose_index(const EProcessView&, Vertex,
                             std::uint32_t blue_count, Rng& rng) override {
    return static_cast<std::uint32_t>(rng.uniform(blue_count));
  }
  const char* name() const override { return "slow-uniform"; }
};

TEST(EngineFastPath, UniformFastPathMatchesGenericDispatchBitForBit) {
  Rng grng(13);
  const Graph g = hamiltonian_cycle_union(150, 3, grng);
  for (const std::uint64_t seed : {2u, 77u}) {
    UniformRule fast;
    EProcess a(g, 0, fast);  // takes the O(1) fast path
    Rng ra(seed);
    ASSERT_TRUE(run_until_edge_cover(a, ra, 1u << 24));

    SlowUniformRule slow;
    EProcess b(g, 0, slow);  // generic virtual dispatch, same draw
    Rng rb(seed);
    ASSERT_TRUE(run_until_edge_cover(b, rb, 1u << 24));

    EXPECT_EQ(a.steps(), b.steps());
    EXPECT_EQ(a.blue_steps(), b.blue_steps());
    EXPECT_EQ(a.red_steps(), b.red_steps());
    EXPECT_EQ(a.current(), b.current());
    EXPECT_EQ(a.cover().edge_cover_step(), b.cover().edge_cover_step());
  }
}

// ---- Registries -------------------------------------------------------------

TEST(ProcessRegistry, RegistersAllSixteenProcesses) {
  const auto names = ProcessRegistry::instance().names();
  EXPECT_EQ(names.size(), 16u);
  for (const char* expected :
       {"eprocess", "multi-eprocess", "srw", "lazy-srw", "rotor", "vertexwalk",
        "rwc", "leastused", "oldest", "weighted", "coalescing-srw",
        "coalescing-ewalk", "herman", "pcf-srw", "pcf-eprocess",
        "pcf-coalescing-srw"}) {
    EXPECT_TRUE(ProcessRegistry::instance().contains(expected)) << expected;
  }
}

TEST(ProcessRegistry, EveryRegisteredProcessCoversCycleAndHypercube) {
  for (const Graph& g : {cycle_graph(64), hypercube(4)}) {
    const std::uint64_t budget = default_step_budget(g);
    for (const auto& name : ProcessRegistry::instance().names()) {
      // Herman's protocol is defined only on cycles.
      if (name == "herman" && !g.is_regular(2)) continue;
      // PCF processes walk an evolving graph that starts empty; at the
      // default alpha = 1 most components freeze before connecting, so
      // full cover is not guaranteed. Covered by dynamic_graph_test.
      if (name.rfind("pcf-", 0) == 0) continue;
      Rng rng(1000 + g.num_vertices());
      auto walk = ProcessRegistry::instance().create(name, g, ParamMap{}, rng);
      ASSERT_NE(walk, nullptr) << name;
      EXPECT_EQ(walk->steps(), 0u) << name;
      EXPECT_TRUE(run_until_vertex_cover(*walk, rng, budget))
          << name << " failed to cover n=" << g.num_vertices();
      EXPECT_TRUE(walk->cover().all_vertices_covered()) << name;
      EXPECT_EQ(&walk->graph(), &g) << name;
    }
  }
}

TEST(ProcessRegistry, RegistryEProcessMatchesDirectConstructionSeedForSeed) {
  Rng grng(21);
  const Graph g = random_regular_connected(150, 4, grng);

  Rng r1(99);
  auto via_registry = ProcessRegistry::instance().create("eprocess", g, ParamMap{}, r1);
  ASSERT_TRUE(run_until_vertex_cover(*via_registry, r1, 1u << 22));

  UniformRule rule;
  EProcess direct(g, 0, rule);
  Rng r2(99);
  ASSERT_TRUE(run_until_vertex_cover(direct, r2, 1u << 22));

  EXPECT_EQ(via_registry->steps(), direct.steps());
  EXPECT_EQ(via_registry->cover().vertex_cover_step(),
            direct.cover().vertex_cover_step());
}

TEST(ProcessRegistry, ParamsSelectRuleAndStart) {
  const Graph g = cycle_graph(32);
  Rng rng(3);
  auto walk = ProcessRegistry::instance().create(
      "eprocess", g, ParamMap{{"rule", "roundrobin"}, {"start", "5"}}, rng);
  EXPECT_EQ(walk->current(), 5u);
  auto* handle = dynamic_cast<EProcessHandle*>(walk.get());
  ASSERT_NE(handle, nullptr);
  EXPECT_STREQ(handle->rule().name(), "round-robin");
}

TEST(ProcessRegistry, UnknownNamesThrowWithKnownList) {
  const Graph g = cycle_graph(8);
  Rng rng(1);
  try {
    ProcessRegistry::instance().create("no-such-walk", g, ParamMap{}, rng);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& ex) {
    EXPECT_NE(std::string(ex.what()).find("eprocess"), std::string::npos);
  }
  EXPECT_THROW(make_rule("no-such-rule", g, rng), std::invalid_argument);
}

TEST(GeneratorRegistry, BuildsFamiliesByName) {
  Rng rng(17);
  const Graph cycle = GeneratorRegistry::instance().create(
      "cycle", ParamMap{{"n", "64"}}, rng);
  EXPECT_EQ(cycle.num_vertices(), 64u);
  EXPECT_TRUE(cycle.is_regular(2));

  const Graph cube = GeneratorRegistry::instance().create(
      "hypercube", ParamMap{{"r", "4"}}, rng);
  EXPECT_EQ(cube.num_vertices(), 16u);
  EXPECT_TRUE(cube.is_regular(4));

  const Graph reg = GeneratorRegistry::instance().create(
      "regular", ParamMap{{"n", "100"}, {"r", "4"}}, rng);
  EXPECT_TRUE(reg.is_regular(4));

  EXPECT_THROW(GeneratorRegistry::instance().create("no-such-family", ParamMap{}, rng),
               std::invalid_argument);
}

TEST(EngineBudget, DefaultBudgetIsGenerousAndMonotoneInSize)
{
  const Graph small = cycle_graph(64);
  const Graph big = cycle_graph(4096);
  EXPECT_GT(default_step_budget(small), 1000000u);
  EXPECT_GT(default_step_budget(big), default_step_budget(small));
}

}  // namespace
}  // namespace ewalk
