// Tests for the E-process: the paper's Observations 10–12, equation (3),
// rule independence, and bookkeeping integrity. Parameterized suites sweep
// even-degree graph families × choice rules × seeds.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "analysis/blue.hpp"
#include "engine/driver.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "walks/eprocess.hpp"
#include "walks/rules.hpp"

namespace ewalk {
namespace {

enum class GraphKind { kCycle, kTorus, kRandom4Regular, kRandom6Regular, kHamUnion, kK5, kMultigraph4Regular };
enum class RuleKind { kUniform, kFirst, kLast, kRoundRobin, kAdversary, kGreedy };

Graph make_graph(GraphKind kind, Rng& rng) {
  switch (kind) {
    case GraphKind::kCycle:
      return cycle_graph(60);
    case GraphKind::kTorus:
      return torus_2d(8, 8);
    case GraphKind::kRandom4Regular:
      return random_regular_connected(80, 4, rng);
    case GraphKind::kRandom6Regular:
      return random_regular_connected(60, 6, rng);
    case GraphKind::kHamUnion:
      return hamiltonian_cycle_union(70, 2, rng);
    case GraphKind::kK5:
      return complete_graph(5);
    case GraphKind::kMultigraph4Regular: {
      // Configuration-model multigraph with even degrees (loops allowed),
      // resampled until connected so cover is reachable.
      for (;;) {
        Graph g = configuration_model(std::vector<std::uint32_t>(24, 4), rng,
                                      /*simple=*/false);
        if (is_connected(g)) return g;
      }
    }
  }
  throw std::logic_error("unreachable");
}

std::unique_ptr<UnvisitedEdgeRule> make_rule(RuleKind kind, const Graph& g) {
  switch (kind) {
    case RuleKind::kUniform:
      return std::make_unique<UniformRule>();
    case RuleKind::kFirst:
      return std::make_unique<FirstSlotRule>();
    case RuleKind::kLast:
      return std::make_unique<LastSlotRule>();
    case RuleKind::kRoundRobin:
      return std::make_unique<RoundRobinRule>(g.num_vertices());
    case RuleKind::kAdversary:
      return std::make_unique<PreferVisitedEndpointRule>();
    case RuleKind::kGreedy:
      return std::make_unique<PreferUnvisitedEndpointRule>();
  }
  throw std::logic_error("unreachable");
}

using Param = std::tuple<GraphKind, RuleKind, std::uint64_t>;

class EProcessInvariants : public ::testing::TestWithParam<Param> {};

// Observation 10: on even-degree graphs every *completed* blue phase starts
// and ends at the same vertex.
TEST_P(EProcessInvariants, BluePhasesReturnToStart) {
  const auto [gk, rk, seed] = GetParam();
  Rng rng(seed);
  const Graph g = make_graph(gk, rng);
  ASSERT_TRUE(g.all_degrees_even());
  auto rule = make_rule(rk, g);
  EProcess walk(g, 0, *rule, EProcessOptions{.record_phases = true});
  ASSERT_TRUE(run_until_edge_cover(walk, rng, 1u << 24));

  const auto& phases = walk.phases();
  ASSERT_FALSE(phases.empty());
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (phases[i].color != StepColor::kBlue) continue;
    // A blue phase is completed once a later phase exists.
    if (i + 1 < phases.size()) {
      EXPECT_EQ(phases[i].start_vertex, phases[i].end_vertex)
          << "blue phase " << i << " did not return to its start";
    }
  }
  // The final phase of an edge-cover run is blue and, on even-degree
  // graphs, also closes at its start.
  EXPECT_EQ(phases.back().color, StepColor::kBlue);
  EXPECT_EQ(phases.back().start_vertex, phases.back().end_vertex);
}

// Observation 11: whenever the walk is in a red phase, every vertex has even
// blue degree and blue components are even-degree edge-induced subgraphs.
TEST_P(EProcessInvariants, BlueComponentsEvenDuringRedPhase) {
  const auto [gk, rk, seed] = GetParam();
  Rng rng(seed);
  const Graph g = make_graph(gk, rng);
  auto rule = make_rule(rk, g);
  EProcess walk(g, 0, *rule);
  int checks = 0;
  for (std::uint64_t i = 0; i < 50000 && !walk.cover().all_edges_covered(); ++i) {
    const StepColor color = walk.step(rng);
    if (color == StepColor::kRed && checks < 25) {
      ++checks;
      const auto report = analyze_blue(g, walk.cover().edge_visited_flags(),
                                       walk.cover().vertex_visited_flags());
      for (const auto& c : report.components)
        EXPECT_TRUE(c.all_degrees_even) << "blue component with odd degree during red phase";
      // Any unvisited vertex must lie in some blue component (Obs 11.1).
      std::uint64_t unvisited_in_components = 0;
      for (const auto& c : report.components)
        if (c.contains_unvisited_vertex) ++unvisited_in_components;
      if (report.unvisited_vertices_total > 0) {
        EXPECT_GT(unvisited_in_components, 0u);
      }
    }
  }
}

// Observation 12: t = t_R + t_B with t_B <= m at all times.
TEST_P(EProcessInvariants, BlueStepsNeverExceedEdges) {
  const auto [gk, rk, seed] = GetParam();
  Rng rng(seed);
  const Graph g = make_graph(gk, rng);
  auto rule = make_rule(rk, g);
  EProcess walk(g, 0, *rule);
  ASSERT_TRUE(run_until_edge_cover(walk, rng, 1u << 24));
  EXPECT_EQ(walk.steps(), walk.red_steps() + walk.blue_steps());
  EXPECT_LE(walk.blue_steps(), static_cast<std::uint64_t>(g.num_edges()));
  // Edge cover => every edge was crossed by a blue transition exactly once.
  EXPECT_EQ(walk.blue_steps(), static_cast<std::uint64_t>(g.num_edges()));
}

// Equation (3): m <= C_E; and since cover happened, the last blue step is
// the edge cover step.
TEST_P(EProcessInvariants, EdgeCoverAtLeastM) {
  const auto [gk, rk, seed] = GetParam();
  Rng rng(seed);
  const Graph g = make_graph(gk, rng);
  auto rule = make_rule(rk, g);
  EProcess walk(g, 0, *rule);
  ASSERT_TRUE(run_until_edge_cover(walk, rng, 1u << 24));
  EXPECT_GE(walk.cover().edge_cover_step(), static_cast<std::uint64_t>(g.num_edges()));
}

TEST_P(EProcessInvariants, VertexCoverImpliesAllVisited) {
  const auto [gk, rk, seed] = GetParam();
  Rng rng(seed);
  const Graph g = make_graph(gk, rng);
  auto rule = make_rule(rk, g);
  EProcess walk(g, 0, *rule);
  ASSERT_TRUE(run_until_vertex_cover(walk, rng, 1u << 24));
  EXPECT_TRUE(walk.cover().all_vertices_covered());
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    EXPECT_TRUE(walk.cover().vertex_visited(v));
  EXPECT_LE(walk.cover().vertex_cover_step(), walk.steps());
}

// Blue-degree bookkeeping: blue_degree(v) must equal the count of unvisited
// incident edges, at every sampled moment.
TEST_P(EProcessInvariants, BlueDegreeMatchesVisitedFlags) {
  const auto [gk, rk, seed] = GetParam();
  Rng rng(seed);
  const Graph g = make_graph(gk, rng);
  auto rule = make_rule(rk, g);
  EProcess walk(g, 0, *rule);
  for (int sample = 0; sample < 40 && !walk.cover().all_edges_covered(); ++sample) {
    for (int i = 0; i < 97 && !walk.cover().all_edges_covered(); ++i) walk.step(rng);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      std::uint32_t expected = 0;
      for (const Slot& s : g.slots(v))
        if (!walk.cover().edge_visited(s.edge)) ++expected;
      ASSERT_EQ(walk.blue_degree(v), expected) << "vertex " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    EvenGraphsRulesSeeds, EProcessInvariants,
    ::testing::Combine(::testing::Values(GraphKind::kCycle, GraphKind::kTorus,
                                         GraphKind::kRandom4Regular,
                                         GraphKind::kRandom6Regular,
                                         GraphKind::kHamUnion,
                                         GraphKind::kMultigraph4Regular),
                       ::testing::Values(RuleKind::kUniform, RuleKind::kFirst,
                                         RuleKind::kRoundRobin, RuleKind::kAdversary),
                       ::testing::Values<std::uint64_t>(1, 2)));

// A lighter sweep exercising the remaining rules.
INSTANTIATE_TEST_SUITE_P(
    ExtraRules, EProcessInvariants,
    ::testing::Combine(::testing::Values(GraphKind::kRandom4Regular, GraphKind::kK5),
                       ::testing::Values(RuleKind::kLast, RuleKind::kGreedy),
                       ::testing::Values<std::uint64_t>(3)));

// ---- Non-parameterized behaviour -------------------------------------------

TEST(EProcess, FixedPriorityRuleIsAValidOfflineAdversary) {
  Rng grng(31);
  const Graph g = random_regular_connected(100, 4, grng);
  Rng prio_rng(32);
  FixedPriorityRule rule(g.num_edges(), prio_rng);
  Rng rng(33);
  EProcess walk(g, 0, rule, EProcessOptions{.record_phases = true});
  ASSERT_TRUE(run_until_edge_cover(walk, rng, 1u << 24));
  // Obs 10 still holds under the offline adversary.
  const auto& phases = walk.phases();
  for (std::size_t i = 0; i + 1 < phases.size(); ++i) {
    if (phases[i].color != StepColor::kBlue) continue;
    EXPECT_EQ(phases[i].start_vertex, phases[i].end_vertex);
  }
}

TEST(EProcess, FixedPriorityIsDeterministicGivenPermutation) {
  Rng grng(34);
  const Graph g = random_regular_connected(60, 4, grng);
  std::vector<EdgeId> prio(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) prio[e] = g.num_edges() - 1 - e;
  const auto run = [&]() {
    FixedPriorityRule rule(prio);
    Rng rng(35);
    EProcess walk(g, 0, rule);
    run_until_vertex_cover(walk, rng, 1u << 24);
    return walk.cover().vertex_cover_step();
  };
  EXPECT_EQ(run(), run());
}

TEST(EProcess, CoversMargulisExpanderLinearly) {
  const Graph g = margulis_expander(40);  // n = 1600, 8-regular multigraph
  ASSERT_TRUE(g.all_degrees_even());
  Rng rng(36);
  UniformRule rule;
  EProcess walk(g, 0, rule);
  ASSERT_TRUE(run_until_vertex_cover(walk, rng, 1u << 26));
  EXPECT_LT(walk.cover().vertex_cover_step(), 10u * g.num_vertices());
}

TEST(EProcess, FirstPhaseIsBlueAndClosesAtStart) {
  // On any even-degree graph the walk starts with a blue phase from the
  // start vertex, which must close there (Observation 10's base case).
  Rng rng(5);
  const Graph g = torus_2d(6, 6);
  UniformRule rule;
  EProcess walk(g, 7, rule, EProcessOptions{.record_phases = true});
  // Step until the first red transition.
  while (walk.step(rng) == StepColor::kBlue) {
  }
  const auto& phases = walk.phases();
  ASSERT_GE(phases.size(), 2u);
  EXPECT_EQ(phases[0].color, StepColor::kBlue);
  EXPECT_EQ(phases[0].start_vertex, 7u);
  EXPECT_EQ(phases[0].end_vertex, 7u);
}

TEST(EProcess, OddDegreeGraphsBluePhasesMayStrand) {
  // On 3-regular graphs a blue phase can end away from its start — this is
  // exactly the Section 5 phenomenon. Just check the process still covers.
  Rng rng(6);
  const Graph g = random_regular_connected(50, 3, rng);
  UniformRule rule;
  EProcess walk(g, 0, rule);
  ASSERT_TRUE(run_until_edge_cover(walk, rng, 1u << 24));
  EXPECT_TRUE(walk.cover().all_edges_covered());
}

TEST(EProcess, SelfLoopConsumesBothSlots) {
  GraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  const Graph g = b.build();  // degrees: 0 -> 4, 1 -> 2, even
  Rng rng(7);
  UniformRule rule;
  EProcess walk(g, 0, rule);
  ASSERT_TRUE(run_until_edge_cover(walk, rng, 10000));
  EXPECT_EQ(walk.blue_degree(0), 0u);
  EXPECT_EQ(walk.blue_degree(1), 0u);
}

TEST(EProcess, DeterministicGivenSeedAndRule) {
  Rng graph_rng(8);
  const Graph g = random_regular_connected(60, 4, graph_rng);
  const auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    UniformRule rule;
    EProcess walk(g, 0, rule);
    run_until_vertex_cover(walk, rng, 1u << 24);
    return walk.cover().vertex_cover_step();
  };
  EXPECT_EQ(run(123), run(123));
  // Different seeds almost surely differ on a 60-vertex graph.
  EXPECT_NE(run(123), run(456));
}

TEST(EProcess, RuleOutOfRangeIndexThrows) {
  class BadRule final : public UnvisitedEdgeRule {
   public:
    std::uint32_t choose_index(const EProcessView&, Vertex,
                               std::uint32_t blue_count, Rng&) override {
      return blue_count;  // out of range
    }
    const char* name() const override { return "bad"; }
  };
  const Graph g = cycle_graph(4);
  BadRule rule;
  EProcess walk(g, 0, rule);
  Rng rng(9);
  EXPECT_THROW(walk.step(rng), std::logic_error);
}

TEST(EProcess, StartVertexOutOfRangeThrows) {
  const Graph g = cycle_graph(4);
  UniformRule rule;
  EXPECT_THROW(EProcess(g, 99, rule), std::invalid_argument);
}

TEST(EProcess, ViewExposesState) {
  const Graph g = cycle_graph(5);
  UniformRule rule;
  EProcess walk(g, 0, rule);
  const BluePartition blue(g);  // fresh: every edge still blue
  const EProcessView view(walk.graph(), walk.cover(), blue, walk.steps());
  EXPECT_EQ(&view.graph(), &g);
  EXPECT_EQ(view.steps(), 0u);
  EXPECT_TRUE(view.cover().vertex_visited(0));
  EXPECT_EQ(view.blue_count(0), g.degree(0));
  EXPECT_EQ(view.blue_slot(0, 0).edge, g.slot(0, 0).edge);
}

TEST(EProcess, GreedyRuleNeverSlowerThanMOnCycle) {
  // On a cycle the blue walk simply traverses the cycle: vertex cover in
  // exactly n-1 steps, edge cover in exactly n steps, for every rule.
  const Graph g = cycle_graph(100);
  for (int pass = 0; pass < 3; ++pass) {
    Rng rng(pass);
    UniformRule rule;
    EProcess walk(g, 0, rule);
    ASSERT_TRUE(run_until_edge_cover(walk, rng, 1000));
    EXPECT_EQ(walk.cover().vertex_cover_step(), 99u);
    EXPECT_EQ(walk.cover().edge_cover_step(), 100u);
    EXPECT_EQ(walk.red_steps(), 0u);
  }
}

TEST(EProcess, PhasesPartitionSteps) {
  Rng rng(11);
  const Graph g = random_regular_connected(40, 4, rng);
  UniformRule rule;
  EProcess walk(g, 0, rule, EProcessOptions{.record_phases = true});
  ASSERT_TRUE(run_until_edge_cover(walk, rng, 1u << 24));
  const auto& phases = walk.phases();
  std::uint64_t counted = 0;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    EXPECT_LE(phases[i].first_step, phases[i].last_step);
    if (i > 0) {
      EXPECT_EQ(phases[i].first_step, phases[i - 1].last_step + 1);
      EXPECT_NE(phases[i].color, phases[i - 1].color);
      EXPECT_EQ(phases[i].start_vertex, phases[i - 1].end_vertex);
    }
    counted += phases[i].last_step - phases[i].first_step + 1;
  }
  EXPECT_EQ(counted, walk.steps());
}

}  // namespace
}  // namespace ewalk
