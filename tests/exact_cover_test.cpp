// Tests for the exact expected-cover-time oracle, and oracle-vs-simulator
// agreement — the strongest correctness evidence for the E-process
// implementation: closed-form values where they exist, eq. (3) checked in
// exact expectation, and Monte Carlo means converging to the oracle.
#include <gtest/gtest.h>

#include <cmath>

#include "covertime/exact_cover.hpp"
#include "engine/driver.hpp"
#include "graph/generators.hpp"
#include "walks/eprocess.hpp"
#include "walks/rules.hpp"
#include "walks/srw.hpp"

namespace ewalk {
namespace {

TEST(ExactSrw, CycleClosedForm) {
  // C_V(C_n) = n(n-1)/2 from every start vertex.
  for (const Vertex n : {3u, 5u, 8u, 12u}) {
    const Graph g = cycle_graph(n);
    EXPECT_NEAR(exact_srw_vertex_cover_time(g, 0), n * (n - 1) / 2.0, 1e-9) << n;
  }
}

TEST(ExactSrw, CompleteGraphCouponCollector) {
  // C_V(K_n) = (n-1) H_{n-1}.
  for (const Vertex n : {3u, 5u, 8u}) {
    const Graph g = complete_graph(n);
    double h = 0;
    for (Vertex k = 1; k < n; ++k) h += 1.0 / k;
    EXPECT_NEAR(exact_srw_vertex_cover_time(g, 0), (n - 1) * h, 1e-9) << n;
  }
}

TEST(ExactSrw, PathFromEndIsHittingTime) {
  // From an end of P_n the cover time is the hitting time of the far end:
  // (n-1)^2.
  for (const Vertex n : {3u, 6u, 10u}) {
    const Graph g = path_graph(n);
    EXPECT_NEAR(exact_srw_vertex_cover_time(g, 0), (n - 1.0) * (n - 1.0), 1e-9) << n;
  }
}

TEST(ExactSrw, StartDependenceOnPath) {
  // Covering P_n from the middle is harder than the one-directional sweep
  // bound but easier than from the end... just check monotone sanity:
  // middle start <= end start on P_5? Actually from the middle the walk
  // must reach both ends; verified against Monte Carlo below; here check
  // only that the oracle is finite and positive and differs by start.
  const Graph g = path_graph(5);
  const double from_end = exact_srw_vertex_cover_time(g, 0);
  const double from_mid = exact_srw_vertex_cover_time(g, 2);
  EXPECT_GT(from_end, 0.0);
  EXPECT_GT(from_mid, 0.0);
  EXPECT_NE(from_end, from_mid);
}

TEST(ExactSrw, MatchesMonteCarlo) {
  const Graph g = petersen_graph();
  const double exact = exact_srw_vertex_cover_time(g, 0);
  Rng rng(1);
  const int kTrials = 40000;
  double acc = 0;
  for (int t = 0; t < kTrials; ++t) {
    SimpleRandomWalk walk(g, 0);
    run_until_vertex_cover(walk, rng, 1u << 22);
    acc += static_cast<double>(walk.cover().vertex_cover_step());
  }
  const double mc = acc / kTrials;
  EXPECT_NEAR(mc, exact, exact * 0.02);
}

TEST(ExactSrw, RejectsBadInput) {
  EXPECT_THROW(exact_srw_vertex_cover_time(cycle_graph(20), 0), std::invalid_argument);
  GraphBuilder b(4);
  b.add_edge(0, 1);
  EXPECT_THROW(exact_srw_vertex_cover_time(b.build(), 0), std::invalid_argument);
}

TEST(ExactEProcess, CycleIsDeterministic) {
  // On C_n the first blue phase is the whole cycle: vertex cover in exactly
  // n-1 steps, edge cover in exactly n.
  for (const Vertex n : {3u, 7u, 12u}) {
    const Graph g = cycle_graph(n);
    EXPECT_NEAR(exact_eprocess_vertex_cover_time(g, 0), n - 1.0, 1e-9) << n;
    EXPECT_NEAR(exact_eprocess_edge_cover_time(g, 0), static_cast<double>(n), 1e-9) << n;
  }
}

TEST(ExactEProcess, EdgeCoverAtLeastM) {
  for (const Graph& g : {complete_graph(4), petersen_graph(), complete_bipartite(2, 3)}) {
    EXPECT_GE(exact_eprocess_edge_cover_time(g, 0),
              static_cast<double>(g.num_edges()) - 1e-9);
  }
}

TEST(ExactEProcess, Equation3ExactExpectation) {
  // eq. (3): m <= C_E(E-process) <= m + C_V(SRW) — verified in *exact
  // expectation* on even-degree graphs.
  GraphBuilder fig8(5);  // two triangles sharing vertex 0 (even degrees)
  fig8.add_edge(0, 1);
  fig8.add_edge(1, 2);
  fig8.add_edge(2, 0);
  fig8.add_edge(0, 3);
  fig8.add_edge(3, 4);
  fig8.add_edge(4, 0);
  for (const Graph& g : {complete_graph(5), cycle_graph(9), fig8.build(),
                         torus_2d(3, 3) /* m = 18 */}) {
    ASSERT_TRUE(g.all_degrees_even());
    const double ce = exact_eprocess_edge_cover_time(g, 0);
    const double cv_srw = exact_srw_vertex_cover_time(g, 0);
    EXPECT_GE(ce, static_cast<double>(g.num_edges()) - 1e-9);
    EXPECT_LE(ce, g.num_edges() + cv_srw + 1e-9);
  }
}

TEST(ExactEProcess, BeatsSrwOnEvenDegreeSamples) {
  for (const Graph& g : {complete_graph(5), torus_2d(3, 3)}) {
    EXPECT_LT(exact_eprocess_vertex_cover_time(g, 0),
              exact_srw_vertex_cover_time(g, 0));
  }
}

TEST(ExactEProcess, MatchesMonteCarlo) {
  // The decisive simulator check: Monte Carlo mean of the real EProcess
  // converges to the oracle on K5 and on the figure-eight.
  GraphBuilder fig8(5);
  fig8.add_edge(0, 1);
  fig8.add_edge(1, 2);
  fig8.add_edge(2, 0);
  fig8.add_edge(0, 3);
  fig8.add_edge(3, 4);
  fig8.add_edge(4, 0);
  int seed = 2;
  for (const Graph& g : {complete_graph(5), fig8.build()}) {
    const double exact_v = exact_eprocess_vertex_cover_time(g, 0);
    const double exact_e = exact_eprocess_edge_cover_time(g, 0);
    Rng rng(seed++);
    const int kTrials = 60000;
    double acc_v = 0, acc_e = 0;
    for (int t = 0; t < kTrials; ++t) {
      UniformRule rule;
      EProcess walk(g, 0, rule);
      run_until_edge_cover(walk, rng, 1u << 22);
      acc_v += static_cast<double>(walk.cover().vertex_cover_step());
      acc_e += static_cast<double>(walk.cover().edge_cover_step());
    }
    EXPECT_NEAR(acc_v / kTrials, exact_v, exact_v * 0.02);
    EXPECT_NEAR(acc_e / kTrials, exact_e, exact_e * 0.02);
  }
}

TEST(ExactEProcess, MultigraphWithLoop) {
  // Loop + parallel edges: degrees 0->4, 1->2 (even). The oracle must agree
  // with the simulator on multigraph semantics too.
  GraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  const Graph g = b.build();
  const double exact_e = exact_eprocess_edge_cover_time(g, 0);
  Rng rng(5);
  const int kTrials = 60000;
  double acc = 0;
  for (int t = 0; t < kTrials; ++t) {
    UniformRule rule;
    EProcess walk(g, 0, rule);
    run_until_edge_cover(walk, rng, 1u << 20);
    acc += static_cast<double>(walk.cover().edge_cover_step());
  }
  EXPECT_NEAR(acc / kTrials, exact_e, exact_e * 0.02);
}

TEST(ExactEProcess, RejectsBadInput) {
  Rng rng(1);
  const Graph big = random_regular_connected(20, 4, rng);  // m = 40 > 18
  EXPECT_THROW(exact_eprocess_vertex_cover_time(big, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ewalk
