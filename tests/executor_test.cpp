// Tests for the work-stealing scheduler (util/thread_pool.hpp): TaskScope
// fork-join semantics, nested spawn under stealing (the ASan/TSan stress
// target of CI), the root-scope admission cap, exception propagation,
// timing slots, pinning, and the --threads resolution helper.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace ewalk {
namespace {

// Give the executor four workers even on single-core CI runners, so these
// tests exercise real stealing, nested waits, and token contention. Runs
// before main(), i.e. before the first Executor::instance() call in this
// binary; an explicit EWALK_WORKERS in the environment wins.
const bool kWorkersEnvSet = [] {
  setenv("EWALK_WORKERS", "4", /*overwrite=*/0);
  return true;
}();

TEST(TaskScope, RunsEverySpawnedTask) {
  std::atomic<int> count{0};
  std::atomic<long> sum{0};
  TaskScope scope;
  for (int i = 0; i < 100; ++i)
    scope.spawn([&, i] {
      count.fetch_add(1, std::memory_order_relaxed);
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  scope.wait();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(TaskScope, IsReusableAfterWait) {
  std::atomic<int> count{0};
  TaskScope scope;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i)
      scope.spawn([&] { count.fetch_add(1, std::memory_order_relaxed); });
    scope.wait();
    EXPECT_EQ(count.load(), (round + 1) * 8);
  }
}

TEST(TaskScope, NestedSpawnStress) {
  // Three levels of fan-out (8 -> 64 -> 512 tasks): every task of the two
  // upper levels opens its own nested scope and waits on it, so waiting
  // threads must help-run subtree tasks to make progress. This is the
  // ASan/TSan stress target: any lifetime or synchronisation bug in the
  // steal loop shows up here.
  std::atomic<int> level1{0}, level2{0}, level3{0};
  TaskScope scope;
  for (int i = 0; i < 8; ++i)
    scope.spawn([&] {
      level1.fetch_add(1, std::memory_order_relaxed);
      TaskScope inner;
      for (int j = 0; j < 8; ++j)
        inner.spawn([&] {
          level2.fetch_add(1, std::memory_order_relaxed);
          TaskScope leaf;
          for (int k = 0; k < 8; ++k)
            leaf.spawn([&] {
              level3.fetch_add(1, std::memory_order_relaxed);
            });
          leaf.wait();
        });
      inner.wait();
    });
  scope.wait();
  EXPECT_EQ(level1.load(), 8);
  EXPECT_EQ(level2.load(), 64);
  EXPECT_EQ(level3.load(), 512);
}

TEST(TaskScope, AdmissionCapBoundsConcurrency) {
  // cap = 2: however many workers the executor owns, at most two threads
  // may be inside this scope tree at once.
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  TaskScope scope(/*max_parallelism=*/2);
  for (int i = 0; i < 24; ++i)
    scope.spawn([&] {
      const int now = running.fetch_add(1, std::memory_order_acq_rel) + 1;
      int seen = peak.load(std::memory_order_relaxed);
      while (now > seen &&
             !peak.compare_exchange_weak(seen, now, std::memory_order_acq_rel)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      running.fetch_sub(1, std::memory_order_acq_rel);
    });
  scope.wait();
  EXPECT_LE(peak.load(), 2);
  EXPECT_GE(peak.load(), 1);
}

TEST(TaskScope, FirstExceptionPropagatesAndSkipsUnstartedTasks) {
  // cap = 1 serialises execution in spawn (FIFO) order: tasks 0..3 run,
  // task 3 throws, tasks 4+ are skipped but still counted complete.
  std::atomic<int> executed{0};
  TaskScope scope(/*max_parallelism=*/1);
  for (int i = 0; i < 16; ++i)
    scope.spawn([&, i] {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (i == 3) throw std::runtime_error("boom");
    });
  EXPECT_THROW(scope.wait(), std::runtime_error);
  EXPECT_EQ(executed.load(), 4);

  // The scope and executor survive: a later batch runs normally.
  std::atomic<int> after{0};
  TaskScope again;
  for (int i = 0; i < 8; ++i)
    again.spawn([&] { after.fetch_add(1, std::memory_order_relaxed); });
  again.wait();
  EXPECT_EQ(after.load(), 8);
}

TEST(TaskScope, ExceptionInNestedScopePropagatesThroughParent) {
  std::atomic<int> outer_done{0};
  TaskScope scope;
  scope.spawn([&] {
    TaskScope inner;
    inner.spawn([] { throw std::runtime_error("nested boom"); });
    inner.wait();  // rethrows -> this task fails -> scope.wait rethrows
    outer_done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_THROW(scope.wait(), std::runtime_error);
  EXPECT_EQ(outer_done.load(), 0);
}

// (The deprecated parallel_for wrapper and its legacy-contract test were
// removed on schedule; TaskScope spawn/wait is the only submission path.)

TEST(Executor, TimingSlotsAreStableAndBounded) {
  Executor& executor = Executor::instance();
  // The calling (non-worker) thread maps to the shared external slot.
  EXPECT_EQ(Executor::timing_slot(), executor.worker_count());
  // Tasks run either on a worker (slot < worker_count) or on the caller.
  std::atomic<bool> in_range{true};
  TaskScope scope;
  for (int i = 0; i < 32; ++i)
    scope.spawn([&] {
      if (Executor::timing_slot() > executor.worker_count())
        in_range.store(false, std::memory_order_relaxed);
    });
  scope.wait();
  EXPECT_TRUE(in_range.load());
}

TEST(Executor, ResolveThreadCountHandlesZeroAndClamping) {
  const std::uint32_t hw = Executor::hardware_threads();
  ASSERT_GE(hw, 1u);
  bool clamped = true;
  EXPECT_EQ(resolve_thread_count(0, &clamped), hw);
  EXPECT_FALSE(clamped);
  EXPECT_EQ(resolve_thread_count(1, &clamped), 1u);
  EXPECT_FALSE(clamped);
  EXPECT_EQ(resolve_thread_count(hw, &clamped), hw);
  EXPECT_FALSE(clamped);
  EXPECT_EQ(resolve_thread_count(static_cast<std::uint64_t>(hw) + 7, &clamped),
            hw);
  EXPECT_TRUE(clamped);
  EXPECT_EQ(resolve_thread_count(hw + 1), hw);  // null clamped is fine
}

TEST(Executor, PinningIsBestEffortAndReported) {
  Executor& executor = Executor::instance();
  if (!Executor::pin_supported()) {
    EXPECT_FALSE(executor.set_pinning(true));
    EXPECT_FALSE(Executor::pinning_enabled());
    return;
  }
  const bool applied = executor.set_pinning(true);
  EXPECT_EQ(Executor::pinning_enabled(), applied);
  // Pinned or not, work still completes.
  std::atomic<int> count{0};
  TaskScope scope;
  for (int i = 0; i < 16; ++i)
    scope.spawn([&] { count.fetch_add(1, std::memory_order_relaxed); });
  scope.wait();
  EXPECT_EQ(count.load(), 16);
  executor.set_pinning(false);
  EXPECT_FALSE(Executor::pinning_enabled());
}

}  // namespace
}  // namespace ewalk
