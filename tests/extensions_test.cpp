// Tests for the extension modules: evenization transforms (Section 5's open
// question), the multi-walker E-process, and coverage time-series.
#include <gtest/gtest.h>

#include <cmath>

#include "covertime/timeseries.hpp"
#include "engine/driver.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "walks/eprocess.hpp"
#include "walks/multi_eprocess.hpp"
#include "walks/rules.hpp"
#include "walks/srw.hpp"

namespace ewalk {
namespace {

// ---- Evenization -----------------------------------------------------------

TEST(Evenize, DoubleEdgesMakesAllDegreesEven) {
  Rng rng(1);
  const Graph g = random_regular_connected(60, 3, rng);
  const Graph d = double_edges(g);
  EXPECT_EQ(d.num_vertices(), g.num_vertices());
  EXPECT_EQ(d.num_edges(), 2 * g.num_edges());
  EXPECT_TRUE(d.all_degrees_even());
  EXPECT_TRUE(d.is_regular(6));
  EXPECT_TRUE(d.has_parallel_edges());
}

TEST(Evenize, MatchingMakesAllDegreesEven) {
  Rng rng(2);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = random_regular_connected(50, 3, rng);
    const Graph e = evenize_by_matching(g);
    EXPECT_EQ(e.num_vertices(), g.num_vertices());
    EXPECT_TRUE(e.all_degrees_even());
    EXPECT_GE(e.num_edges(), g.num_edges());
    // The added T-join is small for graphs with short odd-vertex distances.
    EXPECT_LE(e.num_edges(), 3 * g.num_edges());
  }
}

TEST(Evenize, MatchingOnAlreadyEvenGraphIsIdentity) {
  const Graph g = torus_2d(4, 4);
  const Graph e = evenize_by_matching(g);
  EXPECT_EQ(e.num_edges(), g.num_edges());
}

TEST(Evenize, PathGetsItsEndpointsFixed) {
  // P_4 has odd vertices {0, 3} at distance 3 plus the two interior even
  // ones; the greedy T-join duplicates the whole path.
  const Graph g = path_graph(4);
  const Graph e = evenize_by_matching(g);
  EXPECT_TRUE(e.all_degrees_even());
  EXPECT_EQ(e.num_edges(), 6u);
}

TEST(Evenize, DisconnectedComponentsPairWithin) {
  // By the handshake lemma every component has an even number of odd
  // vertices, so pairing always succeeds within components — even in a
  // disconnected graph.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph e = evenize_by_matching(b.build());
  EXPECT_TRUE(e.all_degrees_even());
  EXPECT_EQ(e.num_edges(), 4u);  // each single edge doubled
}

TEST(Evenize, ObservationTenHoldsOnEvenizedOddGraph) {
  // The point of the exercise: the blue-phase parity argument applies to
  // evenized 3-regular graphs.
  Rng rng(3);
  const Graph g = random_regular_connected(40, 3, rng);
  for (const Graph& fixed : {double_edges(g), evenize_by_matching(g)}) {
    ASSERT_TRUE(fixed.all_degrees_even());
    UniformRule rule;
    EProcess walk(fixed, 0, rule, EProcessOptions{.record_phases = true});
    ASSERT_TRUE(run_until_edge_cover(walk, rng, 1u << 24));
    const auto& phases = walk.phases();
    for (std::size_t i = 0; i + 1 < phases.size(); ++i) {
      if (phases[i].color != StepColor::kBlue) continue;
      EXPECT_EQ(phases[i].start_vertex, phases[i].end_vertex);
    }
  }
}

// ---- Multi-walker E-process --------------------------------------------------

TEST(MultiWalker, SingleWalkerMatchesEProcessSemantics) {
  Rng grng(4);
  const Graph g = random_regular_connected(80, 4, grng);
  UniformRule rule;
  MultiEProcess multi(g, {0}, rule);
  Rng rng(5);
  ASSERT_TRUE(run_until_edge_cover(multi, rng, 1u << 24));
  EXPECT_EQ(multi.blue_steps(), static_cast<std::uint64_t>(g.num_edges()));
  EXPECT_EQ(multi.steps(), multi.blue_steps() + multi.red_steps());
}

TEST(MultiWalker, AllWalkersStartCovered) {
  const Graph g = cycle_graph(20);
  UniformRule rule;
  MultiEProcess multi(g, {0, 5, 10}, rule);
  EXPECT_EQ(multi.cover().vertices_covered(), 3u);
  EXPECT_EQ(multi.num_walkers(), 3u);
}

TEST(MultiWalker, BlueStepsStillBoundedByM) {
  Rng grng(6);
  const Graph g = random_regular_connected(60, 4, grng);
  UniformRule rule;
  MultiEProcess multi(g, {0, 20, 40}, rule);
  Rng rng(7);
  ASSERT_TRUE(run_until_edge_cover(multi, rng, 1u << 24));
  EXPECT_EQ(multi.blue_steps(), static_cast<std::uint64_t>(g.num_edges()));
}

TEST(MultiWalker, BlueDegreeConsistency) {
  Rng grng(8);
  const Graph g = random_regular_connected(40, 4, grng);
  UniformRule rule;
  MultiEProcess multi(g, {0, 10}, rule);
  Rng rng(9);
  for (int burst = 0; burst < 20 && !multi.cover().all_edges_covered(); ++burst) {
    for (int i = 0; i < 37 && !multi.cover().all_edges_covered(); ++i) multi.step(rng);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      std::uint32_t expected = 0;
      for (const Slot& s : g.slots(v))
        if (!multi.cover().edge_visited(s.edge)) ++expected;
      ASSERT_EQ(multi.blue_degree(v), expected);
    }
  }
}

TEST(MultiWalker, MoreWalkersNeverMuchWorse) {
  // System-step cover time with k walkers should not regress beyond small
  // constants relative to one walker (it usually improves the red phases).
  Rng grng(10);
  const Graph g = random_regular_connected(600, 4, grng);
  const auto cover_with = [&](std::vector<Vertex> starts, std::uint64_t seed) {
    UniformRule rule;
    MultiEProcess multi(g, std::move(starts), rule);
    Rng rng(seed);
    EXPECT_TRUE(run_until_vertex_cover(multi, rng, 1u << 26));
    return multi.cover().vertex_cover_step();
  };
  const auto c1 = cover_with({0}, 11);
  const auto c4 = cover_with({0, 150, 300, 450}, 12);
  EXPECT_LT(static_cast<double>(c4), 3.0 * static_cast<double>(c1));
}

TEST(MultiWalker, RejectsBadConfig) {
  const Graph g = cycle_graph(5);
  UniformRule rule;
  EXPECT_THROW(MultiEProcess(g, {}, rule), std::invalid_argument);
  EXPECT_THROW(MultiEProcess(g, {9}, rule), std::invalid_argument);
}

// ---- Coverage time-series ------------------------------------------------------

TEST(Timeseries, RecordsMonotoneCoverage) {
  Rng grng(13);
  const Graph g = random_regular_connected(200, 4, grng);
  UniformRule rule;
  EProcess walk(g, 0, rule);
  CoverageRecorder recorder(10);
  Rng rng(14);
  while (!walk.cover().all_vertices_covered()) {
    walk.step(rng);
    recorder.record(walk);
  }
  const auto& pts = recorder.points();
  ASSERT_GT(pts.size(), 5u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].step, pts[i - 1].step);
    EXPECT_GE(pts[i].vertices_covered, pts[i - 1].vertices_covered);
    EXPECT_GE(pts[i].edges_covered, pts[i - 1].edges_covered);
  }
}

TEST(Timeseries, FractionQueryInterpolates) {
  Rng grng(15);
  const Graph g = random_regular_connected(300, 4, grng);
  UniformRule rule;
  EProcess walk(g, 0, rule);
  CoverageRecorder recorder(5);
  Rng rng(16);
  while (!walk.cover().all_vertices_covered()) {
    walk.step(rng);
    recorder.record(walk);
  }
  const auto t50 = recorder.step_at_vertex_fraction(0.5, g.num_vertices());
  const auto t90 = recorder.step_at_vertex_fraction(0.9, g.num_vertices());
  const auto t100 = recorder.step_at_vertex_fraction(1.0, g.num_vertices());
  EXPECT_LT(t50, t90);
  EXPECT_LE(t90, t100);
  // E-process on an even expander covers near-linearly: t50 ~ half of t100
  // within generous slack.
  EXPECT_LT(t50, 0.8 * t100);
}

TEST(Timeseries, UncoveredAreaOrdersProcesses) {
  // The E-process covers faster early than the SRW; its uncovered-area
  // metric over a common horizon must be smaller.
  Rng grng(17);
  const Graph g = random_regular_connected(400, 4, grng);
  const std::uint64_t horizon = 6 * g.num_vertices();

  UniformRule rule;
  EProcess ep(g, 0, rule);
  CoverageRecorder rec_ep(20);
  Rng r1(18);
  while (ep.steps() < horizon) {
    ep.step(r1);
    rec_ep.record(ep);
  }

  // SRW via RWC(1)-free route: use a plain SimpleRandomWalk clone through
  // MultiEProcess is wrong; use the real SRW.
  SimpleRandomWalk srw(g, 0);
  CoverageRecorder rec_srw(20);
  Rng r2(19);
  while (srw.steps() < horizon) {
    srw.step(r2);
    rec_srw.record(srw);
  }
  EXPECT_LT(rec_ep.uncovered_area(g.num_vertices()),
            rec_srw.uncovered_area(g.num_vertices()));
}

TEST(Timeseries, ZeroStrideClampsToOne) {
  CoverageRecorder recorder(0);
  const Graph g = cycle_graph(4);
  UniformRule rule;
  EProcess walk(g, 0, rule);
  Rng rng(20);
  walk.step(rng);
  recorder.record(walk);
  EXPECT_EQ(recorder.points().size(), 1u);
}

}  // namespace
}  // namespace ewalk
