// Tests for graph generators, including parameterized sweeps over the
// random families (Steger–Wormald regular graphs are the paper's substrate).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include "engine/adapters.hpp"
#include "engine/driver.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/union_find.hpp"
#include "walks/rules.hpp"

namespace ewalk {
namespace {

TEST(Deterministic, CycleGraph) {
  const Graph g = cycle_graph(7);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 7u);
  EXPECT_TRUE(g.is_regular(2));
  EXPECT_TRUE(is_connected(g));
  EXPECT_THROW(cycle_graph(2), std::invalid_argument);
}

TEST(Deterministic, CompleteGraph) {
  const Graph g = complete_graph(6);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_TRUE(g.is_regular(5));
  EXPECT_TRUE(g.is_simple());
}

TEST(Deterministic, CompleteBipartite) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_EQ(g.degree(3), 3u);
}

TEST(Deterministic, Petersen) {
  const Graph g = petersen_graph();
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_TRUE(g.is_regular(3));
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(g.is_simple());
}

TEST(Deterministic, Hypercube) {
  const Graph g = hypercube(5);
  EXPECT_EQ(g.num_vertices(), 32u);
  EXPECT_EQ(g.num_edges(), 80u);
  EXPECT_TRUE(g.is_regular(5));
  EXPECT_TRUE(is_connected(g));
}

TEST(Deterministic, TorusIsFourRegularEvenDegree) {
  const Graph g = torus_2d(5, 4);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_TRUE(g.is_regular(4));
  EXPECT_TRUE(g.all_degrees_even());
  EXPECT_TRUE(is_connected(g));
}

TEST(Deterministic, GridCornersAndInterior) {
  const Graph g = grid_2d(4, 3);
  EXPECT_EQ(g.degree(0), 2u);       // corner
  EXPECT_EQ(g.degree(5), 4u);       // interior (x=1,y=1)
  EXPECT_EQ(g.num_edges(), 3u * 3 + 4u * 2);  // horizontal + vertical
}

TEST(Deterministic, LollipopAndBarbell) {
  const Graph l = lollipop(5, 3);
  EXPECT_EQ(l.num_vertices(), 8u);
  EXPECT_EQ(l.num_edges(), 10u + 3u);
  EXPECT_TRUE(is_connected(l));
  EXPECT_EQ(l.degree(7), 1u);  // path tip

  const Graph b = barbell(4, 2);
  EXPECT_EQ(b.num_vertices(), 10u);
  EXPECT_TRUE(is_connected(b));
}

TEST(Deterministic, CirculantEvenDegree) {
  const Graph g = circulant(12, {1, 3});
  EXPECT_TRUE(g.is_regular(4));
  EXPECT_TRUE(g.all_degrees_even());
  EXPECT_TRUE(is_connected(g));
  EXPECT_THROW(circulant(10, {5}), std::invalid_argument);  // n/2 offset
  EXPECT_THROW(circulant(10, {0}), std::invalid_argument);
}

TEST(Deterministic, BinaryTree) {
  const Graph g = binary_tree(4);
  EXPECT_EQ(g.num_vertices(), 15u);
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Deterministic, StarGraph) {
  const Graph g = star_graph(6);
  EXPECT_EQ(g.degree(0), 5u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Deterministic, MargulisExpander) {
  const Graph g = margulis_expander(12);
  EXPECT_EQ(g.num_vertices(), 144u);
  EXPECT_TRUE(g.is_regular(8));       // loops count twice
  EXPECT_TRUE(g.all_degrees_even());
  EXPECT_TRUE(is_connected(g));
  EXPECT_THROW(margulis_expander(1), std::invalid_argument);
}

TEST(Deterministic, MargulisIsDeterministic) {
  const Graph a = margulis_expander(9);
  const Graph b = margulis_expander(9);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.endpoints(e).u, b.endpoints(e).u);
    EXPECT_EQ(a.endpoints(e).v, b.endpoints(e).v);
  }
}

// ---- Random regular graphs (paper's generator) ---------------------------

class RandomRegularTest
    : public ::testing::TestWithParam<std::tuple<Vertex, std::uint32_t, std::uint64_t>> {};

TEST_P(RandomRegularTest, ProducesSimpleRegularGraph) {
  const auto [n, r, seed] = GetParam();
  Rng rng(seed);
  const Graph g = random_regular(n, r, rng);
  EXPECT_EQ(g.num_vertices(), n);
  EXPECT_EQ(g.num_edges(), static_cast<EdgeId>(static_cast<std::uint64_t>(n) * r / 2));
  EXPECT_TRUE(g.is_regular(r));
  EXPECT_TRUE(g.is_simple());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomRegularTest,
    ::testing::Combine(::testing::Values<Vertex>(10, 50, 200, 1000),
                       ::testing::Values<std::uint32_t>(3, 4, 5, 6, 7),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(RandomRegular, ConnectedVariantIsConnected) {
  Rng rng(77);
  for (int i = 0; i < 5; ++i) {
    const Graph g = random_regular_connected(100, 4, rng);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(RandomRegular, RejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW(random_regular(5, 3, rng), std::invalid_argument);   // odd n*r
  EXPECT_THROW(random_regular(4, 4, rng), std::invalid_argument);   // r >= n
}

TEST(RandomRegular, DifferentSeedsGiveDifferentGraphs) {
  Rng a(100), b(200);
  const Graph ga = random_regular(60, 4, a);
  const Graph gb = random_regular(60, 4, b);
  // Compare edge sets via sorted endpoint keys.
  auto key = [](const Graph& g) {
    std::vector<std::uint64_t> ks;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto [u, v] = g.endpoints(e);
      ks.push_back((static_cast<std::uint64_t>(std::min(u, v)) << 32) | std::max(u, v));
    }
    std::sort(ks.begin(), ks.end());
    return ks;
  };
  EXPECT_NE(key(ga), key(gb));
}

// ---- Pairing model + edge-swap repair -------------------------------------
//
// random_regular_pairing is the sweep subsystem's fast generator; it must
// satisfy exactly the invariants the Steger–Wormald reference does (simple,
// r-regular, n*r/2 edges) and, since the edge-swap repair perturbs the
// distribution, a KS-style check below cross-validates downstream cover-time
// samples against the reference generator.

class RandomRegularPairingTest
    : public ::testing::TestWithParam<std::tuple<Vertex, std::uint32_t, std::uint64_t>> {};

TEST_P(RandomRegularPairingTest, MatchesStegerWormaldDegreeInvariants) {
  const auto [n, r, seed] = GetParam();
  Rng rng(seed);
  const Graph g = random_regular_pairing(n, r, rng);
  EXPECT_EQ(g.num_vertices(), n);
  EXPECT_EQ(g.num_edges(), static_cast<EdgeId>(static_cast<std::uint64_t>(n) * r / 2));
  EXPECT_TRUE(g.is_regular(r));
  EXPECT_TRUE(g.is_simple());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomRegularPairingTest,
    ::testing::Combine(::testing::Values<Vertex>(10, 50, 200, 1000),
                       ::testing::Values<std::uint32_t>(3, 4, 5, 6, 7),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(RandomRegularPairing, ConnectedVariantIsConnected) {
  Rng rng(77);
  for (int i = 0; i < 5; ++i) {
    const Graph g = random_regular_pairing_connected(100, 3, rng);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(RandomRegularPairing, RejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW(random_regular_pairing(5, 3, rng), std::invalid_argument);  // odd n*r
  EXPECT_THROW(random_regular_pairing(4, 4, rng), std::invalid_argument);  // r >= n
}

TEST(RandomRegularPairing, DeterministicGivenSeedDistinctAcrossSeeds) {
  const auto edges = [](std::uint64_t seed) {
    Rng rng(seed);
    const Graph g = random_regular_pairing(80, 4, rng);
    std::vector<std::uint64_t> ks;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto [u, v] = g.endpoints(e);
      ks.push_back((static_cast<std::uint64_t>(std::min(u, v)) << 32) |
                   std::max(u, v));
    }
    std::sort(ks.begin(), ks.end());
    return ks;
  };
  EXPECT_EQ(edges(42), edges(42));
  EXPECT_NE(edges(42), edges(43));
}

TEST(RandomRegularPairing, HandlesDenseDegreesWithoutRestartThrash) {
  // r this close to n makes restart-based generation (expected restarts
  // e^{Θ(r²)} in the plain pairing model) hopeless; the swap repair must
  // still terminate and produce a simple regular graph.
  Rng rng(9);
  const Graph g = random_regular_pairing(60, 40, rng);
  EXPECT_TRUE(g.is_regular(40));
  EXPECT_TRUE(g.is_simple());
}

// Two-sample Kolmogorov–Smirnov statistic sup_x |F_a(x) - F_b(x)|.
double ks_statistic(std::vector<double> a, std::vector<double> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] <= b[j])
      ++i;
    else
      ++j;
    d = std::max(d, std::abs(static_cast<double>(i) / a.size() -
                             static_cast<double>(j) / b.size()));
  }
  return d;
}

TEST(RandomRegularPairing, CoverTimeSamplesAgreeWithStegerWormaldKS) {
  // Downstream cross-validation: E-process vertex cover times on 3-regular
  // n=200 graphs drawn from each generator must come from indistinguishable
  // distributions. Two-sample KS with 50 trials per side: the alpha = 0.001
  // critical value is 1.95 * sqrt(2/50) ~ 0.39 (fixed seeds keep the check
  // deterministic; the margin guards the repair step against gross bias).
  const std::uint32_t kTrials = 50;
  const auto sample = [&](bool pairing, std::uint64_t seed) {
    std::vector<double> out;
    std::vector<Rng> streams = derive_streams(seed, kTrials);
    for (Rng& rng : streams) {
      const Graph g = pairing ? random_regular_pairing_connected(200, 3, rng)
                              : random_regular_connected(200, 3, rng);
      EProcessHandle walk(g, 0, std::make_unique<UniformRule>());
      EXPECT_TRUE(run_until_vertex_cover(walk, rng, 1u << 24));
      out.push_back(static_cast<double>(walk.cover().vertex_cover_step()));
    }
    return out;
  };
  const double d = ks_statistic(sample(true, 11), sample(false, 12));
  EXPECT_LT(d, 0.39) << "cover-time distributions diverged between the "
                        "pairing and Steger-Wormald generators";
}

// ---- Configuration model --------------------------------------------------

TEST(ConfigurationModel, SimpleRespectsDegreeSequence) {
  Rng rng(5);
  const std::vector<std::uint32_t> degrees{4, 4, 4, 4, 2, 2, 2, 2, 2, 2};
  const Graph g = configuration_model(degrees, rng, /*simple=*/true);
  EXPECT_TRUE(g.is_simple());
  for (Vertex v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(g.degree(v), degrees[v]);
}

TEST(ConfigurationModel, MultigraphKeepsDegrees) {
  Rng rng(6);
  const std::vector<std::uint32_t> degrees{6, 6, 4, 4, 4};
  const Graph g = configuration_model(degrees, rng, /*simple=*/false);
  for (Vertex v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(g.degree(v), degrees[v]);
}

TEST(ConfigurationModel, RejectsOddSum) {
  Rng rng(7);
  EXPECT_THROW(configuration_model({3, 2}, rng, false), std::invalid_argument);
}

// ---- Hamiltonian cycle union ----------------------------------------------

class HamUnionTest
    : public ::testing::TestWithParam<std::tuple<Vertex, std::uint32_t, std::uint64_t>> {};

TEST_P(HamUnionTest, EvenRegularConnectedSimple) {
  const auto [n, k, seed] = GetParam();
  Rng rng(seed);
  const Graph g = hamiltonian_cycle_union(n, k, rng);
  EXPECT_TRUE(g.is_regular(2 * k));
  EXPECT_TRUE(g.all_degrees_even());
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(g.is_simple());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HamUnionTest,
    ::testing::Combine(::testing::Values<Vertex>(20, 100, 500),
                       ::testing::Values<std::uint32_t>(1, 2, 3),
                       ::testing::Values<std::uint64_t>(11, 12)));

// ---- Erdős–Rényi and geometric --------------------------------------------

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  Rng rng(8);
  const Vertex n = 500;
  const double p = 0.02;
  const Graph g = erdos_renyi(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_GT(g.num_edges(), expected * 0.8);
  EXPECT_LT(g.num_edges(), expected * 1.2);
  EXPECT_TRUE(g.is_simple());
}

TEST(ErdosRenyi, ExtremeProbabilities) {
  Rng rng(9);
  EXPECT_EQ(erdos_renyi(10, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(erdos_renyi(10, 1.0, rng).num_edges(), 45u);
}

TEST(RandomGeometric, MatchesBruteForce) {
  Rng rng(10);
  const Graph g = random_geometric(200, 0.15, rng);
  EXPECT_TRUE(g.is_simple());
  // With radius 0.15 on 200 points expect roughly pi*r^2*n^2/2 edges (minus
  // boundary effects) — sanity-band check.
  const double expected = 3.14159 * 0.15 * 0.15 * 200.0 * 199.0 / 2.0;
  EXPECT_GT(g.num_edges(), expected * 0.5);
  EXPECT_LT(g.num_edges(), expected * 1.2);
}

TEST(RandomGeometric, LargeRadiusIsComplete) {
  Rng rng(11);
  const Graph g = random_geometric(30, 2.0, rng);
  EXPECT_EQ(g.num_edges(), 30u * 29 / 2);
}

// ---- Generation ↔ connectivity contract -----------------------------------
//
// The connected variants must decide retries with a union-find over the
// edge list (see docs/ARCHITECTURE.md): edge_list_connected has to agree
// with BFS is_connected on every multigraph, and the generators must never
// call is_connected themselves — pinned here through the BFS counter.

TEST(EdgeListConnected, AgreesWithBfsOnAdversarialInputs) {
  struct Case {
    const char* what;
    Vertex n;
    std::vector<Endpoints> edges;
  };
  const std::vector<Case> cases = {
      {"empty graph", 0, {}},
      {"single vertex, no edges", 1, {}},
      {"single vertex, self-loop", 1, {{0, 0}}},
      {"isolated vertex", 2, {}},
      {"one edge", 2, {{0, 1}}},
      {"self-loops only (disconnected)", 3, {{0, 0}, {1, 1}, {2, 2}}},
      {"parallel edges, connected", 3, {{0, 1}, {0, 1}, {1, 2}}},
      {"parallel edges + loop, isolated third", 3, {{0, 1}, {0, 1}, {0, 0}}},
      {"triangle plus isolated", 4, {{0, 1}, {1, 2}, {2, 0}}},
      {"two components, loops and multi-edges",
       6,
       {{0, 1}, {1, 2}, {2, 0}, {2, 2}, {3, 4}, {4, 5}, {5, 3}, {3, 4}}},
      {"path hitting every vertex", 5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}},
  };
  for (const Case& c : cases) {
    const Graph g = Graph::from_edges(c.n, std::vector<Endpoints>(c.edges));
    EXPECT_EQ(edge_list_connected(c.n, c.edges), is_connected(g)) << c.what;
  }
}

TEST(EdgeListConnected, AgreesWithBfsOnBarelyDisconnectedRegular) {
  // Two disjoint random 4-regular halves: r-regular overall, min degree
  // fine, yet disconnected — exactly the instance a degree-based or
  // min-degree shortcut would misclassify.
  Rng rng(5);
  const Graph a = random_regular_pairing(50, 4, rng);
  const Graph b = random_regular_pairing(50, 4, rng);
  std::vector<Endpoints> edges;
  for (EdgeId e = 0; e < a.num_edges(); ++e) edges.push_back(a.endpoints(e));
  for (EdgeId e = 0; e < b.num_edges(); ++e) {
    const auto [u, v] = b.endpoints(e);
    edges.push_back({u + 50, v + 50});
  }
  EXPECT_FALSE(edge_list_connected(100, edges));
  // One bridge makes it connected again.
  edges.push_back({0, 50});
  EXPECT_TRUE(edge_list_connected(100, edges));
  const Graph joined = Graph::from_edges(100, std::move(edges));
  EXPECT_TRUE(is_connected(joined));
}

TEST(GenerationCounters, ConnectedGeneratorsNeverCallBfs) {
  Rng rng(123);
  reset_generation_counters();
  const std::uint64_t bfs_before = connectivity_bfs_calls();
  for (int i = 0; i < 3; ++i) {
    const Graph g = random_regular_pairing_connected(300, 3, rng);
    EXPECT_TRUE(g.is_regular(3));
  }
  for (int i = 0; i < 3; ++i) {
    const Graph g = random_regular_connected(200, 4, rng);
    EXPECT_TRUE(g.is_regular(4));
  }
  EXPECT_EQ(connectivity_bfs_calls(), bfs_before)
      << "generation fell back to a BFS connectivity check";
  const GenerationCounters gc = generation_counters();
  EXPECT_GE(gc.pairing_attempts, 3u);
  EXPECT_GE(gc.sw_attempts, 3u);
}

TEST(GenerationCounters, ConnectedVariantsRejectUncoverableDegreeZero) {
  // r = 0 with n > 1 can never be connected; the connected variants throw
  // instead of looping forever (the unconstrained ones still accept it).
  Rng rng(1);
  EXPECT_THROW(random_regular_connected(4, 0, rng), std::invalid_argument);
  EXPECT_THROW(random_regular_pairing_connected(4, 0, rng),
               std::invalid_argument);
  EXPECT_EQ(random_regular(4, 0, rng).num_edges(), 0u);
}

}  // namespace
}  // namespace ewalk
