// Tests for the graph core: construction, multigraph semantics, CSR
// integrity, basic algorithms, and serialisation.
#include <gtest/gtest.h>

#include <span>
#include <sstream>
#include <utility>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace ewalk {
namespace {

Graph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  return b.build();
}

TEST(Graph, TriangleBasics) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  for (Vertex v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.all_degrees_even());
  EXPECT_TRUE(g.is_regular(2));
  EXPECT_TRUE(g.is_simple());
}

TEST(Graph, SlotsConsistentWithEndpoints) {
  const Graph g = triangle();
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (const Slot& s : g.slots(v)) {
      const auto [a, b] = g.endpoints(s.edge);
      EXPECT_TRUE((a == v && b == s.neighbor) || (b == v && a == s.neighbor));
      EXPECT_EQ(g.other_endpoint(s.edge, v), s.neighbor);
    }
  }
}

TEST(Graph, SlotIndexingRoundTrip) {
  const Graph g = complete_graph(6);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (std::uint32_t k = 0; k < g.degree(v); ++k) {
      EXPECT_EQ(g.slot_index(v, k), g.slot_offset(v) + k);
      const Slot& s = g.slot(v, k);
      EXPECT_LT(s.neighbor, g.num_vertices());
      EXPECT_LT(s.edge, g.num_edges());
    }
  }
}

TEST(Graph, SelfLoopCountsTwice) {
  GraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_TRUE(g.has_self_loops());
  EXPECT_FALSE(g.is_simple());
  // The loop occupies two slots at vertex 0 with the same edge id.
  int loop_slots = 0;
  for (const Slot& s : g.slots(0))
    if (s.neighbor == 0) ++loop_slots;
  EXPECT_EQ(loop_slots, 2);
}

TEST(Graph, ParallelEdgesDetected) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_TRUE(g.has_parallel_edges());
  EXPECT_FALSE(g.is_simple());
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_TRUE(g.all_degrees_even());
}

TEST(Graph, OddDegreeFlag) {
  const Graph g = path_graph(3);
  EXPECT_FALSE(g.all_degrees_even());
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Graph, StationaryProbabilitySumsToOne) {
  const Graph g = lollipop(5, 4);
  double total = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) total += g.stationary_probability(v);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Graph, FromEdgesRejectsOutOfRange) {
  const Endpoints bad[] = {{0, 5}};
  EXPECT_THROW(Graph::from_edges(3, bad), std::invalid_argument);
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), std::invalid_argument);
}

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::from_edges(0, std::vector<Endpoints>{});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Graph, MoveBuildMatchesCopyBuildExactly) {
  // The memory-lean move overload must produce a bit-identical CSR to the
  // span (copying) overload: same slot order, same edge ids, same flags —
  // walks replay the same trajectories whichever path built the graph.
  Rng rng(7);
  const Graph ref = random_regular_pairing(200, 5, rng);
  std::vector<Endpoints> edges;
  for (EdgeId e = 0; e < ref.num_edges(); ++e) edges.push_back(ref.endpoints(e));

  const Graph copied =
      Graph::from_edges(200, std::span<const Endpoints>(edges));
  const Graph moved = Graph::from_edges(200, std::move(edges));
  ASSERT_EQ(copied.num_edges(), moved.num_edges());
  for (EdgeId e = 0; e < copied.num_edges(); ++e) {
    const auto [cu, cv] = copied.endpoints(e);
    const auto [mu, mv] = moved.endpoints(e);
    EXPECT_EQ(cu, mu);
    EXPECT_EQ(cv, mv);
  }
  for (Vertex v = 0; v < copied.num_vertices(); ++v) {
    ASSERT_EQ(copied.degree(v), moved.degree(v));
    for (std::uint32_t k = 0; k < copied.degree(v); ++k) {
      EXPECT_EQ(copied.slot(v, k).neighbor, moved.slot(v, k).neighbor);
      EXPECT_EQ(copied.slot(v, k).edge, moved.slot(v, k).edge);
    }
  }
  EXPECT_EQ(copied.is_simple(), moved.is_simple());
}

TEST(Graph, MoveBuildCensusHandlesLoopsAndParallels) {
  // The parallel-edge census is folded into the slot scan; self-loops (twin
  // adjacent slots), duplicate loops, and k-fold parallel edges must all be
  // classified exactly as the builder path used to.
  std::vector<Endpoints> edges = {{0, 1}, {0, 1}, {0, 1},  // 3-fold parallel
                                  {1, 1}, {1, 1},          // duplicate loops
                                  {2, 3}, {3, 2},          // parallel, reversed
                                  {4, 4}};                 // lone loop
  const Graph g = Graph::from_edges(5, std::move(edges));
  EXPECT_TRUE(g.has_self_loops());
  EXPECT_TRUE(g.has_parallel_edges());
  EXPECT_FALSE(g.is_simple());
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 7u);  // 3 parallels + two loops counting twice
  EXPECT_EQ(g.degree(4), 2u);

  const Graph simple = Graph::from_edges(
      3, std::vector<Endpoints>{{0, 1}, {1, 2}, {2, 0}});
  EXPECT_TRUE(simple.is_simple());
}

TEST(GraphBuilder, BuildTwiceFromLvalueThenMoveFromRvalue) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Graph first = b.build();   // lvalue build copies: builder reusable
  const Graph second = b.build();
  EXPECT_EQ(first.num_edges(), second.num_edges());
  const Graph last = std::move(b).build();  // rvalue build adopts the edges
  EXPECT_EQ(last.num_edges(), 2u);
  EXPECT_EQ(last.degree(1), 2u);
}

TEST(Algorithms, BfsDistancesOnPath) {
  const Graph g = path_graph(5);
  const auto d = bfs_distances(g, 0);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(Algorithms, BfsUnreachable) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_FALSE(is_connected(g));
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count, 2u);
  EXPECT_EQ(comps.id[0], comps.id[1]);
  EXPECT_NE(comps.id[0], comps.id[2]);
}

TEST(Algorithms, DiameterKnownValues) {
  EXPECT_EQ(diameter(path_graph(6)), 5u);
  EXPECT_EQ(diameter(cycle_graph(8)), 4u);
  EXPECT_EQ(diameter(complete_graph(5)), 1u);
  EXPECT_EQ(diameter(hypercube(4)), 4u);
  EXPECT_EQ(diameter(petersen_graph()), 2u);
}

TEST(Algorithms, EccentricityOfPathEnd) {
  EXPECT_EQ(eccentricity(path_graph(7), 0), 6u);
  EXPECT_EQ(eccentricity(path_graph(7), 3), 3u);
}

TEST(Algorithms, DegreeSequenceSorted) {
  const Graph g = star_graph(5);
  const auto seq = degree_sequence(g);
  EXPECT_EQ(seq[0], 4u);
  for (std::size_t i = 1; i < seq.size(); ++i) EXPECT_EQ(seq[i], 1u);
}

TEST(Io, EdgeListRoundTrip) {
  const Graph g = petersen_graph();
  std::stringstream ss;
  write_edge_list(g, ss);
  const Graph h = read_edge_list(ss);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(degree_sequence(h), degree_sequence(g));
  EXPECT_EQ(diameter(h), diameter(g));
}

TEST(Io, RejectsTruncatedInput) {
  std::stringstream ss("3 2\n0 1\n");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
}

TEST(Io, DotContainsEdges) {
  std::stringstream ss;
  write_dot(triangle(), ss, "T");
  const std::string out = ss.str();
  EXPECT_NE(out.find("graph T"), std::string::npos);
  EXPECT_NE(out.find("0 -- 1"), std::string::npos);
}

}  // namespace
}  // namespace ewalk
