// Tests for the graph core: construction, multigraph semantics, CSR
// integrity, basic algorithms, and serialisation.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace ewalk {
namespace {

Graph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  return b.build();
}

TEST(Graph, TriangleBasics) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  for (Vertex v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.all_degrees_even());
  EXPECT_TRUE(g.is_regular(2));
  EXPECT_TRUE(g.is_simple());
}

TEST(Graph, SlotsConsistentWithEndpoints) {
  const Graph g = triangle();
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (const Slot& s : g.slots(v)) {
      const auto [a, b] = g.endpoints(s.edge);
      EXPECT_TRUE((a == v && b == s.neighbor) || (b == v && a == s.neighbor));
      EXPECT_EQ(g.other_endpoint(s.edge, v), s.neighbor);
    }
  }
}

TEST(Graph, SlotIndexingRoundTrip) {
  const Graph g = complete_graph(6);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (std::uint32_t k = 0; k < g.degree(v); ++k) {
      EXPECT_EQ(g.slot_index(v, k), g.slot_offset(v) + k);
      const Slot& s = g.slot(v, k);
      EXPECT_LT(s.neighbor, g.num_vertices());
      EXPECT_LT(s.edge, g.num_edges());
    }
  }
}

TEST(Graph, SelfLoopCountsTwice) {
  GraphBuilder b(2);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_TRUE(g.has_self_loops());
  EXPECT_FALSE(g.is_simple());
  // The loop occupies two slots at vertex 0 with the same edge id.
  int loop_slots = 0;
  for (const Slot& s : g.slots(0))
    if (s.neighbor == 0) ++loop_slots;
  EXPECT_EQ(loop_slots, 2);
}

TEST(Graph, ParallelEdgesDetected) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_TRUE(g.has_parallel_edges());
  EXPECT_FALSE(g.is_simple());
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_TRUE(g.all_degrees_even());
}

TEST(Graph, OddDegreeFlag) {
  const Graph g = path_graph(3);
  EXPECT_FALSE(g.all_degrees_even());
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Graph, StationaryProbabilitySumsToOne) {
  const Graph g = lollipop(5, 4);
  double total = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) total += g.stationary_probability(v);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Graph, FromEdgesRejectsOutOfRange) {
  const Endpoints bad[] = {{0, 5}};
  EXPECT_THROW(Graph::from_edges(3, bad), std::invalid_argument);
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), std::invalid_argument);
}

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::from_edges(0, {});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Algorithms, BfsDistancesOnPath) {
  const Graph g = path_graph(5);
  const auto d = bfs_distances(g, 0);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(Algorithms, BfsUnreachable) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_FALSE(is_connected(g));
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count, 2u);
  EXPECT_EQ(comps.id[0], comps.id[1]);
  EXPECT_NE(comps.id[0], comps.id[2]);
}

TEST(Algorithms, DiameterKnownValues) {
  EXPECT_EQ(diameter(path_graph(6)), 5u);
  EXPECT_EQ(diameter(cycle_graph(8)), 4u);
  EXPECT_EQ(diameter(complete_graph(5)), 1u);
  EXPECT_EQ(diameter(hypercube(4)), 4u);
  EXPECT_EQ(diameter(petersen_graph()), 2u);
}

TEST(Algorithms, EccentricityOfPathEnd) {
  EXPECT_EQ(eccentricity(path_graph(7), 0), 6u);
  EXPECT_EQ(eccentricity(path_graph(7), 3), 3u);
}

TEST(Algorithms, DegreeSequenceSorted) {
  const Graph g = star_graph(5);
  const auto seq = degree_sequence(g);
  EXPECT_EQ(seq[0], 4u);
  for (std::size_t i = 1; i < seq.size(); ++i) EXPECT_EQ(seq[i], 1u);
}

TEST(Io, EdgeListRoundTrip) {
  const Graph g = petersen_graph();
  std::stringstream ss;
  write_edge_list(g, ss);
  const Graph h = read_edge_list(ss);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(degree_sequence(h), degree_sequence(g));
  EXPECT_EQ(diameter(h), diameter(g));
}

TEST(Io, RejectsTruncatedInput) {
  std::stringstream ss("3 2\n0 1\n");
  EXPECT_THROW(read_edge_list(ss), std::runtime_error);
}

TEST(Io, DotContainsEdges) {
  std::stringstream ss;
  write_dot(triangle(), ss, "T");
  const std::string out = ss.str();
  EXPECT_NE(out.find("graph T"), std::string::npos);
  EXPECT_NE(out.find("0 -- 1"), std::string::npos);
}

}  // namespace
}  // namespace ewalk
