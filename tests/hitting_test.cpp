// Tests for hitting/return/commute times and blanket time, validating the
// paper's Section 2 toolbox with exact linear-algebra numbers.
#include <gtest/gtest.h>

#include <cmath>

#include "covertime/blanket.hpp"
#include "covertime/hitting.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "spectral/spectrum.hpp"

namespace ewalk {
namespace {

TEST(Hitting, PathClosedForm) {
  // On a path 0-1-2, E_0(H_2): known values via h(u) = 1 + avg h(w).
  // Standard result for P_3: h(0->2) = 4, h(1->2) = 3.
  const Graph g = path_graph(3);
  const auto h = exact_hitting_times(g, 2);
  EXPECT_NEAR(h[0], 4.0, 1e-9);
  EXPECT_NEAR(h[1], 3.0, 1e-9);
  EXPECT_NEAR(h[2], 0.0, 1e-9);
}

TEST(Hitting, CompleteGraphUniform) {
  // K_n: E_u(H_v) = n - 1 for u != v.
  const Graph g = complete_graph(7);
  const auto h = exact_hitting_times(g, 3);
  for (Vertex u = 0; u < 7; ++u) {
    if (u == 3) continue;
    EXPECT_NEAR(h[u], 6.0, 1e-9);
  }
}

TEST(Hitting, CycleQuadratic) {
  // C_n: E_u(H_v) = d(n - d) where d is the cycle distance from u to v.
  const Vertex n = 10;
  const Graph g = cycle_graph(n);
  const auto h = exact_hitting_times(g, 0);
  for (Vertex u = 1; u < n; ++u) {
    const double d = std::min<double>(u, n - u);
    EXPECT_NEAR(h[u], d * (n - d), 1e-8) << u;
  }
}

TEST(Hitting, CommuteTimeSymmetricDefinition) {
  Rng rng(3);
  const Graph g = random_regular_connected(40, 4, rng);
  EXPECT_NEAR(exact_commute_time(g, 1, 7), exact_commute_time(g, 7, 1), 1e-9);
}

TEST(Hitting, CommuteTimeViaEffectiveResistance) {
  // On a tree, K(u,v) = 2m * dist(u,v) (resistance = path length).
  const Graph g = path_graph(6);
  const double m = g.num_edges();
  EXPECT_NEAR(exact_commute_time(g, 0, 5), 2.0 * m * 5, 1e-8);
  EXPECT_NEAR(exact_commute_time(g, 1, 3), 2.0 * m * 2, 1e-8);
}

TEST(Hitting, ReturnTimeIsInverseStationary) {
  const Graph g = lollipop(5, 3);
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    EXPECT_NEAR(expected_return_time(g, v), 1.0 / g.stationary_probability(v), 1e-12);
}

TEST(Hitting, StationaryHittingViaZvv) {
  // Eq. (6): E_π(H_v) = Z_vv / π_v. Compare exact linear-solve value with
  // the series evaluation on a non-bipartite graph.
  const Graph g = lollipop(5, 2);  // clique => aperiodic
  for (Vertex v : {0u, 4u, 6u}) {
    const double direct = exact_stationary_hitting_time(g, v);
    const double via_z = zvv(g, v) / g.stationary_probability(v);
    EXPECT_NEAR(direct, via_z, 1e-6) << "vertex " << v;
  }
}

TEST(Hitting, Lemma6BoundHolds) {
  Rng rng(7);
  for (int trial = 0; trial < 3; ++trial) {
    const Graph g = random_regular_connected(60, 4, rng);
    const auto spec = estimate_spectrum(g);
    for (Vertex v : {0u, 11u, 33u}) {
      const double epi = exact_stationary_hitting_time(g, v);
      EXPECT_LE(epi, lemma6_bound(g, v, spec.gap()) + 1e-6);
    }
  }
}

TEST(Hitting, Corollary9ViaContraction) {
  // E_π(H_S) computed on the contraction Γ(S) obeys 2m/(d(S)(1-λmax(G))).
  Rng rng(9);
  const Graph g = random_regular_connected(80, 4, rng);
  const auto spec = estimate_spectrum(g);
  const std::vector<Vertex> set{2, 40, 41, 77};
  const auto contracted = contract_set(g, set);
  const double epi_gamma =
      exact_stationary_hitting_time(contracted.graph, contracted.contracted);
  EXPECT_LE(epi_gamma, corollary9_bound(g, set, spec.gap()) + 1e-6);
}

TEST(Hitting, UnvisitedProbabilityDecays) {
  // Lemma 13 qualitatively: Pr(S unvisited at t) decays in t, and at
  // t >> E_π(H_S) it is small.
  Rng rng(11);
  const Graph g = random_regular_connected(100, 4, rng);
  const std::vector<Vertex> set{5, 50};
  const double p_short = estimate_unvisited_probability(g, set, 20, 2000, rng);
  const double p_long = estimate_unvisited_probability(g, set, 600, 2000, rng);
  EXPECT_GE(p_short, p_long);
  EXPECT_LT(p_long, 0.05);
}

TEST(Hitting, RejectsBadInput) {
  const Graph g = cycle_graph(5);
  EXPECT_THROW(exact_hitting_times(g, 9), std::invalid_argument);
  GraphBuilder b(4);
  b.add_edge(0, 1);
  EXPECT_THROW(exact_hitting_times(b.build(), 0), std::invalid_argument);  // disconnected
  EXPECT_THROW(lemma6_bound(g, 0, 0.0), std::invalid_argument);
}

TEST(Blanket, ReachedOnCompleteGraph) {
  const Graph g = complete_graph(20);
  Rng rng(13);
  const auto res = measure_blanket_time(g, 0, 0.3, rng, 1u << 22);
  ASSERT_TRUE(res.reached);
  EXPECT_GT(res.blanket_step, 0u);
}

TEST(Blanket, BlanketAtLeastCoverish) {
  // τ_bl(δ) is at least the time to visit every vertex once.
  const Graph g = cycle_graph(30);
  Rng rng(15);
  const auto res = measure_blanket_time(g, 0, 0.25, rng, 1u << 24);
  ASSERT_TRUE(res.reached);
  EXPECT_GE(res.blanket_step, 29u);
}

TEST(Blanket, VisitAllRTimesOrdering) {
  // T(1) <= T(3) <= T(6), and T(r) grows with r.
  Rng rng(17);
  const Graph g = complete_graph(15);
  const auto t1 = measure_visit_all_r_times(g, 0, 1, rng, 1u << 24);
  const auto t3 = measure_visit_all_r_times(g, 0, 3, rng, 1u << 24);
  const auto t6 = measure_visit_all_r_times(g, 0, 6, rng, 1u << 24);
  EXPECT_LE(t1, t3);
  EXPECT_LE(t3, t6);
}

TEST(Blanket, RejectsBadDelta) {
  const Graph g = cycle_graph(4);
  Rng rng(19);
  EXPECT_THROW(measure_blanket_time(g, 0, 0.0, rng, 100), std::invalid_argument);
  EXPECT_THROW(measure_blanket_time(g, 0, 1.0, rng, 100), std::invalid_argument);
}

// Eq. (4)-style consequence: the time for the SRW to visit every vertex
// d(v)=r times is O(C_V) on regular expanders; empirically the ratio
// T(r)/C_V stays modest.
TEST(Blanket, VisitRTimesWithinConstantOfCover) {
  Rng rng(21);
  const Graph g = random_regular_connected(300, 4, rng);
  const auto t_r = measure_visit_all_r_times(g, 0, 4, rng, 1u << 26);
  // Rough C_V estimate from 3 runs.
  double cv = 0;
  for (int i = 0; i < 3; ++i) {
    Rng r2(100 + i);
    cv += static_cast<double>(measure_visit_all_r_times(g, 0, 1, r2, 1u << 26));
  }
  cv /= 3;
  EXPECT_LT(static_cast<double>(t_r), 12.0 * cv);
}

}  // namespace
}  // namespace ewalk
