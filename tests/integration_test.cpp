// Cross-module integration tests: shrunken versions of the paper's
// experiments whose qualitative conclusions must already hold at test scale.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/blue.hpp"
#include "analysis/girth.hpp"
#include "covertime/experiment.hpp"
#include "engine/driver.hpp"
#include "graph/generators.hpp"
#include "graph/lps.hpp"
#include "spectral/spectrum.hpp"
#include "walks/eprocess.hpp"
#include "walks/rules.hpp"
#include "walks/srw.hpp"

namespace ewalk {
namespace {

CoverExperimentResult eprocess_cover(Vertex n, std::uint32_t r, std::uint32_t trials,
                                     std::uint64_t seed,
                                     RunTarget target = RunTarget::kVertices) {
  RunRequest req;
  req.trials = trials;
  req.seed = seed;
  req.target = target;
  const GraphFactory graphs = [n, r](Rng& rng) {
    return random_regular_connected(n, r, rng);
  };
  const RuleFactory rules = [](const Graph&) { return std::make_unique<UniformRule>(); };
  return measure_eprocess_cover(graphs, rules, req);
}

// Corollary 2 in miniature: on 4-regular graphs the E-process normalised
// cover time stays bounded as n doubles, while the SRW normalised cover time
// grows like ln n.
TEST(Integration, MiniFigure1EvenDegreeIsLinear) {
  const auto c1 = eprocess_cover(1000, 4, 5, 1);
  const auto c2 = eprocess_cover(4000, 4, 5, 2);
  ASSERT_EQ(c1.uncovered_trials, 0u);
  ASSERT_EQ(c2.uncovered_trials, 0u);
  const double norm1 = c1.stats.mean / 1000.0;
  const double norm2 = c2.stats.mean / 4000.0;
  // Θ(n): normalised cover time roughly flat (allow 35% drift, far below
  // the ln(4000)/ln(1000) ≈ 1.2 growth plus constant factors an n log n
  // process would show... the key contrast is with the odd case below).
  EXPECT_LT(norm2, norm1 * 1.35);
  EXPECT_LT(norm2, 8.0);  // paper's Fig 1: ~2-3 for d=4
}

TEST(Integration, MiniFigure1OddDegreeGrows) {
  // d=3 normalised cover time grows like 0.93 ln n: between n=500 and
  // n=8000 that's a ≈ +2.6 increase. Demand a clear increase.
  const auto c1 = eprocess_cover(500, 3, 5, 3);
  const auto c2 = eprocess_cover(8000, 3, 5, 4);
  ASSERT_EQ(c1.uncovered_trials, 0u);
  ASSERT_EQ(c2.uncovered_trials, 0u);
  const double norm1 = c1.stats.mean / 500.0;
  const double norm2 = c2.stats.mean / 8000.0;
  EXPECT_GT(norm2, norm1 + 0.8);
}

TEST(Integration, EProcessBeatsSrwByGrowingFactor) {
  // Speed-up Ω(log n) on even-degree expanders: check the ratio at one n is
  // comfortably > 1 and grows from n=500 to n=2000.
  RunRequest req;
  req.trials = 5;
  req.seed = 7;
  const auto ratio_at = [&](Vertex n) {
    const GraphFactory graphs = [n](Rng& rng) {
      return random_regular_connected(n, 4, rng);
    };
    const RuleFactory rules = [](const Graph&) {
      return std::make_unique<UniformRule>();
    };
    const auto ep = measure_eprocess_cover(graphs, rules, req);
    const auto srw = measure_srw_cover(graphs, req);
    return srw.stats.mean / ep.stats.mean;
  };
  const double r500 = ratio_at(500);
  const double r2000 = ratio_at(2000);
  EXPECT_GT(r500, 1.5);
  EXPECT_GT(r2000, r500 * 0.9);  // non-decreasing up to noise
}

TEST(Integration, EdgeCoverSandwichOnRandomRegular) {
  // Equation (3): m <= C_E(E-process) <= m + C_V(SRW), checked per trial on
  // the same graph instance.
  Rng rng(9);
  for (int trial = 0; trial < 3; ++trial) {
    const Graph g = random_regular_connected(300, 4, rng);
    UniformRule rule;
    EProcess ep(g, 0, rule);
    Rng wrng = rng.split();
    ASSERT_TRUE(run_until_edge_cover(ep, wrng, 1u << 26));
    const double ce = static_cast<double>(ep.cover().edge_cover_step());
    EXPECT_GE(ce, static_cast<double>(g.num_edges()));

    // C_V(SRW) estimate on the same graph (mean of 5 runs).
    double cv = 0;
    for (int i = 0; i < 5; ++i) {
      SimpleRandomWalk srw(g, 0);
      Rng srng = rng.split();
      ASSERT_TRUE(run_until_vertex_cover(srw, srng, 1u << 26));
      cv += static_cast<double>(srw.cover().vertex_cover_step());
    }
    cv /= 5;
    // The paper's upper bound holds in expectation; allow 3x sampling slack.
    EXPECT_LE(ce, static_cast<double>(g.num_edges()) + 3.0 * cv + 1000.0);
  }
}

TEST(Integration, HypercubeEdgeCoverImprovement) {
  // Section 1: E-process edge cover on H_r is Θ(n log n), SRW's is
  // Θ(n log² n). At r=9 (n=512) the ratio should already exceed 1.5.
  const Graph g = hypercube(9);
  double ep_total = 0, srw_total = 0;
  for (int t = 0; t < 3; ++t) {
    Rng r1(50 + t), r2(60 + t);
    UniformRule rule;
    EProcess ep(g, 0, rule);
    ASSERT_TRUE(run_until_edge_cover(ep, r1, 1ull << 30));
    ep_total += static_cast<double>(ep.cover().edge_cover_step());
    SimpleRandomWalk srw(g, 0);
    ASSERT_TRUE(run_until_edge_cover(srw, r2, 1ull << 30));
    srw_total += static_cast<double>(srw.cover().edge_cover_step());
  }
  EXPECT_LT(ep_total * 1.5, srw_total);
}

TEST(Integration, LpsExpanderCoverIsLinear) {
  // Theorem 3 habitat: 6-regular LPS Ramanujan graph (even degree, high
  // girth). The E-process should cover vertices within a small multiple of n.
  const Graph g = lps_graph({5, 13});  // n = 2184, bipartite
  ASSERT_TRUE(g.all_degrees_even());
  double total = 0;
  for (int t = 0; t < 3; ++t) {
    Rng rng(70 + t);
    UniformRule rule;
    EProcess walk(g, 0, rule);
    ASSERT_TRUE(run_until_vertex_cover(walk, rng, 1ull << 28));
    total += static_cast<double>(walk.cover().vertex_cover_step());
  }
  const double mean = total / 3;
  EXPECT_LT(mean, 6.0 * g.num_vertices());
}

TEST(Integration, OddDegreeStarCensusNearEighth) {
  // Section 5: on 3-regular graphs, after the first blue-exhaustion the
  // number of isolated blue stars is ~ n/8. Average over instances and
  // allow a generous band (tree-like approximation + finite n).
  // We count vertices that are *discovered as the center of an isolated
  // blue star*: at their first visit, their remaining incident edges are
  // blue and every neighbour's only blue edge points back at them. The
  // paper's idealised tree-like estimate for the fraction is 1/8; the
  // measured fraction on finite graphs is ~0.05 (same order, Θ(n) stars),
  // which is what drives the coupon-collector Ω(n log n) behaviour.
  const Vertex n = 3000;
  double stars_total = 0;
  const int kTrials = 6;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(80 + t);
    const Graph g = random_regular_connected(n, 3, rng);
    UniformRule rule;
    EProcess walk(g, 0, rule);
    std::uint64_t stars = 0;
    std::uint32_t covered = walk.cover().vertices_covered();
    while (!walk.cover().all_vertices_covered()) {
      const Vertex prev = walk.current();
      const StepColor color = walk.step(rng);
      if (walk.cover().vertices_covered() == covered) continue;
      covered = walk.cover().vertices_covered();
      const Vertex v = walk.current();
      if (color != StepColor::kBlue || walk.blue_degree(v) != g.degree(v) - 1 ||
          walk.blue_degree(prev) != 0) {
        continue;
      }
      bool star = true;
      for (const Slot& s : g.slots(v)) {
        if (walk.cover().edge_visited(s.edge)) continue;
        if (walk.blue_degree(s.neighbor) != 1) {
          star = false;
          break;
        }
      }
      if (star) ++stars;
    }
    stars_total += static_cast<double>(stars);
  }
  const double mean_fraction = stars_total / kTrials / n;
  EXPECT_GT(mean_fraction, 0.02);
  EXPECT_LT(mean_fraction, 0.125);
}

TEST(Integration, SpectralGapPredictsMixing) {
  // Mixing-time estimate (Lemma 7) should be tiny for expanders and large
  // for cycles, reflecting their gap difference.
  Rng rng(99);
  const Graph expander = random_regular_connected(1000, 4, rng);
  const Graph ring = cycle_graph(1000);
  const auto se = estimate_spectrum(expander);
  const auto sr = estimate_spectrum(ring);
  const double te = mixing_time_estimate(se.lazy_gap(), 1000);
  const double tr = mixing_time_estimate(sr.lazy_gap(), 1000);
  EXPECT_LT(te * 100, tr);
}

TEST(Integration, RuleIndependenceOfCoverOrder) {
  // Theorem 1: cover time bound independent of rule A. Empirically all
  // rules should land within a small constant factor of each other on a
  // 4-regular expander.
  Rng grng(101);
  const Graph g = random_regular_connected(2000, 4, grng);
  const auto run_with = [&](UnvisitedEdgeRule& rule, std::uint64_t seed) {
    Rng rng(seed);
    EProcess walk(g, 0, rule);
    EXPECT_TRUE(run_until_vertex_cover(walk, rng, 1ull << 28));
    return static_cast<double>(walk.cover().vertex_cover_step());
  };
  UniformRule uniform;
  FirstSlotRule first;
  RoundRobinRule rr(g.num_vertices());
  PreferVisitedEndpointRule adversary;
  const double cu = run_with(uniform, 1);
  const double cf = run_with(first, 2);
  const double cr = run_with(rr, 3);
  const double ca = run_with(adversary, 4);
  const double lo = std::min(std::min(cu, cf), std::min(cr, ca));
  const double hi = std::max(std::max(cu, cf), std::max(cr, ca));
  EXPECT_LT(hi / lo, 8.0);
  EXPECT_LT(hi, 10.0 * g.num_vertices());
}

}  // namespace
}  // namespace ewalk
