// Tests for the interacting-walker subsystem: TokenSystem bookkeeping, the
// three token processes (coalescing SRW, coalescing E-walk, Herman ring),
// the token-population predicates + run_until_process driver, registry
// dispatch, and measure_coalescence (including thread-count invariance of
// its per-trial streams).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "covertime/experiment.hpp"
#include "engine/budget.hpp"
#include "engine/driver.hpp"
#include "engine/params.hpp"
#include "engine/registry.hpp"
#include "engine/token_process.hpp"
#include "graph/generators.hpp"
#include "interact/coalescing.hpp"
#include "interact/herman.hpp"
#include "interact/token_system.hpp"
#include "walks/rules.hpp"

namespace ewalk {
namespace {

// ---- TokenSystem ----------------------------------------------------------

TEST(TokenSystem, PlacesAndMovesTokens) {
  const Graph g = cycle_graph(8);
  TokenSystem ts(g, {0, 4});
  EXPECT_EQ(ts.initial_tokens(), 2u);
  EXPECT_EQ(ts.tokens_alive(), 2u);
  EXPECT_EQ(ts.occupant(0), 0u);
  EXPECT_EQ(ts.occupant(4), 1u);
  EXPECT_EQ(ts.occupant(2), TokenSystem::kNoToken);
  EXPECT_EQ(ts.first_meeting_step(), kNotCovered);
  EXPECT_EQ(ts.coalescence_step(), kNotCovered);

  EXPECT_EQ(ts.move(0, 1, 1), TokenSystem::kNoToken);
  EXPECT_EQ(ts.position(0), 1u);
  EXPECT_EQ(ts.occupant(0), TokenSystem::kNoToken);
  EXPECT_EQ(ts.occupant(1), 0u);
}

TEST(TokenSystem, CollisionAndMergeBookkeeping) {
  const Graph g = cycle_graph(8);
  TokenSystem ts(g, {0, 1});
  const auto other = ts.move(0, 1, 7);  // token 0 steps onto token 1
  EXPECT_EQ(other, 1u);
  EXPECT_EQ(ts.first_meeting_step(), 7u);
  EXPECT_EQ(ts.collisions(), 1u);
  ts.kill(0, 7);  // merge: mover dies
  EXPECT_EQ(ts.tokens_alive(), 1u);
  EXPECT_FALSE(ts.alive(0));
  EXPECT_TRUE(ts.alive(1));
  EXPECT_EQ(ts.occupant(1), 1u);  // occupant keeps the vertex
  EXPECT_EQ(ts.coalescence_step(), 7u);
}

TEST(TokenSystem, RejectsBadStarts) {
  const Graph g = cycle_graph(8);
  EXPECT_THROW(TokenSystem(g, {}), std::invalid_argument);
  EXPECT_THROW(TokenSystem(g, {0, 0}), std::invalid_argument);
  EXPECT_THROW(TokenSystem(g, {0, 99}), std::invalid_argument);
}

TEST(TokenSystem, SpreadStartsAreDistinctAndWrap) {
  const auto starts = spread_token_starts(10, 5, 3);
  EXPECT_EQ(starts.size(), 5u);
  for (std::size_t i = 0; i < starts.size(); ++i)
    for (std::size_t j = i + 1; j < starts.size(); ++j)
      EXPECT_NE(starts[i], starts[j]);
  EXPECT_THROW(spread_token_starts(4, 5, 0), std::invalid_argument);
  EXPECT_THROW(spread_token_starts(4, 0, 0), std::invalid_argument);
}

// ---- CoalescingRW ---------------------------------------------------------

TEST(CoalescingRW, PopulationNonIncreasingAndCoalescesOnCompleteGraph) {
  const Graph g = complete_graph(256);
  CoalescingRW walk(g, spread_token_starts(g.num_vertices(), 16, 0));
  EXPECT_EQ(walk.tokens_remaining(), 16u);
  EXPECT_EQ(walk.initial_tokens(), 16u);
  Rng rng(42);
  std::uint32_t prev = walk.tokens_remaining();
  const std::uint64_t budget = default_step_budget(g);
  while (walk.tokens_remaining() > 1 && walk.steps() < budget) {
    walk.step(rng);
    EXPECT_LE(walk.tokens_remaining(), prev);
    prev = walk.tokens_remaining();
  }
  ASSERT_EQ(walk.tokens_remaining(), 1u);
  EXPECT_EQ(walk.coalescence_step(), walk.steps());
  EXPECT_NE(walk.first_meeting_step(), kNotCovered);
  EXPECT_LE(walk.first_meeting_step(), walk.coalescence_step());
}

TEST(CoalescingRW, DriverAndPredicatesTerminateOnPopulationTargets) {
  const Graph g = complete_graph(128);
  const std::uint64_t budget = default_step_budget(g);

  CoalescingRW to_four(g, spread_token_starts(g.num_vertices(), 12, 0));
  Rng r1(5);
  ASSERT_TRUE(run_until_process(to_four, r1, TokensAtMost{4}, budget));
  EXPECT_LE(to_four.tokens_remaining(), 4u);
  EXPECT_GE(to_four.tokens_remaining(), 1u);

  CoalescingRW meet(g, spread_token_starts(g.num_vertices(), 12, 0));
  Rng r2(5);
  ASSERT_TRUE(run_until_process(meet, r2, TokensHaveMet{}, budget));
  EXPECT_EQ(meet.first_meeting_step(), meet.steps());

  CoalescingRW one(g, spread_token_starts(g.num_vertices(), 12, 0));
  Rng r3(5);
  ASSERT_TRUE(run_until_process(one, r3, CoalescedToOne{}, budget));
  EXPECT_EQ(one.tokens_remaining(), 1u);
}

TEST(CoalescingRW, SurvivorKeepsWalkingAndCovers) {
  // After coalescence the last token is a plain SRW; cover predicates still
  // terminate, so token processes stay drivable by everything WalkProcess is.
  const Graph g = complete_graph(64);
  CoalescingRW walk(g, spread_token_starts(g.num_vertices(), 4, 0));
  Rng rng(9);
  ASSERT_TRUE(run_until_vertex_cover(walk, rng, default_step_budget(g)));
  EXPECT_TRUE(walk.cover().all_vertices_covered());
}

// ---- CoalescingEWalk ------------------------------------------------------

TEST(CoalescingEWalk, CoalescesAndTracksSharedEdgeColouring) {
  const Graph g = hypercube(6);
  CoalescingEWalk walk(g, spread_token_starts(g.num_vertices(), 8, 0),
                       std::make_unique<UniformRule>());
  Rng rng(7);
  ASSERT_TRUE(run_until_process(walk, rng, CoalescedToOne{},
                                default_step_budget(g)));
  EXPECT_EQ(walk.tokens_remaining(), 1u);
  // Every step is blue or red, and blue steps mark exactly one fresh edge.
  EXPECT_EQ(walk.blue_steps() + walk.red_steps(), walk.steps());
  EXPECT_EQ(walk.cover().edges_covered(), walk.blue_steps());
}

TEST(CoalescingEWalk, WorksWithEveryRule) {
  const Graph g = hypercube(5);
  Rng rule_rng(3);
  for (const auto& rule_name : rule_names()) {
    CoalescingEWalk walk(g, spread_token_starts(g.num_vertices(), 4, 0),
                         make_rule(rule_name, g, rule_rng));
    Rng rng(11);
    EXPECT_TRUE(run_until_process(walk, rng, CoalescedToOne{},
                                  default_step_budget(g)))
        << rule_name;
  }
}

// ---- HermanRing -----------------------------------------------------------

TEST(HermanRing, PreservesOddParityUntilSingleToken) {
  const Graph g = cycle_graph(101);
  HermanRing walk(g, spread_token_starts(g.num_vertices(), 7, 0));
  Rng rng(13);
  const std::uint64_t budget = default_step_budget(g);
  while (walk.tokens_remaining() > 1 && walk.steps() < budget) {
    walk.step(rng);
    EXPECT_EQ(walk.tokens_remaining() % 2, 1u);
  }
  ASSERT_EQ(walk.tokens_remaining(), 1u);
  EXPECT_EQ(walk.annihilations(), 3u);  // 7 -> 5 -> 3 -> 1
  EXPECT_EQ(walk.coalescence_step(), walk.steps());
}

TEST(HermanRing, DerivedOrientationIsASingleCycle) {
  const Graph g = cycle_graph(17);
  HermanRing walk(g, {0});
  Vertex v = 0;
  for (Vertex i = 0; i < 17; ++i) v = walk.successor(v);
  EXPECT_EQ(v, 0u);  // back after exactly n hops
  Vertex w = walk.successor(0);
  Vertex count = 1;
  while (w != 0) {
    w = walk.successor(w);
    ++count;
  }
  EXPECT_EQ(count, 17u);
}

TEST(HermanRing, RejectsInvalidConfigurations) {
  EXPECT_THROW(HermanRing(cycle_graph(8), {0, 4}), std::invalid_argument);
  EXPECT_THROW(HermanRing(hypercube(3), {0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(HermanRing(complete_graph(5), {0, 1, 2}), std::invalid_argument);
  // Two disjoint cycles: 2-regular but not a single cycle.
  GraphBuilder b(6);
  for (Vertex v = 0; v < 3; ++v) b.add_edge(v, (v + 1) % 3);
  for (Vertex v = 0; v < 3; ++v) b.add_edge(3 + v, 3 + (v + 1) % 3);
  EXPECT_THROW(HermanRing(b.build(), {0, 1, 4}), std::invalid_argument);
}

// ---- Registry dispatch ----------------------------------------------------

TEST(InteractRegistry, AllThreeProcessesConstructByName) {
  const Graph cyc = cycle_graph(64);
  for (const char* name : {"coalescing-srw", "coalescing-ewalk", "herman"}) {
    ASSERT_TRUE(ProcessRegistry::instance().contains(name)) << name;
    Rng rng(2);
    auto walk = ProcessRegistry::instance().create(
        name, cyc, ParamMap{{"tokens", "3"}}, rng);
    auto* tokens = dynamic_cast<TokenProcess*>(walk.get());
    ASSERT_NE(tokens, nullptr) << name;
    EXPECT_EQ(tokens->tokens_remaining(), 3u) << name;
    EXPECT_TRUE(run_until_process(*tokens, rng, CoalescedToOne{},
                                  default_step_budget(cyc)))
        << name;
    EXPECT_EQ(tokens->tokens_remaining(), 1u) << name;
  }
}

TEST(InteractRegistry, HermanRejectsEvenTokensThroughRegistry) {
  const Graph cyc = cycle_graph(32);
  Rng rng(2);
  EXPECT_THROW(ProcessRegistry::instance().create("herman", cyc,
                                                  ParamMap{{"tokens", "4"}}, rng),
               std::invalid_argument);
}

// ---- measure_coalescence --------------------------------------------------

TEST(MeasureCoalescence, CompleteGraphCoalescesInLinearTime) {
  RunRequest req;
  req.trials = 4;
  req.seed = 17;
  const GraphFactory graphs = [](Rng&) { return complete_graph(256); };
  const TokenProcessFactory tokens =
      [](const Graph& g, Rng&) -> std::unique_ptr<TokenProcess> {
    return std::make_unique<CoalescingRW>(
        g, spread_token_starts(g.num_vertices(), 16, 0));
  };
  const auto res = measure_coalescence(tokens, graphs, req);
  EXPECT_EQ(res.unfinished_trials, 0u);
  EXPECT_EQ(res.samples.size(), 4u);
  EXPECT_GT(res.stats.mean, 0.0);
  // Θ(n) regime: well under n log^2 n, and meetings precede coalescence.
  EXPECT_LT(res.stats.mean, 256.0 * 64);
  for (std::size_t i = 0; i < res.samples.size(); ++i)
    EXPECT_LE(res.meeting_samples[i], res.samples[i]);
}

TEST(MeasureCoalescence, TargetTokensStopsEarly) {
  RunRequest req;
  req.trials = 3;
  req.seed = 29;
  const GraphFactory graphs = [](Rng&) { return complete_graph(128); };
  const TokenProcessFactory tokens =
      [](const Graph& g, Rng&) -> std::unique_ptr<TokenProcess> {
    return std::make_unique<CoalescingRW>(
        g, spread_token_starts(g.num_vertices(), 16, 0));
  };
  req.target_tokens = 1;
  const auto full = measure_coalescence(tokens, graphs, req);
  req.target_tokens = 4;
  const auto partial = measure_coalescence(tokens, graphs, req);
  EXPECT_EQ(partial.unfinished_trials, 0u);
  for (std::size_t i = 0; i < partial.samples.size(); ++i)
    EXPECT_LE(partial.samples[i], full.samples[i]);
}

TEST(MeasureCoalescence, BudgetExhaustionCounted) {
  // Exercised through the deprecated config overload on purpose: this is
  // the forwarding shim's coalescence-side equivalence check (the cover
  // side lives in covertime_test.cpp) until the shim is removed.
  CoalescenceExperimentConfig config;
  config.trials = 3;
  config.max_steps = 2;  // absurdly small: coalescence impossible
  const GraphFactory graphs = [](Rng&) { return cycle_graph(64); };
  const TokenProcessFactory tokens =
      [](const Graph& g, Rng&) -> std::unique_ptr<TokenProcess> {
    return std::make_unique<CoalescingRW>(
        g, spread_token_starts(g.num_vertices(), 8, 0));
  };
  const auto res = measure_coalescence(tokens, graphs, config);
  EXPECT_EQ(res.unfinished_trials, 3u);
  EXPECT_DOUBLE_EQ(res.stats.mean, 2.0);
}

TEST(MeasureCoalescence, SeedForSeedIdenticalAcrossThreadCounts) {
  // The documented determinism contract: trial i's stream is a pure
  // function of (master_seed, i), so 1 worker and 8 workers must produce
  // bit-identical sample vectors.
  RunRequest req;
  req.trials = 8;
  req.seed = 123;
  const GraphFactory graphs = [](Rng& rng) {
    return random_regular_connected(96, 4, rng);
  };
  const TokenProcessFactory tokens =
      [](const Graph& g, Rng&) -> std::unique_ptr<TokenProcess> {
    return std::make_unique<CoalescingRW>(
        g, spread_token_starts(g.num_vertices(), 6, 0));
  };
  req.threads = 1;
  const auto serial = measure_coalescence(tokens, graphs, req);
  req.threads = 8;
  const auto parallel = measure_coalescence(tokens, graphs, req);
  EXPECT_EQ(serial.samples, parallel.samples);
  EXPECT_EQ(serial.meeting_samples, parallel.meeting_samples);
}

}  // namespace
}  // namespace ewalk
