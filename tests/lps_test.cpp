// Tests for the Lubotzky–Phillips–Sarnak Ramanujan graph construction and
// its number-theory helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/girth.hpp"
#include "graph/algorithms.hpp"
#include "graph/lps.hpp"
#include "spectral/spectrum.hpp"

namespace ewalk {
namespace {

TEST(NumberTheory, IsPrime) {
  EXPECT_TRUE(is_prime_u32(2));
  EXPECT_TRUE(is_prime_u32(5));
  EXPECT_TRUE(is_prime_u32(13));
  EXPECT_TRUE(is_prime_u32(104729));
  EXPECT_FALSE(is_prime_u32(0));
  EXPECT_FALSE(is_prime_u32(1));
  EXPECT_FALSE(is_prime_u32(9));
  EXPECT_FALSE(is_prime_u32(104730));
}

TEST(NumberTheory, PowMod) {
  EXPECT_EQ(pow_mod(2, 10, 1000), 24u);
  EXPECT_EQ(pow_mod(3, 0, 7), 1u);
  EXPECT_EQ(pow_mod(7, 13 - 1, 13), 1u);  // Fermat
}

TEST(NumberTheory, LegendreSymbol) {
  // Squares mod 13: 1,4,9,3,12,10.
  for (std::uint64_t a : {1, 3, 4, 9, 10, 12}) EXPECT_EQ(legendre_symbol(a, 13), 1) << a;
  for (std::uint64_t a : {2, 5, 6, 7, 8, 11}) EXPECT_EQ(legendre_symbol(a, 13), -1) << a;
  EXPECT_EQ(legendre_symbol(13, 13), 0);
}

TEST(NumberTheory, SqrtModPrime) {
  for (std::uint64_t p : {13ull, 17ull, 29ull, 101ull, 1009ull}) {
    for (std::uint64_t x = 1; x < std::min<std::uint64_t>(p, 50); ++x) {
      const std::uint64_t a = x * x % p;
      const std::uint64_t r = sqrt_mod_prime(a, p);
      EXPECT_EQ(r * r % p, a) << "p=" << p << " a=" << a;
    }
  }
  EXPECT_THROW(sqrt_mod_prime(2, 5), std::invalid_argument);  // 2 is a non-residue mod 5
}

TEST(Lps, PslCaseOrderAndRegularity) {
  // p=5, q=29: 29 mod 5 == 4 == -1, so (5|29) = 1 => PSL, non-bipartite.
  const LpsParams params{5, 29};
  EXPECT_TRUE(lps_is_psl_case(params));
  const Graph g = lps_graph(params);
  EXPECT_EQ(g.num_vertices(), lps_expected_order(params));
  EXPECT_EQ(g.num_vertices(), 29u * (29 * 29 - 1) / 2);  // 12180
  EXPECT_TRUE(g.is_regular(6));
  EXPECT_TRUE(g.all_degrees_even());
  EXPECT_TRUE(g.is_simple());
  EXPECT_TRUE(is_connected(g));
}

TEST(Lps, PglCaseIsBipartiteDouble) {
  // p=5, q=13: 13 mod 5 == 3, non-residue => PGL, bipartite.
  const LpsParams params{5, 13};
  EXPECT_FALSE(lps_is_psl_case(params));
  const Graph g = lps_graph(params);
  EXPECT_EQ(g.num_vertices(), 13u * (13 * 13 - 1));  // 2184
  EXPECT_TRUE(g.is_regular(6));
  EXPECT_TRUE(is_connected(g));
  // Bipartite: the SRW spectrum has λn = -1.
  const auto spec = estimate_spectrum(g);
  EXPECT_NEAR(spec.lambda_n, -1.0, 1e-6);
}

TEST(Lps, GirthIsLogarithmic) {
  const Graph g = lps_graph({5, 13});
  const std::uint32_t gi = girth(g);
  // LPS girth >= 2 log_p q; for p=5, q=13 that is >= 3.18..., and the true
  // girth of bipartite X^{5,13} is substantially larger. Require >= 6 (the
  // graph is bipartite so girth is even and > 4 for these parameters).
  EXPECT_GE(gi, 6u);
}

TEST(Lps, RamanujanEigenvalueBound) {
  const Graph g = lps_graph({5, 13});
  const auto spec = estimate_spectrum(g);
  // Ramanujan: non-trivial adjacency eigenvalues <= 2*sqrt(p) = 2*sqrt(5).
  // Transition eigenvalues scale by 1/(p+1) = 1/6.
  const double bound = 2.0 * std::sqrt(5.0) / 6.0;
  EXPECT_LE(spec.lambda2, bound + 1e-6);
  // Bipartite => λn = -1 makes the plain gap 0; the lazy gap is what the
  // paper uses in that case.
  EXPECT_NEAR(spec.gap(), 0.0, 1e-6);
  EXPECT_GT(spec.lazy_gap(), (1.0 - bound) / 2.0 - 1e-6);
}

TEST(Lps, LargerPDegree14) {
  // p=13, q=17: (13|17) = 1 (both 1 mod 4, 17 mod 13 = 4 is a square), so
  // PSL case: n = 17*(17^2-1)/2 = 2448, degree 14 (even), non-bipartite.
  const LpsParams params{13, 17};
  EXPECT_TRUE(lps_is_psl_case(params));
  const Graph g = lps_graph(params);
  EXPECT_EQ(g.num_vertices(), 2448u);
  EXPECT_TRUE(g.is_regular(14));
  EXPECT_TRUE(g.all_degrees_even());
  EXPECT_TRUE(is_connected(g));
  const auto spec = estimate_spectrum(g);
  // Ramanujan bound: lambda2 <= 2*sqrt(13)/14.
  EXPECT_LE(spec.lambda2, 2.0 * std::sqrt(13.0) / 14.0 + 1e-6);
}

TEST(Lps, RejectsBadParameters) {
  EXPECT_THROW(lps_graph({4, 13}), std::invalid_argument);   // p not prime
  EXPECT_THROW(lps_graph({7, 13}), std::invalid_argument);   // p % 4 == 3
  EXPECT_THROW(lps_graph({5, 11}), std::invalid_argument);   // q % 4 == 3
  EXPECT_THROW(lps_graph({5, 5}), std::invalid_argument);    // p == q
  EXPECT_THROW(lps_graph({13, 5}), std::invalid_argument);   // q <= 2 sqrt(p)
}

}  // namespace
}  // namespace ewalk
