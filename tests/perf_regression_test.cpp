// Stream-identity regression suite for the hot-path optimisations.
//
// The O(1) blue eviction (BluePartition::pos_of_slot_), the batched
// step_many driving, and the persistent run_trials thread pool are all
// required to be *bit-for-bit* invisible: same RNG draws, same
// trajectories, same samples as the original per-step/per-scan/per-spawn
// implementations. This suite pins that down two ways:
//
//  1. Golden trajectory hashes. Every scenario below was run against the
//     pre-optimisation implementation (linear-scan evict, unbatched driver,
//     thread-per-call run_trials) and its FNV-1a trajectory hash recorded as
//     a constant. The optimised code must reproduce each hash exactly —
//     including on multigraphs with self-loops and parallel edges, where
//     eviction order subtleties live.
//
//  2. Internal consistency. step()-by-step vs step_many-chunked driving of
//     two identically seeded processes must coincide, and run_trials must
//     return identical samples for 1, 2, and 8 threads.
//
// Compile with -DEWALK_GOLDEN_PRINT for a main() that prints the constants
// instead of asserting them (how the numbers below were produced).
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "covertime/experiment.hpp"
#include "engine/adapters.hpp"
#include "engine/driver.hpp"
#include "engine/registry.hpp"
#include "engine/token_process.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "interact/coalescing.hpp"
#include "interact/herman.hpp"
#include "interact/token_system.hpp"
#include "util/rng.hpp"
#include "walks/eprocess.hpp"
#include "walks/multi_eprocess.hpp"
#include "walks/rules.hpp"
#include "walks/srw.hpp"

namespace ewalk {
namespace {

// ---- Trajectory hashing ----------------------------------------------------

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

struct Hasher {
  std::uint64_t h = kFnvOffset;
  void mix(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xFF;
      h *= kFnvPrime;
    }
  }
};

// A connected multigraph with self-loops and parallel edges: the cases where
// blue-eviction order is subtle (a self-loop occupies two slots of the same
// vertex; parallel edges are distinct edge ids in neighbouring slots).
Graph messy_multigraph() {
  const Vertex n = 60;
  GraphBuilder b(n);
  for (Vertex v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);  // base cycle
  for (Vertex v = 0; v < n; v += 5) b.add_edge(v, (v + 1) % n);  // parallel
  for (Vertex v = 0; v < n; v += 7) b.add_edge(v, v);            // self-loop
  for (Vertex v = 0; v < n; v += 3) b.add_edge(v, (v + 13) % n);  // chords
  return b.build();
}

// ---- Scenarios -------------------------------------------------------------
//
// Each drives a process with a fixed seed and folds the full trajectory
// (positions, colours/populations, step counts) into one hash.

std::uint64_t eprocess_trajectory(const std::string& rule_name,
                                  std::uint64_t steps) {
  const Graph g = messy_multigraph();
  Rng rng(12345);
  auto rule = make_rule(rule_name, g, rng);
  EProcess walk(g, 0, *rule);
  Hasher h;
  for (std::uint64_t i = 0; i < steps; ++i) {
    const StepColor c = walk.step(rng);
    h.mix(walk.current());
    h.mix(c == StepColor::kBlue ? 1 : 0);
  }
  h.mix(walk.blue_steps());
  h.mix(walk.cover().edges_covered());
  return h.h;
}

std::uint64_t multi_eprocess_trajectory(std::uint64_t steps) {
  const Graph g = messy_multigraph();
  Rng rng(777);
  auto rule = make_rule("roundrobin", g, rng);
  MultiEProcess walk(g, {0, 15, 30, 45}, *rule);
  Hasher h;
  for (std::uint64_t i = 0; i < steps; ++i) {
    walk.step(rng);
    for (std::uint32_t w = 0; w < walk.num_walkers(); ++w)
      h.mix(walk.position(w));
  }
  h.mix(walk.blue_steps());
  return h.h;
}

std::uint64_t coalescing_ewalk_trajectory(std::uint64_t steps) {
  const Graph g = messy_multigraph();
  Rng rng(424242);
  auto rule = make_rule("uniform", g, rng);
  CoalescingEWalk walk(g, spread_token_starts(g.num_vertices(), 8, 0),
                       std::move(rule));
  Hasher h;
  for (std::uint64_t i = 0; i < steps; ++i) {
    walk.step(rng);
    h.mix(walk.current());
    h.mix(walk.tokens_remaining());
  }
  h.mix(walk.blue_steps());
  h.mix(walk.first_meeting_step());
  return h.h;
}

std::uint64_t srw_trajectory(std::uint64_t steps) {
  const Graph g = messy_multigraph();
  Rng rng(99);
  SimpleRandomWalk walk(g, 0);
  Hasher h;
  for (std::uint64_t i = 0; i < steps; ++i) {
    walk.step(rng);
    h.mix(walk.current());
  }
  return h.h;
}

std::uint64_t herman_run() {
  const Graph g = cycle_graph(101);
  Rng rng(31337);
  HermanRing ring(g, spread_token_starts(g.num_vertices(), 7, 0));
  run_until_process(ring, rng, CoalescedToOne{}, 10'000'000);
  Hasher h;
  h.mix(ring.coalescence_step());
  h.mix(ring.steps());
  h.mix(ring.current());
  return h.h;
}

// Registry + chunked run_until (the CLI path): E-process driven to vertex
// cover in visit_count_stride chunks through the WalkProcess interface.
std::uint64_t registry_chunked_cover() {
  const Graph g = messy_multigraph();
  Rng rng(5150);
  auto walk = ProcessRegistry::instance().create(
      "eprocess", g, ParamMap{{"rule", "priority"}}, rng);
  run_until(*walk, rng, VertexCovered{}, 1'000'000, visit_count_stride(g));
  Hasher h;
  h.mix(walk->steps());
  h.mix(walk->cover().vertex_cover_step());
  h.mix(walk->current());
  return h.h;
}

std::uint64_t hash_samples(const std::vector<double>& samples) {
  Hasher h;
  for (double s : samples) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(s));
    __builtin_memcpy(&bits, &s, sizeof(bits));
    h.mix(bits);
  }
  return h.h;
}

// Parallel experiment harness: per-trial streams through run_trials.
std::uint64_t measure_cover_samples(std::uint32_t threads) {
  RunRequest req;
  req.trials = 8;
  req.threads = threads;
  req.seed = 2024;
  const auto result = measure_eprocess_cover(
      [](Rng& rng) { return random_regular_connected(200, 4, rng); },
      [](const Graph& g) {
        Rng unused(0);
        return make_rule("uniform", g, unused);
      },
      req);
  return hash_samples(result.samples);
}

std::uint64_t measure_coalescence_samples(std::uint32_t threads) {
  RunRequest req;
  req.trials = 8;
  req.threads = threads;
  req.seed = 4096;
  const auto result = measure_coalescence(
      [](const Graph& g, Rng&) -> std::unique_ptr<TokenProcess> {
        return std::make_unique<CoalescingRW>(
            g, spread_token_starts(g.num_vertices(), 6, 0));
      },
      [](Rng&) { return hypercube(7); }, req);
  Hasher h;
  h.mix(hash_samples(result.samples));
  h.mix(hash_samples(result.meeting_samples));
  return h.h;
}

// ---- Golden constants (produced by the pre-optimisation implementation) ---

constexpr std::uint64_t kGoldenEProcessUniform = 0x54BE81FDB047691AULL;
constexpr std::uint64_t kGoldenEProcessRoundRobin = 0x585E343619067524ULL;
constexpr std::uint64_t kGoldenEProcessAdversary = 0xA42349384C6DC2A3ULL;
constexpr std::uint64_t kGoldenMultiEProcess = 0x4625475AD7E0AAA8ULL;
constexpr std::uint64_t kGoldenCoalescingEWalk = 0x64338EE1F5143885ULL;
constexpr std::uint64_t kGoldenSrw = 0xEE72FD043017D2CCULL;
constexpr std::uint64_t kGoldenHerman = 0x155F93A836DE2D9CULL;
constexpr std::uint64_t kGoldenRegistryChunkedCover = 0xCF56F55BD7929475ULL;
constexpr std::uint64_t kGoldenMeasureCover = 0xCD18DE61349D1940ULL;
constexpr std::uint64_t kGoldenMeasureCoalescence = 0x585855EE7023B846ULL;

constexpr std::uint64_t kTrajectorySteps = 6000;

}  // namespace
}  // namespace ewalk

#ifdef EWALK_GOLDEN_PRINT

#include <cstdio>

int main() {
  using namespace ewalk;
  std::printf("kGoldenEProcessUniform     0x%016llXULL\n",
              (unsigned long long)eprocess_trajectory("uniform", kTrajectorySteps));
  std::printf("kGoldenEProcessRoundRobin  0x%016llXULL\n",
              (unsigned long long)eprocess_trajectory("roundrobin", kTrajectorySteps));
  std::printf("kGoldenEProcessAdversary   0x%016llXULL\n",
              (unsigned long long)eprocess_trajectory("adversary", kTrajectorySteps));
  std::printf("kGoldenMultiEProcess       0x%016llXULL\n",
              (unsigned long long)multi_eprocess_trajectory(kTrajectorySteps));
  std::printf("kGoldenCoalescingEWalk     0x%016llXULL\n",
              (unsigned long long)coalescing_ewalk_trajectory(kTrajectorySteps));
  std::printf("kGoldenSrw                 0x%016llXULL\n",
              (unsigned long long)srw_trajectory(kTrajectorySteps));
  std::printf("kGoldenHerman              0x%016llXULL\n",
              (unsigned long long)herman_run());
  std::printf("kGoldenRegistryChunkedCover 0x%016llXULL\n",
              (unsigned long long)registry_chunked_cover());
  std::printf("kGoldenMeasureCover        0x%016llXULL\n",
              (unsigned long long)measure_cover_samples(4));
  std::printf("kGoldenMeasureCoalescence  0x%016llXULL\n",
              (unsigned long long)measure_coalescence_samples(4));
  return 0;
}

#else  // EWALK_GOLDEN_PRINT

#include <gtest/gtest.h>

namespace ewalk {
namespace {

TEST(StreamIdentity, EProcessUniformOnMultigraphMatchesGolden) {
  EXPECT_EQ(eprocess_trajectory("uniform", kTrajectorySteps),
            kGoldenEProcessUniform);
}

TEST(StreamIdentity, EProcessRoundRobinOnMultigraphMatchesGolden) {
  EXPECT_EQ(eprocess_trajectory("roundrobin", kTrajectorySteps),
            kGoldenEProcessRoundRobin);
}

TEST(StreamIdentity, EProcessAdversaryOnMultigraphMatchesGolden) {
  EXPECT_EQ(eprocess_trajectory("adversary", kTrajectorySteps),
            kGoldenEProcessAdversary);
}

TEST(StreamIdentity, MultiEProcessOnMultigraphMatchesGolden) {
  EXPECT_EQ(multi_eprocess_trajectory(kTrajectorySteps), kGoldenMultiEProcess);
}

TEST(StreamIdentity, CoalescingEWalkOnMultigraphMatchesGolden) {
  EXPECT_EQ(coalescing_ewalk_trajectory(kTrajectorySteps),
            kGoldenCoalescingEWalk);
}

TEST(StreamIdentity, SrwOnMultigraphMatchesGolden) {
  EXPECT_EQ(srw_trajectory(kTrajectorySteps), kGoldenSrw);
}

TEST(StreamIdentity, HermanStabilisationMatchesGolden) {
  EXPECT_EQ(herman_run(), kGoldenHerman);
}

TEST(StreamIdentity, RegistryChunkedCoverMatchesGolden) {
  EXPECT_EQ(registry_chunked_cover(), kGoldenRegistryChunkedCover);
}

TEST(StreamIdentity, MeasureCoverSamplesMatchGoldenOnThreadPool) {
  EXPECT_EQ(measure_cover_samples(4), kGoldenMeasureCover);
}

TEST(StreamIdentity, MeasureCoalescenceSamplesMatchGoldenOnThreadPool) {
  EXPECT_EQ(measure_coalescence_samples(4), kGoldenMeasureCoalescence);
}

// ---- Thread-count invariance on the persistent pool ----------------------

TEST(ThreadPoolIdentity, MeasureCoverSamplesInvariantAcross1To8Threads) {
  const std::uint64_t t1 = measure_cover_samples(1);
  const std::uint64_t t2 = measure_cover_samples(2);
  const std::uint64_t t8 = measure_cover_samples(8);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

TEST(ThreadPoolIdentity, MeasureCoalescenceSamplesInvariantAcross1To8Threads) {
  const std::uint64_t t1 = measure_coalescence_samples(1);
  const std::uint64_t t2 = measure_coalescence_samples(2);
  const std::uint64_t t8 = measure_coalescence_samples(8);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

TEST(ThreadPoolIdentity, TaskExceptionPropagatesToCallerAndPoolSurvives) {
  const auto failing = [](Rng&, std::uint32_t trial) -> double {
    if (trial == 3) throw std::runtime_error("trial failed");
    return 1.0;
  };
  EXPECT_THROW(run_trials(16, 8, 1, failing), std::runtime_error);
  // The pool survives a failed run and serves later calls normally.
  const auto ok = run_trials(8, 8, 1, [](Rng&, std::uint32_t) { return 2.0; });
  EXPECT_EQ(ok, std::vector<double>(8, 2.0));
}

TEST(ThreadPoolIdentity, RunTrialsOrderAndValuesStable) {
  const auto fn = [](Rng& rng, std::uint32_t trial) {
    return static_cast<double>(rng.uniform(1000) + 1000 * trial);
  };
  const auto serial = run_trials(32, 1, 99, fn);
  const auto pooled = run_trials(32, 8, 99, fn);
  EXPECT_EQ(serial, pooled);
  // Re-running on the (already warm) pool must be just as deterministic.
  EXPECT_EQ(pooled, run_trials(32, 8, 99, fn));
}

// ---- step_many chunking vs single stepping -------------------------------

TEST(StepManyIdentity, EProcessStepManyMatchesSingleStepping) {
  const Graph g = messy_multigraph();
  Rng rng_a(5), rng_b(5);
  auto rule_a = make_rule("roundrobin", g, rng_a);
  auto rule_b = make_rule("roundrobin", g, rng_b);
  EProcess a(g, 0, *rule_a);
  EProcess b(g, 0, *rule_b);
  for (int i = 0; i < 500; ++i) a.step(rng_a);
  b.step_many(rng_b, 500);
  EXPECT_EQ(a.current(), b.current());
  EXPECT_EQ(a.steps(), b.steps());
  EXPECT_EQ(a.blue_steps(), b.blue_steps());
  EXPECT_EQ(rng_a(), rng_b());  // streams advanced identically
}

TEST(StepManyIdentity, TokenProcessStepManyMatchesSingleStepping) {
  const Graph g = hypercube(6);
  Rng rng_a(6), rng_b(6);
  CoalescingRW a(g, spread_token_starts(g.num_vertices(), 8, 0));
  CoalescingRW b(g, spread_token_starts(g.num_vertices(), 8, 0));
  for (int i = 0; i < 2000; ++i) a.step(rng_a);
  b.step_many(rng_b, 2000);
  EXPECT_EQ(a.current(), b.current());
  EXPECT_EQ(a.tokens_remaining(), b.tokens_remaining());
  EXPECT_EQ(a.first_meeting_step(), b.first_meeting_step());
  EXPECT_EQ(rng_a(), rng_b());
}

TEST(StepManyIdentity, ChunkedDriverMatchesUnchunkedDriver) {
  const Graph g = messy_multigraph();
  Rng rng_a(7), rng_b(7);
  auto a = ProcessRegistry::instance().create("srw", g, {}, rng_a);
  auto b = ProcessRegistry::instance().create("srw", g, {}, rng_b);
  const bool done_a = run_until(*a, rng_a, VertexCovered{}, 500'000, 1);
  // A big stride drives b in step_many chunks. The trajectory is
  // rng-driven identically (the driver draws nothing), so the covered step
  // must coincide; only where b *stops* may overshoot to its chunk
  // boundary.
  const bool done_b = run_until(*b, rng_b, VertexCovered{}, 500'000, 4096);
  EXPECT_EQ(done_a, done_b);
  EXPECT_EQ(a->cover().vertex_cover_step(), b->cover().vertex_cover_step());
  EXPECT_GE(b->steps(), a->steps());
  EXPECT_LE(b->steps() - a->steps(), 4096u);
}

// ---- O(1) eviction vs reference scan-based partition ---------------------

// The pre-optimisation evict: scan the blue prefix for the slot carrying the
// edge, swap it with the last blue position. Kept here as the executable
// specification the O(1) index must match move-for-move.
class ReferencePartition {
 public:
  explicit ReferencePartition(const Graph& g)
      : order_(2 * static_cast<std::size_t>(g.num_edges())),
        blue_count_(g.num_vertices()) {
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const std::uint32_t off = g.slot_offset(v);
      const std::uint32_t d = g.degree(v);
      blue_count_[v] = d;
      for (std::uint32_t k = 0; k < d; ++k) order_[off + k] = k;
    }
  }

  std::uint32_t blue_count(Vertex v) const { return blue_count_[v]; }

  Slot blue_slot(const Graph& g, Vertex v, std::uint32_t p) const {
    return g.slot(v, order_[g.slot_offset(v) + p]);
  }

  void mark_edge_visited(const Graph& g, EdgeId e) {
    const auto [u, v] = g.endpoints(e);
    evict(g, u, e);
    evict(g, u == v ? u : v, e);
  }

 private:
  void evict(const Graph& g, Vertex owner, EdgeId edge) {
    const std::uint32_t off = g.slot_offset(owner);
    const std::uint32_t b = blue_count_[owner];
    for (std::uint32_t p = 0; p < b; ++p) {
      const std::uint32_t k = order_[off + p];
      if (g.slot(owner, k).edge == edge) {
        const std::uint32_t last = b - 1;
        order_[off + p] = order_[off + last];
        order_[off + last] = k;
        blue_count_[owner] = last;
        return;
      }
    }
    FAIL() << "reference evict: edge not blue at owner";
  }

  std::vector<std::uint32_t> order_;
  std::vector<std::uint32_t> blue_count_;
};

TEST(BluePartitionIdentity, MatchesReferenceScanMoveForMoveOnMultigraph) {
  const Graph g = messy_multigraph();
  BluePartition fast(g);
  ReferencePartition ref(g);
  Rng rng(2718);

  // Evict edges one at a time in a random order, from a random blue vertex's
  // prefix, comparing the full blue prefix of every vertex after each move
  // (self-loops evict two slots of one vertex; parallel edges are distinct
  // edge ids at the same endpoints).
  std::vector<EdgeId> edges(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) edges[e] = e;
  rng.shuffle(std::span<EdgeId>(edges));

  for (const EdgeId e : edges) {
    fast.mark_edge_visited(g, e);
    ref.mark_edge_visited(g, e);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(fast.blue_count(v), ref.blue_count(v)) << "vertex " << v;
      for (std::uint32_t p = 0; p < fast.blue_count(v); ++p) {
        ASSERT_EQ(fast.blue_slot(g, v, p).edge, ref.blue_slot(g, v, p).edge)
            << "vertex " << v << " position " << p;
      }
    }
  }
  for (Vertex v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(fast.blue_count(v), 0u);
}

// (The FillCandidatesMatchesBlueSlotEnumeration test retired with the
// deprecated BluePartition::fill_candidates: the reference-scan comparison
// above already pins blue_slot()'s enumeration order move for move.)

}  // namespace
}  // namespace ewalk

#endif  // EWALK_GOLDEN_PRINT
