// Tests for the consolidated graph profile.
#include <gtest/gtest.h>

#include "analysis/girth.hpp"
#include "analysis/profile.hpp"
#include "graph/generators.hpp"

namespace ewalk {
namespace {

TEST(Profile, RandomRegularExpander) {
  Rng rng(1);
  const Graph g = random_regular_connected(500, 4, rng);
  const auto p = profile_graph(g);
  EXPECT_EQ(p.n, 500u);
  EXPECT_EQ(p.m, 1000u);
  EXPECT_EQ(p.min_degree, 4u);
  EXPECT_TRUE(p.all_degrees_even);
  EXPECT_TRUE(p.connected);
  EXPECT_TRUE(p.simple);
  EXPECT_EQ(p.girth, 3u);
  EXPECT_GT(p.gap, 0.05);
  EXPECT_GT(p.certified_ell, 0u);
  EXPECT_GT(p.mixing_time, 0.0);
  EXPECT_GT(p.theorem1_shape, static_cast<double>(p.n));
  EXPECT_GT(p.theorem3_shape, static_cast<double>(p.m));
}

TEST(Profile, BipartiteUsesLazyGap) {
  const auto p = profile_graph(complete_bipartite(6, 6));
  EXPECT_NEAR(p.gap, 0.0, 1e-6);
  EXPECT_GT(p.lazy_gap, 0.1);
  EXPECT_GT(p.mixing_time, 0.0);  // computed from the lazy gap
}

TEST(Profile, AcyclicGraphs) {
  const auto p = profile_graph(binary_tree(4));
  EXPECT_EQ(p.girth, kInfiniteGirth);
  EXPECT_EQ(p.certified_ell, kInfiniteGirth);
  EXPECT_EQ(p.theorem3_shape, 0.0);  // girth term undefined
}

TEST(Profile, SkipEllOption) {
  ProfileOptions options;
  options.compute_ell = false;
  const auto p = profile_graph(cycle_graph(50), options);
  EXPECT_EQ(p.certified_ell, 0u);
  EXPECT_EQ(p.theorem1_shape, 0.0);
}

TEST(Profile, FormatMentionsKeyFields) {
  const auto p = profile_graph(torus_2d(5, 5));
  const std::string text = format_profile(p);
  EXPECT_NE(text.find("vertices"), std::string::npos);
  EXPECT_NE(text.find("girth"), std::string::npos);
  EXPECT_NE(text.find("conductance"), std::string::npos);
  EXPECT_NE(text.find("all even"), std::string::npos);
}

TEST(Profile, CycleEllEqualsN) {
  const auto p = profile_graph(cycle_graph(12));
  EXPECT_EQ(p.girth, 12u);
  EXPECT_EQ(p.certified_ell, 12u);
}

}  // namespace
}  // namespace ewalk
