// Property-style sweeps pinning the library against closed-form mathematics
// that is independent of the implementation:
//   * circulant graph spectra (sums of cosines),
//   * hypercube spectra (1 - 2k/r with binomial multiplicities),
//   * stationary first-visit ordering,
//   * E-process cover-time exactness on trees-with-one-cycle etc.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <tuple>

#include "engine/driver.hpp"
#include "graph/generators.hpp"
#include "spectral/spectrum.hpp"
#include "walks/eprocess.hpp"
#include "walks/rules.hpp"

namespace ewalk {
namespace {

// Circulant C_n(o_1..o_k) transition eigenvalues: for j = 0..n-1,
//   λ_j = (1/k) Σ_i cos(2π j o_i / n).
class CirculantSpectrum
    : public ::testing::TestWithParam<std::tuple<Vertex, std::vector<std::uint32_t>>> {};

TEST_P(CirculantSpectrum, MatchesCosineFormula) {
  const auto& [n, offsets] = GetParam();
  const Graph g = circulant(n, offsets);
  const auto eig = dense_spectrum(g);
  std::vector<double> expected;
  for (Vertex j = 0; j < n; ++j) {
    double acc = 0;
    for (const auto o : offsets)
      acc += std::cos(2.0 * std::numbers::pi * j * o / n);
    expected.push_back(acc / offsets.size());
  }
  std::sort(expected.begin(), expected.end(), std::greater<>());
  ASSERT_EQ(eig.size(), expected.size());
  for (std::size_t i = 0; i < eig.size(); ++i)
    EXPECT_NEAR(eig[i], expected[i], 1e-7) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Families, CirculantSpectrum,
    ::testing::Values(std::make_tuple(Vertex{8}, std::vector<std::uint32_t>{1}),
                      std::make_tuple(Vertex{12}, std::vector<std::uint32_t>{1, 2}),
                      std::make_tuple(Vertex{15}, std::vector<std::uint32_t>{1, 4}),
                      std::make_tuple(Vertex{16}, std::vector<std::uint32_t>{1, 2, 3}),
                      std::make_tuple(Vertex{20}, std::vector<std::uint32_t>{2, 5})));

TEST(HypercubeSpectrum, BinomialMultiplicities) {
  // H_r: eigenvalue 1 - 2k/r with multiplicity C(r, k).
  const std::uint32_t r = 5;
  const auto eig = dense_spectrum(hypercube(r));
  std::vector<double> expected;
  for (std::uint32_t k = 0; k <= r; ++k) {
    std::uint64_t binom = 1;
    for (std::uint32_t i = 0; i < k; ++i) binom = binom * (r - i) / (i + 1);
    for (std::uint64_t c = 0; c < binom; ++c)
      expected.push_back(1.0 - 2.0 * k / r);
  }
  std::sort(expected.begin(), expected.end(), std::greater<>());
  ASSERT_EQ(eig.size(), expected.size());
  for (std::size_t i = 0; i < eig.size(); ++i) EXPECT_NEAR(eig[i], expected[i], 1e-7);
}

// On any even-degree connected graph, the E-process's first blue phase
// traverses a closed trail from the start; if the graph is *Eulerian-cover
// sized* (every edge reachable without red steps at all — true for any
// connected even-degree graph by Euler's theorem when the rule is free to
// choose), an entire Euler tour is possible. The uniform rule won't always
// find it, but blue_steps == m at edge cover for every even graph.
class EvenGraphEdgeCover
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(EvenGraphEdgeCover, BlueStepsEqualEdges) {
  const auto [kind, seed] = GetParam();
  Rng rng(seed);
  Graph g = [&]() -> Graph {
    switch (kind) {
      case 0:
        return torus_2d(6, 5);
      case 1:
        return hamiltonian_cycle_union(64, 3, rng);
      case 2:
        return random_regular_connected(48, 6, rng);
      default:
        return margulis_expander(7);
    }
  }();
  UniformRule rule;
  EProcess walk(g, static_cast<Vertex>(rng.uniform(g.num_vertices())), rule);
  ASSERT_TRUE(run_until_edge_cover(walk, rng, 1u << 24));
  EXPECT_EQ(walk.blue_steps(), static_cast<std::uint64_t>(g.num_edges()));
}

INSTANTIATE_TEST_SUITE_P(KindsAndSeeds, EvenGraphEdgeCover,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values<std::uint64_t>(1, 2, 3, 4)));

TEST(FirstVisitTimes, RespectCoverStep) {
  // max over v of first_visit_step(v) == vertex_cover_step, and every first
  // visit is <= the cover step.
  Rng rng(5);
  const Graph g = random_regular_connected(200, 4, rng);
  UniformRule rule;
  EProcess walk(g, 0, rule);
  ASSERT_TRUE(run_until_vertex_cover(walk, rng, 1u << 24));
  std::uint64_t max_fv = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto fv = walk.cover().first_visit_step(v);
    ASSERT_NE(fv, kNotCovered);
    max_fv = std::max(max_fv, fv);
  }
  EXPECT_EQ(max_fv, walk.cover().vertex_cover_step());
  EXPECT_EQ(walk.cover().first_visit_step(0), 0u);
}

TEST(FirstVisitTimes, EProcessFirstVisitsAlwaysBlue) {
  // Any edge into an unvisited vertex is itself unvisited, so every first
  // visit must happen on a blue transition. Verify by checking that the
  // number of vertices covered never increases on a red step.
  Rng grng(6);
  const Graph g = random_regular_connected(150, 4, grng);
  UniformRule rule;
  EProcess walk(g, 0, rule);
  Rng rng(7);
  std::uint32_t covered = walk.cover().vertices_covered();
  while (!walk.cover().all_vertices_covered()) {
    const StepColor color = walk.step(rng);
    if (walk.cover().vertices_covered() > covered) {
      EXPECT_EQ(color, StepColor::kBlue);
      covered = walk.cover().vertices_covered();
    }
  }
}

TEST(Determinism, WholePipelineIsReproducible) {
  // Graph generation + E-process + cover statistics are a pure function of
  // the seed.
  const auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    const Graph g = random_regular_connected(300, 4, rng);
    UniformRule rule;
    EProcess walk(g, 0, rule);
    run_until_edge_cover(walk, rng, 1u << 26);
    return std::make_tuple(walk.steps(), walk.red_steps(),
                           walk.cover().vertex_cover_step(),
                           walk.cover().edge_cover_step());
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(std::get<0>(run(42)), std::get<0>(run(43)));
}

TEST(CoverState, MinVisitCountTracksBlanket) {
  Rng rng(8);
  const Graph g = complete_graph(12);
  UniformRule rule;
  EProcess walk(g, 0, rule);
  EXPECT_EQ(walk.cover().min_visit_count(), 0u);
  ASSERT_TRUE(run_until_vertex_cover(walk, rng, 1u << 22));
  EXPECT_GE(walk.cover().min_visit_count(), 1u);
}

}  // namespace
}  // namespace ewalk
