// Tests for util: RNG engines, stream derivation, statistics, fitting, CLI,
// and CSV output.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace ewalk {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(Rng, UniformBoundOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform_real();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(15);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(Rng, SplitStreamsAreIndependentish) {
  Rng parent(21);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (child1.next_u64() == child2.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(23);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(std::span<int>(v));
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng rng(25);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.shuffle(std::span<int>(v));
  int fixed = 0;
  for (int i = 0; i < 100; ++i) fixed += (v[i] == i);
  EXPECT_LT(fixed, 20);
}

TEST(DeriveStreams, DeterministicAndDistinct) {
  auto s1 = derive_streams(99, 4);
  auto s2 = derive_streams(99, 4);
  ASSERT_EQ(s1.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(s1[i].next_u64(), s2[i].next_u64());
  auto s3 = derive_streams(99, 2);
  auto s4 = derive_streams(100, 2);
  EXPECT_NE(s3[0].next_u64(), s4[0].next_u64());
}

TEST(MersenneRng, MatchesStdMt19937_64) {
  MersenneRng ours(12345);
  std::mt19937_64 ref(12345);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(ours.next_u64(), ref());
}

TEST(MersenneRng, UniformRespectsBound) {
  MersenneRng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Stats, SummarizeBasic) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const auto s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.variance, 2.5);
}

TEST(Stats, SummarizeEvenCountMedian) {
  const std::vector<double> xs{1, 2, 3, 10};
  EXPECT_DOUBLE_EQ(summarize(xs).median, 2.5);
}

TEST(Stats, SummarizeEmptyAndSingle) {
  EXPECT_EQ(summarize({}).count, 0u);
  const std::vector<double> one{7.0};
  const auto s = summarize(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
}

TEST(Stats, LinearFitExactLine) {
  const std::vector<double> xs{0, 1, 2, 3};
  const std::vector<double> ys{1, 3, 5, 7};  // y = 2x + 1
  const auto fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, FitCnLogNRecoversConstant) {
  // Generate cover times C(n) = 0.93 n ln n + 2 n and check c ≈ 0.93.
  std::vector<double> ns, cs;
  for (double n : {1e4, 3e4, 1e5, 3e5, 5e5}) {
    ns.push_back(n);
    cs.push_back(0.93 * n * std::log(n) + 2.0 * n);
  }
  const auto fit = fit_c_nlogn(ns, cs);
  EXPECT_NEAR(fit.slope, 0.93, 1e-9);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-9);
}

TEST(Stats, RunningStatsMatchesSummarize) {
  RunningStats r;
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : xs) r.add(x);
  const auto s = summarize(xs);
  EXPECT_EQ(r.count(), s.count);
  EXPECT_NEAR(r.mean(), s.mean, 1e-12);
  EXPECT_NEAR(r.variance(), s.variance, 1e-12);
  EXPECT_DOUBLE_EQ(r.min(), 2.0);
  EXPECT_DOUBLE_EQ(r.max(), 9.0);
}

TEST(Cli, ParsesForms) {
  // Note: a bare flag greedily consumes a following non-flag token, so
  // positionals come first (or use --flag=true).
  const char* argv[] = {"prog", "positional", "--n=100", "--seed", "7", "--verbose"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 100);
  EXPECT_EQ(cli.get_u64("seed", 0), 7u);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  ASSERT_EQ(cli.positionals().size(), 1u);
  EXPECT_EQ(cli.positionals()[0], "positional");
}

TEST(Cli, DoubleAndDefaults) {
  const char* argv[] = {"prog", "--alpha=0.5"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0), 0.5);
  EXPECT_DOUBLE_EQ(cli.get_double("beta", 1.25), 1.25);
  EXPECT_FALSE(cli.has("beta"));
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = std::filesystem::temp_directory_path() / "ewalk_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.row({1.0, 2.5});
    w.row({3.0, 4.0});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 2), "1,");
  std::remove(path.c_str());
}

TEST(Csv, RejectsWidthMismatch) {
  const std::string path = std::filesystem::temp_directory_path() / "ewalk_csv_test2.csv";
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.row({1.0}), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Timer, MeasuresElapsed) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_LT(t.seconds(), 10.0);
}

}  // namespace
}  // namespace ewalk
