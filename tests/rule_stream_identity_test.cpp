// Rule stream-identity suite for the index-based choice API.
//
// The choice-rule API moved from span-consuming choose(view, at, candidates,
// rng) to index-based choose_index(view, at, blue_count, rng) with O(1) lazy
// candidate access through the view. The redesign is required to be
// choice-for-choice invisible: for every rule, the index-based
// implementation must reproduce exactly the choices (and rng draws) the
// recorded span path made.
//
// This suite pins that down by re-implementing each registry rule as a
// *legacy twin* that overrides only a span-consuming choose() — i.e. the
// rule exactly as it was written before the migration — and driving two
// identically seeded walks: one with the shipped index-based rule, one with
// the twin. The removed base-class span adapter lives on here as a
// test-local shim (SpanRuleShim below): it materialises the candidates via
// view.blue_slot() exactly as the deprecated adapter did, so the twins
// still exercise the byte-for-byte pre-migration rule bodies against the
// shipped rules. Positions, colours, blue/red counts, and the rng stream
// must coincide step for step on:
//   * the cycle (every blue step has <= 2 candidates),
//   * the complete graph K_1000 (dense: the span the old path copied was
//     ~10^3 slots — exactly where the lazy path pays off),
//   * a self-loop/parallel-edge multigraph (eviction-order subtleties).
// MultiEProcess and CoalescingEWalk are covered through the same chooser.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/registry.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "interact/coalescing.hpp"
#include "interact/token_system.hpp"
#include "util/rng.hpp"
#include "walks/eprocess.hpp"
#include "walks/multi_eprocess.hpp"
#include "walks/rules.hpp"

namespace ewalk {
namespace {

// ---- Legacy twins ----------------------------------------------------------
//
// SpanRuleShim replays the removed span-rule API: choose_index()
// materialises the blue candidates into a scratch vector (the old span
// path's copy, in blue_slot() enumeration order — the order the old
// fill_candidates() produced) and delegates to a span-consuming choose().
// Each twin overrides ONLY choose(), byte-for-byte the rule bodies as they
// existed before the index migration, so the suite still proves the
// index-based dispatch reproduces the historical span dispatch even though
// the production adapter is gone.

class SpanRuleShim : public UnvisitedEdgeRule {
 public:
  std::uint32_t choose_index(const EProcessView& view, Vertex at,
                             std::uint32_t blue_count, Rng& rng) final {
    scratch_.resize(blue_count);
    for (std::uint32_t i = 0; i < blue_count; ++i)
      scratch_[i] = view.blue_slot(at, i);
    return choose(view, at, scratch_, rng);
  }

  /// The pre-migration entry point the twins implement.
  virtual std::uint32_t choose(const EProcessView& view, Vertex at,
                               std::span<const Slot> candidates, Rng& rng) = 0;

 private:
  std::vector<Slot> scratch_;
};

class LegacyUniform final : public SpanRuleShim {
 public:
  std::uint32_t choose(const EProcessView&, Vertex,
                       std::span<const Slot> candidates, Rng& rng) override {
    return static_cast<std::uint32_t>(rng.uniform(candidates.size()));
  }
  const char* name() const override { return "legacy-uniform"; }
  // Deliberately NOT uniform_over_candidates(): forces the span path, so the
  // comparison also re-proves fast path == span path.
};

class LegacyFirst final : public SpanRuleShim {
 public:
  std::uint32_t choose(const EProcessView&, Vertex, std::span<const Slot>,
                       Rng&) override {
    return 0;
  }
  const char* name() const override { return "legacy-first"; }
};

class LegacyLast final : public SpanRuleShim {
 public:
  std::uint32_t choose(const EProcessView&, Vertex,
                       std::span<const Slot> candidates, Rng&) override {
    return static_cast<std::uint32_t>(candidates.size() - 1);
  }
  const char* name() const override { return "legacy-last"; }
};

class LegacyRoundRobin final : public SpanRuleShim {
 public:
  explicit LegacyRoundRobin(Vertex n) : next_(n, 0) {}
  std::uint32_t choose(const EProcessView&, Vertex at,
                       std::span<const Slot> candidates, Rng&) override {
    const std::uint32_t idx =
        next_[at] % static_cast<std::uint32_t>(candidates.size());
    next_[at] = idx + 1;
    return idx;
  }
  const char* name() const override { return "legacy-roundrobin"; }

 private:
  std::vector<std::uint32_t> next_;
};

class LegacyAdversary final : public SpanRuleShim {
 public:
  std::uint32_t choose(const EProcessView& view, Vertex,
                       std::span<const Slot> candidates, Rng&) override {
    std::uint32_t best = 0;
    std::uint32_t best_count = view.cover().visit_count(candidates[0].neighbor);
    for (std::uint32_t i = 1; i < candidates.size(); ++i) {
      const std::uint32_t c = view.cover().visit_count(candidates[i].neighbor);
      if (c > best_count) {
        best = i;
        best_count = c;
      }
    }
    return best;
  }
  const char* name() const override { return "legacy-adversary"; }
};

class LegacyGreedy final : public SpanRuleShim {
 public:
  std::uint32_t choose(const EProcessView& view, Vertex,
                       std::span<const Slot> candidates, Rng& rng) override {
    std::uint32_t unvisited_seen = 0;
    std::uint32_t pick = 0;
    for (std::uint32_t i = 0; i < candidates.size(); ++i) {
      if (!view.cover().vertex_visited(candidates[i].neighbor)) {
        ++unvisited_seen;
        if (rng.uniform(unvisited_seen) == 0) pick = i;
      }
    }
    if (unvisited_seen > 0) return pick;
    return static_cast<std::uint32_t>(rng.uniform(candidates.size()));
  }
  const char* name() const override { return "legacy-greedy"; }
};

class LegacyPriority final : public SpanRuleShim {
 public:
  explicit LegacyPriority(std::vector<EdgeId> priority)
      : priority_(std::move(priority)) {}
  std::uint32_t choose(const EProcessView&, Vertex,
                       std::span<const Slot> candidates, Rng&) override {
    std::uint32_t best = 0;
    for (std::uint32_t i = 1; i < candidates.size(); ++i)
      if (priority_[candidates[i].edge] < priority_[candidates[best].edge])
        best = i;
    return best;
  }
  const char* name() const override { return "legacy-priority"; }

 private:
  std::vector<EdgeId> priority_;
};

/// The priority permutation FixedPriorityRule(num_edges, rng) draws,
/// replayed so the twin sees the identical schedule.
std::vector<EdgeId> priority_permutation(EdgeId num_edges, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<EdgeId> priority(num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) priority[e] = e;
  rng.shuffle(std::span<EdgeId>(priority));
  return priority;
}

/// Builds the shipped index-based rule and its legacy span twin, guaranteed
/// to encode the same choice function (incl. the priority permutation).
struct RulePair {
  std::unique_ptr<UnvisitedEdgeRule> current;
  std::unique_ptr<UnvisitedEdgeRule> legacy;
};

RulePair make_pair_for(const std::string& name, const Graph& g) {
  constexpr std::uint64_t kPrioritySeed = 905;
  if (name == "uniform")
    return {std::make_unique<UniformRule>(), std::make_unique<LegacyUniform>()};
  if (name == "first")
    return {std::make_unique<FirstSlotRule>(), std::make_unique<LegacyFirst>()};
  if (name == "last")
    return {std::make_unique<LastSlotRule>(), std::make_unique<LegacyLast>()};
  if (name == "roundrobin")
    return {std::make_unique<RoundRobinRule>(g.num_vertices()),
            std::make_unique<LegacyRoundRobin>(g.num_vertices())};
  if (name == "adversary")
    return {std::make_unique<PreferVisitedEndpointRule>(),
            std::make_unique<LegacyAdversary>()};
  if (name == "greedy")
    return {std::make_unique<PreferUnvisitedEndpointRule>(),
            std::make_unique<LegacyGreedy>()};
  if (name == "priority") {
    Rng rule_rng(kPrioritySeed);
    return {std::make_unique<FixedPriorityRule>(g.num_edges(), rule_rng),
            std::make_unique<LegacyPriority>(
                priority_permutation(g.num_edges(), kPrioritySeed))};
  }
  throw std::invalid_argument("no twin for rule: " + name);
}

// ---- Graphs ----------------------------------------------------------------

enum class GraphKind { kCycle, kCompleteK1000, kMessyMultigraph };

// Mirrors perf_regression_test's messy_multigraph: self-loops, parallel
// edges, chords — where candidate-enumeration order subtleties live.
Graph make_graph(GraphKind kind) {
  switch (kind) {
    case GraphKind::kCycle:
      return cycle_graph(300);
    case GraphKind::kCompleteK1000:
      return complete_graph(1000);
    case GraphKind::kMessyMultigraph: {
      const Vertex n = 60;
      GraphBuilder b(n);
      for (Vertex v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
      for (Vertex v = 0; v < n; v += 5) b.add_edge(v, (v + 1) % n);
      for (Vertex v = 0; v < n; v += 7) b.add_edge(v, v);
      for (Vertex v = 0; v < n; v += 3) b.add_edge(v, (v + 13) % n);
      return b.build();
    }
  }
  throw std::logic_error("unreachable");
}

const char* graph_label(GraphKind kind) {
  switch (kind) {
    case GraphKind::kCycle: return "cycle";
    case GraphKind::kCompleteK1000: return "K1000";
    case GraphKind::kMessyMultigraph: return "multigraph";
  }
  return "?";
}

std::uint64_t steps_for(GraphKind kind) {
  // Enough steps that K_1000 stays deep in its blue phase (every step hits
  // the rule) while cycle/multigraph run past full cover into red territory.
  return kind == GraphKind::kCompleteK1000 ? 20000 : 5000;
}

// ---- The identity checks ---------------------------------------------------

using Param = std::tuple<std::string, GraphKind>;

class RuleStreamIdentity : public ::testing::TestWithParam<Param> {};

TEST_P(RuleStreamIdentity, IndexPathMatchesRecordedSpanPath) {
  const auto& [rule_name, graph_kind] = GetParam();
  const Graph g = make_graph(graph_kind);
  auto pair = make_pair_for(rule_name, g);

  Rng rng_new(7777), rng_old(7777);
  EProcess walk_new(g, 0, *pair.current);
  EProcess walk_old(g, 0, *pair.legacy);

  const std::uint64_t steps = steps_for(graph_kind);
  for (std::uint64_t i = 0; i < steps; ++i) {
    const StepColor c_new = walk_new.step(rng_new);
    const StepColor c_old = walk_old.step(rng_old);
    ASSERT_EQ(c_new, c_old) << "colour diverged at step " << i;
    ASSERT_EQ(walk_new.current(), walk_old.current())
        << "position diverged at step " << i;
  }
  EXPECT_EQ(walk_new.blue_steps(), walk_old.blue_steps());
  EXPECT_EQ(walk_new.red_steps(), walk_old.red_steps());
  EXPECT_EQ(walk_new.cover().edges_covered(), walk_old.cover().edges_covered());
  EXPECT_EQ(rng_new(), rng_old());  // streams advanced identically
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistryRules, RuleStreamIdentity,
    ::testing::Combine(::testing::ValuesIn(rule_names()),
                       ::testing::Values(GraphKind::kCycle,
                                         GraphKind::kCompleteK1000,
                                         GraphKind::kMessyMultigraph)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::get<0>(info.param) + "_" +
             graph_label(std::get<1>(info.param));
    });

// The shared chooser is also what MultiEProcess and CoalescingEWalk call;
// drive both through a non-uniform rule to cover those call sites.

TEST(RuleStreamIdentityMulti, MultiEProcessIndexPathMatchesSpanPath) {
  const Graph g = make_graph(GraphKind::kMessyMultigraph);
  Rng rng_new(31), rng_old(31);
  RoundRobinRule rule_new(g.num_vertices());
  LegacyRoundRobin rule_old(g.num_vertices());
  MultiEProcess walk_new(g, {0, 20, 40}, rule_new);
  MultiEProcess walk_old(g, {0, 20, 40}, rule_old);
  for (int i = 0; i < 4000; ++i) {
    walk_new.step(rng_new);
    walk_old.step(rng_old);
    for (std::uint32_t w = 0; w < walk_new.num_walkers(); ++w)
      ASSERT_EQ(walk_new.position(w), walk_old.position(w)) << "step " << i;
  }
  EXPECT_EQ(walk_new.blue_steps(), walk_old.blue_steps());
  EXPECT_EQ(rng_new(), rng_old());
}

TEST(RuleStreamIdentityMulti, CoalescingEWalkIndexPathMatchesSpanPath) {
  const Graph g = make_graph(GraphKind::kMessyMultigraph);
  Rng rng_new(53), rng_old(53);
  CoalescingEWalk walk_new(g, spread_token_starts(g.num_vertices(), 6, 0),
                           std::make_unique<PreferVisitedEndpointRule>());
  CoalescingEWalk walk_old(g, spread_token_starts(g.num_vertices(), 6, 0),
                           std::make_unique<LegacyAdversary>());
  for (int i = 0; i < 4000; ++i) {
    walk_new.step(rng_new);
    walk_old.step(rng_old);
    ASSERT_EQ(walk_new.current(), walk_old.current()) << "step " << i;
    ASSERT_EQ(walk_new.tokens_remaining(), walk_old.tokens_remaining());
  }
  EXPECT_EQ(walk_new.blue_steps(), walk_old.blue_steps());
  EXPECT_EQ(walk_new.first_meeting_step(), walk_old.first_meeting_step());
  EXPECT_EQ(rng_new(), rng_old());
}

// (The pre-removal RuleContract tests — partition-less views throwing and
// the adapter's override-neither error — went away with the deprecated API:
// choose_index() is now pure virtual and every view carries a partition, so
// both misuses are compile errors instead of runtime throws.)

}  // namespace
}  // namespace ewalk
