// Serving-layer tests: protocol round-trips, GraphStore caching/eviction,
// determinism under caching and concurrency, graceful shutdown, and
// malformed-request resilience (src/serve/).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <mutex>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/registry.hpp"
#include "serve/graph_store.hpp"
#include "serve/protocol.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"

namespace ewalk {
namespace {

// A thread-safe response collector usable as a Server::Sink.
struct Collector {
  std::mutex mutex;
  std::vector<std::string> lines;
  Server::Sink sink() {
    return [this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mutex);
      lines.push_back(line);
    };
  }
  std::vector<std::string> snapshot() {
    std::lock_guard<std::mutex> lock(mutex);
    return lines;
  }
};

// Response lines minus the legitimately varying fields: wall_seconds
// (timing) and cache_hit (whether the store was warm). What remains —
// samples, stats, graph shape, budget — is pinned by the determinism
// contract and must be bit-identical across cache states and scheduling.
std::string canonical(const std::string& line) {
  static const std::regex volatile_fields(
      ",\"(wall_seconds\":[0-9.eE+-]+|cache_hit\":(true|false))");
  return std::regex_replace(line, volatile_fields, "");
}

std::vector<std::string> result_lines(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  for (const auto& line : lines)
    if (line.find("\"status\":\"queued\"") == std::string::npos)
      out.push_back(canonical(line));
  std::sort(out.begin(), out.end());
  return out;
}

std::string run_line(const std::string& id, const std::string& graph,
                     const std::string& process, std::uint64_t seed,
                     std::uint32_t n, std::uint32_t trials = 3) {
  std::ostringstream line;
  line << "{\"op\":\"run\",\"id\":\"" << id << "\",\"graph\":\"" << graph
       << "\",\"process\":\"" << process << "\",\"seed\":" << seed
       << ",\"trials\":" << trials << ",\"params\":{\"n\":\"" << n << "\"}}";
  return line.str();
}

// ---- Protocol --------------------------------------------------------------

TEST(Protocol, ParsesRunRequestFields) {
  const auto req = parse_request(
      "{\"op\":\"run\",\"id\":\"r9\",\"graph\":\"regular\","
      "\"process\":\"eprocess\",\"trials\":7,\"threads\":2,\"seed\":"
      "18446744073709551615,\"max-steps\":123,\"target\":\"edges\","
      "\"bundle\":4,\"analysis\":true,\"params\":{\"n\":\"128\",\"r\":\"4\"}}");
  EXPECT_EQ(req.op, "run");
  EXPECT_EQ(req.id, "r9");
  EXPECT_EQ(req.run.graph, "regular");
  EXPECT_EQ(req.run.process, "eprocess");
  EXPECT_EQ(req.run.trials, 7u);
  EXPECT_EQ(req.run.threads, 2u);
  // 64-bit seeds survive: numbers keep their literal spelling, no double.
  EXPECT_EQ(req.run.seed, 18446744073709551615ULL);
  EXPECT_EQ(req.run.max_steps, 123u);
  EXPECT_EQ(req.run.target, RunTarget::kEdges);
  EXPECT_EQ(req.run.bundle_width, 4u);
  EXPECT_TRUE(req.run.analysis);
  EXPECT_EQ(req.run.params.get("n", ""), "128");
  EXPECT_EQ(req.run.params.get("r", ""), "4");
}

TEST(Protocol, SerializeParseRoundTrip) {
  const std::string line =
      "{\"op\":\"run\",\"id\":\"a\",\"graph\":\"cycle\",\"process\":\"srw\","
      "\"seed\":42,\"trials\":5,\"params\":{\"n\":\"64\"}}";
  const ServerRequest first = parse_request(line);
  const std::string canonical_line = serialize_request(first);
  const ServerRequest second = parse_request(canonical_line);
  EXPECT_EQ(second.id, first.id);
  EXPECT_EQ(second.run.graph, first.run.graph);
  EXPECT_EQ(second.run.process, first.run.process);
  EXPECT_EQ(second.run.seed, first.run.seed);
  EXPECT_EQ(second.run.trials, first.run.trials);
  EXPECT_EQ(second.run.params.get("n", ""), "64");
  // Serialization is a fixed point: canonical text re-serialises to itself.
  EXPECT_EQ(serialize_request(second), canonical_line);
}

TEST(Protocol, AliasSpellingsFoldToCanonical) {
  // --walk/--generator and --process/--graph share one option table
  // (util/cli); the protocol accepts both spellings identically.
  const auto aliased = parse_request(
      "{\"op\":\"run\",\"generator\":\"cycle\",\"walk\":\"srw\","
      "\"params\":{\"n\":\"32\"}}");
  EXPECT_EQ(aliased.run.graph, "cycle");
  EXPECT_EQ(aliased.run.process, "srw");
  // Conflicting alias + canonical values are an error, not a silent pick.
  EXPECT_THROW(
      parse_request("{\"op\":\"run\",\"walk\":\"srw\",\"process\":\"rotor\"}"),
      std::invalid_argument);
}

TEST(Protocol, UnknownFieldRejectedWithSuggestion) {
  try {
    parse_request("{\"op\":\"run\",\"trails\":5}");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& ex) {
    const std::string message = ex.what();
    EXPECT_NE(message.find("trails"), std::string::npos) << message;
    EXPECT_NE(message.find("did you mean"), std::string::npos) << message;
    EXPECT_NE(message.find("trials"), std::string::npos) << message;
  }
}

TEST(Protocol, MalformedJsonRejected) {
  EXPECT_THROW(parse_request("{\"op\":\"run\""), std::invalid_argument);
  EXPECT_THROW(parse_request("not json at all"), std::invalid_argument);
  EXPECT_THROW(parse_request("{\"op\":\"run\"} trailing"),
               std::invalid_argument);
  EXPECT_THROW(parse_request("[1,2,3]"), std::invalid_argument);
  EXPECT_THROW(parse_request("{\"op\":\"frobnicate\"}"),
               std::invalid_argument);
}

TEST(Protocol, StringEscapesRoundTrip) {
  const JsonValue v = parse_json(
      "{\"id\":\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"}");
  ASSERT_EQ(v.object.size(), 1u);
  EXPECT_EQ(v.object[0].second.string, "a\"b\\c\n\tA\xc3\xa9");
  // json_quote escapes control characters back to parseable form.
  const std::string quoted = json_quote("a\"b\\c\n\tA");
  const JsonValue back = parse_json(quoted);
  EXPECT_EQ(back.string, "a\"b\\c\n\tA");
}

// ---- GraphStore ------------------------------------------------------------

ParamMap cycle_params(std::uint32_t n) {
  ParamMap p;
  p.set("n", std::to_string(n));
  return p;
}

TEST(GraphStoreTest, HitMissCountersAndKeyCanonicalisation) {
  GraphStore store;
  bool hit = true;
  const auto a = store.acquire("cycle", cycle_params(64), 1, &hit);
  EXPECT_FALSE(hit);
  // Walk-level parameters are not part of the graph key: a request that
  // only differs in --rule must reuse the cached instance.
  ParamMap with_rule = cycle_params(64);
  with_rule.set("rule", "first");
  const auto b = store.acquire("cycle", with_rule, 1, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a.get(), b.get());
  // Different seed or different size are different graphs.
  store.acquire("cycle", cycle_params(64), 2, &hit);
  EXPECT_FALSE(hit);
  store.acquire("cycle", cycle_params(128), 1, &hit);
  EXPECT_FALSE(hit);
  const auto stats = store.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(GraphStoreTest, CacheKeyIsCanonical) {
  ParamMap bag = cycle_params(64);
  bag.set("rule", "first");     // walk-level: dropped for "cycle"
  bag.set("trials", "9");       // run-level: dropped always
  EXPECT_EQ(GraphStore::cache_key("cycle", bag, 7),
            GraphStore::cache_key("cycle", cycle_params(64), 7));
  EXPECT_NE(GraphStore::cache_key("cycle", cycle_params(64), 7),
            GraphStore::cache_key("cycle", cycle_params(64), 8));
}

TEST(GraphStoreTest, EvictsLruUnderByteBudget) {
  // Size the budget from a real entry so the test tracks the bytes()
  // estimate instead of hard-coding struct sizes.
  std::uint64_t one_graph_bytes = 0;
  {
    GraphStore probe;
    probe.acquire("cycle", cycle_params(64), 1);
    one_graph_bytes = probe.stats().bytes;
  }
  GraphStore store(one_graph_bytes + one_graph_bytes / 2);
  const auto a = store.acquire("cycle", cycle_params(64), 1);
  store.acquire("cycle", cycle_params(64), 2);  // over budget: evicts seed 1
  auto stats = store.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  // The evicted instance stays alive for holders of the shared_ptr.
  EXPECT_EQ(a->graph().num_vertices(), 64u);
  // Re-acquiring the evicted key is a rebuild, not a hit.
  bool hit = true;
  store.acquire("cycle", cycle_params(64), 1, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(store.stats().misses, 3u);
}

TEST(GraphStoreTest, SingleFlightUnderConcurrency) {
  // N concurrent acquires of one cold key: exactly one construction, the
  // rest are (possibly coalesced) hits — and the counters are a pure
  // function of the request multiset, not the interleaving.
  GraphStore store;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const CachedGraph>> got(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&store, &got, t] {
      got[t] = store.acquire("cycle", cycle_params(96), 5);
    });
  for (auto& t : threads) t.join();
  const auto stats = store.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, kThreads - 1u);
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(got[t].get(), got[0].get());
}

TEST(GraphStoreTest, AnalysisComputedOnceAndCached) {
  // Odd cycle: non-bipartite, so the spectrum is non-degenerate and the
  // girth equals n — stable facts to pin the lazily cached block against.
  GraphStore store;
  const auto cached = store.acquire("cycle", cycle_params(31), 1);
  bool hit = true;
  const GraphAnalysis& first = cached->analysis(&hit);
  EXPECT_FALSE(hit);
  const GraphAnalysis& second = cached->analysis(&hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(&first, &second);
  EXPECT_GT(first.lambda2, 0.5);
  EXPECT_EQ(first.girth, 31u);
}

TEST(GraphStoreTest, BuildFailurePropagatesAndLeavesStoreClean) {
  GraphStore store;
  ParamMap bad;  // regular graphs need n*r even; n=5, r=3 is rejected
  bad.set("n", "5");
  bad.set("r", "3");
  EXPECT_THROW(store.acquire("regular", bad, 1), std::exception);
  EXPECT_EQ(store.stats().entries, 0u);
  // The store still serves other keys afterwards.
  EXPECT_NO_THROW(store.acquire("cycle", cycle_params(16), 1));
}

// ---- execute_run determinism under caching ---------------------------------

TEST(ExecuteRun, ColdWarmAndUncachedAreBitIdentical) {
  RunRequest req;
  req.graph = "cycle";
  req.process = "srw";
  req.params = cycle_params(64);
  req.seed = 7;
  req.trials = 4;

  const RunResult uncached = execute_run(req, nullptr);
  ASSERT_TRUE(uncached.ok) << uncached.error;

  GraphStore store;
  const RunResult cold = execute_run(req, &store);
  const RunResult warm = execute_run(req, &store);
  ASSERT_TRUE(cold.ok && warm.ok);
  EXPECT_FALSE(cold.graph_cache_hit);
  EXPECT_TRUE(warm.graph_cache_hit);
  EXPECT_EQ(uncached.samples, cold.samples);
  EXPECT_EQ(uncached.samples, warm.samples);
  EXPECT_EQ(uncached.budget, warm.budget);
  // The repeat same-key request triggered zero additional construction.
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_EQ(store.stats().hits, 1u);
}

TEST(ExecuteRun, ErrorsComeBackAsResults) {
  RunRequest req;
  req.graph = "cycle";
  req.process = "eproces";  // typo'd on purpose
  req.params = cycle_params(32);
  const RunResult result = execute_run(req);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("did you mean"), std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find("eprocess"), std::string::npos) << result.error;
}

TEST(ExecuteRun, RegistrySuggestionsForGraphFamilies) {
  RunRequest req;
  req.graph = "regularr";  // nearest-name satellite: generator side
  req.process = "srw";
  const RunResult result = execute_run(req);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("did you mean"), std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find("regular"), std::string::npos) << result.error;
}

// ---- Server ----------------------------------------------------------------

TEST(ServerTest, ConcurrentMixedKeyClientsMatchSerialReference) {
  // The acceptance scenario: >= 4 concurrent clients submitting a mix of
  // repeated and distinct keys produce result lines bit-identical to a
  // serial, cache-less replay of the same requests — and repeats of a key
  // cost zero additional constructions (hit counters prove it).
  const std::vector<std::string> requests = {
      run_line("c0", "cycle", "srw", 7, 64),
      run_line("c1", "cycle", "srw", 7, 64),       // repeat of c0's key
      run_line("c2", "cycle", "srw", 8, 64),       // same family, new seed
      run_line("c3", "regular", "eprocess", 7, 64),
      run_line("c4", "cycle", "srw", 7, 64),       // repeat again
      run_line("c5", "complete", "coalescing-srw", 3, 32),
  };
  // Serial reference: fresh single-threaded server, one request at a time.
  Collector serial;
  {
    Server reference(ServerConfig{0, 64, 1});
    for (const auto& request : requests) {
      reference.handle_line(request, serial.sink());
      reference.drain();
    }
  }
  // Concurrent replay: 4 client threads interleaving over a shared server.
  Collector concurrent;
  Server server(ServerConfig{0, 64, 0});
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c)
      clients.emplace_back([&server, &concurrent, &requests, c] {
        for (std::size_t i = c; i < requests.size(); i += 4)
          server.handle_line(requests[i], concurrent.sink());
      });
    for (auto& t : clients) t.join();
    server.drain();
  }
  EXPECT_EQ(result_lines(serial.snapshot()),
            result_lines(concurrent.snapshot()));
  // 4 distinct graph keys among 6 requests: repeats construct nothing.
  const auto stats = server.store().stats();
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits, 2u);
}

TEST(ServerTest, MalformedRequestsDoNotKillTheDaemon) {
  Server server(ServerConfig{});
  Collector out;
  server.handle_line("this is not json", out.sink());
  server.handle_line("{\"op\":\"run\",\"trails\":5,\"id\":\"x\"}", out.sink());
  server.handle_line("{\"op\":\"nonsense\"}", out.sink());
  server.handle_line("", out.sink());  // blank: ignored entirely
  server.handle_line("{\"op\":\"ping\",\"id\":\"alive\"}", out.sink());
  const auto lines = out.snapshot();
  ASSERT_EQ(lines.size(), 4u);  // 3 errors + 1 pong, no blank response
  EXPECT_NE(lines[0].find("\"status\":\"error\""), std::string::npos);
  // The id still routes back even when the request failed to parse.
  EXPECT_NE(lines[1].find("\"id\":\"x\""), std::string::npos);
  EXPECT_EQ(lines[3], "{\"id\":\"alive\",\"status\":\"pong\"}");
}

TEST(ServerTest, AdmissionControlRejectsBeyondInflightCap) {
  Server server(ServerConfig{0, 1, 1});  // one slot only
  Collector out;
  // Submit a run, then a second before draining: with a single slot the
  // second must be rejected (the first may or may not have completed
  // already, so accept either a rejection or a second queued ack).
  server.handle_line(run_line("a0", "cycle", "srw", 1, 256, 2), out.sink());
  server.handle_line(run_line("a1", "cycle", "srw", 2, 256, 2), out.sink());
  server.drain();
  const auto lines = out.snapshot();
  std::size_t queued = 0, busy = 0;
  for (const auto& line : lines) {
    if (line.find("\"status\":\"queued\"") != std::string::npos) ++queued;
    if (line.find("server busy") != std::string::npos) ++busy;
  }
  EXPECT_GE(queued, 1u);
  EXPECT_EQ(queued + busy, 2u);
}

TEST(ServerTest, ShutdownDrainsInFlightWork) {
  Collector out;
  {
    Server server(ServerConfig{});
    for (int i = 0; i < 6; ++i)
      server.handle_line(run_line("s" + std::to_string(i), "cycle", "srw",
                                  10 + i, 128, 2),
                         out.sink());
    server.handle_line("{\"op\":\"shutdown\",\"id\":\"bye\"}", out.sink());
    EXPECT_TRUE(server.shutdown_requested());
    EXPECT_EQ(server.inflight(), 0u);
  }
  // Every accepted run completed before the "bye": 6 acks + 6 results + bye.
  const auto lines = out.snapshot();
  ASSERT_EQ(lines.size(), 13u);
  std::size_t results = 0;
  for (const auto& line : lines)
    if (line.find("\"status\":\"ok\"") != std::string::npos) ++results;
  EXPECT_EQ(results, 6u);
  EXPECT_EQ(lines.back(), "{\"id\":\"bye\",\"status\":\"bye\"}");
}

TEST(ServerTest, StreamTransportEndToEnd) {
  std::istringstream in(
      run_line("r1", "cycle", "srw", 7, 64) + "\n" +
      "{\"op\":\"drain\",\"id\":\"d\"}\n" +
      run_line("r2", "cycle", "srw", 7, 64) + "\n" +
      "{\"op\":\"drain\",\"id\":\"d2\"}\n" +
      "{\"op\":\"stats\",\"id\":\"s\"}\n" +
      "{\"op\":\"shutdown\",\"id\":\"z\"}\n");
  std::ostringstream out;
  Server server(ServerConfig{});
  server.serve_stream(in, out);
  const std::string text = out.str();
  // Warm run r2 equals cold run r1 sample-for-sample (the samples arrays
  // are byte-identical substrings of the two result lines).
  const auto sample_of = [&text](const std::string& id) {
    const std::size_t at = text.find("{\"id\":\"" + id + "\",\"status\":\"ok\"");
    EXPECT_NE(at, std::string::npos) << text;
    const std::size_t from = text.find("\"samples\":", at);
    return text.substr(from, text.find(']', from) - from);
  };
  EXPECT_EQ(sample_of("r1"), sample_of("r2"));
  EXPECT_NE(text.find("\"hits\":1"), std::string::npos) << text;
  EXPECT_NE(text.find("\"misses\":1"), std::string::npos) << text;
  EXPECT_NE(text.find("{\"id\":\"z\",\"status\":\"bye\"}"), std::string::npos);
}

TEST(ServerTest, TcpLoopbackRoundTrip) {
  Server server(ServerConfig{});
  std::uint16_t port = 0;
  try {
    port = server.listen_tcp(0);  // ephemeral
  } catch (const std::exception& ex) {
    GTEST_SKIP() << "cannot bind loopback: " << ex.what();
  }
  std::thread accept_thread([&server] { server.serve_tcp(); });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const std::string payload = "{\"op\":\"ping\",\"id\":\"p\"}\n" +
                              run_line("t1", "cycle", "srw", 7, 64) + "\n" +
                              "{\"op\":\"drain\",\"id\":\"d\"}\n" +
                              "{\"op\":\"shutdown\",\"id\":\"z\"}\n";
  ASSERT_EQ(::send(fd, payload.data(), payload.size(), 0),
            static_cast<ssize_t>(payload.size()));
  std::string received;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0)
    received.append(chunk, static_cast<std::size_t>(n));
  ::close(fd);
  accept_thread.join();

  EXPECT_NE(received.find("{\"id\":\"p\",\"status\":\"pong\"}"),
            std::string::npos)
      << received;
  EXPECT_NE(received.find("{\"id\":\"t1\",\"status\":\"ok\""),
            std::string::npos)
      << received;
  EXPECT_NE(received.find("{\"id\":\"z\",\"status\":\"bye\"}"),
            std::string::npos)
      << received;
}

}  // namespace
}  // namespace ewalk
