// Tests for the spectral module against known closed-form spectra.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "graph/generators.hpp"
#include "spectral/conductance.hpp"
#include "spectral/spectrum.hpp"

namespace ewalk {
namespace {

constexpr double kTol = 1e-6;

TEST(DenseSpectrum, CompleteGraph) {
  // K_n transition eigenvalues: 1 and -1/(n-1) (multiplicity n-1).
  const Graph g = complete_graph(6);
  const auto eig = dense_spectrum(g);
  ASSERT_EQ(eig.size(), 6u);
  EXPECT_NEAR(eig[0], 1.0, kTol);
  for (std::size_t i = 1; i < eig.size(); ++i) EXPECT_NEAR(eig[i], -0.2, kTol);
}

TEST(DenseSpectrum, CycleGraph) {
  // C_n transition eigenvalues: cos(2 pi k / n).
  const int n = 8;
  const Graph g = cycle_graph(n);
  const auto eig = dense_spectrum(g);
  std::vector<double> expected;
  for (int k = 0; k < n; ++k) expected.push_back(std::cos(2.0 * std::numbers::pi * k / n));
  std::sort(expected.begin(), expected.end(), std::greater<>());
  for (int i = 0; i < n; ++i) EXPECT_NEAR(eig[i], expected[i], kTol) << i;
}

TEST(DenseSpectrum, HypercubeLambda2) {
  // H_r transition eigenvalues: 1 - 2k/r; λ2 = 1 - 2/r.
  const Graph g = hypercube(4);
  const auto eig = dense_spectrum(g);
  EXPECT_NEAR(eig[0], 1.0, kTol);
  EXPECT_NEAR(eig[1], 1.0 - 2.0 / 4, kTol);
  EXPECT_NEAR(eig.back(), -1.0, kTol);  // bipartite
}

TEST(DenseSpectrum, SelfLoopShiftsSpectrum) {
  // A loop adds 2 to a vertex's degree and 2 to A_vv; spectrum stays in [-1,1].
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(0, 0);
  const auto eig = dense_spectrum(b.build());
  EXPECT_NEAR(eig[0], 1.0, kTol);
  for (const double l : eig) {
    EXPECT_LE(l, 1.0 + kTol);
    EXPECT_GE(l, -1.0 - kTol);
  }
}

TEST(EstimateSpectrum, MatchesDenseOnKnownGraphs) {
  for (const Graph& g : {cycle_graph(12), complete_graph(9), hypercube(4),
                         petersen_graph(), torus_2d(4, 5)}) {
    const auto dense = dense_spectrum(g);
    const auto est = estimate_spectrum(g);
    EXPECT_NEAR(est.lambda2, dense[1], 1e-5);
    EXPECT_NEAR(est.lambda_n, dense.back(), 1e-5);
    EXPECT_NEAR(est.lambda_max, std::max(dense[1], std::abs(dense.back())), 1e-5);
  }
}

TEST(EstimateSpectrum, BipartiteDetectedViaLambdaN) {
  const auto spec = estimate_spectrum(complete_bipartite(4, 6));
  EXPECT_NEAR(spec.lambda_n, -1.0, 1e-6);
  EXPECT_NEAR(spec.gap(), 0.0, 1e-6);
  EXPECT_GT(spec.lazy_gap(), 0.0);
}

TEST(EstimateSpectrum, RandomRegularExpanderGap) {
  Rng rng(42);
  const Graph g = random_regular_connected(500, 4, rng);
  const auto spec = estimate_spectrum(g);
  // Friedman: λ2(adjacency) ≈ 2 sqrt(3) + eps, so λ2(P) ≈ 0.866. Use a
  // conservative band.
  EXPECT_LT(spec.lambda2, 0.95);
  EXPECT_GT(spec.lambda2, 0.5);
  EXPECT_GT(spec.gap(), 0.02);
}

TEST(EstimateSpectrum, MargulisHasConstantGap) {
  // Margulis-type construction: the transition lambda2 stays uniformly
  // bounded away from 1 as k grows (measured ~0.89-0.91 for this map set) -
  // a *deterministic* even-degree expander family.
  std::vector<double> lambdas;
  for (const Vertex k : {8u, 16u, 24u, 32u}) {
    const auto spec = estimate_spectrum(margulis_expander(k));
    EXPECT_LT(spec.lambda2, 0.95) << k;
    EXPECT_GT(spec.lambda2, 0.3) << k;
    lambdas.push_back(spec.lambda2);
  }
  // No drift toward 1 once out of the small-size regime: the two largest
  // sizes agree closely (the k=8 point is depressed by finite-size effects).
  EXPECT_LT(std::abs(lambdas[3] - lambdas[2]), 0.03);
}

TEST(EstimateSpectrum, RejectsEmptyGraph) {
  EXPECT_THROW(estimate_spectrum(Graph::from_edges(3, std::vector<Endpoints>{})), std::invalid_argument);
}

TEST(MixingTime, Lemma7Formula) {
  // T = K log n / gap.
  EXPECT_NEAR(mixing_time_estimate(0.5, 100, 6.0), 6.0 * std::log(100.0) / 0.5, 1e-9);
  EXPECT_THROW(mixing_time_estimate(0.0, 10), std::invalid_argument);
}

TEST(Conductance, CompleteGraphExact) {
  // K_4: every cut has conductance >= 2/3; the minimum over balanced cuts
  // is e(X,X̄)/d(X) = 4/6 = 2/3.
  const double phi = exact_conductance(complete_graph(4));
  EXPECT_NEAR(phi, 2.0 / 3.0, 1e-12);
}

TEST(Conductance, CycleExact) {
  // C_8: cutting into two arcs of 4 gives 2 crossing edges / degree 8.
  const double phi = exact_conductance(cycle_graph(8));
  EXPECT_NEAR(phi, 0.25, 1e-12);
}

TEST(Conductance, BarbellIsSmall) {
  const double phi = exact_conductance(barbell(5, 2));
  EXPECT_LT(phi, 0.1);
}

TEST(Conductance, CheegerBoundsHold) {
  for (const Graph& g : {cycle_graph(10), complete_graph(6), petersen_graph(),
                         barbell(4, 2)}) {
    const double phi = exact_conductance(g);
    const auto eig = dense_spectrum(g);
    const auto bounds = conductance_bounds_from_lambda2(eig[1]);
    EXPECT_GE(phi + 1e-9, bounds.lower);
    EXPECT_LE(phi - 1e-9, bounds.upper);
    // And eq. (19) of the paper directly: 1 - 2Φ <= λ2 <= 1 - Φ²/2.
    EXPECT_LE(1.0 - 2.0 * phi, eig[1] + 1e-9);
    EXPECT_LE(eig[1], 1.0 - phi * phi / 2.0 + 1e-9);
  }
}

TEST(Conductance, CutConductanceMatchesEnumeration) {
  const Graph g = cycle_graph(6);
  std::vector<bool> cut(6, false);
  cut[0] = cut[1] = cut[2] = true;
  EXPECT_NEAR(cut_conductance(g, cut), 2.0 / 6.0, 1e-12);
}

TEST(Conductance, RejectsOversizedGraph) {
  EXPECT_THROW(exact_conductance(cycle_graph(30)), std::invalid_argument);
}

TEST(Jacobi, DiagonalMatrix) {
  std::vector<double> m{3, 0, 0, 0, 1, 0, 0, 0, 2};
  const auto eig = jacobi_eigenvalues(m, 3);
  EXPECT_NEAR(eig[0], 3.0, 1e-12);
  EXPECT_NEAR(eig[1], 2.0, 1e-12);
  EXPECT_NEAR(eig[2], 1.0, 1e-12);
}

TEST(Jacobi, SymmetricTwoByTwo) {
  // [[2,1],[1,2]] -> eigenvalues 3 and 1.
  std::vector<double> m{2, 1, 1, 2};
  const auto eig = jacobi_eigenvalues(m, 2);
  EXPECT_NEAR(eig[0], 3.0, 1e-12);
  EXPECT_NEAR(eig[1], 1.0, 1e-12);
}

}  // namespace
}  // namespace ewalk
