// Tests for the simple random walk and the weighted random walk against
// classical closed-form facts (stationarity, return times, cover times).
#include <gtest/gtest.h>

#include <cmath>

#include "engine/driver.hpp"
#include "graph/generators.hpp"
#include "walks/srw.hpp"
#include "walks/weighted.hpp"

namespace ewalk {
namespace {

TEST(Srw, VisitsFollowStationaryDistribution) {
  // π_v = d(v)/2m; run long and compare visit frequencies on the lollipop
  // (heterogeneous degrees).
  const Graph g = lollipop(6, 4);
  Rng rng(1);
  SimpleRandomWalk walk(g, 0);
  const std::uint64_t steps = 400000;
  for (std::uint64_t i = 0; i < steps; ++i) walk.step(rng);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const double freq = static_cast<double>(walk.cover().visit_count(v)) / steps;
    EXPECT_NEAR(freq, g.stationary_probability(v), 0.01) << "vertex " << v;
  }
}

TEST(Srw, ExpectedReturnTimeIsInverseStationary) {
  // E_u T_u^+ = 1/π_u (Section 2.2 of the paper).
  const Graph g = lollipop(5, 3);
  const Vertex u = 0;  // clique vertex
  Rng rng(2);
  const int kTrials = 4000;
  double total = 0;
  for (int t = 0; t < kTrials; ++t) {
    SimpleRandomWalk walk(g, u);
    do {
      walk.step(rng);
    } while (walk.current() != u);
    total += static_cast<double>(walk.steps());
  }
  const double expected = 1.0 / g.stationary_probability(u);
  EXPECT_NEAR(total / kTrials, expected, expected * 0.1);
}

TEST(Srw, CycleCoverTimeIsQuadratic) {
  // C_V(C_n) = n(n-1)/2 exactly for the SRW on a cycle.
  const Vertex n = 40;
  const Graph g = cycle_graph(n);
  Rng rng(3);
  const int kTrials = 300;
  double total = 0;
  for (int t = 0; t < kTrials; ++t) {
    SimpleRandomWalk walk(g, 0);
    ASSERT_TRUE(run_until_vertex_cover(walk, rng, 1u << 24));
    total += static_cast<double>(walk.cover().vertex_cover_step());
  }
  const double expected = n * (n - 1) / 2.0;
  EXPECT_NEAR(total / kTrials, expected, expected * 0.12);
}

TEST(Srw, CompleteGraphCoverIsCouponCollector) {
  // K_n cover time ≈ (n-1) H_{n-1} ≈ n ln n.
  const Vertex n = 30;
  const Graph g = complete_graph(n);
  Rng rng(4);
  const int kTrials = 400;
  double total = 0;
  for (int t = 0; t < kTrials; ++t) {
    SimpleRandomWalk walk(g, 0);
    ASSERT_TRUE(run_until_vertex_cover(walk, rng, 1u << 22));
    total += static_cast<double>(walk.cover().vertex_cover_step());
  }
  double expected = 0;
  for (int k = 1; k <= static_cast<int>(n) - 1; ++k) expected += 1.0 / k;
  expected *= (n - 1);
  EXPECT_NEAR(total / kTrials, expected, expected * 0.1);
}

TEST(Srw, CoverStateBookkeeping) {
  const Graph g = path_graph(4);
  Rng rng(5);
  SimpleRandomWalk walk(g, 0);
  EXPECT_EQ(walk.cover().vertices_covered(), 1u);
  EXPECT_TRUE(walk.cover().vertex_visited(0));
  EXPECT_FALSE(walk.cover().all_vertices_covered());
  ASSERT_TRUE(run_until_vertex_cover(walk, rng, 100000));
  EXPECT_EQ(walk.cover().vertices_covered(), 4u);
  EXPECT_LE(walk.cover().vertex_cover_step(), walk.steps());
  EXPECT_NE(walk.cover().vertex_cover_step(), kNotCovered);
}

TEST(Srw, EdgeCoverOnSmallGraph) {
  const Graph g = petersen_graph();
  Rng rng(6);
  SimpleRandomWalk walk(g, 0);
  ASSERT_TRUE(run_until_edge_cover(walk, rng, 1u << 22));
  EXPECT_TRUE(walk.cover().all_edges_covered());
  EXPECT_GE(walk.cover().edge_cover_step(), g.num_edges());
}

TEST(Srw, LazyWalkStillCovers) {
  // Bipartite K_{3,3}: the lazy walk mixes and covers fine.
  const Graph g = complete_bipartite(3, 3);
  Rng rng(7);
  SimpleRandomWalk walk(g, 0, SrwOptions{.lazy = true});
  ASSERT_TRUE(run_until_vertex_cover(walk, rng, 1u << 22));
  EXPECT_TRUE(walk.cover().all_vertices_covered());
}

TEST(Srw, LazyHoldsRoughlyHalfTheTime) {
  const Graph g = cycle_graph(10);
  Rng rng(8);
  SimpleRandomWalk walk(g, 0, SrwOptions{.lazy = true});
  std::uint64_t moves = 0;
  Vertex prev = walk.current();
  const std::uint64_t steps = 20000;
  for (std::uint64_t i = 0; i < steps; ++i) {
    walk.step(rng);
    if (walk.current() != prev) ++moves;
    prev = walk.current();
  }
  EXPECT_NEAR(static_cast<double>(moves) / steps, 0.5, 0.03);
}

TEST(Srw, RunUntilVisitCount) {
  const Graph g = complete_graph(8);
  Rng rng(9);
  SimpleRandomWalk walk(g, 0);
  ASSERT_TRUE(run_until_visit_count(walk, rng, 3, 1u << 22));
  EXPECT_GE(walk.cover().min_visit_count(), 3u);
}

TEST(Srw, StartOutOfRangeThrows) {
  const Graph g = cycle_graph(4);
  EXPECT_THROW(SimpleRandomWalk(g, 10), std::invalid_argument);
}

// ---- Weighted walk ---------------------------------------------------------

TEST(AliasTable, MatchesWeights) {
  Rng rng(10);
  AliasTable table(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  std::vector<int> counts(4, 0);
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[table.sample(rng)];
  for (int i = 0; i < 4; ++i)
    EXPECT_NEAR(counts[i] / static_cast<double>(kDraws), (i + 1) / 10.0, 0.01);
}

TEST(AliasTable, SingleAndUniform) {
  Rng rng(11);
  AliasTable one(std::vector<double>{5.0});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(one.sample(rng), 0u);
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{-1.0, 2.0}), std::invalid_argument);
}

TEST(Weighted, UniformWeightsMatchSrwStationary) {
  const Graph g = lollipop(5, 3);
  WeightedRandomWalk walk(g, 0, std::vector<double>(g.num_edges(), 1.0));
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    EXPECT_NEAR(walk.stationary_probability(v), g.stationary_probability(v), 1e-12);
}

TEST(Weighted, VisitsFollowWeightedStationary) {
  // Weight edge {0,1} of a triangle heavily; π_v ∝ total incident weight.
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  const Graph g = b.build();
  const std::vector<double> w{8.0, 1.0, 1.0};
  WeightedRandomWalk walk(g, 0, w);
  Rng rng(12);
  const std::uint64_t steps = 300000;
  for (std::uint64_t i = 0; i < steps; ++i) walk.step(rng);
  for (Vertex v = 0; v < 3; ++v) {
    const double freq = static_cast<double>(walk.cover().visit_count(v)) / steps;
    EXPECT_NEAR(freq, walk.stationary_probability(v), 0.01);
  }
}

TEST(Weighted, CoversGraph) {
  const Graph g = petersen_graph();
  Rng rng(13);
  WeightedRandomWalk walk(g, 0, std::vector<double>(g.num_edges(), 1.0));
  ASSERT_TRUE(run_until_vertex_cover(walk, rng, 1u << 22));
}

TEST(Weighted, RejectsBadWeights) {
  const Graph g = cycle_graph(4);
  EXPECT_THROW(WeightedRandomWalk(g, 0, {1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(WeightedRandomWalk(g, 0, {1.0, 1.0, 0.0, 1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace ewalk
