// Tests for the sweep subsystem (src/sweep/): the SweepDriver's scheduling
// invariants — samples must be a pure function of (master_seed, point,
// trial), never of thread count or scheduling — plus the graph-reuse
// semantics, budget clamping, stream derivation, and the SWEEP_*.json /
// CSV emission CI validates.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/adapters.hpp"
#include "graph/generators.hpp"
#include "sweep/report.hpp"
#include "sweep/sweep.hpp"
#include "walks/rules.hpp"
#include "walks/srw.hpp"

namespace ewalk {
namespace {

// Give the Executor four workers even on single-core CI runners, so the
// thread-invariance tests below exercise real stealing and nested waits.
// Runs before main(), i.e. before the first Executor::instance() call in
// this binary; an explicit EWALK_WORKERS in the environment wins.
const bool kWorkersEnvSet = [] {
  setenv("EWALK_WORKERS", "4", /*overwrite=*/0);
  return true;
}();

ProcessFactory eprocess_factory() {
  return [](const Graph& g, Rng&) -> std::unique_ptr<WalkProcess> {
    return std::make_unique<EProcessHandle>(g, 0,
                                            std::make_unique<UniformRule>());
  };
}

ProcessFactory srw_factory() {
  return [](const Graph& g, Rng&) -> std::unique_ptr<WalkProcess> {
    return std::make_unique<SimpleRandomWalk>(g, 0);
  };
}

// A small two-point, two-series sweep over random regular graphs —
// randomised generation AND randomised walks, so any schedule-dependence
// in the stream derivation would show up as diverging samples.
std::vector<SweepPoint> small_points() {
  std::vector<SweepPoint> points;
  for (const Vertex n : {60, 120}) {
    SweepPoint point;
    point.label = "n" + std::to_string(n);
    point.params = {{"n", static_cast<double>(n)}};
    point.graph = [n](Rng& rng) { return random_regular_pairing_connected(n, 4, rng); };
    point.series = {SweepSeriesSpec{"srw", srw_factory(), CoverTarget::kVertices},
                    SweepSeriesSpec{"eprocess", eprocess_factory(),
                                    CoverTarget::kVertices}};
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<std::vector<double>> all_samples(const SweepResult& r) {
  std::vector<std::vector<double>> out;
  for (const auto& point : r.points)
    for (const auto& series : point.series) out.push_back(series.samples);
  return out;
}

TEST(SweepStream, PureFunctionOfIndices) {
  // Same coordinates -> identical stream; any coordinate change -> different.
  EXPECT_EQ(sweep_stream(1, 2, 3, 4)(), sweep_stream(1, 2, 3, 4)());
  EXPECT_NE(sweep_stream(1, 2, 3, 4)(), sweep_stream(2, 2, 3, 4)());
  EXPECT_NE(sweep_stream(1, 2, 3, 4)(), sweep_stream(1, 3, 3, 4)());
  EXPECT_NE(sweep_stream(1, 2, 3, 4)(), sweep_stream(1, 2, 4, 4)());
  EXPECT_NE(sweep_stream(1, 2, 3, 4)(), sweep_stream(1, 2, 3, 5)());
  // The roles a unit actually uses must be pairwise distinct streams.
  EXPECT_NE(sweep_stream(7, 0, 0, 0)(), sweep_stream(7, 0, 0, 1)());
  EXPECT_NE(sweep_stream(7, 0, 0, 1)(), sweep_stream(7, 0, 0, 2)());
}

TEST(SweepDriver, SamplesInvariantAcrossThreadCounts) {
  SweepConfig config;
  config.trials = 4;
  config.master_seed = 99;

  config.threads = 1;
  const auto serial = all_samples(run_sweep("t", small_points(), config));
  config.threads = 4;
  const auto four = all_samples(run_sweep("t", small_points(), config));
  config.threads = 0;  // hardware concurrency
  const auto hardware = all_samples(run_sweep("t", small_points(), config));

  EXPECT_EQ(serial, four);
  EXPECT_EQ(serial, hardware);
  ASSERT_EQ(serial.size(), 4u);  // 2 points x 2 series
  for (const auto& samples : serial) ASSERT_EQ(samples.size(), 4u);
}

TEST(SweepDriver, ReuseSharesOneInstanceAcrossSeries) {
  // With reuse both series see the same graph: on a cycle the E-process
  // covers n vertices in exactly n-1 steps regardless, so compare through
  // the SRW whose cover time is graph-shape sensitive — identical samples
  // between a one-series and a two-series sweep prove the srw series'
  // stream does not depend on how many series share the point.
  SweepPoint both;
  both.label = "cycle";
  both.params = {{"n", 80.0}};
  both.graph = [](Rng&) { return cycle_graph(80); };
  both.series = {SweepSeriesSpec{"srw", srw_factory(), CoverTarget::kVertices},
                 SweepSeriesSpec{"eprocess", eprocess_factory(),
                                 CoverTarget::kVertices}};
  SweepPoint solo = both;
  solo.series = {both.series[0]};

  SweepConfig config;
  config.trials = 3;
  config.threads = 1;
  config.master_seed = 5;
  const auto with_both = run_sweep("t", {both}, config);
  const auto with_solo = run_sweep("t", {solo}, config);
  EXPECT_EQ(with_both.points[0].series[0].samples,
            with_solo.points[0].series[0].samples);
  // E-process on a cycle: vertex cover after exactly n-1 blue steps.
  for (const double v : with_both.points[0].series[1].samples)
    EXPECT_EQ(v, 79.0);
}

TEST(SweepDriver, IndependentGraphsModeIsAlsoThreadInvariant) {
  SweepConfig config;
  config.trials = 3;
  config.master_seed = 17;
  config.reuse_graph = false;
  config.threads = 1;
  const auto serial = all_samples(run_sweep("t", small_points(), config));
  config.threads = 4;
  const auto parallel = all_samples(run_sweep("t", small_points(), config));
  EXPECT_EQ(serial, parallel);
}

TEST(SweepDriver, BudgetClampsAndCountsUncoveredTrials) {
  // Two disjoint triangles: no walk from vertex 0 can ever cover them.
  SweepPoint point;
  point.label = "disconnected";
  point.params = {{"n", 6.0}};
  point.graph = [](Rng&) {
    GraphBuilder b(6);
    for (Vertex v = 0; v < 3; ++v) b.add_edge(v, (v + 1) % 3);
    for (Vertex v = 0; v < 3; ++v) b.add_edge(3 + v, 3 + (v + 1) % 3);
    return b.build();
  };
  point.series = {SweepSeriesSpec{"srw", srw_factory(), CoverTarget::kVertices}};
  point.max_steps = 500;

  SweepConfig config;
  config.trials = 3;
  config.threads = 1;
  const auto result = run_sweep("t", {point}, config);
  const SweepSeriesResult& sr = result.points[0].series[0];
  EXPECT_EQ(sr.uncovered_trials, 3u);
  for (const double v : sr.samples) EXPECT_EQ(v, 500.0);
}

TEST(SweepDriver, EdgeTargetUsesEdgeCoverStep) {
  SweepPoint point;
  point.label = "cycle";
  point.params = {{"n", 50.0}};
  point.graph = [](Rng&) { return cycle_graph(50); };
  point.series = {SweepSeriesSpec{"eprocess", eprocess_factory(),
                                  CoverTarget::kEdges}};
  SweepConfig config;
  config.trials = 2;
  config.threads = 1;
  const auto result = run_sweep("t", {point}, config);
  // E-process edge-covers a cycle in exactly n steps.
  for (const double v : result.points[0].series[0].samples) EXPECT_EQ(v, 50.0);
}

TEST(SweepAdaptive, TrialCountsStayWithinFloorAndCap) {
  // Random cover times on small graphs: a near-zero CI target cannot be met,
  // so every series must run exactly to the cap; with an unreachable (huge)
  // target, every series must close at the floor.
  SweepConfig config;
  config.trials = 3;
  config.threads = 1;
  config.master_seed = 21;
  config.max_trials = 11;
  config.ci_rel_target = 1e-9;
  const auto at_cap = run_sweep("t", small_points(), config);
  for (const auto& point : at_cap.points)
    for (const auto& sr : point.series) {
      EXPECT_EQ(sr.trials_used, 11u);
      EXPECT_EQ(sr.samples.size(), 11u);
      EXPECT_GT(sr.ci_rel_width, 0.0);
    }

  config.ci_rel_target = 1e9;
  const auto at_floor = run_sweep("t", small_points(), config);
  for (const auto& point : at_floor.points)
    for (const auto& sr : point.series) {
      EXPECT_EQ(sr.trials_used, 3u);
      EXPECT_EQ(sr.samples.size(), 3u);
    }
}

TEST(SweepAdaptive, DeterministicSeriesClosesAtFloor) {
  // The E-process vertex-covers a cycle in exactly n-1 steps every trial:
  // zero variance, so the CI closes the series the first time it is checked
  // — at the floor — while the cap would allow many more trials.
  SweepPoint point;
  point.label = "cycle";
  point.params = {{"n", 80.0}};
  point.graph = [](Rng&) { return cycle_graph(80); };
  point.series = {SweepSeriesSpec{"eprocess", eprocess_factory(),
                                  CoverTarget::kVertices}};
  SweepConfig config;
  config.trials = 2;
  config.threads = 1;
  config.max_trials = 50;
  config.ci_rel_target = 0.05;
  const auto result = run_sweep("t", {point}, config);
  const SweepSeriesResult& sr = result.points[0].series[0];
  EXPECT_EQ(sr.trials_used, 2u);
  EXPECT_EQ(sr.ci_rel_width, 0.0);
  for (const double v : sr.samples) EXPECT_EQ(v, 79.0);
}

TEST(SweepAdaptive, SamplesInvariantAcrossThreadCountsAndPrefixFixedRun) {
  // The adaptive schedule must be a pure function of the samples: the full
  // per-series sample vectors are bit-identical across --threads 1 / 4 /
  // hardware, and any fixed-trials run is a bit-identical prefix of the
  // adaptive one (trial t's streams do not depend on how many trials run).
  SweepConfig config;
  config.trials = 3;
  config.master_seed = 99;
  config.max_trials = 9;
  config.ci_rel_target = 1e-9;  // forces extra rounds beyond the floor

  config.threads = 1;
  const auto serial = run_sweep("t", small_points(), config);
  config.threads = 4;
  const auto four = all_samples(run_sweep("t", small_points(), config));
  config.threads = 0;  // hardware concurrency
  const auto hardware = all_samples(run_sweep("t", small_points(), config));

  const auto serial_samples = all_samples(serial);
  EXPECT_EQ(serial_samples, four);
  EXPECT_EQ(serial_samples, hardware);

  SweepConfig fixed;
  fixed.trials = 3;
  fixed.master_seed = 99;
  fixed.threads = 1;
  const auto prefix = all_samples(run_sweep("t", small_points(), fixed));
  ASSERT_EQ(prefix.size(), serial_samples.size());
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    ASSERT_GE(serial_samples[i].size(), prefix[i].size());
    for (std::size_t t = 0; t < prefix[i].size(); ++t)
      EXPECT_EQ(serial_samples[i][t], prefix[i][t])
          << "series " << i << " trial " << t;
  }
}

TEST(SweepDriver, SamplesInvariantAcrossBundleWidths) {
  // Bundling (engine/bundle.hpp) interleaves several trials of a unit in
  // one task to hide DRAM latency; it must be pure scheduling. Every
  // (width, threads, reuse) combination must reproduce the width-1 samples
  // bit for bit — each trial keeps its own sweep_stream-derived streams and
  // its sequential check schedule regardless of bundling.
  SweepConfig config;
  config.trials = 4;
  config.master_seed = 99;
  config.threads = 1;
  config.bundle_width = 1;
  const auto reference = all_samples(run_sweep("t", small_points(), config));
  ASSERT_EQ(reference.size(), 4u);

  for (const bool reuse : {true, false}) {
    for (const std::uint32_t width : {2u, 4u, 8u}) {
      for (const std::uint32_t threads : {1u, 4u}) {
        SweepConfig bundled;
        bundled.trials = 4;
        bundled.master_seed = 99;
        bundled.reuse_graph = reuse;
        bundled.bundle_width = width;
        bundled.threads = threads;
        SweepConfig plain = bundled;
        plain.bundle_width = 1;
        EXPECT_EQ(all_samples(run_sweep("t", small_points(), bundled)),
                  all_samples(run_sweep("t", small_points(), plain)))
            << "width " << width << ", threads " << threads << ", reuse "
            << reuse;
      }
    }
  }
  // reuse defaults on: the width-1 reuse samples are the reference above.
  SweepConfig wide = config;
  wide.bundle_width = 8;
  wide.threads = 4;
  EXPECT_EQ(all_samples(run_sweep("t", small_points(), wide)), reference);
}

TEST(SweepAdaptive, AdaptiveScheduleInvariantAcrossBundleWidths) {
  // Adaptive trials decide the next round from completed samples only, so
  // bundling a round's units cannot change which trials run or their
  // values.
  SweepConfig config;
  config.trials = 3;
  config.master_seed = 99;
  config.threads = 4;
  config.max_trials = 9;
  config.ci_rel_target = 1e-9;  // forces extra rounds beyond the floor
  config.bundle_width = 1;
  const auto reference = all_samples(run_sweep("t", small_points(), config));
  config.bundle_width = 4;
  EXPECT_EQ(all_samples(run_sweep("t", small_points(), config)), reference);
}

TEST(SweepScheduler, BundledUnitsCountBundlesInSpreadAndTimeline) {
  SweepConfig config;
  config.trials = 4;
  config.master_seed = 7;
  config.threads = 4;
  config.bundle_width = 4;
  const SweepResult result = run_sweep("t", small_points(), config);
  // 2 points x 1 bundle of 4 trials each.
  EXPECT_EQ(result.unit_count, 2u);
  std::uint64_t total_units = 0;
  for (const SweepThreadTimeline& timeline : result.thread_timeline)
    for (const std::uint64_t units : timeline.units) total_units += units;
  // Series completions still land once per (trial, series) pair.
  EXPECT_EQ(total_units, 16u);
}

TEST(SweepScheduler, RepeatedStealingRunsAreBitIdentical) {
  // Work stealing makes the schedule nondeterministic run to run; the
  // samples must not be. Two identical parallel runs (4 threads on the
  // 4-worker executor, nested trial/series fan-out active) must agree with
  // each other and with a serial run, sample for sample.
  SweepConfig config;
  config.trials = 4;
  config.master_seed = 1234;
  config.threads = 4;
  const auto first = all_samples(run_sweep("t", small_points(), config));
  const auto second = all_samples(run_sweep("t", small_points(), config));
  config.threads = 1;
  const auto serial = all_samples(run_sweep("t", small_points(), config));
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, serial);
}

TEST(SweepScheduler, RecordsUnitSpreadAndThreadTimeline) {
  SweepConfig config;
  config.trials = 4;
  config.master_seed = 7;
  config.threads = 4;
  const SweepResult result = run_sweep("t", small_points(), config);

  // 2 points x 4 trials, each measuring 2 series.
  EXPECT_EQ(result.unit_count, 8u);
  EXPECT_GE(result.unit_seconds_min, 0.0);
  EXPECT_GE(result.unit_seconds_max, result.unit_seconds_min);
  EXPECT_GT(result.timeline_bucket_seconds, 0.0);

  ASSERT_FALSE(result.thread_timeline.empty());
  std::uint64_t total_units = 0;
  for (std::size_t i = 0; i < result.thread_timeline.size(); ++i) {
    const SweepThreadTimeline& timeline = result.thread_timeline[i];
    ASSERT_EQ(timeline.busy_seconds.size(), timeline.units.size());
    ASSERT_EQ(timeline.busy_seconds.size(),
              result.thread_timeline.front().busy_seconds.size());
    if (i > 0) {
      EXPECT_GT(timeline.thread, result.thread_timeline[i - 1].thread);
    }
    for (const double busy : timeline.busy_seconds) EXPECT_GE(busy, 0.0);
    for (const std::uint64_t units : timeline.units) total_units += units;
  }
  // Every series completion lands in exactly one bucket of one thread.
  EXPECT_EQ(total_units, 16u);  // 8 units x 2 series
}

TEST(SweepReport, WritesSchemaConformantJsonAndCsv) {
  SweepConfig config;
  config.trials = 2;
  config.threads = 1;
  config.master_seed = 3;
  SweepResult result = run_sweep("unit_test", small_points(), config);

  const std::string dir = "sweep_test_out";
  const std::string json_path = write_sweep_json(result, dir);
  const std::string csv_path = write_sweep_csv(result, dir);
  EXPECT_EQ(json_path, dir + "/SWEEP_unit_test.json");

  std::ifstream json(json_path);
  ASSERT_TRUE(json.good());
  std::stringstream buf;
  buf << json.rdbuf();
  const std::string body = buf.str();
  for (const char* needle :
       {"\"sweep\": \"unit_test\"", "\"version\": 3", "\"trials\": 2",
        "\"max_trials\": 0", "\"ci_rel_target\": 0", "\"points\": [",
        "\"params\": {\"n\": 60}", "\"name\": \"srw\"",
        "\"name\": \"eprocess\"", "\"samples\": [", "\"gen_seconds\":",
        "\"walk_seconds\":", "\"uncovered_trials\": 0",
        "\"trials_used\": 2", "\"ci_rel_width\":", "\"pin\": false",
        "\"unit_count\": 4", "\"unit_seconds_min\":",
        "\"unit_seconds_max\":", "\"timeline_bucket_seconds\":",
        "\"thread_timeline\": [", "\"busy_seconds\": [", "\"units\": ["}) {
    EXPECT_NE(body.find(needle), std::string::npos) << "missing: " << needle;
  }

  std::ifstream csv(csv_path);
  ASSERT_TRUE(csv.good());
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header,
            "label,n,series,mean,ci95,median,min,max,uncovered_trials,"
            "trials_used,ci_rel_width,walk_seconds,gen_seconds");
  std::size_t rows = 0;
  for (std::string line; std::getline(csv, line);)
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, 4u);  // 2 points x 2 series

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ewalk
