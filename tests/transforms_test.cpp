// Tests for graph transforms: contraction (Section 2.2), subdivision
// (Lemma 16), and the loop-based lazy transform — including the spectral
// facts the paper relies on (eq. 16: contraction does not shrink the gap).
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "spectral/conductance.hpp"
#include "spectral/spectrum.hpp"

namespace ewalk {
namespace {

TEST(Contract, PreservesEdgeCountAndDegreeSum) {
  const Graph g = petersen_graph();
  const std::vector<Vertex> set{0, 1, 2};
  const auto res = contract_set(g, set);
  EXPECT_EQ(res.graph.num_edges(), g.num_edges());
  EXPECT_EQ(res.graph.num_vertices(), g.num_vertices() - 2);
  // d(γ) == d(S): edges inside S become loops at γ, each counting 2.
  std::uint64_t d_s = 0;
  for (const Vertex v : set) d_s += g.degree(v);
  EXPECT_EQ(res.graph.degree(res.contracted), d_s);
}

TEST(Contract, InnerEdgesBecomeLoops) {
  // Triangle contracted to one vertex: 3 loops.
  const Graph g = complete_graph(3);
  const std::vector<Vertex> set{0, 1, 2};
  const auto res = contract_set(g, set);
  EXPECT_EQ(res.graph.num_vertices(), 1u);
  EXPECT_EQ(res.graph.num_edges(), 3u);
  EXPECT_TRUE(res.graph.has_self_loops());
  EXPECT_EQ(res.graph.degree(0), 6u);
}

TEST(Contract, VertexMapConsistent) {
  const Graph g = cycle_graph(6);
  const std::vector<Vertex> set{2, 4};
  const auto res = contract_set(g, set);
  EXPECT_EQ(res.vertex_map[2], res.contracted);
  EXPECT_EQ(res.vertex_map[4], res.contracted);
  // All other vertices map to distinct non-γ ids.
  std::vector<bool> seen(res.graph.num_vertices(), false);
  seen[res.contracted] = true;
  for (Vertex v = 0; v < 6; ++v) {
    if (v == 2 || v == 4) continue;
    EXPECT_FALSE(seen[res.vertex_map[v]]);
    seen[res.vertex_map[v]] = true;
  }
}

TEST(Contract, GapDoesNotDecrease) {
  // Eq. (16): 1 - λmax(G) <= 1 - λmax(Γ). Use λ2 of the lazy chain to stay
  // meaningful for near-bipartite contractions.
  Rng rng(5);
  const Graph g = random_regular_connected(120, 4, rng);
  const auto spec_g = estimate_spectrum(g);
  for (const std::vector<Vertex>& set :
       {std::vector<Vertex>{0, 1}, std::vector<Vertex>{3, 17, 44, 90}}) {
    const auto res = contract_set(g, set);
    const auto spec_c = estimate_spectrum(res.graph);
    EXPECT_LE(spec_c.lambda2, spec_g.lambda2 + 1e-6);
  }
}

TEST(Contract, ConductanceDoesNotDecrease) {
  const Graph g = cycle_graph(12);
  const double phi_g = exact_conductance(g);
  const auto res = contract_set(g, std::vector<Vertex>{0, 1, 2, 3});
  const double phi_c = exact_conductance(res.graph);
  EXPECT_GE(phi_c + 1e-12, phi_g);
}

TEST(Contract, RejectsBadInput) {
  const Graph g = cycle_graph(4);
  EXPECT_THROW(contract_set(g, std::vector<Vertex>{}), std::invalid_argument);
  EXPECT_THROW(contract_set(g, std::vector<Vertex>{9}), std::invalid_argument);
  EXPECT_THROW(contract_set(g, std::vector<Vertex>{1, 1}), std::invalid_argument);
}

TEST(Subdivide, InsertsDegreeTwoVertices) {
  const Graph g = complete_graph(4);
  const std::vector<EdgeId> chosen{0, 3};
  const auto res = subdivide_edges(g, chosen);
  EXPECT_EQ(res.graph.num_vertices(), g.num_vertices() + 2);
  EXPECT_EQ(res.graph.num_edges(), g.num_edges() + 2);
  for (const Vertex mid : res.mid_vertices) EXPECT_EQ(res.graph.degree(mid), 2u);
  // Original degrees unchanged.
  for (Vertex v = 0; v < 4; ++v) EXPECT_EQ(res.graph.degree(v), 3u);
}

TEST(Subdivide, LengthensCycles) {
  const Graph g = cycle_graph(5);
  std::vector<EdgeId> all{0, 1, 2, 3, 4};
  const auto res = subdivide_edges(g, all);
  EXPECT_EQ(res.graph.num_vertices(), 10u);
  EXPECT_TRUE(is_connected(res.graph));
  EXPECT_TRUE(res.graph.is_regular(2));
}

TEST(Subdivide, RejectsDuplicatesAndOutOfRange) {
  const Graph g = cycle_graph(4);
  EXPECT_THROW(subdivide_edges(g, std::vector<EdgeId>{0, 0}), std::invalid_argument);
  EXPECT_THROW(subdivide_edges(g, std::vector<EdgeId>{99}), std::invalid_argument);
}

TEST(Lazy, LoopTransformHalvesSpectrumShift) {
  // SRW on add_laziness_loops(G) has eigenvalues (1+λ_i)/2.
  const Graph g = cycle_graph(8);  // bipartite: λn = -1
  const Graph lazy = add_laziness_loops(g);
  EXPECT_EQ(lazy.num_vertices(), g.num_vertices());
  for (Vertex v = 0; v < lazy.num_vertices(); ++v)
    EXPECT_EQ(lazy.degree(v), 2 * g.degree(v));
  const auto eg = dense_spectrum(g);
  const auto el = dense_spectrum(lazy);
  ASSERT_EQ(eg.size(), el.size());
  for (std::size_t i = 0; i < eg.size(); ++i)
    EXPECT_NEAR(el[i], (1.0 + eg[i]) / 2.0, 1e-8) << i;
}

TEST(Lazy, RejectsOddDegrees) {
  EXPECT_THROW(add_laziness_loops(path_graph(3)), std::invalid_argument);
}

TEST(Lazy, KeepsEvenDegreesForEProcess) {
  // The lazy graph is still even-degree, so the E-process parity argument
  // applies to it as well.
  const Graph g = torus_2d(4, 4);
  const Graph lazy = add_laziness_loops(g);
  EXPECT_TRUE(lazy.all_degrees_even());
}

}  // namespace
}  // namespace ewalk
