// Tests for the baseline processes: rotor-router, RWC(d), the
// unvisited-vertex walk, and the locally fair strategies.
#include <gtest/gtest.h>

#include "engine/driver.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "walks/choice.hpp"
#include "walks/locally_fair.hpp"
#include "walks/rotor.hpp"
#include "walks/vertex_process.hpp"

namespace ewalk {
namespace {

// ---- Rotor-router -----------------------------------------------------------

TEST(Rotor, IsDeterministic) {
  const Graph g = torus_2d(5, 5);
  RotorRouter a(g, 0), b(g, 0);
  for (int i = 0; i < 1000; ++i) {
    a.step();
    b.step();
    ASSERT_EQ(a.current(), b.current());
  }
}

TEST(Rotor, CoversWithinMDBound) {
  // Yanovski et al.: rotor-router covers (vertices and edges) within O(mD).
  for (const Graph& g : {cycle_graph(30), torus_2d(6, 6), petersen_graph(),
                         lollipop(6, 6), binary_tree(5)}) {
    RotorRouter walk(g, 0);
    const std::uint64_t bound =
        4ull * g.num_edges() * (diameter(g) + 1) + 4 * g.num_edges() + 100;
    EXPECT_TRUE(run_until_edge_cover(walk, bound)) << "m=" << g.num_edges();
    EXPECT_TRUE(walk.cover().all_vertices_covered());
  }
}

TEST(Rotor, EventuallyPeriodicWithPeriod2m) {
  // Once the rotor-router enters its Eulerian circulation, it traverses each
  // directed edge exactly once per 2m steps, so the position sequence is
  // periodic with period 2m.
  for (const Graph& g : {cycle_graph(12), torus_2d(4, 4), petersen_graph()}) {
    RotorRouter walk(g, 0);
    const std::uint64_t m = g.num_edges();
    const std::uint64_t stabilise = 4 * m * (diameter(g) + 2);
    for (std::uint64_t i = 0; i < stabilise; ++i) walk.step();
    std::vector<Vertex> window;
    for (std::uint64_t i = 0; i < 2 * m; ++i) {
      window.push_back(walk.current());
      walk.step();
    }
    for (std::uint64_t i = 0; i < 2 * m; ++i) {
      ASSERT_EQ(walk.current(), window[i]) << "offset " << i;
      walk.step();
    }
  }
}

TEST(Rotor, StartOutOfRangeThrows) {
  const Graph g = cycle_graph(4);
  EXPECT_THROW(RotorRouter(g, 4), std::invalid_argument);
}

// ---- Random walk with choice -----------------------------------------------

TEST(Rwc, CoversGraph) {
  Rng rng(1);
  const Graph g = torus_2d(8, 8);
  RandomWalkWithChoice walk(g, 0, 2);
  ASSERT_TRUE(run_until_vertex_cover(walk, rng, 1u << 24));
}

TEST(Rwc, DegenerateD1IsPlainWalk) {
  Rng rng(2);
  const Graph g = cycle_graph(20);
  RandomWalkWithChoice walk(g, 0, 1);
  ASSERT_TRUE(run_until_vertex_cover(walk, rng, 1u << 24));
}

TEST(Rwc, RejectsZeroChoices) {
  const Graph g = cycle_graph(4);
  EXPECT_THROW(RandomWalkWithChoice(g, 0, 0), std::invalid_argument);
}

TEST(Rwc, ChoiceReducesCoverTimeOnTorus) {
  // Avin–Krishnamachari report clear cover-time reductions for RWC(2) on
  // toroidal grids; check the trial means reflect that (generous margin).
  const Graph g = torus_2d(12, 12);
  const int kTrials = 12;
  double srw_total = 0, rwc_total = 0;
  for (int t = 0; t < kTrials; ++t) {
    Rng r1(100 + t), r2(200 + t);
    RandomWalkWithChoice plain(g, 0, 1), choice(g, 0, 2);
    EXPECT_TRUE(run_until_vertex_cover(plain, r1, 1u << 26));
    EXPECT_TRUE(run_until_vertex_cover(choice, r2, 1u << 26));
    srw_total += static_cast<double>(plain.cover().vertex_cover_step());
    rwc_total += static_cast<double>(choice.cover().vertex_cover_step());
  }
  EXPECT_LT(rwc_total, srw_total);
}

// ---- Unvisited-vertex walk ---------------------------------------------------

TEST(VertexWalk, CoversGraph) {
  Rng rng(3);
  const Graph g = random_regular_connected(100, 4, rng);
  UnvisitedVertexWalk walk(g, 0);
  ASSERT_TRUE(run_until_vertex_cover(walk, rng, 1u << 24));
}

TEST(VertexWalk, PrefersUnvisitedNeighbors) {
  // From the center of a star, the walk must visit all leaves in the first
  // 2(n-1) steps (every other step lands on a fresh leaf).
  const Graph g = star_graph(10);
  Rng rng(4);
  UnvisitedVertexWalk walk(g, 0);
  ASSERT_TRUE(run_until_vertex_cover(walk, rng, 2 * 9 + 1));
  EXPECT_LE(walk.cover().vertex_cover_step(), 2u * 9 - 1);
}

TEST(VertexWalk, FasterThanSrwOnRegularGraphs) {
  Rng grng(5);
  const Graph g = random_regular_connected(300, 4, grng);
  const int kTrials = 8;
  double vw = 0, srw = 0;
  for (int t = 0; t < kTrials; ++t) {
    Rng r1(300 + t), r2(400 + t);
    UnvisitedVertexWalk a(g, 0);
    RandomWalkWithChoice b(g, 0, 1);  // plain SRW semantics
    EXPECT_TRUE(run_until_vertex_cover(a, r1, 1u << 26));
    EXPECT_TRUE(run_until_vertex_cover(b, r2, 1u << 26));
    vw += static_cast<double>(a.cover().vertex_cover_step());
    srw += static_cast<double>(b.cover().vertex_cover_step());
  }
  EXPECT_LT(vw, srw);
}

// ---- Locally fair strategies -------------------------------------------------

TEST(LocallyFair, LeastUsedFirstCoversEdges) {
  for (const Graph& g : {cycle_graph(20), torus_2d(5, 5), petersen_graph(),
                         lollipop(5, 4)}) {
    LocallyFairWalk walk(g, 0, FairnessCriterion::kLeastUsedFirst);
    const std::uint64_t bound = 8ull * g.num_edges() * (diameter(g) + 2) + 100;
    EXPECT_TRUE(run_until_edge_cover(walk, bound));
  }
}

TEST(LocallyFair, LeastUsedFirstIsFairLongRun) {
  // [5]: Least-Used-First traverses all edges with the same frequency in the
  // long run. After many multiples of 2m steps the min/max traversal counts
  // should be within a factor ~2.
  const Graph g = torus_2d(5, 5);
  LocallyFairWalk walk(g, 0, FairnessCriterion::kLeastUsedFirst);
  const std::uint64_t m = g.num_edges();
  for (std::uint64_t i = 0; i < 400 * m; ++i) walk.step();
  const auto& tr = walk.edge_traversals();
  const auto [lo, hi] = std::minmax_element(tr.begin(), tr.end());
  EXPECT_GT(*lo, 0u);
  EXPECT_LT(static_cast<double>(*hi) / static_cast<double>(*lo), 2.0);
}

TEST(LocallyFair, OldestFirstIsDeterministicAndCoversSmallGraphs) {
  const Graph g = cycle_graph(15);
  LocallyFairWalk a(g, 0, FairnessCriterion::kOldestFirst);
  LocallyFairWalk b(g, 0, FairnessCriterion::kOldestFirst);
  for (int i = 0; i < 500; ++i) {
    a.step();
    b.step();
    ASSERT_EQ(a.current(), b.current());
  }
  LocallyFairWalk c(g, 0, FairnessCriterion::kOldestFirst);
  EXPECT_TRUE(run_until_edge_cover(c, 100000));
}

TEST(LocallyFair, TraversalCountsMatchSteps) {
  const Graph g = petersen_graph();
  LocallyFairWalk walk(g, 0, FairnessCriterion::kLeastUsedFirst);
  for (int i = 0; i < 777; ++i) walk.step();
  std::uint64_t total = 0;
  for (const auto c : walk.edge_traversals()) total += c;
  EXPECT_EQ(total, 777u);
}

}  // namespace
}  // namespace ewalk
