#!/usr/bin/env python3
"""Markdown link checker for the repo docs (CI's docs job).

Checks that every relative link/image target in the given markdown files (or
all *.md directly inside given directories) exists on disk, resolving
against the file's own directory. External links (http/https/mailto) and
pure in-page anchors (#...) are skipped — no network, no flakes. Exits
non-zero listing every broken link.

Usage: check_markdown_links.py FILE_OR_DIR [FILE_OR_DIR ...]
"""

import re
import sys
from pathlib import Path

# Inline links/images: [text](target). Skips code spans by masking them first.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_RE = re.compile(r"(```.*?```|`[^`]*`)", re.DOTALL)


def collect(paths):
    files = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.glob("*.md")))
        elif p.suffix == ".md":
            files.append(p)
        else:
            print(f"warning: skipping non-markdown argument {p}")
    return files


def check_file(md):
    broken = []
    # Mask code spans but keep newlines so reported line numbers stay right.
    text = CODE_RE.sub(lambda m: re.sub(r"[^\n]", " ", m.group(0)),
                       md.read_text())
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        rel = target.split("#", 1)[0]  # strip in-page anchor
        if not rel:
            continue
        if not (md.parent / rel).exists():
            line = text.count("\n", 0, match.start()) + 1
            broken.append(f"{md}:{line}: broken link -> {target}")
    return broken


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip())
        return 2
    files = collect(sys.argv[1:])
    if not files:
        print("error: no markdown files found in arguments")
        return 2
    broken = [b for f in files for b in check_file(f)]
    for b in broken:
        print(b)
    print(f"checked {len(files)} files: "
          f"{'FAIL' if broken else 'OK'} ({len(broken)} broken)")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
