// ewalk — command-line driver: run any walk process on any generator and
// print cover statistics. The "product" face of the library for quick
// experiments without writing C++.
//
// Usage:
//   ewalk --graph <family> [graph params] --walk <process> [walk params]
//         [--trials N] [--seed S] [--target vertices|edges] [--start V]
//         [--max-steps B] [--csv out.csv] [--profile]
//
// Graph families and walk processes are dispatched through the engine
// registries (src/engine/registry.hpp); `ewalk --help` lists every
// registered name with its parameters — the list below is generated, not
// hard-coded, so registering a new process or family updates it
// automatically.
//
// Examples:
//   ewalk --graph regular --n 100000 --r 4 --walk eprocess
//   ewalk --graph lps --p 5 --q 29 --walk eprocess --target edges
//   ewalk --graph torus --w 200 --h 200 --walk rwc --d 2 --trials 10
//   ewalk --graph hamunion --n 50000 --k 3 --walk multi-eprocess --walkers 8
#include <cstdio>
#include <memory>
#include <string>

#include "analysis/profile.hpp"
#include "engine/budget.hpp"
#include "engine/driver.hpp"
#include "engine/params.hpp"
#include "engine/registry.hpp"
#include "graph/algorithms.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace {

using namespace ewalk;

void print_help() {
  std::printf(
      "ewalk — run any registered walk process on any graph family\n\n"
      "usage: ewalk --graph <family> [graph params] --walk <process> [walk params]\n"
      "             [--trials N] [--seed S] [--target vertices|edges]\n"
      "             [--max-steps B] [--csv out.csv] [--profile]\n\n");
  std::printf("graph families (--graph):\n");
  for (const auto& e : GeneratorRegistry::instance().entries())
    std::printf("  %-12s %-22s %s\n", e.name.c_str(), e.params_help.c_str(),
                e.summary.c_str());
  std::printf("\nwalk processes (--walk):\n");
  for (const auto& e : ProcessRegistry::instance().entries())
    std::printf("  %-15s %-34s %s\n", e.name.c_str(), e.params_help.c_str(),
                e.summary.c_str());
  std::printf("\nE-process rules (--rule):");
  for (const auto& r : rule_names()) std::printf(" %s", r.c_str());
  std::printf(
      "\n\nWhen --max-steps is absent the engine's default_step_budget(g)\n"
      "heuristic bounds each trial (see src/engine/budget.hpp).\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  if (cli.has("help")) {
    print_help();
    return 0;
  }
  try {
    const std::uint32_t trials = static_cast<std::uint32_t>(cli.get_int("trials", 5));
    const bool edges = cli.get("target", "vertices") == "edges";
    const std::string family = cli.get("graph", "regular");
    const std::string process = cli.get("walk", "eprocess");
    const ParamMap& params = cli.params();

    Rng graph_rng(cli.get_u64("seed", 1));
    const Graph g = GeneratorRegistry::instance().create(family, params, graph_rng);

    std::printf("graph: n=%u m=%u min_deg=%u max_deg=%u even=%s connected=%s\n",
                g.num_vertices(), g.num_edges(), g.min_degree(), g.max_degree(),
                g.all_degrees_even() ? "yes" : "no",
                is_connected(g) ? "yes" : "no");

    if (cli.has("profile")) {
      ProfileOptions popts;
      popts.compute_ell = g.num_vertices() <= 200000;
      std::printf("%s", format_profile(profile_graph(g, popts)).c_str());
    }

    const std::uint64_t budget = cli.get_u64("max-steps", default_step_budget(g));
    std::vector<double> covers, steps;
    std::uint32_t uncovered = 0;
    for (std::uint32_t t = 0; t < trials; ++t) {
      Rng rng(cli.get_u64("seed", 1) * 733 + t);
      auto walk = ProcessRegistry::instance().create(process, g, params, rng);
      bool done;
      if (edges)
        done = run_until(*walk, rng, EdgesCovered{}, budget);
      else
        done = run_until(*walk, rng, VertexCovered{}, budget);
      if (!done) ++uncovered;
      const std::uint64_t cover_step = edges ? walk->cover().edge_cover_step()
                                             : walk->cover().vertex_cover_step();
      // Uncovered trials contribute the budget, as measure_cover does.
      covers.push_back(static_cast<double>(done ? cover_step : budget));
      steps.push_back(static_cast<double>(walk->steps()));
    }
    const auto stats = summarize(covers);
    std::printf("%s cover time over %u trials:\n", edges ? "edge" : "vertex", trials);
    std::printf("  mean   %14.0f  (+/- %0.0f at 95%%)\n", stats.mean,
                stats.ci95_halfwidth());
    std::printf("  median %14.0f   min %0.0f   max %0.0f\n", stats.median,
                stats.min, stats.max);
    std::printf("  normalised: /n = %.3f   /m = %.3f\n",
                stats.mean / g.num_vertices(), stats.mean / g.num_edges());
    if (uncovered > 0)
      std::printf("  WARNING: %u/%u trials did not cover within %llu steps;\n"
                  "  their samples (and the statistics above) are clamped to the\n"
                  "  budget — raise --max-steps for true cover times\n",
                  uncovered, trials, static_cast<unsigned long long>(budget));

    if (cli.has("csv")) {
      CsvWriter csv(cli.get("csv", "ewalk.csv"), {"trial", "cover_step", "total_steps"});
      for (std::uint32_t t = 0; t < trials; ++t)
        csv.row({static_cast<double>(t), covers[t], steps[t]});
      std::printf("  wrote %s\n", cli.get("csv", "ewalk.csv").c_str());
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
  return 0;
}
