// ewalk — command-line driver: run any walk process on any generator and
// print cover (or coalescence) statistics. The "product" face of the
// library for quick experiments without writing C++.
//
// Usage:
//   ewalk --graph <family> [graph params] --process <process> [walk params]
//         [--trials N] [--threads T] [--seed S]
//         [--target vertices|edges|coalescence]
//         [--start V] [--max-steps B] [--csv out.csv] [--profile]
//         [--sweep n1,n2,...]
//
// (--walk is accepted as a synonym for --process, --generator for --graph.)
//
// --sweep n1,n2,... switches to sweep mode: the --n parameter of the chosen
// family is swept over the listed sizes through the sweep driver
// (src/sweep/), one point per size with --trials trials each, scheduled on
// the thread pool with graph construction inside the tasks. Results print
// as a table and land in bench_out/SWEEP_cli.{json,csv} — the same
// machine-readable format the sweep benches emit — so a quick
// figure-style sweep needs no bench binary:
//   ewalk --generator regular-pairing --r 4 --process eprocess --sweep \
//         25000,50000,100000 --trials 5 --threads 0
//
// Trials run through the experiment harness's run_trials on the
// work-stealing Executor: trial t's RNG stream is a pure function of
// (--seed, t), so --threads (and --pin) change wall time only, never the
// reported samples.
//
// Graph families and walk processes are dispatched through the engine
// registries (src/engine/registry.hpp); `ewalk --help` lists every
// registered name with its parameters — the list below is generated, not
// hard-coded, so registering a new process or family updates it
// automatically. Interacting-token processes (coalescing-srw,
// coalescing-ewalk, herman) default to --target coalescence and report the
// coalescence and first-meeting times instead of a cover time.
//
// Examples:
//   ewalk --graph regular --n 100000 --r 4 --process eprocess
//   ewalk --graph lps --p 5 --q 29 --process eprocess --target edges
//   ewalk --graph torus --w 200 --h 200 --process rwc --d 2 --trials 10
//   ewalk --graph hamunion --n 50000 --k 3 --process multi-eprocess --walkers 8
//   ewalk --graph complete --n 1024 --process coalescing-srw --tokens 32
//   ewalk --graph cycle --n 257 --process herman --tokens 3
//
// Since the serving-layer redesign the non-sweep path is one call: the flag
// bag becomes a RunRequest (serve/request.hpp) — the same canonical struct
// the ewalkd daemon parses from protocol lines — and execute_run produces
// the RunResult this driver formats. CLI and daemon samples are therefore
// bit-identical by construction.
#include <cstdio>
#include <memory>
#include <string>

#include "analysis/profile.hpp"
#include "covertime/experiment.hpp"
#include "engine/params.hpp"
#include "engine/registry.hpp"
#include "serve/request.hpp"
#include "sweep/report.hpp"
#include "sweep/sweep.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace {

using namespace ewalk;

void print_help() {
  std::printf(
      "ewalk — run any registered walk process on any graph family\n\n"
      "usage: ewalk --graph <family> [graph params] --process <name> [walk params]\n"
      "             [--trials N] [--threads T] [--pin] [--seed S]\n"
      "             [--target vertices|edges|coalescence]\n"
      "             [--max-steps B] [--csv out.csv] [--profile]\n"
      "             [--sweep n1,n2,...] [--max-trials M] [--ci-width W]\n"
      "             [--bundle W]\n"
      "       (--walk is a synonym for --process, --generator for --graph;\n"
      "        --threads 0 = all hardware threads, values above hardware are\n"
      "        clamped with a warning; --pin pins scheduler workers to CPUs\n"
      "        (Linux only, rejected elsewhere); --sweep sweeps --n over the\n"
      "        listed sizes via the sweep driver and writes\n"
      "        bench_out/SWEEP_cli.json; --max-trials M > 0 makes trial\n"
      "        counts adaptive: each series runs --trials to M trials until\n"
      "        its 95%% CI half-width is within --ci-width (default 0.05) of\n"
      "        its mean; --bundle W > 1 interleaves W trials per task to hide\n"
      "        DRAM latency on big graphs — samples are bit-identical to\n"
      "        --bundle 1)\n\n");
  std::printf("graph families (--graph):\n");
  for (const auto& e : GeneratorRegistry::instance().entries())
    std::printf("  %-12s %-22s %s\n", e.name.c_str(), e.params_help.c_str(),
                e.summary.c_str());
  std::printf("\nwalk processes (--process):\n");
  for (const auto& e : ProcessRegistry::instance().entries())
    std::printf("  %-16s %-34s %s\n", e.name.c_str(), e.params_help.c_str(),
                e.summary.c_str());
  std::printf("\nE-process rules (--rule):");
  for (const auto& r : rule_names()) std::printf(" %s", r.c_str());
  std::printf(
      "\n\nInteracting-token processes default to --target coalescence\n"
      "(drive the population to one token; report coalescence and\n"
      "first-meeting steps). When --max-steps is absent the engine's\n"
      "default_step_budget(g) heuristic bounds each trial\n"
      "(see src/engine/budget.hpp).\n");
}

// --threads / --pin handling shared by the sweep and trial paths: 0 means
// all hardware threads, above-hardware requests clamp with a warning
// instead of silently oversubscribing, and --pin errors out where thread
// affinity is unsupported (best-effort failures only warn).
std::uint32_t resolve_cli_threads(const Cli& cli) {
  const std::int64_t requested = cli.get_int("threads", 1);
  if (requested < 0)
    throw std::invalid_argument(
        "--threads must be >= 0 (0 = all hardware threads)");
  bool clamped = false;
  const std::uint32_t threads =
      resolve_thread_count(static_cast<std::uint64_t>(requested), &clamped);
  if (clamped)
    std::fprintf(stderr,
                 "warning: --threads %lld exceeds the %u hardware threads; "
                 "clamped to %u\n",
                 static_cast<long long>(requested),
                 Executor::hardware_threads(), threads);
  if (cli.get_bool("pin", false)) {
    if (!Executor::pin_supported())
      throw std::invalid_argument(
          "--pin: thread-affinity pinning is not supported on this platform");
    if (!Executor::instance().set_pinning(true))
      std::fprintf(stderr,
                   "warning: --pin: could not apply affinity to every worker "
                   "(restricted cpuset?)\n");
  }
  return threads;
}

// Sweep mode: --sweep n1,n2,... sweeps the family's --n parameter through
// the sweep driver — one point per size, the chosen process as its only
// series — and emits the standard SWEEP_*.json/csv pair under bench_out/.
int run_cli_sweep(const Cli& cli, const std::string& family,
                  const std::string& process, std::uint32_t trials) {
  const std::string spec = cli.get("sweep", "");
  if (spec.empty())
    throw std::invalid_argument("--sweep needs a comma-separated size list");
  const std::vector<std::uint64_t> ns = parse_u64_list(spec);

  // Sweeping overrides the family's --n; a family not parameterised by n
  // (torus, lps, hypercube, ...) would silently build the identical graph
  // at every point and normalise by a fictitious n.
  bool family_known = false, family_has_n = false;
  for (const auto& e : GeneratorRegistry::instance().entries())
    if (e.name == family) {
      family_known = true;
      family_has_n = e.params_help.find("--n") != std::string::npos;
    }
  if (family_known && !family_has_n)
    throw std::invalid_argument(
        "--sweep sweeps the --n parameter, but family '" + family +
        "' is not parameterised by --n (use e.g. regular, regular-pairing, "
        "cycle, complete, hamunion, erdosrenyi, geometric)");

  const std::string target = cli.get("target", "vertices");
  if (target != "vertices" && target != "edges")
    throw std::invalid_argument("--sweep supports --target vertices|edges");

  std::vector<SweepPoint> points;
  for (const std::uint64_t n : ns) {
    ParamMap point_params = cli.params();
    point_params.set("n", std::to_string(n));
    SweepPoint point;
    point.label = "n" + std::to_string(n);
    point.params = {{"n", static_cast<double>(n)}};
    point.graph = [family, point_params](Rng& rng) {
      return GeneratorRegistry::instance().create(family, point_params, rng);
    };
    point.series = {SweepSeriesSpec{
        process,
        [process, point_params](const Graph& g, Rng& rng) {
          return ProcessRegistry::instance().create(process, g, point_params, rng);
        },
        target == "edges" ? CoverTarget::kEdges : CoverTarget::kVertices}};
    point.max_steps = cli.get_u64("max-steps", 0);
    points.push_back(std::move(point));
  }

  SweepConfig config;
  config.trials = trials;
  config.threads = resolve_cli_threads(cli);
  config.master_seed = cli.get_u64("seed", 1);
  config.max_trials = static_cast<std::uint32_t>(cli.get_u64("max-trials", 0));
  config.ci_rel_target = cli.get_double("ci-width", config.ci_rel_target);
  config.bundle_width = static_cast<std::uint32_t>(cli.get_u64("bundle", 1));
  const SweepResult result = run_sweep("cli", points, config);

  if (config.max_trials > 0)
    std::printf(
        "sweep: %s on %s, target %s, adaptive trials (floor %u, cap %u, "
        "CI width <= %.3g of mean)\n",
        process.c_str(), family.c_str(), target.c_str(), trials,
        config.max_trials, config.ci_rel_target);
  else
    std::printf("sweep: %s on %s, target %s, %u trials/point\n",
                process.c_str(), family.c_str(), target.c_str(), trials);
  print_sweep_table(result);
  const std::string json = write_sweep_json(result);
  const std::string csv = write_sweep_csv(result);
  std::printf("wrote %s and %s\n", json.c_str(), csv.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  if (cli.has("help")) {
    print_help();
    return 0;
  }
  try {
    // The Cli constructor already folded --walk/--generator onto the
    // canonical --process/--graph spellings (util/cli's shared table).
    RunRequest req = run_request_from_params(cli.params());

    if (cli.has("sweep"))
      return run_cli_sweep(cli, req.graph, req.process, req.trials);

    req.threads = resolve_cli_threads(cli);

    // The whole non-sweep run is one execute_run call — the same entry
    // point the ewalkd daemon dispatches, minus the graph cache.
    const RunResult result = execute_run(req, /*store=*/nullptr);
    if (!result.ok) {
      std::fprintf(stderr, "error: %s\n", result.error.c_str());
      return 1;
    }

    const Graph& g = result.graph->graph();
    std::printf("graph: n=%u m=%u min_deg=%u max_deg=%u even=%s connected=%s\n",
                g.num_vertices(), g.num_edges(), g.min_degree(), g.max_degree(),
                g.all_degrees_even() ? "yes" : "no",
                result.graph->connected() ? "yes" : "no");

    if (cli.has("profile")) {
      ProfileOptions popts;
      popts.compute_ell = g.num_vertices() <= 200000;
      std::printf("%s", format_profile(profile_graph(g, popts)).c_str());
    }

    const bool coalescence = result.target == RunTarget::kCoalescence;
    const char* quantity = coalescence ? "coalescence"
                           : result.target == RunTarget::kEdges ? "edge cover"
                                                                : "vertex cover";
    const SummaryStats& stats = result.stats;
    std::printf("%s time over %u trials:\n", quantity, req.trials);
    std::printf("  mean   %14.0f  (+/- %0.0f at 95%%)\n", stats.mean,
                stats.ci95_halfwidth());
    std::printf("  median %14.0f   min %0.0f   max %0.0f\n", stats.median,
                stats.min, stats.max);
    std::printf("  normalised: /n = %.3f   /m = %.3f\n",
                stats.mean / g.num_vertices(), stats.mean / g.num_edges());
    if (coalescence)
      std::printf("  first meeting: mean %.0f   median %.0f\n",
                  result.meeting_stats.mean, result.meeting_stats.median);
    std::printf("  throughput: %.3g steps/sec (%.0f steps, %.2fs wall, --threads %u)\n",
                result.wall_seconds > 0 ? result.total_steps / result.wall_seconds
                                        : 0.0,
                result.total_steps, result.wall_seconds, req.threads);
    if (result.unfinished > 0)
      std::printf("  WARNING: %u/%u trials did not finish within %llu steps;\n"
                  "  their samples (and the statistics above) are clamped to the\n"
                  "  budget — raise --max-steps for true values\n",
                  result.unfinished, req.trials,
                  static_cast<unsigned long long>(result.budget));

    if (cli.has("csv")) {
      std::vector<std::string> header = {"trial", "result_step", "total_steps"};
      if (coalescence) header.push_back("meeting_step");
      CsvWriter csv(cli.get("csv", "ewalk.csv"), std::move(header));
      for (std::uint32_t t = 0; t < req.trials; ++t) {
        if (coalescence)
          csv.row({static_cast<double>(t), result.samples[t],
                   result.step_samples[t], result.meeting_samples[t]});
        else
          csv.row({static_cast<double>(t), result.samples[t],
                   result.step_samples[t]});
      }
      std::printf("  wrote %s\n", cli.get("csv", "ewalk.csv").c_str());
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
  return 0;
}
