// ewalk — command-line driver: run any walk process on any generator and
// print cover statistics. The "product" face of the library for quick
// experiments without writing C++.
//
// Usage:
//   ewalk --graph <family> [graph params] --walk <process> [--trials N]
//         [--seed S] [--target vertices|edges] [--start V] [--csv out.csv]
//
// Graph families (params):
//   regular      --n --r           random r-regular (Steger–Wormald)
//   hamunion     --n --k           union of k random Hamiltonian cycles
//   cycle        --n
//   complete     --n
//   hypercube    --r
//   torus        --w --h
//   grid         --w --h
//   geometric    --n --radius
//   erdosrenyi   --n --p
//   lps          --p --q           Lubotzky–Phillips–Sarnak X^{p,q}
//   margulis     --k               Margulis-type expander on k x k
//   circulant    --n --offsets a,b,c
//   lollipop     --clique --tail
//   petersen
//   file         --path <edge list written by write_edge_list>
//
// Walks:
//   eprocess [--rule uniform|first|last|roundrobin|adversary|greedy|priority]
//   srw [--lazy]      rotor      rwc --d N      vertexwalk
//   leastused         oldest     weighted (unit weights)
//
// Examples:
//   ewalk --graph regular --n 100000 --r 4 --walk eprocess
//   ewalk --graph lps --p 5 --q 29 --walk eprocess --target edges
//   ewalk --graph torus --w 200 --h 200 --walk rwc --d 2 --trials 10
#include <cstdio>
#include <memory>
#include <string>

#include "analysis/profile.hpp"
#include "covertime/experiment.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/lps.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "walks/choice.hpp"
#include "walks/eprocess.hpp"
#include "walks/locally_fair.hpp"
#include "walks/rotor.hpp"
#include "walks/rules.hpp"
#include "walks/srw.hpp"
#include "walks/vertex_process.hpp"
#include "walks/weighted.hpp"

namespace {

using namespace ewalk;

Graph build_graph(const Cli& cli, Rng& rng) {
  const std::string family = cli.get("graph", "regular");
  const Vertex n = static_cast<Vertex>(cli.get_int("n", 10000));
  if (family == "regular")
    return random_regular_connected(n, static_cast<std::uint32_t>(cli.get_int("r", 4)), rng);
  if (family == "hamunion")
    return hamiltonian_cycle_union(n, static_cast<std::uint32_t>(cli.get_int("k", 2)), rng);
  if (family == "cycle") return cycle_graph(n);
  if (family == "complete") return complete_graph(n);
  if (family == "hypercube") return hypercube(static_cast<std::uint32_t>(cli.get_int("r", 10)));
  if (family == "torus")
    return torus_2d(static_cast<Vertex>(cli.get_int("w", 100)),
                    static_cast<Vertex>(cli.get_int("h", 100)));
  if (family == "grid")
    return grid_2d(static_cast<Vertex>(cli.get_int("w", 100)),
                   static_cast<Vertex>(cli.get_int("h", 100)));
  if (family == "geometric")
    return random_geometric(n, cli.get_double("radius", 0.03), rng);
  if (family == "erdosrenyi") return erdos_renyi(n, cli.get_double("p", 0.001), rng);
  if (family == "lps")
    return lps_graph({static_cast<std::uint32_t>(cli.get_int("p", 5)),
                      static_cast<std::uint32_t>(cli.get_int("q", 13))});
  if (family == "margulis")
    return margulis_expander(static_cast<Vertex>(cli.get_int("k", 100)));
  if (family == "circulant") {
    std::vector<std::uint32_t> offsets;
    std::string spec = cli.get("offsets", "1,2");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      const std::size_t comma = spec.find(',', pos);
      offsets.push_back(static_cast<std::uint32_t>(
          std::stoul(spec.substr(pos, comma - pos))));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    return circulant(n, offsets);
  }
  if (family == "lollipop")
    return lollipop(static_cast<Vertex>(cli.get_int("clique", 50)),
                    static_cast<Vertex>(cli.get_int("tail", 50)));
  if (family == "petersen") return petersen_graph();
  if (family == "file") return read_edge_list_file(cli.get("path", "graph.txt"));
  throw std::invalid_argument("unknown --graph family: " + family);
}

std::unique_ptr<UnvisitedEdgeRule> build_rule(const Cli& cli, const Graph& g, Rng& rng) {
  const std::string rule = cli.get("rule", "uniform");
  if (rule == "uniform") return std::make_unique<UniformRule>();
  if (rule == "first") return std::make_unique<FirstSlotRule>();
  if (rule == "last") return std::make_unique<LastSlotRule>();
  if (rule == "roundrobin") return std::make_unique<RoundRobinRule>(g.num_vertices());
  if (rule == "adversary") return std::make_unique<PreferVisitedEndpointRule>();
  if (rule == "greedy") return std::make_unique<PreferUnvisitedEndpointRule>();
  if (rule == "priority") return std::make_unique<FixedPriorityRule>(g.num_edges(), rng);
  throw std::invalid_argument("unknown --rule: " + rule);
}

struct TrialOutcome {
  double cover_step;
  double total_steps;
};

TrialOutcome run_walk(const Cli& cli, const Graph& g, Rng& rng, bool edges) {
  const std::string walk = cli.get("walk", "eprocess");
  const Vertex start = static_cast<Vertex>(cli.get_int("start", 0));
  const std::uint64_t budget = cli.get_u64("max-steps", 1ull << 42);
  const auto result = [&](const auto& w) {
    return TrialOutcome{
        static_cast<double>(edges ? w.cover().edge_cover_step()
                                  : w.cover().vertex_cover_step()),
        static_cast<double>(w.steps())};
  };

  if (walk == "eprocess") {
    auto rule = build_rule(cli, g, rng);
    EProcess w(g, start, *rule);
    edges ? w.run_until_edge_cover(rng, budget) : w.run_until_vertex_cover(rng, budget);
    return result(w);
  }
  if (walk == "srw") {
    SimpleRandomWalk w(g, start, SrwOptions{.lazy = cli.get_bool("lazy", false)});
    edges ? w.run_until_edge_cover(rng, budget) : w.run_until_vertex_cover(rng, budget);
    return result(w);
  }
  if (walk == "rotor") {
    RotorRouter w(g, start);
    edges ? w.run_until_edge_cover(budget) : w.run_until_vertex_cover(budget);
    return result(w);
  }
  if (walk == "rwc") {
    RandomWalkWithChoice w(g, start, static_cast<std::uint32_t>(cli.get_int("d", 2)));
    w.run_until_vertex_cover(rng, budget);
    return result(w);
  }
  if (walk == "vertexwalk") {
    UnvisitedVertexWalk w(g, start);
    w.run_until_vertex_cover(rng, budget);
    return result(w);
  }
  if (walk == "leastused" || walk == "oldest") {
    LocallyFairWalk w(g, start,
                      walk == "leastused" ? FairnessCriterion::kLeastUsedFirst
                                          : FairnessCriterion::kOldestFirst);
    edges ? w.run_until_edge_cover(budget) : w.run_until_vertex_cover(budget);
    return result(w);
  }
  if (walk == "weighted") {
    WeightedRandomWalk w(g, start, std::vector<double>(g.num_edges(), 1.0));
    w.run_until_vertex_cover(rng, budget);
    return result(w);
  }
  throw std::invalid_argument("unknown --walk: " + walk);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  if (cli.has("help")) {
    std::printf("see the header comment of tools/ewalk_cli.cpp for usage\n");
    return 0;
  }
  try {
    const std::uint32_t trials = static_cast<std::uint32_t>(cli.get_int("trials", 5));
    const bool edges = cli.get("target", "vertices") == "edges";
    Rng graph_rng(cli.get_u64("seed", 1));
    const Graph g = build_graph(cli, graph_rng);

    std::printf("graph: n=%u m=%u min_deg=%u max_deg=%u even=%s connected=%s\n",
                g.num_vertices(), g.num_edges(), g.min_degree(), g.max_degree(),
                g.all_degrees_even() ? "yes" : "no",
                is_connected(g) ? "yes" : "no");

    if (cli.has("profile")) {
      ProfileOptions popts;
      popts.compute_ell = g.num_vertices() <= 200000;
      std::printf("%s", format_profile(profile_graph(g, popts)).c_str());
    }

    std::vector<double> covers, steps;
    for (std::uint32_t t = 0; t < trials; ++t) {
      Rng rng(cli.get_u64("seed", 1) * 733 + t);
      const auto outcome = run_walk(cli, g, rng, edges);
      covers.push_back(outcome.cover_step);
      steps.push_back(outcome.total_steps);
    }
    const auto stats = summarize(covers);
    std::printf("%s cover time over %u trials:\n", edges ? "edge" : "vertex", trials);
    std::printf("  mean   %14.0f  (+/- %0.0f at 95%%)\n", stats.mean,
                stats.ci95_halfwidth());
    std::printf("  median %14.0f   min %0.0f   max %0.0f\n", stats.median,
                stats.min, stats.max);
    std::printf("  normalised: /n = %.3f   /m = %.3f\n",
                stats.mean / g.num_vertices(), stats.mean / g.num_edges());

    if (cli.has("csv")) {
      CsvWriter csv(cli.get("csv", "ewalk.csv"), {"trial", "cover_step", "total_steps"});
      for (std::uint32_t t = 0; t < trials; ++t)
        csv.row({static_cast<double>(t), covers[t], steps[t]});
      std::printf("  wrote %s\n", cli.get("csv", "ewalk.csv").c_str());
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
  return 0;
}
