#!/usr/bin/env python3
"""Client for the ewalkd serving daemon (line-delimited JSON protocol).

Two transports:
  * --spawn BIN : start `BIN --stdin` as a child process and pipe the
    request script through it (what CI's serve-smoke step does);
  * --host/--port : connect to a running `ewalkd --port P` over TCP.

The request script (--script FILE, or stdin) is one JSON request per line;
blank lines and lines starting with '#' are skipped. All responses are
printed one per line.

Determinism helpers for golden-file diffs:
  * --strip : drop fields that legitimately vary run-to-run (wall_seconds,
    the stats "bytes" gauge, whose base includes platform-dependent struct
    sizes) and re-serialise each response with sorted keys;
  * --sort  : order responses by (id, status, line) instead of completion
    order — results of concurrent runs complete in scheduler order, which
    is the one thing the serving determinism contract does NOT pin.

Example:
  python3 tools/ewalk_client.py --spawn build/ewalkd \
      --script tools/serve_smoke.jsonl --strip --sort
"""

import argparse
import json
import socket
import subprocess
import sys

# Fields whose values vary run-to-run even under the determinism contract.
VOLATILE_FIELDS = ("wall_seconds",)
VOLATILE_CACHE_FIELDS = ("bytes",)


def read_script(path):
    """Request lines of the script at `path` ('-' = stdin), comments skipped."""
    stream = sys.stdin if path == "-" else open(path, "r", encoding="utf-8")
    try:
        lines = []
        for raw in stream:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            lines.append(line)
        return lines
    finally:
        if stream is not sys.stdin:
            stream.close()


def strip_response(line):
    """Canonicalise one response line: drop volatile fields, sort keys."""
    try:
        obj = json.loads(line)
    except ValueError:
        return line  # not JSON: pass through untouched (shouldn't happen)
    for field in VOLATILE_FIELDS:
        obj.pop(field, None)
    cache = obj.get("cache")
    if isinstance(cache, dict):
        for field in VOLATILE_CACHE_FIELDS:
            cache.pop(field, None)
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def run_spawn(binary, extra_args, requests):
    """Pipe `requests` through a fresh `binary --stdin` child; returns responses."""
    child = subprocess.Popen(
        [binary, "--stdin"] + extra_args,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
    )
    payload = "".join(line + "\n" for line in requests)
    out, _ = child.communicate(payload)
    if child.returncode != 0:
        raise RuntimeError("ewalkd exited with status %d" % child.returncode)
    return [line for line in out.splitlines() if line]


def run_tcp(host, port, requests):
    """Send `requests` over one TCP connection; reads until the peer closes.

    The last request should be a shutdown (or the caller must not expect
    this function to return): responses stream back tagged by id, and EOF
    is the only length signal the protocol needs.
    """
    with socket.create_connection((host, port)) as conn:
        conn.sendall("".join(line + "\n" for line in requests).encode())
        conn.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return [line for line in b"".join(chunks).decode().splitlines() if line]


def sort_key(line):
    try:
        obj = json.loads(line)
    except ValueError:
        return ("", "", line)
    return (str(obj.get("id", "")), str(obj.get("status", "")), line)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--spawn", metavar="BIN",
                        help="start BIN --stdin and pipe the script through it")
    parser.add_argument("--host", default="127.0.0.1",
                        help="TCP host (with --port; default 127.0.0.1)")
    parser.add_argument("--port", type=int,
                        help="connect to a running ewalkd on this TCP port")
    parser.add_argument("--script", default="-", metavar="FILE",
                        help="request script, one JSON line each ('-' = stdin)")
    parser.add_argument("--daemon-arg", action="append", default=[],
                        metavar="ARG", help="extra flag for the spawned daemon "
                        "(repeatable, e.g. --daemon-arg=--cache-bytes=1000000)")
    parser.add_argument("--strip", action="store_true",
                        help="drop volatile fields; sorted-key canonical JSON")
    parser.add_argument("--sort", action="store_true",
                        help="sort responses by (id, status) for golden diffs")
    args = parser.parse_args()

    if (args.spawn is None) == (args.port is None):
        parser.error("pick exactly one transport: --spawn BIN or --port P")

    requests = read_script(args.script)
    if args.spawn:
        responses = run_spawn(args.spawn, args.daemon_arg, requests)
    else:
        responses = run_tcp(args.host, args.port, requests)

    if args.strip:
        responses = [strip_response(line) for line in responses]
    if args.sort:
        responses.sort(key=sort_key)
    for line in responses:
        print(line)


if __name__ == "__main__":
    main()
