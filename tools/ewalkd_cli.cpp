// ewalkd — the long-lived serving daemon: a persistent process over a
// cached graph store, accepting line-delimited JSON run requests and
// streaming back tagged results (src/serve/).
//
// Usage:
//   ewalkd --stdin [--cache-bytes B] [--inflight N] [--threads T]
//   ewalkd --port P [--cache-bytes B] [--inflight N] [--threads T]
//
// --stdin serves one request pipe on stdin/stdout (the mode CI and the
// tests drive; EOF or a {"op":"shutdown"} line ends it). --port listens on
// 127.0.0.1:P (0 picks an ephemeral port, reported on stdout) with one
// reader thread per connection, all sharing the cache and the scheduler.
//
// Protocol quickstart (see src/serve/protocol.hpp for the full shape):
//   {"op":"run","id":"a","graph":"regular","process":"eprocess",
//    "seed":7,"trials":5,"params":{"n":"4096","r":"4"}}
//   {"op":"stats"}   {"op":"drain"}   {"op":"ping"}   {"op":"shutdown"}
//
// Responses are one JSON line each, tagged with the request id; runs ack
// immediately ("queued" + ticket) and their results stream back when they
// complete. tools/ewalk_client.py wraps both transports.
#include <cstdio>
#include <iostream>
#include <stdexcept>

#include "serve/server.hpp"
#include "util/cli.hpp"

namespace {

void print_help() {
  std::printf(
      "ewalkd — serving daemon over a cached graph store\n\n"
      "usage: ewalkd --stdin | --port P\n"
      "              [--cache-bytes B] [--inflight N] [--threads T]\n\n"
      "  --stdin          serve line-delimited JSON on stdin/stdout\n"
      "  --port P         listen on 127.0.0.1:P (0 = ephemeral, printed)\n"
      "  --cache-bytes B  graph cache byte budget (0 = unlimited, default)\n"
      "  --inflight N     max queued+running run requests (default 64)\n"
      "  --threads T      run-execution parallelism (0 = hardware, default)\n"
      "  --help           this text\n\n"
      "One JSON object per request line; see src/serve/protocol.hpp and\n"
      "tools/ewalk_client.py. `ewalk --help` lists graph families and\n"
      "processes — request fields mirror the ewalk flags one-for-one.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const ewalk::Cli cli(argc, argv);
  if (cli.has("help")) {
    print_help();
    return 0;
  }
  try {
    ewalk::ServerConfig config;
    config.cache_bytes = cli.get_u64("cache-bytes", 0);
    config.max_inflight =
        static_cast<std::uint32_t>(cli.get_u64("inflight", 64));
    if (config.max_inflight == 0)
      throw std::invalid_argument("--inflight must be >= 1");
    const std::int64_t threads = cli.get_int("threads", 0);
    if (threads < 0)
      throw std::invalid_argument(
          "--threads must be >= 0 (0 = all hardware threads)");
    config.threads = static_cast<std::uint32_t>(threads);

    if (cli.has("stdin") == cli.has("port"))
      throw std::invalid_argument(
          "pick exactly one transport: --stdin or --port P");

    ewalk::Server server(config);
    if (cli.has("stdin")) {
      server.serve_stream(std::cin, std::cout);
      return 0;
    }
    const std::uint16_t port =
        static_cast<std::uint16_t>(cli.get_u64("port", 0));
    const std::uint16_t bound = server.listen_tcp(port);
    std::printf("ewalkd: listening on 127.0.0.1:%u\n", bound);
    std::fflush(stdout);
    server.serve_tcp();
    return 0;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
}
