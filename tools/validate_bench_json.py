#!/usr/bin/env python3
"""Schema validator for the machine-readable bench outputs in bench_out/.

CI's perf gates are schema + coverage, never absolute speed: shared runners
are too noisy for wall-clock assertions, but an empty or malformed JSON
means the perf trajectory silently broke. Two formats are understood,
dispatched on the top-level tag:

  * BENCH_throughput.json  ({"bench": "throughput", "version": 1, ...})
    written by bench/throughput.cpp;
  * SWEEP_<name>.json      ({"sweep": <name>, "version": 1 or 2, ...})
    written by src/sweep/report.cpp for every sweep bench. Version 2 adds
    the adaptive-trials fields (top-level "max_trials"/"ci_rel_target",
    per-series "trials_used"/"ci_rel_width"); version 1 files from older
    artifacts are still accepted.

Usage: validate_bench_json.py FILE [FILE...]
Exits non-zero (with a per-file message) on the first violation.
"""
import json
import sys


def fail(path, message):
    raise SystemExit(f"{path}: {message}")


def validate_throughput(path, d):
    if d.get("version") != 1:
        fail(path, f"unexpected version {d.get('version')}")
    results = d.get("results", [])
    if len(results) < 12:
        fail(path, f"only {len(results)} (process, family) pairs, need >= 12")
    for r in results:
        for key in ("process", "graph", "n", "m", "steps", "seconds",
                    "steps_per_sec"):
            if key not in r:
                fail(path, f"result missing {key}: {r}")
        if not (r["steps"] > 0 and r["steps_per_sec"] > 0):
            fail(path, f"non-positive steps or rate: {r}")
    print(f"{path}: OK ({len(results)} (process, family) pairs)")


def validate_sweep(path, d):
    version = d.get("version")
    if version not in (1, 2):
        fail(path, f"unexpected version {version}")
    required = ["sweep", "seed", "trials", "threads", "reuse_graph",
                "gen_seconds", "walk_seconds", "wall_seconds", "points"]
    if version >= 2:
        required += ["max_trials", "ci_rel_target"]
    for key in required:
        if key not in d:
            fail(path, f"missing top-level {key}")
    trials = d["trials"]
    if not (isinstance(trials, int) and trials > 0):
        fail(path, f"bad trials: {trials!r}")
    max_trials = d.get("max_trials", 0)
    adaptive = version >= 2 and max_trials > 0
    cap = max(max_trials, trials) if adaptive else trials
    if adaptive and not (0 < d["ci_rel_target"] < 1):
        fail(path, f"bad ci_rel_target: {d['ci_rel_target']!r}")
    points = d["points"]
    if not points:
        fail(path, "empty points array")
    param_names = None
    for point in points:
        for key in ("label", "params", "series", "gen_seconds"):
            if key not in point:
                fail(path, f"point missing {key}: {point.get('label')}")
        names = sorted(point["params"])
        if param_names is None:
            param_names = names
        elif names != param_names:
            fail(path, f"inconsistent param names at {point['label']}: "
                       f"{names} vs {param_names}")
        if not point["series"]:
            fail(path, f"point {point['label']} has no series")
        for series in point["series"]:
            keys = ["name", "mean", "ci95", "median", "min", "max",
                    "uncovered_trials", "walk_seconds", "samples"]
            if version >= 2:
                keys += ["trials_used", "ci_rel_width"]
            for key in keys:
                if key not in series:
                    fail(path, f"series missing {key} at {point['label']}")
            used = series.get("trials_used", trials)
            if not (trials <= used <= cap):
                fail(path, f"{point['label']}/{series['name']}: "
                           f"trials_used {used} outside [{trials}, {cap}]")
            if not adaptive and used != trials:
                fail(path, f"{point['label']}/{series['name']}: "
                           f"trials_used {used} != trials in fixed mode")
            if len(series["samples"]) != used:
                fail(path, f"{point['label']}/{series['name']}: "
                           f"{len(series['samples'])} samples, want {used}")
            if not (series["min"] <= series["median"] <= series["max"]):
                fail(path, f"{point['label']}/{series['name']}: "
                           "min/median/max out of order")
            if series["uncovered_trials"] > used:
                fail(path, f"{point['label']}/{series['name']}: "
                           "uncovered_trials exceeds trials_used")
            if version >= 2 and series["ci_rel_width"] < 0:
                fail(path, f"{point['label']}/{series['name']}: "
                           "negative ci_rel_width")
    n_series = sum(len(p["series"]) for p in points)
    mode = f"adaptive cap {cap}" if adaptive else f"{trials} trials/point"
    print(f"{path}: OK ({len(points)} points, {n_series} series, {mode})")


def main(argv):
    if len(argv) < 2:
        raise SystemExit(__doc__)
    for path in argv[1:]:
        with open(path) as f:
            d = json.load(f)
        if d.get("bench") == "throughput":
            validate_throughput(path, d)
        elif "sweep" in d:
            validate_sweep(path, d)
        else:
            fail(path, "neither a throughput nor a sweep JSON")


if __name__ == "__main__":
    main(sys.argv)
