#!/usr/bin/env python3
"""Schema validator for the machine-readable bench outputs in bench_out/.

CI's perf gates are schema + coverage, never absolute speed: shared runners
are too noisy for wall-clock assertions, but an empty or malformed JSON
means the perf trajectory silently broke. Two formats are understood,
dispatched on the top-level tag:

  * BENCH_throughput.json  ({"bench": "throughput", "version": 1 or 2, ...})
    written by bench/throughput.cpp. Version 2 adds the per-result "bundle"
    interleave width (the latency-bound tier sweeps it; matrix rows carry
    bundle = 1) and requires at least two distinct widths so the
    latency-hiding tier cannot silently drop out of the artifact;
  * SWEEP_<name>.json      ({"sweep": <name>, "version": 1, 2 or 3, ...})
    written by src/sweep/report.cpp for every sweep bench. Version 2 adds
    the adaptive-trials fields (top-level "max_trials"/"ci_rel_target",
    per-series "trials_used"/"ci_rel_width"); version 3 adds the scheduler
    observability fields (top-level "pin", "unit_count",
    "unit_seconds_min"/"unit_seconds_max", "timeline_bucket_seconds", and
    the per-thread "thread_timeline" throughput-over-time series). Older
    version 1/2 files from existing artifacts are still accepted.

Usage: validate_bench_json.py FILE [FILE...]
       validate_bench_json.py --self-test
Exits non-zero (with a per-file message) on the first violation.

--self-test validates embedded sample documents (one per accepted format,
including the PCF dynamic-graph sweep shape with censored/uncovered trials)
and checks that representative corruptions of each are rejected. ctest runs
it so validator drift fails tier-1, not just the perf-smoke job that feeds
the validator real artifacts.
"""
import copy
import json
import sys


def fail(path, message):
    raise SystemExit(f"{path}: {message}")


def validate_throughput(path, d):
    version = d.get("version")
    if version not in (1, 2):
        fail(path, f"unexpected version {version}")
    results = d.get("results", [])
    if len(results) < 12:
        fail(path, f"only {len(results)} (process, family) pairs, need >= 12")
    keys = ["process", "graph", "n", "m", "steps", "seconds", "steps_per_sec"]
    if version >= 2:
        keys.append("bundle")
    for r in results:
        for key in keys:
            if key not in r:
                fail(path, f"result missing {key}: {r}")
        if not (r["steps"] > 0 and r["steps_per_sec"] > 0):
            fail(path, f"non-positive steps or rate: {r}")
        if version >= 2 and not (isinstance(r["bundle"], int)
                                 and r["bundle"] >= 1):
            fail(path, f"bad bundle width: {r}")
    if version >= 2:
        widths = sorted({r["bundle"] for r in results})
        if len(widths) < 2:
            fail(path, f"latency tier missing: only bundle widths {widths}, "
                       "need a sweep over >= 2 widths")
        print(f"{path}: OK ({len(results)} pairs, bundle widths {widths})")
    else:
        print(f"{path}: OK ({len(results)} (process, family) pairs)")


def validate_sweep(path, d):
    version = d.get("version")
    if version not in (1, 2, 3):
        fail(path, f"unexpected version {version}")
    required = ["sweep", "seed", "trials", "threads", "reuse_graph",
                "gen_seconds", "walk_seconds", "wall_seconds", "points"]
    if version >= 2:
        required += ["max_trials", "ci_rel_target"]
    if version >= 3:
        required += ["pin", "unit_count", "unit_seconds_min",
                     "unit_seconds_max", "timeline_bucket_seconds",
                     "thread_timeline"]
    for key in required:
        if key not in d:
            fail(path, f"missing top-level {key}")
    if version >= 3:
        if not isinstance(d["pin"], bool):
            fail(path, f"pin is not a bool: {d['pin']!r}")
        if not (0 <= d["unit_seconds_min"] <= d["unit_seconds_max"]):
            fail(path, "unit_seconds_min/max out of order or negative")
        if d["timeline_bucket_seconds"] <= 0:
            fail(path, f"bad timeline_bucket_seconds: "
                       f"{d['timeline_bucket_seconds']!r}")
        timeline = d["thread_timeline"]
        if not isinstance(timeline, list) or not timeline:
            fail(path, "thread_timeline missing or empty")
        buckets = None
        for entry in timeline:
            for key in ("thread", "busy_seconds", "units"):
                if key not in entry:
                    fail(path, f"thread_timeline entry missing {key}")
            if len(entry["busy_seconds"]) != len(entry["units"]):
                fail(path, f"thread {entry['thread']}: busy_seconds and "
                           "units lengths differ")
            if buckets is None:
                buckets = len(entry["busy_seconds"])
            elif len(entry["busy_seconds"]) != buckets:
                fail(path, f"thread {entry['thread']}: inconsistent bucket "
                           "count across threads")
            if any(b < 0 for b in entry["busy_seconds"]):
                fail(path, f"thread {entry['thread']}: negative busy_seconds")
    trials = d["trials"]
    if not (isinstance(trials, int) and trials > 0):
        fail(path, f"bad trials: {trials!r}")
    max_trials = d.get("max_trials", 0)
    adaptive = version >= 2 and max_trials > 0
    cap = max(max_trials, trials) if adaptive else trials
    if adaptive and not (0 < d["ci_rel_target"] < 1):
        fail(path, f"bad ci_rel_target: {d['ci_rel_target']!r}")
    points = d["points"]
    if not points:
        fail(path, "empty points array")
    param_names = None
    for point in points:
        for key in ("label", "params", "series", "gen_seconds"):
            if key not in point:
                fail(path, f"point missing {key}: {point.get('label')}")
        names = sorted(point["params"])
        if param_names is None:
            param_names = names
        elif names != param_names:
            fail(path, f"inconsistent param names at {point['label']}: "
                       f"{names} vs {param_names}")
        if not point["series"]:
            fail(path, f"point {point['label']} has no series")
        for series in point["series"]:
            keys = ["name", "mean", "ci95", "median", "min", "max",
                    "uncovered_trials", "walk_seconds", "samples"]
            if version >= 2:
                keys += ["trials_used", "ci_rel_width"]
            for key in keys:
                if key not in series:
                    fail(path, f"series missing {key} at {point['label']}")
            used = series.get("trials_used", trials)
            if not (trials <= used <= cap):
                fail(path, f"{point['label']}/{series['name']}: "
                           f"trials_used {used} outside [{trials}, {cap}]")
            if not adaptive and used != trials:
                fail(path, f"{point['label']}/{series['name']}: "
                           f"trials_used {used} != trials in fixed mode")
            if len(series["samples"]) != used:
                fail(path, f"{point['label']}/{series['name']}: "
                           f"{len(series['samples'])} samples, want {used}")
            if not (series["min"] <= series["median"] <= series["max"]):
                fail(path, f"{point['label']}/{series['name']}: "
                           "min/median/max out of order")
            if series["uncovered_trials"] > used:
                fail(path, f"{point['label']}/{series['name']}: "
                           "uncovered_trials exceeds trials_used")
            if version >= 2 and series["ci_rel_width"] < 0:
                fail(path, f"{point['label']}/{series['name']}: "
                           "negative ci_rel_width")
    n_series = sum(len(p["series"]) for p in points)
    mode = f"adaptive cap {cap}" if adaptive else f"{trials} trials/point"
    print(f"{path}: OK ({len(points)} points, {n_series} series, {mode})")


# ---- Self-test -------------------------------------------------------------
#
# Embedded minimal-but-valid documents for each accepted format. The sweep
# sample mirrors the PCF dynamic-graph scenario (bench/pcf_cover.cpp): an
# extra non-n sweep parameter (alpha) and censored trials reported through
# uncovered_trials, both of which the validator must keep accepting.

def _sample_throughput():
    results = []
    for i in range(6):
        for bundle in (1, 8):
            results.append({"process": f"proc{i}", "graph": "regular",
                            "n": 1000, "m": 2000, "steps": 10000 + i,
                            "seconds": 0.5, "steps_per_sec": 2.0e4,
                            "bundle": bundle})
    return {"bench": "throughput", "version": 2, "results": results}


def _sample_sweep():
    def series(name, uncovered):
        return {"name": name, "mean": 5.0e5, "ci95": 1.0e4, "median": 4.8e5,
                "min": 4.0e5, "max": 7.4e6, "uncovered_trials": uncovered,
                "walk_seconds": 1.25, "samples": [4.0e5, 4.8e5, 7.4e6],
                "trials_used": 3, "ci_rel_width": 0.02}

    points = []
    for n, alpha in ((1000, 0.001), (1000, 0.01), (2000, 0.001)):
        points.append({"label": f"n={n} alpha={alpha}",
                       "params": {"n": n, "alpha": alpha, "r": 4},
                       "gen_seconds": 0.1,
                       "series": [series("pcf-eprocess", 1),
                                  series("pcf-srw", 2)]})
    return {"sweep": "pcf", "version": 3, "points": points, "seed": 1, "trials": 3,
            "threads": 4, "reuse_graph": False, "gen_seconds": 0.3,
            "walk_seconds": 7.5, "wall_seconds": 2.1, "max_trials": 0,
            "ci_rel_target": 0.05, "pin": False, "unit_count": 18,
            "unit_seconds_min": 0.01, "unit_seconds_max": 0.9,
            "timeline_bucket_seconds": 0.25,
            "thread_timeline": [
                {"thread": t, "busy_seconds": [0.2, 0.25, 0.1],
                 "units": [3, 4, 2]} for t in range(4)]}


def _expect_fail(doc, validator, label):
    try:
        validator("<self-test>", doc)
    except SystemExit:
        return
    raise SystemExit(f"self-test: corruption not rejected: {label}")


def self_test():
    validate_throughput("<throughput sample>", _sample_throughput())
    validate_sweep("<pcf sweep sample>", _sample_sweep())

    d = _sample_throughput()
    d["results"][0]["steps"] = 0
    _expect_fail(d, validate_throughput, "throughput: zero steps")

    d = _sample_throughput()
    for r in d["results"]:
        r["bundle"] = 1
    _expect_fail(d, validate_throughput, "throughput: single bundle width")

    base = _sample_sweep()
    d = copy.deepcopy(base)
    s = d["points"][0]["series"][0]
    s["median"] = s["max"] + 1
    _expect_fail(d, validate_sweep, "sweep: min/median/max out of order")

    d = copy.deepcopy(base)
    del d["points"][1]["series"][0]["samples"]
    _expect_fail(d, validate_sweep, "sweep: missing samples")

    d = copy.deepcopy(base)
    del d["points"][2]["params"]["alpha"]
    _expect_fail(d, validate_sweep, "sweep: inconsistent param names")

    d = copy.deepcopy(base)
    s = d["points"][0]["series"][1]
    s["uncovered_trials"] = s["trials_used"] + 1
    _expect_fail(d, validate_sweep, "sweep: uncovered > trials_used")

    print("self-test OK (2 formats accepted, 6 corruptions rejected)")


def main(argv):
    if len(argv) < 2:
        raise SystemExit(__doc__)
    if argv[1] == "--self-test":
        if len(argv) != 2:
            raise SystemExit("--self-test takes no further arguments")
        self_test()
        return
    for path in argv[1:]:
        with open(path) as f:
            d = json.load(f)
        if d.get("bench") == "throughput":
            validate_throughput(path, d)
        elif "sweep" in d:
            validate_sweep(path, d)
        else:
            fail(path, "neither a throughput nor a sweep JSON")


if __name__ == "__main__":
    main(sys.argv)
